module mplgo

go 1.22
