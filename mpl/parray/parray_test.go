package parray

import (
	"sort"
	"testing"
	"testing/quick"

	"mplgo/internal/workload"
	"mplgo/mpl"
)

// run executes f on a fresh runtime with the given config and fails on
// entanglement errors.
func run(t *testing.T, cfg mpl.Config, f func(tk *mpl.Task)) {
	t.Helper()
	if _, err := mpl.Run(cfg, func(tk *mpl.Task) mpl.Value {
		f(tk)
		return mpl.Nil
	}); err != nil {
		t.Fatal(err)
	}
}

// configs exercises the operations across processor counts and GC budgets.
var configs = []mpl.Config{
	{Procs: 1},
	{Procs: 1, HeapBudgetWords: 2048},
	{Procs: 4, HeapBudgetWords: 1 << 14},
}

func TestTabulateAndToInts(t *testing.T) {
	for _, cfg := range configs {
		run(t, cfg, func(tk *mpl.Task) {
			arr := Tabulate(tk, 1000, 64, func(tk *mpl.Task, i int) mpl.Value {
				return mpl.Int(int64(i * 3))
			})
			xs := ToInts(tk, arr)
			for i, x := range xs {
				if x != int64(i*3) {
					t.Fatalf("cfg %+v: xs[%d] = %d", cfg, i, x)
				}
			}
		})
	}
}

func TestMapReduce(t *testing.T) {
	for _, cfg := range configs {
		run(t, cfg, func(tk *mpl.Task) {
			arr := FromInts(tk, workload.Ints(3, 2000, 100))
			sq := Map(tk, arr, 64, func(tk *mpl.Task, v mpl.Value) mpl.Value {
				return mpl.Int(v.AsInt() * v.AsInt())
			})
			got := SumInt(tk, sq, 64)
			var want int64
			for _, x := range workload.Ints(3, 2000, 100) {
				want += x * x
			}
			if got != want {
				t.Fatalf("cfg %+v: sum = %d, want %d", cfg, got, want)
			}
		})
	}
}

func TestReduceMax(t *testing.T) {
	run(t, mpl.Config{Procs: 2}, func(tk *mpl.Task) {
		xs := workload.Ints(9, 5000, 1_000_000)
		arr := FromInts(tk, xs)
		got := ReduceInt(tk, arr, 128, -1, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		want := int64(-1)
		for _, x := range xs {
			if x > want {
				want = x
			}
		}
		if got != want {
			t.Fatalf("max = %d, want %d", got, want)
		}
	})
}

func TestScan(t *testing.T) {
	for _, cfg := range configs {
		run(t, cfg, func(tk *mpl.Task) {
			xs := workload.Ints(5, 3000, 50)
			arr := FromInts(tk, xs)
			prefixes, total := ScanInt(tk, arr, 256)
			var acc int64
			for i, x := range xs {
				if got := tk.Read(prefixes, i).AsInt(); got != acc {
					t.Fatalf("cfg %+v: prefix[%d] = %d, want %d", cfg, i, got, acc)
				}
				acc += x
			}
			if total != acc {
				t.Fatalf("cfg %+v: total = %d, want %d", cfg, total, acc)
			}
		})
	}
}

func TestScanEmptyAndSingleton(t *testing.T) {
	run(t, mpl.Config{Procs: 1}, func(tk *mpl.Task) {
		empty := FromInts(tk, nil)
		_, total := ScanInt(tk, empty, 16)
		if total != 0 {
			t.Fatal("empty scan total")
		}
		one := FromInts(tk, []int64{7})
		p, total := ScanInt(tk, one, 16)
		if total != 7 || tk.Read(p, 0).AsInt() != 0 {
			t.Fatal("singleton scan")
		}
	})
}

func TestFilter(t *testing.T) {
	for _, cfg := range configs {
		run(t, cfg, func(tk *mpl.Task) {
			xs := workload.Ints(7, 4000, 1000)
			arr := FromInts(tk, xs)
			out := Filter(tk, arr, 128, func(tk *mpl.Task, v mpl.Value) bool {
				return v.AsInt()%7 == 0
			})
			var want []int64
			for _, x := range xs {
				if x%7 == 0 {
					want = append(want, x)
				}
			}
			if tk.Length(out) != len(want) {
				t.Fatalf("cfg %+v: filtered %d, want %d", cfg, tk.Length(out), len(want))
			}
			for i, w := range want {
				if got := tk.Read(out, i).AsInt(); got != w {
					t.Fatalf("cfg %+v: out[%d] = %d, want %d (order not preserved?)", cfg, i, got, w)
				}
			}
		})
	}
}

func TestSortInt(t *testing.T) {
	for _, cfg := range configs {
		run(t, cfg, func(tk *mpl.Task) {
			xs := workload.Ints(11, 3000, 1_000_000)
			arr := FromInts(tk, xs)
			sorted := SortInt(tk, arr, 64)
			want := append([]int64(nil), xs...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := ToInts(tk, sorted)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cfg %+v: sorted[%d] = %d, want %d", cfg, i, got[i], want[i])
				}
			}
		})
	}
}

func TestSortIntQuick(t *testing.T) {
	// Property: SortInt agrees with the standard library on random inputs.
	f := func(seed uint64, n uint16) bool {
		size := int(n%500) + 1
		xs := workload.Ints(seed, size, 10_000)
		ok := true
		run(t, mpl.Config{Procs: 1}, func(tk *mpl.Task) {
			sorted := ToInts(tk, SortInt(tk, FromInts(tk, xs), 32))
			want := append([]int64(nil), xs...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if sorted[i] != want[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestComposition(t *testing.T) {
	// tabulate → map → filter → sort → scan → reduce, under GC pressure.
	run(t, mpl.Config{Procs: 2, HeapBudgetWords: 4096}, func(tk *mpl.Task) {
		arr := Tabulate(tk, 2000, 64, func(tk *mpl.Task, i int) mpl.Value {
			return mpl.Int(int64((i * 7919) % 1000))
		})
		mapped := Map(tk, arr, 64, func(tk *mpl.Task, v mpl.Value) mpl.Value {
			return mpl.Int(v.AsInt() + 1)
		})
		evens := Filter(tk, mapped, 64, func(tk *mpl.Task, v mpl.Value) bool {
			return v.AsInt()%2 == 0
		})
		sorted := SortInt(tk, evens, 64)
		_, total := ScanInt(tk, sorted, 64)
		sum := SumInt(tk, sorted, 64)
		if total != sum {
			t.Fatalf("scan total %d != reduce sum %d", total, sum)
		}
		// Reference computation.
		var want int64
		for i := 0; i < 2000; i++ {
			v := int64((i*7919)%1000) + 1
			if v%2 == 0 {
				want += v
			}
		}
		if sum != want {
			t.Fatalf("pipeline sum = %d, want %d", sum, want)
		}
	})
}
