// Package parray provides data-parallel operations over heap arrays on the
// mpl runtime — the ParlayLib-style layer the paper's benchmarks are
// written against: tabulate, map, reduce, scan, filter, and a parallel
// sort. All operations follow the runtime's GC discipline internally
// (shared arrays are frame-rooted across allocation points), so callers
// compose them freely.
//
// Operations that take element functions invoke them on the worker task
// executing each leaf; functions must be safe for concurrent invocation on
// disjoint indices (pure functions and task-local effects are; shared
// effects through the runtime's CAS are too).
package parray

import (
	"mplgo/mpl"
)

// Tabulate builds the array [| f(0), ..., f(n-1) |] in parallel.
func Tabulate(t *mpl.Task, n, grain int, f func(t *mpl.Task, i int) mpl.Value) mpl.Ref {
	fr := t.NewFrame(1)
	fr.Set(0, t.AllocArray(n, mpl.Nil).Value())
	t.ParFor(0, n, grain, func(t *mpl.Task, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.Write(fr.Ref(0), i, f(t, i))
		}
	})
	out := fr.Ref(0)
	fr.Pop()
	return out
}

// FromInts materializes a Go slice of integers as a heap array, filling in
// parallel.
func FromInts(t *mpl.Task, xs []int64) mpl.Ref {
	return Tabulate(t, len(xs), 8192, func(t *mpl.Task, i int) mpl.Value {
		return mpl.Int(xs[i])
	})
}

// ToInts extracts an integer array into a Go slice.
func ToInts(t *mpl.Task, arr mpl.Ref) []int64 {
	n := t.Length(arr)
	out := make([]int64, n)
	t.ParFor(0, n, 8192, func(t *mpl.Task, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.Read(arr, i).AsInt()
		}
	})
	return out
}

// Map builds [| f(a[0]), ..., f(a[n-1]) |] in parallel.
func Map(t *mpl.Task, arr mpl.Ref, grain int, f func(t *mpl.Task, v mpl.Value) mpl.Value) mpl.Ref {
	n := t.Length(arr)
	fr := t.NewFrame(2)
	fr.Set(0, arr.Value())
	fr.Set(1, t.AllocArray(n, mpl.Nil).Value())
	t.ParFor(0, n, grain, func(t *mpl.Task, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.Write(fr.Ref(1), i, f(t, t.Read(fr.Ref(0), i)))
		}
	})
	out := fr.Ref(1)
	fr.Pop()
	return out
}

// ReduceInt folds an integer array with an associative combiner and its
// identity z, by parallel binary splitting.
func ReduceInt(t *mpl.Task, arr mpl.Ref, grain int, z int64, combine func(a, b int64) int64) int64 {
	n := t.Length(arr)
	var rec func(t *mpl.Task, lo, hi int) int64
	rec = func(t *mpl.Task, lo, hi int) int64 {
		if hi-lo <= grain {
			acc := z
			for i := lo; i < hi; i++ {
				acc = combine(acc, t.Read(arr, i).AsInt())
			}
			return acc
		}
		mid := lo + (hi-lo)/2
		a, b := t.Par(
			func(t *mpl.Task) mpl.Value { return mpl.Int(rec(t, lo, mid)) },
			func(t *mpl.Task) mpl.Value { return mpl.Int(rec(t, mid, hi)) },
		)
		return combine(a.AsInt(), b.AsInt())
	}
	return rec(t, 0, n)
}

// SumInt is ReduceInt with addition.
func SumInt(t *mpl.Task, arr mpl.Ref, grain int) int64 {
	return ReduceInt(t, arr, grain, 0, func(a, b int64) int64 { return a + b })
}

// ScanInt computes the exclusive prefix sums of an integer array in
// parallel (two-pass, block-based) and returns the output array plus the
// total.
func ScanInt(t *mpl.Task, arr mpl.Ref, grain int) (mpl.Ref, int64) {
	n := t.Length(arr)
	if grain < 1 {
		grain = 1
	}
	nblocks := (n + grain - 1) / grain
	sums := make([]int64, nblocks)
	fr := t.NewFrame(2)
	fr.Set(0, arr.Value())
	// Pass 1: per-block totals.
	t.ParFor(0, nblocks, 1, func(t *mpl.Task, lo, hi int) {
		for b := lo; b < hi; b++ {
			var s int64
			end := minInt((b+1)*grain, n)
			for i := b * grain; i < end; i++ {
				s += t.Read(fr.Ref(0), i).AsInt()
			}
			sums[b] = s
		}
	})
	// Exclusive scan of block totals (nblocks ≪ n: sequential).
	var total int64
	for b := range sums {
		sums[b], total = total, total+sums[b]
	}
	// Pass 2: write prefixes.
	fr.Set(1, t.AllocArray(n, mpl.Int(0)).Value())
	t.ParFor(0, nblocks, 1, func(t *mpl.Task, lo, hi int) {
		for b := lo; b < hi; b++ {
			acc := sums[b]
			end := minInt((b+1)*grain, n)
			for i := b * grain; i < end; i++ {
				t.Write(fr.Ref(1), i, mpl.Int(acc))
				acc += t.Read(fr.Ref(0), i).AsInt()
			}
		}
	})
	out := fr.Ref(1)
	fr.Pop()
	return out, total
}

// Filter keeps the elements for which keep returns true, preserving order,
// using a flags pass, a scan, and a parallel pack.
func Filter(t *mpl.Task, arr mpl.Ref, grain int, keep func(t *mpl.Task, v mpl.Value) bool) mpl.Ref {
	n := t.Length(arr)
	fr := t.NewFrame(3)
	fr.Set(0, arr.Value())
	fr.Set(1, t.AllocArray(n, mpl.Int(0)).Value())
	t.ParFor(0, n, grain, func(t *mpl.Task, lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep(t, t.Read(fr.Ref(0), i)) {
				t.Write(fr.Ref(1), i, mpl.Int(1))
			}
		}
	})
	offsets, total := ScanInt(t, fr.Ref(1), grain)
	fr.Set(1, offsets.Value())
	fr.Set(2, t.AllocArray(int(total), mpl.Nil).Value())
	t.ParFor(0, n, grain, func(t *mpl.Task, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := t.Read(fr.Ref(0), i)
			if keep(t, v) {
				t.Write(fr.Ref(2), int(t.Read(fr.Ref(1), i).AsInt()), v)
			}
		}
	})
	out := fr.Ref(2)
	fr.Pop()
	return out
}

// SortInt sorts an integer array (ascending) with parallel mergesort,
// returning a fresh array.
func SortInt(t *mpl.Task, arr mpl.Ref, grain int) mpl.Ref {
	if grain < 8 {
		grain = 8
	}
	var rec func(t *mpl.Task, lo, hi int) mpl.Ref
	rec = func(t *mpl.Task, lo, hi int) mpl.Ref {
		n := hi - lo
		if n <= grain {
			fr := t.NewFrame(1)
			fr.Set(0, arr.Value())
			out := t.AllocArray(n, mpl.Int(0))
			src := fr.Ref(0)
			fr.Pop()
			for i := 0; i < n; i++ {
				t.Write(out, i, t.Read(src, lo+i))
			}
			for i := 1; i < n; i++ {
				v := t.Read(out, i)
				j := i - 1
				for j >= 0 && t.Read(out, j).AsInt() > v.AsInt() {
					t.Write(out, j+1, t.Read(out, j))
					j--
				}
				t.Write(out, j+1, v)
			}
			return out
		}
		mid := lo + n/2
		lv, rv := t.Par(
			func(t *mpl.Task) mpl.Value { return rec(t, lo, mid).Value() },
			func(t *mpl.Task) mpl.Value { return rec(t, mid, hi).Value() },
		)
		fr := t.NewFrame(2)
		fr.Set(0, lv)
		fr.Set(1, rv)
		out := t.AllocArray(n, mpl.Int(0))
		l, r := fr.Ref(0), fr.Ref(1)
		i, j, k := 0, 0, 0
		ln, rn := t.Length(l), t.Length(r)
		for i < ln && j < rn {
			a, b := t.Read(l, i), t.Read(r, j)
			if a.AsInt() <= b.AsInt() {
				t.Write(out, k, a)
				i++
			} else {
				t.Write(out, k, b)
				j++
			}
			k++
		}
		for ; i < ln; i++ {
			t.Write(out, k, t.Read(l, i))
			k++
		}
		for ; j < rn; j++ {
			t.Write(out, k, t.Read(r, j))
			k++
		}
		fr.Pop()
		return out
	}
	return rec(t, 0, t.Length(arr))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
