package mpl_test

import (
	"errors"
	"testing"

	"mplgo/mpl"
)

func TestRunWrapper(t *testing.T) {
	v, err := mpl.Run(mpl.Config{Procs: 2}, func(tk *mpl.Task) mpl.Value {
		a, b := tk.Par(
			func(tk *mpl.Task) mpl.Value { return mpl.Int(20) },
			func(tk *mpl.Task) mpl.Value { return mpl.Int(22) },
		)
		return mpl.Int(a.AsInt() + b.AsInt())
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 42 {
		t.Fatalf("got %d", v.AsInt())
	}
}

func TestValueHelpers(t *testing.T) {
	if mpl.Int(5).AsInt() != 5 || !mpl.Bool(true).AsBool() {
		t.Fatal("value helpers broken")
	}
	if !mpl.Value(mpl.Nil).IsNil() {
		t.Fatal("Nil broken")
	}
}

func TestSpeedupRequiresRecording(t *testing.T) {
	rt := mpl.New(mpl.Config{Procs: 1})
	if _, err := rt.Run(func(tk *mpl.Task) mpl.Value { return mpl.Nil }); err != nil {
		t.Fatal(err)
	}
	if got := mpl.Speedup(rt, []int{2, 4}, 100); got != nil {
		t.Fatalf("Speedup without recording = %v, want nil", got)
	}
}

func TestSpeedupWithRecording(t *testing.T) {
	rt := mpl.New(mpl.Config{Procs: 1, Record: true})
	if _, err := rt.Run(func(tk *mpl.Task) mpl.Value {
		tk.ParFor(0, 1<<14, 64, func(tk *mpl.Task, lo, hi int) {
			tk.Work(int64(hi-lo) * 100)
		})
		return mpl.Nil
	}); err != nil {
		t.Fatal(err)
	}
	curve := mpl.Speedup(rt, []int{1, 8}, 10)
	if len(curve) != 2 || curve[1] < 4 {
		t.Fatalf("curve = %v", curve)
	}
}

func TestErrEntangledExported(t *testing.T) {
	rt := mpl.New(mpl.Config{Procs: 1, Mode: mpl.Detect})
	_, err := rt.Run(func(tk *mpl.Task) mpl.Value {
		shared := tk.AllocArray(1, mpl.Nil)
		tk.Par(
			func(l *mpl.Task) mpl.Value {
				l.Write(shared, 0, l.AllocTuple(mpl.Int(1)).Value())
				return mpl.Nil
			},
			func(r *mpl.Task) mpl.Value { return r.Read(shared, 0) },
		)
		return mpl.Nil
	})
	if !errors.Is(err, mpl.ErrEntangled) {
		t.Fatalf("err = %v", err)
	}
}

func TestModesExported(t *testing.T) {
	for _, m := range []mpl.Mode{mpl.Manage, mpl.Detect, mpl.Unsafe} {
		if _, err := mpl.Run(mpl.Config{Procs: 1, Mode: m}, func(tk *mpl.Task) mpl.Value {
			return mpl.Int(1)
		}); err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
	}
}
