// Package mpl is the public API of mplgo: a Go reproduction of the
// hierarchical-heap parallel runtime with entanglement management from
//
//	Arora, Westrick, Acar. "Efficient Parallel Functional Programming
//	with Effects." PLDI 2023.
//
// The runtime executes nested fork–join programs over a simulated heap of
// tagged values. Memory is organized as a tree of heaps mirroring the task
// tree; tasks allocate and collect independently (hierarchical memory
// management), and unrestricted effects — including communication between
// concurrent tasks — are supported by managing entanglement: objects
// acquired across concurrent heaps are pinned until the tasks involved
// join, while disentangled objects pay only a one-test barrier.
//
// # Quick start
//
//	rt := mpl.New(mpl.Config{Procs: 4})
//	v, err := rt.Run(func(t *mpl.Task) mpl.Value {
//		a, b := t.Par(
//			func(t *mpl.Task) mpl.Value { return mpl.Int(21) },
//			func(t *mpl.Task) mpl.Value { return mpl.Int(21) },
//		)
//		return mpl.Int(a.AsInt() + b.AsInt())
//	})
//
// # GC discipline
//
// Local collections move objects and run only inside allocation calls.
// References held in Go variables across an allocation must be registered
// in a Frame (Task.NewFrame); arguments passed to allocation calls are
// protected automatically.
package mpl

import (
	"io"
	"time"

	"mplgo/internal/attr"
	"mplgo/internal/chaos"
	"mplgo/internal/core"
	"mplgo/internal/entangle"
	"mplgo/internal/mem"
	"mplgo/internal/sim"
	"mplgo/internal/trace"
)

// Value is a tagged word: a 63-bit integer, a reference, or Nil.
type Value = mem.Value

// Ref is a reference to a heap object.
type Ref = mem.Ref

// Nil is the null reference value.
const Nil = mem.Nil

// Int makes an immediate integer value.
func Int(i int64) Value { return mem.Int(i) }

// Bool makes an immediate boolean value.
func Bool(b bool) Value { return mem.Bool(b) }

// Task is a strand of the fork–join computation; all heap access goes
// through it so the entanglement barriers run.
type Task = core.Task

// Frame is a window of a task's shadow stack; its slots are GC roots.
type Frame = core.Frame

// Config parameterizes a Runtime.
type Config = core.Config

// Runtime is one instance of the hierarchical-heap runtime.
type Runtime = core.Runtime

// ElisionStats summarizes barrier elision for one runtime (see
// Runtime.ElisionStats).
type ElisionStats = core.ElisionStats

// Mode selects how the runtime responds to entanglement.
type Mode = entangle.Mode

// Entanglement modes.
const (
	// Manage pins entangled objects and proceeds (the paper).
	Manage = entangle.Manage
	// Detect reports entanglement as an error (MPL before the paper).
	Detect = entangle.Detect
	// Unsafe disables the barriers (ablation only).
	Unsafe = entangle.Unsafe
)

// ErrEntangled is returned by Run in Detect mode when the program
// entangles.
var ErrEntangled = entangle.ErrEntangled

// ErrCancelled is returned by Run when the computation was aborted via
// Runtime.Cancel before completing.
var ErrCancelled = core.ErrCancelled

// ErrHeapLimit is returned by Run when Config.MaxHeapWords was exceeded and
// a forced collection could not bring residency back under the limit.
var ErrHeapLimit = core.ErrHeapLimit

// PanicError wraps a panic recovered from a task branch; Run returns it
// instead of crashing the process or hanging the worker pool. Unwrap
// exposes panics whose value was itself an error, so errors.Is sees the
// typed resource-exhaustion panics.
type PanicError = core.PanicError

// Scope is a request-scoped fault domain: a cancellation scope with an
// optional monotonic deadline and heap-word budget, covering the subtree
// of tasks that runs under it (Task.RunScoped, Task.ForkScoped). A dead
// scope unwinds only its own subtree — concurrent siblings, and the
// runtime, keep going.
type Scope = core.Scope

// NewScope creates a fault domain under parent (nil for top-level). The
// zero deadline means none; budgetWords 0 means unlimited. Prefer
// Task.NewScope inside a computation — it nests under the task's current
// scope automatically.
func NewScope(parent *Scope, deadline time.Time, budgetWords int64) *Scope {
	return core.NewScope(parent, deadline, budgetWords)
}

// ErrDeadlineExceeded is the cancellation cause of a Scope whose deadline
// passed; the scoped join's error wraps it.
var ErrDeadlineExceeded = core.ErrDeadlineExceeded

// ErrShed is the sentinel under typed admission refusals (internal/serve's
// *Overload unwraps to it): the request never entered the runtime and
// should be retried after backoff.
var ErrShed = core.ErrShed

// ChaosOptions configures the deterministic fault-injection layer via
// Config.Chaos (rates are per-1024 probabilities at each injection point,
// derived from Config.Seed). Testing only — never set in timing runs.
type ChaosOptions = chaos.Options

// ChaosSoak returns the aggressive preset used by the chaos test suite.
func ChaosSoak() ChaosOptions { return chaos.Soak() }

// New creates a runtime. A runtime executes one computation via Run.
func New(cfg Config) *Runtime { return core.New(cfg) }

// Run is a convenience wrapper: create a runtime with cfg and run f.
func Run(cfg Config, f func(*Task) Value) (Value, error) {
	return New(cfg).Run(f)
}

// Tracer collects runtime events — forks, joins, steals, collection
// phases, entanglement pins — into per-worker lock-free rings (package
// trace). Install one via Config.Tracer, bracket the region of interest
// with TraceEnable/TraceDisable, then export with WriteChrome.
type Tracer = trace.Tracer

// NewTracer creates a tracer with one event ring per worker plus one for
// the concurrent collector. procs must match Config.Procs; slots is the
// per-ring capacity (rounded down to a power of two, 0 for the default).
func NewTracer(procs, slots int) *Tracer { return trace.NewTracer(procs, slots) }

// TraceEnable turns the global trace gate on. Enables nest: tracing stays
// on until every Enable has been matched by a TraceDisable. A runtime with
// no Tracer installed records nothing either way.
func TraceEnable() { trace.Enable() }

// TraceDisable undoes one TraceEnable.
func TraceDisable() { trace.Disable() }

// WriteChrome exports a tracer's events as Chrome trace_event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChrome(w io.Writer, t *Tracer) error { return trace.WriteChrome(w, t) }

// AttrProfiler is the sampled cost-attribution profiler (package attr):
// it decomposes the runtime's T1−Tseq overhead gap into named slow-path
// components (pin CAS, gate traffic, remset publication, ...). Install
// one via Config.Attr, bracket the region of interest with
// AttrEnable/AttrDisable, then read Profiler.Snapshot (or let the trace
// experiment stamp it into a Chrome export for mplgo-trace -attr).
type AttrProfiler = attr.Profiler

// AttrSnapshot is the aggregate view of an AttrProfiler's sinks.
type AttrSnapshot = attr.Snapshot

// NewAttrProfiler creates a profiler with one sink per worker plus one
// for the concurrent collector. procs must match Config.Procs; period
// is the sampling period (1-in-period occurrences are timed; <= 0
// selects the default, 1024).
func NewAttrProfiler(procs int, period int64) *AttrProfiler {
	return attr.NewProfiler(procs, period)
}

// AttrEnable turns the global attribution gate on (refcounted, like
// TraceEnable). A runtime with no profiler installed records nothing
// either way.
func AttrEnable() { attr.Enable() }

// AttrDisable undoes one AttrEnable.
func AttrDisable() { attr.Disable() }

// Speedup estimates the speedup of the runtime's recorded computation at
// each processor count in ps, by replaying the trace on the deterministic
// multiprocessor simulator. The runtime must have been created with
// Config.Record set and have completed its Run. stealCost is the simulated
// strand-migration latency in abstract work units (≈ words); 200 matches
// the experiment harness.
func Speedup(rt *Runtime, ps []int, stealCost int64) []float64 {
	trace := rt.Trace()
	if trace == nil {
		return nil
	}
	return sim.SpeedupCurve(trace, ps, stealCost)
}
