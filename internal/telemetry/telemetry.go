// Package telemetry exposes a runtime's live counters and heap hierarchy
// over HTTP, for watching an entangled workload from the outside while it
// runs. Everything served here reads only atomic snapshots (the Stats
// counters, Space gauges, and hierarchy.DumpTree), so scraping a runtime
// under full parallel load is safe and nearly free — no locks are taken on
// any mutator path.
//
// The format of /metrics is the Prometheus text exposition format, written
// by hand to keep the runtime dependency-free; /debug/heaptree serves the
// hierarchy.DumpTree snapshot as JSON, or DOT with ?format=dot;
// /debug/attr serves the live cost-attribution snapshot as JSON.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"mplgo/internal/attr"
	"mplgo/internal/core"
	"mplgo/internal/mem"
)

// Source is an application-side metrics provider: a host package (the
// admission controller in internal/serve, a cache, a custom workload)
// appends its own gauges and counters to the /metrics exposition next to
// the runtime's. Implementations must read only atomic snapshots — the
// handler runs while the workload is under full load.
type Source interface {
	// AppendMetrics calls emit once per metric, with the Prometheus metric
	// name (conventionally mplgo_-prefixed), the help line, the type
	// ("counter" or "gauge"), and the current value.
	AppendMetrics(emit func(name, help, typ string, val int64))
}

// metric is one exported gauge or counter.
type metric struct {
	name string
	help string
	typ  string // "counter" or "gauge"
	val  int64
}

// collect snapshots every exported metric from the runtime's accessors.
func collect(rt *core.Runtime) []metric {
	es := rt.EntStats()
	collections, copied, reclaimed := rt.GCStats()
	cycles, freed, swept, cgcRetained, lastLive := rt.CGCStats()
	sp := rt.Space()
	return []metric{
		{"mplgo_steals_total", "Work-stealing deque steals", "counter", rt.Steals()},
		{"mplgo_live_words", "Words in live chunks", "gauge", sp.LiveWords()},
		{"mplgo_max_live_words", "High-water mark of live words", "gauge", sp.MaxLiveWords()},
		{"mplgo_total_alloc_words", "Cumulative words handed to allocators", "counter", sp.TotalAllocWords()},
		{"mplgo_gc_collections_total", "Local (LGC) collections", "counter", collections},
		{"mplgo_gc_copied_words_total", "Words copied by local collections", "counter", copied},
		{"mplgo_gc_reclaimed_words_total", "Words reclaimed by local collections", "counter", reclaimed},
		{"mplgo_gc_retained_chunks_total", "Chunks retained for pinned objects by LGC", "counter", rt.RetainedChunks()},
		{"mplgo_cgc_cycles_total", "Concurrent collection cycles completed", "counter", cycles},
		{"mplgo_cgc_freed_words_total", "Words reclaimed in place by CGC sweeps", "counter", freed},
		{"mplgo_cgc_swept_chunks_total", "Chunks released whole by CGC sweeps", "counter", swept},
		{"mplgo_cgc_retained_chunks_total", "Chunks retained with live or pinned objects by CGC", "counter", cgcRetained},
		{"mplgo_cgc_last_live_words", "Live words observed by the last CGC sweep", "gauge", lastLive},
		{"mplgo_ent_down_pointers_total", "Down-pointers recorded by the write barrier", "counter", es.DownPointers},
		{"mplgo_ent_candidates_total", "Objects marked as entanglement candidates", "counter", es.Candidates},
		{"mplgo_ent_entangled_reads_total", "Reads proven entangled", "counter", es.EntangledReads},
		{"mplgo_ent_entangled_writes_total", "Writes proven entangled", "counter", es.EntangledWrites},
		{"mplgo_ent_slow_reads_total", "Read-barrier slow paths taken", "counter", es.SlowReads},
		{"mplgo_ent_pins_total", "Objects pinned", "counter", es.Pins},
		{"mplgo_ent_unpins_total", "Objects unpinned", "counter", es.Unpins},
		{"mplgo_ent_pinned_now", "Currently pinned objects", "gauge", es.Pins - es.Unpins},
		{"mplgo_ent_pinned_peak", "High-water mark of pinned objects", "gauge", es.PinnedPeak},
		{"mplgo_ent_pinned_peak_bytes", "High-water mark of pinned bytes", "gauge", es.PinnedPeakBytes},
	}
}

// WriteMetrics writes the Prometheus text exposition of the runtime's
// counters, followed by any additional sources' metrics.
func WriteMetrics(w io.Writer, rt *core.Runtime, srcs ...Source) error {
	ms := collect(rt)
	for _, s := range srcs {
		s.AppendMetrics(func(name, help, typ string, val int64) {
			ms = append(ms, metric{name, help, typ, val})
		})
	}
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.typ, m.name, m.val); err != nil {
			return err
		}
	}
	return nil
}

// Metrics returns the /metrics handler.
func Metrics(rt *core.Runtime, srcs ...Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, rt, srcs...)
	})
}

// Attr returns the /debug/attr handler: a live JSON snapshot of the
// runtime's cost-attribution profiler (per-component samples, sampled
// ns, estimated total ns, and log2-ns histograms) plus the pin-CAS
// outcome counters. Reading it while the workload runs is safe — the
// snapshot is the read side of the attr package's single-writer
// discipline, all atomic loads. A runtime with no profiler installed
// serves {"attr": null, ...}.
func Attr(rt *core.Runtime) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(struct {
			Attr    *attr.Snapshot     `json:"attr"`
			Enabled bool               `json:"enabled"`
			PinCAS  mem.PinCASSnapshot `json:"pin_cas"`
		}{
			Attr:    rt.AttrProfiler().Snapshot(),
			Enabled: attr.Enabled(),
			PinCAS:  rt.PinCASStats(),
		})
	})
}

// HeapTree returns the /debug/heaptree handler: a point-in-time dump of
// the live heap hierarchy, JSON by default, Graphviz with ?format=dot.
func HeapTree(rt *core.Runtime) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := rt.Tree().DumpTree(rt.Space())
		if r.URL.Query().Get("format") == "dot" {
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			_ = d.WriteDOT(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = d.WriteJSON(w)
	})
}

// Register wires the telemetry handlers into mux under their conventional
// paths.
func Register(mux *http.ServeMux, rt *core.Runtime) {
	RegisterSources(mux, rt)
}

// RegisterSources is Register with additional application metric sources
// merged into the /metrics exposition (e.g. internal/serve's admission
// counters next to the runtime's GC and entanglement counters).
func RegisterSources(mux *http.ServeMux, rt *core.Runtime, srcs ...Source) {
	mux.Handle("/metrics", Metrics(rt, srcs...))
	mux.Handle("/debug/attr", Attr(rt))
	mux.Handle("/debug/heaptree", HeapTree(rt))
}

// RegisterPprof mounts the standard net/http/pprof handlers under
// /debug/pprof/ on mux. Split out of Register because pprof exposes
// goroutine dumps and CPU profiling endpoints a production mux may not
// want; servers that do want them (examples/server) call this instead of
// hand-rolling the four handler registrations pprof needs on a non-default
// mux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
