package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mplgo/internal/core"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

// runSmall runs a tiny fork–join workload so the counters are non-trivial.
func runSmall(t *testing.T) *core.Runtime {
	t.Helper()
	rt := core.New(core.Config{Procs: 2})
	_, err := rt.Run(func(tk *core.Task) mem.Value {
		var fib func(t *core.Task, n int) mem.Value
		fib = func(t *core.Task, n int) mem.Value {
			if n < 2 {
				return mem.Int(int64(n))
			}
			a, b := t.Par(
				func(t *core.Task) mem.Value { return fib(t, n-1) },
				func(t *core.Task) mem.Value { return fib(t, n-2) },
			)
			return mem.Int(a.AsInt() + b.AsInt())
		}
		return fib(tk, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	rt := runSmall(t)
	mux := http.NewServeMux()
	Register(mux, rt)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, ct := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE mplgo_steals_total counter",
		"mplgo_live_words ",
		"mplgo_gc_collections_total ",
		"mplgo_ent_pinned_peak_bytes ",
		"mplgo_cgc_cycles_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// Every line must be a comment or "name value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestHeapTreeEndpoint(t *testing.T) {
	rt := runSmall(t)
	mux := http.NewServeMux()
	Register(mux, rt)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, ct := get(t, srv, "/debug/heaptree")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var d hierarchy.TreeDump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("heaptree JSON: %v\n%s", err, body)
	}
	if d.LiveHeaps < 1 || len(d.Heaps) != d.LiveHeaps {
		t.Fatalf("heaptree dump %+v", d)
	}

	_, dot, dotCT := get(t, srv, "/debug/heaptree?format=dot")
	if !strings.HasPrefix(dotCT, "text/vnd.graphviz") {
		t.Fatalf("dot content type %q", dotCT)
	}
	if !strings.HasPrefix(dot, "digraph heaps {") {
		t.Fatalf("dot output:\n%s", dot)
	}
}
