// External test package: the alignment and end-to-end tests need trace
// (which attr imports), and the overhead benchmarks drive the runtime
// through mpl.
package attr_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"mplgo/internal/attr"
	"mplgo/internal/trace"
)

// TestCounterAlignment pins the offset scheme CounterNS/CounterN rely
// on: the trace package must lay the attribution counter block out in
// attr.Component order, two counters per component, named after the
// component slugs. A mismatch here means the summarizer would label
// costs with the wrong component.
func TestCounterAlignment(t *testing.T) {
	for c := attr.Component(0); c < attr.NumComponents; c++ {
		wantNS := "attr_" + c.Slug() + "_ns"
		wantN := "attr_" + c.Slug() + "_n"
		if got := attr.CounterNS(c).String(); got != wantNS {
			t.Errorf("CounterNS(%s) = %q, want %q", c.Slug(), got, wantNS)
		}
		if got := attr.CounterN(c).String(); got != wantN {
			t.Errorf("CounterN(%s) = %q, want %q", c.Slug(), got, wantN)
		}
		if rc, isNS, ok := attr.ComponentOfCounter(attr.CounterNS(c)); !ok || !isNS || rc != c {
			t.Errorf("ComponentOfCounter(CounterNS(%s)) = (%v, %v, %v)", c.Slug(), rc, isNS, ok)
		}
		if rc, isNS, ok := attr.ComponentOfCounter(attr.CounterN(c)); !ok || isNS || rc != c {
			t.Errorf("ComponentOfCounter(CounterN(%s)) = (%v, %v, %v)", c.Slug(), rc, isNS, ok)
		}
	}
	// The block must end exactly where the scalar attr counters begin.
	if got := trace.CtrAttrFirst + trace.Counter(2*int(attr.NumComponents)); got != trace.CtrAttrPeriod {
		t.Errorf("attr counter block ends at %v, want CtrAttrPeriod", got)
	}
	if _, _, ok := attr.ComponentOfCounter(trace.CtrAttrPeriod); ok {
		t.Error("ComponentOfCounter(CtrAttrPeriod) should not resolve to a component")
	}
}

func TestSlugRoundTrip(t *testing.T) {
	for c := attr.Component(0); c < attr.NumComponents; c++ {
		if got, ok := attr.ComponentFromSlug(c.Slug()); !ok || got != c {
			t.Errorf("ComponentFromSlug(%q) = (%v, %v), want (%v, true)", c.Slug(), got, ok, c)
		}
	}
	if _, ok := attr.ComponentFromSlug("no_such_component"); ok {
		t.Error("ComponentFromSlug accepted an unknown slug")
	}
	if attr.Component(-1).Slug() != "unknown" || attr.NumComponents.Slug() != "unknown" {
		t.Error("out-of-range components should have slug \"unknown\"")
	}
}

// TestSamplingRecords drives a period-1 sink (every occurrence sampled)
// and checks the snapshot arithmetic: estimated total = sampled ns ×
// period.
func TestSamplingRecords(t *testing.T) {
	attr.Enable()
	defer attr.Disable()
	p := attr.NewProfiler(1, 1)
	s := p.Sink(0)
	const n = 100
	for i := 0; i < n; i++ {
		t0 := s.Begin()
		if t0 == 0 {
			t.Fatalf("period-1 sink did not sample occurrence %d", i)
		}
		s.End(attr.PinCAS, t0)
	}
	snap := p.Snapshot()
	if snap.Samples[attr.PinCAS] != n {
		t.Fatalf("samples = %d, want %d", snap.Samples[attr.PinCAS], n)
	}
	if snap.EstNS(attr.PinCAS) != snap.NS[attr.PinCAS]*1 {
		t.Fatalf("EstNS = %d, want sampled ns × period = %d",
			snap.EstNS(attr.PinCAS), snap.NS[attr.PinCAS])
	}
	cs, ok := snap.Components[attr.PinCAS.Slug()]
	if !ok || cs.Samples != n {
		t.Fatalf("Components[%q] = %+v, %v", attr.PinCAS.Slug(), cs, ok)
	}
}

// TestLapTiling checks that consecutive Lap calls attribute disjoint
// segments: one Begin window tiled across three components yields one
// sample in each.
func TestLapTiling(t *testing.T) {
	attr.Enable()
	defer attr.Disable()
	p := attr.NewProfiler(1, 1)
	s := p.Sink(0)
	t0 := s.Begin()
	t0 = s.Lap(attr.AncestryQuery, t0)
	t0 = s.Lap(attr.GateEnter, t0)
	s.End(attr.GateExit, t0)
	snap := p.Snapshot()
	for _, c := range []attr.Component{attr.AncestryQuery, attr.GateEnter, attr.GateExit} {
		if snap.Samples[c] != 1 {
			t.Errorf("%s: samples = %d, want 1", c.Slug(), snap.Samples[c])
		}
	}
	if snap.Samples[attr.PinCAS] != 0 {
		t.Errorf("untouched component recorded %d samples", snap.Samples[attr.PinCAS])
	}
}

// TestNilSafety: every entry point must tolerate nil receivers — the
// "attribution off" state installs nil sinks everywhere.
func TestNilSafety(t *testing.T) {
	var s *attr.Sink
	if got := s.Begin(); got != 0 {
		t.Fatalf("nil sink Begin = %d, want 0", got)
	}
	s.End(attr.PinCAS, 0)
	if got := s.Lap(attr.PinCAS, 0); got != 0 {
		t.Fatalf("nil sink Lap = %d, want 0", got)
	}
	var p *attr.Profiler
	if p.Sink(0) != nil || p.CollectorSink() != nil || p.Snapshot() != nil {
		t.Fatal("nil profiler must hand out nil sinks and snapshot")
	}
	if p.Period() != 0 || p.BiasNS() != 0 {
		t.Fatal("nil profiler accessors must return zero")
	}
	var sink *attr.Sink
	sink.EmitCounters(nil, 0)
	attr.EmitSnapshot(nil, nil, 0, 0)
}

// TestEmitAndSummarize is the end-to-end pipe: sample, flush through a
// trace ring, export as Chrome JSON, and recover the decomposition via
// the summarizer (what mplgo-trace -attr prints).
func TestEmitAndSummarize(t *testing.T) {
	attr.Enable()
	trace.Enable()
	defer attr.Disable()
	defer trace.Disable()

	p := attr.NewProfiler(1, 1)
	s := p.Sink(0)
	for i := 0; i < 32; i++ {
		s.End(attr.RemsetPublish, s.Begin())
	}
	tr := trace.NewTracer(1, 0)
	// The export drops rings with no non-counter events; give the ring
	// one real event so the flush has company.
	tr.Ring(0).Emit(trace.EvFork, 0, 0, 0)
	attr.EmitSnapshot(p.Snapshot(), tr.Ring(0), 1000, 400)

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sum, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Attr == nil {
		t.Fatal("summary recovered no attribution")
	}
	if sum.Attr.Period != 1 || sum.Attr.RunWallNS != 1000 || sum.Attr.SeqWallNS != 400 {
		t.Fatalf("attr header = %+v", sum.Attr)
	}
	if gap := sum.Attr.GapNS(0); gap != 600 {
		t.Fatalf("GapNS = %d, want 600", gap)
	}
	if len(sum.Attr.Rows) != 1 || sum.Attr.Rows[0].Name != "remset_publish" ||
		sum.Attr.Rows[0].Samples != 32 {
		t.Fatalf("attr rows = %+v", sum.Attr.Rows)
	}
	var rep strings.Builder
	if !sum.FormatAttr(&rep) {
		t.Fatal("FormatAttr reported no attribution")
	}
	if !strings.Contains(rep.String(), "remset_publish") {
		t.Fatalf("report missing component row:\n%s", rep.String())
	}
}

// TestConcurrentFlushSnapshot is the 8-worker race test: every sink is
// hammered by its owning goroutine (sampling plus periodic ring
// flushes) while the main goroutine snapshots and a reader drains the
// rings. Run under -race in CI, this checks the single-writer
// discipline: owner-plain countdown, atomic totals, concurrent readers.
func TestConcurrentFlushSnapshot(t *testing.T) {
	const workers = 8
	attr.Enable()
	trace.Enable()
	defer attr.Disable()
	defer trace.Disable()

	p := attr.NewProfiler(workers, 4)
	tr := trace.NewTracer(workers, 1<<10)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := p.Sink(w)
			r := tr.Ring(w)
			for i := 0; i < 4096; i++ {
				t0 := s.Begin()
				t0 = s.Lap(attr.Component(i%int(attr.NumComponents)), t0)
				s.End(attr.Component((i+1)%int(attr.NumComponents)), t0)
				if i%256 == 0 {
					s.EmitCounters(r, 0)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := p.Snapshot()
			var total uint64
			for c := attr.Component(0); c < attr.NumComponents; c++ {
				total += snap.Samples[c]
			}
			_ = total
			tr.Snapshot()
		}
	}()
	wg.Add(-1)
	wg.Wait() // workers only
	close(stop)
	wg.Add(1)
	wg.Wait() // reader

	snap := p.Snapshot()
	var total uint64
	for c := attr.Component(0); c < attr.NumComponents; c++ {
		total += snap.Samples[c]
	}
	if total == 0 {
		t.Fatal("no samples recorded by 8 workers at period 4")
	}
}
