// Attribution-overhead microbenchmarks, mirroring the trace package's
// discipline (DESIGN.md §7): the numbers that matter are the Nil and
// Disabled variants, because that is the state every timed experiment
// runs in. The contract is that an instrumented slow-path entry costs
// one nil test when attribution is off, and one plain decrement plus a
// predictable branch when a profiler is installed but disabled.
package attr_test

import (
	"testing"
	"time"

	"mplgo/internal/attr"
	"mplgo/internal/bench"
	"mplgo/mpl"
)

var sinkNS int64

// BenchmarkBeginNil is the cost at every instrumentation site of an
// unattributed runtime: the sink pointer is nil.
func BenchmarkBeginNil(b *testing.B) {
	var s *attr.Sink
	for i := 0; i < b.N; i++ {
		t0 := s.Begin()
		s.End(attr.PinCAS, t0)
	}
}

// BenchmarkBeginDisabled is the cost with a profiler installed but the
// global gate off: the countdown decrements, and the slow path (taken
// once per period) sees the gate and re-arms without reading the clock.
func BenchmarkBeginDisabled(b *testing.B) {
	p := attr.NewProfiler(1, attr.DefaultPeriod)
	s := p.Sink(0)
	for i := 0; i < b.N; i++ {
		t0 := s.Begin()
		s.End(attr.PinCAS, t0)
	}
}

// BenchmarkBeginEnabled is the steady-state enabled cost at the default
// period: 1 in 1024 windows pays two clock reads and a histogram store,
// the rest pay the decrement.
func BenchmarkBeginEnabled(b *testing.B) {
	attr.Enable()
	defer attr.Disable()
	p := attr.NewProfiler(1, attr.DefaultPeriod)
	s := p.Sink(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := s.Begin()
		s.End(attr.PinCAS, t0)
	}
}

// benchForkJoin measures a minimal Par on one worker with or without an
// attribution profiler installed (never enabled — the timed-experiment
// state). Compare against the trace package's BenchmarkForkJoinUntraced.
func benchForkJoin(b *testing.B, prof *mpl.AttrProfiler) {
	rt := mpl.New(mpl.Config{Procs: 1, Attr: prof})
	if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, y := t.Par(
				func(*mpl.Task) mpl.Value { return mpl.Int(1) },
				func(*mpl.Task) mpl.Value { return mpl.Int(2) },
			)
			sinkNS += x.AsInt() + y.AsInt()
		}
		b.StopTimer()
		return mpl.Nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkForkJoinNoAttr(b *testing.B) { benchForkJoin(b, nil) }
func BenchmarkForkJoinAttrInstalled(b *testing.B) {
	benchForkJoin(b, mpl.NewAttrProfiler(1, 0))
}

// TestDisabledAttrOverhead is the CI regression guard: the disabled
// Begin/End pair must stay a nil test (no profiler) or a decrement plus
// branch (installed, gate off). Like TestDisabledTraceOverhead, the
// bound is deliberately loose — it catches a category change (a clock
// read, a lock, an allocation on the common path), not nanosecond
// drift; the drift is tracked by the benchmarks above.
func TestDisabledAttrOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const maxNS = 150
	for name, fn := range map[string]func(*testing.B){
		"BeginNil":      BenchmarkBeginNil,
		"BeginDisabled": BenchmarkBeginDisabled,
	} {
		res := testing.Benchmark(fn)
		if ns := res.NsPerOp(); ns > maxNS {
			t.Errorf("%s: %d ns/op, want <= %d (disabled attribution must stay branch-cheap)",
				name, ns, maxNS)
		} else {
			t.Logf("%s: %d ns/op", name, ns)
		}
	}
}

// TestEnabledAttrOverheadSanity measures what sampling at the default
// 1/1024 period costs an entangled benchmark end to end. The target is
// under ~3% — but wall-clock ratios of sub-second runs are too noisy to
// gate CI on, so this test only logs the ratio (and the absolute
// numbers, so a human reading the CI output can judge). It never fails.
func TestEnabledAttrOverheadSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	bm, ok := bench.ByName("counter")
	if !ok {
		t.Fatal("counter benchmark missing")
	}
	const n = 4_000
	run := func(prof *mpl.AttrProfiler) time.Duration {
		best := time.Duration(0)
		for r := 0; r < 5; r++ {
			rt := mpl.New(mpl.Config{Procs: 1, Attr: prof})
			start := time.Now()
			if _, err := rt.Run(func(task *mpl.Task) mpl.Value {
				return mpl.Int(bm.MPL(task, n))
			}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); r == 0 || d < best {
				best = d
			}
		}
		return best
	}
	off := run(nil)
	mpl.AttrEnable()
	on := run(mpl.NewAttrProfiler(1, attr.DefaultPeriod))
	mpl.AttrDisable()
	ratio := float64(on)/float64(off) - 1
	t.Logf("counter n=%d: off=%s on(1/%d)=%s, overhead %+.2f%% (target < 3%%, not gated)",
		n, off, attr.DefaultPeriod, on, ratio*100)
}
