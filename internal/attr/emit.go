package attr

import "mplgo/internal/trace"

// CounterNS returns the trace counter id carrying component c's
// estimated total ns; CounterN the one carrying its raw sample count.
// The offsets rely on the trace package laying the attribution block
// out in Component order (pinned by TestCounterAlignment).
func CounterNS(c Component) trace.Counter { return trace.CtrAttrFirst + trace.Counter(2*int(c)) }
func CounterN(c Component) trace.Counter  { return trace.CtrAttrFirst + trace.Counter(2*int(c)+1) }

// ComponentOfCounter inverts CounterNS/CounterN: for an attribution
// per-component counter it returns the component and whether the
// counter is the ns (true) or sample-count (false) leg; ok is false
// for every other counter (including attr_period and the wall-time
// pair).
func ComponentOfCounter(ctr trace.Counter) (c Component, isNS bool, ok bool) {
	off := int(ctr) - int(trace.CtrAttrFirst)
	if off < 0 || off >= 2*int(NumComponents) {
		return 0, false, false
	}
	return Component(off / 2), off%2 == 0, true
}

// EmitCounters flushes one sink's running totals onto a trace ring as
// counter events (estimated total ns and sample count per non-empty
// component). Must be called from the strand that owns both the sink
// and the ring — the same single-writer rule both structures already
// live by. Nil-safe on every receiver, and free when tracing is off.
func (s *Sink) EmitCounters(r *trace.Ring, depth int32) {
	if s == nil || r == nil || !trace.Enabled() {
		return
	}
	for c := Component(0); c < NumComponents; c++ {
		n := s.samples[c].Load()
		if n == 0 {
			continue
		}
		est := s.sampledNS[c].Load() * uint64(s.period)
		r.Emit(trace.EvCounter, depth, uint64(CounterNS(c)), est)
		r.Emit(trace.EvCounter, depth, uint64(CounterN(c)), n)
	}
}

// EmitSnapshot writes an aggregated profiler snapshot onto one ring —
// the end-of-run flush path, used after every worker has exited (so
// the single-writer rule cannot be violated) and by the trace
// experiment, which attributes an untraced run and then stamps its
// totals into the traced run's export. runWallNS/seqWallNS, when
// nonzero, record the attributed run's wall time and the sequential
// baseline for the summarizer's gap math.
func EmitSnapshot(snap *Snapshot, r *trace.Ring, runWallNS, seqWallNS int64) {
	if snap == nil || r == nil || !trace.Enabled() {
		return
	}
	r.Emit(trace.EvCounter, 0, uint64(trace.CtrAttrPeriod), uint64(snap.Period))
	if runWallNS > 0 {
		r.Emit(trace.EvCounter, 0, uint64(trace.CtrAttrRunWallNS), uint64(runWallNS))
	}
	if seqWallNS > 0 {
		r.Emit(trace.EvCounter, 0, uint64(trace.CtrAttrSeqWallNS), uint64(seqWallNS))
	}
	for c := Component(0); c < NumComponents; c++ {
		if snap.Samples[c] == 0 {
			continue
		}
		r.Emit(trace.EvCounter, 0, uint64(CounterNS(c)), snap.EstNS(c))
		r.Emit(trace.EvCounter, 0, uint64(CounterN(c)), snap.Samples[c])
	}
}
