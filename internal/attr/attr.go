// Package attr is a sampled cycle-level cost-attribution profiler for
// the runtime's slow paths (DESIGN.md §10). It answers the question the
// trace counters cannot: of the measured T1−Tseq gap on an entangled
// benchmark, how many nanoseconds go to pin CAS vs gate traffic vs
// remset publication vs ancestry vs unpin-at-join?
//
// The design copies the trace package's discipline exactly:
//
//   - Instrumentation sites cost one nil test when no profiler is
//     installed, and one decrement + branch when installed but not
//     sampling this occurrence. Only 1-in-period occurrences pay for
//     two monotonic clock reads.
//   - Every Sink is single-writer: it is owned by exactly one strand
//     (a worker, or the collector), the same ownership rule as
//     trace.Ring. The sampling countdown is therefore a plain field.
//     The accumulated totals are atomics written only by the owner and
//     read by concurrent Snapshot callers (telemetry, tests).
//   - Results flush through the existing trace rings as counter
//     events, so the Chrome export, the summarizer, and the grid
//     runner all see attribution without a new transport.
//
// Sampling math: with period N, each recorded sample stands for N
// occurrences, so the estimated total cost of a component is
// (sum of sampled durations) × N. The per-sample timer bias (the cost
// of the two clock reads themselves) is calibrated once at profiler
// construction and subtracted from every sample, floored at zero.
// Known biases that remain: (1) the sampled windows include the
// instrumentation branches of *nested* sites, so components are
// measured as disjoint tiles of the slow path they cover, not as pure
// algorithmic cost; (2) countdown re-arm is jittered uniformly in
// [period/2, 3·period/2) to avoid phase-locking with loop strides, so
// the effective period is N in expectation, not exactly N per sample.
package attr

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Component is one named slot of the slow-path cost budget. The order
// here is load-bearing: trace counter ids (trace.CtrAttrPinCASNS and
// friends) are laid out in this order, two per component, and
// EmitCounters computes ids by offset. A test in this package pins the
// alignment.
type Component int32

const (
	PinCAS        Component = iota // object-header pin CAS (PinHeader + AddPinned publication)
	PinRetry                       // pin found BUSY/FORWARDED: forwarding chase + re-read
	GateEnter                      // per-heap reader-gate acquire (incl. collector waits)
	GateExit                       // reader-gate release + slow-path tail bookkeeping
	RemsetPublish                  // down-pointer remembered-set publication
	AncestryQuery                  // fork-path ancestry / LCA / unpin-depth computation
	UnpinAtJoin                    // unpin sweep over the child's pinned set at a join
	ShadeQueue                     // SATB shade push (mutator) / shade-stack drain (collector)
	BudgetPoll                     // allocation-budget poll deciding whether to GC
	StealLoop                      // one full victim scan of the steal loop
	MergeWait                      // waiting out collectors on both gates before a merge
	NumComponents
)

var componentSlugs = [NumComponents]string{
	PinCAS:        "pin_cas",
	PinRetry:      "pin_retry",
	GateEnter:     "gate_enter",
	GateExit:      "gate_exit",
	RemsetPublish: "remset_publish",
	AncestryQuery: "ancestry_query",
	UnpinAtJoin:   "unpin_at_join",
	ShadeQueue:    "shade_queue",
	BudgetPoll:    "budget_poll",
	StealLoop:     "steal_loop",
	MergeWait:     "merge_wait",
}

// Slug returns the snake_case name used in trace counter names
// ("attr_<slug>_ns" / "attr_<slug>_n") and report rows.
func (c Component) Slug() string {
	if c < 0 || c >= NumComponents {
		return "unknown"
	}
	return componentSlugs[c]
}

// ComponentFromSlug inverts Slug; ok is false for unknown names.
func ComponentFromSlug(s string) (Component, bool) {
	for c, slug := range componentSlugs {
		if slug == s {
			return Component(c), true
		}
	}
	return 0, false
}

// Buckets is the number of log2-ns histogram buckets per component:
// bucket i holds samples with duration in [2^(i−1), 2^i) ns (bucket 0
// holds zero-duration samples after bias subtraction).
const Buckets = 28

// DefaultPeriod is the default sampling period: 1 in 1024 occurrences
// pay for the clock reads. The enabled-overhead sanity test pins this
// at <3% on the entangled T1 suite.
const DefaultPeriod = 1024

// enabled is a refcount, exactly like trace.enabled: sites check it on
// the sampled (slow) path only, so flipping it never races with a
// sample in flight in a way that matters — a stale read means one
// sample is attributed to the old state.
var enabled atomic.Int32

// Enabled reports whether at least one attribution consumer is active.
func Enabled() bool { return enabled.Load() > 0 }

// Enable turns sampling on (refcounted).
func Enable() { enabled.Add(1) }

// Disable undoes one Enable.
func Disable() { enabled.Add(-1) }

// Sink accumulates samples for one strand. All mutation goes through
// the owning strand (single-writer); the atomic fields may be read
// concurrently by Profiler.Snapshot. The zero Sink is unusable — only
// NewProfiler hands them out.
type Sink struct {
	_ [64]byte // keep neighbouring allocations off this line

	// Owner-only plain state (hot: touched every instrumented
	// occurrence).
	countdown int64
	period    int64
	rng       uint64
	biasNS    int64
	start     time.Time

	_ [64]byte

	// Totals: owner-written, concurrently readable.
	samples   [NumComponents]atomic.Uint64
	sampledNS [NumComponents]atomic.Uint64
	hist      [NumComponents][Buckets]atomic.Uint64

	_ [64]byte
}

// Begin starts a sampled timing window. It returns 0 when this
// occurrence is not sampled (the overwhelmingly common case: one
// decrement and one branch) and a nonzero monotonic timestamp when it
// is. Nil-safe: a nil Sink always returns 0.
//
//go:nosplit
func (s *Sink) Begin() int64 {
	if s == nil {
		return 0
	}
	s.countdown--
	if s.countdown > 0 {
		return 0
	}
	return s.beginSlow()
}

// beginSlow re-arms the countdown and, if attribution is enabled,
// opens a timing window. Kept out of Begin so the common path inlines.
func (s *Sink) beginSlow() int64 {
	// Jittered re-arm in [period/2, 3·period/2): xorshift64.
	r := s.rng
	r ^= r << 13
	r ^= r >> 7
	r ^= r << 17
	s.rng = r
	s.countdown = s.period/2 + int64(r%uint64(s.period))
	if enabled.Load() <= 0 {
		return 0
	}
	now := time.Since(s.start).Nanoseconds()
	if now == 0 {
		now = 1 // 0 is the "not sampling" sentinel
	}
	return now
}

// End closes a timing window opened by Begin, attributing the elapsed
// time to component c. A zero t0 (not sampled, or nil sink) is a no-op
// and must be checked before touching the receiver.
//
//go:nosplit
func (s *Sink) End(c Component, t0 int64) {
	if t0 == 0 {
		return
	}
	s.record(c, time.Since(s.start).Nanoseconds()-t0)
}

// Lap attributes the segment since t0 to component c and returns a
// fresh timestamp, letting consecutive Lap calls tile a slow path into
// disjoint component windows with one clock read per boundary. Returns
// 0 (propagating "not sampled") when t0 is 0.
//
//go:nosplit
func (s *Sink) Lap(c Component, t0 int64) int64 {
	if t0 == 0 {
		return 0
	}
	now := time.Since(s.start).Nanoseconds()
	s.record(c, now-t0)
	if now == 0 {
		now = 1
	}
	return now
}

func (s *Sink) record(c Component, d int64) {
	d -= s.biasNS
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= Buckets {
		b = Buckets - 1
	}
	// Owner-only writes: Load+Store is race-free here and keeps the
	// fields atomically readable for concurrent Snapshot callers.
	s.samples[c].Store(s.samples[c].Load() + 1)
	s.sampledNS[c].Store(s.sampledNS[c].Load() + uint64(d))
	s.hist[c][b].Store(s.hist[c][b].Load() + 1)
}

// Profiler owns one Sink per worker plus one for the collector, the
// same layout as trace.Tracer's rings. A nil *Profiler is a valid
// "attribution off" value everywhere: Sink() returns nil sinks, whose
// Begin returns 0.
type Profiler struct {
	sinks  []*Sink
	period int64
	biasNS int64
	start  time.Time
}

// NewProfiler builds a profiler for procs workers (plus the collector
// sink) sampling 1 in period occurrences; period <= 0 selects
// DefaultPeriod. The timer bias is calibrated here, once.
func NewProfiler(procs int, period int64) *Profiler {
	if period <= 0 {
		period = DefaultPeriod
	}
	p := &Profiler{period: period, start: time.Now()}
	p.biasNS = calibrateBias(p.start)
	p.sinks = make([]*Sink, procs+1)
	for i := range p.sinks {
		p.sinks[i] = &Sink{
			period: period,
			// Stagger initial countdowns so workers don't sample in
			// lockstep at startup.
			countdown: period/2 + int64(i)*(period/int64(len(p.sinks))+1),
			rng:       uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
			biasNS:    p.biasNS,
			start:     p.start,
		}
	}
	return p
}

// calibrateBias measures the cost of the Begin/End clock-read pair by
// taking the minimum over a burst of back-to-back reads (minimum, not
// mean: interrupts only ever inflate).
func calibrateBias(start time.Time) int64 {
	best := int64(1 << 30)
	for i := 0; i < 256; i++ {
		t0 := time.Since(start).Nanoseconds()
		t1 := time.Since(start).Nanoseconds()
		if d := t1 - t0; d < best {
			best = d
		}
	}
	if best < 0 || best == 1<<30 {
		best = 0
	}
	return best
}

// Period returns the sampling period.
func (p *Profiler) Period() int64 {
	if p == nil {
		return 0
	}
	return p.period
}

// BiasNS returns the calibrated per-sample timer bias.
func (p *Profiler) BiasNS() int64 {
	if p == nil {
		return 0
	}
	return p.biasNS
}

// Sink returns worker i's sink, or nil when the profiler is nil or i
// is out of range — callers store the result unconditionally.
func (p *Profiler) Sink(i int) *Sink {
	if p == nil || i < 0 || i >= len(p.sinks)-1 {
		return nil
	}
	return p.sinks[i]
}

// CollectorSink returns the sink owned by the concurrent collector.
func (p *Profiler) CollectorSink() *Sink {
	if p == nil {
		return nil
	}
	return p.sinks[len(p.sinks)-1]
}

// Snapshot is one coherent-enough aggregate view of all sinks: totals
// are summed with atomic loads, so a snapshot taken mid-run can be mid
// sample on some strand but never torn within a field.
type Snapshot struct {
	Period  int64                          `json:"period"`
	BiasNS  int64                          `json:"bias_ns"`
	Samples [NumComponents]uint64          `json:"-"`
	NS      [NumComponents]uint64          `json:"-"`
	Hist    [NumComponents][Buckets]uint64 `json:"-"`

	// Components is the JSON-facing view: slug → {samples, sampled
	// ns, estimated total ns}, populated by Snapshot.
	Components map[string]ComponentStats `json:"components"`
}

// ComponentStats is one component's aggregate in a Snapshot.
type ComponentStats struct {
	Samples   uint64   `json:"samples"`
	SampledNS uint64   `json:"sampled_ns"`
	EstNS     uint64   `json:"est_ns"` // SampledNS × period
	Hist      []uint64 `json:"hist,omitempty"`
}

// Snapshot aggregates all sinks. Safe to call concurrently with
// sampling (this is the read side of the single-writer discipline).
func (p *Profiler) Snapshot() *Snapshot {
	if p == nil {
		return nil
	}
	snap := &Snapshot{Period: p.period, BiasNS: p.biasNS, Components: map[string]ComponentStats{}}
	for _, s := range p.sinks {
		for c := Component(0); c < NumComponents; c++ {
			snap.Samples[c] += s.samples[c].Load()
			snap.NS[c] += s.sampledNS[c].Load()
			for b := 0; b < Buckets; b++ {
				snap.Hist[c][b] += s.hist[c][b].Load()
			}
		}
	}
	for c := Component(0); c < NumComponents; c++ {
		if snap.Samples[c] == 0 {
			continue
		}
		cs := ComponentStats{
			Samples:   snap.Samples[c],
			SampledNS: snap.NS[c],
			EstNS:     snap.NS[c] * uint64(p.period),
		}
		for b := Buckets - 1; b >= 0; b-- {
			if snap.Hist[c][b] != 0 {
				cs.Hist = append([]uint64{}, snap.Hist[c][:b+1]...)
				break
			}
		}
		snap.Components[c.Slug()] = cs
	}
	return snap
}

// EstNS returns the estimated total cost of component c in snap
// (sampled ns scaled by the period).
func (snap *Snapshot) EstNS(c Component) uint64 {
	return snap.NS[c] * uint64(snap.Period)
}

// TotalEstNS sums the estimated cost over every component.
func (snap *Snapshot) TotalEstNS() uint64 {
	var t uint64
	for c := Component(0); c < NumComponents; c++ {
		t += snap.EstNS(c)
	}
	return t
}
