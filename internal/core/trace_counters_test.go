package core

import (
	"bytes"
	"strings"
	"testing"

	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/trace"
)

// TestAncestryCountersReachTrace runs an entangled workload with tracing on
// and checks the ancestry-oracle counters flow end to end: Tree.Stats is
// installed alongside the tracer, join/LGC sites sample it into counter
// events, and the Chrome export + summary surface them by name. On the
// default fork-path oracle the retry counter must stay zero — there is no
// retry path to count.
func TestAncestryCountersReachTrace(t *testing.T) {
	tracer := trace.NewTracer(4, 1<<14)
	rt := New(Config{Procs: 4, HeapBudgetWords: 2048, Tracer: tracer})
	if rt.tree.Stats == nil {
		t.Fatal("tracer installed but Tree.Stats not wired")
	}
	trace.Enable()
	_, err := rt.Run(randomProgram(11, 6, true))
	trace.Disable()
	if err != nil {
		t.Fatal(err)
	}
	if rt.tree.Stats.AncestryQueries.Load() == 0 {
		t.Fatal("entangled run consulted no ancestry oracle")
	}
	if n := rt.tree.Stats.SeqlockRetries.Load(); n != 0 {
		t.Fatalf("fork-path oracle counted %d seqlock retries", n)
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tracer); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	// The retry track is exported (all-zero on this oracle); Summarize's
	// CounterMax only records counters that ever went positive.
	if !strings.Contains(raw, `"seqlock_retries"`) {
		t.Fatal("seqlock_retries track missing from Chrome export")
	}
	s, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if max, ok := s.CounterMax[trace.CtrAncestryQueries]; !ok || max == 0 {
		t.Fatalf("ancestry_queries missing from trace summary: %v", s.CounterMax)
	}
}

// TestElisionCountersReachTrace drives the unchecked accessors under a
// small budget with tracing on and checks the elision counters flow end
// to end: task-local counts drain into the runtime totals, collection
// sites sample them into counter events, and the summary surfaces them by
// name alongside ancestry_queries.
func TestElisionCountersReachTrace(t *testing.T) {
	tracer := trace.NewTracer(2, 1<<14)
	rt := New(Config{Procs: 1, HeapBudgetWords: 512, Tracer: tracer})
	rt.SetStaticRegions(3)
	trace.Enable()
	_, err := rt.Run(func(tk *Task) mem.Value {
		r := tk.AllocRefFast(mem.Int(0))
		for i := 0; i < 2000; i++ {
			tk.WriteFast(r, 0, mem.Int(tk.ReadFast(r, 0).AsInt()+1))
			r = tk.AllocRefFast(tk.ReadFast(r, 0))
		}
		return tk.ReadFast(r, 0)
	})
	trace.Disable()
	if err != nil {
		t.Fatal(err)
	}
	es := rt.ElisionStats()
	if es.StaticRegions != 3 || es.ElidedLoads == 0 || es.ElidedStores == 0 || es.ElidedAllocs == 0 {
		t.Fatalf("elision totals not accumulated: %+v", es)
	}
	if s := rt.EntStats(); s.SlowReads != 0 {
		t.Fatalf("unchecked accessors entered the slow path %d times", s.SlowReads)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tracer); err != nil {
		t.Fatal(err)
	}
	s, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []trace.Counter{trace.CtrStaticRegions, trace.CtrElidedLoads, trace.CtrElidedStores} {
		if max, ok := s.CounterMax[c]; !ok || max == 0 {
			t.Fatalf("%v missing from trace summary: %v", c, s.CounterMax)
		}
	}
}

// TestAncestryModesEndToEnd runs the entangled stress workload through the
// runtime under every ancestry oracle — including AncestryBoth, which
// panics on any fork-path/order-list divergence mid-run — and checks
// results and pin accounting agree with a sequential baseline.
func TestAncestryModesEndToEnd(t *testing.T) {
	for _, seed := range []uint64{5, 17} {
		prog := randomProgram(seed, 6, true)
		var want int64
		{
			rt := New(Config{Procs: 1})
			v, err := rt.Run(prog)
			if err != nil {
				t.Fatalf("seed %d: baseline: %v", seed, err)
			}
			want = v.AsInt()
		}
		for _, mode := range []hierarchy.AncestryMode{
			hierarchy.AncestryForkPath, hierarchy.AncestryOrderList, hierarchy.AncestryBoth,
		} {
			for _, lazy := range []bool{false, true} {
				rt := New(Config{Procs: 4, HeapBudgetWords: 2048, Ancestry: mode, LazyHeaps: lazy})
				if got := rt.tree.Ancestry(); got != mode {
					t.Fatalf("mode %v not plumbed (got %v)", mode, got)
				}
				v, err := rt.Run(prog)
				if err != nil {
					t.Fatalf("seed %d mode %v lazy %v: %v", seed, mode, lazy, err)
				}
				if v.AsInt() != want {
					t.Fatalf("seed %d mode %v lazy %v: result %d, want %d",
						seed, mode, lazy, v.AsInt(), want)
				}
				if s := rt.EntStats(); s.Pins != s.Unpins {
					t.Fatalf("seed %d mode %v lazy %v: pins %d != unpins %d",
						seed, mode, lazy, s.Pins, s.Unpins)
				}
			}
		}
	}
}
