// Package core assembles the runtime: the scheduler (sched), heap
// hierarchy (hierarchy), entanglement manager (entangle), and local
// collector (gc) behind a Task API with the barriers of the paper:
//
//   - Task.Read carries the read barrier: a single candidate-bit test on
//     the fast path, the entanglement slow path (pin/validate) otherwise.
//   - Task.Write carries the write barrier: same-heap stores are free;
//     cross-heap stores classify the edge (up/down/cross) and record
//     down-pointers or pin published objects.
//   - Task.Par forks child heaps mirroring the task tree and merges them
//     at joins, unpinning entangled objects whose unpin depth is reached.
//   - Allocation is per-task bump allocation; when a task's allocation
//     budget is exhausted it collects its exclusive heap suffix (LGC).
//
// Package mpl re-exports this API as the library's public surface.
package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mplgo/internal/attr"
	"mplgo/internal/chaos"
	"mplgo/internal/entangle"
	"mplgo/internal/gc"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/sched"
	"mplgo/internal/sim"
	"mplgo/internal/trace"
)

// ErrCancelled is returned by Run when the computation was aborted via
// Runtime.Cancel before completing.
var ErrCancelled = errors.New("core: computation cancelled")

// ErrHeapLimit is returned by Run when Config.MaxHeapWords was exceeded
// and a forced local collection could not bring residency back under it.
var ErrHeapLimit = errors.New("core: heap limit exceeded")

// PanicError wraps a panic recovered from a task branch. Run returns it
// instead of letting the panic kill a worker goroutine (which used to hang
// the pool). Unwrap exposes panics whose value was itself an error — the
// typed resource-exhaustion panics (mem.ErrChunkTableExhausted, and on the
// legacy order-list oracle only, order.ErrLabelSpaceExhausted — the default
// fork-path oracle has no label space to exhaust) surface through errors.Is
// this way.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack at recovery
}

func (e *PanicError) Error() string { return fmt.Sprintf("core: panic in task: %v", e.Value) }

func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Abstract cost constants for the simulator's work accounting.
const (
	costAccess   = 1  // one barriered read or write
	costSlowRead = 30 // entanglement slow path (lock, ancestry, pin)
	costGCWord   = 1  // per word copied by a collection
	costFork     = 40 // heap creation + scheduling at a fork
)

// Config parameterizes a Runtime.
type Config struct {
	// Procs is the number of scheduler workers. Default 1.
	Procs int
	// Mode selects entanglement handling (manage / detect / unsafe).
	Mode entangle.Mode
	// LazyHeaps materializes child heaps only at steals, as MPL does for
	// performance; the default (false) creates heaps at every fork, which
	// gives the paper's object-level semantics deterministically.
	LazyHeaps bool
	// HeapBudgetWords triggers a local collection when a task has
	// allocated this many words since the last one. Default 1<<17.
	HeapBudgetWords int64
	// DisableGC turns off local collections (the heaps only grow).
	DisableGC bool
	// Record captures the fork–join DAG with abstract costs for the
	// simulator (package sim).
	Record bool
	// Seed makes scheduling decisions reproducible.
	Seed int64
	// MaxHeapWords, when positive, is a backpressure limit on total
	// simulated residency: an allocation that finds LiveWords above it
	// forces a local collection, and if residency is still above the
	// limit afterwards the computation is cancelled with ErrHeapLimit
	// instead of growing without bound.
	MaxHeapWords int64
	// Chaos, when non-nil, enables the deterministic fault-injection
	// layer (package chaos), seeded from Seed: forced collections,
	// widened steal windows, spurious gate contention and refused header
	// CASes, plus invariant audits at joins, collection ends, and the end
	// of Run. For testing only — never set in timing runs.
	Chaos *chaos.Options
	// CGC enables the concurrent collector (gc.CGC): a dedicated worker
	// that marks and sweeps internal heaps — heaps suspended under live
	// children, which local collections cannot reach — while the
	// computation runs. Off by default; timing runs keep it off so the
	// mutator fast paths carry no barrier cost (every CGC hook is gated on
	// a nil test).
	CGC bool
	// CGCThresholdWords is the trigger floor: the collector worker starts
	// a cycle only while total residency exceeds it. Default 1<<15.
	CGCThresholdWords int64
	// Tracer, when non-nil, installs per-worker event rings (package
	// trace): each scheduler worker and each task heap gets the ring of
	// the strand running it, and the concurrent collector gets the
	// tracer's extra ring. Installing a tracer does not start tracing —
	// events flow only while trace.Enable is in effect — and timing runs
	// leave Tracer nil so every instrumentation site stays a nil test.
	Tracer *trace.Tracer
	// Ancestry selects the heap tree's ancestry oracle. The zero value is
	// hierarchy.AncestryForkPath, the DePa fork-path words (the default);
	// AncestryOrderList keeps the retired seqlock'd order-maintenance list
	// for ablation, and AncestryBoth runs both oracles differentially
	// (testing only — every query pays for two answers plus a compare).
	Ancestry hierarchy.AncestryMode
	// Attr, when non-nil, installs the sampled cost-attribution profiler
	// (package attr): each scheduler worker and each task heap gets the
	// sink of the strand running it, the concurrent collector gets the
	// profiler's extra sink, and the space counts pin-CAS outcomes.
	// Installing a profiler does not start sampling — windows open only
	// while attr.Enable is in effect — and timing runs leave Attr nil so
	// every sampling site stays a nil test, exactly like Tracer.
	Attr *attr.Profiler
}

func (c *Config) fill() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.HeapBudgetWords <= 0 {
		c.HeapBudgetWords = 1 << 17
	}
	if c.CGCThresholdWords <= 0 {
		c.CGCThresholdWords = 1 << 15
	}
}

// Runtime is one instance of the hierarchical-heap runtime. A Runtime
// executes one computation via Run; create a fresh Runtime per computation.
type Runtime struct {
	cfg   Config
	space *mem.Space
	tree  *hierarchy.Tree
	ent   *entangle.Manager
	col   *gc.Collector
	pool  *sched.Pool
	trace *sim.Node
	chaos *chaos.Injector

	// cgc is the concurrent collector, nil unless Config.CGC. cgcExcl
	// serializes its cycles against local collections (see cgc.go);
	// cgcTasks is the handshake registry, guarded by cgcMu.
	cgc      *gc.CGC
	cgcExcl  sync.RWMutex
	cgcMu    sync.Mutex
	cgcTasks map[*Task]struct{}

	// cancelled is the runtime-wide cooperative cancellation flag, set by
	// Cancel, by a recovered branch panic, and by unrecoverable resource
	// exhaustion. Tasks poll it at forks, allocation slow paths, and the
	// read-barrier slow path; once set, Par stops forking, ParFor returns,
	// and no further collections run, so the computation unwinds quickly
	// and Run returns the first recorded error.
	cancelled atomic.Bool

	// Barrier-elision telemetry: totals of unchecked accesses executed
	// (drained from task-local counters) plus the static-region count the
	// language front end proved (SetStaticRegions).
	elLoads   atomic.Int64
	elStores  atomic.Int64
	elAllocs  atomic.Int64
	elRegions atomic.Int64

	errMu sync.Mutex
	err   error
}

// ElisionStats summarizes barrier elision for one runtime: how many
// unchecked loads/stores/allocations actually executed and how many static
// regions the front end proved disentangled.
type ElisionStats struct {
	StaticRegions int64
	ElidedLoads   int64
	ElidedStores  int64
	ElidedAllocs  int64
}

// New creates a runtime.
func New(cfg Config) *Runtime {
	cfg.fill()
	r := &Runtime{cfg: cfg, space: mem.NewSpace(), tree: hierarchy.NewWithAncestry(cfg.Ancestry)}
	r.ent = entangle.New(r.space, r.tree, cfg.Mode)
	r.col = gc.New(r.space, r.tree)
	r.pool = sched.NewPool(cfg.Procs, cfg.Seed)
	// Safety net under the per-branch recovery in Task.Par: a panic that
	// escapes a branch's own guard (e.g. from the join bookkeeping itself)
	// is still converted to an error and the pool still drains.
	r.pool.OnPanic = func(v any) { r.cancelWith(recoveredError(v)) }
	if cfg.Chaos != nil {
		r.chaos = chaos.New(cfg.Seed, *cfg.Chaos)
		r.space.Chaos = r.chaos
		r.tree.SetChaos(r.chaos)
		r.pool.Chaos = r.chaos
	}
	if cfg.Tracer != nil {
		for i, w := range r.pool.Workers() {
			w.Ring = cfg.Tracer.Ring(i)
		}
		// Count ancestry-oracle traffic only in traced runtimes: the query
		// hot path pays a nil test when untraced, an uncontended-by-design
		// atomic add when traced.
		r.tree.Stats = &hierarchy.TreeStats{}
	}
	if cfg.Attr != nil {
		for i, w := range r.pool.Workers() {
			w.Attr = cfg.Attr.Sink(i)
		}
		r.space.PinStats = &mem.PinCASStats{}
	}
	if cfg.CGC {
		// After the chaos block: the collector inherits the injector so
		// the CGCMark/CGCSweep/CGCShade points fire in chaos runs.
		r.cgc = gc.NewCGC(r.space, r.tree, r.chaos)
		r.cgc.Ring = cfg.Tracer.CollectorRing()
		r.cgc.Attr = cfg.Attr.CollectorSink()
		r.ent.SATB = r.cgc
		r.cgcTasks = make(map[*Task]struct{})
		r.pool.Aux = r.cgcLoop
	}
	if cfg.Record {
		r.trace = sim.NewTrace()
	}
	return r
}

// Run executes f as the root task and returns its result. If the runtime
// is in Detect mode and the program entangled, the first entanglement error
// is returned (the paper's baseline MPL would abort here; we complete the
// run safely and surface the error).
//
// A panic in f or in any Par branch does not crash the process or hang the
// pool: it is recovered, converted to a *PanicError, and returned here with
// every worker drained and the heap hierarchy consistent. Likewise Cancel
// and resource exhaustion surface as ErrCancelled / ErrHeapLimit /
// the wrapped typed exhaustion errors.
func (r *Runtime) Run(f func(*Task) mem.Value) (mem.Value, error) {
	var out mem.Value
	r.pool.Run(func(w *sched.Worker) {
		t := r.newTask(w, r.tree.Root(), r.trace)
		defer t.finish()
		defer r.guard()
		out = f(t)
	})
	if r.cfg.Attr != nil && r.cfg.Tracer != nil {
		// Final attribution flush: the pool has drained, so no worker
		// writes its ring or sink anymore and this goroutine may emit the
		// totals of every (sink, ring) pair without breaking the
		// single-writer contract.
		for i := 0; i < r.pool.P(); i++ {
			r.cfg.Attr.Sink(i).EmitCounters(r.cfg.Tracer.Ring(i), 0)
		}
		r.cfg.Attr.CollectorSink().EmitCounters(r.cfg.Tracer.CollectorRing(), 0)
	}
	if r.chaos != nil {
		// The pool has drained: the computation is quiescent, so the
		// strict audit (gates drained, pins balanced, no reachable
		// forwarding headers) must hold even after injected faults,
		// panics, or cancellation.
		if err := gc.CheckInvariants(r.space, r.tree, true); err != nil {
			r.fail(err)
		}
	}
	return out, r.Err()
}

// Cancel aborts the computation cooperatively: tasks observe the flag at
// forks, allocation slow paths and barrier slow paths, stop forking, and
// unwind. Run returns ErrCancelled (or an earlier recorded error). Safe to
// call from any goroutine, including outside the pool.
func (r *Runtime) Cancel() { r.cancelWith(ErrCancelled) }

// Cancelled reports whether the runtime's cancellation flag is set.
func (r *Runtime) Cancelled() bool { return r.cancelled.Load() }

// cancelWith records err (first error wins) and raises the cancellation
// flag.
func (r *Runtime) cancelWith(err error) {
	r.fail(err)
	r.cancelled.Store(true)
}

// guard is deferred around task branch bodies: it converts a panic into a
// recorded error plus runtime-wide cancellation, so the sibling branch
// unwinds cooperatively and the join's merge bookkeeping (deferred after
// guard) still runs, keeping the hierarchy consistent.
func (r *Runtime) guard() {
	if v := recover(); v != nil {
		r.cancelWith(recoveredError(v))
	}
}

// recoveredError converts a recovered panic value into the error Run
// reports.
func recoveredError(v any) error {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// CheckInvariants runs the strict (quiescent-point) invariant audit over
// the whole heap hierarchy: gate reader counts zero, per-chunk pin
// accounting balanced, headers parseable, remembered entries well-formed,
// and no live path reaching a forwarding header. Call it only when no
// computation is running (e.g. after Run returns).
func (r *Runtime) CheckInvariants() error {
	return gc.CheckInvariants(r.space, r.tree, true)
}

// ChaosReport renders per-point injection totals ("chaos: off" when the
// fault-injection layer is disabled), for failure dumps.
func (r *Runtime) ChaosReport() string { return r.chaos.Report() }

// Chaos exposes the fault-injection layer (nil when disabled) so host
// packages with their own injection points — the admission controller's
// shed-storm and burst sites (internal/serve) — draw decisions from the
// same seeded stream the runtime replays.
func (r *Runtime) Chaos() *chaos.Injector { return r.chaos }

// Err returns the first entanglement error recorded (Detect mode).
func (r *Runtime) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

func (r *Runtime) fail(err error) {
	if err == nil {
		return
	}
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
}

// Space exposes the simulated heap (for checkers and experiments).
func (r *Runtime) Space() *mem.Space { return r.space }

// Tree exposes the heap hierarchy (for experiments).
func (r *Runtime) Tree() *hierarchy.Tree { return r.tree }

// EntStats returns the entanglement cost metrics.
func (r *Runtime) EntStats() entangle.StatsSnapshot { return r.ent.Stats.Snapshot() }

// SetStaticRegions records the number of statically-proven disentangled
// regions for the computation (reported by a language front end's
// analysis; zero when no elision is in play).
func (r *Runtime) SetStaticRegions(n int64) { r.elRegions.Store(n) }

// ElisionStats returns the barrier-elision totals.
func (r *Runtime) ElisionStats() ElisionStats {
	return ElisionStats{
		StaticRegions: r.elRegions.Load(),
		ElidedLoads:   r.elLoads.Load(),
		ElidedStores:  r.elStores.Load(),
		ElidedAllocs:  r.elAllocs.Load(),
	}
}

// GCStats reports collection totals.
func (r *Runtime) GCStats() (collections, copiedWords, reclaimedWords int64) {
	return r.col.Collections.Load(), r.col.CopiedWords.Load(), r.col.ReclaimedWords.Load()
}

// Trace returns the recorded DAG, or nil if recording was off.
func (r *Runtime) Trace() *sim.Node { return r.trace }

// Tracer returns the event tracer installed via Config.Tracer (nil when
// untraced).
func (r *Runtime) Tracer() *trace.Tracer { return r.cfg.Tracer }

// AttrProfiler returns the cost-attribution profiler installed via
// Config.Attr (nil when attribution is off).
func (r *Runtime) AttrProfiler() *attr.Profiler { return r.cfg.Attr }

// PinCASStats returns a snapshot of the pin-CAS outcome counters
// (zero when no profiler is installed).
func (r *Runtime) PinCASStats() mem.PinCASSnapshot { return r.space.PinStats.Snapshot() }

// Steals reports total scheduler steals.
func (r *Runtime) Steals() int64 { return r.pool.TotalSteals() }

// MaxLiveWords reports the space high-water mark (max residency).
func (r *Runtime) MaxLiveWords() int64 { return r.space.MaxLiveWords() }

// Mode returns the runtime's entanglement mode.
func (r *Runtime) Mode() entangle.Mode { return r.cfg.Mode }
