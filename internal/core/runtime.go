// Package core assembles the runtime: the scheduler (sched), heap
// hierarchy (hierarchy), entanglement manager (entangle), and local
// collector (gc) behind a Task API with the barriers of the paper:
//
//   - Task.Read carries the read barrier: a single candidate-bit test on
//     the fast path, the entanglement slow path (pin/validate) otherwise.
//   - Task.Write carries the write barrier: same-heap stores are free;
//     cross-heap stores classify the edge (up/down/cross) and record
//     down-pointers or pin published objects.
//   - Task.Par forks child heaps mirroring the task tree and merges them
//     at joins, unpinning entangled objects whose unpin depth is reached.
//   - Allocation is per-task bump allocation; when a task's allocation
//     budget is exhausted it collects its exclusive heap suffix (LGC).
//
// Package mpl re-exports this API as the library's public surface.
package core

import (
	"sync"

	"mplgo/internal/entangle"
	"mplgo/internal/gc"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/sched"
	"mplgo/internal/sim"
)

// Abstract cost constants for the simulator's work accounting.
const (
	costAccess   = 1  // one barriered read or write
	costSlowRead = 30 // entanglement slow path (lock, ancestry, pin)
	costGCWord   = 1  // per word copied by a collection
	costFork     = 40 // heap creation + scheduling at a fork
)

// Config parameterizes a Runtime.
type Config struct {
	// Procs is the number of scheduler workers. Default 1.
	Procs int
	// Mode selects entanglement handling (manage / detect / unsafe).
	Mode entangle.Mode
	// LazyHeaps materializes child heaps only at steals, as MPL does for
	// performance; the default (false) creates heaps at every fork, which
	// gives the paper's object-level semantics deterministically.
	LazyHeaps bool
	// HeapBudgetWords triggers a local collection when a task has
	// allocated this many words since the last one. Default 1<<17.
	HeapBudgetWords int64
	// DisableGC turns off local collections (the heaps only grow).
	DisableGC bool
	// Record captures the fork–join DAG with abstract costs for the
	// simulator (package sim).
	Record bool
	// Seed makes scheduling decisions reproducible.
	Seed int64
}

func (c *Config) fill() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.HeapBudgetWords <= 0 {
		c.HeapBudgetWords = 1 << 17
	}
}

// Runtime is one instance of the hierarchical-heap runtime. A Runtime
// executes one computation via Run; create a fresh Runtime per computation.
type Runtime struct {
	cfg   Config
	space *mem.Space
	tree  *hierarchy.Tree
	ent   *entangle.Manager
	col   *gc.Collector
	pool  *sched.Pool
	trace *sim.Node

	errMu sync.Mutex
	err   error
}

// New creates a runtime.
func New(cfg Config) *Runtime {
	cfg.fill()
	r := &Runtime{cfg: cfg, space: mem.NewSpace(), tree: hierarchy.New()}
	r.ent = entangle.New(r.space, r.tree, cfg.Mode)
	r.col = gc.New(r.space, r.tree)
	r.pool = sched.NewPool(cfg.Procs, cfg.Seed)
	if cfg.Record {
		r.trace = sim.NewTrace()
	}
	return r
}

// Run executes f as the root task and returns its result. If the runtime
// is in Detect mode and the program entangled, the first entanglement error
// is returned (the paper's baseline MPL would abort here; we complete the
// run safely and surface the error).
func (r *Runtime) Run(f func(*Task) mem.Value) (mem.Value, error) {
	var out mem.Value
	r.pool.Run(func(w *sched.Worker) {
		t := r.newTask(w, r.tree.Root(), r.trace)
		out = f(t)
		t.finish()
	})
	return out, r.Err()
}

// Err returns the first entanglement error recorded (Detect mode).
func (r *Runtime) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

func (r *Runtime) fail(err error) {
	if err == nil {
		return
	}
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
}

// Space exposes the simulated heap (for checkers and experiments).
func (r *Runtime) Space() *mem.Space { return r.space }

// Tree exposes the heap hierarchy (for experiments).
func (r *Runtime) Tree() *hierarchy.Tree { return r.tree }

// EntStats returns the entanglement cost metrics.
func (r *Runtime) EntStats() entangle.StatsSnapshot { return r.ent.Stats.Snapshot() }

// GCStats reports collection totals.
func (r *Runtime) GCStats() (collections, copiedWords, reclaimedWords int64) {
	return r.col.Collections, r.col.CopiedWords, r.col.ReclaimedWords
}

// Trace returns the recorded DAG, or nil if recording was off.
func (r *Runtime) Trace() *sim.Node { return r.trace }

// Steals reports total scheduler steals.
func (r *Runtime) Steals() int64 { return r.pool.TotalSteals() }

// MaxLiveWords reports the space high-water mark (max residency).
func (r *Runtime) MaxLiveWords() int64 { return r.space.MaxLiveWords() }

// Mode returns the runtime's entanglement mode.
func (r *Runtime) Mode() entangle.Mode { return r.cfg.Mode }
