package core

import (
	"fmt"
	"testing"

	"mplgo/internal/chaos"
	"mplgo/internal/mem"
)

// Tests for the concurrent collector (gc.CGC) wired through the runtime:
// the server-style churn workload whose footprint the issue's acceptance
// criterion is stated over, the chaos soak with the CGC injection points
// armed, and the off-switch guard.

// cgcChurn is the server-style workload: a long-lived array in the root
// heap is repeatedly refreshed (the displaced tuples become root-heap
// garbage) while fork–join rounds run underneath it. Because the root task
// is parked under live children for the whole branch phase of every round,
// the root heap is internal exactly then — the only collector that can
// touch the accumulated garbage is the concurrent one. Returns a checksum
// of the live array for integrity checking.
func cgcChurn(t *Task, rounds, keep, garbage, branchWork int) mem.Value {
	f := t.NewFrame(1)
	defer f.Pop()
	f.Set(0, t.AllocArray(keep, mem.Nil).Value())
	for r := 0; r < rounds; r++ {
		// Refresh one slot: the overwritten tuple dies in the root heap.
		// During a marking cycle this store runs the SATB deletion barrier.
		slot := r % keep
		tup := t.AllocTuple(mem.Int(int64(r)), mem.Int(int64(slot)))
		t.Write(f.Ref(0), slot, tup.Value())
		// Per-round garbage in the root heap, dead before the fork below.
		for i := 0; i < garbage; i++ {
			t.AllocTuple(mem.Int(int64(i)), mem.Int(int64(r)))
		}
		// The fork–join round: branches allocate in child heaps; their
		// results are discarded, so the merged chunks are garbage the next
		// round's concurrent cycle can reclaim.
		t.Par(
			func(t *Task) mem.Value {
				var last mem.Ref
				for i := 0; i < branchWork; i++ {
					last = t.AllocTuple(mem.Int(int64(i)), mem.Int(1))
				}
				return last.Value()
			},
			func(t *Task) mem.Value {
				var last mem.Ref
				for i := 0; i < branchWork; i++ {
					last = t.AllocTuple(mem.Int(int64(i)), mem.Int(2))
				}
				return last.Value()
			},
		)
	}
	// Checksum the live state: every slot must still hold the tuple from
	// the round that last wrote it, concurrent sweeps notwithstanding. A
	// slot a sweep wrongly reclaimed shows up as a checksum mismatch
	// (never-written slots are Nil by construction when rounds < keep).
	var sum int64
	for i := 0; i < keep; i++ {
		if v := t.Read(f.Ref(0), i); v.IsRef() {
			sum += t.Read(v.Ref(), 0).AsInt()*int64(keep) + t.Read(v.Ref(), 1).AsInt()
		}
	}
	return mem.Int(sum)
}

// cgcChurnWant computes the expected checksum without running the runtime.
func cgcChurnWant(rounds, keep int) int64 {
	var sum int64
	last := make([]int, keep)
	for i := range last {
		last[i] = -1
	}
	for r := 0; r < rounds; r++ {
		last[r%keep] = r
	}
	for i, r := range last {
		if r >= 0 {
			sum += int64(r)*int64(keep) + int64(i)
		}
	}
	return sum
}

// TestCGCBoundedFootprint is the issue's acceptance soak: >=100 fork–join
// rounds against shared root-heap state with local collections disabled.
// Without CGC the footprint grows linearly in the number of rounds; with
// CGC on, concurrent cycles reclaim the internal root heap's garbage while
// the rounds run, and the high-water mark stays well below the
// unreclaimed total. The checksum proves the live state survived the
// concurrent sweeps intact.
func TestCGCBoundedFootprint(t *testing.T) {
	const (
		rounds     = 120
		keep       = 64
		garbage    = 400
		branchWork = 20000
	)
	want := cgcChurnWant(rounds, keep)

	run := func(cgcOn bool) (max int64, rt *Runtime) {
		cfg := Config{Procs: 4, DisableGC: true, Seed: 11}
		if cgcOn {
			cfg.CGC = true
			cfg.CGCThresholdWords = 1 // collect whenever there is anything at all
		}
		rt = New(cfg)
		v, err := rt.Run(func(tk *Task) mem.Value {
			return cgcChurn(tk, rounds, keep, garbage, branchWork)
		})
		if err != nil {
			t.Fatalf("cgc=%v: %v", cgcOn, err)
		}
		if got := v.AsInt(); got != want {
			t.Fatalf("cgc=%v: checksum %d, want %d", cgcOn, got, want)
		}
		return rt.MaxLiveWords(), rt
	}

	offMax, _ := run(false)
	onMax, rt := run(true)

	cycles, freed, swept, retained, lastLive := rt.CGCStats()
	t.Logf("footprint: off=%d on=%d words; cycles=%d freed=%d swept=%d retained=%d lastLive=%d",
		offMax, onMax, cycles, freed, swept, retained, lastLive)
	if cycles == 0 {
		t.Fatal("no concurrent cycles ran over 120 internal windows")
	}
	if freed == 0 && swept == 0 {
		t.Fatal("concurrent cycles reclaimed nothing (no freed words, no swept chunks)")
	}
	if onMax*2 > offMax {
		t.Fatalf("footprint not bounded: %d words with CGC on vs %d off (want <= half)",
			onMax, offMax)
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent collection: %v", err)
	}
}

// TestCGCSteadyStateFootprint is the CI footprint soak: the churn's max
// residency with CGC on must reach a steady state rather than grow with
// uptime. The CGC-off run at the same round count measures the linear
// baseline directly (footprint = accumulated garbage, deterministic, no
// collector pacing in it); the CGC-on run must stay at half of it or
// less, at a round count where the baseline is ~7x the steady state. If
// concurrent cycles silently stop claiming or fall behind, on converges
// to off and the check fails unambiguously. The off runs also validate
// the detector itself: without CGC the footprint really is linear in the
// rounds, so "on stays flat" is a property of the collector, not of the
// workload. A raw on(60)-vs-on(240) ratio was tried first and flaked:
// the high-water mark records the single worst collector lag of a run,
// and longer runs have more chances to hit one.
func TestCGCSteadyStateFootprint(t *testing.T) {
	const (
		keep       = 32
		garbage    = 300
		branchWork = 6000
	)
	run := func(rounds int, cgcOn bool) int64 {
		cfg := Config{Procs: 4, DisableGC: true, Seed: 17}
		if cgcOn {
			cfg.CGC = true
			cfg.CGCThresholdWords = 1
		}
		rt := New(cfg)
		want := cgcChurnWant(rounds, keep)
		v, err := rt.Run(func(tk *Task) mem.Value {
			return cgcChurn(tk, rounds, keep, garbage, branchWork)
		})
		if err != nil {
			t.Fatalf("rounds=%d cgc=%v: %v", rounds, cgcOn, err)
		}
		if got := v.AsInt(); got != want {
			t.Fatalf("rounds=%d cgc=%v: checksum %d, want %d", rounds, cgcOn, got, want)
		}
		if err := rt.CheckInvariants(); err != nil {
			t.Fatalf("rounds=%d cgc=%v: invariants: %v", rounds, cgcOn, err)
		}
		return rt.MaxLiveWords()
	}
	offShort := run(60, false)
	offLong := run(240, false)
	onLong := run(240, true)
	t.Logf("footprint: off(60)=%d off(240)=%d on(240)=%d words", offShort, offLong, onLong)
	if offLong < offShort*2 {
		t.Fatalf("workload no longer grows without CGC (off: %d at 60 rounds, %d at 240); "+
			"the steady-state check below would be vacuous", offShort, offLong)
	}
	if onLong*2 > offLong {
		t.Fatalf("footprint grows with uptime: %d words at 240 rounds with CGC on vs %d off "+
			"(want <= half)", onLong, offLong)
	}
}

// TestCGCOffIsFree: with Config.CGC unset no collector is allocated, no
// aux worker runs, and the per-task hooks stay behind one cached branch.
func TestCGCOffIsFree(t *testing.T) {
	rt := New(Config{Procs: 2})
	if rt.cgc != nil {
		t.Fatal("concurrent collector allocated with CGC unset")
	}
	if rt.pool.Aux != nil {
		t.Fatal("aux worker installed with CGC unset")
	}
	if _, err := rt.Run(func(tk *Task) mem.Value {
		return cgcChurn(tk, 10, 8, 50, 50)
	}); err != nil {
		t.Fatal(err)
	}
	if c, f, s, r, l := rt.CGCStats(); c|f|s|r|l != 0 {
		t.Fatalf("CGCStats nonzero with CGC off: %d %d %d %d %d", c, f, s, r, l)
	}
}

// TestCGCWithLocalGC runs the churn with both collectors enabled: local
// collections of leaf heaps defer behind concurrent cycles (cgcExcl) and
// vice versa, and both must agree on the surviving state.
func TestCGCWithLocalGC(t *testing.T) {
	const rounds, keep = 100, 32
	want := cgcChurnWant(rounds, keep)
	rt := New(Config{
		Procs:             4,
		HeapBudgetWords:   1024, // frequent local collections
		CGC:               true,
		CGCThresholdWords: 1,
		Seed:              7,
	})
	v, err := rt.Run(func(tk *Task) mem.Value {
		return cgcChurn(tk, rounds, keep, 200, 400)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.AsInt(); got != want {
		t.Fatalf("checksum %d, want %d", got, want)
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestChaosCGCSoak layers the fault-injection preset — now including the
// CGCMark / CGCSweep / CGCShade points — over the entangled random
// workloads with the concurrent collector on. Named TestChaos* so the CI
// chaos job's -run filter picks it up. Correctness is checked against an
// injection-free P=1 run, and Run's strict audit (enabled by Chaos) must
// pass with concurrent cycles having run underneath the workload.
func TestChaosCGCSoak(t *testing.T) {
	const depth = 7
	opts := chaos.Soak()
	for _, seed := range chaosSeeds(t) {
		prog := randomProgram(uint64(seed)+300, depth, true)
		var want int64
		{
			rt := New(Config{Procs: 1})
			v, err := rt.Run(prog)
			if err != nil {
				t.Fatalf("seed %d: baseline run failed: %v", seed, err)
			}
			want = v.AsInt()
		}
		for _, cfg := range []Config{
			{Procs: 4, HeapBudgetWords: 2048, Seed: seed, Chaos: &opts,
				CGC: true, CGCThresholdWords: 1},
			{Procs: 4, HeapBudgetWords: 2048, Seed: seed, Chaos: &opts,
				CGC: true, CGCThresholdWords: 1, LazyHeaps: true},
		} {
			rt := New(cfg)
			v, err := rt.Run(prog)
			if err != nil {
				dumpChaosFailure(t, rt, seed, cfg, err)
				t.Fatalf("seed %d %+v: %v\n%s", seed, cfg, err, rt.ChaosReport())
			}
			if v.AsInt() != want {
				dumpChaosFailure(t, rt, seed, cfg,
					fmt.Errorf("result %d, want %d", v.AsInt(), want))
				t.Fatalf("seed %d %+v: result %d, want %d\n%s",
					seed, cfg, v.AsInt(), want, rt.ChaosReport())
			}
			if s := rt.EntStats(); s.Pins != s.Unpins {
				dumpChaosFailure(t, rt, seed, cfg,
					fmt.Errorf("pins %d != unpins %d", s.Pins, s.Unpins))
				t.Fatalf("seed %d %+v: pins %d != unpins %d", seed, cfg, s.Pins, s.Unpins)
			}
		}
	}
}

// TestChaosCGCChurn puts the deterministic-footprint workload itself under
// chaos with CGC on: SATB shades, mark steps, and sweep steps all yield at
// injected points while the checksum must still come out right.
func TestChaosCGCChurn(t *testing.T) {
	const rounds, keep = 60, 16
	want := cgcChurnWant(rounds, keep)
	opts := chaos.Soak()
	for _, seed := range chaosSeeds(t) {
		cfg := Config{
			Procs: 4, HeapBudgetWords: 1024, Seed: seed, Chaos: &opts,
			CGC: true, CGCThresholdWords: 1,
		}
		rt := New(cfg)
		v, err := rt.Run(func(tk *Task) mem.Value {
			return cgcChurn(tk, rounds, keep, 100, 200)
		})
		if err != nil {
			dumpChaosFailure(t, rt, seed, cfg, err)
			t.Fatalf("seed %d: %v\n%s", seed, err, rt.ChaosReport())
		}
		if got := v.AsInt(); got != want {
			dumpChaosFailure(t, rt, seed, cfg, fmt.Errorf("checksum %d, want %d", got, want))
			t.Fatalf("seed %d: checksum %d, want %d\n%s", seed, got, want, rt.ChaosReport())
		}
	}
}
