package core

// The runtime side of the concurrent collector (gc.CGC): the background
// worker and trigger policy, the task registry, and the handshake/park
// protocol that gives the collector the mutator roots the gc package
// cannot see.
//
// Exclusion model. Local collections move objects; the concurrent cycle
// assumes nothing moves and no chunk changes hands outside its own gated
// windows. The two are serialized by cgcExcl: the CGC worker holds the
// write side across a whole cycle, and collectNow takes the read side with
// TryRLock — deferring, never blocking, because a mutator blocked inside
// an allocation could not reach the safepoint handshake the cycle's
// marking phase is waiting for.
//
// Handshake protocol. Each task carries (cgcPark, cgcEpoch):
//
//   - cgcPark is run/parked/claimed. A task parks around the ForkJoin of
//     a non-lazy Par — the whole window in which it is suspended under
//     live children and its frames are stable — and unparks on resume,
//     waiting out a collector claim. Lazy-mode tasks never park: their
//     branch may run inline on the same stack, so the collector cannot
//     scan them and the cycle simply waits for their next safepoint.
//   - cgcEpoch is the last cycle epoch whose ragged safepoint this task
//     has passed. Running tasks self-scan at safepoints (allocation,
//     forks, the write barrier); parked tasks are claim-scanned by the
//     collector via the CAS parked→claimed. Tasks born during a cycle are
//     born scanned: their initial roots came from a parent that scans on
//     its own schedule, and their barrier is active from their first
//     write.

import (
	"runtime"
	"time"

	"mplgo/internal/gc"
	"mplgo/internal/mem"
)

// Task park states (Task.cgcPark).
const (
	taskRun     uint32 = iota // executing; only the task itself may scan it
	taskParked                // suspended in ForkJoin; collector may claim
	taskClaimed               // collector is scanning the task's frames
)

// cgcRegister adds the task to the handshake registry. Only called when
// the concurrent collector is on (t.cgcOn), so runtimes without it pay
// nothing at task creation.
func (r *Runtime) cgcRegister(t *Task) {
	t.cgcEpoch.Store(r.cgc.Epoch())
	r.cgcMu.Lock()
	r.cgcTasks[t] = struct{}{}
	r.cgcMu.Unlock()
}

func (r *Runtime) cgcUnregister(t *Task) {
	r.cgcMu.Lock()
	delete(r.cgcTasks, t)
	r.cgcMu.Unlock()
}

// ScanTasks implements gc.Handshaker: it drives every registered task
// toward the given cycle epoch and reports whether all of them have
// arrived. Parked tasks are claimed and scanned here, on the collector's
// goroutine; running tasks are left to self-scan (cgcSafepoint) — program
// order then guarantees any store that raced the barrier flip completed
// before the scan that publishes their frames.
func (r *Runtime) ScanTasks(epoch uint64, grey func(mem.Value)) bool {
	r.cgcMu.Lock()
	tasks := make([]*Task, 0, len(r.cgcTasks))
	for t := range r.cgcTasks {
		tasks = append(tasks, t)
	}
	r.cgcMu.Unlock()

	all := true
	for _, t := range tasks {
		if t.cgcEpoch.Load() >= epoch {
			continue
		}
		if t.cgcPark.CompareAndSwap(taskParked, taskClaimed) {
			// The owner is suspended in its join and cannot resume past
			// claimed (cgcUnpark spins), so its frame slabs are stable.
			if t.cgcEpoch.Load() < epoch {
				t.Roots(func(p *mem.Value) { grey(*p) })
				t.cgcEpoch.Store(epoch)
			}
			t.cgcPark.Store(taskParked)
			continue
		}
		// Running (or finishing). If it unregistered since the snapshot it
		// no longer holds roots; otherwise the cycle waits for its next
		// safepoint.
		r.cgcMu.Lock()
		_, live := r.cgcTasks[t]
		r.cgcMu.Unlock()
		if live {
			all = false
		}
	}
	return all
}

// cgcSafepoint is the mutator half of the handshake: when a cycle is
// marking and this task has not yet passed its ragged safepoint, publish
// every frame root through the shade queue. The pushes happen under the
// task's own reader gate so the collector's termination flush observes
// them. Called from allocation slow paths, forks, and the write barrier.
func (t *Task) cgcSafepoint() {
	g := t.rt.cgc
	if g == nil || !g.Marking() {
		return
	}
	e := g.Epoch()
	if t.cgcEpoch.Load() >= e {
		return
	}
	t.heap.Gate.EnterReader()
	if g.Marking() {
		for _, slab := range t.frames {
			for i := range slab {
				if v := slab[i]; v.IsRef() {
					g.Shade(v.Ref())
				}
			}
		}
	}
	t.heap.Gate.ExitReader()
	t.cgcEpoch.Store(e)
}

// cgcParkSelf marks the task claim-scannable and its heap claimable for
// the duration of a non-lazy ForkJoin. The caller must not touch its
// frames, allocator, or heap until cgcUnpark (and the heap's CGCResume)
// returns.
func (t *Task) cgcParkSelf() {
	if t.cgcOn {
		t.cgcPark.Store(taskParked)
		t.heap.CGCPark()
	}
}

// cgcUnpark resumes the task, waiting out an in-flight claim scan.
func (t *Task) cgcUnpark() {
	if !t.cgcOn {
		return
	}
	for !t.cgcPark.CompareAndSwap(taskParked, taskRun) {
		runtime.Gosched()
	}
}

// cgcResumeHeap closes the heap's claim window after a join, waiting out an
// in-flight concurrent cycle. The task keeps passing safepoints while it
// waits: the cycle may have claimed the heap before its barrier flip, in
// which case its ragged handshake is waiting on this very task — blocking
// without re-scanning would deadlock owner and collector against each
// other. The wait is timer-paced past the first few spins: the collector
// needs the processor to finish the very work being waited for, and on a
// single-P runtime a yield-spin would starve it of exactly that.
func (t *Task) cgcResumeHeap() {
	for i := 0; !t.heap.CGCTryResume(); i++ {
		t.cgcSafepoint()
		if i < 4 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// cgcLoop is the dedicated collector worker (sched.Pool.Aux): it polls the
// trigger policy and runs cycles until the pool shuts down or the runtime
// cancels. One cycle at a time, with the LGC exclusion held throughout.
func (r *Runtime) cgcLoop(stop func() bool) {
	halt := func() bool { return stop() || r.cancelled.Load() }
	for !halt() {
		if r.space.LiveWords() < r.cfg.CGCThresholdWords {
			// Below the floor there is nothing worth a cycle; idle gently
			// rather than spinning the gates of a small computation.
			time.Sleep(50 * time.Microsecond)
			continue
		}
		r.cgcExcl.Lock()
		var res gc.CGCResult
		if !halt() {
			res = r.cgc.RunCycle(r, halt)
		}
		r.cgcExcl.Unlock()
		if res.ScopeHeaps > 0 {
			// A window is open: go straight back for whatever it left.
			runtime.Gosched()
			continue
		}
		// No internal heap was claimable. Pace the polling with a timer
		// rather than Gosched: on a single-P runtime a yield-spinning
		// background goroutine is starved almost completely by CPU-bound
		// mutators (it only runs at preemption points, every ~10ms), while
		// timer wakeups are injected promptly. 100µs keeps the poll well
		// under the fork–join windows worth collecting.
		time.Sleep(100 * time.Microsecond)
	}
}

// CGCStats reports the concurrent collector's totals: completed cycles,
// words reclaimed in place, chunks released whole, chunks retained with
// live or pinned objects, and the live words observed by the last sweep.
// All zero when the concurrent collector is off.
func (r *Runtime) CGCStats() (cycles, freedWords, sweptChunks, retainedChunks, lastLiveWords int64) {
	if r.cgc == nil {
		return
	}
	return r.cgc.Cycles.Load(), r.cgc.FreedWords.Load(), r.cgc.SweptChunks.Load(),
		r.cgc.RetainedTotal.Load(), r.cgc.LastLiveWords.Load()
}

// RetainedChunks totals chunks the local collector kept alive only for
// their pinned objects — the transient space cost of entanglement.
func (r *Runtime) RetainedChunks() int64 { return r.col.RetainedChunks.Load() }
