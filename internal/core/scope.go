package core

// Request-scoped fault domains. A Scope is a cancellation domain covering
// one subtree of the fork–join computation: a per-subtree cancel flag with
// a cause, an optional monotonic-clock deadline, and an optional heap-word
// budget. Where Runtime.Cancel tears down the whole computation, a scope
// cancels only the tasks running under it — sibling subtrees (concurrent
// requests of a server) keep running, and the scope's join reports *why*
// its subtree died.
//
// Poll model. Tasks check their scope at the same cooperative points that
// already check the runtime-wide flag — forks (Par/ParFor), the allocation
// slow path, and the read-barrier slow path — so the disentangled fast
// paths gain at most one predictable nil test (t.scope is nil for every
// unscoped task, which includes all benchmark kernels). Deadlines are
// evaluated with the monotonic clock (time.Time's monotonic reading): at
// every fork, at every read-barrier slow path, and amortized into the
// allocation poll (one clock read per deadlinePollMask+1 allocations), so
// a compute-only subtree still observes its deadline without putting a
// clock read on the per-allocation path.
//
// Unwind model. Scoped cancellation is weaker than runtime cancellation on
// purpose: the rest of the computation keeps collecting, pinning, and
// merging, so a scope-cancelled task must NOT take the "nothing moves
// anymore" shortcuts the global unwind takes. It keeps running the full
// entanglement pin protocol on reads, keeps its GC safepoints, and keeps
// every join's merge — which is exactly what unpins the objects its
// entangled reads pinned (unpin on unwind is the ordinary merge unpin).
// Only control flow short-circuits: Par skips both branches, ParFor returns
// early, and the subtree drains through its joins. A task parked under a
// CGC-claimed heap unwinds through the same CGCTryResume wait as a healthy
// join; the collector always gets to finish with what it claimed.

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mplgo/internal/mem"
)

// ErrDeadlineExceeded is the cancel cause recorded when a scope's deadline
// passes: the scoped join (ForkScoped/RunScoped) returns it while sibling
// scopes keep running.
var ErrDeadlineExceeded = errors.New("core: scope deadline exceeded")

// ErrShed is the typed overload refusal: admission control (internal/serve)
// refused the request before it ran, and the caller may retry. Defined here
// beside ErrCancelled/ErrHeapLimit/ErrDeadlineExceeded so the whole
// request-failure vocabulary is one package.
var ErrShed = errors.New("core: request shed by admission control")

// deadlinePollMask amortizes the allocation-path deadline check: one
// monotonic clock read per (mask+1) scoped allocations. Forks and barrier
// slow paths check on every poll — they are orders of magnitude rarer.
const deadlinePollMask = 63

// Scope is one request-scoped fault domain. Create one with Task.NewScope
// (or NewScope for a deadline computed from an arrival time), run a subtree
// under it with Task.RunScoped or Task.ForkScoped, and cancel it from any
// goroutine with Cancel. Scopes nest: cancelling a scope cancels every
// scope created under it (children observe ancestors through the parent
// chain — no child registry, no fan-out on Cancel).
type Scope struct {
	parent *Scope

	// done is the cancel flag, polled by every task in the domain.
	done atomic.Bool

	// deadline is the scope's monotonic deadline (zero = none). Immutable
	// after creation: polls read it with no synchronization.
	deadline time.Time

	// budget is the scope's heap-word allowance (0 = unlimited); words
	// counts the allocation charged against it by every task in the domain.
	// Exceeding the budget cancels the scope with ErrHeapLimit — the
	// per-request analogue of Config.MaxHeapWords.
	budget int64
	words  atomic.Int64

	mu    sync.Mutex
	cause error
}

// NewScope creates a fault domain with an absolute deadline (zero = none)
// and a heap-word budget (0 = unlimited), nested under parent (nil for a
// top-level domain). Servers pass a deadline computed from the request's
// arrival time so queueing delay counts against it.
func NewScope(parent *Scope, deadline time.Time, budgetWords int64) *Scope {
	return &Scope{parent: parent, deadline: deadline, budget: budgetWords}
}

// NewScope creates a fault domain nested under the task's current one,
// with a relative timeout (0 = no deadline) and a heap-word budget
// (0 = unlimited).
func (t *Task) NewScope(timeout time.Duration, budgetWords int64) *Scope {
	var d time.Time
	if timeout > 0 {
		d = time.Now().Add(timeout)
	}
	return NewScope(t.scope, d, budgetWords)
}

// Cancel cancels the scope with the given cause (first cause wins; nil
// records ErrCancelled). Safe from any goroutine. Tasks under the scope
// observe it at their next poll point and unwind cooperatively.
func (s *Scope) Cancel(cause error) {
	if cause == nil {
		cause = ErrCancelled
	}
	s.mu.Lock()
	if s.cause == nil {
		s.cause = cause
	}
	s.mu.Unlock()
	s.done.Store(true)
}

// Cancelled reports whether the scope — or any scope it is nested under —
// has been cancelled. One atomic load per chain link; the chain is as deep
// as the scope nesting (one for a plain server request).
func (s *Scope) Cancelled() bool {
	for x := s; x != nil; x = x.parent {
		if x.done.Load() {
			return true
		}
	}
	return false
}

// Err returns why the domain died: the nearest recorded cause walking
// outward (ErrDeadlineExceeded, ErrHeapLimit, an explicit Cancel cause), or
// nil if the domain is still live.
func (s *Scope) Err() error {
	for x := s; x != nil; x = x.parent {
		x.mu.Lock()
		c := x.cause
		x.mu.Unlock()
		if c != nil {
			return c
		}
		if x.done.Load() {
			return ErrCancelled
		}
	}
	return nil
}

// AllocatedWords returns the heap words charged against this scope so far.
func (s *Scope) AllocatedWords() int64 { return s.words.Load() }

// poll folds an expired deadline into cancellation and reports whether the
// domain is cancelled. The deadline comparison uses time.Time's monotonic
// reading, so wall-clock steps cannot fire (or suppress) it.
func (s *Scope) poll(now time.Time) bool {
	for x := s; x != nil; x = x.parent {
		if x.done.Load() {
			return true
		}
		if !x.deadline.IsZero() && now.After(x.deadline) {
			x.Cancel(ErrDeadlineExceeded)
			return true
		}
	}
	return false
}

// flagOnly checks the cancel flags without reading the clock: the cheap
// variant for per-allocation polls between amortized deadline checks.
func (s *Scope) flagOnly() bool {
	for x := s; x != nil; x = x.parent {
		if x.done.Load() {
			return true
		}
	}
	return false
}

// charge accounts words of allocation against every budgeted scope on the
// chain; blowing a budget cancels that scope with ErrHeapLimit. Atomic adds
// — tasks of one domain run on many workers — but only scoped tasks reach
// here at all.
func (s *Scope) charge(words int64) {
	for x := s; x != nil; x = x.parent {
		if x.budget != 0 && x.words.Add(words) > x.budget {
			x.Cancel(ErrHeapLimit)
		}
	}
}

// scopeCancelled is the task-side poll used at forks and barrier slow
// paths: full deadline evaluation. Unscoped tasks pay one nil test.
func (t *Task) scopeCancelled() bool {
	s := t.scope
	if s == nil {
		return false
	}
	return s.poll(time.Now())
}

// scopeAllocPoll is the allocation-path poll: flag check every time, clock
// read every deadlinePollMask+1 calls. Runs inside guardedGC, so it is
// off the unscoped fast path entirely after the caller's nil test.
func (t *Task) scopeAllocPoll(s *Scope) {
	t.scopeTick++
	if t.scopeTick&deadlinePollMask == 0 {
		s.poll(time.Now())
	} else {
		s.flagOnly()
	}
}

// Scope returns the task's current fault domain (nil outside any scope).
func (t *Task) Scope() *Scope { return t.scope }

// ScopeErr returns why the task's domain died (nil when unscoped or live).
// Workload code uses it to stop retaining results the join will discard.
func (t *Task) ScopeErr() error {
	if t.scope == nil {
		return nil
	}
	return t.scope.Err()
}

// RunScoped runs body on this task under scope sc, restoring the previous
// domain afterwards, and returns body's value together with sc's cause
// (nil if the domain survived). If the domain is already dead — a request
// whose deadline passed while queued — body is skipped entirely.
//
// The runtime-wide flag still dominates: a global cancel unwinds scoped
// and unscoped tasks alike, and RunScoped reports the runtime's error.
func (t *Task) RunScoped(sc *Scope, body func(*Task) mem.Value) (mem.Value, error) {
	saved := t.scope
	t.scope = sc
	defer func() { t.scope = saved }()
	if t.rt.cancelled.Load() {
		return mem.Nil, t.runErr()
	}
	if sc.poll(time.Now()) {
		return mem.Nil, sc.Err()
	}
	v := body(t)
	if t.rt.cancelled.Load() {
		return mem.Nil, t.runErr()
	}
	if err := sc.Err(); err != nil {
		return mem.Nil, err
	}
	return v, nil
}

// ForkScoped evaluates f and g in parallel like Par, with g running under
// scope sc while f stays in the caller's domain. It returns both values
// plus sc's cause: why g's subtree died (ErrDeadlineExceeded, ErrHeapLimit,
// an explicit Cancel cause), or nil if it completed. The join runs every
// merge and unpin step either way, so a dead domain leaves no pins and no
// half-merged heaps behind — and f's subtree, like any concurrent sibling
// domain, is unaffected.
func (t *Task) ForkScoped(sc *Scope, f, g func(*Task) mem.Value) (fv, gv mem.Value, gerr error) {
	fv, gv = t.Par(f, func(ct *Task) mem.Value {
		v, _ := ct.RunScoped(sc, g)
		return v
	})
	if t.rt.cancelled.Load() {
		return fv, gv, t.runErr()
	}
	return fv, gv, sc.Err()
}

// runErr returns the runtime's recorded error, defaulting to ErrCancelled
// when the flag is up but no cause was recorded yet (a racing canceller).
func (t *Task) runErr() error {
	if err := t.rt.Err(); err != nil {
		return err
	}
	return ErrCancelled
}
