package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mplgo/internal/chaos"
	"mplgo/internal/mem"
)

// The request-scoped fault-domain tests: a scope's death (deadline, budget,
// explicit cancel) must surface as a typed cause from exactly that scope's
// join, while sibling subtrees — and the runtime itself — run to completion
// with balanced pin accounting. See scope.go for the unwind contract.

// scopedRequest runs body under a fresh scope on t and returns its cause.
func scopedRequest(t *Task, timeout time.Duration, budget int64, body func(*Task) mem.Value) (mem.Value, error) {
	return t.RunScoped(t.NewScope(timeout, budget), body)
}

// spinUntilScopeDead allocates until the task observes its domain's death;
// the allocation poll folds the deadline into the cancel flag, so this
// terminates without any fork in the body.
func spinUntilScopeDead(t *Task) mem.Value {
	for t.ScopeErr() == nil {
		t.AllocArray(16, mem.Int(1))
	}
	return mem.Int(-1)
}

// siblingProgram is randomProgram's entangled workload (task-local churn,
// shared-array publication, entangled reads through a per-request shared
// array) without its end-of-run ValidateHeaps — that audit walks every
// live heap and is only sound when the program is the runtime's sole
// computation, which concurrent sibling requests are not.
func siblingProgram(seed uint64, depth int) func(t *Task) mem.Value {
	return func(t *Task) mem.Value {
		f := t.NewFrame(1)
		defer f.Pop()
		f.Set(0, t.AllocArray(64, mem.Nil).Value())
		var rec func(t *Task, seed uint64, depth int) int64
		rec = func(t *Task, seed uint64, depth int) int64 {
			if depth == 0 {
				slot := int(seed % 64)
				box := t.AllocTuple(mem.Int(int64(seed % 100)))
				t.CAS(f.Ref(0), slot, mem.Nil, box.Value())
				var sum int64
				if v := t.Read(f.Ref(0), slot); v.IsRef() && t.Read(v.Ref(), 0).AsInt() >= 0 {
					sum++
				}
				t.AllocArray(48, mem.Int(sum))
				return sum
			}
			a, b := t.Par(
				func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+1, depth-1)) },
				func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+2, depth-1)) },
			)
			return a.AsInt() + b.AsInt()
		}
		return mem.Int(rec(t, seed, depth))
	}
}

// TestScopeDeadlineSiblingsComplete is the acceptance criterion: one
// request exceeds its deadline and gets ErrDeadlineExceeded from its own
// join, while concurrent sibling requests — full entangled workloads —
// complete with correct results, under chaos injection. CI runs this
// package under -race.
func TestScopeDeadlineSiblingsComplete(t *testing.T) {
	const siblings = 3
	// Injection-free P=1 baselines for the sibling workloads.
	want := make([]int64, siblings)
	for i := range want {
		rt := New(Config{Procs: 1})
		v, err := rt.Run(siblingProgram(uint64(i)+200, 5))
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		want[i] = v.AsInt()
	}
	opts := chaos.Soak()
	for _, lazy := range []bool{false, true} {
		cfg := Config{Procs: 4, HeapBudgetWords: 1024, Seed: 11, Chaos: &opts, LazyHeaps: lazy}
		rt := New(cfg)
		var (
			doomedErr error
			got       [siblings]int64
			sibErr    [siblings]error
		)
		_, err := rt.Run(func(tk *Task) mem.Value {
			tk.ParFor(0, siblings+1, 1, func(ct *Task, lo, _ int) {
				if lo == siblings {
					_, doomedErr = scopedRequest(ct, time.Millisecond, 0, spinUntilScopeDead)
					return
				}
				// No deadline on the siblings: with chaos on, DeadlinePin
				// may expire any deadline-bearing scope at a pin site, and
				// these requests must provably survive.
				v, err := scopedRequest(ct, 0, 0, siblingProgram(uint64(lo)+200, 5))
				got[lo], sibErr[lo] = v.AsInt(), err
			})
			return mem.Nil
		})
		if err != nil {
			dumpChaosFailure(t, rt, cfg.Seed, cfg, err)
			t.Fatalf("lazy=%v: runtime error: %v\n%s", lazy, err, rt.ChaosReport())
		}
		if !errors.Is(doomedErr, ErrDeadlineExceeded) {
			t.Fatalf("lazy=%v: doomed request error = %v, want ErrDeadlineExceeded", lazy, doomedErr)
		}
		for i := 0; i < siblings; i++ {
			if sibErr[i] != nil {
				t.Fatalf("lazy=%v: sibling %d failed alongside the doomed request: %v", lazy, i, sibErr[i])
			}
			if got[i] != want[i] {
				t.Fatalf("lazy=%v: sibling %d result %d, want %d", lazy, i, got[i], want[i])
			}
		}
		if s := rt.EntStats(); s.Pins != s.Unpins {
			dumpChaosFailure(t, rt, cfg.Seed, cfg, fmt.Errorf("pins %d != unpins %d", s.Pins, s.Unpins))
			t.Fatalf("lazy=%v: pins %d != unpins %d after scoped unwind", lazy, s.Pins, s.Unpins)
		}
		if ierr := rt.CheckInvariants(); ierr != nil {
			t.Fatalf("lazy=%v: invariants after scoped deadline: %v", lazy, ierr)
		}
	}
}

// TestScopeBudgetCancelsOnlyTheScope: a request that allocates past its
// heap-word budget dies with ErrHeapLimit as its scope's cause — without
// tripping the runtime-wide limit or cancelling anything else.
func TestScopeBudgetCancelsOnlyTheScope(t *testing.T) {
	rt := New(Config{Procs: 2, HeapBudgetWords: 512})
	var greedyErr, frugalErr error
	_, err := rt.Run(func(tk *Task) mem.Value {
		tk.Par(
			func(ct *Task) mem.Value {
				_, greedyErr = scopedRequest(ct, 0, 4096, spinUntilScopeDead)
				return mem.Nil
			},
			func(ct *Task) mem.Value {
				_, frugalErr = scopedRequest(ct, 0, 1<<30, func(t *Task) mem.Value {
					for i := 0; i < 200; i++ {
						t.AllocArray(16, mem.Int(int64(i)))
					}
					return mem.Int(1)
				})
				return mem.Nil
			},
		)
		return mem.Nil
	})
	if err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	if !errors.Is(greedyErr, ErrHeapLimit) {
		t.Fatalf("greedy request error = %v, want ErrHeapLimit", greedyErr)
	}
	if frugalErr != nil {
		t.Fatalf("frugal sibling failed: %v", frugalErr)
	}
	if rt.Cancelled() {
		t.Fatal("scope budget cancelled the whole runtime")
	}
}

// TestForkScoped: the scoped branch of a ForkScoped join reports its typed
// cause while the unscoped branch's value is unaffected.
func TestForkScoped(t *testing.T) {
	rt := New(Config{Procs: 2})
	_, err := rt.Run(func(tk *Task) mem.Value {
		sc := tk.NewScope(time.Millisecond, 0)
		fv, _, gerr := tk.ForkScoped(sc,
			func(t *Task) mem.Value { return mem.Int(42) },
			spinUntilScopeDead,
		)
		if fv.AsInt() != 42 {
			t.Errorf("unscoped branch value = %v, want 42", fv)
		}
		if !errors.Is(gerr, ErrDeadlineExceeded) {
			t.Errorf("scoped branch error = %v, want ErrDeadlineExceeded", gerr)
		}
		// A second scope on the same task starts live: scopes are
		// per-domain, not sticky task state.
		v, err2 := tk.RunScoped(tk.NewScope(time.Minute, 0), func(t *Task) mem.Value {
			return mem.Int(7)
		})
		if err2 != nil || v.AsInt() != 7 {
			t.Errorf("fresh scope after a dead one: v=%v err=%v", v, err2)
		}
		return mem.Nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScopeExplicitCancelCause: Cancel's cause is what the join reports,
// first cause wins, and nested scopes observe ancestors.
func TestScopeExplicitCancelCause(t *testing.T) {
	cause := errors.New("client went away")
	outer := NewScope(nil, time.Time{}, 0)
	inner := NewScope(outer, time.Time{}, 0)
	if outer.Err() != nil || inner.Err() != nil || inner.Cancelled() {
		t.Fatal("fresh scopes not live")
	}
	outer.Cancel(cause)
	outer.Cancel(errors.New("late loser"))
	if !inner.Cancelled() {
		t.Fatal("child did not observe ancestor cancellation")
	}
	if got := inner.Err(); !errors.Is(got, cause) {
		t.Fatalf("inner.Err() = %v, want the first cause", got)
	}
	sibling := NewScope(nil, time.Time{}, 0)
	if sibling.Cancelled() {
		t.Fatal("unrelated scope observed another domain's cancel")
	}
	if err := NewScope(nil, time.Time{}, 0).Err(); err != nil {
		t.Fatalf("live scope Err() = %v", err)
	}
	c := NewScope(nil, time.Time{}, 0)
	c.Cancel(nil)
	if !errors.Is(c.Err(), ErrCancelled) {
		t.Fatalf("nil-cause cancel Err() = %v, want ErrCancelled", c.Err())
	}
}

// TestScopeCancelFromOutside: a scope cancelled from a goroutine outside
// the pool (the server's network edge) unwinds just that request.
func TestScopeCancelFromOutside(t *testing.T) {
	rt := New(Config{Procs: 2, HeapBudgetWords: 512})
	cause := errors.New("connection reset")
	sc := NewScope(nil, time.Time{}, 0)
	started := make(chan struct{})
	go func() {
		<-started
		sc.Cancel(cause)
	}()
	var reqErr error
	_, err := rt.Run(func(tk *Task) mem.Value {
		close(started)
		_, reqErr = tk.RunScoped(sc, spinUntilScopeDead)
		return mem.Nil
	})
	if err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	if !errors.Is(reqErr, cause) {
		t.Fatalf("request error = %v, want the external cause", reqErr)
	}
	if rt.Cancelled() {
		t.Fatal("external scope cancel cancelled the runtime")
	}
}

// TestGlobalCancelDominatesScope: runtime-wide cancellation surfaces
// through scoped joins too — a scope cannot mask the computation's death.
func TestGlobalCancelDominatesScope(t *testing.T) {
	rt := New(Config{Procs: 2, HeapBudgetWords: 512})
	var reqErr error
	_, err := rt.Run(func(tk *Task) mem.Value {
		_, reqErr = tk.RunScoped(tk.NewScope(time.Minute, 0), func(t *Task) mem.Value {
			t.Runtime().Cancel()
			return mem.Int(9)
		})
		return mem.Nil
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run error = %v, want ErrCancelled", err)
	}
	if !errors.Is(reqErr, ErrCancelled) {
		t.Fatalf("scoped join error = %v, want ErrCancelled", reqErr)
	}
}

// scopedEntangledRequest is the CGC-race workload: a deadline-scoped
// subtree that forks, publishes into a shared ancestor array (down-
// pointers), reads entangled slots (pins), and churns garbage (LGCs) —
// while the dispatcher-like parent sits parked under live children, i.e.
// exactly the state the concurrent collector claims heaps in.
func scopedEntangledRequest(shared Frame, seed uint64) func(*Task) mem.Value {
	var rec func(t *Task, seed uint64, depth int) int64
	rec = func(t *Task, seed uint64, depth int) int64 {
		slot := int(seed % 64)
		box := t.AllocTuple(mem.Int(int64(seed % 100)))
		t.CAS(shared.Ref(0), slot, mem.Nil, box.Value())
		var sum int64
		if v := t.Read(shared.Ref(0), slot); v.IsRef() {
			sum += t.Read(v.Ref(), 0).AsInt()
		}
		t.AllocArray(48, mem.Int(sum)) // churn to force LGCs under the tiny budget
		if depth == 0 {
			return sum
		}
		a, b := t.Par(
			func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+1, depth-1)) },
			func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+2, depth-1)) },
		)
		return sum + a.AsInt() + b.AsInt()
	}
	return func(t *Task) mem.Value { return mem.Int(rec(t, seed, 4)) }
}

// TestChaosScopedCancelRacesCGC is the satellite soak: scoped requests
// with aggressive deadlines run against the concurrent collector with the
// full injection preset — CGCMark/CGCSweep stalls park-and-sweep the
// requests' ancestor heaps while DeadlinePin expires scopes at the read
// barrier's pin site. Every seed must unwind cleanly: no runtime error, a
// mix of completed and deadline-killed requests, balanced pins, and a
// clean strict audit. The TestChaos name puts it in CI's chaos job
// (-race); requires only that some requests die and some survive across
// the matrix so both paths are known to be exercised.
func TestChaosScopedCancelRacesCGC(t *testing.T) {
	opts := chaos.Soak()
	var died, survived int
	for _, seed := range chaosSeeds(t) {
		cfg := Config{
			Procs: 4, HeapBudgetWords: 512, Seed: seed, Chaos: &opts,
			CGC: true, CGCThresholdWords: 1 << 10,
		}
		rt := New(cfg)
		var reqErr [6]error
		_, err := rt.Run(func(tk *Task) mem.Value {
			shared := tk.NewFrame(1)
			defer shared.Pop()
			shared.Set(0, tk.AllocArray(64, mem.Nil).Value())
			// The root stays parked under the ParFor while requests run:
			// its heap (holding the shared array) is exactly what CGC
			// claims and sweeps mid-request.
			tk.ParFor(0, len(reqErr), 1, func(ct *Task, lo, _ int) {
				// Odd requests get a deadline that expires mid-flight (the
				// DeadlinePin injection point forces expiry at pin sites
				// even when the clock would not); even requests carry no
				// deadline at all — DeadlinePin skips deadline-free scopes
				// — so they must ride out the same chaos and complete.
				var timeout time.Duration
				if lo%2 == 1 {
					timeout = 500 * time.Microsecond
				}
				_, reqErr[lo] = ct.RunScoped(ct.NewScope(timeout, 0),
					scopedEntangledRequest(shared, uint64(seed)*1000+uint64(lo)))
			})
			return mem.Nil
		})
		if err != nil {
			dumpChaosFailure(t, rt, seed, cfg, err)
			t.Fatalf("seed %d: runtime error: %v\n%s", seed, err, rt.ChaosReport())
		}
		for i, e := range reqErr {
			switch {
			case e == nil:
				survived++
			case errors.Is(e, ErrDeadlineExceeded):
				died++
			default:
				dumpChaosFailure(t, rt, seed, cfg, e)
				t.Fatalf("seed %d: request %d died with unexpected cause: %v", seed, i, e)
			}
		}
		if s := rt.EntStats(); s.Pins != s.Unpins {
			dumpChaosFailure(t, rt, seed, cfg, fmt.Errorf("pins %d != unpins %d", s.Pins, s.Unpins))
			t.Fatalf("seed %d: pins %d != unpins %d after scoped unwind under CGC", seed, s.Pins, s.Unpins)
		}
		if ierr := rt.CheckInvariants(); ierr != nil {
			dumpChaosFailure(t, rt, seed, cfg, ierr)
			t.Fatalf("seed %d: invariants: %v\n%s", seed, ierr, rt.ChaosReport())
		}
	}
	if died == 0 || survived == 0 {
		t.Fatalf("soak exercised only one path: %d died, %d survived", died, survived)
	}
}

// TestScopePollCostShape guards the fast-path claim: an unscoped task's
// poll sites reduce to one nil test. (The bench gate is the real enforcer;
// this pins the semantic half — nil scope never cancels, never charges.)
func TestScopePollCostShape(t *testing.T) {
	rt := New(Config{Procs: 1})
	_, err := rt.Run(func(tk *Task) mem.Value {
		if tk.Scope() != nil || tk.ScopeErr() != nil || tk.scopeCancelled() {
			t.Error("unscoped task reports a scope")
		}
		for i := 0; i < 1000; i++ {
			tk.AllocArray(8, mem.Int(int64(i))) // bumpAlloc with nil scope
		}
		return mem.Nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
