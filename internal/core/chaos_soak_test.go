package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mplgo/internal/chaos"
	"mplgo/internal/mem"
)

// The chaos soak: the entangled stress workloads run to completion under
// the full fault-injection preset — forced collections at random
// allocations, widened steal windows, spurious gate contention, refused
// header CASes, busy-window stalls inside the copier — across a seed
// matrix, with invariant audits at joins, collection ends, and the end of
// Run. The injected faults are all "legal" perturbations (they exercise
// retry paths, never corrupt state), so every run must still produce the
// correct result and a clean strict audit.
//
// CI runs this under -race with the default seed matrix; override with
// CHAOS_SEEDS (comma-separated). On failure the failing seed, config,
// error, injection report, and invariant dump are written to
// $CHAOS_DUMP_DIR (if set) so the CI job can upload them as an artifact.

func chaosSeeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		var seeds []int64
		for _, s := range strings.Split(env, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS: bad seed %q: %v", s, err)
			}
			seeds = append(seeds, n)
		}
		return seeds
	}
	return []int64{1, 2, 3, 5, 8, 13, 21, 42}
}

// dumpChaosFailure writes a reproduction bundle for a failing chaos run.
func dumpChaosFailure(t *testing.T, rt *Runtime, seed int64, cfg Config, runErr error) {
	dir := os.Getenv("CHAOS_DUMP_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos dump: %v", err)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "test: %s\nseed: %d\nconfig: %+v\nerror: %v\n\n%s\n",
		t.Name(), seed, cfg, runErr, rt.ChaosReport())
	if ierr := rt.CheckInvariants(); ierr != nil {
		fmt.Fprintf(&b, "\ninvariant dump:\n%v\n", ierr)
	}
	name := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d-%s.txt",
		seed, strings.ReplaceAll(t.Name(), "/", "_")))
	if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
		t.Logf("chaos dump: %v", err)
	} else {
		t.Logf("chaos failure dumped to %s", name)
	}
}

// TestChaosSoakEntangled runs the random entangled workload under the full
// injection preset across the seed matrix. Result correctness is checked
// against an injection-free P=1 run of the same program.
func TestChaosSoakEntangled(t *testing.T) {
	const depth = 7
	opts := chaos.Soak()
	for _, seed := range chaosSeeds(t) {
		prog := randomProgram(uint64(seed)+100, depth, true)
		var want int64
		{
			rt := New(Config{Procs: 1})
			v, err := rt.Run(prog)
			if err != nil {
				t.Fatalf("seed %d: baseline run failed: %v", seed, err)
			}
			want = v.AsInt()
		}
		for _, cfg := range []Config{
			{Procs: 4, HeapBudgetWords: 2048, Seed: seed, Chaos: &opts},
			{Procs: 4, HeapBudgetWords: 2048, Seed: seed, Chaos: &opts, LazyHeaps: true},
		} {
			rt := New(cfg)
			v, err := rt.Run(prog)
			if err != nil {
				dumpChaosFailure(t, rt, seed, cfg, err)
				t.Fatalf("seed %d %+v: %v\n%s", seed, cfg, err, rt.ChaosReport())
			}
			if v.AsInt() != want {
				dumpChaosFailure(t, rt, seed, cfg,
					fmt.Errorf("result %d, want %d", v.AsInt(), want))
				t.Fatalf("seed %d %+v: result %d, want %d\n%s",
					seed, cfg, v.AsInt(), want, rt.ChaosReport())
			}
			if s := rt.EntStats(); s.Pins != s.Unpins {
				dumpChaosFailure(t, rt, seed, cfg,
					fmt.Errorf("pins %d != unpins %d", s.Pins, s.Unpins))
				t.Fatalf("seed %d %+v: pins %d != unpins %d", seed, cfg, s.Pins, s.Unpins)
			}
			var injected uint64
			for _, p := range chaos.Points() {
				injected += rt.chaos.Injected(p)
			}
			if injected == 0 {
				t.Fatalf("seed %d %+v: soak injected no faults — rates wired wrong?", seed, cfg)
			}
		}
	}
}

// spineProgram builds a fork spine of the given depth: each level forks one
// recursing branch and one leaf that churns allocations. In eager-heap mode
// the heap tree grows a path of `depth` edges, pushing the fork-path words
// past their 128-bit inline width so the spilled representation carries the
// ancestry queries of real collections and joins (not just unit tests).
func spineProgram(depth int) func(t *Task) mem.Value {
	var rec func(t *Task, d int) int64
	rec = func(t *Task, d int) int64 {
		if d == 0 {
			return 1
		}
		a, b := t.Par(
			func(t *Task) mem.Value { return mem.Int(rec(t, d-1)) },
			func(t *Task) mem.Value {
				t.AllocArray(32, mem.Int(int64(d))) // churn to trigger LGCs
				return mem.Int(int64(d))
			},
		)
		return a.AsInt() + b.AsInt()
	}
	return func(t *Task) mem.Value { return mem.Int(rec(t, depth)) }
}

// TestChaosDeepSpineSpill soaks the fork-path spill: a depth-160 spine
// under the full injection preset (which includes PathSpill, forcing the
// inline→vector promotion even at shallow depths) in both heap modes. The
// eager run must have produced at least one naturally spilled path; the
// PathSpill point must have fired somewhere across the matrix. (The legacy
// label-space rebalance needed no chaos point and is unreachable on the
// default oracle — this is its replacement as the ancestry stress.)
func TestChaosDeepSpineSpill(t *testing.T) {
	const depth = 160
	want := int64(1 + depth*(depth+1)/2)
	opts := chaos.Soak()
	var pathSpills uint64
	for _, seed := range chaosSeeds(t) {
		for _, cfg := range []Config{
			{Procs: 4, HeapBudgetWords: 1024, Seed: seed, Chaos: &opts},
			{Procs: 4, HeapBudgetWords: 1024, Seed: seed, Chaos: &opts, LazyHeaps: true},
		} {
			rt := New(cfg)
			v, err := rt.Run(spineProgram(depth))
			if err != nil {
				dumpChaosFailure(t, rt, seed, cfg, err)
				t.Fatalf("seed %d %+v: %v\n%s", seed, cfg, err, rt.ChaosReport())
			}
			if v.AsInt() != want {
				dumpChaosFailure(t, rt, seed, cfg,
					fmt.Errorf("result %d, want %d", v.AsInt(), want))
				t.Fatalf("seed %d %+v: result %d, want %d", seed, cfg, v.AsInt(), want)
			}
			pathSpills += rt.chaos.Injected(chaos.PathSpill)
			if cfg.LazyHeaps {
				continue
			}
			// Eager mode forked a heap per spine level: some path must have
			// outgrown the inline words regardless of injection.
			spilled := false
			for id := uint32(1); !spilled; id++ {
				h := rt.tree.Get(id)
				if h == nil {
					break
				}
				spilled = h.Path().Spilled()
			}
			if !spilled {
				t.Fatalf("seed %d: depth-%d spine produced no spilled fork path", seed, depth)
			}
		}
	}
	if pathSpills == 0 {
		t.Fatal("PathSpill injection never fired across the seed matrix — rate wired wrong?")
	}
}

// TestChaosSoakWithPanics layers branch panics on top of fault injection:
// the unwind must stay clean even while the chaos layer is forcing
// collections and refusing CASes underneath it.
func TestChaosSoakWithPanics(t *testing.T) {
	opts := chaos.Soak()
	for _, seed := range chaosSeeds(t) {
		cfg := Config{Procs: 4, HeapBudgetWords: 1024, Seed: seed, Chaos: &opts}
		rt := New(cfg)
		_, err := rt.Run(panickyProgram(uint64(seed), 6, 8))
		if err != nil {
			var pe *PanicError
			if !errors.As(err, &pe) {
				dumpChaosFailure(t, rt, seed, cfg, err)
				t.Fatalf("seed %d: non-panic error under chaos: %v\n%s",
					seed, err, rt.ChaosReport())
			}
		}
		if ierr := rt.CheckInvariants(); ierr != nil {
			dumpChaosFailure(t, rt, seed, cfg, ierr)
			t.Fatalf("seed %d: invariants after chaotic unwind: %v\n%s",
				seed, ierr, rt.ChaosReport())
		}
	}
}

// TestChaosDeterministicInjection: the same seed must inject the same
// faults — same per-point hit totals — when the schedule is deterministic
// (P=1). This is what makes a failing CI seed reproducible locally.
func TestChaosDeterministicInjection(t *testing.T) {
	opts := chaos.Soak()
	var first string
	for i := 0; i < 3; i++ {
		rt := New(Config{Procs: 1, HeapBudgetWords: 2048, Seed: 7, Chaos: &opts})
		if _, err := rt.Run(randomProgram(7, 6, true)); err != nil {
			t.Fatal(err)
		}
		rep := rt.ChaosReport()
		if i == 0 {
			first = rep
		} else if rep != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, rep, first)
		}
	}
}

// TestChaosOffIsFree: with Chaos nil, no injector is allocated and the
// runtime takes the identical code paths as before this layer existed (the
// hooks are nil checks). Guard against accidental always-on injection.
func TestChaosOffIsFree(t *testing.T) {
	rt := New(Config{Procs: 2})
	if rt.chaos != nil {
		t.Fatal("injector allocated with Chaos unset")
	}
	if got := rt.ChaosReport(); got != "chaos: off" {
		t.Fatalf("ChaosReport() = %q with chaos off", got)
	}
	if _, err := rt.Run(randomProgram(3, 5, true)); err != nil {
		t.Fatal(err)
	}
}

// TestMPLSurface exercises the failure model through the public API shape:
// exhaustion panics recovered into PanicError unwrap via errors.Is.
func TestPanicErrorUnwrapsTypedExhaustion(t *testing.T) {
	sentinel := errors.New("typed resource error")
	rt := New(Config{Procs: 2})
	_, err := rt.Run(func(tk *Task) mem.Value {
		tk.Par(
			func(t *Task) mem.Value { return mem.Nil },
			func(t *Task) mem.Value { panic(sentinel) },
		)
		return mem.Nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false for %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}
