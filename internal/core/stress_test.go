package core

import (
	"testing"

	"mplgo/internal/entangle"
	"mplgo/internal/mem"
	"mplgo/internal/workload"
)

// The stress tests generate random fork–join programs with shared-state
// effects and check the runtime's global invariants across configurations:
//
//   - results are deterministic (the programs are written to be
//     schedule-independent) across processor counts, GC budgets, and heap
//     strategies;
//   - every pin is released by the time all joins complete
//     (pins == unpins, PinnedNow == 0): entanglement cost is transient;
//   - the space high-water mark stays bounded under tiny GC budgets.

// randomProgram builds a deterministic random computation: a fork tree of
// the given depth whose leaves mix allocation, task-local mutation, and
// (when shared is true) CAS publication + reads through a shared array.
// The result is an order-independent checksum.
func randomProgram(seed uint64, depth int, shared bool) func(t *Task) mem.Value {
	return func(t *Task) mem.Value {
		f := t.NewFrame(1)
		f.Set(0, t.AllocArray(64, mem.Nil).Value())

		var rec func(t *Task, seed uint64, depth int) int64
		rec = func(t *Task, seed uint64, depth int) int64 {
			rng := workload.NewRNG(seed)
			if depth == 0 {
				var sum int64
				// Task-local allocation and mutation.
				local := t.AllocArray(8, mem.Int(0))
				for i := 0; i < 16; i++ {
					slot := rng.Intn(8)
					old := t.Read(local, slot).AsInt()
					t.Write(local, slot, mem.Int(old+int64(rng.Intn(10))))
				}
				for i := 0; i < 8; i++ {
					sum += t.Read(local, i).AsInt()
				}
				if shared {
					// Publish a box into the shared array (down-pointer
					// CAS) and read through whatever is there (possibly a
					// concurrent task's box: entangled read).
					slot := rng.Intn(64)
					box := t.AllocTuple(mem.Int(int64(rng.Intn(100))))
					t.CAS(f.Ref(0), slot, mem.Nil, box.Value())
					v := t.Read(f.Ref(0), slot)
					if v.IsRef() {
						// Order-independent: only count that a value is
						// readable, not which one.
						if t.Read(v.Ref(), 0).AsInt() >= 0 {
							sum++
						}
					}
				}
				return sum
			}
			a, b := t.Par(
				func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+1, depth-1)) },
				func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+2, depth-1)) },
			)
			return a.AsInt() + b.AsInt()
		}
		sum := rec(t, seed, depth)
		if err := t.ValidateHeaps(); err != nil {
			panic(err)
		}
		f.Pop()
		return mem.Int(sum)
	}
}

func TestStressDeterministicAcrossConfigs(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		var want int64
		for i, cfg := range []Config{
			{Procs: 1},
			{Procs: 1, HeapBudgetWords: 512},
			{Procs: 3, HeapBudgetWords: 2048},
			{Procs: 2, LazyHeaps: true},
			{Procs: 1, Mode: entangle.Unsafe}, // sound here: P=1, no races
		} {
			rt := New(cfg)
			v, err := rt.Run(randomProgram(seed, 6, cfg.Mode != entangle.Unsafe && i != 4))
			if err != nil {
				t.Fatalf("seed %d cfg %+v: %v", seed, cfg, err)
			}
			// Shared-effects runs and the unsafe run use different
			// programs; compare within the shared group only.
			if i == 0 {
				want = v.AsInt()
			} else if i < 4 && v.AsInt() != want {
				t.Fatalf("seed %d cfg %+v: result %d, want %d", seed, cfg, v.AsInt(), want)
			}
		}
	}
}

func TestStressPinsAlwaysReleased(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, cfg := range []Config{
			{Procs: 1, HeapBudgetWords: 1024},
			{Procs: 4, HeapBudgetWords: 4096},
		} {
			rt := New(cfg)
			if _, err := rt.Run(randomProgram(seed, 6, true)); err != nil {
				t.Fatal(err)
			}
			s := rt.EntStats()
			if s.Pins != s.Unpins {
				t.Fatalf("seed %d %+v: pins %d != unpins %d", seed, cfg, s.Pins, s.Unpins)
			}
			if got := rt.ent.Stats.PinnedNow(); got != 0 {
				t.Fatalf("seed %d %+v: %d objects still pinned after all joins", seed, cfg, got)
			}
		}
	}
}

func TestStressSpaceBoundedUnderTinyBudget(t *testing.T) {
	rt := New(Config{Procs: 1, HeapBudgetWords: 512})
	_, err := rt.Run(func(tk *Task) mem.Value {
		// Sequential loop allocating ~1M words of garbage; residency must
		// stay within a small multiple of the budget.
		for i := 0; i < 20000; i++ {
			tk.AllocArray(50, mem.Int(int64(i)))
		}
		return mem.Nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max := rt.MaxLiveWords(); max > 1<<16 {
		t.Fatalf("residency %d words for 1M words of garbage under a 512-word budget", max)
	}
}

func TestStressDeepForkTree(t *testing.T) {
	// A deep, narrow fork chain: one side of every fork recurses, the
	// other allocates. Exercises heap depths, merge chains, and the
	// hierarchy's Euler maintenance under heavy insertion/deletion.
	rt := New(Config{Procs: 2, HeapBudgetWords: 4096})
	v, err := rt.Run(func(tk *Task) mem.Value {
		var rec func(t *Task, d int) int64
		rec = func(t *Task, d int) int64 {
			if d == 0 {
				return 1
			}
			a, b := t.Par(
				func(t *Task) mem.Value { return mem.Int(rec(t, d-1)) },
				func(t *Task) mem.Value {
					arr := t.AllocArray(32, mem.Int(int64(d)))
					return t.Read(arr, 7)
				},
			)
			return a.AsInt() + b.AsInt()
		}
		return mem.Int(rec(tk, 200))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1)
	for d := 1; d <= 200; d++ {
		want += int64(d)
	}
	if v.AsInt() != want {
		t.Fatalf("deep chain sum = %d, want %d", v.AsInt(), want)
	}
}

// TestStressStealHeavyEntangled drives a fine-grained fork tree (256
// leaves, all publishing and reading through one shared array) on 8
// workers, the configuration where the lock-free deques see real thief
// contention. Checks: the order-independent checksum matches the P=1 run,
// every pin is released, and a tiny GC budget doesn't break either — all
// under concurrent stealing, in every heap strategy.
func TestStressStealHeavyEntangled(t *testing.T) {
	const seed, depth = 99, 8
	var want int64
	{
		rt := New(Config{Procs: 1})
		v, err := rt.Run(randomProgram(seed, depth, true))
		if err != nil {
			t.Fatal(err)
		}
		want = v.AsInt()
	}
	for _, cfg := range []Config{
		{Procs: 8},
		{Procs: 8, LazyHeaps: true},
		{Procs: 8, HeapBudgetWords: 2048},
		{Procs: 8, LazyHeaps: true, HeapBudgetWords: 2048},
	} {
		rt := New(cfg)
		v, err := rt.Run(randomProgram(seed, depth, true))
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if v.AsInt() != want {
			t.Fatalf("%+v: result %d, want %d", cfg, v.AsInt(), want)
		}
		s := rt.EntStats()
		if s.Pins != s.Unpins {
			t.Fatalf("%+v: pins %d != unpins %d", cfg, s.Pins, s.Unpins)
		}
		if got := rt.ent.Stats.PinnedNow(); got != 0 {
			t.Fatalf("%+v: %d objects still pinned after all joins", cfg, got)
		}
		t.Logf("%+v: steals=%d pins=%d", cfg, rt.Steals(), s.Pins)
	}
}

func TestStressEntangledChainAcrossGC(t *testing.T) {
	// Left builds a linked list and publishes the head; right traverses it
	// while left keeps allocating (forcing left-side collections). Every
	// node right touches must pin and remain readable; the traversal sum
	// is deterministic.
	const nodes = 200
	rt := New(Config{Procs: 1, HeapBudgetWords: 1024})
	v, err := rt.Run(func(tk *Task) mem.Value {
		shared := tk.AllocArray(1, mem.Nil)
		_, rv := tk.Par(
			func(l *Task) mem.Value {
				f := l.NewFrame(1)
				for i := nodes; i >= 1; i-- {
					f.Set(0, l.AllocTuple(mem.Int(int64(i)), f.Get(0)).Value())
				}
				l.Write(shared, 0, f.Get(0))
				f.Pop()
				// Allocation pressure after publishing: the list must
				// survive via the remembered set.
				for i := 0; i < 100; i++ {
					l.AllocArray(64, mem.Int(0))
				}
				return mem.Nil
			},
			func(r *Task) mem.Value {
				v := r.Read(shared, 0)
				var sum int64
				for v.IsRef() {
					sum += r.Read(v.Ref(), 0).AsInt()
					v = r.Read(v.Ref(), 1)
				}
				return mem.Int(sum)
			},
		)
		return rv
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(nodes) * (nodes + 1) / 2; v.AsInt() != want {
		t.Fatalf("entangled traversal sum = %d, want %d", v.AsInt(), want)
	}
	s := rt.EntStats()
	if s.EntangledReads < nodes {
		t.Fatalf("expected ≥%d entangled reads, got %d", nodes, s.EntangledReads)
	}
}
