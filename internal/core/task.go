package core

import (
	"mplgo/internal/entangle"
	"mplgo/internal/gc"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/sched"
	"mplgo/internal/sim"
)

// Task is a strand of the fork–join computation. Tasks are not safe for
// concurrent use: each task belongs to the worker executing it. All heap
// access must go through the task so the entanglement barriers run.
//
// GC discipline: local collections move objects, and they happen only
// inside allocation calls. Any mem.Ref a program holds in Go variables
// across an allocation must be registered in a Frame (see NewFrame);
// arguments passed *to* allocation calls are protected automatically.
type Task struct {
	rt    *Runtime
	w     *sched.Worker
	heap  *hierarchy.Heap
	alloc *mem.Allocator
	slots []mem.Value // shadow stack; visited by collections as roots
	node  *sim.Node   // current recording segment (nil when not recording)

	// workAcc batches abstract work units task-locally. The access fast
	// paths bump this plain field instead of dereferencing the recording
	// node per access; flushWork drains it into the node at every point
	// where the task's current segment changes (forks, joins, finish), so
	// recorded traces carry exactly the per-segment sums they always did.
	workAcc int64

	sinceGC  int64
	barriers bool
}

func (r *Runtime) newTask(w *sched.Worker, h *hierarchy.Heap, node *sim.Node) *Task {
	t := &Task{
		rt:       r,
		w:        w,
		heap:     h,
		alloc:    mem.NewAllocator(r.space, h.ID),
		node:     node,
		barriers: r.cfg.Mode != entangle.Unsafe,
	}
	h.AddRootSet(t)
	return t
}

// finish detaches the task from its heap at the end of its strand.
func (t *Task) finish() {
	t.flushWork()
	t.syncChunks()
	t.heap.RemoveRootSet(t)
}

// syncChunks adopts the allocator's chunks into the task's heap so
// collections and merges see them.
func (t *Task) syncChunks() {
	if len(t.alloc.Chunks) > 0 {
		t.heap.Chunks = append(t.heap.Chunks, t.alloc.Chunks...)
		t.alloc.Chunks = t.alloc.Chunks[:0]
	}
}

// Roots implements hierarchy.RootSet over the shadow stack.
func (t *Task) Roots(visit func(*mem.Value)) {
	for i := range t.slots {
		visit(&t.slots[i])
	}
}

// Work records n units of abstract computational cost for the simulator's
// work/span accounting. Benchmark kernels call this for their arithmetic.
// The cost lands in a task-local accumulator; flushWork attributes it to
// the current recording segment at the next fork/join boundary.
func (t *Task) Work(n int64) { t.workAcc += n }

// flushWork drains the batched work accumulator into the task's current
// recording segment. It must run before every reassignment of t.node so
// pending cost is attributed to the segment that incurred it.
func (t *Task) flushWork() {
	if t.node != nil {
		t.node.Work += t.workAcc
	}
	t.workAcc = 0
}

// Runtime returns the runtime this task belongs to.
func (t *Task) Runtime() *Runtime { return t.rt }

// Depth returns the task's heap depth.
func (t *Task) Depth() int { return t.heap.Depth() }

// maybeGC collects the task's exclusive heap suffix if the allocation
// budget is spent. Must be called before—never after—allocating the object
// the caller is about to hand out.
func (t *Task) maybeGC() {
	if t.rt.cfg.DisableGC || t.sinceGC < t.rt.cfg.HeapBudgetWords {
		return
	}
	t.collectNow()
}

// collectNow unconditionally attempts a local collection of the task's own
// leaf heap.
//
// MPL's LGC may collect the whole exclusively-owned heap suffix (see
// hierarchy.ExclusiveSuffix) because it can scan the ML stacks of suspended
// ancestor tasks. In this embedding a suspended ancestor's Go locals are
// invisible to the collector, so only the current task's heap — whose owner
// is provably at an allocation safepoint with its live references framed —
// is safe to move. Joined children have already merged their chunks into
// this heap, so their garbage is still reclaimed here.
func (t *Task) collectNow() {
	t.syncChunks()
	if t.heap.LiveChildren() != 0 || t.heap.PendingForks.Load() != 0 {
		// An outstanding fork runs (or may run) in this heap and holds
		// unscannable references into it; retry after more allocation
		// rather than on every call.
		t.sinceGC = t.rt.cfg.HeapBudgetWords / 2
		return
	}
	res := t.rt.col.Collect([]*hierarchy.Heap{t.heap})
	t.alloc.Retarget(t.heap.ID)
	t.Work(res.CopiedWords * costGCWord)
	t.sinceGC = 0
}

// Par evaluates f and g in parallel and returns both results. Child heaps
// are created under the task's heap (at every fork by default, at steals in
// lazy mode) and merged back at the join.
//
// The returned values are safe to use until the task's next allocation;
// register references in a Frame before allocating.
func (t *Task) Par(f, g func(*Task) mem.Value) (mem.Value, mem.Value) {
	t.syncChunks()
	t.flushWork()
	var lnode, rnode, anode *sim.Node
	if t.node != nil {
		t.node.Work += costFork
		lnode, rnode, anode = t.node.Fork()
	}
	var lv, rv mem.Value
	if t.rt.cfg.LazyHeaps {
		var rheap *hierarchy.Heap
		saved := t.node
		t.heap.PendingForks.Add(1)
		defer t.heap.PendingForks.Add(-1)
		t.w.ForkJoin(
			func(w *sched.Worker) {
				t.node = lnode
				lv = f(t)
				t.flushWork() // attribute f's work to lnode before the node changes
			},
			func(w *sched.Worker, stolen bool) {
				if stolen {
					rheap = t.rt.tree.Fork(t.heap)
					gt := t.rt.newTask(w, rheap, rnode)
					rv = g(gt)
					gt.finish()
				} else {
					t.node = rnode
					rv = g(t)
					t.flushWork()
				}
			},
		)
		t.node = saved
		t.syncChunks()
		if rheap != nil {
			t.rt.ent.OnJoin(rheap, t.heap)
		}
	} else {
		lheap := t.rt.tree.Fork(t.heap)
		rheap := t.rt.tree.Fork(t.heap)
		t.w.ForkJoin(
			func(w *sched.Worker) {
				lt := t.rt.newTask(w, lheap, lnode)
				lv = f(lt)
				lt.finish()
			},
			func(w *sched.Worker, stolen bool) {
				gt := t.rt.newTask(w, rheap, rnode)
				rv = g(gt)
				gt.finish()
			},
		)
		t.rt.ent.OnJoin(lheap, t.heap)
		t.rt.ent.OnJoin(rheap, t.heap)
	}
	if anode != nil {
		t.node = anode
	}
	return lv, rv
}

// ParFor runs body over [lo, hi) in parallel, splitting ranges in half
// until they are at most grain wide.
func (t *Task) ParFor(lo, hi, grain int, body func(t *Task, lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		body(t, lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	t.Par(
		func(t *Task) mem.Value { t.ParFor(lo, mid, grain, body); return mem.Nil },
		func(t *Task) mem.Value { t.ParFor(mid, hi, grain, body); return mem.Nil },
	)
}

// Frame is a window of the task's shadow stack: the values placed in a
// frame are GC roots and are updated in place when collections move
// objects. Frames are strictly LIFO.
type Frame struct {
	t    *Task
	base int
	n    int
}

// NewFrame pushes a frame of n root slots (initialized to Nil).
func (t *Task) NewFrame(n int) Frame {
	base := len(t.slots)
	for i := 0; i < n; i++ {
		t.slots = append(t.slots, mem.Nil)
	}
	return Frame{t: t, base: base, n: n}
}

// Set stores v in slot i.
func (f Frame) Set(i int, v mem.Value) {
	if i < 0 || i >= f.n {
		panic("core: frame index out of range")
	}
	f.t.slots[f.base+i] = v
}

// Get returns the current value of slot i (updated by collections).
func (f Frame) Get(i int) mem.Value { return f.t.slots[f.base+i] }

// Ref returns slot i as a reference.
func (f Frame) Ref(i int) mem.Ref { return f.Get(i).Ref() }

// Pop releases the frame. Frames must be popped in LIFO order.
func (f Frame) Pop() {
	if len(f.t.slots) != f.base+f.n {
		panic("core: non-LIFO frame pop")
	}
	f.t.slots = f.t.slots[:f.base]
}

// ValidateHeaps traces the live object graph from every live heap's roots
// and checks heap integrity (see gc.Validate). A testing aid: call it at a
// quiescent point, e.g. at the end of a computation while frames still
// root the data of interest.
func (t *Task) ValidateHeaps() error {
	t.syncChunks()
	return gc.Validate(t.rt.space, t.rt.tree.Live())
}
