package core

import (
	"sync/atomic"

	"mplgo/internal/chaos"
	"mplgo/internal/entangle"
	"mplgo/internal/gc"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/sched"
	"mplgo/internal/sim"
	"mplgo/internal/trace"
)

// Task is a strand of the fork–join computation. Tasks are not safe for
// concurrent use: each task belongs to the worker executing it. All heap
// access must go through the task so the entanglement barriers run.
//
// GC discipline: local collections move objects, and they happen only
// inside allocation calls. Any mem.Ref a program holds in Go variables
// across an allocation must be registered in a Frame (see NewFrame);
// arguments passed *to* allocation calls are protected automatically.
type Task struct {
	rt    *Runtime
	w     *sched.Worker
	heap  *hierarchy.Heap
	alloc *mem.Allocator
	node  *sim.Node // current recording segment (nil when not recording)

	// frames is the shadow stack: one independently-allocated slab per
	// Frame, visited by collections as roots. Slabs are deliberately NOT
	// windows into one contiguous slice: a Frame captured by a Par branch
	// closure may be read from a stolen strand while this task's own strand
	// keeps pushing frames, and a shared backing array would make every
	// such read race with append's reallocation. The spine itself is
	// owner-only (push/pop/roots all run on the owning strand).
	frames [][]mem.Value

	// spare recycles popped slabs: recursion pushes same-sized frames over
	// and over, and a popped slab is unreachable by other strands (its
	// frame's forks have joined), so reuse is safe and keeps NewFrame off
	// the Go allocator. Slabs discarded by runInline's panic cleanup are
	// NOT recycled — a cancelled strand may still be draining.
	spare [][]mem.Value

	// workAcc batches abstract work units task-locally. The access fast
	// paths bump this plain field instead of dereferencing the recording
	// node per access; flushWork drains it into the node at every point
	// where the task's current segment changes (forks, joins, finish), so
	// recorded traces carry exactly the per-segment sums they always did.
	workAcc int64

	sinceGC  int64
	barriers bool

	// scope is the task's request-scoped fault domain (nil for the vast
	// majority of tasks — benchmarks and plain Par trees never set it).
	// Every poll site tests the pointer before anything else, so unscoped
	// fast paths pay one predictable load. scopeTick amortizes the
	// allocation-path deadline clock read (see scope.go).
	scope     *Scope
	scopeTick int64

	// Elision telemetry, bumped by the Fast accessors as plain task-local
	// counters (the whole point of elision is to keep atomics off the access
	// path) and drained into the runtime's atomic totals at finish and at
	// collections (flushElision).
	elidedLoads  int64
	elidedStores int64
	staticAllocs int64

	// Concurrent-collector handshake state (see cgc.go). cgcOn caches
	// rt.cgc != nil so every hook below is one branch when CGC is off;
	// cgcPark is the run/parked/claimed word the collector claims parked
	// tasks through; cgcEpoch is the last cycle epoch this task's frame
	// roots were published for.
	cgcOn    bool
	cgcPark  atomic.Uint32
	cgcEpoch atomic.Uint64
}

func (r *Runtime) newTask(w *sched.Worker, h *hierarchy.Heap, node *sim.Node) *Task {
	t := &Task{
		rt:       r,
		w:        w,
		heap:     h,
		alloc:    mem.NewAllocator(r.space, h.ID),
		node:     node,
		barriers: r.cfg.Mode != entangle.Unsafe,
	}
	if r.cgc != nil {
		t.cgcOn = true
		r.cgcRegister(t)
	}
	// The heap is executed by this worker's strand from here until its
	// join, so the worker's ring is the heap's single-writer event ring
	// (nil when untraced). Heap-side instrumentation (merge, unpin,
	// entanglement slow paths hit through this leaf) emits into it. The
	// attribution sink rides along under the same ownership rule.
	h.TraceRing = w.Ring
	h.AttrSink = w.Attr
	h.AddRootSet(t)
	return t
}

// finish detaches the task from its heap at the end of its strand.
func (t *Task) finish() {
	t.flushWork()
	t.flushElision()
	t.syncChunks()
	t.heap.RemoveRootSet(t)
	if t.cgcOn {
		t.rt.cgcUnregister(t)
	}
}

// syncChunks adopts the allocator's chunks into the task's heap so
// collections and merges see them.
func (t *Task) syncChunks() {
	if len(t.alloc.Chunks) > 0 {
		t.heap.Chunks = append(t.heap.Chunks, t.alloc.Chunks...)
		t.alloc.Chunks = t.alloc.Chunks[:0]
	}
}

// Roots implements hierarchy.RootSet over the shadow stack.
func (t *Task) Roots(visit func(*mem.Value)) {
	for _, slab := range t.frames {
		for i := range slab {
			visit(&slab[i])
		}
	}
}

// Work records n units of abstract computational cost for the simulator's
// work/span accounting. Benchmark kernels call this for their arithmetic.
// The cost lands in a task-local accumulator; flushWork attributes it to
// the current recording segment at the next fork/join boundary.
func (t *Task) Work(n int64) { t.workAcc += n }

// EmitCounter samples an application-level gauge into the task's worker
// ring (the serve dispatcher emits its admission counters this way). The
// single-writer ring discipline is preserved because the emit runs on the
// strand currently executing this task. Free when untraced.
func (t *Task) EmitCounter(c trace.Counter, v uint64) {
	if r := t.w.Ring; r != nil && trace.Enabled() {
		r.Emit(trace.EvCounter, int32(t.heap.Depth()), uint64(c), v)
	}
}

// flushElision drains the task-local elision counters into the runtime
// totals surfaced by Runtime.ElisionStats.
func (t *Task) flushElision() {
	if t.elidedLoads != 0 {
		t.rt.elLoads.Add(t.elidedLoads)
		t.elidedLoads = 0
	}
	if t.elidedStores != 0 {
		t.rt.elStores.Add(t.elidedStores)
		t.elidedStores = 0
	}
	if t.staticAllocs != 0 {
		t.rt.elAllocs.Add(t.staticAllocs)
		t.staticAllocs = 0
	}
}

// flushWork drains the batched work accumulator into the task's current
// recording segment. It must run before every reassignment of t.node so
// pending cost is attributed to the segment that incurred it.
func (t *Task) flushWork() {
	if t.node != nil {
		t.node.Work += t.workAcc
	}
	t.workAcc = 0
}

// Runtime returns the runtime this task belongs to.
func (t *Task) Runtime() *Runtime { return t.rt }

// Depth returns the task's heap depth.
func (t *Task) Depth() int { return t.heap.Depth() }

// needGC reports whether the allocation slow path should collect: the
// budget is spent, or the chaos layer forces a collection at this
// allocation. Never after cancellation — the unwind must not move objects
// out from under strands that skipped their pins.
func (t *Task) needGC() bool {
	if t.rt.cfg.DisableGC || t.rt.cancelled.Load() {
		return false
	}
	if t.sinceGC >= t.rt.cfg.HeapBudgetWords {
		return true
	}
	// Explicit nil check before the call: Should is nil-safe but too big to
	// inline, and this runs on every allocation.
	return t.rt.chaos != nil && t.rt.chaos.Should(chaos.GCTrigger)
}

// collectNow unconditionally attempts a local collection of the task's own
// leaf heap.
//
// MPL's LGC may collect the whole exclusively-owned heap suffix (see
// hierarchy.ExclusiveSuffix) because it can scan the ML stacks of suspended
// ancestor tasks. In this embedding a suspended ancestor's Go locals are
// invisible to the collector, so only the current task's heap — whose owner
// is provably at an allocation safepoint with its live references framed —
// is safe to move. Joined children have already merged their chunks into
// this heap, so their garbage is still reclaimed here.
func (t *Task) collectNow() bool {
	t.syncChunks()
	if t.heap.LiveChildren() != 0 || t.heap.PendingForks.Load() != 0 {
		// An outstanding fork runs (or may run) in this heap and holds
		// unscannable references into it; retry after more allocation
		// rather than on every call.
		t.sinceGC = t.rt.cfg.HeapBudgetWords / 2
		return false
	}
	if t.cgcOn {
		// Defer — never block — while a concurrent cycle runs: the cycle
		// is waiting on safepoint handshakes, and a mutator blocked here
		// would never reach one.
		if !t.rt.cgcExcl.TryRLock() {
			t.sinceGC = t.rt.cfg.HeapBudgetWords / 2
			return false
		}
		defer t.rt.cgcExcl.RUnlock()
	}
	ring := t.w.Ring
	d := int32(t.heap.Depth())
	ring.Emit(trace.EvLGCBegin, d, uint64(t.heap.ID), 0)
	res := t.rt.col.Collect([]*hierarchy.Heap{t.heap})
	ring.Emit(trace.EvLGCEnd, d, uint64(res.CopiedWords), uint64(res.ReclaimedWords))
	if ring != nil && trace.Enabled() {
		ring.Emit(trace.EvCounter, d, uint64(trace.CtrLiveWords), uint64(t.rt.space.LiveWords()))
		ring.Emit(trace.EvCounter, d, uint64(trace.CtrRetainedChunks), uint64(t.rt.col.RetainedChunks.Load()))
		if s := t.rt.tree.Stats; s != nil {
			ring.Emit(trace.EvCounter, d, uint64(trace.CtrAncestryQueries), uint64(s.AncestryQueries.Load()))
			ring.Emit(trace.EvCounter, d, uint64(trace.CtrSeqlockRetries), uint64(s.SeqlockRetries.Load()))
		}
		t.flushElision()
		es := t.rt.ElisionStats()
		ring.Emit(trace.EvCounter, d, uint64(trace.CtrStaticRegions), uint64(es.StaticRegions))
		ring.Emit(trace.EvCounter, d, uint64(trace.CtrElidedLoads), uint64(es.ElidedLoads))
		ring.Emit(trace.EvCounter, d, uint64(trace.CtrElidedStores), uint64(es.ElidedStores))
		// Periodic attribution flush: this worker owns both the sink and
		// the ring, and a collection is a natural boundary where the
		// strand is already off its fast paths.
		t.w.Attr.EmitCounters(ring, d)
	}
	t.alloc.Retarget(t.heap.ID)
	t.Work(res.CopiedWords * costGCWord)
	t.sinceGC = 0
	if ch := t.rt.chaos; ch != nil && ch.Should(chaos.JoinCheck) {
		// Collection-end audit (relaxed: owner-owned structures only).
		if err := gc.CheckHeap(t.rt.space, t.heap, false); err != nil {
			t.rt.cancelWith(err)
		}
	}
	return true
}

// Par evaluates f and g in parallel and returns both results. Child heaps
// are created under the task's heap (at every fork by default, at steals in
// lazy mode) and merged back at the join.
//
// Par is panic-safe: a panic in either branch is recovered, recorded as the
// runtime's error (see PanicError) and raised as cooperative cancellation,
// which the sibling observes at its own forks and allocation slow paths.
// The join still runs every merge and unpin step, so the heap hierarchy
// stays consistent while the computation unwinds; Run returns the error.
// Par is also a cancellation point: once the runtime is cancelled it skips
// both branches and returns (Nil, Nil) immediately, so deep fork trees
// unwind without doing further work. Request-scoped cancellation (scope.go)
// is checked at the same site — a task whose fault domain died (deadline,
// budget, explicit Cancel) skips its branches the same way, while sibling
// domains keep forking; its joins still run below, so every merge and unpin
// the subtree owes still happens on the way out.
//
// The returned values are safe to use until the task's next allocation;
// register references in a Frame before allocating.
func (t *Task) Par(f, g func(*Task) mem.Value) (mem.Value, mem.Value) {
	if t.rt.cancelled.Load() || t.scopeCancelled() {
		return mem.Nil, mem.Nil
	}
	if t.cgcOn {
		t.cgcSafepoint()
	}
	t.syncChunks()
	t.flushWork()
	var lnode, rnode, anode *sim.Node
	if t.node != nil {
		t.node.Work += costFork
		lnode, rnode, anode = t.node.Fork()
	}
	var lv, rv mem.Value
	// Snapshot the fault domain for the branch tasks. Captured by value
	// before the fork: in lazy mode the inline branch runs on this task and
	// may itself enter/leave scopes (RunScoped mutates t.scope) while a
	// stolen branch is being set up on another worker.
	sc := t.scope
	if t.rt.cfg.LazyHeaps {
		var rheap *hierarchy.Heap
		saved := t.node
		t.heap.PendingForks.Add(1)
		defer t.heap.PendingForks.Add(-1)
		// Child heap ids are unknown at a lazy fork (heaps materialize at
		// steals), so the fork event carries none.
		t.w.Ring.Emit(trace.EvFork, int32(t.heap.Depth()), 0, 0)
		t.w.ForkJoin(
			func(w *sched.Worker) {
				t.node = lnode
				lv = t.runInline(f)
				t.flushWork() // attribute f's work to lnode before the node changes
			},
			func(w *sched.Worker, stolen bool) {
				if stolen {
					rheap = t.rt.tree.Fork(t.heap)
					gt := t.rt.newTask(w, rheap, rnode)
					gt.scope = sc
					defer gt.finish()
					defer t.rt.guard()
					rv = g(gt)
				} else {
					t.node = rnode
					rv = t.runInline(g)
					t.flushWork()
				}
			},
		)
		t.node = saved
		t.syncChunks()
		if rheap != nil {
			t.rt.ent.OnJoin(rheap, t.heap)
		}
		t.w.Ring.Emit(trace.EvJoin, int32(t.heap.Depth()), uint64(t.heap.ID), 0)
	} else {
		lheap := t.rt.tree.Fork(t.heap)
		rheap := t.rt.tree.Fork(t.heap)
		t.w.Ring.Emit(trace.EvFork, int32(t.heap.Depth()), uint64(lheap.ID), uint64(rheap.ID))
		// Park for the concurrent collector: from here to the unpark this
		// task runs no code of its own (the branches run as fresh tasks,
		// even on this worker), so its frames are stable and the collector
		// may claim-scan them — and may claim this heap, now suspended
		// under live children, for a concurrent cycle.
		t.cgcParkSelf()
		t.w.ForkJoin(
			func(w *sched.Worker) {
				lt := t.rt.newTask(w, lheap, lnode)
				lt.scope = sc
				defer lt.finish()
				defer t.rt.guard()
				lv = f(lt)
			},
			func(w *sched.Worker, stolen bool) {
				gt := t.rt.newTask(w, rheap, rnode)
				gt.scope = sc
				defer gt.finish()
				defer t.rt.guard()
				rv = g(gt)
			},
		)
		t.cgcUnpark()
		if t.cgcOn {
			// If a concurrent cycle claimed this heap while we were parked,
			// wait for it to finish with the heap rather than revoking the
			// claim — the cycle then always gets to sweep what it marked.
			// Self-scan first: the cycle's mark fixpoint may be waiting for
			// this task's safepoint, which blocking here would never reach.
			// Then drop allocator references to chunks a sweep released:
			// the bump chunk and reuse-list entries may no longer belong to
			// this heap, and carving into them would mint references into
			// free (or recycled) memory.
			t.cgcSafepoint()
			t.cgcResumeHeap()
			t.alloc.Revalidate()
		}
		t.rt.ent.OnJoin(lheap, t.heap)
		t.rt.ent.OnJoin(rheap, t.heap)
		t.w.Ring.Emit(trace.EvJoin, int32(t.heap.Depth()), uint64(t.heap.ID), 0)
	}
	if anode != nil {
		t.node = anode
	}
	if ch := t.rt.chaos; ch != nil && ch.Should(chaos.JoinCheck) {
		// Join audit (relaxed): the merged parent heap, owned by this
		// strand, must parse end to end with a well-formed remembered set.
		t.syncChunks()
		if err := gc.CheckHeap(t.rt.space, t.heap, false); err != nil {
			t.rt.cancelWith(err)
		}
	}
	return lv, rv
}

// runInline runs a branch body on this task (lazy mode, branch not
// stolen), recovering panics like any branch: the error is recorded, the
// runtime cancelled, and any shadow-stack frames the body left unpopped
// are discarded so the suspended ancestors' frames stay addressable.
func (t *Task) runInline(f func(*Task) mem.Value) (v mem.Value) {
	nframes := len(t.frames)
	defer func() {
		if len(t.frames) > nframes {
			t.frames = t.frames[:nframes]
		}
	}()
	defer t.rt.guard()
	return f(t)
}

// ParFor runs body over [lo, hi) in parallel, splitting ranges in half
// until they are at most grain wide.
func (t *Task) ParFor(lo, hi, grain int, body func(t *Task, lo, hi int)) {
	if t.rt.cancelled.Load() || t.scopeCancelled() {
		return // cancellation point: skip remaining range while unwinding
	}
	if t.cgcOn {
		t.cgcSafepoint()
	}
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		body(t, lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	t.Par(
		func(t *Task) mem.Value { t.ParFor(lo, mid, grain, body); return mem.Nil },
		func(t *Task) mem.Value { t.ParFor(mid, hi, grain, body); return mem.Nil },
	)
}

// Frame is one slab of the task's shadow stack: the values placed in a
// frame are GC roots and are updated in place when collections move
// objects. Frames are strictly LIFO. A frame's slots live in their own
// allocation (see Task.frames), so a Frame captured by a branch closure
// stays readable from a concurrently-running stolen strand — its slab
// pointer never moves, and collections of the frame's heap cannot run
// while any such strand (a live child of the frame's task) exists.
// Frame is four words (a slice plus the task pointer) on purpose: the
// benchmark bodies call Get/Set/Ref through a generic frame type
// parameter, and a receiver this size still travels in registers; one
// more field pushes every such call into a stack spill.
type Frame struct {
	slab []mem.Value
	t    *Task
}

// NewFrame pushes a frame of n root slots (initialized to Nil).
func (t *Task) NewFrame(n int) Frame {
	var slab []mem.Value
	if k := len(t.spare) - 1; k >= 0 && cap(t.spare[k]) >= n {
		slab = t.spare[k][:n]
		t.spare = t.spare[:k]
		for i := range slab {
			slab[i] = mem.Nil
		}
	} else {
		slab = make([]mem.Value, n)
	}
	t.frames = append(t.frames, slab)
	return Frame{slab: slab, t: t}
}

// Set stores v in slot i.
func (f Frame) Set(i int, v mem.Value) {
	f.slab[i] = v
}

// Get returns the current value of slot i (updated by collections).
func (f Frame) Get(i int) mem.Value { return f.slab[i] }

// Ref returns slot i as a reference.
func (f Frame) Ref(i int) mem.Ref { return f.slab[i].Ref() }

// Pop releases the frame. Frames must be popped in LIFO order; the check
// is by slab identity against the top of the shadow stack.
func (f Frame) Pop() {
	k := len(f.t.frames) - 1
	if k < 0 || !sameSlab(f.t.frames[k], f.slab) {
		panic("core: non-LIFO frame pop")
	}
	f.t.frames = f.t.frames[:k]
	f.t.spare = append(f.t.spare, f.slab)
}

// sameSlab reports whether two slabs are the same allocation. Empty slabs
// share the runtime's zero base, so length alone identifies them; that is
// fine — popping one empty frame for another of the same (zero) size
// releases no roots.
func sameSlab(a, b []mem.Value) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// ValidateHeaps traces the live object graph from every live heap's roots
// and checks heap integrity (see gc.Validate). A testing aid: call it at a
// quiescent point, e.g. at the end of a computation while frames still
// root the data of interest.
func (t *Task) ValidateHeaps() error {
	t.syncChunks()
	return gc.Validate(t.rt.space, t.rt.tree.Live())
}
