package core

import (
	"mplgo/internal/attr"
	"mplgo/internal/chaos"
	"mplgo/internal/mem"
	"mplgo/internal/trace"
)

// Allocation. Every allocating call may trigger a local collection first;
// reference arguments to these calls are protected automatically (they are
// parked in a transient frame around the collection), but any other live
// references the caller holds must be in Frames.

// guardedGC runs a pending collection while keeping vs updated as roots.
// It returns the (possibly relocated) values. It is also the backpressure
// point: residency above Config.MaxHeapWords forces a collection, and if
// the forced collection cannot get back under the limit the computation is
// cancelled with ErrHeapLimit. After cancellation it does nothing — the
// unwind must not relocate objects.
// Attribution: the whole pre-allocation poll — cancel check, scope
// poll, CGC safepoint and reuse drain, residency and budget tests — is
// one BudgetPoll window, closed before a collection it triggers
// (BudgetPoll prices the per-allocation check; LGC time is traced
// separately).
func (t *Task) guardedGC(vs []mem.Value) {
	at := t.w.Attr.Begin()
	if t.rt.cancelled.Load() {
		t.w.Attr.End(attr.BudgetPoll, at)
		return
	}
	if s := t.scope; s != nil {
		// The allocation-side scope poll: fold an expired deadline into the
		// domain's cancel flag (amortized clock read) so the next fork
		// unwinds promptly even in allocation-heavy stretches. Collection
		// stays ON for scope-cancelled tasks — sibling domains are still
		// live and objects still move, so none of the global-cancel
		// shortcuts below apply to scoped cancellation.
		t.scopeAllocPoll(s)
	}
	if t.cgcOn {
		// Allocation is the universal safepoint: publish frame roots to a
		// marking cycle (before the early-out — the cycle may be waiting
		// on exactly this task), and adopt chunks the concurrent sweep
		// left with threaded free spans for this heap.
		t.cgcSafepoint()
		if r := t.w.Ring; r != nil && trace.Enabled() {
			d := int32(t.heap.Depth())
			t.heap.DrainReusable(func(c *mem.Chunk) {
				r.Emit(trace.EvChunkReuse, d, uint64(c.ID), uint64(c.FreeWordCount()))
				t.alloc.AddReusable(c)
			})
		} else {
			t.heap.DrainReusable(t.alloc.AddReusable)
		}
	}
	over := t.overHeapLimit()
	need := over || t.needGC()
	t.w.Attr.End(attr.BudgetPoll, at)
	if !need {
		return
	}
	f := t.NewFrame(len(vs))
	for i, v := range vs {
		f.Set(i, v)
	}
	collected := t.collectNow()
	for i := range vs {
		vs[i] = f.Get(i)
	}
	f.Pop()
	if over && collected && t.overHeapLimit() {
		// Only a collection that actually ran proves the limit is real: a
		// collection deferred behind a concurrent cycle retries instead of
		// condemning the run.
		t.rt.cancelWith(ErrHeapLimit)
	}
}

// overHeapLimit reports whether total residency exceeds the configured
// backpressure limit.
func (t *Task) overHeapLimit() bool {
	lim := t.rt.cfg.MaxHeapWords
	return lim > 0 && t.rt.space.LiveWords() > lim
}

func (t *Task) bumpAlloc(words int64) {
	t.sinceGC += words
	t.Work(allocCost(words))
	if s := t.scope; s != nil {
		s.charge(words)
	}
}

// allocCost is the abstract cost of an allocation for the simulator's
// work accounting. Small objects cost their size (header writes and
// initialization); large arrays cost far less than their size because
// chunk acquisition is O(1) and zeroing is amortized across chunk reuse —
// charging the full size would put a spurious serial segment on the
// recorded critical path.
func allocCost(words int64) int64 {
	const linear = 256
	if words <= linear {
		return words
	}
	return linear + (words-linear)/32
}

// AllocTuple allocates an immutable tuple of vs.
func (t *Task) AllocTuple(vs ...mem.Value) mem.Ref {
	t.guardedGC(vs)
	r := t.alloc.AllocTuple(vs...)
	t.bumpAlloc(int64(len(vs)) + 1)
	return r
}

// AllocArray allocates a mutable array of n slots initialized to v.
func (t *Task) AllocArray(n int, v mem.Value) mem.Ref {
	vs := [1]mem.Value{v}
	t.guardedGC(vs[:])
	r := t.alloc.AllocArray(n, vs[0])
	t.bumpAlloc(int64(n) + 1)
	return r
}

// AllocRef allocates a mutable ref cell holding v (ML's `ref v`).
func (t *Task) AllocRef(v mem.Value) mem.Ref {
	vs := [1]mem.Value{v}
	t.guardedGC(vs[:])
	r := t.alloc.AllocRef(vs[0])
	t.bumpAlloc(2)
	return r
}

// AllocString allocates an immutable string object.
func (t *Task) AllocString(s string) mem.Ref {
	t.guardedGC(nil)
	r := t.alloc.AllocString(s)
	t.bumpAlloc(int64(2 + (len(s)+7)/8))
	return r
}

// StringOf decodes a string object.
func (t *Task) StringOf(r mem.Ref) string { return t.rt.space.LoadString(r) }

// ByteOf reads byte i of a string object without materializing the string.
func (t *Task) ByteOf(r mem.Ref, i int) byte {
	t.Work(costAccess)
	return byte(t.rt.space.LoadRaw(r, 1+i/8) >> (8 * (i % 8)))
}

// StrLen returns the byte length of a string object.
func (t *Task) StrLen(r mem.Ref) int { return int(t.rt.space.LoadRaw(r, 0)) }

// Length returns the payload length of the object at r: tuple arity, array
// length, 1 for ref cells.
func (t *Task) Length(r mem.Ref) int { return t.rt.space.Header(r).Len() }

// Read loads payload word i of o through the read barrier.
//
// Fast path: mem.LoadChecked fuses the value load and the candidate test
// into one chunk resolution — for non-reference values the whole barrier
// is a single atomic load and bit test. If the holder is an entanglement
// candidate and the loaded value is a reference, the slow path classifies
// the edge and pins the target when it proves entangled.
func (t *Task) Read(o mem.Ref, i int) mem.Value {
	t.workAcc += costAccess
	if !t.barriers {
		return t.rt.space.Load(o, i)
	}
	v, slow := t.rt.space.LoadChecked(o, i)
	if slow {
		if t.rt.cancelled.Load() {
			// Cancellation point: the computation is unwinding and no
			// further collections run (guardedGC is disabled), so objects
			// no longer move — skip the pin protocol and hand back the
			// loaded value. Results after cancellation are discarded.
			return v
		}
		if s := t.scope; s != nil {
			// Scope poll at the barrier slow path. Unlike the global case
			// above, a dead scope does NOT skip the pin protocol: sibling
			// domains are still collecting and moving objects, so the read
			// must pin-and-validate like any other — the join's merge will
			// unpin it. DeadlinePin chaos expires the deadline exactly
			// here, racing scoped cancellation against the pin in flight.
			if ch := t.rt.chaos; ch != nil && !s.deadline.IsZero() && ch.Should(chaos.DeadlinePin) {
				s.Cancel(ErrDeadlineExceeded)
			} else {
				t.scopeCancelled()
			}
		}
		nv, err := t.rt.ent.OnRead(t.heap, o, i, v)
		if err != nil {
			t.rt.fail(err)
		}
		t.workAcc += costSlowRead
		return nv
	}
	return v
}

// writeBarrier performs the pre-store bookkeeping shared by Write and CAS
// for storing the reference x into payload word i of o. Same-heap stores —
// detected with at most one heap-id resolution per side, and none at all
// when both objects share a chunk — are free; cross-heap stores record
// down-pointers or pin published objects (see package entangle). It must
// run before the raw store so the candidate bit is visible to any reader
// that can observe the new pointer.
func (t *Task) writeBarrier(o mem.Ref, i int, x mem.Ref) {
	if t.rt.space.SameHeap(o, x) {
		return
	}
	if err := t.rt.ent.OnWrite(t.heap, o, i, x); err != nil {
		t.rt.fail(err)
	}
}

// Write stores v into payload word i of o through the write barrier.
// When the concurrent collector is marking, the store also runs the SATB
// deletion barrier: the reference about to be overwritten is shaded before
// it becomes unreachable (entangle.ShadeOverwritten).
func (t *Task) Write(o mem.Ref, i int, v mem.Value) {
	t.workAcc += costAccess
	if t.cgcOn {
		t.cgcSafepoint()
		t.rt.ent.ShadeOverwritten(t.heap, o, i)
	}
	if t.barriers && v.IsRef() {
		t.writeBarrier(o, i, v.Ref())
	}
	t.rt.space.Store(o, i, v)
}

// Deref reads a ref cell (ML's `!r`).
func (t *Task) Deref(cell mem.Ref) mem.Value { return t.Read(cell, 0) }

// Assign writes a ref cell (ML's `r := v`).
func (t *Task) Assign(cell mem.Ref, v mem.Value) { t.Write(cell, 0, v) }

// Unchecked accessors. These are the execution targets of statically
// proven disentangled accesses (mlang's barrier-elision compilation):
// raw space loads/stores with no entanglement barrier and allocation with
// no heap-limit polling. Their GC contract:
//
//   - ReadFast/DerefFast require the holder's heap to be on the reading
//     task's heap path and every reference stored in it to point up-or-
//     same on that path. LGC only moves objects of the collecting task's
//     own leaf, and only when it has no live descendants — so path
//     objects are stable under any concurrent collection, and the loaded
//     reference needs no pin.
//   - WriteFast/AssignFast additionally require any reference value being
//     stored to point up-or-same relative to the holder: an up-pointer is
//     exactly the class OnWrite classifies as free (no remembered-set
//     entry, no candidate bit, no pin), so skipping the barrier loses
//     nothing the collectors rely on. The SATB shade still runs when the
//     concurrent collector is marking — elision removes the
//     *entanglement* barrier, never a collector invariant.
//   - AllocRefFast/AllocArrayFast bump-allocate without the budget check;
//     they fall back to the managed path whenever the allocation should
//     observe collection triggers (budget spent, residency limit,
//     concurrent collector, chaos injection), so backpressure and
//     safepoint semantics are identical in both builds.
//
// All of them charge the same abstract work as their checked twins, so
// recorded work/span traces are comparable across builds; what changes is
// the real instruction count per access.

// ReadFast loads payload word i of o with no read barrier.
func (t *Task) ReadFast(o mem.Ref, i int) mem.Value {
	t.workAcc += costAccess
	t.elidedLoads++
	return t.rt.space.Load(o, i)
}

// WriteFast stores v into payload word i of o with no write barrier.
func (t *Task) WriteFast(o mem.Ref, i int, v mem.Value) {
	t.workAcc += costAccess
	if t.cgcOn {
		t.cgcSafepoint()
		t.rt.ent.ShadeOverwritten(t.heap, o, i)
	}
	t.elidedStores++
	t.rt.space.Store(o, i, v)
}

// DerefFast reads a ref cell with no read barrier.
func (t *Task) DerefFast(cell mem.Ref) mem.Value { return t.ReadFast(cell, 0) }

// AssignFast writes a ref cell with no write barrier.
func (t *Task) AssignFast(cell mem.Ref, v mem.Value) { t.WriteFast(cell, 0, v) }

// allocFastOK reports whether a proven allocation may skip the guarded
// slow path entirely. Anything that wants a say at allocation time —
// budget-triggered LGC, the residency limit, the concurrent collector's
// safepoints, chaos injection — forces the managed path instead.
func (t *Task) allocFastOK() bool {
	return !t.cgcOn && t.rt.cfg.MaxHeapWords == 0 && !t.needGC()
}

// AllocRefFast allocates a ref cell for a statically-proven region:
// straight bump allocation, no GC guard.
func (t *Task) AllocRefFast(v mem.Value) mem.Ref {
	if !t.allocFastOK() {
		return t.AllocRef(v)
	}
	r := t.alloc.AllocRef(v)
	t.staticAllocs++
	t.bumpAlloc(2)
	return r
}

// AllocArrayFast allocates an array for a statically-proven region:
// straight bump allocation, no GC guard.
func (t *Task) AllocArrayFast(n int, v mem.Value) mem.Ref {
	if !t.allocFastOK() {
		return t.AllocArray(n, v)
	}
	r := t.alloc.AllocArray(n, v)
	t.staticAllocs++
	t.bumpAlloc(int64(n) + 1)
	return r
}

// CAS performs an atomic compare-and-swap on payload word i of o, through
// the write barrier. It returns whether the swap happened. This backs the
// concurrent data structures of the entangled benchmarks.
func (t *Task) CAS(o mem.Ref, i int, old, new mem.Value) bool {
	t.workAcc += costAccess
	if t.cgcOn {
		// SATB: shade what the swap may displace. Shading the current
		// value is conservative even if the CAS then fails.
		t.cgcSafepoint()
		t.rt.ent.ShadeOverwritten(t.heap, o, i)
	}
	if t.barriers && new.IsRef() {
		t.writeBarrier(o, i, new.Ref())
	}
	return t.rt.space.CAS(o, i, old, new)
}
