package core

import (
	"testing"

	"mplgo/internal/entangle"
	"mplgo/internal/mem"
)

// The access microbenchmarks price the barrier fast paths the T1 overhead
// table is made of: non-candidate reads (one fused load + bit test),
// same-heap writes (no heap resolution when holder and value share a
// chunk), CAS, and the entangled read slow path for contrast.

// benchTask runs body inside a fresh single-worker runtime so the
// benchmark loop executes on a real task with barriers enabled.
func benchTask(b *testing.B, cfg Config, body func(t *Task)) {
	b.Helper()
	rt := New(cfg)
	if _, err := rt.Run(func(t *Task) mem.Value {
		body(t)
		return mem.Nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkReadImmediate(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		arr := t.AllocArray(64, mem.Int(7))
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += t.Read(arr, i&63).AsInt()
		}
		_ = sink
	})
}

func BenchmarkReadRefNonCandidate(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		f := t.NewFrame(1)
		f.Set(0, t.AllocArray(64, mem.Nil).Value())
		for i := 0; i < 64; i++ {
			box := t.AllocTuple(mem.Int(int64(i)))
			t.Write(f.Ref(0), i, box.Value())
		}
		arr := f.Ref(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !t.Read(arr, i&63).IsRef() {
				b.Fatal("expected ref")
			}
		}
		b.StopTimer()
		f.Pop()
	})
}

func BenchmarkReadUnsafeMode(b *testing.B) {
	benchTask(b, Config{Procs: 1, Mode: entangle.Unsafe}, func(t *Task) {
		arr := t.AllocArray(64, mem.Int(7))
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += t.Read(arr, i&63).AsInt()
		}
		_ = sink
	})
}

func BenchmarkWriteImmediate(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		arr := t.AllocArray(64, mem.Int(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Write(arr, i&63, mem.Int(int64(i)))
		}
	})
}

func BenchmarkWriteRefSameHeap(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		f := t.NewFrame(2)
		f.Set(0, t.AllocArray(64, mem.Nil).Value())
		f.Set(1, t.AllocTuple(mem.Int(42)).Value())
		arr, box := f.Ref(0), f.Get(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Write(arr, i&63, box)
		}
		b.StopTimer()
		f.Pop()
	})
}

func BenchmarkCASImmediate(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		arr := t.AllocArray(1, mem.Int(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !t.CAS(arr, 0, mem.Int(int64(i)), mem.Int(int64(i+1))) {
				b.Fatal("CAS must succeed uncontended")
			}
		}
	})
}

// BenchmarkReadEntangledSlowPath prices the slow path: reads through a
// candidate holder of a concurrent object (pin + ancestry check per read).
func BenchmarkReadEntangledSlowPath(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		shared := t.AllocArray(1, mem.Nil)
		t.Par(
			func(l *Task) mem.Value {
				box := l.AllocTuple(mem.Int(99))
				l.Write(shared, 0, box.Value()) // down-pointer: shared becomes candidate
				return mem.Nil
			},
			func(r *Task) mem.Value {
				v := r.Read(shared, 0)
				if !v.IsRef() {
					b.Fatal("expected published ref")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.Read(shared, 0)
				}
				b.StopTimer()
				return mem.Nil
			},
		)
	})
}

// BenchmarkAllocTuple prices allocation including the amortized GC check.
func BenchmarkAllocTuple(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.AllocTuple(mem.Int(1), mem.Int(2))
		}
	})
}

// Unchecked twins of the benchmarks above: what a statically-proven
// disentangled site pays after barrier elision. Compare against
// BenchmarkReadImmediate / BenchmarkReadRefNonCandidate /
// BenchmarkWriteImmediate / BenchmarkWriteRefSameHeap.

func BenchmarkReadFast(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		arr := t.AllocArray(64, mem.Int(7))
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += t.ReadFast(arr, i&63).AsInt()
		}
		_ = sink
	})
}

func BenchmarkReadRefFast(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		f := t.NewFrame(1)
		f.Set(0, t.AllocArray(64, mem.Nil).Value())
		for i := 0; i < 64; i++ {
			box := t.AllocTuple(mem.Int(int64(i)))
			t.Write(f.Ref(0), i, box.Value())
		}
		arr := f.Ref(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !t.ReadFast(arr, i&63).IsRef() {
				b.Fatal("expected ref")
			}
		}
		b.StopTimer()
		f.Pop()
	})
}

func BenchmarkWriteFast(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		arr := t.AllocArray(64, mem.Int(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.WriteFast(arr, i&63, mem.Int(int64(i)))
		}
	})
}

func BenchmarkWriteRefFast(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		f := t.NewFrame(2)
		f.Set(0, t.AllocArray(64, mem.Nil).Value())
		f.Set(1, t.AllocTuple(mem.Int(42)).Value())
		arr, box := f.Ref(0), f.Get(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.WriteFast(arr, i&63, box)
		}
		b.StopTimer()
		f.Pop()
	})
}

// BenchmarkAllocRef / BenchmarkAllocRefFast price the guarded vs
// unguarded ref-cell allocation path.
func BenchmarkAllocRef(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.AllocRef(mem.Int(int64(i)))
		}
	})
}

func BenchmarkAllocRefFast(b *testing.B) {
	benchTask(b, Config{Procs: 1}, func(t *Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.AllocRefFast(mem.Int(int64(i)))
		}
	})
}
