package core

import (
	"errors"
	"testing"

	"mplgo/internal/entangle"
	"mplgo/internal/mem"
	"mplgo/internal/sim"
)

func run1(t *testing.T, cfg Config, f func(*Task) mem.Value) mem.Value {
	t.Helper()
	rt := New(cfg)
	v, err := rt.Run(f)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

func TestRunTrivial(t *testing.T) {
	v := run1(t, Config{}, func(tk *Task) mem.Value { return mem.Int(7) })
	if v.AsInt() != 7 {
		t.Fatalf("got %v", v)
	}
}

func TestAllocReadWrite(t *testing.T) {
	run1(t, Config{}, func(tk *Task) mem.Value {
		tup := tk.AllocTuple(mem.Int(1), mem.Int(2))
		if tk.Read(tup, 0).AsInt() != 1 || tk.Read(tup, 1).AsInt() != 2 {
			t.Error("tuple fields wrong")
		}
		arr := tk.AllocArray(3, mem.Int(0))
		tk.Write(arr, 2, mem.Int(9))
		if tk.Read(arr, 2).AsInt() != 9 || tk.Read(arr, 0).AsInt() != 0 {
			t.Error("array access wrong")
		}
		cell := tk.AllocRef(tup.Value())
		if tk.Deref(cell).Ref() != tup {
			t.Error("ref cell wrong")
		}
		tk.Assign(cell, mem.Int(5))
		if tk.Deref(cell).AsInt() != 5 {
			t.Error("assign failed")
		}
		if tk.Length(arr) != 3 || tk.Length(tup) != 2 {
			t.Error("Length wrong")
		}
		s := tk.AllocString("hello")
		if tk.StringOf(s) != "hello" {
			t.Error("string roundtrip failed")
		}
		return mem.Nil
	})
}

func fib(tk *Task, n int64) int64 {
	if n < 2 {
		tk.Work(1)
		return n
	}
	a, b := tk.Par(
		func(tk *Task) mem.Value { return mem.Int(fib(tk, n-1)) },
		func(tk *Task) mem.Value { return mem.Int(fib(tk, n-2)) },
	)
	return a.AsInt() + b.AsInt()
}

func TestParFib(t *testing.T) {
	for _, cfg := range []Config{
		{Procs: 1},
		{Procs: 4},
		{Procs: 1, LazyHeaps: true},
		{Procs: 4, LazyHeaps: true},
		{Procs: 2, Mode: entangle.Unsafe},
	} {
		v := run1(t, cfg, func(tk *Task) mem.Value { return mem.Int(fib(tk, 15)) })
		if v.AsInt() != 610 {
			t.Fatalf("cfg %+v: fib(15) = %d", cfg, v.AsInt())
		}
	}
}

func TestLazyHeapsSequentialCreatesNoHeaps(t *testing.T) {
	rt := New(Config{Procs: 1, LazyHeaps: true})
	_, err := rt.Run(func(tk *Task) mem.Value { return mem.Int(fib(tk, 10)) })
	if err != nil {
		t.Fatal(err)
	}
	if rt.Tree().Count() != 1 {
		t.Fatalf("lazy P=1 created %d heaps, want 1", rt.Tree().Count())
	}
}

func TestForceHeapsCreatesHeaps(t *testing.T) {
	rt := New(Config{Procs: 1})
	_, err := rt.Run(func(tk *Task) mem.Value { return mem.Int(fib(tk, 10)) })
	if err != nil {
		t.Fatal(err)
	}
	if rt.Tree().Count() < 10 {
		t.Fatalf("fork-time heaps missing: %d", rt.Tree().Count())
	}
}

func TestParFor(t *testing.T) {
	run1(t, Config{Procs: 4}, func(tk *Task) mem.Value {
		arr := tk.AllocArray(1000, mem.Int(0))
		f := tk.NewFrame(1)
		f.Set(0, arr.Value())
		tk.ParFor(0, 1000, 16, func(tk *Task, lo, hi int) {
			for i := lo; i < hi; i++ {
				tk.Write(f.Ref(0), i, mem.Int(int64(i*i)))
			}
		})
		a := f.Ref(0)
		for i := 0; i < 1000; i++ {
			if tk.Read(a, i).AsInt() != int64(i*i) {
				t.Fatalf("slot %d wrong", i)
			}
		}
		f.Pop()
		return mem.Nil
	})
}

func TestGCWithFrames(t *testing.T) {
	// A tiny budget forces many collections while a list is built; the
	// frame keeps the head alive and updated.
	rt := New(Config{Procs: 1, HeapBudgetWords: 512})
	_, err := rt.Run(func(tk *Task) mem.Value {
		f := tk.NewFrame(1)
		const n = 2000
		for i := 0; i < n; i++ {
			head := tk.AllocTuple(mem.Int(int64(i)), f.Get(0))
			f.Set(0, head.Value())
			// garbage
			tk.AllocArray(16, mem.Int(1))
		}
		// Verify the list.
		cur := f.Get(0)
		for i := n - 1; i >= 0; i-- {
			if got := tk.Read(cur.Ref(), 0).AsInt(); got != int64(i) {
				t.Fatalf("list[%d] = %d after GCs", i, got)
			}
			cur = tk.Read(cur.Ref(), 1)
		}
		if !cur.IsNil() {
			t.Fatal("list tail not nil")
		}
		f.Pop()
		return mem.Nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c, _, _ := rt.GCStats(); c == 0 {
		t.Fatal("expected collections with a 512-word budget")
	}
}

func TestEntanglementEndToEnd(t *testing.T) {
	rt := New(Config{Procs: 1}) // deterministic: left runs before right
	v, err := rt.Run(func(tk *Task) mem.Value {
		shared := tk.AllocArray(1, mem.Nil)
		_, rv := tk.Par(
			func(l *Task) mem.Value {
				x := l.AllocTuple(mem.Int(42))
				l.Write(shared, 0, x.Value()) // down-pointer into l's heap
				return mem.Nil
			},
			func(r *Task) mem.Value {
				v := r.Read(shared, 0) // entangled read of l's object
				if !v.IsRef() {
					t.Error("right did not see left's write")
					return mem.Nil
				}
				return r.Read(v.Ref(), 0) // read through the entangled object
			},
		)
		return rv
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 42 {
		t.Fatalf("entangled read returned %v", v)
	}
	s := rt.EntStats()
	if s.EntangledReads < 1 || s.Pins < 1 || s.DownPointers < 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Unpins < 1 {
		t.Fatalf("join did not unpin: %+v", s)
	}
	if rt.ent.Stats.PinnedNow() != 0 {
		t.Fatal("pins outlive all joins")
	}
}

func TestEntanglementSurvivesOwnerGC(t *testing.T) {
	// Left writes a down-pointer, then allocates enough garbage to force
	// collections of its own heap; the remembered set must keep the target
	// alive and the holder field updated, so right still reads 42.
	rt := New(Config{Procs: 1, HeapBudgetWords: 256})
	v, err := rt.Run(func(tk *Task) mem.Value {
		shared := tk.AllocArray(1, mem.Nil)
		_, rv := tk.Par(
			func(l *Task) mem.Value {
				x := l.AllocTuple(mem.Int(42))
				l.Write(shared, 0, x.Value())
				for i := 0; i < 200; i++ {
					l.AllocArray(32, mem.Int(0)) // force GCs
				}
				return mem.Nil
			},
			func(r *Task) mem.Value {
				v := r.Read(shared, 0)
				if !v.IsRef() {
					t.Error("lost the down-pointer")
					return mem.Nil
				}
				return r.Read(v.Ref(), 0)
			},
		)
		return rv
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 42 {
		t.Fatalf("read %v after owner GCs", v)
	}
	if c, _, _ := rt.GCStats(); c == 0 {
		t.Fatal("expected collections")
	}
}

func TestDetectModeReportsEntanglement(t *testing.T) {
	rt := New(Config{Procs: 1, Mode: entangle.Detect})
	_, err := rt.Run(func(tk *Task) mem.Value {
		shared := tk.AllocArray(1, mem.Nil)
		tk.Par(
			func(l *Task) mem.Value {
				l.Write(shared, 0, l.AllocTuple(mem.Int(1)).Value())
				return mem.Nil
			},
			func(r *Task) mem.Value { return r.Read(shared, 0) },
		)
		return mem.Nil
	})
	if !errors.Is(err, entangle.ErrEntangled) {
		t.Fatalf("err = %v, want ErrEntangled", err)
	}
}

func TestDetectModeCleanProgram(t *testing.T) {
	rt := New(Config{Procs: 2, Mode: entangle.Detect})
	v, err := rt.Run(func(tk *Task) mem.Value { return mem.Int(fib(tk, 12)) })
	if err != nil {
		t.Fatalf("disentangled program reported entanglement: %v", err)
	}
	if v.AsInt() != 144 {
		t.Fatal("wrong result")
	}
}

func TestCAS(t *testing.T) {
	run1(t, Config{}, func(tk *Task) mem.Value {
		cell := tk.AllocRef(mem.Int(1))
		if !tk.CAS(cell, 0, mem.Int(1), mem.Int(2)) {
			t.Error("CAS with correct old must succeed")
		}
		if tk.CAS(cell, 0, mem.Int(1), mem.Int(3)) {
			t.Error("CAS with stale old must fail")
		}
		if tk.Deref(cell).AsInt() != 2 {
			t.Error("CAS result wrong")
		}
		return mem.Nil
	})
}

func TestRecordingAndReplay(t *testing.T) {
	rt := New(Config{Procs: 1, Record: true})
	_, err := rt.Run(func(tk *Task) mem.Value { return mem.Int(fib(tk, 14)) })
	if err != nil {
		t.Fatal(err)
	}
	trace := rt.Trace()
	if trace == nil {
		t.Fatal("no trace recorded")
	}
	w, s := trace.WorkSpan()
	if w <= 0 || s <= 0 || s > w {
		t.Fatalf("W=%d S=%d", w, s)
	}
	if trace.CountForks() == 0 {
		t.Fatal("no forks recorded")
	}
	t1 := sim.Replay(trace, sim.ReplayConfig{P: 1, StealCost: 10}).Makespan
	t8 := sim.Replay(trace, sim.ReplayConfig{P: 8, StealCost: 10}).Makespan
	if t1 != w {
		t.Fatalf("T1=%d != W=%d", t1, w)
	}
	if float64(t1)/float64(t8) < 3 {
		t.Fatalf("fib trace should speed up: T1=%d T8=%d", t1, t8)
	}
}

func TestFrameDiscipline(t *testing.T) {
	run1(t, Config{}, func(tk *Task) mem.Value {
		f1 := tk.NewFrame(1)
		f2 := tk.NewFrame(2)
		f2.Pop()
		f1.Pop()

		f := tk.NewFrame(1)
		defer func() {
			if recover() == nil {
				t.Error("non-LIFO pop must panic")
			}
		}()
		_ = tk.NewFrame(1) // left unpopped
		f.Pop()            // out of order
		return mem.Nil
	})
}

func TestFrameBounds(t *testing.T) {
	run1(t, Config{}, func(tk *Task) mem.Value {
		f := tk.NewFrame(1)
		defer f.Pop()
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Set must panic")
			}
		}()
		f.Set(1, mem.Nil)
		return mem.Nil
	})
}

func TestStressParallelWithEffects(t *testing.T) {
	// Many tasks hammer a shared concurrent counter array (entangled
	// reads and writes) while also allocating; exercises barriers, GC and
	// pinning under real parallelism.
	rt := New(Config{Procs: 4, HeapBudgetWords: 4096})
	v, err := rt.Run(func(tk *Task) mem.Value {
		counters := tk.AllocArray(8, mem.Int(0))
		tk.ParFor(0, 64, 1, func(tk *Task, lo, hi int) {
			for i := lo; i < hi; i++ {
				slot := i % 8
				for {
					old := tk.Read(counters, slot)
					if tk.CAS(counters, slot, old, mem.Int(old.AsInt()+1)) {
						break
					}
				}
				tk.AllocArray(64, mem.Int(int64(i))) // allocation pressure
			}
		})
		var sum int64
		for i := 0; i < 8; i++ {
			sum += tk.Read(counters, i).AsInt()
		}
		return mem.Int(sum)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 64 {
		t.Fatalf("lost updates: sum = %d, want 64", v.AsInt())
	}
}
