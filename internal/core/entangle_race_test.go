package core

import (
	"fmt"
	"testing"

	"mplgo/internal/mem"
)

// TestRacePinVsCollect hammers the central race the lock-free entanglement
// protocol must win: concurrent entangled reads pinning objects of a heap
// that is being locally collected at the same time.
//
// One branch (the writer) repeatedly publishes fresh boxes through a
// shared root-heap array — down-pointer writes — and churns enough garbage
// to push its heap over a tiny budget, forcing a local collection on
// nearly every iteration that wants to move exactly the boxes the other
// side is acquiring. N sibling branches hammer entangled reads through the
// shared array, pinning those boxes via the header CAS while the writer's
// collections copy, forward, and release chunks around them. Until the
// final join, the writer's heap stays concurrent with every reader, so
// every successful read of a box is an entangled read.
//
// Run under -race; several worker counts cover the uncontended,
// lightly-contended, and oversubscribed regimes.
func TestRacePinVsCollect(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("%d-readers", workers), func(t *testing.T) {
			rt := New(Config{Procs: workers + 1, HeapBudgetWords: 512})
			const (
				slots  = 8
				writes = 300
			)
			_, err := rt.Run(func(tk *Task) mem.Value {
				f := tk.NewFrame(1)
				f.Set(0, tk.AllocArray(slots, mem.Nil).Value())
				holder := f.Ref(0)

				writer := func(t *Task) mem.Value {
					for i := 0; i < writes; i++ {
						box := t.AllocTuple(mem.Int(int64(i)))
						t.Write(holder, i%slots, box.Value())
						// Garbage churn: drive this heap over its budget so
						// an LGC runs while readers pin our boxes.
						t.AllocArray(96, mem.Int(int64(i)))
					}
					return mem.Int(0)
				}
				reader := func(t *Task) mem.Value {
					// Keep reading until enough entangled reads landed; the
					// writer runs concurrently until the final join, so
					// every box acquired here lives in a concurrent heap.
					var ok int64
					for i := 0; ok < 64 && i < 1_000_000; i++ {
						v := t.Read(holder, i%slots)
						if v.IsRef() && t.Read(v.Ref(), 0).AsInt() >= 0 {
							ok++
						}
					}
					return mem.Int(ok)
				}

				var fan func(t *Task, n int) int64
				fan = func(t *Task, n int) int64 {
					if n == 1 {
						return reader(t).AsInt()
					}
					a, b := t.Par(
						func(t *Task) mem.Value { return mem.Int(fan(t, n/2)) },
						func(t *Task) mem.Value { return mem.Int(fan(t, n-n/2)) },
					)
					return a.AsInt() + b.AsInt()
				}

				_, got := tk.Par(writer,
					func(t *Task) mem.Value { return mem.Int(fan(t, workers)) })
				if err := tk.ValidateHeaps(); err != nil {
					panic(err)
				}
				f.Pop()
				return got
			})
			if err != nil {
				t.Fatal(err)
			}
			s := rt.EntStats()
			if s.EntangledReads == 0 {
				t.Fatal("stress produced no entangled reads")
			}
			if s.Pins != s.Unpins {
				t.Fatalf("pins %d != unpins %d after all joins", s.Pins, s.Unpins)
			}
			if got := rt.ent.Stats.PinnedNow(); got != 0 {
				t.Fatalf("%d objects still pinned after all joins", got)
			}
			cols, _, _ := rt.GCStats()
			if cols == 0 {
				t.Fatal("stress forced no collections — budget too large?")
			}
		})
	}
}
