package core

import (
	"errors"
	"fmt"
	"testing"

	"mplgo/internal/mem"
	"mplgo/internal/workload"
)

// The failure-model tests: panics in Par branches, cooperative
// cancellation, and heap-limit backpressure must all surface as errors from
// Run with the pool drained and the heap hierarchy consistent — never as a
// crashed process or a hung join.

// panickyProgram builds a fork tree of the given depth whose leaves do
// entangled publication/reads through a shared array and churn enough
// garbage to force local collections; a deterministic subset of branches
// (chosen by seed, at varying depths) panics mid-work.
func panickyProgram(seed uint64, depth int, panicRate int) func(t *Task) mem.Value {
	return func(t *Task) mem.Value {
		f := t.NewFrame(1)
		f.Set(0, t.AllocArray(64, mem.Nil).Value())

		var rec func(t *Task, seed uint64, depth int) int64
		rec = func(t *Task, seed uint64, depth int) int64 {
			rng := workload.NewRNG(seed)
			// Panic at a random interior or leaf node: after some real
			// work, so collections and pins are in flight when we unwind.
			boom := panicRate > 0 && rng.Intn(panicRate) == 0
			if depth == 0 {
				var sum int64
				slot := rng.Intn(64)
				box := t.AllocTuple(mem.Int(int64(rng.Intn(100))))
				t.CAS(f.Ref(0), slot, mem.Nil, box.Value())
				v := t.Read(f.Ref(0), slot)
				if v.IsRef() && t.Read(v.Ref(), 0).AsInt() >= 0 {
					sum++
				}
				// Garbage churn to trigger LGCs under a tiny budget.
				t.AllocArray(64, mem.Int(sum))
				if boom {
					panic(fmt.Sprintf("injected leaf panic (seed %d)", seed))
				}
				return sum
			}
			if boom {
				panic(fmt.Sprintf("injected interior panic (seed %d depth %d)", seed, depth))
			}
			a, b := t.Par(
				func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+1, depth-1)) },
				func(t *Task) mem.Value { return mem.Int(rec(t, seed*31+2, depth-1)) },
			)
			return a.AsInt() + b.AsInt()
		}
		sum := rec(t, seed, depth)
		f.Pop()
		return mem.Int(sum)
	}
}

// TestPanicInParReturnsError is the core contract: a panicking branch does
// not hang the join or kill the process; Run returns a *PanicError.
func TestPanicInParReturnsError(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		for _, procs := range []int{1, 4} {
			t.Run(fmt.Sprintf("procs=%d,lazy=%v", procs, lazy), func(t *testing.T) {
				rt := New(Config{Procs: procs, LazyHeaps: lazy})
				_, err := rt.Run(func(tk *Task) mem.Value {
					a, _ := tk.Par(
						func(t *Task) mem.Value { return mem.Int(1) },
						func(t *Task) mem.Value { panic("boom") },
					)
					return a
				})
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("Run error = %v, want *PanicError", err)
				}
				if pe.Value != "boom" {
					t.Fatalf("recovered value = %v, want \"boom\"", pe.Value)
				}
				if !rt.Cancelled() {
					t.Fatal("runtime not cancelled after branch panic")
				}
			})
		}
	}
}

// TestPanicStressUnderRace drives random fork trees where branches panic at
// random depths while sibling branches do entangled reads and forced LGCs.
// For every seed and configuration: Run must return (error or not — some
// seeds never hit a panicking branch), the pool must have drained (Run
// returning at all proves the joins resolved), and the strict quiescent
// invariant audit must pass on whatever heap state the unwind left behind.
// Run under -race.
func TestPanicStressUnderRace(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		for _, cfg := range []Config{
			{Procs: 1, HeapBudgetWords: 512},
			{Procs: 4, HeapBudgetWords: 1024},
			{Procs: 8, HeapBudgetWords: 512},
			{Procs: 4, HeapBudgetWords: 1024, LazyHeaps: true},
		} {
			rt := New(cfg)
			_, err := rt.Run(panickyProgram(seed, 7, 10))
			if err != nil {
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("seed %d %+v: non-panic error %v", seed, cfg, err)
				}
				if !rt.Cancelled() {
					t.Fatalf("seed %d %+v: error returned but runtime not cancelled", seed, cfg)
				}
			}
			if ierr := rt.CheckInvariants(); ierr != nil {
				t.Fatalf("seed %d %+v: invariants after unwind: %v", seed, cfg, ierr)
			}
		}
	}
}

// TestCancelUnwinds: Cancel from a branch makes the whole fork tree unwind
// cooperatively and Run report ErrCancelled.
func TestCancelUnwinds(t *testing.T) {
	rt := New(Config{Procs: 4, HeapBudgetWords: 512})
	var after int64
	_, err := rt.Run(func(tk *Task) mem.Value {
		tk.ParFor(0, 1<<16, 16, func(t *Task, lo, hi int) {
			if lo >= 1<<12 && !t.rt.cancelled.Load() {
				t.Runtime().Cancel()
			}
			if t.rt.cancelled.Load() {
				return
			}
			after++ // not a data point, just keeps the body non-trivial
			t.AllocArray(16, mem.Int(int64(lo)))
		})
		return mem.Nil
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run error = %v, want ErrCancelled", err)
	}
	if ierr := rt.CheckInvariants(); ierr != nil {
		t.Fatalf("invariants after cancel: %v", ierr)
	}
}

// TestCancelFromOutside: cancellation from a goroutine outside the pool
// (the supported external-abort path) also unwinds and reports.
func TestCancelFromOutside(t *testing.T) {
	rt := New(Config{Procs: 2, HeapBudgetWords: 1024})
	started := make(chan struct{})
	go func() {
		<-started
		rt.Cancel()
	}()
	_, err := rt.Run(func(tk *Task) mem.Value {
		close(started)
		// Loop until the cancellation point at Par observes the flag.
		for i := 0; ; i++ {
			if tk.rt.cancelled.Load() {
				return mem.Nil
			}
			tk.Par(
				func(t *Task) mem.Value { return t.AllocTuple(mem.Int(int64(i))).Value() },
				func(t *Task) mem.Value { return mem.Nil },
			)
		}
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run error = %v, want ErrCancelled", err)
	}
}

// TestHeapLimitBackpressure: a program that retains everything it
// allocates must be stopped by MaxHeapWords with ErrHeapLimit — after a
// forced collection proved the residency is real, not garbage.
func TestHeapLimitBackpressure(t *testing.T) {
	rt := New(Config{Procs: 1, HeapBudgetWords: 512, MaxHeapWords: 1 << 14})
	_, err := rt.Run(func(tk *Task) mem.Value {
		f := tk.NewFrame(1)
		defer f.Pop()
		// Build an ever-growing live list; every node is reachable from the
		// frame, so collections cannot reclaim it.
		for i := 0; i < 1<<20; i++ {
			if tk.rt.cancelled.Load() {
				break
			}
			f.Set(0, tk.AllocTuple(mem.Int(int64(i)), f.Get(0)).Value())
		}
		return mem.Nil
	})
	if !errors.Is(err, ErrHeapLimit) {
		t.Fatalf("Run error = %v, want ErrHeapLimit", err)
	}
}

// TestHeapLimitNotTrippedByGarbage: the same limit must NOT fire on a
// program whose residency stays low even though its total allocation is far
// above the limit — the forced collection gets back under and the run
// completes.
func TestHeapLimitNotTrippedByGarbage(t *testing.T) {
	rt := New(Config{Procs: 1, HeapBudgetWords: 512, MaxHeapWords: 1 << 16})
	_, err := rt.Run(func(tk *Task) mem.Value {
		for i := 0; i < 20000; i++ { // ~1M words of pure garbage
			tk.AllocArray(50, mem.Int(int64(i)))
		}
		return mem.Nil
	})
	if err != nil {
		t.Fatalf("garbage-only program hit the heap limit: %v", err)
	}
}
