package mem

import "sync/atomic"

// pinCtr is an atomic counter padded to its own cache line: the pin CAS
// runs on every worker's barrier slow path at once, and an unpadded
// array of outcomes would false-share one line across all of them.
type pinCtr struct {
	atomic.Int64
	_ [56]byte
}

// PinCASStats counts object-header pin-CAS outcomes, the companion to
// the cycle-level attribution windows in internal/attr: attr answers
// "how long does the pin CAS cost", this answers "why" (how often it
// retried, hit a BUSY copier, or chased a forward). The pointer on
// Space is nil except in attributed runs, so PinHeader pays one pointer
// test when profiling is off — the same discipline as Space.Chaos.
type PinCASStats struct {
	Attempts     pinCtr // PinHeader calls
	Retries      pinCtr // CAS failures that looped (lost to a racing pin/unpin)
	Busy         pinCtr // refused: collector held the object BUSY mid-copy
	Forwarded    pinCtr // refused: object relocated, caller must chase
	New          pinCtr // successful PLAIN → PINNED transitions
	DepthLowered pinCtr // already pinned, unpin depth lowered
	Already      pinCtr // already pinned at least as deep; header untouched
}

// PinCASSnapshot is a plain copy of PinCASStats for reports.
type PinCASSnapshot struct {
	Attempts     int64 `json:"attempts"`
	Retries      int64 `json:"retries"`
	Busy         int64 `json:"busy"`
	Forwarded    int64 `json:"forwarded"`
	New          int64 `json:"new"`
	DepthLowered int64 `json:"depth_lowered"`
	Already      int64 `json:"already"`
}

// Snapshot returns a point-in-time copy; nil-safe (zero snapshot).
func (ps *PinCASStats) Snapshot() PinCASSnapshot {
	if ps == nil {
		return PinCASSnapshot{}
	}
	return PinCASSnapshot{
		Attempts:     ps.Attempts.Load(),
		Retries:      ps.Retries.Load(),
		Busy:         ps.Busy.Load(),
		Forwarded:    ps.Forwarded.Load(),
		New:          ps.New.Load(),
		DepthLowered: ps.DepthLowered.Load(),
		Already:      ps.Already.Load(),
	}
}
