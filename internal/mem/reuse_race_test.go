package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestChunkReuseRaceStress guards the chunk release/reacquire handoff the
// concurrent sweep introduced: Space.Release pushes fully-dead chunks onto
// the shared free list while other heaps' allocators pop and scrub them in
// NewChunk, and the releasing heap's own allocator still holds the dead
// chunks in its reuse list until it revalidates. The test drives the full
// protocol from several heaps at once under -race (the CI race job covers
// this package), with reader goroutines following the system's actual
// discipline — object words are loaded only under the owning heap's gate,
// after re-validating chunk ownership, exactly like the entanglement slow
// path (entangle.OnRead); a per-heap RWMutex stands in for hierarchy.Gate,
// and the sweep/release section runs under the writer side like the real
// collector. Any plain store sneaking into scrub, Release, or SweepMarked's
// free-list threading, any free-list bookkeeping outside the space mutex,
// and any owner-side read of a released chunk's plain fields (the
// AddReusable/Revalidate ownership-check ordering) shows up as a race
// report. Values observed by the readers are deliberately not checked —
// stale readers re-validate and retry by contract, so only the memory
// ordering matters, which is what the detector verifies.
func TestChunkReuseRaceStress(t *testing.T) {
	sp := NewSpace()
	const (
		workers = 4
		iters   = 200
		batch   = 120 // tuples allocated per iteration before the sweep
	)

	type pub struct {
		r    Ref
		heap uint32
		dead *atomic.Bool // set by the owner, under its gate, at Release
	}
	refs := make(chan pub, 4096)             // refs published to the readers
	gates := make([]sync.RWMutex, workers+1) // stand-in reader gates, by heap id
	stop := make(chan struct{})
	var wg, readers sync.WaitGroup

	// Readers: hold published refs across sweeps and keep loading headers
	// and payload words — but only under the publishing heap's gate, and
	// only while the ref is still live, the entanglement slow path's
	// pin-then-validate discipline. The dead flag models the runtime's
	// root contract: a released chunk's refs are unreachable from every
	// frame by the time the sweep runs (the ragged handshake refuses to
	// let a cycle finish marking past an unscanned task), so no real
	// reader can carry one into a recycled chunk — heap-id validation
	// alone would not catch a chunk released and reacquired by the *same*
	// heap, whose bump allocator writes plainly. Refs in partially-dead
	// chunks stay readable: their words may concurrently become KFree
	// spans or get carved into new objects, which is exactly the stale
	// traffic SweepMarked and allocFromFree store atomically for.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var held []pub
			for {
				select {
				case <-stop:
					return
				case p := <-refs:
					held = append(held, p)
					if len(held) > 512 {
						held = held[len(held)-512:]
					}
				default:
					if len(held) == 0 {
						runtime.Gosched()
						continue
					}
					kept := held[:0]
					for _, p := range held {
						g := &gates[p.heap]
						g.RLock()
						if !p.dead.Load() && sp.HeapOf(p.r) == p.heap {
							h := sp.Header(p.r)
							_ = sp.Load(p.r, 0)
							_ = h
							kept = append(kept, p)
						}
						g.RUnlock()
					}
					held = kept
				}
			}
		}()
	}

	// Worker heaps: allocate a batch, mark a sparse subset live, then run
	// the collector's half of the protocol under the writer gate — install
	// bitmaps, sweep, release the fully dead chunks, buffer the partially
	// dead ones — then revalidate and keep carving from recycled spans,
	// racing every other worker's NewChunk over the shared free list.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			heap := uint32(w + 1)
			al := NewAllocator(sp, heap)
			// Published refs by chunk id, so releasing a chunk can revoke
			// them first — the root contract in miniature. Ids recycle
			// across heaps, but an entry is deleted at Release and only
			// repopulated by this worker's own allocations.
			pubsByChunk := map[uint32][]*atomic.Bool{}
			for it := 0; it < iters; it++ {
				var batchRefs []Ref
				for i := 0; i < batch; i++ {
					r := al.AllocTuple(Int(int64(it)), Int(int64(i)))
					batchRefs = append(batchRefs, r)
					d := new(atomic.Bool)
					pubsByChunk[r.Chunk()] = append(pubsByChunk[r.Chunk()], d)
					select {
					case refs <- pub{r, heap, d}:
					default:
					}
				}
				cs := al.Chunks
				al.Chunks = nil
				gates[heap].Lock()
				for ci, c := range cs {
					c.InstallMarks()
					if ci == 0 && it%3 != 0 {
						// Keep a sparse subset of the first chunk live so
						// the sweep threads a free list through it.
						for j, r := range batchRefs {
							if j%16 == 0 && sp.HeapOf(r) == heap && sp.chunk(r.Chunk()) == c {
								c.Mark(r.Off())
							}
						}
					}
					_, dead := sp.SweepMarked(c)
					c.DropMarks()
					if dead {
						for _, d := range pubsByChunk[c.ID] {
							d.Store(true)
						}
						delete(pubsByChunk, c.ID)
						sp.Release(c)
					} else {
						al.Chunks = append(al.Chunks, c)
						al.AddReusable(c)
					}
				}
				gates[heap].Unlock()
				// Owner side on resume: drop the bump chunk and reuse
				// entries the sweep released (their ids may already be
				// recycled into other heaps scrubbing them right now).
				al.Revalidate()
				// Yield before touching the space mutex again: the next
				// NewChunk would publish a happens-before edge that hides
				// an unsynchronized Revalidate read of a released chunk
				// from the detector. The window is exactly resume-time in
				// the real runtime, where the owner may not allocate for
				// a long while.
				for y := 0; y < 4; y++ {
					runtime.Gosched()
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	// The free list must never hold an owned chunk: Release disowns before
	// pushing, NewChunk owns after popping, both under the space mutex.
	sp.mu.Lock()
	for _, c := range sp.free {
		if c.HeapID() != 0 {
			t.Errorf("chunk %d on the free list still owned by heap %d", c.ID, c.HeapID())
		}
	}
	sp.mu.Unlock()
}
