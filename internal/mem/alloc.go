package mem

import "sync/atomic"

// Allocator is a per-task bump allocator into chunks owned by one heap of
// the hierarchy. Because each task allocates only into its own leaf heap,
// allocation requires no synchronization beyond acquiring fresh chunks from
// the space — the property that makes hierarchical memory management fast.
type Allocator struct {
	space *Space
	heap  uint32
	cur   *Chunk
	// Chunks lists every chunk this allocator obtained, in order; the
	// owning heap adopts them. The slice is read by the heap's collector
	// while the task is stopped, never concurrently with allocation.
	Chunks []*Chunk
	// AllocWords counts words allocated through this allocator.
	AllocWords int64
	// reuse lists chunks the concurrent sweep left with threaded free
	// spans (gc/cgc.go). They already belong to the heap — they are not
	// appended to Chunks — and new objects are carved out of their spans
	// before fresh chunks are requested.
	reuse []*Chunk
}

// NewAllocator creates an allocator feeding the given heap.
func NewAllocator(s *Space, heap uint32) *Allocator {
	return &Allocator{space: s, heap: heap}
}

// Heap returns the id of the heap this allocator feeds.
func (a *Allocator) Heap() uint32 { return a.heap }

// Retarget redirects the allocator to a different heap (at forks/joins).
// Previously obtained chunks stay with their original heap; the caller is
// responsible for having adopted them.
func (a *Allocator) Retarget(heap uint32) {
	a.heap = heap
	a.cur = nil
	a.Chunks = nil
	a.reuse = nil
}

// Alloc allocates an object with the given kind and payload length (words)
// and returns its reference. The payload is zeroed (all fields Nil).
// Objects always occupy at least one payload word so forwarding headers
// have room for the forwarding pointer.
func (a *Allocator) Alloc(k Kind, payloadWords int) Ref {
	n := payloadWords
	if n < 1 {
		n = 1
	}
	total := n + 1
	c := a.cur
	if c == nil || c.Alloc+total > len(c.Data) {
		if r, ok := a.allocFromFree(k, payloadWords, total); ok {
			return r
		}
		c = a.space.NewChunk(a.heap, total)
		a.cur = c
		a.Chunks = append(a.Chunks, c)
	}
	off := c.Alloc
	c.Alloc += total
	c.Data[off] = MakeHeader(k, payloadWords)
	a.AllocWords += int64(total)
	a.space.totalAlloc.Add(int64(total))
	return MakeRef(c.ID, off)
}

// AddReusable hands the allocator a chunk whose free list was threaded by
// the concurrent sweep. The chunk must already belong to this allocator's
// heap; chunks without free spans are ignored. A chunk re-swept across
// cycles can be handed back repeatedly, so entries are deduplicated — two
// entries would walk the same free list.
//
// The ownership test MUST come first: a buffered chunk a later sweep
// released may already be recycled into another heap, whose scrub writes
// the plain freeHead field concurrently. The atomic heap-id test
// short-circuits that case, and a positive result proves no release
// intervened (releases of this heap's chunks happen only while its owner
// is parked), making the freeHead read single-owner again.
func (a *Allocator) AddReusable(c *Chunk) {
	if c.HeapID() != a.heap || c.freeHead == 0 {
		return
	}
	for _, e := range a.reuse {
		if e == c {
			return
		}
	}
	a.reuse = append(a.reuse, c)
}

// Revalidate drops allocation targets a concurrent sweep may have
// invalidated: the current bump chunk, if released back to the space (it
// was fully dead), and reuse entries released or exhausted. Called by the
// owner on resume from a join, before any allocation — while the owner was
// parked the sweep was free to release any of its heap's chunks, and a
// released chunk's id may already be recycled into another heap. At the
// resume point a released chunk can never carry this heap's id again (the
// only path back is a merge this owner has not run yet), so the ownership
// test is exact.
func (a *Allocator) Revalidate() {
	if a.cur != nil && a.cur.HeapID() != a.heap {
		a.cur = nil
	}
	kept := a.reuse[:0]
	for _, c := range a.reuse {
		// Ownership first, for the same reason as AddReusable: a released
		// entry's freeHead may be getting scrubbed by its next owner.
		if c.HeapID() == a.heap && c.freeHead != 0 {
			kept = append(kept, c)
		}
	}
	a.reuse = kept
}

// allocFromFree serves an allocation from swept free spans, first fit. A
// span is used only when it matches exactly or leaves a remainder of at
// least two words (header + link), so header lengths always describe real
// payloads — padding would corrupt the dense chunk walk. Object header and
// payload are written atomically: stale readers retrying an entanglement
// validation may still load these words.
func (a *Allocator) allocFromFree(k Kind, payloadWords, total int) (Ref, bool) {
	for ci := 0; ci < len(a.reuse); ci++ {
		c := a.reuse[ci]
		prev := 0 // 0 = list head, else 1 + offset of predecessor span
		for cur := c.freeHead; cur != 0; {
			off := cur - 1
			spanLen := Header(atomic.LoadUint64(&c.Data[off])).Len()
			spanTotal := 1 + spanLen
			next := int(atomic.LoadUint64(&c.Data[off+1]))
			rest := spanTotal - total
			if rest != 0 && rest < 2 {
				prev, cur = cur, next
				continue
			}
			link := next
			if rest != 0 {
				// Split: the tail keeps the span's place in the list.
				tail := off + total
				atomic.StoreUint64(&c.Data[tail+1], uint64(next))
				atomic.StoreUint64(&c.Data[tail], MakeHeader(KFree, rest-1))
				link = tail + 1
			}
			if prev == 0 {
				c.freeHead = link
			} else {
				atomic.StoreUint64(&c.Data[prev], uint64(link))
			}
			c.freeWords -= total
			n := total - 1
			for w := off + 1; w < off+1+n; w++ {
				atomic.StoreUint64(&c.Data[w], 0)
			}
			atomic.StoreUint64(&c.Data[off], MakeHeader(k, payloadWords))
			a.AllocWords += int64(total)
			a.space.totalAlloc.Add(int64(total))
			if c.freeHead == 0 {
				a.reuse[ci] = a.reuse[len(a.reuse)-1]
				a.reuse = a.reuse[:len(a.reuse)-1]
			}
			return MakeRef(c.ID, off), true
		}
	}
	return Ref(0), false
}

// AllocTuple allocates an immutable tuple initialized with vs.
func (a *Allocator) AllocTuple(vs ...Value) Ref {
	r := a.Alloc(KTuple, len(vs))
	c := a.space.chunk(r.Chunk())
	base := r.Off() + 1
	for i, v := range vs {
		c.Data[base+i] = uint64(v)
	}
	return r
}

// AllocArray allocates a mutable array of n slots, each initialized to v.
func (a *Allocator) AllocArray(n int, v Value) Ref {
	r := a.Alloc(KArray, n)
	if v != 0 {
		c := a.space.chunk(r.Chunk())
		base := r.Off() + 1
		for i := 0; i < n; i++ {
			c.Data[base+i] = uint64(v)
		}
	}
	return r
}

// AllocRef allocates a mutable ref cell holding v.
func (a *Allocator) AllocRef(v Value) Ref {
	r := a.Alloc(KRefCell, 1)
	a.space.chunk(r.Chunk()).Data[r.Off()+1] = uint64(v)
	return r
}

// AllocString allocates an immutable raw object holding the bytes of str,
// packed 8 per word, preceded by one word recording the byte length.
func (a *Allocator) AllocString(str string) Ref {
	words := 1 + (len(str)+7)/8
	r := a.Alloc(KRaw, words)
	c := a.space.chunk(r.Chunk())
	base := r.Off() + 1
	c.Data[base] = uint64(len(str))
	for i := 0; i < len(str); i++ {
		c.Data[base+1+i/8] |= uint64(str[i]) << (8 * (i % 8))
	}
	return r
}

// LoadString decodes a raw object written by AllocString.
func (s *Space) LoadString(r Ref) string {
	c := s.chunk(r.Chunk())
	base := r.Off() + 1
	n := int(c.Data[base])
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = byte(c.Data[base+1+i/8] >> (8 * (i % 8)))
	}
	return string(b)
}
