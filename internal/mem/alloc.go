package mem

// Allocator is a per-task bump allocator into chunks owned by one heap of
// the hierarchy. Because each task allocates only into its own leaf heap,
// allocation requires no synchronization beyond acquiring fresh chunks from
// the space — the property that makes hierarchical memory management fast.
type Allocator struct {
	space *Space
	heap  uint32
	cur   *Chunk
	// Chunks lists every chunk this allocator obtained, in order; the
	// owning heap adopts them. The slice is read by the heap's collector
	// while the task is stopped, never concurrently with allocation.
	Chunks []*Chunk
	// AllocWords counts words allocated through this allocator.
	AllocWords int64
}

// NewAllocator creates an allocator feeding the given heap.
func NewAllocator(s *Space, heap uint32) *Allocator {
	return &Allocator{space: s, heap: heap}
}

// Heap returns the id of the heap this allocator feeds.
func (a *Allocator) Heap() uint32 { return a.heap }

// Retarget redirects the allocator to a different heap (at forks/joins).
// Previously obtained chunks stay with their original heap; the caller is
// responsible for having adopted them.
func (a *Allocator) Retarget(heap uint32) {
	a.heap = heap
	a.cur = nil
	a.Chunks = nil
}

// Alloc allocates an object with the given kind and payload length (words)
// and returns its reference. The payload is zeroed (all fields Nil).
// Objects always occupy at least one payload word so forwarding headers
// have room for the forwarding pointer.
func (a *Allocator) Alloc(k Kind, payloadWords int) Ref {
	n := payloadWords
	if n < 1 {
		n = 1
	}
	total := n + 1
	c := a.cur
	if c == nil || c.Alloc+total > len(c.Data) {
		c = a.space.NewChunk(a.heap, total)
		a.cur = c
		a.Chunks = append(a.Chunks, c)
	}
	off := c.Alloc
	c.Alloc += total
	c.Data[off] = MakeHeader(k, payloadWords)
	a.AllocWords += int64(total)
	a.space.totalAlloc.Add(int64(total))
	return MakeRef(c.ID, off)
}

// AllocTuple allocates an immutable tuple initialized with vs.
func (a *Allocator) AllocTuple(vs ...Value) Ref {
	r := a.Alloc(KTuple, len(vs))
	c := a.space.chunk(r.Chunk())
	base := r.Off() + 1
	for i, v := range vs {
		c.Data[base+i] = uint64(v)
	}
	return r
}

// AllocArray allocates a mutable array of n slots, each initialized to v.
func (a *Allocator) AllocArray(n int, v Value) Ref {
	r := a.Alloc(KArray, n)
	if v != 0 {
		c := a.space.chunk(r.Chunk())
		base := r.Off() + 1
		for i := 0; i < n; i++ {
			c.Data[base+i] = uint64(v)
		}
	}
	return r
}

// AllocRef allocates a mutable ref cell holding v.
func (a *Allocator) AllocRef(v Value) Ref {
	r := a.Alloc(KRefCell, 1)
	a.space.chunk(r.Chunk()).Data[r.Off()+1] = uint64(v)
	return r
}

// AllocString allocates an immutable raw object holding the bytes of str,
// packed 8 per word, preceded by one word recording the byte length.
func (a *Allocator) AllocString(str string) Ref {
	words := 1 + (len(str)+7)/8
	r := a.Alloc(KRaw, words)
	c := a.space.chunk(r.Chunk())
	base := r.Off() + 1
	c.Data[base] = uint64(len(str))
	for i := 0; i < len(str); i++ {
		c.Data[base+1+i/8] |= uint64(str[i]) << (8 * (i % 8))
	}
	return r
}

// LoadString decodes a raw object written by AllocString.
func (s *Space) LoadString(r Ref) string {
	c := s.chunk(r.Chunk())
	base := r.Off() + 1
	n := int(c.Data[base])
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = byte(c.Data[base+1+i/8] >> (8 * (i % 8)))
	}
	return string(b)
}
