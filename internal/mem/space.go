package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ChunkWords is the default chunk payload size in words (64 KiB).
const ChunkWords = 1 << 13

// Chunk table geometry: a fixed directory of lazily-created segments, so
// chunk lookup — on every Load/Store — is lock-free, while chunk creation
// never moves previously published entries.
const (
	segShift  = 12
	segSize   = 1 << segShift // chunks per segment
	dirSize   = 1 << 11       // segments
	maxChunks = dirSize * segSize
)

// Chunk is a contiguous arena of words owned by exactly one heap of the
// hierarchy at a time. Heap identity lives on the chunk — not on objects —
// so merging a child heap into its parent at a join touches only the chunk
// list, never individual objects (DESIGN.md decision 1).
type Chunk struct {
	ID   uint32
	Data []uint64
	// Alloc is the bump offset of the next free word. Only the owning
	// task mutates it.
	Alloc int
	// PinCount counts currently pinned objects residing in this chunk.
	// A chunk can only be released while it holds no pinned objects.
	PinCount int32

	heapID atomic.Uint32
}

// HeapID returns the id of the heap currently owning this chunk.
func (c *Chunk) HeapID() uint32 { return c.heapID.Load() }

// SetHeapID reassigns the chunk to another heap (used by joins/merges).
func (c *Chunk) SetHeapID(id uint32) { c.heapID.Store(id) }

// Words returns the chunk capacity in words.
func (c *Chunk) Words() int { return len(c.Data) }

type chunkSegment [segSize]*Chunk

// Space is the global store of chunks: a two-level table plus a free list.
// It tracks the residency statistics the space experiments report.
type Space struct {
	mu   sync.Mutex
	next uint32   // next chunk id to assign; id 0 is reserved
	free []*Chunk // released standard-size chunks available for reuse
	dir  [dirSize]atomic.Pointer[chunkSegment]

	liveWords    atomic.Int64 // words in live (allocated-to-heap) chunks
	maxLiveWords atomic.Int64 // high-water mark of liveWords
	totalAlloc   atomic.Int64 // cumulative words ever handed to allocators
}

// NewSpace creates an empty space.
func NewSpace() *Space {
	return &Space{next: 1} // chunk id 0 reserved
}

// NewChunk allocates a chunk of at least minWords payload owned by heap.
// Standard-size requests are served from the free list when possible.
func (s *Space) NewChunk(heap uint32, minWords int) *Chunk {
	words := ChunkWords
	if minWords > words {
		words = minWords
	}
	s.mu.Lock()
	var c *Chunk
	if words == ChunkWords && len(s.free) > 0 {
		c = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		clear(c.Data)
		c.Alloc = 0
		c.PinCount = 0
	} else {
		if s.next >= maxChunks {
			s.mu.Unlock()
			panic("mem: chunk table exhausted")
		}
		id := s.next
		s.next++
		c = &Chunk{ID: id, Data: make([]uint64, words)}
		seg := s.dir[id>>segShift].Load()
		if seg == nil {
			seg = new(chunkSegment)
			s.dir[id>>segShift].Store(seg)
		}
		seg[id&(segSize-1)] = c
	}
	s.mu.Unlock()
	c.SetHeapID(heap)
	live := s.liveWords.Add(int64(words))
	for {
		max := s.maxLiveWords.Load()
		if live <= max || s.maxLiveWords.CompareAndSwap(max, live) {
			break
		}
	}
	return c
}

// Release returns a chunk to the space. Standard-size chunks are recycled;
// oversize chunks are dropped (their backing arrays return to Go).
// Releasing a chunk holding pinned objects is a bug in the collector.
func (s *Space) Release(c *Chunk) {
	if atomic.LoadInt32(&c.PinCount) != 0 {
		panic(fmt.Sprintf("mem: releasing chunk %d with %d pinned objects", c.ID, c.PinCount))
	}
	s.liveWords.Add(int64(-len(c.Data)))
	c.SetHeapID(0)
	if len(c.Data) != ChunkWords {
		return
	}
	s.mu.Lock()
	s.free = append(s.free, c)
	s.mu.Unlock()
}

// chunk returns the chunk with the given index. Lock-free.
func (s *Space) chunk(idx uint32) *Chunk {
	return s.dir[idx>>segShift].Load()[idx&(segSize-1)]
}

// ChunkByID exposes chunk lookup to the collectors.
func (s *Space) ChunkByID(idx uint32) *Chunk { return s.chunk(idx) }

// LiveWords returns the words currently held by live chunks.
func (s *Space) LiveWords() int64 { return s.liveWords.Load() }

// MaxLiveWords returns the high-water mark of LiveWords: the max residency
// statistic reported by the space experiments.
func (s *Space) MaxLiveWords() int64 { return s.maxLiveWords.Load() }

// TotalAllocWords returns the cumulative words handed out by allocators.
func (s *Space) TotalAllocWords() int64 { return s.totalAlloc.Load() }

// ResetMaxLive resets the residency high-water mark to current residency.
func (s *Space) ResetMaxLive() { s.maxLiveWords.Store(s.liveWords.Load()) }
