package mem

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mplgo/internal/chaos"
)

// ChunkWords is the default chunk payload size in words (64 KiB).
const ChunkWords = 1 << 13

// Chunk table geometry: a growable directory of lazily-created segments,
// so chunk lookup — on every Load/Store — is lock-free, while chunk
// creation never moves previously published entries (see Space).
const (
	segShift   = 12
	segSize    = 1 << segShift // chunks per segment
	initDirLen = 1 << 11       // segments the directory starts with
	initChunks = initDirLen * segSize
	// maxChunks is the absolute capacity: chunk ids are uint32 and must
	// round-trip through Ref's packed encoding. Exhausting it is a genuine
	// resource limit, surfaced as ErrChunkTableExhausted through the
	// runtime's cancellation path rather than a process abort.
	maxChunks = math.MaxUint32
)

// ErrChunkTableExhausted reports that every representable chunk id has been
// assigned. NewChunk panics with this error; the runtime's panic-safe
// fork–join recovers it and returns it from Run.
var ErrChunkTableExhausted = errors.New("mem: chunk table exhausted (2^32 chunk ids assigned)")

// Chunk is a contiguous arena of words owned by exactly one heap of the
// hierarchy at a time. Heap identity lives on the chunk — not on objects —
// so merging a child heap into its parent at a join touches only the chunk
// list, never individual objects (DESIGN.md decision 1).
type Chunk struct {
	ID   uint32
	Data []uint64
	// Alloc is the bump offset of the next free word. Only the owning
	// task mutates it.
	Alloc int
	// PinCount counts currently pinned objects residing in this chunk.
	// A chunk can only be released while it holds no pinned objects.
	PinCount int32

	heapID atomic.Uint32

	// marks is the side mark bitmap installed by a concurrent collection
	// cycle for its snapshot chunks and dropped when the cycle ends. The
	// pointer doubles as the mutator-visible "in CGC scope" test (one
	// atomic load in the SATB shade path); the bits themselves are only
	// ever touched by the single CGC worker, so they need no atomics.
	// The header mark bit (hdrMark) stays reserved for LGC's transient
	// pinned-trace marking — the strict invariant audit rejects leftovers,
	// which a concurrent cycle could not guarantee.
	marks atomic.Pointer[markBitmap]

	// freeHead is 1 + the word offset of the first KFree span threaded
	// through this chunk by the CGC sweep (0 = no free list), and
	// freeWords counts the words those spans cover. Mutated only by the
	// sweep (with the owner parked and the heap gate held) and by the
	// owning allocator after the chunk is handed back through the heap's
	// reuse buffer, so plain fields suffice: the handoff's atomics order
	// them.
	freeHead  int
	freeWords int
}

// HeapID returns the id of the heap currently owning this chunk.
func (c *Chunk) HeapID() uint32 { return c.heapID.Load() }

// SetHeapID reassigns the chunk to another heap (used by joins/merges).
func (c *Chunk) SetHeapID(id uint32) { c.heapID.Store(id) }

// Words returns the chunk capacity in words.
func (c *Chunk) Words() int { return len(c.Data) }

type chunkSegment [segSize]*Chunk

// Space is the global store of chunks: a two-level table plus a free list.
// It tracks the residency statistics the space experiments report.
//
// The chunk directory is a copy-install slice of segment pointers: grown
// by doubling under s.mu when the id space outruns it (the pre-hardening
// table aborted there), lock-free for readers, like hierarchy.Tree's heap
// spine. Readers racing a grow keep the old slice, which still resolves
// every previously published chunk. The lookup fast path is one atomic
// directory load, one segment load, and two indexes — cheap enough that
// Load/Store/CAS still inline into the barriers (see chunk).
type Space struct {
	mu   sync.Mutex
	next uint32   // next chunk id to assign; id 0 is reserved
	free []*Chunk // released standard-size chunks available for reuse
	dir  atomic.Pointer[[]atomic.Pointer[chunkSegment]]

	// Chaos is the optional fault injector (nil in release paths). The
	// HeaderCAS point lives in PinHeader.
	Chaos *chaos.Injector

	// PinStats, when non-nil, counts pin-CAS outcomes in PinHeader
	// (attributed runs only; see PinCASStats). Install before any task
	// runs; nil costs the pin path one pointer test.
	PinStats *PinCASStats

	liveWords    atomic.Int64 // words in live (allocated-to-heap) chunks
	maxLiveWords atomic.Int64 // high-water mark of liveWords
	totalAlloc   atomic.Int64 // cumulative words ever handed to allocators
}

// NewSpace creates an empty space.
func NewSpace() *Space {
	s := &Space{next: 1} // chunk id 0 reserved
	dir := make([]atomic.Pointer[chunkSegment], initDirLen)
	s.dir.Store(&dir)
	return s
}

// grow installs a doubled directory covering segment index bi. Caller
// holds s.mu. Readers racing the install keep using the old slice, which
// still resolves every previously published chunk.
func (s *Space) grow(bi int) {
	dir := *s.dir.Load()
	n := len(dir)
	for n <= bi {
		n *= 2
	}
	ndir := make([]atomic.Pointer[chunkSegment], n)
	for i := range dir {
		ndir[i].Store(dir[i].Load())
	}
	s.dir.Store(&ndir)
}

// segSlot returns the directory slot for segment bi, growing the
// directory if needed. Caller holds s.mu.
func (s *Space) segSlot(bi int) *atomic.Pointer[chunkSegment] {
	if bi >= len(*s.dir.Load()) {
		s.grow(bi)
	}
	return &(*s.dir.Load())[bi]
}

// NewChunk allocates a chunk of at least minWords payload owned by heap.
// Standard-size requests are served from the free list when possible.
func (s *Space) NewChunk(heap uint32, minWords int) *Chunk {
	words := ChunkWords
	if minWords > words {
		words = minWords
	}
	s.mu.Lock()
	var c *Chunk
	if words == ChunkWords && len(s.free) > 0 {
		c = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.scrub(c)
	} else {
		if s.next >= maxChunks {
			s.mu.Unlock()
			panic(ErrChunkTableExhausted)
		}
		id := s.next
		s.next++
		c = &Chunk{ID: id, Data: make([]uint64, words)}
		slot := s.segSlot(int(id >> segShift))
		seg := slot.Load()
		if seg == nil {
			seg = new(chunkSegment)
			slot.Store(seg)
		}
		seg[id&(segSize-1)] = c
	}
	s.mu.Unlock()
	c.SetHeapID(heap)
	live := s.liveWords.Add(int64(words))
	for {
		max := s.maxLiveWords.Load()
		if live <= max || s.maxLiveWords.CompareAndSwap(max, live) {
			break
		}
	}
	return c
}

// scrub prepares a recycled chunk for reuse. The data words are cleared
// with atomic stores, not clear(): a stale reader — an entanglement slow
// path that resolved a reference just before the collector released the
// chunk, or a concurrent-collection worker holding a stale grey — may
// still issue atomic loads against c.Data, and a plain memclr racing
// those loads is a genuine data race (the reader then re-validates and
// retries, so any value it sees is fine; the ordering is not). Words
// beyond c.Alloc are already zero: fresh chunks are zeroed by make, the
// bump allocator never writes past Alloc, and every scrub reestablishes
// the invariant. Caller holds s.mu.
func (s *Space) scrub(c *Chunk) {
	for i := 0; i < c.Alloc; i++ {
		atomic.StoreUint64(&c.Data[i], 0)
	}
	c.Alloc = 0
	atomic.StoreInt32(&c.PinCount, 0)
	c.marks.Store(nil)
	c.freeHead = 0
	c.freeWords = 0
}

// Release returns a chunk to the space. Standard-size chunks are recycled;
// oversize chunks are dropped (their backing arrays return to Go).
// Releasing a chunk holding pinned objects is a bug in the collector.
func (s *Space) Release(c *Chunk) {
	if atomic.LoadInt32(&c.PinCount) != 0 {
		panic(fmt.Sprintf("mem: releasing chunk %d with %d pinned objects", c.ID, c.PinCount))
	}
	s.liveWords.Add(int64(-len(c.Data)))
	c.SetHeapID(0)
	c.marks.Store(nil)
	c.freeHead = 0
	c.freeWords = 0
	if len(c.Data) != ChunkWords {
		return
	}
	s.mu.Lock()
	s.free = append(s.free, c)
	s.mu.Unlock()
}

// chunk returns the chunk with the given index. Lock-free: one atomic
// directory load, one segment load, two indexes. Deliberately minimal —
// it must stay within the inlining budget of Load/Store/CAS, which are
// themselves inlined into the barriers.
func (s *Space) chunk(idx uint32) *Chunk {
	dir := *s.dir.Load()
	return dir[idx>>segShift].Load()[idx&(segSize-1)]
}

// ChunkByID exposes chunk lookup to the collectors and checkers. Unlike
// the internal fast path it is bounds-safe: an id never published (e.g.
// decoded from a corrupted reference) returns nil instead of faulting, so
// integrity checkers can report the corruption.
func (s *Space) ChunkByID(idx uint32) *Chunk {
	dir := *s.dir.Load()
	bi := int(idx >> segShift)
	if bi >= len(dir) {
		return nil
	}
	seg := dir[bi].Load()
	if seg == nil {
		return nil
	}
	return seg[idx&(segSize-1)]
}

// PinnedCount returns the number of currently pinned objects residing in
// the chunk. Safe from any goroutine (the pin/unpin CASes publish it).
func (c *Chunk) PinnedCount() int { return int(atomic.LoadInt32(&c.PinCount)) }

// ForEachChunk visits every chunk ever published, live or released, in id
// order. Safe to call concurrently with the mutator: the id bound is
// snapshotted under the table mutex (which also orders the segment-slot
// writes that published those chunks), and the visit reads only through
// the lock-free directory. Introspection only — the visit callback must
// restrict itself to atomic chunk fields (HeapID, PinnedCount, Words):
// Alloc and the free-list words are owner-mutated without synchronization.
func (s *Space) ForEachChunk(visit func(*Chunk)) {
	s.mu.Lock()
	n := s.next
	s.mu.Unlock()
	for id := uint32(1); id < n; id++ {
		if c := s.ChunkByID(id); c != nil {
			visit(c)
		}
	}
}

// LiveWords returns the words currently held by live chunks.
func (s *Space) LiveWords() int64 { return s.liveWords.Load() }

// MaxLiveWords returns the high-water mark of LiveWords: the max residency
// statistic reported by the space experiments.
func (s *Space) MaxLiveWords() int64 { return s.maxLiveWords.Load() }

// TotalAllocWords returns the cumulative words handed out by allocators.
func (s *Space) TotalAllocWords() int64 { return s.totalAlloc.Load() }

// ResetMaxLive resets the residency high-water mark to current residency.
func (s *Space) ResetMaxLive() { s.maxLiveWords.Store(s.liveWords.Load()) }
