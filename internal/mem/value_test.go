package mem

import (
	"testing"
	"testing/quick"
)

func TestIntTagging(t *testing.T) {
	for _, i := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), (1 << 62) - 1, -(1 << 62)} {
		v := Int(i)
		if !v.IsInt() {
			t.Fatalf("Int(%d) not IsInt", i)
		}
		if v.IsRef() || v.IsNil() && i != 0 {
			t.Fatalf("Int(%d) misclassified", i)
		}
		if got := v.AsInt(); got != i {
			t.Fatalf("Int(%d).AsInt() = %d", i, got)
		}
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(i int64) bool {
		// Immediates carry 63 bits; normalize the expectation.
		want := i << 1 >> 1
		return Int(i).AsInt() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBool(t *testing.T) {
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("bool encoding broken")
	}
	if !Bool(true).IsInt() {
		t.Fatal("bools must be immediates")
	}
}

func TestNil(t *testing.T) {
	if !Nil.IsNil() || Nil.IsRef() || Nil.IsInt() {
		t.Fatal("Nil misclassified")
	}
	if Nil.String() != "nil" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
}

func TestRefPacking(t *testing.T) {
	cases := []struct {
		chunk uint32
		off   int
	}{
		{1, 0}, {1, 1}, {7, 4095}, {1 << 20, 12345}, {maxChunks - 1, (1 << offBits) - 1},
	}
	for _, c := range cases {
		r := MakeRef(c.chunk, c.off)
		if r.Chunk() != c.chunk || r.Off() != c.off {
			t.Fatalf("MakeRef(%d,%d) decoded to (%d,%d)", c.chunk, c.off, r.Chunk(), r.Off())
		}
		v := r.Value()
		if !v.IsRef() || v.Ref() != r {
			t.Fatalf("ref %v not a valid Value", r)
		}
	}
}

func TestRefPackingQuick(t *testing.T) {
	f := func(chunk uint32, off uint32) bool {
		chunk %= maxChunks
		if chunk == 0 {
			chunk = 1
		}
		o := int(off) % (1 << offBits)
		r := MakeRef(chunk, o)
		return r.Chunk() == chunk && r.Off() == o && r.Value().IsRef()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRefsAreNotInts(t *testing.T) {
	f := func(chunk uint32, off uint32) bool {
		r := MakeRef(chunk%maxChunks, int(off)%(1<<offBits))
		return !r.Value().IsInt()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderEncoding(t *testing.T) {
	for _, k := range []Kind{KTuple, KArray, KRefCell, KRaw} {
		for _, n := range []int{0, 1, 2, 100, 1 << 20} {
			h := Header(MakeHeader(k, n))
			if h.Kind() != k {
				t.Fatalf("kind %v decoded as %v", k, h.Kind())
			}
			if h.Len() != n {
				t.Fatalf("len %d decoded as %d", n, h.Len())
			}
			if !h.Valid() || h.Pinned() || h.Candidate() || h.Marked() {
				t.Fatalf("fresh header %v has stray flags", h)
			}
		}
	}
}

func TestKindProperties(t *testing.T) {
	if !KArray.Mutable() || !KRefCell.Mutable() {
		t.Fatal("arrays and refs must be mutable")
	}
	if KTuple.Mutable() || KRaw.Mutable() {
		t.Fatal("tuples and raw data must be immutable")
	}
	if !KTuple.Scanned() || !KArray.Scanned() || !KRefCell.Scanned() {
		t.Fatal("pointerful kinds must be scanned")
	}
	if KRaw.Scanned() {
		t.Fatal("raw payloads must not be scanned")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KForward: "forward", KTuple: "tuple", KArray: "array",
		KRefCell: "ref", KRaw: "raw", Kind(7): "invalid",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
