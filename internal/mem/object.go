package mem

import (
	"sync/atomic"

	"mplgo/internal/chaos"
)

// Kind classifies heap objects. The kind determines mutability (and hence
// which accesses take the entanglement barriers) and whether the payload
// holds tagged values that the collectors must scan.
type Kind uint8

const (
	// KForward marks a forwarded object: the first payload word holds the
	// tagged Value of the object's new location. Forwarding headers are
	// installed by the copying collector.
	KForward Kind = iota
	// KTuple is an immutable record of tagged values.
	KTuple
	// KArray is a mutable array of tagged values.
	KArray
	// KRefCell is a mutable cell holding a single tagged value (ML `ref`).
	KRefCell
	// KRaw is an immutable blob of untagged words (string/byte data).
	// The collectors do not scan raw payloads.
	KRaw
	// KFree marks a dead run of words reclaimed in place by the concurrent
	// collector's sweep (gc/cgc.go). The header length spans the whole run,
	// so chunk walks skip it like any object; the first payload word threads
	// the chunk's free list (1 + offset of the next free span, 0 = end).
	// Free spans are never candidates, pinned, or scanned, and the
	// allocator may carve new objects out of them (Allocator.AddReusable).
	KFree
)

func (k Kind) String() string {
	switch k {
	case KForward:
		return "forward"
	case KTuple:
		return "tuple"
	case KArray:
		return "array"
	case KRefCell:
		return "ref"
	case KRaw:
		return "raw"
	case KFree:
		return "free"
	}
	return "invalid"
}

// Mutable reports whether objects of this kind admit Write operations,
// and therefore participate in entanglement creation.
func (k Kind) Mutable() bool { return k == KArray || k == KRefCell }

// Scanned reports whether the payload holds tagged values the collectors
// must trace through.
func (k Kind) Scanned() bool { return k == KTuple || k == KArray || k == KRefCell }

// Object header layout (one uint64 preceding the payload):
//
//	bits  0..2   kind
//	bit   3      candidate — a down-pointer or entangled read reached this
//	             object; reads *through* it must take the slow path
//	bit   4      pinned — the object may not be moved or reclaimed by LGC
//	bit   5      mark — transient mark used inside a single collection
//	bit   6      valid — always set; guarantees headers are nonzero
//	bit   7      busy — a copying collector has claimed the object for
//	             relocation; pin attempts must back off and retry
//	bits 16..47  payload length in words (max 2^32-1, clipped by offBits)
//	bits 48..63  unpin depth — the shallowest hierarchy depth at which the
//	             object was pinned; merging to that depth unpins it
//
// The header is a small atomic state machine coordinating the entanglement
// slow path with the copying collector, with three stable states and one
// transient one:
//
//	           PinHeader (CAS)                  TryUnpin (CAS, at joins)
//	  ┌────────────────────────────► PINNED ────────────────────────────┐
//	  │                                ▲                                │
//	PLAIN ◄────────────────────────────┼────────────────────────────────┘
//	  │                                │ PinHeader while BUSY/FORWARDED
//	  │ BeginCopy (CAS)                │ fails; the reader re-validates
//	  ▼                                │ and retries against the object's
//	 BUSY ──────────────────────► FORWARDED (terminal)
//	       Forward (store; the
//	       collector owns BUSY)
//
// Every transition is a single CAS on the header word, so a pin can be
// ordered against a concurrent copy without any external lock: exactly one
// of PinHeader / BeginCopy wins on a PLAIN header, and each loser observes
// why it lost (PinBusy / PinForwarded, or a pinned header making BeginCopy
// return false, telling the collector to trace the object in place).
const (
	hdrKindMask  = 0x7
	hdrCandidate = 1 << 3
	hdrPinned    = 1 << 4
	hdrMark      = 1 << 5
	hdrValid     = 1 << 6
	hdrBusy      = 1 << 7
	hdrLenShift  = 16
	hdrLenMask   = 0xFFFFFFFF
	hdrUnpinSh   = 48
)

// MaxUnpinDepth is the deepest hierarchy depth representable in a header.
const MaxUnpinDepth = 0xFFFF

// MakeHeader builds a fresh object header.
func MakeHeader(k Kind, payloadWords int) uint64 {
	return uint64(k) | hdrValid | uint64(payloadWords)<<hdrLenShift
}

// Header is a decoded view of an object header word.
type Header uint64

// Kind returns the object kind.
func (h Header) Kind() Kind { return Kind(h & hdrKindMask) }

// Len returns the payload length in words.
func (h Header) Len() int { return int(uint64(h) >> hdrLenShift & hdrLenMask) }

// Candidate reports the candidate bit.
func (h Header) Candidate() bool { return h&hdrCandidate != 0 }

// Pinned reports the pinned bit.
func (h Header) Pinned() bool { return h&hdrPinned != 0 }

// Marked reports the transient mark bit.
func (h Header) Marked() bool { return h&hdrMark != 0 }

// Busy reports whether a collector has claimed the object for relocation.
func (h Header) Busy() bool { return h&hdrBusy != 0 }

// Valid reports whether this looks like a real object header.
func (h Header) Valid() bool { return h&hdrValid != 0 }

// UnpinDepth returns the depth at which the object unpins.
func (h Header) UnpinDepth() int { return int(uint64(h) >> hdrUnpinSh) }

// Space-level object accessors. These are the raw (barrier-free) operations;
// the runtime's Task.Read/Task.Write wrap them with entanglement barriers.

// Header returns the decoded header of the object at r.
func (s *Space) Header(r Ref) Header {
	c := s.chunk(r.Chunk())
	return Header(atomic.LoadUint64(&c.Data[r.Off()]))
}

// setHeaderBits atomically ORs bits into the header of r and reports whether
// the bits were previously clear (i.e. this call changed the header).
func (s *Space) setHeaderBits(r Ref, bits uint64) bool {
	c := s.chunk(r.Chunk())
	p := &c.Data[r.Off()]
	for {
		old := atomic.LoadUint64(p)
		if old&bits == bits {
			return false
		}
		if atomic.CompareAndSwapUint64(p, old, old|bits) {
			return true
		}
	}
}

// clearHeaderBits atomically clears bits in the header of r.
func (s *Space) clearHeaderBits(r Ref, bits uint64) {
	c := s.chunk(r.Chunk())
	p := &c.Data[r.Off()]
	for {
		old := atomic.LoadUint64(p)
		if old&bits == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old&^bits) {
			return
		}
	}
}

// SetCandidate marks r as an entanglement candidate.
// It reports whether the bit was newly set.
func (s *Space) SetCandidate(r Ref) bool { return s.setHeaderBits(r, hdrCandidate) }

// PinStatus reports the outcome of a PinHeader transition attempt.
type PinStatus uint8

const (
	// PinNew means the object was newly pinned (the caller owns the
	// obligation to publish the pin to the heap's pin buffer).
	PinNew PinStatus = iota
	// PinDepthLowered means the object was already pinned and this call
	// lowered its unpin depth (extending the pin's lifetime).
	PinDepthLowered
	// PinAlready means the object was already pinned at least as deep as
	// requested; the header was not modified.
	PinAlready
	// PinBusy means a collector holds the object in the transient BUSY
	// state mid-copy; the caller must back off and retry.
	PinBusy
	// PinForwarded means the object has been relocated; the caller must
	// re-read the field it came from and retry against the new location.
	PinForwarded
)

// PinHeader attempts the PLAIN/PINNED → PINNED transition on r with the
// given unpin depth: a single CAS that fails cleanly against a concurrent
// copy. If r is already pinned, the unpin depth is lowered to
// min(existing, depth) so the object stays pinned long enough for every
// entanglement involving it. The busy and forwarded states are reported to
// the caller rather than retried here — resolving them needs information
// (the holder field, the heap epoch) only the caller has.
//
// Besides the status, PinHeader returns the header it acted on (as
// written, for the successful transitions; as observed, for the refused
// ones), so callers costing the pin need no second header load.
func (s *Space) PinHeader(r Ref, unpinDepth int) (PinStatus, Header) {
	if unpinDepth < 0 {
		unpinDepth = 0
	}
	if unpinDepth > MaxUnpinDepth {
		unpinDepth = MaxUnpinDepth
	}
	c := s.chunk(r.Chunk())
	if s.Chaos != nil && s.Chaos.Should(chaos.HeaderCAS) {
		// Refuse the pin as a racing copier's BUSY window would, forcing
		// the caller through its back-off/re-resolve retry path.
		return PinBusy, Header(atomic.LoadUint64(&c.Data[r.Off()]))
	}
	p := &c.Data[r.Off()]
	ps := s.PinStats // nil except in attributed runs
	if ps != nil {
		ps.Attempts.Add(1)
	}
	for {
		old := atomic.LoadUint64(p)
		h := Header(old)
		if h.Kind() == KForward {
			if ps != nil {
				ps.Forwarded.Add(1)
			}
			return PinForwarded, h
		}
		if h.Busy() {
			if ps != nil {
				ps.Busy.Add(1)
			}
			return PinBusy, h
		}
		newDepth := unpinDepth
		wasPinned := h.Pinned()
		if wasPinned && h.UnpinDepth() < newDepth {
			newDepth = h.UnpinDepth()
		}
		nw := old&^(uint64(0xFFFF)<<hdrUnpinSh) | hdrPinned | uint64(newDepth)<<hdrUnpinSh
		if nw == old {
			if ps != nil {
				ps.Already.Add(1)
			}
			return PinAlready, h
		}
		if atomic.CompareAndSwapUint64(p, old, nw) {
			if !wasPinned {
				atomic.AddInt32(&c.PinCount, 1)
				if ps != nil {
					ps.New.Add(1)
				}
				return PinNew, Header(nw)
			}
			if ps != nil {
				ps.DepthLowered.Add(1)
			}
			return PinDepthLowered, Header(nw)
		}
		if ps != nil {
			ps.Retries.Add(1)
		}
	}
}

// Pin pins r with the given unpin depth, preventing the moving collector
// from relocating or reclaiming it. It reports whether r was newly pinned.
// Single-owner convenience wrapper over PinHeader: callers racing a
// collector must use PinHeader and handle PinBusy/PinForwarded themselves.
func (s *Space) Pin(r Ref, unpinDepth int) bool {
	st, _ := s.PinHeader(r, unpinDepth)
	return st == PinNew
}

// Unpin clears the pinned bit of r. It reports whether r was pinned.
func (s *Space) Unpin(r Ref) bool {
	c := s.chunk(r.Chunk())
	p := &c.Data[r.Off()]
	for {
		old := atomic.LoadUint64(p)
		if Header(old).Pinned() == false {
			return false
		}
		if atomic.CompareAndSwapUint64(p, old, old&^uint64(hdrPinned)) {
			atomic.AddInt32(&c.PinCount, -1)
			return true
		}
	}
}

// TryUnpin performs the PINNED → PLAIN transition only if r's header still
// equals the snapshot the caller examined: a concurrent PinHeader that
// lowered the unpin depth in between makes the CAS fail, so a join can
// never revoke a pin it has not seen. It reports whether the unpin took.
func (s *Space) TryUnpin(r Ref, observed Header) bool {
	if !observed.Pinned() {
		return false
	}
	c := s.chunk(r.Chunk())
	p := &c.Data[r.Off()]
	if atomic.CompareAndSwapUint64(p, uint64(observed), uint64(observed)&^uint64(hdrPinned)) {
		atomic.AddInt32(&c.PinCount, -1)
		return true
	}
	return false
}

// BeginCopy attempts the PLAIN → BUSY transition, claiming r for
// relocation. It returns the claimed header and true on success; if r is
// pinned, already claimed, or already forwarded, it returns the current
// header and false and the collector must trace the object in place (or
// skip it). While BUSY, the claiming collector is the only mutator of the
// header: PinHeader backs off, and no other collector can reach the object
// (collections are per-suffix and suffixes are disjoint).
func (s *Space) BeginCopy(r Ref) (Header, bool) {
	c := s.chunk(r.Chunk())
	p := &c.Data[r.Off()]
	for {
		old := atomic.LoadUint64(p)
		h := Header(old)
		if h.Pinned() || h.Busy() || h.Kind() == KForward {
			return h, false
		}
		if atomic.CompareAndSwapUint64(p, old, old|hdrBusy) {
			return h, true
		}
	}
}

// SetMark sets the transient mark bit; reports whether it was newly set.
func (s *Space) SetMark(r Ref) bool { return s.setHeaderBits(r, hdrMark) }

// ClearMark clears the transient mark bit.
func (s *Space) ClearMark(r Ref) { s.clearHeaderBits(r, hdrMark) }

// Load reads payload word i of the object at r without any barrier.
func (s *Space) Load(r Ref, i int) Value {
	c := s.chunk(r.Chunk())
	return Value(atomic.LoadUint64(&c.Data[r.Off()+1+i]))
}

// LoadChecked loads payload word i of the object at r and reports whether
// a barriered read must take the entanglement slow path: the loaded value
// is a reference and the holder carries the candidate bit. It is the fused
// read-barrier fast path: one chunk resolution serves both the value and
// the header, and for non-reference values (the common case in
// disentangled code) the whole barrier is a single atomic load plus a bit
// test — the header is never touched.
//
// The value is loaded before the header, matching the write barrier's
// ordering guarantee (candidate bit set before the down-pointer store):
// any reader that observes the new pointer also observes the bit.
func (s *Space) LoadChecked(r Ref, i int) (Value, bool) {
	c := s.chunk(r.Chunk())
	off := r.Off()
	v := Value(atomic.LoadUint64(&c.Data[off+1+i]))
	if v.IsRef() && atomic.LoadUint64(&c.Data[off])&hdrCandidate != 0 {
		return v, true
	}
	return v, false
}

// Store writes payload word i of the object at r without any barrier.
func (s *Space) Store(r Ref, i int, v Value) {
	c := s.chunk(r.Chunk())
	atomic.StoreUint64(&c.Data[r.Off()+1+i], uint64(v))
}

// CAS atomically compares-and-swaps payload word i of the object at r,
// without any barrier. It reports whether the swap happened.
func (s *Space) CAS(r Ref, i int, old, new Value) bool {
	c := s.chunk(r.Chunk())
	return atomic.CompareAndSwapUint64(&c.Data[r.Off()+1+i], uint64(old), uint64(new))
}

// LoadRaw reads an untagged payload word (for KRaw objects).
func (s *Space) LoadRaw(r Ref, i int) uint64 {
	c := s.chunk(r.Chunk())
	return c.Data[r.Off()+1+i]
}

// StoreRaw writes an untagged payload word (for KRaw objects, during init).
func (s *Space) StoreRaw(r Ref, i int, w uint64) {
	c := s.chunk(r.Chunk())
	c.Data[r.Off()+1+i] = w
}

// Forward overwrites the object at old with a forwarding header pointing to
// its new location: the BUSY → FORWARDED transition. The payload length is
// preserved in the forwarding header so that from-space scans can still
// skip over the object. Callers must have claimed old via BeginCopy (which
// makes the plain stores race-free: PinHeader never CASes a busy header),
// and must have finished copying the payload — the forwarding header is the
// linearization point after which readers chase the new location.
func (s *Space) Forward(old, new Ref) {
	c := s.chunk(old.Chunk())
	n := Header(atomic.LoadUint64(&c.Data[old.Off()])).Len()
	atomic.StoreUint64(&c.Data[old.Off()+1], uint64(new.Value()))
	atomic.StoreUint64(&c.Data[old.Off()], uint64(KForward)|hdrValid|uint64(n)<<hdrLenShift)
}

// Forwarded resolves a possibly-forwarded reference to its current location,
// chasing at most one hop (the collectors never create forwarding chains).
func (s *Space) Forwarded(r Ref) (Ref, bool) {
	if s.Header(r).Kind() != KForward {
		return r, false
	}
	return s.Load(r, 0).Ref(), true
}

// HeapOf returns the heap id owning the chunk that contains r.
func (s *Space) HeapOf(r Ref) uint32 {
	return s.chunk(r.Chunk()).HeapID()
}

// SameHeap reports whether a and b currently live in the same heap. Chunks
// are owned by exactly one heap, so two references into the same chunk are
// trivially same-heap with no table walk at all; otherwise each chunk's
// cached heap id is resolved exactly once. This is the write-barrier fast
// path: same-heap stores are free.
func (s *Space) SameHeap(a, b Ref) bool {
	ca, cb := a.Chunk(), b.Chunk()
	if ca == cb {
		return true
	}
	return s.chunk(ca).HeapID() == s.chunk(cb).HeapID()
}
