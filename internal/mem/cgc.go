package mem

import "sync/atomic"

// Concurrent-collection support: per-chunk mark bitmaps and the in-place
// sweep that threads free lists through partially-dead chunks. The moving
// collector (gc.Collect) evacuates leaf heaps; internal heaps are instead
// collected in place by gc.CGC, which marks into the side bitmaps below and
// then calls SweepMarked on each snapshot chunk. Objects never move, so the
// pin-then-validate read barrier is unaffected; the only new header state is
// the KFree kind stamped over dead runs.

// markBitmap holds one bit per chunk word. Bits are written exclusively by
// the single CGC worker goroutine; mutators only ever test the installed
// pointer (CGCScoped) to decide whether a chunk is in the current cycle's
// snapshot.
type markBitmap []uint64

// InstallMarks attaches a cleared mark bitmap to the chunk, placing it in
// the current concurrent cycle's snapshot. Called under the owning heap's
// collection gate so the publication orders against SATB shade checks.
func (c *Chunk) InstallMarks() {
	m := make(markBitmap, (len(c.Data)+63)/64)
	c.marks.Store(&m)
}

// DropMarks detaches the mark bitmap, taking the chunk out of CGC scope.
func (c *Chunk) DropMarks() { c.marks.Store(nil) }

// CGCScoped reports whether the chunk is in the current concurrent cycle's
// snapshot. One atomic load: this is the mutator-side scope test in the
// SATB shade path and in root harvesting.
func (c *Chunk) CGCScoped() bool { return c.marks.Load() != nil }

// Mark sets the mark bit for the object headered at off and reports whether
// it was newly set. CGC worker only.
func (c *Chunk) Mark(off int) bool {
	m := c.marks.Load()
	if m == nil {
		return false
	}
	w, b := off>>6, uint64(1)<<(off&63)
	if (*m)[w]&b != 0 {
		return false
	}
	(*m)[w] |= b
	return true
}

// Marked reports the mark bit for the object headered at off. CGC worker
// only; false when no bitmap is installed.
func (c *Chunk) Marked(off int) bool {
	m := c.marks.Load()
	if m == nil {
		return false
	}
	return (*m)[off>>6]&(uint64(1)<<(off&63)) != 0
}

// FreeWordCount returns the words covered by the chunk's threaded free
// spans. Owner/sweeper context only (see Chunk.freeWords).
func (c *Chunk) FreeWordCount() int { return c.freeWords }

// HasFreeList reports whether a sweep left reusable free spans in c.
func (c *Chunk) HasFreeList() bool { return c.freeHead != 0 }

// SweepStats summarizes one chunk's in-place sweep.
type SweepStats struct {
	LiveObjects int // objects kept (marked or pinned)
	LiveWords   int // words they occupy, headers included
	FreedWords  int // words newly turned from dead objects into free spans
	FreeWords   int // total words in free spans after the sweep
}

// SweepMarked rebuilds the chunk's free list from the installed mark
// bitmap: every maximal run of unmarked, unpinned objects (coalescing
// previously-freed KFree spans) becomes a single KFree span threaded onto
// the chunk's free list. It reports the stats and whether the chunk came
// out fully dead (no live objects and no pinned residents) — in which case
// the caller should Release it instead of keeping the (unbuilt) free list.
//
// Must run with the owning heap's collection gate held and the owner
// parked: the gate excludes in-flight pins, so the pinned-bit and PinCount
// checks are stable, and the bump offset c.Alloc cannot advance. Headers
// and free-list links are written atomically because stale readers (failed
// entanglement validations about to retry) may still load these words.
func (s *Space) SweepMarked(c *Chunk) (SweepStats, bool) {
	var st SweepStats
	type span struct{ off, size int }
	var runs []span
	runStart, runWords := -1, 0
	flush := func() {
		if runStart >= 0 {
			runs = append(runs, span{runStart, runWords})
			runStart, runWords = -1, 0
		}
	}
	for off := 0; off < c.Alloc; {
		hd := Header(atomic.LoadUint64(&c.Data[off]))
		if !hd.Valid() {
			// Torn chunk — should be impossible under the gate; stop
			// sweeping rather than corrupt it further.
			break
		}
		n := hd.Len()
		if n < 1 {
			n = 1
		}
		size := 1 + n
		switch {
		case hd.Kind() == KFree:
			if runStart < 0 {
				runStart = off
			}
			runWords += size
		case c.Marked(off) || hd.Pinned():
			flush()
			st.LiveObjects++
			st.LiveWords += size
		default:
			if runStart < 0 {
				runStart = off
			}
			runWords += size
			st.FreedWords += size
		}
		off += size
	}
	flush()
	if st.LiveObjects == 0 && atomic.LoadInt32(&c.PinCount) == 0 {
		return st, true
	}
	// Thread the free list front-to-back. Each span gets a KFree header
	// spanning the whole run and a next link in payload word 0; remaining
	// payload words are zeroed so a later allocation can hand them out
	// directly. Runs are at least 2 words (header + one payload word), so
	// every span has room for the link.
	c.freeHead = 0
	c.freeWords = 0
	for i := len(runs) - 1; i >= 0; i-- {
		r := runs[i]
		for w := r.off + 2; w < r.off+r.size; w++ {
			atomic.StoreUint64(&c.Data[w], 0)
		}
		atomic.StoreUint64(&c.Data[r.off+1], uint64(c.freeHead))
		atomic.StoreUint64(&c.Data[r.off], MakeHeader(KFree, r.size-1))
		c.freeHead = r.off + 1
		c.freeWords += r.size
	}
	st.FreeWords = c.freeWords
	return st, false
}
