package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)

	tup := a.AllocTuple(Int(1), Int(2), Int(3))
	h := s.Header(tup)
	if h.Kind() != KTuple || h.Len() != 3 {
		t.Fatalf("tuple header %v/%d", h.Kind(), h.Len())
	}
	for i := int64(0); i < 3; i++ {
		if got := s.Load(tup, int(i)); got.AsInt() != i+1 {
			t.Fatalf("tuple[%d] = %v", i, got)
		}
	}

	arr := a.AllocArray(5, Int(7))
	if s.Header(arr).Kind() != KArray || s.Header(arr).Len() != 5 {
		t.Fatal("array header wrong")
	}
	s.Store(arr, 2, tup.Value())
	if s.Load(arr, 2).Ref() != tup {
		t.Fatal("array store/load mismatch")
	}
	if s.Load(arr, 0).AsInt() != 7 {
		t.Fatal("array init value lost")
	}

	cell := a.AllocRef(arr.Value())
	if s.Header(cell).Kind() != KRefCell || s.Load(cell, 0).Ref() != arr {
		t.Fatal("ref cell broken")
	}
}

func TestAllocOwnership(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 42)
	r := a.AllocTuple(Int(1))
	if s.HeapOf(r) != 42 {
		t.Fatalf("HeapOf = %d, want 42", s.HeapOf(r))
	}
	// Reassigning the chunk's heap changes every resident object's heap.
	s.ChunkByID(r.Chunk()).SetHeapID(7)
	if s.HeapOf(r) != 7 {
		t.Fatal("chunk-level heap reassignment not visible through HeapOf")
	}
}

func TestAllocSpansChunks(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	var refs []Ref
	for i := 0; i < 3*ChunkWords/4; i++ {
		refs = append(refs, a.AllocTuple(Int(int64(i)), Int(int64(i))))
	}
	if len(a.Chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(a.Chunks))
	}
	for i, r := range refs {
		if s.Load(r, 0).AsInt() != int64(i) || s.Load(r, 1).AsInt() != int64(i) {
			t.Fatalf("object %d corrupted after chunk overflow", i)
		}
	}
}

func TestAllocOversizeObject(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	big := a.AllocArray(4*ChunkWords, Nil)
	if s.Header(big).Len() != 4*ChunkWords {
		t.Fatal("oversize array header wrong")
	}
	s.Store(big, 4*ChunkWords-1, Int(9))
	if s.Load(big, 4*ChunkWords-1).AsInt() != 9 {
		t.Fatal("oversize array store failed")
	}
}

func TestZeroLengthObjectsHaveSlack(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	r := a.AllocTuple()
	if s.Header(r).Len() != 0 {
		t.Fatal("empty tuple length must be 0")
	}
	// Forwarding must have room to store the pointer even for empty objects.
	r2 := a.AllocTuple(Int(5))
	s.Forward(r, r2)
	got, fwd := s.Forwarded(r)
	if !fwd || got != r2 {
		t.Fatal("forwarding of empty object failed")
	}
}

func TestForwarding(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	old := a.AllocTuple(Int(1), Int(2))
	new := a.AllocTuple(Int(1), Int(2))
	if _, fwd := s.Forwarded(old); fwd {
		t.Fatal("fresh object reported forwarded")
	}
	s.Forward(old, new)
	got, fwd := s.Forwarded(old)
	if !fwd || got != new {
		t.Fatalf("Forwarded = %v,%v", got, fwd)
	}
	if s.Header(old).Len() != 2 {
		t.Fatal("forwarding header must preserve length for from-space scans")
	}
}

func TestPinUnpin(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	r := a.AllocRef(Int(0))
	c := s.ChunkByID(r.Chunk())

	if !s.Pin(r, 3) {
		t.Fatal("first Pin must report newly pinned")
	}
	if !s.Header(r).Pinned() || s.Header(r).UnpinDepth() != 3 {
		t.Fatalf("pin state wrong: %v depth %d", s.Header(r).Pinned(), s.Header(r).UnpinDepth())
	}
	if c.PinCount != 1 {
		t.Fatalf("PinCount = %d", c.PinCount)
	}

	// Re-pinning at a deeper depth must not raise the unpin depth.
	if s.Pin(r, 5) {
		t.Fatal("re-pin reported newly pinned")
	}
	if s.Header(r).UnpinDepth() != 3 {
		t.Fatal("re-pin raised unpin depth")
	}
	// Re-pinning at a shallower depth must lower it.
	s.Pin(r, 1)
	if s.Header(r).UnpinDepth() != 1 {
		t.Fatal("re-pin did not lower unpin depth")
	}
	if c.PinCount != 1 {
		t.Fatalf("PinCount after re-pins = %d", c.PinCount)
	}

	if !s.Unpin(r) {
		t.Fatal("Unpin must report previously pinned")
	}
	if s.Header(r).Pinned() || c.PinCount != 0 {
		t.Fatal("unpin state wrong")
	}
	if s.Unpin(r) {
		t.Fatal("double Unpin must report false")
	}
}

func TestPinDepthClamp(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	r := a.AllocRef(Int(0))
	s.Pin(r, MaxUnpinDepth+100)
	if s.Header(r).UnpinDepth() != MaxUnpinDepth {
		t.Fatal("unpin depth not clamped")
	}
	s.Unpin(r)
	s.Pin(r, -5)
	if s.Header(r).UnpinDepth() != 0 {
		t.Fatal("negative unpin depth not clamped to 0")
	}
}

func TestCandidateAndMark(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	r := a.AllocArray(2, Nil)
	if s.Header(r).Candidate() {
		t.Fatal("fresh object is candidate")
	}
	if !s.SetCandidate(r) {
		t.Fatal("SetCandidate must report newly set")
	}
	if s.SetCandidate(r) {
		t.Fatal("second SetCandidate must report false")
	}
	if !s.SetMark(r) || s.SetMark(r) {
		t.Fatal("mark bit protocol broken")
	}
	s.ClearMark(r)
	if s.Header(r).Marked() {
		t.Fatal("ClearMark failed")
	}
	// Flag traffic must not corrupt kind or length.
	if h := s.Header(r); h.Kind() != KArray || h.Len() != 2 || !h.Candidate() {
		t.Fatal("flags corrupted header fields")
	}
}

func TestChunkReuse(t *testing.T) {
	s := NewSpace()
	c1 := s.NewChunk(1, 0)
	c1.Data[0] = 999
	c1.Alloc = 50
	id := c1.ID
	s.Release(c1)
	c2 := s.NewChunk(2, 0)
	if c2.ID != id {
		t.Fatalf("expected chunk reuse, got new chunk %d (want %d)", c2.ID, id)
	}
	if c2.Data[0] != 0 || c2.Alloc != 0 {
		t.Fatal("reused chunk not cleared")
	}
	if c2.HeapID() != 2 {
		t.Fatal("reused chunk owner wrong")
	}
}

func TestReleasePinnedPanics(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	r := a.AllocRef(Int(1))
	s.Pin(r, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of pinned chunk must panic")
		}
	}()
	s.Release(s.ChunkByID(r.Chunk()))
}

func TestResidencyAccounting(t *testing.T) {
	s := NewSpace()
	c1 := s.NewChunk(1, 0)
	c2 := s.NewChunk(1, 0)
	if s.LiveWords() != 2*ChunkWords {
		t.Fatalf("LiveWords = %d", s.LiveWords())
	}
	s.Release(c1)
	if s.LiveWords() != ChunkWords {
		t.Fatalf("LiveWords after release = %d", s.LiveWords())
	}
	if s.MaxLiveWords() != 2*ChunkWords {
		t.Fatalf("MaxLiveWords = %d", s.MaxLiveWords())
	}
	s.ResetMaxLive()
	if s.MaxLiveWords() != ChunkWords {
		t.Fatal("ResetMaxLive failed")
	}
	s.Release(c2)
}

func TestStringRoundTrip(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	for _, str := range []string{"", "a", "hello", "exactly8", "more than eight bytes", "\x00\xff binary \n"} {
		r := a.AllocString(str)
		if got := s.LoadString(r); got != str {
			t.Fatalf("string %q round-tripped to %q", str, got)
		}
		if s.Header(r).Kind() != KRaw {
			t.Fatal("strings must be raw objects")
		}
	}
}

func TestStringRoundTripQuick(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	f := func(str string) bool {
		if len(str) > 1<<16 {
			str = str[:1<<16]
		}
		return s.LoadString(a.AllocString(str)) == str
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocWordsAccounting(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	a.AllocTuple(Int(1), Int(2)) // header + 2
	a.AllocRef(Nil)              // header + 1
	if a.AllocWords != 5 {
		t.Fatalf("AllocWords = %d, want 5", a.AllocWords)
	}
	if s.TotalAllocWords() != 5 {
		t.Fatalf("TotalAllocWords = %d, want 5", s.TotalAllocWords())
	}
}

func TestRetarget(t *testing.T) {
	s := NewSpace()
	a := NewAllocator(s, 1)
	r1 := a.AllocTuple(Int(1))
	a.Retarget(9)
	r2 := a.AllocTuple(Int(2))
	if s.HeapOf(r1) != 1 || s.HeapOf(r2) != 9 {
		t.Fatalf("heap ids after retarget: %d, %d", s.HeapOf(r1), s.HeapOf(r2))
	}
	if a.Heap() != 9 {
		t.Fatal("Heap() after retarget")
	}
}

func TestAllocatorRandomObjectsQuick(t *testing.T) {
	// Property: random interleavings of allocations produce objects whose
	// headers and payloads remain intact and disjoint.
	s := NewSpace()
	a := NewAllocator(s, 1)
	type obj struct {
		ref  Ref
		kind Kind
		n    int
		tag  int64
	}
	var objs []obj
	f := func(sizes []uint16) bool {
		for _, raw := range sizes {
			n := int(raw%200) + 1
			kind := []Kind{KTuple, KArray, KRefCell, KRaw}[int(raw)%4]
			if kind == KRefCell {
				n = 1
			}
			r := a.Alloc(kind, n)
			tag := int64(len(objs))*7919 + 13
			if kind != KRaw {
				for i := 0; i < n; i++ {
					s.Store(r, i, Int(tag+int64(i)))
				}
			} else {
				for i := 0; i < n; i++ {
					s.StoreRaw(r, i, uint64(tag+int64(i)))
				}
			}
			objs = append(objs, obj{r, kind, n, tag})
		}
		// Every object written so far must still be intact.
		for _, o := range objs {
			h := s.Header(o.ref)
			if h.Kind() != o.kind || h.Len() != o.n {
				return false
			}
			for i := 0; i < o.n; i++ {
				if o.kind != KRaw {
					if s.Load(o.ref, i).AsInt() != o.tag+int64(i) {
						return false
					}
				} else if s.LoadRaw(o.ref, i) != uint64(o.tag+int64(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPinUnpinSequenceQuick(t *testing.T) {
	// Property: arbitrary pin/unpin sequences keep the chunk's PinCount
	// equal to the number of currently pinned objects.
	s := NewSpace()
	a := NewAllocator(s, 1)
	refs := make([]Ref, 32)
	for i := range refs {
		refs[i] = a.AllocRef(Int(int64(i)))
	}
	pinned := make([]bool, len(refs))
	f := func(ops []uint8) bool {
		for _, op := range ops {
			i := int(op) % len(refs)
			if op%2 == 0 {
				s.Pin(refs[i], int(op)%7)
				pinned[i] = true
			} else {
				s.Unpin(refs[i])
				pinned[i] = false
			}
		}
		want := int32(0)
		for _, p := range pinned {
			if p {
				want++
			}
		}
		c := s.ChunkByID(refs[0].Chunk())
		return c.PinCount == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
