// Package mem implements the simulated heap that underlies the runtime:
// tagged machine words, chunked arenas, object headers, and bump allocation.
//
// The Go garbage collector never sees the object graph built here. Objects
// live inside large []uint64 chunks; references are tagged word values that
// encode (chunk, offset) pairs. All tracing, copying, pinning, and
// reclamation of these objects is performed by this library's collectors
// (package gc), exactly as in MPL's hierarchical runtime. This is the
// substitution DESIGN.md documents for "built-in GC conflicts with custom
// heap hierarchy": reifying the heap lets us own object lifetime completely.
package mem

import "fmt"

// Value is a tagged machine word, the universal datum of the runtime.
// Like MPL (and most ML runtimes) the low bit distinguishes immediates
// from pointers:
//
//	xxxx...x1  — a 63-bit signed integer (shifted left one bit)
//	xxxx...x0  — a reference (see Ref), or Nil when zero
type Value uint64

// Nil is the null reference value.
const Nil Value = 0

// Int makes an immediate integer value. The integer is truncated to 63 bits.
func Int(i int64) Value { return Value(uint64(i)<<1 | 1) }

// Bool makes an immediate boolean value (false=0, true=1).
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsInt reports whether v is an immediate integer.
func (v Value) IsInt() bool { return v&1 == 1 }

// AsInt returns the immediate integer stored in v.
// It must only be called when IsInt reports true.
func (v Value) AsInt() int64 { return int64(v) >> 1 }

// AsBool interprets an immediate integer as a boolean.
func (v Value) AsBool() bool { return v.AsInt() != 0 }

// IsRef reports whether v is a non-nil reference.
func (v Value) IsRef() bool { return v != 0 && v&1 == 0 }

// IsNil reports whether v is the null reference.
func (v Value) IsNil() bool { return v == 0 }

// Ref returns the reference stored in v.
// It must only be called when IsRef reports true.
func (v Value) Ref() Ref { return Ref(v) }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch {
	case v.IsInt():
		return fmt.Sprintf("%d", v.AsInt())
	case v.IsNil():
		return "nil"
	default:
		return v.Ref().String()
	}
}

// Ref is a reference to a heap object: the packed pair (chunk, offset)
// shifted left one bit so that references are valid (even) Values.
// The offset addresses the object's header word within the chunk.
type Ref uint64

const (
	offBits = 26 // max object size: 2^26 words (512 MiB) per chunk
	offMask = (1 << offBits) - 1
)

// MakeRef packs a chunk index and word offset into a reference.
func MakeRef(chunk uint32, off int) Ref {
	return Ref((uint64(chunk)<<offBits | uint64(off)) << 1)
}

// Chunk returns the chunk index addressed by r.
func (r Ref) Chunk() uint32 { return uint32(uint64(r) >> 1 >> offBits) }

// Off returns the word offset of the object header within its chunk.
func (r Ref) Off() int { return int(uint64(r) >> 1 & offMask) }

// Value converts the reference to a tagged value.
func (r Ref) Value() Value { return Value(r) }

// String renders the reference for diagnostics.
func (r Ref) String() string {
	return fmt.Sprintf("#%d:%d", r.Chunk(), r.Off())
}
