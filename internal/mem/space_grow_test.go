package mem

import (
	"errors"
	"testing"
)

// jumpTo fast-forwards the next chunk id (white-box), so tests can cross
// directory-growth boundaries without allocating millions of chunks.
func jumpTo(s *Space, id uint32) {
	s.mu.Lock()
	s.next = id
	s.mu.Unlock()
}

// Allocating past the capacity the directory starts with must grow it,
// not panic (the pre-hardening runtime aborted at a fixed
// dirSize*segSize chunks).
func TestChunkTableGrows(t *testing.T) {
	s := NewSpace()
	before := s.NewChunk(1, ChunkWords)
	jumpTo(s, initChunks-2) // straddle the initial directory capacity
	var cs []*Chunk
	for i := 0; i < 4; i++ {
		c := s.NewChunk(1, ChunkWords)
		if c == nil {
			t.Fatalf("NewChunk returned nil at iteration %d", i)
		}
		cs = append(cs, c)
	}
	if got := cs[len(cs)-1].ID; got < initChunks {
		t.Fatalf("expected ids past the initial capacity, last id %d", got)
	}
	// Chunks on both sides of the growth resolve, via the fast path and
	// the bounds-safe one.
	for _, c := range append(cs, before) {
		if s.chunk(c.ID) != c {
			t.Fatalf("chunk %d not resolvable via fast path", c.ID)
		}
		if s.ChunkByID(c.ID) != c {
			t.Fatalf("chunk %d not resolvable via ChunkByID", c.ID)
		}
	}
	// Unpublished ids resolve to nil, not a fault.
	if s.ChunkByID(cs[len(cs)-1].ID+100) != nil {
		t.Fatal("unpublished id resolved to a chunk")
	}
}

// Repeated growth: ids landing several doublings out force copy-install
// reinstalls, and chunks published through an earlier directory stay
// resolvable afterwards (the copy preserves every published slot).
func TestChunkTableRepeatedGrowth(t *testing.T) {
	s := NewSpace()
	jumpTo(s, initChunks)
	first := s.NewChunk(1, ChunkWords)
	first.Data[5] = 0xDEAD
	jumpTo(s, initChunks+8*segSize*initDirLen) // several doublings at once
	far := s.NewChunk(1, ChunkWords)
	if got := s.chunk(first.ID); got != first || got.Data[5] != 0xDEAD {
		t.Fatal("chunk corrupted or lost by directory growth")
	}
	if s.chunk(far.ID) != far {
		t.Fatalf("chunk %d not resolvable after directory growth", far.ID)
	}
}

// Exhausting the absolute (uint32 ref-encoding) id space is a genuine
// limit: it must surface as a typed error panic the runtime's panic-safe
// fork–join can convert to a Run error, not a bare string abort.
func TestChunkTableAbsoluteCap(t *testing.T) {
	s := NewSpace()
	jumpTo(s, maxChunks-1)
	c := s.NewChunk(1, ChunkWords+1) // last representable id
	if c.ID != maxChunks-1 {
		t.Fatalf("last id = %d, want %d", c.ID, uint32(maxChunks-1))
	}
	defer func() {
		v := recover()
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrChunkTableExhausted) {
			t.Fatalf("recovered %v, want ErrChunkTableExhausted", v)
		}
	}()
	s.NewChunk(1, ChunkWords+1)
	t.Fatal("allocation past the absolute cap did not panic")
}
