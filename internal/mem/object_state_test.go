package mem

import (
	"sync"
	"testing"
)

// newTestObj allocates one tuple of the given arity in a fresh heap.
func newTestObj(t testing.TB, words int) (*Space, Ref) {
	t.Helper()
	sp := NewSpace()
	al := NewAllocator(sp, 1)
	r := al.Alloc(KTuple, words)
	return sp, r
}

func TestPinHeaderTransitions(t *testing.T) {
	sp, r := newTestObj(t, 2)

	if st, _ := sp.PinHeader(r, 3); st != PinNew {
		t.Fatalf("first pin: %v, want PinNew", st)
	}
	if h := sp.Header(r); !h.Pinned() || h.UnpinDepth() != 3 {
		t.Fatalf("header after pin: pinned=%v depth=%d", h.Pinned(), h.UnpinDepth())
	}
	// Deeper request: no change.
	if st, _ := sp.PinHeader(r, 5); st != PinAlready {
		t.Fatalf("deeper re-pin: %v, want PinAlready", st)
	}
	// Shallower request lowers the depth.
	if st, _ := sp.PinHeader(r, 1); st != PinDepthLowered {
		t.Fatalf("shallower re-pin: %v, want PinDepthLowered", st)
	}
	if d := sp.Header(r).UnpinDepth(); d != 1 {
		t.Fatalf("depth after lowering = %d, want 1", d)
	}
	// PinCount tracked exactly once.
	if pc := sp.ChunkByID(r.Chunk()).PinCount; pc != 1 {
		t.Fatalf("PinCount = %d, want 1", pc)
	}
}

func TestBeginCopyExcludesPin(t *testing.T) {
	sp, r := newTestObj(t, 1)

	h, ok := sp.BeginCopy(r)
	if !ok || h.Kind() != KTuple {
		t.Fatalf("BeginCopy on plain object failed: %v %v", h, ok)
	}
	if !sp.Header(r).Busy() {
		t.Fatal("busy bit not set")
	}
	// A pin attempt against a busy object must back off, not block or win.
	if st, _ := sp.PinHeader(r, 0); st != PinBusy {
		t.Fatalf("pin of busy object: %v, want PinBusy", st)
	}
	// A second claim must fail too.
	if _, ok := sp.BeginCopy(r); ok {
		t.Fatal("double BeginCopy succeeded")
	}

	// Complete the copy: the forwarded state is terminal for pinning.
	al := NewAllocator(sp, 1)
	nr := al.Alloc(KTuple, 1)
	sp.Forward(r, nr)
	if st, _ := sp.PinHeader(r, 0); st != PinForwarded {
		t.Fatalf("pin of forwarded object: %v, want PinForwarded", st)
	}
	if got, fwd := sp.Forwarded(r); !fwd || got != nr {
		t.Fatalf("Forwarded(r) = %v, %v", got, fwd)
	}
}

func TestBeginCopyRefusesPinned(t *testing.T) {
	sp, r := newTestObj(t, 1)
	sp.PinHeader(r, 0)
	if h, ok := sp.BeginCopy(r); ok || !h.Pinned() {
		t.Fatalf("BeginCopy claimed a pinned object (h=%v ok=%v)", h, ok)
	}
}

func TestTryUnpinRespectsConcurrentRepin(t *testing.T) {
	sp, r := newTestObj(t, 1)
	sp.PinHeader(r, 2)
	observed := sp.Header(r)

	// A racing reader lowers the depth after the join examined the header.
	if st, _ := sp.PinHeader(r, 1); st != PinDepthLowered {
		t.Fatalf("repin: %v", st)
	}
	if sp.TryUnpin(r, observed) {
		t.Fatal("TryUnpin revoked a pin it had not seen")
	}
	if !sp.Header(r).Pinned() {
		t.Fatal("object lost its pin")
	}

	// With a current snapshot the unpin takes.
	if !sp.TryUnpin(r, sp.Header(r)) {
		t.Fatal("TryUnpin with fresh snapshot failed")
	}
	if sp.Header(r).Pinned() {
		t.Fatal("still pinned after TryUnpin")
	}
	if pc := sp.ChunkByID(r.Chunk()).PinCount; pc != 0 {
		t.Fatalf("PinCount = %d, want 0", pc)
	}
}

func TestTryUnpinIgnoresUnpinned(t *testing.T) {
	sp, r := newTestObj(t, 1)
	if sp.TryUnpin(r, sp.Header(r)) {
		t.Fatal("TryUnpin of an unpinned object reported success")
	}
}

// TestPinVsBeginCopyRace drives the central guarantee of the state machine
// under the race detector: for each fresh object, one goroutine attempts
// PinHeader while another attempts BeginCopy; exactly one must win, and the
// loser must observe why.
func TestPinVsBeginCopyRace(t *testing.T) {
	const rounds = 2000
	sp := NewSpace()
	al := NewAllocator(sp, 1)
	for i := 0; i < rounds; i++ {
		r := al.Alloc(KRefCell, 1)
		var (
			wg      sync.WaitGroup
			pinSt   PinStatus
			copyOK  bool
			copyHdr Header
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			pinSt, _ = sp.PinHeader(r, 0)
		}()
		go func() {
			defer wg.Done()
			copyHdr, copyOK = sp.BeginCopy(r)
		}()
		wg.Wait()

		pinned := pinSt == PinNew
		switch {
		case pinned && copyOK:
			t.Fatalf("round %d: both pin and copy won (hdr=%#x)", i, uint64(sp.Header(r)))
		case pinned && !copyOK:
			if !copyHdr.Pinned() {
				t.Fatalf("round %d: copy lost but did not observe the pin", i)
			}
		case !pinned && copyOK:
			if pinSt != PinBusy {
				t.Fatalf("round %d: pin lost with status %v, want PinBusy", i, pinSt)
			}
		default:
			t.Fatalf("round %d: nobody won (pin=%v copy=%v)", i, pinSt, copyOK)
		}
	}
}
