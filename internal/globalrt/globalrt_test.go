package globalrt

import (
	"testing"

	"mplgo/internal/mem"
	"mplgo/internal/sim"
)

func TestAllocAccess(t *testing.T) {
	r := New(0)
	tup := r.AllocTuple(mem.Int(1), mem.Int(2))
	if r.Read(tup, 0).AsInt() != 1 || r.Read(tup, 1).AsInt() != 2 {
		t.Fatal("tuple access")
	}
	arr := r.AllocArray(4, mem.Int(7))
	r.Write(arr, 3, mem.Int(9))
	if r.Read(arr, 3).AsInt() != 9 || r.Read(arr, 0).AsInt() != 7 {
		t.Fatal("array access")
	}
	cell := r.AllocRef(tup.Value())
	if r.Deref(cell).Ref() != tup {
		t.Fatal("ref cell")
	}
	r.Assign(cell, mem.Int(3))
	if r.Deref(cell).AsInt() != 3 {
		t.Fatal("assign")
	}
	s := r.AllocString("abc")
	if r.StringOf(s) != "abc" {
		t.Fatal("string")
	}
	if r.Length(arr) != 4 {
		t.Fatal("length")
	}
}

func TestCollectionPreservesList(t *testing.T) {
	r := New(512)
	f := r.NewFrame(1)
	const n = 3000
	for i := 0; i < n; i++ {
		head := r.AllocTuple(mem.Int(int64(i)), f.Get(0))
		f.Set(0, head.Value())
		r.AllocArray(8, mem.Int(0)) // garbage
	}
	if r.Collections == 0 {
		t.Fatal("no collections with tiny budget")
	}
	cur := f.Get(0)
	for i := n - 1; i >= 0; i-- {
		if got := r.Read(cur.Ref(), 0).AsInt(); got != int64(i) {
			t.Fatalf("list[%d] = %d", i, got)
		}
		cur = r.Read(cur.Ref(), 1)
	}
	if !cur.IsNil() {
		t.Fatal("tail not nil")
	}
	f.Pop()
}

func TestCollectionReclaims(t *testing.T) {
	r := New(1 << 14)
	for i := 0; i < 20000; i++ {
		r.AllocArray(16, mem.Int(1))
	}
	// Everything is garbage; after the last collection residency must be
	// far below total allocation.
	if r.Collections == 0 {
		t.Fatal("no collections")
	}
	if live := r.Space().LiveWords(); live > 1<<16 {
		t.Fatalf("LiveWords = %d; garbage not reclaimed", live)
	}
	if r.GCWork == 0 && r.CopiedWords != 0 {
		t.Fatal("GCWork accounting inconsistent")
	}
}

func TestParSequentialSemantics(t *testing.T) {
	r := New(0)
	a, b := r.Par(
		func(r *Runtime) mem.Value { return mem.Int(3) },
		func(r *Runtime) mem.Value { return mem.Int(4) },
	)
	if a.AsInt() != 3 || b.AsInt() != 4 {
		t.Fatal("Par results")
	}
}

func TestRecordingTrace(t *testing.T) {
	r := NewRecording(0)
	var fib func(n int64) int64
	fib = func(n int64) int64 {
		if n < 2 {
			r.Work(1)
			return n
		}
		a, b := r.Par(
			func(*Runtime) mem.Value { return mem.Int(fib(n - 1)) },
			func(*Runtime) mem.Value { return mem.Int(fib(n - 2)) },
		)
		return a.AsInt() + b.AsInt()
	}
	if fib(12) != 144 {
		t.Fatal("fib wrong")
	}
	tr := r.Trace()
	if tr == nil || tr.CountForks() == 0 {
		t.Fatal("no trace")
	}
	w, s := tr.WorkSpan()
	if w <= 0 || s <= 0 || s >= w {
		t.Fatalf("W=%d S=%d", w, s)
	}
	// The recorded DAG parallelizes even though execution was sequential.
	t1 := sim.Replay(tr, sim.ReplayConfig{P: 1, StealCost: 1}).Makespan
	t8 := sim.Replay(tr, sim.ReplayConfig{P: 8, StealCost: 1}).Makespan
	if t8 >= t1 {
		t.Fatalf("recorded DAG has no parallelism: T1=%d T8=%d", t1, t8)
	}
}

func TestParForCoversRange(t *testing.T) {
	r := New(0)
	arr := r.AllocArray(100, mem.Int(0))
	f := r.NewFrame(1)
	f.Set(0, arr.Value())
	r.ParFor(0, 100, 8, func(r *Runtime, lo, hi int) {
		for i := lo; i < hi; i++ {
			r.Write(f.Ref(0), i, mem.Int(int64(i)))
		}
	})
	for i := 0; i < 100; i++ {
		if r.Read(f.Ref(0), i).AsInt() != int64(i) {
			t.Fatalf("slot %d", i)
		}
	}
	f.Pop()
}

func TestFrameLIFO(t *testing.T) {
	r := New(0)
	f1 := r.NewFrame(1)
	defer func() {
		if recover() == nil {
			t.Fatal("non-LIFO pop must panic")
		}
	}()
	_ = r.NewFrame(1)
	f1.Pop()
}

func TestSharingPreservedAcrossGC(t *testing.T) {
	r := New(256)
	shared := r.AllocTuple(mem.Int(5))
	pair := r.AllocTuple(shared.Value(), shared.Value())
	f := r.NewFrame(1)
	f.Set(0, pair.Value())
	for i := 0; i < 500; i++ {
		r.AllocArray(8, mem.Int(0))
	}
	p := f.Ref(0)
	if r.Read(p, 0) != r.Read(p, 1) {
		t.Fatal("sharing destroyed by collection")
	}
	f.Pop()
}
