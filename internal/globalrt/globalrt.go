// Package globalrt is the non-hierarchical baseline runtime: a single
// global heap with a semispace copying collector. It plays two roles in
// the experiments (DESIGN.md, substitutions):
//
//   - Sequential baseline ("MLton" in the paper's tables): the same object
//     model and allocator as the hierarchical runtime, but one heap, no
//     barriers, no parallelism. Its times are the Tₛ denominators of the
//     overhead columns.
//   - Stop-the-world parallel model: Par executes its branches
//     sequentially while recording the fork–join DAG; collection work is
//     accumulated separately (GCWork) because a global collector runs with
//     all mutators stopped. The experiment tables derive the modeled
//     parallel time as T_P = W_mutator/P + W_gc + c·S, which is what makes
//     the hierarchical runtime's independently-collected heaps win.
package globalrt

import (
	"mplgo/internal/mem"
	"mplgo/internal/sim"
)

// Runtime is a sequential global-heap runtime instance.
type Runtime struct {
	space   *mem.Space
	al      *mem.Allocator
	slots   []mem.Value
	budget  int64
	sinceGC int64
	node    *sim.Node // recording segment, nil when off
	trace   *sim.Node

	// Collections counts semispace collections.
	Collections int64
	// CopiedWords counts words copied by collections.
	CopiedWords int64
	// GCWork is the abstract cost of all collections (serialized in the
	// stop-the-world parallel model).
	GCWork int64
}

// heapID is the single heap's id within the space (ids are arbitrary here;
// the hierarchy is absent).
const heapID = 1

// New creates a runtime with the given collection budget in words
// (<=0 selects the default, 1<<17).
func New(budgetWords int64) *Runtime {
	if budgetWords <= 0 {
		budgetWords = 1 << 17
	}
	sp := mem.NewSpace()
	return &Runtime{space: sp, al: mem.NewAllocator(sp, heapID), budget: budgetWords}
}

// NewRecording creates a runtime that records the fork–join DAG for the
// stop-the-world parallel model.
func NewRecording(budgetWords int64) *Runtime {
	r := New(budgetWords)
	r.trace = sim.NewTrace()
	r.node = r.trace
	return r
}

// Trace returns the recorded DAG, or nil.
func (r *Runtime) Trace() *sim.Node { return r.trace }

// Space exposes the underlying space (for residency statistics).
func (r *Runtime) Space() *mem.Space { return r.space }

// MaxLiveWords reports the space high-water mark.
func (r *Runtime) MaxLiveWords() int64 { return r.space.MaxLiveWords() }

// Work records abstract computational cost (mutator work).
func (r *Runtime) Work(n int64) {
	if r.node != nil {
		r.node.Work += n
	}
}

// Par evaluates f and g — sequentially, this is the baseline — recording
// a fork in the DAG so the parallel model sees the program's parallelism.
// The left result is rooted across g: g's allocations may trigger a
// collection, and unlike the hierarchical runtime there is only one heap.
func (r *Runtime) Par(f, g func(*Runtime) mem.Value) (mem.Value, mem.Value) {
	var l, rn, after *sim.Node
	saved := r.node
	if saved != nil {
		l, rn, after = saved.Fork()
		r.node = l
	}
	lv := f(r)
	fr := r.NewFrame(1)
	fr.Set(0, lv)
	if saved != nil {
		r.node = rn
	}
	gv := g(r)
	lv = fr.Get(0)
	fr.Pop()
	if saved != nil {
		r.node = after
	}
	return lv, gv
}

// ParFor runs body over [lo, hi), splitting like the parallel runtime.
func (r *Runtime) ParFor(lo, hi, grain int, body func(r *Runtime, lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		body(r, lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	r.Par(
		func(r *Runtime) mem.Value { r.ParFor(lo, mid, grain, body); return mem.Nil },
		func(r *Runtime) mem.Value { r.ParFor(mid, hi, grain, body); return mem.Nil },
	)
}

// Frame is a shadow-stack window, as in the hierarchical runtime.
type Frame struct {
	r    *Runtime
	base int
	n    int
}

// NewFrame pushes a frame of n root slots.
func (r *Runtime) NewFrame(n int) Frame {
	base := len(r.slots)
	for i := 0; i < n; i++ {
		r.slots = append(r.slots, mem.Nil)
	}
	return Frame{r: r, base: base, n: n}
}

// Set stores v in slot i.
func (f Frame) Set(i int, v mem.Value) {
	if i < 0 || i >= f.n {
		panic("globalrt: frame index out of range")
	}
	f.r.slots[f.base+i] = v
}

// Get returns slot i.
func (f Frame) Get(i int) mem.Value { return f.r.slots[f.base+i] }

// Ref returns slot i as a reference.
func (f Frame) Ref(i int) mem.Ref { return f.Get(i).Ref() }

// Pop releases the frame (LIFO).
func (f Frame) Pop() {
	if len(f.r.slots) != f.base+f.n {
		panic("globalrt: non-LIFO frame pop")
	}
	f.r.slots = f.r.slots[:f.base]
}

// guardedGC collects if the budget is spent, keeping vs updated.
func (r *Runtime) guardedGC(vs []mem.Value) {
	if r.sinceGC < r.budget {
		return
	}
	f := r.NewFrame(len(vs))
	for i, v := range vs {
		f.Set(i, v)
	}
	r.collect()
	for i := range vs {
		vs[i] = f.Get(i)
	}
	f.Pop()
}

// collect performs a semispace copying collection of the whole heap.
func (r *Runtime) collect() {
	old := r.al.Chunks
	oldSet := make(map[uint32]bool, len(old))
	for _, c := range old {
		oldSet[c.ID] = true
	}
	to := mem.NewAllocator(r.space, heapID)
	var queue []mem.Ref
	var copied int64

	forward := func(v mem.Value) mem.Value {
		if !v.IsRef() {
			return v
		}
		ref := v.Ref()
		if !oldSet[ref.Chunk()] {
			return v
		}
		hd := r.space.Header(ref)
		if hd.Kind() == mem.KForward {
			return r.space.Load(ref, 0)
		}
		n := hd.Len()
		nr := to.Alloc(hd.Kind(), n)
		if hd.Kind() == mem.KRaw {
			for i := 0; i < n; i++ {
				r.space.StoreRaw(nr, i, r.space.LoadRaw(ref, i))
			}
		} else {
			for i := 0; i < n; i++ {
				r.space.Store(nr, i, r.space.Load(ref, i))
			}
		}
		r.space.Forward(ref, nr)
		copied += int64(n + 1)
		queue = append(queue, nr)
		return nr.Value()
	}

	for i := range r.slots {
		r.slots[i] = forward(r.slots[i])
	}
	for len(queue) > 0 {
		q := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		hd := r.space.Header(q)
		if !hd.Kind().Scanned() {
			continue
		}
		for i := 0; i < hd.Len(); i++ {
			v := r.space.Load(q, i)
			if nv := forward(v); nv != v {
				r.space.Store(q, i, nv)
			}
		}
	}
	for _, c := range old {
		r.space.Release(c)
	}
	r.al = to
	r.sinceGC = 0
	r.Collections++
	r.CopiedWords += copied
	r.GCWork += copied
}

func (r *Runtime) bump(words int64) {
	r.sinceGC += words
	// Same shaped allocation cost as the hierarchical runtime (see
	// core.allocCost) so recorded DAGs are comparable.
	const linear = 256
	w := words
	if w > linear {
		w = linear + (w-linear)/32
	}
	r.Work(w)
}

// AllocTuple allocates an immutable tuple.
func (r *Runtime) AllocTuple(vs ...mem.Value) mem.Ref {
	r.guardedGC(vs)
	ref := r.al.AllocTuple(vs...)
	r.bump(int64(len(vs)) + 1)
	return ref
}

// AllocArray allocates a mutable array of n slots initialized to v.
func (r *Runtime) AllocArray(n int, v mem.Value) mem.Ref {
	vs := [1]mem.Value{v}
	r.guardedGC(vs[:])
	ref := r.al.AllocArray(n, vs[0])
	r.bump(int64(n) + 1)
	return ref
}

// AllocRef allocates a mutable ref cell.
func (r *Runtime) AllocRef(v mem.Value) mem.Ref {
	vs := [1]mem.Value{v}
	r.guardedGC(vs[:])
	ref := r.al.AllocRef(vs[0])
	r.bump(2)
	return ref
}

// AllocString allocates an immutable string object.
func (r *Runtime) AllocString(s string) mem.Ref {
	r.guardedGC(nil)
	ref := r.al.AllocString(s)
	r.bump(int64(2 + (len(s)+7)/8))
	return ref
}

// StringOf decodes a string object.
func (r *Runtime) StringOf(ref mem.Ref) string { return r.space.LoadString(ref) }

// Length returns the payload length of the object at ref.
func (r *Runtime) Length(ref mem.Ref) int { return int(r.space.Header(ref).Len()) }

// Read loads payload word i (no barrier: there is no hierarchy).
func (r *Runtime) Read(o mem.Ref, i int) mem.Value {
	r.Work(1)
	return r.space.Load(o, i)
}

// Write stores payload word i (no barrier).
func (r *Runtime) Write(o mem.Ref, i int, v mem.Value) {
	r.Work(1)
	r.space.Store(o, i, v)
}

// Deref reads a ref cell.
func (r *Runtime) Deref(cell mem.Ref) mem.Value { return r.Read(cell, 0) }

// Assign writes a ref cell.
func (r *Runtime) Assign(cell mem.Ref, v mem.Value) { r.Write(cell, 0, v) }

// CAS compares-and-swaps payload word i of o (single-threaded here, but
// the benchmarks are written against a common runtime surface).
func (r *Runtime) CAS(o mem.Ref, i int, old, new mem.Value) bool {
	r.Work(1)
	return r.space.CAS(o, i, old, new)
}

// ByteOf reads byte i of a string object.
func (r *Runtime) ByteOf(ref mem.Ref, i int) byte {
	r.Work(1)
	return byte(r.space.LoadRaw(ref, 1+i/8) >> (8 * (i % 8)))
}

// StrLen returns the byte length of a string object.
func (r *Runtime) StrLen(ref mem.Ref) int { return int(r.space.LoadRaw(ref, 0)) }
