package order

import (
	"math/rand"
	"testing"
)

func TestInsertSequence(t *testing.T) {
	l := NewList()
	a := l.Base().InsertAfter()
	b := a.InsertAfter()
	c := b.InsertAfter()
	if !Less(a, b) || !Less(b, c) || !Less(a, c) {
		t.Fatal("ordering after sequential inserts broken")
	}
	if Less(b, a) || Less(c, a) || Less(c, b) {
		t.Fatal("reverse comparisons must be false")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLeq(t *testing.T) {
	l := NewList()
	a := l.Base().InsertAfter()
	b := a.InsertAfter()
	if !Leq(a, a) || !Leq(a, b) || Leq(b, a) {
		t.Fatal("Leq broken")
	}
}

func TestInsertFront(t *testing.T) {
	// Repeated insertion right after the sentinel forces relabeling.
	l := NewList()
	var elems []*Elem
	for i := 0; i < 10000; i++ {
		elems = append(elems, l.Base().InsertAfter())
	}
	if !l.Validate() {
		t.Fatal("labels out of order")
	}
	// elems[i] was inserted before elems[i-1]'s position: later insertions
	// at the front come earlier in list order.
	for i := 1; i < len(elems); i++ {
		if !Less(elems[i], elems[i-1]) {
			t.Fatalf("front-insertion order broken at %d", i)
		}
	}
}

func TestInsertMiddleDense(t *testing.T) {
	// Hammer a single insertion point; every insert lands between two
	// adjacent labels, forcing frequent relabels.
	l := NewList()
	left := l.Base().InsertAfter()
	right := left.InsertAfter()
	var mids []*Elem
	for i := 0; i < 5000; i++ {
		mids = append(mids, left.InsertAfter())
	}
	if !l.Validate() {
		t.Fatal("labels out of order after dense middle inserts")
	}
	for _, m := range mids {
		if !Less(left, m) || !Less(m, right) {
			t.Fatal("middle insert escaped its interval")
		}
	}
}

func TestRandomInsertOrderMatchesReference(t *testing.T) {
	// Maintain a reference slice and compare all pairwise orders.
	rng := rand.New(rand.NewSource(1))
	l := NewList()
	ref := []*Elem{l.Base().InsertAfter()}
	for i := 0; i < 2000; i++ {
		k := rng.Intn(len(ref))
		e := ref[k].InsertAfter()
		ref = append(ref[:k+1], append([]*Elem{e}, ref[k+1:]...)...)
	}
	if !l.Validate() {
		t.Fatal("labels out of order")
	}
	for trial := 0; trial < 20000; trial++ {
		i, j := rng.Intn(len(ref)), rng.Intn(len(ref))
		if i == j {
			continue
		}
		if got, want := Less(ref[i], ref[j]), i < j; got != want {
			t.Fatalf("Less(ref[%d], ref[%d]) = %v, want %v", i, j, got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	l := NewList()
	a := l.Base().InsertAfter()
	b := a.InsertAfter()
	c := b.InsertAfter()
	b.Delete()
	if l.Len() != 2 {
		t.Fatalf("Len after delete = %d", l.Len())
	}
	if !Less(a, c) {
		t.Fatal("order broken after delete")
	}
	if !l.Validate() {
		t.Fatal("invariant broken after delete")
	}
}

func TestDeleteSentinelPanics(t *testing.T) {
	l := NewList()
	defer func() {
		if recover() == nil {
			t.Fatal("deleting sentinel must panic")
		}
	}()
	l.Base().Delete()
}

func TestEulerTourAncestorPattern(t *testing.T) {
	// Simulate the hierarchy's usage: each node holds (pre, post) elements;
	// child intervals nest inside the parent's.
	type node struct {
		pre, post *Elem
		children  []*node
	}
	l := NewList()
	root := &node{}
	root.pre = l.Base().InsertAfter()
	root.post = root.pre.InsertAfter()

	fork := func(p *node) *node {
		c := &node{}
		// Insert the child's interval just before the parent's post visit:
		// after the parent's last child (or pre).
		at := p.pre
		if len(p.children) > 0 {
			at = p.children[len(p.children)-1].post
		}
		c.pre = at.InsertAfter()
		c.post = c.pre.InsertAfter()
		p.children = append(p.children, c)
		return c
	}
	isAncestor := func(a, d *node) bool {
		return Leq(a.pre, d.pre) && Leq(d.post, a.post)
	}

	// Build a random tree and verify ancestry against parent pointers.
	rng := rand.New(rand.NewSource(7))
	nodes := []*node{root}
	parent := map[*node]*node{}
	for i := 0; i < 500; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := fork(p)
		parent[c] = p
		nodes = append(nodes, c)
	}
	refAncestor := func(a, d *node) bool {
		for x := d; x != nil; x = parent[x] {
			if x == a {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 20000; trial++ {
		a := nodes[rng.Intn(len(nodes))]
		d := nodes[rng.Intn(len(nodes))]
		if got, want := isAncestor(a, d), refAncestor(a, d); got != want {
			t.Fatalf("ancestor(%p,%p) = %v, want %v", a, d, got, want)
		}
	}
}

func BenchmarkInsertAfterSequential(b *testing.B) {
	l := NewList()
	e := l.Base().InsertAfter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e = e.InsertAfter()
	}
}

func BenchmarkInsertAfterFront(b *testing.B) {
	l := NewList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Base().InsertAfter()
	}
}

func BenchmarkLess(b *testing.B) {
	l := NewList()
	x := l.Base().InsertAfter()
	y := x.InsertAfter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Less(x, y) {
			b.Fatal("order broken")
		}
	}
}
