// Package order implements an order-maintenance list in the style of
// Dietz and Sleator: a sequence supporting InsertAfter, Delete and O(1)
// order queries, with amortized O(log n) relabeling on insertion.
//
// The heap hierarchy uses two elements per heap — the pre and post visits
// of an Euler tour — so that "H1 is an ancestor of H2" becomes the O(1)
// interval test pre(H1) ≤ pre(H2) ∧ post(H2) ≤ post(H1). This is the
// mechanism MPL-style runtimes use to make the entanglement barriers'
// ancestor checks constant-time (DESIGN.md decision 5).
//
// Mutations (InsertAfter, Delete, and the relabeling they trigger) must be
// serialized by the caller (package hierarchy holds the tree mutex).
// Order queries (Less, Leq) may run concurrently with mutations: tags are
// atomics, so racing queries are well-defined — but a query overlapping a
// relabel can observe a mix of old and new tags and answer wrongly.
// Callers detect that with a seqlock (hierarchy.Tree's version counter)
// and retry; the atomics here only guarantee the race is benign.
package order

import (
	"errors"
	"sync/atomic"
)

// tagSpace is the size of the circular label space. A power-of-two
// constant: rel's modulo is on the order-query hot path (every ancestor
// check of the entanglement barriers) and must compile to a mask, not a
// division. Exhaustion tests shrink a list's working space via List.space
// instead of touching this.
const tagSpace = uint64(1) << 62

// ErrLabelSpaceExhausted reports that the list can no longer represent a
// distinct label between two neighbors even after redistributing every
// label: the list holds on the order of tagSpace/2 elements (~2^61 heaps —
// unreachable in practice). InsertAfter panics with this error; the
// runtime's panic-safe fork–join recovers it and returns it from Run.
var ErrLabelSpaceExhausted = errors.New("order: label space exhausted")

// Elem is an element of an order-maintenance list.
type Elem struct {
	tag        atomic.Uint64
	prev, next *Elem
	list       *List
}

// List is an order-maintenance list. The zero value is not ready for use;
// call NewList.
type List struct {
	base *Elem // sentinel; the circular list is ordered by tag relative to base
	n    int   // number of elements, excluding the sentinel
	// space is the label space the mutation paths work in, tagSpace for
	// every real list. Exhaustion tests shrink it; since labels then stay
	// within [0, space) relative to the sentinel, the order queries'
	// constant-modulo arithmetic is unaffected.
	space uint64
}

// NewList creates an empty list.
func NewList() *List {
	l := &List{space: tagSpace}
	s := &Elem{list: l}
	s.prev, s.next = s, s
	l.base = s
	return l
}

// Len returns the number of elements in the list.
func (l *List) Len() int { return l.n }

// Base returns the sentinel element, which precedes every element ever
// inserted. It can be used as the insertion point for a new first element.
func (l *List) Base() *Elem { return l.base }

// rel returns e's label relative to the sentinel, the quantity that defines
// list order. The sentinel's tag never changes after NewList, so only e's
// own tag load can race a relabel.
func (e *Elem) rel() uint64 {
	return (e.tag.Load() - e.list.base.tag.Load()) % tagSpace
}

// Less reports whether a precedes b in the list. a and b must belong to the
// same list and be distinct from the sentinel (the sentinel precedes all).
func Less(a, b *Elem) bool { return a.rel() < b.rel() }

// Leq reports whether a precedes or equals b.
func Leq(a, b *Elem) bool { return a == b || Less(a, b) }

// InsertAfter inserts and returns a new element immediately after e.
func (e *Elem) InsertAfter() *Elem {
	l := e.list
	succ := e.next
	gap := gapBetween(e, succ)
	if gap < 2 {
		e.relabel()
		succ = e.next
		gap = gapBetween(e, succ)
		if gap < 2 {
			// Even a full redistribution could not open a gap: the list
			// genuinely outgrew the label space.
			panic(ErrLabelSpaceExhausted)
		}
	}
	n := &Elem{list: l}
	n.tag.Store(e.tag.Load() + gap/2)
	n.prev, n.next = e, succ
	e.next, succ.prev = n, n
	l.n++
	return n
}

// gapBetween returns the label distance from a to its successor b, in the
// circular label space relative to the sentinel. When b is the sentinel the
// remaining space up to tagSpace is available.
func gapBetween(a, b *Elem) uint64 {
	l := a.list
	ra := a.rel()
	if b == l.base {
		return l.space - ra
	}
	return b.rel() - ra
}

// relabel redistributes labels around e so that at least one unit of gap
// exists after e. Following Dietz–Sleator, it scans successively larger
// neighborhoods until it finds a range whose label span exceeds the square
// of its population, then spreads that range's elements evenly.
func (e *Elem) relabel() {
	l := e.list
	// Collect j elements starting at e, growing until the available label
	// span (to the element after the window, or to the end of the space)
	// exceeds j*j.
	j := uint64(1)
	end := e.next
	for {
		var span uint64
		if end == l.base {
			span = l.space - e.rel()
		} else {
			span = end.rel() - e.rel()
		}
		if span > j*j {
			break
		}
		if end == l.base {
			// The window grew to the whole tail after e and the space
			// there is still too dense. The windowed scan only ever sees
			// the labels from e forward, but the circular space between
			// the sentinel and e may be nearly empty (dense insertion at
			// one point skews labels toward it) — so redistribute every
			// element evenly across the full space and let the caller
			// re-measure its gap.
			l.rebalanceAll()
			return
		}
		end = end.next
		j++
	}
	var span uint64
	if end == l.base {
		span = l.space - e.rel()
	} else {
		span = end.rel() - e.rel()
	}
	// Spread the j elements in (e, end) evenly across span.
	step := span / j
	tag := e.tag.Load()
	for x := e.next; x != end; x = x.next {
		tag += step
		x.tag.Store(tag)
	}
}

// rebalanceAll redistributes every element's label evenly across the whole
// circular space: element i (1-based, in list order) gets relative label
// i*step with step = space/(n+1). This is the global fallback of the
// windowed Dietz–Sleator relabel, reached only when dense insertion has
// packed the entire region after some element; it restores a gap of at
// least step-1 everywhere, so insertion succeeds as long as the population
// stays below ~space/2.
func (l *List) rebalanceAll() {
	step := l.space / (uint64(l.n) + 1)
	if step < 2 {
		panic(ErrLabelSpaceExhausted)
	}
	tag := l.base.tag.Load()
	for x := l.base.next; x != l.base; x = x.next {
		tag += step
		x.tag.Store(tag)
	}
}

// Delete removes e from its list. Deleting the sentinel is a bug.
// The tag survives deletion, so order queries against a deleted element
// still return its last position rather than crashing (package hierarchy
// relies on this for reads racing a heap merge, which it detects and
// retries).
func (e *Elem) Delete() {
	if e == e.list.base {
		panic("order: deleting sentinel")
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.list.n--
	e.prev, e.next = nil, nil
}

// Validate checks the internal ordering invariant; it is used by tests.
func (l *List) Validate() bool {
	prev := uint64(0)
	first := true
	for x := l.base.next; x != l.base; x = x.next {
		r := x.rel()
		if !first && r <= prev {
			return false
		}
		if first && r == 0 {
			return false
		}
		prev, first = r, false
	}
	return true
}
