package order

import (
	"errors"
	"testing"
)

// smallList builds a list whose mutation paths work in an n-label space,
// so exhaustion is reachable without 2^61 insertions. Order queries are
// unaffected: labels stay within [0, n) relative to the sentinel.
func smallList(n uint64) *List {
	l := NewList()
	l.space = n
	return l
}

// Dense insertion at a single point packs the labels after that point; the
// pre-hardening relabel panicked once its window reached the whole tail,
// even though the rest of the circular space was empty. The global
// rebalance must absorb this until the list genuinely outgrows the space.
func TestDenseInsertionRebalances(t *testing.T) {
	l := smallList(256)
	anchor := l.Base().InsertAfter()
	// Repeatedly inserting after the anchor halves the same gap every
	// time — the densest possible insertion pattern.
	for i := 0; i < 100; i++ {
		anchor.InsertAfter()
		if !l.Validate() {
			t.Fatalf("ordering invariant broken after %d dense inserts", i+1)
		}
	}
	if l.Len() != 101 {
		t.Fatalf("Len = %d, want 101", l.Len())
	}
}

// Order queries must stay correct across a global rebalance.
func TestRebalancePreservesOrder(t *testing.T) {
	l := smallList(512)
	first := l.Base().InsertAfter()
	var elems []*Elem
	elems = append(elems, first)
	// Alternate a dense point with appends at the end so the rebalance
	// has to move both crowded and sparse regions.
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			elems = append(elems[:1], append([]*Elem{first.InsertAfter()}, elems[1:]...)...)
		} else {
			elems = append(elems, elems[len(elems)-1].InsertAfter())
		}
	}
	for i := 0; i < len(elems); i++ {
		for j := i + 1; j < len(elems); j++ {
			if !Less(elems[i], elems[j]) {
				t.Fatalf("Less(%d, %d) = false after rebalances", i, j)
			}
		}
	}
}

// Genuine exhaustion (population ~ tagSpace/2) must surface as the typed
// error the runtime's cancellation path understands, not a string panic.
func TestGenuineExhaustionTypedPanic(t *testing.T) {
	l := smallList(16)
	e := l.Base().InsertAfter()
	defer func() {
		v := recover()
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrLabelSpaceExhausted) {
			t.Fatalf("recovered %v, want ErrLabelSpaceExhausted", v)
		}
		if uint64(l.Len()) >= l.space {
			t.Fatalf("accepted %d elements into a %d-label space", l.Len(), l.space)
		}
	}()
	for i := 0; i < 64; i++ {
		e.InsertAfter()
	}
	t.Fatal("64 inserts into a 16-label space did not exhaust it")
}
