package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mplgo/internal/chaos"
	"mplgo/internal/core"
	"mplgo/internal/mem"
	"mplgo/internal/telemetry"
	"mplgo/internal/trace"
)

// startServer runs a Server's dispatcher as the root task of a fresh
// runtime and returns it with a stop function that drains and reports the
// runtime's exit error.
func startServer(cfg core.Config, scfg Config) (*Server, func() error) {
	rt := core.New(cfg)
	srv := New(rt, scfg)
	done := make(chan error, 1)
	go func() {
		_, err := rt.Run(srv.Run)
		done <- err
	}()
	return srv, func() error {
		srv.Close()
		return <-done
	}
}

// churnRequest is the standard test workload: allocate, publish, read back.
func churnRequest(n int) func(*core.Task) mem.Value {
	return func(t *core.Task) mem.Value {
		f := t.NewFrame(1)
		defer f.Pop()
		f.Set(0, t.AllocArray(8, mem.Int(0)).Value())
		var sum int64
		for i := 0; i < n; i++ {
			t.Write(f.Ref(0), i%8, mem.Int(int64(i)))
			sum += t.Read(f.Ref(0), i%8).AsInt()
			t.AllocArray(16, mem.Int(sum)) // garbage
		}
		return mem.Int(sum)
	}
}

// slowRequest allocates until its fault domain dies.
func slowRequest(t *core.Task) mem.Value {
	for t.ScopeErr() == nil {
		t.AllocArray(16, mem.Int(1))
	}
	return mem.Nil
}

func TestServeCompletesRequests(t *testing.T) {
	srv, stop := startServer(
		core.Config{Procs: 4, HeapBudgetWords: 2048},
		Config{MaxConcurrent: 4},
	)
	const n = 40
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Retry sheds: the point here is completion accounting, not
			// admission pressure.
			for {
				v, err := srv.Submit(churnRequest(50))
				if err == nil {
					vals[i] = v.AsInt()
					return
				}
				if !errors.Is(err, core.ErrShed) {
					errs[i] = err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatalf("runtime exit: %v", err)
	}
	want := churnSum(50)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if vals[i] != want {
			t.Fatalf("request %d: result %d, want %d", i, vals[i], want)
		}
	}
	if got := srv.Stats.Completed.Load(); got != n {
		t.Fatalf("completed = %d, want %d", got, n)
	}
	if err := srv.Audit(); err != nil {
		t.Fatal(err)
	}
}

// churnSum is churnRequest's expected result, computed directly.
func churnSum(n int) int64 {
	var slots [8]int64
	var sum int64
	for i := 0; i < n; i++ {
		slots[i%8] = int64(i)
		sum += slots[i%8]
	}
	return sum
}

func TestServeDeadlineTyped(t *testing.T) {
	srv, stop := startServer(
		core.Config{Procs: 2, HeapBudgetWords: 1024},
		Config{MaxConcurrent: 2, Deadline: 2 * time.Millisecond},
	)
	_, err := srv.Submit(slowRequest)
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("slow request error = %v, want ErrDeadlineExceeded", err)
	}
	v, err := srv.Submit(func(t *core.Task) mem.Value { return mem.Int(5) })
	if err != nil || v.AsInt() != 5 {
		t.Fatalf("fast request after a deadline kill: v=%v err=%v", v, err)
	}
	if stopErr := stop(); stopErr != nil {
		t.Fatalf("runtime exit: %v", stopErr)
	}
	if n := srv.Stats.DeadlineExceeded.Load(); n != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", n)
	}
	if err := srv.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBudgetTyped(t *testing.T) {
	srv, stop := startServer(
		core.Config{Procs: 2, HeapBudgetWords: 1024},
		Config{MaxConcurrent: 2, BudgetWords: 2048},
	)
	_, err := srv.Submit(slowRequest)
	if !errors.Is(err, core.ErrHeapLimit) {
		t.Fatalf("greedy request error = %v, want ErrHeapLimit", err)
	}
	if stopErr := stop(); stopErr != nil {
		t.Fatalf("runtime exit: %v (a scope budget must not cancel the runtime)", stopErr)
	}
	if n := srv.Stats.BudgetExceeded.Load(); n != 1 {
		t.Fatalf("budget_exceeded = %d, want 1", n)
	}
	if err := srv.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestServeShedsTyped(t *testing.T) {
	// Deterministic overload: one token held by a blocker request, one
	// queue slot filled behind it — every further Submit must shed with
	// the typed overload response, immediately.
	srv, stop := startServer(
		core.Config{Procs: 2, HeapBudgetWords: 2048},
		Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 3 * time.Millisecond},
	)
	blocking := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := srv.Submit(func(t *core.Task) mem.Value {
			close(blocking)
			<-release
			return mem.Int(1)
		}); err != nil {
			t.Errorf("blocker request: %v", err)
		}
	}()
	<-blocking // the token is held; the dispatcher is mid-batch
	queued := make(chan struct{})
	go func() {
		defer wg.Done()
		close(queued)
		if _, err := srv.Submit(func(t *core.Task) mem.Value { return mem.Int(2) }); err != nil {
			t.Errorf("queued request: %v", err)
		}
	}()
	<-queued
	// Give the queued Submit a moment to land in the buffer.
	for i := 0; len(srv.queue) == 0 && i < 1000; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	const n = 8
	for i := 0; i < n; i++ {
		_, err := srv.Submit(churnRequest(10))
		var ov *Overload
		if !errors.As(err, &ov) {
			t.Fatalf("flood request %d: error = %v, want *Overload", i, err)
		}
		if !errors.Is(err, core.ErrShed) {
			t.Fatalf("*Overload does not unwrap to ErrShed: %v", err)
		}
		if ov.RetryAfter != 3*time.Millisecond {
			t.Fatalf("RetryAfter = %v, want 3ms", ov.RetryAfter)
		}
	}
	close(release)
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatalf("runtime exit: %v", err)
	}
	if got := srv.Stats.Shed.Load(); got != n {
		t.Fatalf("shed = %d, want %d", got, n)
	}
	if got := srv.Stats.Completed.Load(); got != 2 {
		t.Fatalf("completed = %d, want 2", got)
	}
	if err := srv.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestServePanicNeverStrandsWaiters pins the liveness contract when a
// request body panics. A single-request batch runs inline on the
// dispatcher task, so the panic unwinds through Run itself — past the
// batch sweep — and historically would have stranded every blocked Submit
// forever. Now: the panicking Submit (and any concurrent one) resolves
// with the typed *core.PanicError, the runtime records the same error,
// later Submits shed with "closing", and the post-mortem Audit balances.
func TestServePanicNeverStrandsWaiters(t *testing.T) {
	srv, stop := startServer(
		core.Config{Procs: 2, HeapBudgetWords: 2048},
		// MaxConcurrent 1 forces batches of one — the inline-execution path.
		Config{MaxConcurrent: 1, QueueDepth: 8},
	)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// No retry loop: once the dispatcher dies the server sheds
			// "closing" forever, so a shed is a terminal answer here — the
			// assertion is that every Submit returns *something*.
			_, errs[i] = srv.Submit(func(t *core.Task) mem.Value {
				if i == 0 {
					panic("request blew up")
				}
				return churnRequest(50)(t)
			})
		}(i)
	}
	wg.Wait() // the real assertion: no Submit hangs
	var pe *core.PanicError
	if !errors.As(errs[0], &pe) {
		t.Fatalf("panicking request: error = %v, want *core.PanicError", errs[0])
	}
	for i, err := range errs[1:] {
		if err != nil && !errors.As(err, &pe) && !errors.Is(err, core.ErrShed) {
			t.Fatalf("concurrent request %d: unexpected error type %v", i+1, err)
		}
	}
	runErr := stop()
	if !errors.As(runErr, &pe) {
		t.Fatalf("runtime exit = %v, want *core.PanicError", runErr)
	}
	if _, err := srv.Submit(churnRequest(1)); !errors.Is(err, core.ErrShed) {
		t.Fatalf("post-mortem Submit: error = %v, want typed shed", err)
	}
	if err := srv.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestServeFootprintFlatAcrossBursts is the flat-footprint audit: with the
// concurrent collector reclaiming the dispatcher heap's merged garbage
// while batches run, residency after each burst drains must stay flat —
// not grow linearly with the number of bursts served.
func TestServeFootprintFlatAcrossBursts(t *testing.T) {
	srv, stop := startServer(
		core.Config{Procs: 4, HeapBudgetWords: 512, CGC: true, CGCThresholdWords: 1 << 12},
		Config{MaxConcurrent: 4},
	)
	wave := func() {
		var wg sync.WaitGroup
		for i := 0; i < 24; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := srv.Submit(churnRequest(200))
					if err == nil {
						return
					}
					if !errors.Is(err, core.ErrShed) {
						t.Errorf("wave request: %v", err)
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}()
		}
		wg.Wait()
	}
	const waves = 5
	live := make([]int64, waves)
	for w := 0; w < waves; w++ {
		wave()
		live[w] = srv.rt.Space().LiveWords()
	}
	if err := stop(); err != nil {
		t.Fatalf("runtime exit: %v", err)
	}
	if err := srv.Audit(); err != nil {
		t.Fatal(err)
	}
	// Linear accumulation would put the last wave near waves× the first;
	// flat-with-noise stays within a small factor.
	if live[waves-1] > 3*live[0] {
		t.Fatalf("footprint grew across bursts: live words per wave %v", live)
	}
}

func TestServeWatermarkSheds(t *testing.T) {
	// An absurdly low live-words watermark: everything sheds, nothing runs.
	srv, stop := startServer(
		core.Config{Procs: 1},
		Config{MaxConcurrent: 1, MaxLiveWords: 1},
	)
	// The root heap exists but is near-empty; trip it with a sentinel
	// request admitted before the watermark config matters? No — the
	// watermark reads the space gauge, which counts chunk words as soon as
	// the dispatcher's runtime materializes its root allocator chunk. Force
	// that with one successful pre-watermark admission path: the watermark
	// is checked per-Submit, so the first Submit may pass on a fresh space.
	var sawShed bool
	for i := 0; i < 8; i++ {
		_, err := srv.Submit(churnRequest(100))
		if err != nil {
			var ov *Overload
			if !errors.As(err, &ov) || !strings.Contains(ov.Reason, "watermark") {
				t.Fatalf("expected a watermark shed, got %v", err)
			}
			sawShed = true
			break
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("runtime exit: %v", err)
	}
	if !sawShed {
		t.Fatal("live-words watermark of 1 never shed")
	}
}

func TestServeCloseShedsNewSubmits(t *testing.T) {
	srv, stop := startServer(core.Config{Procs: 1}, Config{})
	if err := stop(); err != nil {
		t.Fatalf("runtime exit: %v", err)
	}
	_, err := srv.Submit(func(t *core.Task) mem.Value { return mem.Nil })
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != "closing" {
		t.Fatalf("post-close Submit error = %v, want closing overload", err)
	}
}

// TestServeMetricsSource wires the Counters into the telemetry exposition
// and checks the serve metrics appear beside the runtime's.
func TestServeMetricsSource(t *testing.T) {
	rt := core.New(core.Config{Procs: 1})
	srv := New(rt, Config{})
	srv.Stats.Admitted.Add(3)
	srv.Stats.Shed.Add(2)
	var buf bytes.Buffer
	if err := telemetry.WriteMetrics(&buf, rt, &srv.Stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mplgo_requests_admitted_total 3",
		"mplgo_requests_shed_total 2",
		"mplgo_requests_deadline_exceeded_total 0",
		"mplgo_tokens_in_use 0",
		"mplgo_steals_total", // runtime metrics still present
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exposition format: every line is a comment or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestServeCountersReachTrace is the satellite's end-to-end check: the
// dispatcher samples the admission counters into the trace rings, and they
// survive the Chrome export + summary round trip by name.
func TestServeCountersReachTrace(t *testing.T) {
	tracer := trace.NewTracer(2, 1<<14)
	rt := core.New(core.Config{Procs: 2, HeapBudgetWords: 2048, Tracer: tracer})
	srv := New(rt, Config{MaxConcurrent: 2, Deadline: 2 * time.Millisecond})
	trace.Enable()
	done := make(chan error, 1)
	go func() {
		_, err := rt.Run(srv.Run)
		done <- err
	}()
	if _, err := srv.Submit(churnRequest(50)); err != nil {
		t.Fatalf("churn request: %v", err)
	}
	if _, err := srv.Submit(slowRequest); !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("slow request error = %v, want ErrDeadlineExceeded", err)
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("runtime exit: %v", err)
	}
	trace.Disable()

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tracer); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	// tokens_in_use is exported as a track even when it sampled zero.
	if !strings.Contains(raw, `"tokens_in_use"`) {
		t.Fatal("tokens_in_use track missing from Chrome export")
	}
	s, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []trace.Counter{trace.CtrRequestsAdmitted, trace.CtrDeadlineExceeded} {
		if max, ok := s.CounterMax[c]; !ok || max == 0 {
			t.Fatalf("%v missing from trace summary: %v", c, s.CounterMax)
		}
	}
}

// --- chaos soaks -----------------------------------------------------------

func chaosSeeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		var seeds []int64
		for _, s := range strings.Split(env, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS: bad seed %q: %v", s, err)
			}
			seeds = append(seeds, n)
		}
		return seeds
	}
	return []int64{1, 2, 3, 5, 8, 13, 21, 42}
}

// dumpChaosFailure mirrors internal/core's failure artifact: seed, config,
// error, injection report, and the serve counters, written to
// $CHAOS_DUMP_DIR for the CI job to upload.
func dumpChaosFailure(t *testing.T, rt *core.Runtime, srv *Server, seed int64, runErr error) {
	dir := os.Getenv("CHAOS_DUMP_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos dump: %v", err)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "test: %s\nseed: %d\nerror: %v\n\n%s\n", t.Name(), seed, runErr, rt.ChaosReport())
	srv.Stats.AppendMetrics(func(name, _, _ string, val int64) {
		fmt.Fprintf(&b, "%s %d\n", name, val)
	})
	if ierr := rt.CheckInvariants(); ierr != nil {
		fmt.Fprintf(&b, "\ninvariant dump:\n%v\n", ierr)
	}
	name := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d-%s.txt",
		seed, strings.ReplaceAll(t.Name(), "/", "_")))
	if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
		t.Logf("chaos dump: %v", err)
	} else {
		t.Logf("chaos failure dumped to %s", name)
	}
}

// TestChaosServeOverload is the overload soak: a request flood against a
// one-token server under the full injection preset — Burst pads batches,
// ShedStorm refuses admissions, DeadlinePin expires scopes at pin sites,
// and the CGC points stall collection under it all. Every seed must drain
// to a clean post-burst state: balanced pins (no leaks through scoped
// unwinds), no stuck gates (strict audit), no leaked tokens or stranded
// requests (serve audit), and a footprint that came back down after the
// burst (live words well under the burst's total allocation).
func TestChaosServeOverload(t *testing.T) {
	var bursts, storms uint64
	for _, seed := range chaosSeeds(t) {
		opts := chaos.Soak()
		cfg := core.Config{
			Procs: 4, HeapBudgetWords: 512, Seed: seed, Chaos: &opts,
			CGC: true, CGCThresholdWords: 1 << 12,
		}
		rt := core.New(cfg)
		srv := New(rt, Config{
			MaxConcurrent: 2, QueueDepth: 2,
			Deadline:    2 * time.Millisecond,
			BudgetWords: 1 << 14,
			RetryAfter:  200 * time.Microsecond,
		})
		done := make(chan error, 1)
		go func() {
			_, err := rt.Run(srv.Run)
			done <- err
		}()
		const n = 32
		var wg sync.WaitGroup
		var untyped int64
		var mu sync.Mutex
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := srv.Submit(churnRequest(100 + i))
				if err != nil &&
					!errors.Is(err, core.ErrShed) &&
					!errors.Is(err, core.ErrDeadlineExceeded) &&
					!errors.Is(err, core.ErrHeapLimit) {
					mu.Lock()
					untyped++
					t.Logf("seed %d request %d: untyped error %v", seed, i, err)
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		srv.Close()
		if err := <-done; err != nil {
			dumpChaosFailure(t, rt, srv, seed, err)
			t.Fatalf("seed %d: runtime error: %v\n%s", seed, err, rt.ChaosReport())
		}
		if untyped != 0 {
			dumpChaosFailure(t, rt, srv, seed, errors.New("untyped request errors"))
			t.Fatalf("seed %d: %d requests failed with untyped errors", seed, untyped)
		}
		if err := srv.Audit(); err != nil {
			dumpChaosFailure(t, rt, srv, seed, err)
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s := rt.EntStats(); s.Pins != s.Unpins {
			dumpChaosFailure(t, rt, srv, seed, fmt.Errorf("pins %d != unpins %d", s.Pins, s.Unpins))
			t.Fatalf("seed %d: pins %d != unpins %d after overload drain", seed, s.Pins, s.Unpins)
		}
		if ierr := rt.CheckInvariants(); ierr != nil {
			dumpChaosFailure(t, rt, srv, seed, ierr)
			t.Fatalf("seed %d: invariants after overload: %v\n%s", seed, ierr, rt.ChaosReport())
		}
		// Flat footprint after the burst drains: residency must be a small
		// fraction of what the burst allocated in total — i.e. the garbage
		// of shed, killed, and completed requests alike was reclaimed, not
		// accumulated. LiveWords counts whole-chunk capacity, so the ratio
		// only means anything once the burst allocated well past chunk
		// granularity; tiny seeds (most requests shed or killed at birth)
		// are covered by TestServeFootprintFlatAcrossBursts instead.
		if live, total := rt.Space().LiveWords(), rt.Space().TotalAllocWords(); total > 1<<17 && live*4 > total {
			dumpChaosFailure(t, rt, srv, seed,
				fmt.Errorf("footprint not flat: %d live of %d allocated", live, total))
			t.Fatalf("seed %d: footprint not flat after drain: %d live words of %d allocated",
				seed, live, total)
		}
		ch := rt.Chaos()
		bursts += ch.Injected(chaos.Burst)
		storms += ch.Injected(chaos.ShedStorm)
	}
	if bursts == 0 {
		t.Fatal("Burst injection never fired across the seed matrix — rate wired wrong?")
	}
	if storms == 0 {
		t.Fatal("ShedStorm injection never fired across the seed matrix — rate wired wrong?")
	}
}

// TestChaosServeDeterministicShedStorm: the ShedStorm decision stream is
// part of the seeded replay — same seed, same submission order, same shed
// pattern at P=1.
func TestChaosServeDeterministicShedStorm(t *testing.T) {
	run := func() string {
		opts := chaos.Options{ShedStorm: 512}
		rt := core.New(core.Config{Procs: 1, Seed: 9, Chaos: &opts})
		srv := New(rt, Config{MaxConcurrent: 1})
		done := make(chan error, 1)
		go func() {
			_, err := rt.Run(srv.Run)
			done <- err
		}()
		var pattern strings.Builder
		for i := 0; i < 24; i++ {
			_, err := srv.Submit(func(t *core.Task) mem.Value { return mem.Int(int64(i)) })
			if errors.Is(err, core.ErrShed) {
				pattern.WriteByte('s')
			} else if err == nil {
				pattern.WriteByte('.')
			} else {
				t.Fatalf("request %d: %v", i, err)
			}
		}
		srv.Close()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		return pattern.String()
	}
	first := run()
	if !strings.Contains(first, "s") {
		t.Fatalf("ShedStorm at 512/1024 never shed: %q", first)
	}
	for i := 0; i < 2; i++ {
		if got := run(); got != first {
			t.Fatalf("shed pattern diverged across identical runs:\n%q\nvs\n%q", got, first)
		}
	}
}
