// Package serve turns the runtime into a request-processing service with
// request-scoped fault domains (core.Scope): each admitted request runs as
// its own scoped task with its own leaf heap, under a per-request deadline
// and heap-word budget, and the service degrades by shedding — never by
// cancelling the runtime.
//
// The moving parts:
//
//   - Admission. Submit is the admission controller: a bounded queue is
//     the waiting room, the dispatcher's batch width (Config.MaxConcurrent)
//     is the concurrency-token pool, and watermark checks close the loop on
//     the runtime's own telemetry gauges (live words, pinned objects,
//     retained chunks) — the signals /metrics exports are the signals that
//     shed. A refused request fails fast with a typed *Overload wrapping
//     core.ErrShed, carrying a retry hint; nothing about it ever enters the
//     runtime.
//
//   - Dispatch. The dispatcher runs as a task inside Runtime.Run (Server.Run
//     is the root body). It drains the queue into batches and runs each
//     batch with ParFor at grain 1, so every request gets its own leaf heap,
//     forked under the dispatcher's heap and merged back at the join —
//     shared caches the dispatcher allocated in its (ancestor) heap are
//     reached from request tasks through ordinary entangled reads.
//
//   - Fault isolation. Each request body runs under a core.Scope whose
//     deadline is measured from *arrival* (queueing counts against it) and
//     whose budget bounds the request's allocation. A request that dies —
//     deadline, budget, explicit cancel — unwinds through its joins like any
//     scoped subtree (pins released by the merges it owes) and reports its
//     typed cause through its Outcome, while the rest of the batch runs to
//     completion. Only a runtime-level error (panic, global heap limit)
//     fails the batch, and even then every waiter is answered.
//
// Chaos: with the injector enabled, Burst pads dispatch batches with
// synthetic churn requests, ShedStorm refuses admission with tokens free,
// and DeadlinePin (in core's read barrier) expires scoped deadlines at pin
// sites — the overload schedule space, explored deterministically.
package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mplgo/internal/chaos"
	"mplgo/internal/core"
	"mplgo/internal/mem"
	"mplgo/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// MaxConcurrent is the concurrency-token pool: the dispatcher runs at
	// most this many requests in one parallel batch. Default 4.
	MaxConcurrent int
	// QueueDepth bounds the waiting room; a full queue sheds. Default
	// 4 × MaxConcurrent.
	QueueDepth int
	// Deadline is the per-request deadline measured from arrival (0 = none).
	// A request that exceeds it — in queue or in flight — resolves with
	// core.ErrDeadlineExceeded.
	Deadline time.Duration
	// BudgetWords is the per-request heap-word budget (0 = unlimited). A
	// request that allocates past it resolves with core.ErrHeapLimit,
	// without touching the runtime-wide limit.
	BudgetWords int64
	// Watermarks: when a gauge is above its (positive) limit at admission
	// time, the request is shed until the gauge recovers. They mirror the
	// /metrics exposition: MaxLiveWords vs mplgo_live_words, MaxPinned vs
	// mplgo_ent_pinned_now, MaxRetainedChunks vs
	// mplgo_gc_retained_chunks_total.
	MaxLiveWords      int64
	MaxPinned         int64
	MaxRetainedChunks int64
	// RetryAfter is the hint carried by *Overload (default 10ms).
	RetryAfter time.Duration
}

func (c *Config) fill() {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 10 * time.Millisecond
	}
}

// Overload is the typed admission refusal: the service is over capacity
// (or a watermark tripped) and the caller should back off and retry.
// errors.Is(err, core.ErrShed) matches it.
type Overload struct {
	Reason     string        // which limit refused: "queue", "closing", a watermark, "chaos"
	RetryAfter time.Duration // backoff hint
}

func (o *Overload) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", o.Reason, o.RetryAfter)
}

func (o *Overload) Unwrap() error { return core.ErrShed }

// Outcome resolves one submitted request.
type Outcome struct {
	V   mem.Value
	Err error
}

// Counters are the service's own metrics, exported next to the runtime's:
// AppendMetrics satisfies telemetry.Source, and the dispatcher samples the
// same values into the trace rings (CtrRequestsAdmitted &c) per batch.
// All fields are atomics; read them freely from any goroutine.
type Counters struct {
	Admitted         atomic.Int64 // requests accepted into the queue
	Shed             atomic.Int64 // requests refused with *Overload
	Completed        atomic.Int64 // requests resolved without error
	DeadlineExceeded atomic.Int64 // requests resolved with ErrDeadlineExceeded
	BudgetExceeded   atomic.Int64 // requests resolved with a scope ErrHeapLimit
	Failed           atomic.Int64 // requests resolved with any other error
	BurstInjected    atomic.Int64 // synthetic chaos-burst requests dispatched
	TokensInUse      atomic.Int64 // width of the batch currently in flight
}

// AppendMetrics emits the service counters in the telemetry.Source shape.
func (c *Counters) AppendMetrics(emit func(name, help, typ string, val int64)) {
	emit("mplgo_requests_admitted_total", "Requests accepted by admission control", "counter", c.Admitted.Load())
	emit("mplgo_requests_shed_total", "Requests refused with a typed overload response", "counter", c.Shed.Load())
	emit("mplgo_requests_completed_total", "Requests resolved without error", "counter", c.Completed.Load())
	emit("mplgo_requests_deadline_exceeded_total", "Requests that exceeded their scoped deadline", "counter", c.DeadlineExceeded.Load())
	emit("mplgo_requests_budget_exceeded_total", "Requests that exceeded their scoped heap budget", "counter", c.BudgetExceeded.Load())
	emit("mplgo_requests_failed_total", "Requests resolved with any other error", "counter", c.Failed.Load())
	emit("mplgo_requests_burst_injected_total", "Synthetic chaos-burst requests dispatched", "counter", c.BurstInjected.Load())
	emit("mplgo_tokens_in_use", "Concurrency tokens held by the batch in flight", "gauge", c.TokensInUse.Load())
}

// request is one queued unit of work.
type request struct {
	fn        func(*core.Task) mem.Value
	done      chan Outcome
	enq       time.Time
	replied   atomic.Bool
	synthetic bool // chaos-burst filler: no waiter, not counted as admitted
}

// resolve answers the request exactly once (the batch sweep may race the
// per-request resolution when the runtime cancels mid-batch) and reports
// whether this call was the one that resolved it — the winner also owns
// bumping the outcome counters, so they balance Admitted exactly.
func (r *request) resolve(o Outcome) bool {
	if r.replied.CompareAndSwap(false, true) {
		r.done <- o
		return true
	}
	return false
}

// Server couples the admission controller with the scoped-batch dispatcher.
// Create with New, run the dispatcher as the runtime's root body
// (rt.Run(srv.Run) — or call srv.Run from a subtask), Submit from any
// goroutine, Close to drain.
type Server struct {
	cfg   Config
	rt    *core.Runtime
	Stats Counters

	queue chan *request

	// Shutdown protocol. closed refuses new admissions; subMu lets Close
	// flush Submit calls that already passed the closed check (they hold
	// the read side across their enqueue); quiesced, set by Close after
	// that flush, tells the dispatcher that a drained queue is final.
	closed   atomic.Bool
	subMu    sync.RWMutex
	quiesced atomic.Bool
}

// New creates a Server over rt.
func New(rt *core.Runtime, cfg Config) *Server {
	cfg.fill()
	return &Server{cfg: cfg, rt: rt, queue: make(chan *request, cfg.QueueDepth)}
}

// Config returns the server's filled configuration.
func (s *Server) Config() Config { return s.cfg }

// shed refuses with a typed overload response.
func (s *Server) shed(reason string) error {
	s.Stats.Shed.Add(1)
	return &Overload{Reason: reason, RetryAfter: s.cfg.RetryAfter}
}

// overWatermark names the first tripped telemetry watermark, if any.
func (s *Server) overWatermark() (string, bool) {
	if m := s.cfg.MaxLiveWords; m > 0 && s.rt.Space().LiveWords() > m {
		return "live-words watermark", true
	}
	if m := s.cfg.MaxPinned; m > 0 {
		if es := s.rt.EntStats(); es.Pins-es.Unpins > m {
			return "pinned watermark", true
		}
	}
	if m := s.cfg.MaxRetainedChunks; m > 0 && s.rt.RetainedChunks() > m {
		return "retained-chunks watermark", true
	}
	return "", false
}

// Submit runs fn as one request and blocks until its Outcome: admission
// (queue space, watermarks, chaos) happens here, execution happens on the
// dispatcher's next batch. Safe from any goroutine — Submit is the
// service's network edge. A shed returns (*Overload, wrapping
// core.ErrShed) without blocking; an admitted request's error is its
// scope's cause (core.ErrDeadlineExceeded, core.ErrHeapLimit, …) or a
// runtime-level error if the whole computation died.
func (s *Server) Submit(fn func(*core.Task) mem.Value) (mem.Value, error) {
	r := &request{fn: fn, done: make(chan Outcome, 1), enq: time.Now()}

	s.subMu.RLock()
	if s.closed.Load() {
		s.subMu.RUnlock()
		return mem.Nil, s.shed("closing")
	}
	if reason, over := s.overWatermark(); over {
		s.subMu.RUnlock()
		return mem.Nil, s.shed(reason)
	}
	if ch := s.rt.Chaos(); ch != nil && ch.Should(chaos.ShedStorm) {
		s.subMu.RUnlock()
		return mem.Nil, s.shed("chaos")
	}
	select {
	case s.queue <- r:
		s.Stats.Admitted.Add(1)
		s.subMu.RUnlock()
	default:
		s.subMu.RUnlock()
		return mem.Nil, s.shed("queue")
	}

	out := <-r.done
	return out.V, out.Err
}

// Close drains the service: no further admissions, every request already
// admitted is still served, and the dispatcher's Run returns once the
// queue is empty. Safe to call more than once, from any goroutine.
func (s *Server) Close() {
	s.closed.Store(true)
	// Flush in-flight Submits: after the write lock, every Submit has
	// either enqueued or been refused, so "closed && queue empty" is a
	// final state the dispatcher can trust.
	s.subMu.Lock()
	s.subMu.Unlock() //nolint — the empty critical section IS the flush
	s.quiesced.Store(true)
}

// quantum is the dispatcher's idle poll interval while the queue is empty:
// long enough to stay invisible in profiles, short enough that Close and
// fresh arrivals are picked up promptly.
const quantum = 200 * time.Microsecond

// nextBatch blocks for the next batch of up to MaxConcurrent requests, or
// returns nil when the service has quiesced. Burst chaos pads the batch
// with synthetic churn requests beyond the token limit — exactly the
// admission-window overshoot a real arrival spike would cause.
func (s *Server) nextBatch() []*request {
	var first *request
	for first == nil {
		select {
		case first = <-s.queue:
		case <-time.After(quantum):
			if s.quiesced.Load() {
				select {
				case first = <-s.queue:
				default:
					return nil
				}
			}
		}
	}
	batch := []*request{first}
collect:
	for len(batch) < s.cfg.MaxConcurrent {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		default:
			break collect
		}
	}
	if ch := s.rt.Chaos(); ch != nil && ch.Should(chaos.Burst) {
		for i, n := 0, ch.Spin(chaos.Burst); i < n; i++ {
			batch = append(batch, &request{
				fn:        burstChurn,
				done:      make(chan Outcome, 1),
				enq:       time.Now(),
				synthetic: true,
			})
			s.Stats.BurstInjected.Add(1)
		}
	}
	return batch
}

// burstChurn is the synthetic chaos-burst body: enough allocation and
// publication to stress the batch's heap fan-out, no result anyone reads.
func burstChurn(t *core.Task) mem.Value {
	f := t.NewFrame(1)
	defer f.Pop()
	f.Set(0, t.AllocArray(64, mem.Int(0)).Value())
	for i := 0; i < 64; i++ {
		t.Write(f.Ref(0), i, mem.Int(int64(i)))
	}
	return f.Get(0)
}

// Run is the dispatcher: the root (or a dedicated) task's body. It drains
// admission batches until Close, running each batch as a grain-1 ParFor so
// every request owns a leaf heap under this task's heap — anything this
// task allocated before calling Run (caches, tables) is ancestor state the
// requests reach via entangled reads. Returns mem.Nil when drained.
//
// Liveness under panics: a panic that unwinds through the dispatcher (a
// single-request batch runs inline on this task, so a request panic can
// bypass the branch guards; so can a bug in serve itself) must not strand
// blocked Submits. Run closes the server, answers everything in flight
// with the *core.PanicError, and re-panics so the runtime's own guard
// still records the error and cancels — the Submit contract ("every
// admitted request is resolved exactly once") holds even then.
func (s *Server) Run(t *core.Task) mem.Value {
	defer func() {
		if v := recover(); v != nil {
			err := asPanicError(v)
			s.Close() // flushes in-flight Submits; later ones shed "closing"
			s.drainWith(err)
			panic(err)
		}
	}()
	for {
		batch := s.nextBatch()
		if batch == nil {
			s.emitCounters(t)
			return mem.Nil
		}
		s.runBatch(t, batch)
		s.emitCounters(t)
		if t.Runtime().Cancelled() {
			// The computation is unwinding; answer whoever is still queued
			// rather than stranding their Submits.
			s.failPending()
			return mem.Nil
		}
	}
}

// runBatch executes one admission batch in parallel, one leaf heap per
// request, and resolves every request exactly once — including when the
// runtime cancels mid-batch and ParFor unwinds early.
func (s *Server) runBatch(t *core.Task, batch []*request) {
	s.Stats.TokensInUse.Store(int64(len(batch)))
	defer func() {
		if v := recover(); v != nil {
			// A panic unwound through the batch (inline request execution,
			// or ParFor's own join path): answer the whole batch before the
			// panic continues, and release the tokens so a post-mortem
			// Audit still balances.
			err := asPanicError(v)
			for _, r := range batch {
				if r.resolve(Outcome{Err: err}) && !r.synthetic {
					s.Stats.Failed.Add(1)
				}
			}
			s.Stats.TokensInUse.Store(0)
			panic(err)
		}
	}()
	t.ParFor(0, len(batch), 1, func(ct *core.Task, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.runOne(ct, batch[i])
		}
	})
	s.Stats.TokensInUse.Store(0)
	if err := s.batchError(); err != nil {
		for _, r := range batch {
			if r.resolve(Outcome{Err: err}) && !r.synthetic {
				s.Stats.Failed.Add(1)
			}
		}
	}
}

// runOne runs a single request under its own fault domain and resolves it.
func (s *Server) runOne(t *core.Task, r *request) {
	var deadline time.Time
	if s.cfg.Deadline > 0 {
		deadline = r.enq.Add(s.cfg.Deadline)
	}
	sc := core.NewScope(t.Scope(), deadline, s.cfg.BudgetWords)
	v, err := t.RunScoped(sc, r.fn)
	if r.resolve(Outcome{V: v, Err: err}) && !r.synthetic {
		switch {
		case err == nil:
			s.Stats.Completed.Add(1)
		case errors.Is(err, core.ErrDeadlineExceeded):
			s.Stats.DeadlineExceeded.Add(1)
		case errors.Is(err, core.ErrHeapLimit) && !s.rt.Cancelled():
			s.Stats.BudgetExceeded.Add(1)
		default:
			s.Stats.Failed.Add(1)
		}
	}
}

// batchError is the runtime-level error that aborted a batch, if any.
func (s *Server) batchError() error {
	if !s.rt.Cancelled() {
		return nil
	}
	if err := s.rt.Err(); err != nil {
		return err
	}
	return core.ErrCancelled
}

// failPending resolves everything still queued after a runtime-level
// abort.
func (s *Server) failPending() {
	s.drainWith(s.batchError())
}

// drainWith answers every request still in the queue with err.
func (s *Server) drainWith(err error) {
	for {
		select {
		case r := <-s.queue:
			if r.resolve(Outcome{Err: err}) && !r.synthetic {
				s.Stats.Failed.Add(1)
			}
		default:
			return
		}
	}
}

// asPanicError coerces a recovered panic value to the *core.PanicError the
// runtime's own guard would produce, preserving an already-wrapped one so
// the stack captured closest to the panic site survives the re-panic.
func asPanicError(v any) *core.PanicError {
	if pe, ok := v.(*core.PanicError); ok {
		return pe
	}
	return &core.PanicError{Value: v, Stack: debug.Stack()}
}

// emitCounters samples the service counters into the dispatcher strand's
// trace ring (single-writer: this runs on the task's own strand, between
// batches). Free when untraced.
func (s *Server) emitCounters(t *core.Task) {
	t.EmitCounter(trace.CtrRequestsAdmitted, uint64(s.Stats.Admitted.Load()))
	t.EmitCounter(trace.CtrRequestsShed, uint64(s.Stats.Shed.Load()))
	t.EmitCounter(trace.CtrDeadlineExceeded, uint64(s.Stats.DeadlineExceeded.Load()))
	t.EmitCounter(trace.CtrTokensInUse, uint64(s.Stats.TokensInUse.Load()))
}

// Audit checks the service's own post-drain invariants — call it after
// Close and after the runtime's Run has returned. It verifies no token is
// still held, no request is stranded in the queue, and the resolution
// counters balance the admission counter (every admitted request was
// resolved exactly once). The caller pairs it with the runtime-level
// audits (CheckInvariants, pins == unpins).
func (s *Server) Audit() error {
	if n := s.Stats.TokensInUse.Load(); n != 0 {
		return fmt.Errorf("serve: %d concurrency tokens leaked", n)
	}
	if n := len(s.queue); n != 0 {
		return fmt.Errorf("serve: %d requests stranded in queue", n)
	}
	adm := s.Stats.Admitted.Load()
	res := s.Stats.Completed.Load() + s.Stats.DeadlineExceeded.Load() +
		s.Stats.BudgetExceeded.Load() + s.Stats.Failed.Load()
	if adm != res {
		return fmt.Errorf("serve: admitted %d != resolved %d (completed+deadline+budget+failed)", adm, res)
	}
	return nil
}
