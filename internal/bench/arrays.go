package bench

import (
	"mplgo/internal/mem"
	"mplgo/internal/workload"
)

// ---------------------------------------------------------------- quickhull
// Convex hull by the quickhull algorithm. Coordinates are integers, the
// farthest-point selection tie-breaks on the smaller index, and filtered
// candidate lists preserve input order, so the hull — and the checksum —
// is identical across implementations and schedules.

func hullInput(n int) [][2]int64 { return workload.Points(seedHull, n, 1_000_000) }

// hullCross is the orientation of p relative to the directed line a→b:
// positive when p is strictly to the left.
func hullCross(ax, ay, bx, by, px, py int64) int64 {
	return (bx-ax)*(py-ay) - (by-ay)*(px-ax)
}

func hullTerm(x, y int64) int64 { return x*3 + y*7 + 13 }

const hullGrain = 1024

// quickhullRT reads coordinates through the runtime (two heap arrays) while
// candidate index lists flow through Go slices (immediate integers).
func quickhullRT[T RT[T, F], F FrameI](t T, n int) int64 {
	pts := hullInput(n)
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i, p := range pts {
		xs[i], ys[i] = p[0], p[1]
	}
	// Frame the first array across the second load: both live in this
	// task's own heap, which its collections may move.
	f0 := t.NewFrame(2)
	f0.Set(0, loadInts[T, F](t, xs).Value())
	f0.Set(1, loadInts[T, F](t, ys).Value())
	px, py := f0.Ref(0), f0.Ref(1)
	f0.Pop()

	coord := func(t T, i int32) (int64, int64) {
		return t.Read(px, int(i)).AsInt(), t.Read(py, int(i)).AsInt()
	}

	// farthest returns the candidate farthest left of a→b (min index on
	// ties), or -1 if none is strictly left.
	var farthest func(t T, ax, ay, bx, by int64, cand []int32) (int32, int64)
	farthest = func(t T, ax, ay, bx, by int64, cand []int32) (int32, int64) {
		if len(cand) <= hullGrain {
			best, bd := int32(-1), int64(0)
			for _, i := range cand {
				x, y := coord(t, i)
				d := hullCross(ax, ay, bx, by, x, y)
				if d > bd || (d == bd && d > 0 && (best == -1 || i < best)) {
					best, bd = i, d
				}
			}
			return best, bd
		}
		mid := len(cand) / 2
		var li, ri int32
		var ld, rd int64
		t.Par(
			func(t T) mem.Value { li, ld = farthest(t, ax, ay, bx, by, cand[:mid]); return mem.Nil },
			func(t T) mem.Value { ri, rd = farthest(t, ax, ay, bx, by, cand[mid:]); return mem.Nil },
		)
		if rd > ld || (rd == ld && rd > 0 && (li == -1 || (ri != -1 && ri < li))) {
			return ri, rd
		}
		return li, ld
	}

	// filterLeft keeps candidates strictly left of a→b, preserving order.
	var filterLeft func(t T, ax, ay, bx, by int64, cand []int32) []int32
	filterLeft = func(t T, ax, ay, bx, by int64, cand []int32) []int32 {
		if len(cand) <= hullGrain {
			var out []int32
			for _, i := range cand {
				x, y := coord(t, i)
				if hullCross(ax, ay, bx, by, x, y) > 0 {
					out = append(out, i)
				}
			}
			return out
		}
		mid := len(cand) / 2
		var l, r []int32
		t.Par(
			func(t T) mem.Value { l = filterLeft(t, ax, ay, bx, by, cand[:mid]); return mem.Nil },
			func(t T) mem.Value { r = filterLeft(t, ax, ay, bx, by, cand[mid:]); return mem.Nil },
		)
		return append(l, r...)
	}

	// rec adds hull vertices strictly between a and b (left side).
	var rec func(t T, a, b int32, cand []int32) int64
	rec = func(t T, a, b int32, cand []int32) int64 {
		if len(cand) == 0 {
			return 0
		}
		ax, ay := coord(t, a)
		bx, by := coord(t, b)
		far, d := farthest(t, ax, ay, bx, by, cand)
		if far < 0 || d <= 0 {
			return 0
		}
		fx, fy := coord(t, far)
		var s1, s2 []int32
		t.Par(
			func(t T) mem.Value { s1 = filterLeft(t, ax, ay, fx, fy, cand); return mem.Nil },
			func(t T) mem.Value { s2 = filterLeft(t, fx, fy, bx, by, cand); return mem.Nil },
		)
		var c1, c2 int64
		t.Par(
			func(t T) mem.Value { c1 = rec(t, a, far, s1); return mem.Nil },
			func(t T) mem.Value { c2 = rec(t, far, b, s2); return mem.Nil },
		)
		return hullTerm(fx, fy) + c1 + c2
	}

	// Extremes (deterministic preprocessing, identical across impls).
	imin, imax := int32(0), int32(0)
	for i, p := range pts {
		if p[0] < pts[imin][0] || (p[0] == pts[imin][0] && p[1] < pts[imin][1]) {
			imin = int32(i)
		}
		if p[0] > pts[imax][0] || (p[0] == pts[imax][0] && p[1] > pts[imax][1]) {
			imax = int32(i)
		}
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	ax, ay := coord(t, imin)
	bx, by := coord(t, imax)
	var upper, lower []int32
	t.Par(
		func(t T) mem.Value { upper = filterLeft(t, ax, ay, bx, by, all); return mem.Nil },
		func(t T) mem.Value { lower = filterLeft(t, bx, by, ax, ay, all); return mem.Nil },
	)
	sum := hullTerm(ax, ay) + hullTerm(bx, by)
	var cu, cl int64
	t.Par(
		func(t T) mem.Value { cu = rec(t, imin, imax, upper); return mem.Nil },
		func(t T) mem.Value { cl = rec(t, imax, imin, lower); return mem.Nil },
	)
	return sum + cu + cl
}

func quickhullNative(n int) int64 {
	pts := hullInput(n)
	coord := func(i int32) (int64, int64) { return pts[i][0], pts[i][1] }

	farthest := func(ax, ay, bx, by int64, cand []int32) (int32, int64) {
		best, bd := int32(-1), int64(0)
		for _, i := range cand {
			x, y := coord(i)
			d := hullCross(ax, ay, bx, by, x, y)
			if d > bd || (d == bd && d > 0 && (best == -1 || i < best)) {
				best, bd = i, d
			}
		}
		return best, bd
	}
	filterLeft := func(ax, ay, bx, by int64, cand []int32) []int32 {
		var out []int32
		for _, i := range cand {
			x, y := coord(i)
			if hullCross(ax, ay, bx, by, x, y) > 0 {
				out = append(out, i)
			}
		}
		return out
	}
	var rec func(a, b int32, cand []int32) int64
	rec = func(a, b int32, cand []int32) int64 {
		if len(cand) == 0 {
			return 0
		}
		ax, ay := coord(a)
		bx, by := coord(b)
		far, d := farthest(ax, ay, bx, by, cand)
		if far < 0 || d <= 0 {
			return 0
		}
		fx, fy := coord(far)
		return hullTerm(fx, fy) + rec(a, far, filterLeft(ax, ay, fx, fy, cand)) +
			rec(far, b, filterLeft(fx, fy, bx, by, cand))
	}

	imin, imax := int32(0), int32(0)
	for i, p := range pts {
		if p[0] < pts[imin][0] || (p[0] == pts[imin][0] && p[1] < pts[imin][1]) {
			imin = int32(i)
		}
		if p[0] > pts[imax][0] || (p[0] == pts[imax][0] && p[1] > pts[imax][1]) {
			imax = int32(i)
		}
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	ax, ay := coord(imin)
	bx, by := coord(imax)
	return hullTerm(ax, ay) + hullTerm(bx, by) +
		rec(imin, imax, filterLeft(ax, ay, bx, by, all)) +
		rec(imax, imin, filterLeft(bx, by, ax, ay, all))
}

// ---------------------------------------------------------------- tokens / wc

const textGrain = 16384

func isSep(b byte) bool { return b == ' ' || b == '\n' }

func tokensRT[T RT[T, F], F FrameI](t T, n int) int64 {
	text := workload.Text(seedText, n)
	str := t.AllocString(text)
	ln := t.StrLen(str)
	return parSum[T, F](t, 0, ln, textGrain, func(t T, lo, hi int) int64 {
		var c int64
		for i := lo; i < hi; i++ {
			b := t.ByteOf(str, i)
			prev := byte(' ')
			if i > 0 {
				prev = t.ByteOf(str, i-1)
			}
			if !isSep(b) && isSep(prev) {
				c++
			}
		}
		return c
	})
}

func tokensNative(n int) int64 {
	text := workload.Text(seedText, n)
	var c int64
	for i := 0; i < len(text); i++ {
		prev := byte(' ')
		if i > 0 {
			prev = text[i-1]
		}
		if !isSep(text[i]) && isSep(prev) {
			c++
		}
	}
	return c
}

func wcRT[T RT[T, F], F FrameI](t T, n int) int64 {
	text := workload.Text(seedText, n)
	str := t.AllocString(text)
	ln := t.StrLen(str)
	lines := parSum[T, F](t, 0, ln, textGrain, func(t T, lo, hi int) int64 {
		var c int64
		for i := lo; i < hi; i++ {
			if t.ByteOf(str, i) == '\n' {
				c++
			}
		}
		return c
	})
	words := tokensCount[T, F](t, str, ln)
	return lines*1_000_003 + words*31 + int64(ln)
}

func tokensCount[T RT[T, F], F FrameI](t T, str mem.Ref, ln int) int64 {
	return parSum[T, F](t, 0, ln, textGrain, func(t T, lo, hi int) int64 {
		var c int64
		for i := lo; i < hi; i++ {
			b := t.ByteOf(str, i)
			prev := byte(' ')
			if i > 0 {
				prev = t.ByteOf(str, i-1)
			}
			if !isSep(b) && isSep(prev) {
				c++
			}
		}
		return c
	})
}

func wcNative(n int) int64 {
	text := workload.Text(seedText, n)
	var lines int64
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			lines++
		}
	}
	return lines*1_000_003 + tokensNative(n)*31 + int64(len(text))
}

// ---------------------------------------------------------------- spmv
// Sparse matrix–vector product: rows in parallel write (immediate) results
// into a shared output array — int stores into an ancestor array take no
// barrier, which is part of what "shielding disentangled data" buys.

const spmvNNZ = 16

func spmvRT[T RT[T, F], F FrameI](t T, rows int) int64 {
	rowPtr, col, val := workload.CSR(seedSpmv, rows, spmvNNZ)
	xvec := workload.Ints(seedSpmv+1, rows, 1000)

	rp64 := make([]int64, len(rowPtr))
	for i, v := range rowPtr {
		rp64[i] = int64(v)
	}
	col64 := make([]int64, len(col))
	for i, v := range col {
		col64[i] = int64(v)
	}
	// Frame each array across the subsequent loads (own-heap collections
	// may move earlier arrays).
	f0 := t.NewFrame(5)
	f0.Set(0, loadInts[T, F](t, rp64).Value())
	f0.Set(1, loadInts[T, F](t, col64).Value())
	f0.Set(2, loadInts[T, F](t, val).Value())
	f0.Set(3, loadInts[T, F](t, xvec).Value())
	f0.Set(4, t.AllocArray(rows, mem.Int(0)).Value())
	hRP, hCol, hVal, hX, hY := f0.Ref(0), f0.Ref(1), f0.Ref(2), f0.Ref(3), f0.Ref(4)
	f0.Pop()

	t.ParFor(0, rows, 32, func(t T, lo, hi int) {
		for i := lo; i < hi; i++ {
			s := int64(0)
			start := int(t.Read(hRP, i).AsInt())
			end := int(t.Read(hRP, i+1).AsInt())
			for k := start; k < end; k++ {
				c := int(t.Read(hCol, k).AsInt())
				s += t.Read(hVal, k).AsInt() * t.Read(hX, c).AsInt()
			}
			t.Write(hY, i, mem.Int(s))
		}
	})
	return parSum[T, F](t, 0, rows, 64, func(t T, lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += t.Read(hY, i).AsInt()
		}
		return s
	})
}

func spmvNative(rows int) int64 {
	rowPtr, col, val := workload.CSR(seedSpmv, rows, spmvNNZ)
	xvec := workload.Ints(seedSpmv+1, rows, 1000)
	var sum int64
	for i := 0; i < rows; i++ {
		s := int64(0)
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			s += val[k] * xvec[col[k]]
		}
		sum += s
	}
	return sum
}
