package bench

import (
	"mplgo/internal/mem"
	"mplgo/internal/workload"
)

// Additional suite entries beyond the core fifteen, mirroring the breadth
// of the paper's PBBS-derived benchmark list: text search, histogramming,
// parallel filtering with a scan, pointer-heavy tree folding, and dense
// linear algebra.

const (
	seedGrep   = 108
	seedHist   = 109
	seedFilter = 110
	seedTree   = 111
	seedMatmul = 112
)

// ---------------------------------------------------------------- grep
// Counts occurrences (possibly overlapping) of a fixed pattern in a text,
// in parallel over chunks with boundary overlap.

const grepPattern = "abra"

func grepText(n int) string {
	// Seeded text with the pattern sprinkled in deterministically.
	base := []byte(workload.Text(seedGrep, n))
	rng := workload.NewRNG(seedGrep + 1)
	for i := 0; i+len(grepPattern) < len(base); i += 50 + rng.Intn(200) {
		copy(base[i:], grepPattern)
	}
	return string(base)
}

func grepRT[T RT[T, F], F FrameI](t T, n int) int64 {
	text := grepText(n)
	str := t.AllocString(text)
	ln := t.StrLen(str)
	m := len(grepPattern)
	return parSum[T, F](t, 0, ln, textGrain, func(t T, lo, hi int) int64 {
		var c int64
		for i := lo; i < hi && i+m <= ln; i++ {
			ok := true
			for j := 0; j < m; j++ {
				if t.ByteOf(str, i+j) != grepPattern[j] {
					ok = false
					break
				}
			}
			if ok {
				c++
			}
		}
		return c
	})
}

func grepNative(n int) int64 {
	text := grepText(n)
	var c int64
	for i := 0; i+len(grepPattern) <= len(text); i++ {
		if text[i:i+len(grepPattern)] == grepPattern {
			c++
		}
	}
	return c
}

// ---------------------------------------------------------------- histogram
// Bins values into a shared count array with CAS increments. The counts
// are immediates, so despite heavy cross-task sharing this is
// *disentangled* — no pointers to concurrent data ever flow — which makes
// it a good witness for the shielding claim under contention.

const histBins = 128

func histRT[T RT[T, F], F FrameI](t T, n int) int64 {
	xs := workload.Ints(seedHist, n, 1<<30)
	f := t.NewFrame(1)
	f.Set(0, t.AllocArray(histBins, mem.Int(0)).Value())
	t.ParFor(0, n, 1024, func(t T, lo, hi int) {
		for i := lo; i < hi; i++ {
			bin := int(xs[i] % histBins)
			for {
				old := t.Read(f.Ref(0), bin)
				if t.CAS(f.Ref(0), bin, old, mem.Int(old.AsInt()+1)) {
					break
				}
			}
		}
	})
	var sum int64
	for i := 0; i < histBins; i++ {
		sum += t.Read(f.Ref(0), i).AsInt() * int64(i+1)
	}
	f.Pop()
	return sum
}

func histNative(n int) int64 {
	xs := workload.Ints(seedHist, n, 1<<30)
	var bins [histBins]int64
	for _, x := range xs {
		bins[x%histBins]++
	}
	var sum int64
	for i, c := range bins {
		sum += c * int64(i+1)
	}
	return sum
}

// ---------------------------------------------------------------- filter
// Parallel filter in the PBBS style: a flags pass, an exclusive prefix sum
// over per-block counts, and a pack pass into an exactly-sized output.

const filterGrain = 4096

func filterKeep(x int64) bool { return x%3 == 0 }

func filterRT[T RT[T, F], F FrameI](t T, n int) int64 {
	xs := workload.Ints(seedFilter, n, 1<<40)
	f := t.NewFrame(2)
	f.Set(0, loadInts[T, F](t, xs).Value())

	// Per-block counts.
	nblocks := (n + filterGrain - 1) / filterGrain
	counts := make([]int64, nblocks)
	t.ParFor(0, nblocks, 1, func(t T, lo, hi int) {
		in := f.Ref(0)
		for b := lo; b < hi; b++ {
			var c int64
			end := min((b+1)*filterGrain, n)
			for i := b * filterGrain; i < end; i++ {
				if filterKeep(t.Read(in, i).AsInt()) {
					c++
				}
			}
			counts[b] = c
		}
	})
	// Exclusive scan (sequential: nblocks is tiny relative to n).
	var total int64
	offsets := make([]int64, nblocks)
	for b, c := range counts {
		offsets[b] = total
		total += c
	}
	// Pack.
	f.Set(1, t.AllocArray(int(total), mem.Int(0)).Value())
	t.ParFor(0, nblocks, 1, func(t T, lo, hi int) {
		in, out := f.Ref(0), f.Ref(1)
		for b := lo; b < hi; b++ {
			k := offsets[b]
			end := min((b+1)*filterGrain, n)
			for i := b * filterGrain; i < end; i++ {
				v := t.Read(in, i)
				if filterKeep(v.AsInt()) {
					t.Write(out, int(k), v)
					k++
				}
			}
		}
	})
	// Checksum over the packed output.
	sum := parSum[T, F](t, 0, int(total), filterGrain, func(t T, lo, hi int) int64 {
		out := f.Ref(1)
		var s int64
		for i := lo; i < hi; i++ {
			s += t.Read(out, i).AsInt() % 1_000_003
		}
		return s
	})
	f.Pop()
	return sum + total
}

func filterNative(n int) int64 {
	xs := workload.Ints(seedFilter, n, 1<<40)
	var sum, total int64
	for _, x := range xs {
		if filterKeep(x) {
			sum += x % 1_000_003
			total++
		}
	}
	return sum + total
}

// ---------------------------------------------------------------- treesum
// Builds a balanced binary tree of boxed leaves in parallel (pointer-heavy
// allocation across child heaps, merged up at joins), then folds it in
// parallel. Exercises deep cross-heap up-pointer structure under GC.

const treeGrain = 10 // subtree height below which building is sequential

func treeVal(i int64) int64 { return integrand(i)*7 + 1 }

func treesumRT[T RT[T, F], F FrameI](t T, height int) int64 {
	// build returns a tree of 2^h leaves covering [base, base+2^h).
	var build func(t T, h int, base int64) mem.Ref
	build = func(t T, h int, base int64) mem.Ref {
		if h == 0 {
			return t.AllocTuple(mem.Int(1), mem.Int(treeVal(base)))
		}
		if h <= treeGrain {
			l := build(t, h-1, base)
			f := t.NewFrame(1)
			f.Set(0, l.Value())
			r := build(t, h-1, base+1<<uint(h-1))
			node := t.AllocTuple(mem.Int(0), f.Get(0), r.Value())
			f.Pop()
			return node
		}
		lv, rv := t.Par(
			func(t T) mem.Value { return build(t, h-1, base).Value() },
			func(t T) mem.Value { return build(t, h-1, base+1<<uint(h-1)).Value() },
		)
		return t.AllocTuple(mem.Int(0), lv, rv)
	}
	var fold func(t T, node mem.Ref, h int) int64
	fold = func(t T, node mem.Ref, h int) int64 {
		if t.Read(node, 0).AsInt() == 1 {
			return t.Read(node, 1).AsInt()
		}
		l := t.Read(node, 1).Ref()
		r := t.Read(node, 2).Ref()
		if h <= treeGrain {
			return fold(t, l, h-1) + fold(t, r, h-1)
		}
		a, b := t.Par(
			func(t T) mem.Value { return mem.Int(fold(t, l, h-1)) },
			func(t T) mem.Value { return mem.Int(fold(t, r, h-1)) },
		)
		return a.AsInt() + b.AsInt()
	}
	root := build(t, height, 0)
	return fold(t, root, height)
}

func treesumNative(height int) int64 {
	var rec func(h int, base int64) int64
	rec = func(h int, base int64) int64 {
		if h == 0 {
			return treeVal(base)
		}
		return rec(h-1, base) + rec(h-1, base+1<<uint(h-1))
	}
	return rec(height, 0)
}

// ---------------------------------------------------------------- matmul
// Dense n×n integer matrix product, rows in parallel.

func matmulRT[T RT[T, F], F FrameI](t T, n int) int64 {
	a := workload.Ints(seedMatmul, n*n, 100)
	bm := workload.Ints(seedMatmul+1, n*n, 100)
	f := t.NewFrame(3)
	f.Set(0, loadInts[T, F](t, a).Value())
	f.Set(1, loadInts[T, F](t, bm).Value())
	f.Set(2, t.AllocArray(n*n, mem.Int(0)).Value())
	t.ParFor(0, n, 4, func(t T, lo, hi int) {
		ha, hb, hc := f.Ref(0), f.Ref(1), f.Ref(2)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				var s int64
				for k := 0; k < n; k++ {
					s += t.Read(ha, i*n+k).AsInt() * t.Read(hb, k*n+j).AsInt()
				}
				t.Write(hc, i*n+j, mem.Int(s))
			}
		}
	})
	sum := parSum[T, F](t, 0, n*n, 4096, func(t T, lo, hi int) int64 {
		hc := f.Ref(2)
		var s int64
		for i := lo; i < hi; i++ {
			s += t.Read(hc, i).AsInt() % 1_000_003
		}
		return s
	})
	f.Pop()
	return sum
}

func matmulNative(n int) int64 {
	a := workload.Ints(seedMatmul, n*n, 100)
	bm := workload.Ints(seedMatmul+1, n*n, 100)
	var sum int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * bm[k*n+j]
			}
			sum += s % 1_000_003
		}
	}
	return sum
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
