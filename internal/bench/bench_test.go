package bench

import (
	"testing"

	"mplgo/internal/entangle"
	"mplgo/internal/globalrt"
	"mplgo/mpl"
)

// small test sizes per benchmark (the defaults are for the experiments).
var testSizes = map[string]int{
	"fib":       20,
	"mcss":      20_000,
	"primes":    8_000,
	"integrate": 50_000,
	"nqueens":   7,
	"msort":     6_000,
	"quickhull": 4_000,
	"tokens":    40_000,
	"wc":        40_000,
	"spmv":      200,
	"dedup":     5_000,
	"bfs":       4_000,
	"counter":   4_000,
	"memoize":   10_000,
	"pipeline":  5_000,
	"grep":      30_000,
	"histogram": 10_000,
	"filter":    30_000,
	"treesum":   10,
	"matmul":    24,
}

func TestRegistryComplete(t *testing.T) {
	if len(All) != 20 {
		t.Fatalf("suite has %d benchmarks", len(All))
	}
	seen := map[string]bool{}
	entangled := 0
	for _, b := range All {
		if b.Name == "" || b.MPL == nil || b.Global == nil || b.Native == nil || b.DefaultN <= 0 {
			t.Fatalf("benchmark %q incomplete", b.Name)
		}
		if seen[b.Name] {
			t.Fatalf("duplicate name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Entangled {
			entangled++
		}
		if _, ok := testSizes[b.Name]; !ok {
			t.Fatalf("no test size for %q", b.Name)
		}
	}
	if entangled != 5 {
		t.Fatalf("expected 5 entangled benchmarks, got %d", entangled)
	}
	if _, ok := ByName("fib"); !ok {
		t.Fatal("ByName broken")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName found a ghost")
	}
	if len(Names()) != len(All) {
		t.Fatal("Names broken")
	}
}

// TestImplementationsAgree is the suite's central correctness check: for
// every benchmark, the native, global-heap, and hierarchical (several
// configurations) implementations must produce identical checksums.
func TestImplementationsAgree(t *testing.T) {
	for _, b := range All {
		b := b
		n := testSizes[b.Name]
		t.Run(b.Name, func(t *testing.T) {
			want := b.Native(n)

			g := globalrt.New(1 << 14)
			if got := b.Global(g, n); got != want {
				t.Fatalf("global = %d, native = %d", got, want)
			}

			cfgs := []mpl.Config{
				{Procs: 1},
				{Procs: 1, HeapBudgetWords: 4096},
				{Procs: 4, HeapBudgetWords: 1 << 14},
			}
			if !b.Entangled {
				cfgs = append(cfgs, mpl.Config{Procs: 2, Mode: mpl.Detect})
			}
			for _, cfg := range cfgs {
				rt := mpl.New(cfg)
				var got int64
				_, err := rt.Run(func(tk *mpl.Task) mpl.Value {
					got = b.MPL(tk, n)
					return mpl.Int(got)
				})
				if err != nil {
					t.Fatalf("cfg %+v: %v", cfg, err)
				}
				if got != want {
					t.Fatalf("cfg %+v: mpl = %d, native = %d", cfg, got, want)
				}
			}
		})
	}
}

// TestEntangledBenchmarksEntangle checks the suite's labeling: entangled
// benchmarks must produce entangled reads under parallel execution, and
// detect mode must reject them; disentangled ones must run clean.
func TestEntangledBenchmarksEntangle(t *testing.T) {
	for _, b := range All {
		b := b
		n := testSizes[b.Name]
		t.Run(b.Name, func(t *testing.T) {
			// Procs=1 with fork-time heaps: entanglement shows even
			// without real parallelism because heap boundaries exist.
			rt := mpl.New(mpl.Config{Procs: 2})
			_, err := rt.Run(func(tk *mpl.Task) mpl.Value { return mpl.Int(b.MPL(tk, n)) })
			if err != nil {
				t.Fatal(err)
			}
			s := rt.EntStats()
			if b.Entangled && s.EntangledReads == 0 {
				t.Fatalf("%s labeled entangled but produced no entangled reads (%+v)", b.Name, s)
			}
			if !b.Entangled && s.EntangledReads != 0 {
				t.Fatalf("%s labeled disentangled but entangled: %+v", b.Name, s)
			}
		})
	}
}

func TestDetectAbortsEntangledSuite(t *testing.T) {
	for _, b := range All {
		if !b.Entangled {
			continue
		}
		n := testSizes[b.Name]
		rt := mpl.New(mpl.Config{Procs: 1, Mode: mpl.Detect})
		_, err := rt.Run(func(tk *mpl.Task) mpl.Value { return mpl.Int(b.MPL(tk, n)) })
		if err == nil {
			t.Fatalf("%s: detect mode accepted an entangled program", b.Name)
		}
	}
	_ = entangle.ErrEntangled
}
