// Package bench implements the paper's benchmark suite three ways:
//
//   - on the hierarchical runtime with entanglement management (mpl),
//   - on the global-heap baseline runtime (globalrt), and
//   - natively in Go (the language-comparison datum).
//
// Each benchmark is written once against the generic RT surface below, so
// the hierarchical and global runs execute the same algorithm on the same
// simulated-heap object model; only the memory system differs. All three
// implementations of a benchmark must produce identical checksums on the
// same workload seed — the suite's tests enforce this.
//
// The disentangled half of the suite uses effects only within a task's own
// path (the regime old MPL supported); the entangled half communicates
// through shared mutable state across concurrent tasks (impossible under
// detect-and-abort, the territory this paper opens).
package bench

import (
	"mplgo/internal/globalrt"
	"mplgo/internal/mem"
	"mplgo/mpl"
)

// FrameI is the common shadow-stack frame surface of both runtimes.
type FrameI interface {
	Set(i int, v mem.Value)
	Get(i int) mem.Value
	Ref(i int) mem.Ref
	Pop()
}

// RT is the common runtime surface the generic benchmark bodies run on.
// *mpl.Task and *globalrt.Runtime both satisfy it (with their own frame
// types), so one implementation serves both memory systems.
type RT[T any, F FrameI] interface {
	Par(f, g func(T) mem.Value) (mem.Value, mem.Value)
	ParFor(lo, hi, grain int, body func(T, int, int))
	AllocTuple(vs ...mem.Value) mem.Ref
	AllocArray(n int, v mem.Value) mem.Ref
	AllocRef(v mem.Value) mem.Ref
	AllocString(s string) mem.Ref
	Read(o mem.Ref, i int) mem.Value
	Write(o mem.Ref, i int, v mem.Value)
	CAS(o mem.Ref, i int, old, new mem.Value) bool
	Length(o mem.Ref) int
	StringOf(o mem.Ref) string
	ByteOf(o mem.Ref, i int) byte
	StrLen(o mem.Ref) int
	NewFrame(n int) F
	Work(n int64)
}

// Compile-time checks that both runtimes satisfy RT.
var (
	_ RT[*mpl.Task, mpl.Frame]              = (*mpl.Task)(nil)
	_ RT[*globalrt.Runtime, globalrt.Frame] = (*globalrt.Runtime)(nil)
)

// Benchmark is one suite entry.
type Benchmark struct {
	Name string
	// Entangled marks benchmarks whose tasks communicate through shared
	// mutable state (rejected by detect-and-abort MPL).
	Entangled bool
	// DefaultN is the default problem size.
	DefaultN int
	// MPL runs the benchmark on the hierarchical runtime.
	MPL func(t *mpl.Task, n int) int64
	// Global runs it on the global-heap baseline runtime.
	Global func(g *globalrt.Runtime, n int) int64
	// Native runs it in plain Go.
	Native func(n int) int64
}

// All is the registry: the core disentangled suite, the entangled suite,
// then the extended disentangled benchmarks (extra.go).
var All = []Benchmark{
	{"fib", false, 25,
		func(t *mpl.Task, n int) int64 { return fibRT[*mpl.Task, mpl.Frame](t, int64(n)) },
		func(g *globalrt.Runtime, n int) int64 {
			return fibRT[*globalrt.Runtime, globalrt.Frame](g, int64(n))
		},
		func(n int) int64 { return fibNative(int64(n)) }},
	{"mcss", false, 100_000,
		func(t *mpl.Task, n int) int64 { return mcssRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return mcssRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		mcssNative},
	{"primes", false, 40_000,
		func(t *mpl.Task, n int) int64 { return primesRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return primesRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		primesNative},
	{"integrate", false, 300_000,
		func(t *mpl.Task, n int) int64 { return integrateRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return integrateRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		integrateNative},
	{"nqueens", false, 9,
		func(t *mpl.Task, n int) int64 { return nqueensRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return nqueensRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		nqueensNative},
	{"msort", false, 30_000,
		func(t *mpl.Task, n int) int64 { return msortRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return msortRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		msortNative},
	{"quickhull", false, 20_000,
		func(t *mpl.Task, n int) int64 { return quickhullRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return quickhullRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		quickhullNative},
	{"tokens", false, 200_000,
		func(t *mpl.Task, n int) int64 { return tokensRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return tokensRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		tokensNative},
	{"wc", false, 200_000,
		func(t *mpl.Task, n int) int64 { return wcRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return wcRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		wcNative},
	{"spmv", false, 2000,
		func(t *mpl.Task, n int) int64 { return spmvRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return spmvRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		spmvNative},

	{"dedup", true, 20_000,
		func(t *mpl.Task, n int) int64 { return dedupRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return dedupRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		dedupNative},
	{"bfs", true, 20_000,
		func(t *mpl.Task, n int) int64 { return bfsRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return bfsRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		bfsNative},
	{"counter", true, 20_000,
		func(t *mpl.Task, n int) int64 { return counterRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return counterRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		counterNative},
	{"memoize", true, 50_000,
		func(t *mpl.Task, n int) int64 { return memoizeRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return memoizeRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		memoizeNative},
	{"pipeline", true, 30_000,
		func(t *mpl.Task, n int) int64 { return pipelineRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return pipelineRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		pipelineNative},

	{"grep", false, 200_000,
		func(t *mpl.Task, n int) int64 { return grepRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return grepRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		grepNative},
	{"histogram", false, 100_000,
		func(t *mpl.Task, n int) int64 { return histRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 { return histRT[*globalrt.Runtime, globalrt.Frame](g, n) },
		histNative},
	{"filter", false, 200_000,
		func(t *mpl.Task, n int) int64 { return filterRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return filterRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		filterNative},
	{"treesum", false, 15, // n is the tree height: 2^15 leaves
		func(t *mpl.Task, n int) int64 { return treesumRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return treesumRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		treesumNative},
	{"matmul", false, 64, // n is the matrix dimension
		func(t *mpl.Task, n int) int64 { return matmulRT[*mpl.Task, mpl.Frame](t, n) },
		func(g *globalrt.Runtime, n int) int64 {
			return matmulRT[*globalrt.Runtime, globalrt.Frame](g, n)
		},
		matmulNative},
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists benchmark names in registry order.
func Names() []string {
	out := make([]string, len(All))
	for i, b := range All {
		out[i] = b.Name
	}
	return out
}

// parSum evaluates leaf over subranges of [lo, hi) in parallel and sums
// the results; a building block for reductions.
func parSum[T RT[T, F], F FrameI](t T, lo, hi, grain int, leaf func(t T, lo, hi int) int64) int64 {
	if hi-lo <= grain {
		return leaf(t, lo, hi)
	}
	mid := lo + (hi-lo)/2
	a, b := t.Par(
		func(t T) mem.Value { return mem.Int(parSum[T, F](t, lo, mid, grain, leaf)) },
		func(t T) mem.Value { return mem.Int(parSum[T, F](t, mid, hi, grain, leaf)) },
	)
	return a.AsInt() + b.AsInt()
}

// loadInts materializes xs as a heap array, filling in parallel (the
// writes are immediates into an ancestor array: barrier-free). Keeping the
// load parallel keeps input setup off the recorded critical path, as the
// paper's benchmarks do.
func loadInts[T RT[T, F], F FrameI](t T, xs []int64) mem.Ref {
	f := t.NewFrame(1)
	f.Set(0, t.AllocArray(len(xs), mem.Int(0)).Value())
	t.ParFor(0, len(xs), 8192, func(t T, lo, hi int) {
		arr := f.Ref(0)
		for i := lo; i < hi; i++ {
			t.Write(arr, i, mem.Int(xs[i]))
		}
	})
	arr := f.Ref(0)
	f.Pop()
	return arr
}
