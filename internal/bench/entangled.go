package bench

import (
	"runtime"

	"mplgo/internal/mem"
	"mplgo/internal/workload"
)

// The entangled benchmarks communicate through shared mutable state across
// concurrent tasks: bucket heads, memo slots and counter cells hold
// pointers to objects allocated by whichever task got there first, so other
// tasks' reads are entangled reads that the runtime must pin. Under
// detect-and-abort MPL all of these programs abort; under management they
// run with cost proportional to the entanglement (experiment T4).

// parCollect maps leaf over chunks of items in parallel and concatenates
// the results deterministically (split order).
func parCollect[T RT[T, F], F FrameI](t T, items []int32, grain int, leaf func(t T, vs []int32) []int32) []int32 {
	if len(items) <= grain {
		return leaf(t, items)
	}
	mid := len(items) / 2
	var l, r []int32
	t.Par(
		func(t T) mem.Value { l = parCollect[T, F](t, items[:mid], grain, leaf); return mem.Nil },
		func(t T) mem.Value { r = parCollect[T, F](t, items[mid:], grain, leaf); return mem.Nil },
	)
	return append(l, r...)
}

// ---------------------------------------------------------------- dedup
// Concurrent hash set: tasks insert strings into shared buckets of
// CAS-linked list nodes. Walking a bucket reads nodes allocated by
// concurrent tasks (entangled); insertion publishes nodes by down-pointer
// CAS into the shared bucket array.

const (
	dedupBuckets = 512
	dedupGrain   = 512
)

func fnv(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// strEqRT compares a heap string object against a Go string.
func strEqRT[T RT[T, F], F FrameI](t T, ref mem.Ref, s string) bool {
	if t.StrLen(ref) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if t.ByteOf(ref, i) != s[i] {
			return false
		}
	}
	return true
}

func dedupRT[T RT[T, F], F FrameI](t T, n int) int64 {
	ss := workload.Strings(seedDedup, n, n/10+1)
	// The bucket array lives in this task's heap; leaves reach it through
	// the frame so the reference stays current across collections even
	// when a leaf runs on this task itself.
	fb := t.NewFrame(1)
	fb.Set(0, t.AllocArray(dedupBuckets, mem.Nil).Value())
	sum := parSum[T, F](t, 0, n, dedupGrain, func(t T, lo, hi int) int64 {
		var added int64
	insertLoop:
		for i := lo; i < hi; i++ {
			s := ss[i]
			b := int(fnv(s) % dedupBuckets)
			for {
				head := t.Read(fb.Ref(0), b)
				// Walk the bucket; nodes may belong to concurrent tasks.
				for cur := head; cur.IsRef(); {
					node := cur.Ref()
					if strEqRT[T, F](t, t.Read(node, 0).Ref(), s) {
						continue insertLoop // duplicate
					}
					cur = t.Read(node, 1)
				}
				// Not found: allocate and publish. The head must stay
				// rooted across the allocations (a collection of our own
				// heap may move our earlier nodes).
				f := t.NewFrame(1)
				f.Set(0, head)
				sr := t.AllocString(s)
				node := t.AllocTuple(sr.Value(), f.Get(0))
				head = f.Get(0)
				f.Pop()
				if t.CAS(fb.Ref(0), b, head, node.Value()) {
					added++
					continue insertLoop
				}
				// Lost the race (or our collection relocated the head);
				// re-walk the bucket.
			}
		}
		return added
	})
	fb.Pop()
	return sum
}

func dedupNative(n int) int64 {
	ss := workload.Strings(seedDedup, n, n/10+1)
	seen := make(map[string]bool, n)
	var added int64
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			added++
		}
	}
	return added
}

// ---------------------------------------------------------------- bfs
// Level-synchronous breadth-first search. Each discovered vertex gets a
// record allocated by the discovering task and published by CAS into a
// shared array; processing a vertex reads its record — entangled when a
// concurrent sibling discovered it. Distances are level numbers, so the
// result is deterministic despite racy discovery.

const (
	bfsDegree = 4
	bfsGrain  = 256
)

func bfsRT[T RT[T, F], F FrameI](t T, n int) int64 {
	adj := workload.Graph(seedGraph, n, bfsDegree)

	// All record-array accesses go through the frame: the array lives in
	// this task's heap, and the level-1 leaf runs on this task itself, so
	// its allocations can relocate the array mid-leaf.
	f := t.NewFrame(1)
	f.Set(0, t.AllocArray(n, mem.Nil).Value())
	r0 := t.AllocTuple(mem.Int(0))
	t.Write(f.Ref(0), 0, r0.Value())

	frontier := []int32{0}
	level := 0
	for len(frontier) > 0 {
		level++
		lv := int64(level)
		frontier = parCollect[T, F](t, frontier, bfsGrain, func(t T, vs []int32) []int32 {
			var out []int32
			for _, v := range vs {
				// Read our own record (entangled when a concurrent task
				// discovered v in the previous level).
				rec := t.Read(f.Ref(0), int(v))
				if !rec.IsRef() || t.Read(rec.Ref(), 0).AsInt() != lv-1 {
					// The record must exist and carry the previous level.
					panic("bench: bfs record invariant violated")
				}
				for _, u := range adj[v] {
					if !t.Read(f.Ref(0), int(u)).IsNil() {
						continue
					}
					box := t.AllocTuple(mem.Int(lv))
					if t.CAS(f.Ref(0), int(u), mem.Nil, box.Value()) {
						out = append(out, u)
					}
				}
			}
			return out
		})
	}
	sum := parSum[T, F](t, 0, n, bfsGrain, func(t T, lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			rec := t.Read(f.Ref(0), i)
			if rec.IsRef() {
				s += t.Read(rec.Ref(), 0).AsInt() + 1
			}
		}
		return s
	})
	f.Pop()
	return sum
}

func bfsNative(n int) int64 {
	adj := workload.Graph(seedGraph, n, bfsDegree)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	var s int64
	for _, d := range dist {
		if d >= 0 {
			s += d + 1
		}
	}
	return s
}

// ---------------------------------------------------------------- counter
// Functional shared counters: each cell holds a pointer to an immutable
// boxed count; an increment reads the current box (entangled when another
// task wrote it), allocates a new box, and CASes the cell. The sum of the
// final boxes equals the number of increments — lost updates would show.

const (
	counterCells = 64
	counterGrain = 256
)

func counterRT[T RT[T, F], F FrameI](t T, n int) int64 {
	f := t.NewFrame(1)
	f.Set(0, t.AllocArray(counterCells, mem.Nil).Value())
	for i := 0; i < counterCells; i++ {
		box := t.AllocTuple(mem.Int(0))
		t.Write(f.Ref(0), i, box.Value())
	}

	t.ParFor(0, n, counterGrain, func(t T, lo, hi int) {
		for i := lo; i < hi; i++ {
			slot := i % counterCells
			for {
				b := t.Read(f.Ref(0), slot)
				v := t.Read(b.Ref(), 0).AsInt()
				nb := t.AllocTuple(mem.Int(v + 1))
				if t.CAS(f.Ref(0), slot, b, nb.Value()) {
					break
				}
				// Lost the race or our own collection moved the old box;
				// retry against the current cell contents.
			}
		}
	})

	var sum int64
	for i := 0; i < counterCells; i++ {
		sum += t.Read(t.Read(f.Ref(0), i).Ref(), 0).AsInt()
	}
	f.Pop()
	return sum
}

func counterNative(n int) int64 { return int64(n) }

// ---------------------------------------------------------------- memoize
// A shared write-once memo table for a pure recurrence: racing tasks may
// recompute an entry, but the first published box wins and every reader
// sees the same pure value. Cross-task box reads are entangled.

const memoGrain = 512

func memoBase(i int64) int64 { return integrand(i)&0xFF + 1 }

func memoizeRT[T RT[T, F], F FrameI](t T, n int) int64 {
	f := t.NewFrame(1)
	f.Set(0, t.AllocArray(n, mem.Nil).Value())

	var h func(t T, i int) int64
	h = func(t T, i int) int64 {
		if i <= 0 {
			return 1
		}
		if v := t.Read(f.Ref(0), i); v.IsRef() {
			return t.Read(v.Ref(), 0).AsInt()
		}
		val := memoBase(int64(i)) + h(t, i/2) + h(t, i/3)
		box := t.AllocTuple(mem.Int(val))
		t.CAS(f.Ref(0), i, mem.Nil, box.Value()) // first writer wins
		return val
	}

	sum := parSum[T, F](t, 1, n, memoGrain, func(t T, lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += h(t, i)
		}
		return s
	})
	f.Pop()
	return sum
}

func memoizeNative(n int) int64 {
	memo := make([]int64, n)
	var h func(i int) int64
	h = func(i int) int64 {
		if i <= 0 {
			return 1
		}
		if memo[i] != 0 {
			return memo[i]
		}
		v := memoBase(int64(i)) + h(i/2) + h(i/3)
		memo[i] = v
		return v
	}
	var s int64
	for i := 1; i < n; i++ {
		s += h(i)
	}
	return s
}

// ---------------------------------------------------------------- pipeline
// Producer/consumer over write-once cells (I-structures): the producer
// publishes boxed values by down-pointer writes; the consumer spins until
// each cell fills — every successful read is entangled while the producer
// is a live sibling, so the boxes pin and unpin at the join.

func pipelineItem(i int64) int64 { return i*3 + 1 }

func pipelineRT[T RT[T, F], F FrameI](t T, n int) int64 {
	f := t.NewFrame(1)
	f.Set(0, t.AllocArray(n, mem.Nil).Value())
	_, consumed := t.Par(
		func(t T) mem.Value {
			for i := 0; i < n; i++ {
				box := t.AllocTuple(mem.Int(pipelineItem(int64(i))))
				t.Write(f.Ref(0), i, box.Value())
			}
			return mem.Nil
		},
		func(t T) mem.Value {
			var sum int64
			for i := 0; i < n; i++ {
				v := t.Read(f.Ref(0), i)
				for !v.IsRef() {
					runtime.Gosched()
					v = t.Read(f.Ref(0), i)
				}
				sum += t.Read(v.Ref(), 0).AsInt()*2 + 1
			}
			return mem.Int(sum)
		},
	)
	f.Pop()
	return consumed.AsInt()
}

func pipelineNative(n int) int64 {
	var sum int64
	for i := 0; i < n; i++ {
		sum += pipelineItem(int64(i))*2 + 1
	}
	return sum
}
