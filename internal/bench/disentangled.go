package bench

import (
	"sort"

	"mplgo/internal/mem"
	"mplgo/internal/workload"
)

// Workload seeds (fixed so all implementations agree).
const (
	seedMcss  = 101
	seedMsort = 102
	seedHull  = 103
	seedText  = 104
	seedSpmv  = 105
	seedDedup = 106
	seedGraph = 107
)

// ---------------------------------------------------------------- fib

const fibGrain = 14

// seqFib is deliberately the naive exponential recursion: below the grain
// the benchmark does real exponential work, exactly like the paper's fib.
func seqFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return seqFib(n-1) + seqFib(n-2)
}

// fibCalls counts the calls the exponential recursion makes for n
// (2·fib(n+1) − 1), used as the leaf's abstract work.
func fibCalls(n int64) int64 {
	a, b := int64(0), int64(1)
	for i := int64(0); i <= n; i++ {
		a, b = b, a+b
	}
	return 2*b - 1
}

func fibRT[T RT[T, F], F FrameI](t T, n int64) int64 {
	if n <= fibGrain {
		t.Work(fibCalls(n))
		return seqFib(n)
	}
	a, b := t.Par(
		func(t T) mem.Value { return mem.Int(fibRT[T, F](t, n-1)) },
		func(t T) mem.Value { return mem.Int(fibRT[T, F](t, n-2)) },
	)
	return a.AsInt() + b.AsInt()
}

func fibNative(n int64) int64 {
	if n <= fibGrain {
		return seqFib(n)
	}
	return fibNative(n-1) + fibNative(n-2)
}

// ---------------------------------------------------------------- mcss
// Maximum contiguous (nonempty) subsequence sum, divide and conquer.
// Each recursive call returns a heap tuple (total, prefix, suffix, best).

func mcssInput(n int) []int64 {
	xs := workload.Ints(seedMcss, n, 1001)
	for i := range xs {
		xs[i] -= 500
	}
	return xs
}

const mcssGrain = 2048

func mcssCombine(lt, lp, ls, lb, rt_, rp, rs, rb int64) (int64, int64, int64, int64) {
	total := lt + rt_
	prefix := max64(lp, lt+rp)
	suffix := max64(rs, rt_+ls)
	best := max64(max64(lb, rb), ls+rp)
	return total, prefix, suffix, best
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mcssLeaf[T RT[T, F], F FrameI](t T, arr mem.Ref, lo, hi int) (int64, int64, int64, int64) {
	const ninf = int64(-1) << 60
	total, prefix, suffix, best := int64(0), ninf, ninf, ninf
	run := int64(0)
	for i := lo; i < hi; i++ {
		x := t.Read(arr, i).AsInt()
		total += x
		prefix = max64(prefix, total)
		run = max64(run+x, x)
		best = max64(best, run)
	}
	// suffix: max sum ending at hi-1.
	acc := int64(0)
	for i := hi - 1; i >= lo; i-- {
		acc += t.Read(arr, i).AsInt()
		suffix = max64(suffix, acc)
	}
	return total, prefix, suffix, best
}

func mcssRec[T RT[T, F], F FrameI](t T, arr mem.Ref, lo, hi int) mem.Ref {
	if hi-lo <= mcssGrain {
		a, b, c, d := mcssLeaf[T, F](t, arr, lo, hi)
		return t.AllocTuple(mem.Int(a), mem.Int(b), mem.Int(c), mem.Int(d))
	}
	mid := lo + (hi-lo)/2
	lv, rv := t.Par(
		func(t T) mem.Value { return mcssRec[T, F](t, arr, lo, mid).Value() },
		func(t T) mem.Value { return mcssRec[T, F](t, arr, mid, hi).Value() },
	)
	l, r := lv.Ref(), rv.Ref()
	lt, lp, ls, lb := t.Read(l, 0).AsInt(), t.Read(l, 1).AsInt(), t.Read(l, 2).AsInt(), t.Read(l, 3).AsInt()
	rt_, rp, rs, rb := t.Read(r, 0).AsInt(), t.Read(r, 1).AsInt(), t.Read(r, 2).AsInt(), t.Read(r, 3).AsInt()
	a, b, c, d := mcssCombine(lt, lp, ls, lb, rt_, rp, rs, rb)
	return t.AllocTuple(mem.Int(a), mem.Int(b), mem.Int(c), mem.Int(d))
}

func mcssRT[T RT[T, F], F FrameI](t T, n int) int64 {
	arr := loadInts[T, F](t, mcssInput(n))
	res := mcssRec[T, F](t, arr, 0, n)
	return t.Read(res, 3).AsInt()
}

func mcssNative(n int) int64 {
	xs := mcssInput(n)
	best, run := int64(-1)<<60, int64(0)
	for _, x := range xs {
		run = max64(run+x, x)
		best = max64(best, run)
	}
	return best
}

// ---------------------------------------------------------------- primes

const primesGrain = 1024

func isPrime(x int64) bool {
	if x < 2 {
		return false
	}
	for d := int64(2); d*d <= x; d++ {
		if x%d == 0 {
			return false
		}
	}
	return true
}

func primesRT[T RT[T, F], F FrameI](t T, n int) int64 {
	return parSum[T, F](t, 2, n, primesGrain, func(t T, lo, hi int) int64 {
		var c int64
		for x := lo; x < hi; x++ {
			if isPrime(int64(x)) {
				c++
			}
		}
		t.Work(int64(hi-lo) * 6)
		return c
	})
}

func primesNative(n int) int64 {
	var c int64
	for x := 2; x < n; x++ {
		if isPrime(int64(x)) {
			c++
		}
	}
	return c
}

// ---------------------------------------------------------------- integrate
// Fixed-grid summation of a deterministic integer "function", standing in
// for numerical integration with exact cross-implementation agreement.

const integrateGrain = 8192

func integrand(i int64) int64 {
	h := uint64(i) * 0x9E3779B97F4A7C15
	return int64(h>>40)%1000 - 500 + i%7
}

func integrateRT[T RT[T, F], F FrameI](t T, n int) int64 {
	return parSum[T, F](t, 0, n, integrateGrain, func(t T, lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += integrand(int64(i))
		}
		t.Work(int64(hi - lo))
		return s
	})
}

func integrateNative(n int) int64 {
	var s int64
	for i := 0; i < n; i++ {
		s += integrand(int64(i))
	}
	return s
}

// ---------------------------------------------------------------- nqueens
// Counts solutions; each placement allocates a cons cell (functional style)
// so the allocator and hierarchy are exercised, not just the scheduler.

func nqueensRT[T RT[T, F], F FrameI](t T, n int) int64 {
	full := uint64(1)<<uint(n) - 1
	var rec func(t T, row int, cols, d1, d2 uint64) int64
	// parBits explores the candidate placements of a row in parallel by
	// binary splitting.
	var parBits func(t T, bits []uint64, row int, cols, d1, d2 uint64) int64
	parBits = func(t T, bits []uint64, row int, cols, d1, d2 uint64) int64 {
		if len(bits) == 1 {
			bit := bits[0]
			t.AllocTuple(mem.Int(int64(bit))) // allocation pressure, functional style
			t.Work(4)
			return rec(t, row+1, cols|bit, (d1|bit)<<1, (d2|bit)>>1)
		}
		mid := len(bits) / 2
		a, b := t.Par(
			func(t T) mem.Value { return mem.Int(parBits(t, bits[:mid], row, cols, d1, d2)) },
			func(t T) mem.Value { return mem.Int(parBits(t, bits[mid:], row, cols, d1, d2)) },
		)
		return a.AsInt() + b.AsInt()
	}
	rec = func(t T, row int, cols, d1, d2 uint64) int64 {
		if row == n {
			return 1
		}
		avail := (^(cols | d1 | d2)) & full
		if avail == 0 {
			return 0
		}
		if row < 2 {
			var bits []uint64
			for a := avail; a != 0; {
				bit := a & (-a)
				a &^= bit
				bits = append(bits, bit)
			}
			return parBits(t, bits, row, cols, d1, d2)
		}
		var count int64
		for avail != 0 {
			bit := avail & (-avail)
			avail &^= bit
			t.AllocTuple(mem.Int(int64(bit)))
			t.Work(4)
			count += rec(t, row+1, cols|bit, (d1|bit)<<1, (d2|bit)>>1)
		}
		return count
	}
	return rec(t, 0, 0, 0, 0)
}

func nqueensNative(n int) int64 {
	var rec func(row int, cols, d1, d2 uint64) int64
	rec = func(row int, cols, d1, d2 uint64) int64 {
		if row == n {
			return 1
		}
		var count int64
		avail := (^(cols | d1 | d2)) & ((1 << uint(n)) - 1)
		for avail != 0 {
			bit := avail & (-avail)
			avail &^= bit
			count += rec(row+1, cols|bit, (d1|bit)<<1, (d2|bit)>>1)
		}
		return count
	}
	return rec(0, 0, 0, 0)
}

// ---------------------------------------------------------------- msort
// Parallel mergesort over heap arrays: leaves insertion-sort a copy,
// interior nodes merge their children's results into a fresh array.

const msortGrain = 256

func msortInput(n int) []int64 { return workload.Ints(seedMsort, n, 1_000_000) }

func msortRec[T RT[T, F], F FrameI](t T, arr mem.Ref, lo, hi int) mem.Ref {
	n := hi - lo
	if n <= msortGrain {
		// The input array may live in this task's own heap (shallow
		// recursion); keep it rooted across the output allocation.
		f0 := t.NewFrame(1)
		f0.Set(0, arr.Value())
		out := t.AllocArray(n, mem.Int(0))
		arr = f0.Ref(0)
		f0.Pop()
		for i := 0; i < n; i++ {
			t.Write(out, i, t.Read(arr, lo+i))
		}
		// Insertion sort through runtime accesses.
		for i := 1; i < n; i++ {
			v := t.Read(out, i)
			j := i - 1
			for j >= 0 && t.Read(out, j).AsInt() > v.AsInt() {
				t.Write(out, j+1, t.Read(out, j))
				j--
			}
			t.Write(out, j+1, v)
		}
		return out
	}
	mid := lo + n/2
	lv, rv := t.Par(
		func(t T) mem.Value { return msortRec[T, F](t, arr, lo, mid).Value() },
		func(t T) mem.Value { return msortRec[T, F](t, arr, mid, hi).Value() },
	)
	// The children's arrays must survive the output allocation.
	f := t.NewFrame(2)
	f.Set(0, lv)
	f.Set(1, rv)
	out := t.AllocArray(n, mem.Int(0))
	l, r := f.Ref(0), f.Ref(1)
	ln, rn := t.Length(l), t.Length(r)
	i, j, k := 0, 0, 0
	for i < ln && j < rn {
		a, b := t.Read(l, i), t.Read(r, j)
		if a.AsInt() <= b.AsInt() {
			t.Write(out, k, a)
			i++
		} else {
			t.Write(out, k, b)
			j++
		}
		k++
	}
	for ; i < ln; i++ {
		t.Write(out, k, t.Read(l, i))
		k++
	}
	for ; j < rn; j++ {
		t.Write(out, k, t.Read(r, j))
		k++
	}
	f.Pop()
	return out
}

func msortChecksum64(i, v int64) int64 { return v * (i%7 + 1) }

func msortRT[T RT[T, F], F FrameI](t T, n int) int64 {
	arr := loadInts[T, F](t, msortInput(n))
	sorted := msortRec[T, F](t, arr, 0, n)
	var sum int64
	for i := 0; i < n; i++ {
		sum += msortChecksum64(int64(i), t.Read(sorted, i).AsInt())
	}
	return sum
}

func msortNative(n int) int64 {
	xs := msortInput(n)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	var sum int64
	for i, v := range xs {
		sum += msortChecksum64(int64(i), v)
	}
	return sum
}
