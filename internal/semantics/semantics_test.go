package semantics

import (
	"testing"

	"mplgo/internal/mem"
	"mplgo/internal/workload"
	"mplgo/mpl"
)

// runOnRuntime executes a Program on the real runtime — one worker,
// fork-time heaps, GC disabled (the accessible lists hold raw refs) — and
// returns the runtime's entanglement statistics in reference form.
func runOnRuntime(t *testing.T, p *Program) Stats {
	t.Helper()
	rt := mpl.New(mpl.Config{Procs: 1, DisableGC: true})
	var exec func(tk *mpl.Task, p *Program, acc []mem.Value) []mem.Value
	exec = func(tk *mpl.Task, p *Program, acc []mem.Value) []mem.Value {
		for _, op := range p.Ops {
			switch op.Kind {
			case OpAlloc:
				acc = append(acc, tk.AllocArray(1, mem.Nil).Value())
			case OpWrite:
				if len(acc) == 0 {
					continue
				}
				holder := acc[mod(op.A, len(acc))].Ref()
				src := acc[mod(op.B, len(acc))]
				tk.Write(holder, 0, src)
			case OpRead:
				if len(acc) == 0 {
					continue
				}
				holder := acc[mod(op.A, len(acc))].Ref()
				v := tk.Read(holder, 0)
				if v.IsRef() {
					acc = append(acc, v)
				}
			}
		}
		if p.Left != nil {
			snap := acc[:len(acc):len(acc)]
			var lacc, racc []mem.Value
			tk.Par(
				func(tk *mpl.Task) mem.Value { lacc = exec(tk, p.Left, snap); return mem.Nil },
				func(tk *mpl.Task) mem.Value { racc = exec(tk, p.Right, snap); return mem.Nil },
			)
			acc = append(append([]mem.Value{}, lacc...), racc...)
			if p.After != nil {
				acc = exec(tk, p.After, acc)
			}
		}
		return acc
	}
	if _, err := rt.Run(func(tk *mpl.Task) mem.Value {
		exec(tk, p, nil)
		return mem.Nil
	}); err != nil {
		t.Fatal(err)
	}
	s := rt.EntStats()
	return Stats{
		EntangledReads:  s.EntangledReads,
		EntangledWrites: s.EntangledWrites,
		DownPointers:    s.DownPointers,
		Pins:            s.Pins,
		Unpins:          s.Unpins,
	}
}

// genProgram builds a random program; all choices are seeded, so the
// reference and the runtime execute identical operation sequences.
func genProgram(rng *workload.RNG, depth int) *Program {
	p := &Program{}
	nops := 4 + rng.Intn(10)
	for i := 0; i < nops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			p.Ops = append(p.Ops, Op{Kind: OpAlloc})
		case 4, 5, 6:
			p.Ops = append(p.Ops, Op{Kind: OpWrite, A: rng.Intn(64), B: rng.Intn(64)})
		default:
			p.Ops = append(p.Ops, Op{Kind: OpRead, A: rng.Intn(64)})
		}
	}
	if depth > 0 && rng.Intn(4) != 0 {
		p.Left = genProgram(rng, depth-1)
		p.Right = genProgram(rng, depth-1)
		p.After = genProgram(rng, 0)
	}
	return p
}

// TestDifferentialEntanglement is the headline check: on hundreds of
// random programs, the runtime's barrier-based entanglement accounting
// must agree exactly with the reference semantics.
func TestDifferentialEntanglement(t *testing.T) {
	entangledPrograms := 0
	for seed := uint64(1); seed <= 300; seed++ {
		rng := workload.NewRNG(seed)
		p := genProgram(rng, 4)
		want := Run(p)
		got := runOnRuntime(t, p)
		if got != want {
			t.Fatalf("seed %d: runtime %+v != reference %+v", seed, got, want)
		}
		if want.EntangledReads > 0 {
			entangledPrograms++
		}
		if want.Pins != want.Unpins {
			t.Fatalf("seed %d: reference pins %d != unpins %d", seed, want.Pins, want.Unpins)
		}
	}
	// The generator must actually produce entanglement for the test to
	// mean anything.
	if entangledPrograms < 50 {
		t.Fatalf("only %d/300 programs entangled; generator too tame", entangledPrograms)
	}
}

// TestReferenceHandChecked pins the reference semantics itself on small
// programs with known counts.
func TestReferenceHandChecked(t *testing.T) {
	// Root allocates o; left writes its own x into o (down-pointer);
	// right reads o (entangled: x is left's) then reads again.
	p := &Program{
		Ops: []Op{{Kind: OpAlloc}}, // acc[0] = o
		Left: &Program{Ops: []Op{
			{Kind: OpAlloc},             // acc[1] = x (left's)
			{Kind: OpWrite, A: 0, B: 1}, // o.f = x: down-pointer
		}},
		Right: &Program{Ops: []Op{
			{Kind: OpRead, A: 0}, // entangled read of x
			{Kind: OpRead, A: 0}, // again (re-counted, already pinned)
		}},
		After: &Program{Ops: []Op{
			{Kind: OpRead, A: 0}, // after the join: x merged → disentangled
		}},
	}
	s := Run(p)
	want := Stats{EntangledReads: 2, DownPointers: 1, Pins: 1, Unpins: 1}
	if s != want {
		t.Fatalf("got %+v, want %+v", s, want)
	}
}

func TestReferenceUpPointerFree(t *testing.T) {
	// Child stores an ancestor object into its own object: up-pointer.
	p := &Program{
		Ops: []Op{{Kind: OpAlloc}}, // acc[0] root object
		Left: &Program{Ops: []Op{
			{Kind: OpAlloc},             // acc[1] own
			{Kind: OpWrite, A: 1, B: 0}, // own.f = root: up
			{Kind: OpRead, A: 1},        // read back: root is an ancestor
		}},
		Right: &Program{},
		After: &Program{},
	}
	s := Run(p)
	if s != (Stats{}) {
		t.Fatalf("up-pointer program produced entanglement: %+v", s)
	}
}

func TestReferenceEntangledWrite(t *testing.T) {
	// Left publishes its object via the root holder; right acquires it and
	// stores its OWN object into it: an entangled write pinning the stored
	// object.
	p := &Program{
		Ops: []Op{{Kind: OpAlloc}}, // acc[0] = holder
		Left: &Program{Ops: []Op{
			{Kind: OpAlloc},             // left's object
			{Kind: OpWrite, A: 0, B: 1}, // publish (down-pointer)
		}},
		Right: &Program{Ops: []Op{
			{Kind: OpRead, A: 0},        // acquire left's object (entangled read, pin)
			{Kind: OpAlloc},             // right's own y
			{Kind: OpWrite, A: 1, B: 2}, // store y into left's object: entangled write, pin y
		}},
		After: &Program{},
	}
	s := Run(p)
	want := Stats{EntangledReads: 1, EntangledWrites: 1, DownPointers: 1, Pins: 2, Unpins: 2}
	if s != want {
		t.Fatalf("got %+v, want %+v", s, want)
	}
}
