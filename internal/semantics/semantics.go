// Package semantics is a reference implementation of the paper's
// object-granularity entanglement semantics (paper §3–4), independent of
// the runtime's mechanisms: no chunks, no candidate bits, no barriers, no
// remembered sets. It executes fork–join programs over an abstract store
// in which every object carries its current heap node; joins merge child
// nodes into their parents; a read is *entangled* exactly when the
// target's heap node is not an ancestor of the reading task's node, and
// entangled objects are pinned with unpin depths and released when merges
// reach them.
//
// Its purpose is differential testing (see the package tests): the same
// randomly generated program runs on the real runtime (single worker,
// fork-time heaps, deterministic schedule) and on this reference, and the
// entanglement statistics — entangled reads, entangled writes,
// down-pointer writes, pins — must agree exactly. That checks the paper's
// completeness claim for the candidate-bit read barrier: the cheap filter
// fires on precisely the reads the semantics calls entangled.
package semantics

// Program is a series–parallel tree of operation sequences: a node's Ops
// run, then (if Left is non-nil) Left and Right run in parallel, then
// After continues. The reference and the runtime both execute the leaves
// left-to-right (one worker), so object allocation order is deterministic
// and operand indices resolve identically.
type Program struct {
	Ops                []Op
	Left, Right, After *Program
}

// OpKind enumerates program operations.
type OpKind int

const (
	// OpAlloc allocates a one-field mutable object and appends it to the
	// task's accessible list.
	OpAlloc OpKind = iota
	// OpWrite stores accessible[B] into accessible[A]'s field.
	OpWrite
	// OpRead loads accessible[A]'s field; if it holds an object, the
	// object is appended to the accessible list (acquisition).
	OpRead
)

// Op is one operation; A and B index the task's accessible list modulo its
// length (so any generated integers are valid).
type Op struct {
	Kind OpKind
	A, B int
}

// Stats are the entanglement metrics the reference computes; they
// correspond to the runtime's entangle.StatsSnapshot fields.
type Stats struct {
	EntangledReads  int64
	EntangledWrites int64
	DownPointers    int64
	Pins            int64
	Unpins          int64
}

// node is a heap-hierarchy node of the reference.
type node struct {
	parent *bnode
}

// bnode is a heap node; objects map to their current bnode and merges
// reassign them (the abstract version of chunk reassignment).
type bnode struct {
	parent *bnode
	depth  int
}

// object is an abstract one-field object.
type object struct {
	heap      *bnode
	field     *object // nil when empty
	pinned    bool
	unpinDeep int
}

// interp is the reference interpreter state.
type interp struct {
	stats Stats
	objs  map[*bnode][]*object // objects per heap node, for merge reassignment
}

// Run executes the program under the reference semantics and returns the
// entanglement statistics.
func Run(p *Program) Stats {
	in := &interp{objs: map[*bnode][]*object{}}
	root := &bnode{depth: 0}
	in.exec(p, root, nil)
	return in.stats
}

func (in *interp) alloc(h *bnode) *object {
	o := &object{heap: h}
	in.objs[h] = append(in.objs[h], o)
	return o
}

// isAncestor reports whether a is an ancestor of (or equal to) d.
func isAncestor(a, d *bnode) bool {
	for x := d; x != nil; x = x.parent {
		if x == a {
			return true
		}
	}
	return false
}

// lca returns the least common ancestor of two heap nodes.
func lca(a, b *bnode) *bnode {
	for x := a; x != nil; x = x.parent {
		if isAncestor(x, b) {
			return x
		}
	}
	return nil
}

// pin pins x for a task at node u: unpin depth is the LCA's depth, kept
// minimal across re-pins (as in the runtime).
func (in *interp) pin(x *object, u *bnode) {
	d := lca(u, x.heap).depth
	if x.pinned {
		if d < x.unpinDeep {
			x.unpinDeep = d
		}
		return
	}
	x.pinned = true
	x.unpinDeep = d
	in.stats.Pins++
}

// merge folds child heap node c into parent p: objects move up and pinned
// objects whose unpin depth is reached are released.
func (in *interp) merge(c, p *bnode) {
	for _, o := range in.objs[c] {
		o.heap = p
		if o.pinned && o.unpinDeep >= p.depth {
			o.pinned = false
			in.stats.Unpins++
		}
	}
	in.objs[p] = append(in.objs[p], in.objs[c]...)
	delete(in.objs, c)
}

// exec runs a program node in heap node h with the given accessible list,
// returning the extended accessible list.
func (in *interp) exec(p *Program, h *bnode, acc []*object) []*object {
	for _, op := range p.Ops {
		switch op.Kind {
		case OpAlloc:
			acc = append(acc, in.alloc(h))
		case OpWrite:
			if len(acc) == 0 {
				continue
			}
			holder := acc[mod(op.A, len(acc))]
			src := acc[mod(op.B, len(acc))]
			// Classify the stored edge: up-pointers are free,
			// down-pointers are remembered, and cross-pointers —
			// publishing an object to a concurrent heap (or holding a
			// concurrent object in one's own) — are entangled writes
			// that pin the stored object.
			switch {
			case holder.heap == src.heap:
				// same heap: nothing
			case isAncestor(src.heap, holder.heap):
				// up-pointer: free
			case isAncestor(holder.heap, src.heap):
				in.stats.DownPointers++
			default:
				in.stats.EntangledWrites++
				d := lca(holder.heap, src.heap).depth
				if u := lca(h, src.heap).depth; u < d {
					d = u
				}
				in.pinAt(src, d)
			}
			holder.field = src
		case OpRead:
			if len(acc) == 0 {
				continue
			}
			holder := acc[mod(op.A, len(acc))]
			x := holder.field
			if x == nil {
				continue
			}
			// The defining condition: the read is entangled exactly when
			// the target's heap is not an ancestor of the reader's node.
			if !isAncestor(x.heap, h) {
				in.stats.EntangledReads++
				in.pin(x, h)
			}
			acc = append(acc, x)
		}
	}
	if p.Left != nil {
		lh := &bnode{parent: h, depth: h.depth + 1}
		rh := &bnode{parent: h, depth: h.depth + 1}
		// Sequential schedule (one worker, nothing stolen): left runs to
		// completion, then right; both heaps merge at the join. The
		// snapshot is capacity-clamped so the branches' appends cannot
		// alias each other's lists.
		snap := acc[:len(acc):len(acc)]
		lacc := in.exec(p.Left, lh, snap)
		racc := in.exec(p.Right, rh, snap)
		in.merge(lh, h)
		in.merge(rh, h)
		// The continuation sees what both branches could reach.
		acc = append(append([]*object{}, lacc...), racc...)
		if p.After != nil {
			acc = in.exec(p.After, h, acc)
		}
	}
	return acc
}

// pinAt pins with an explicit unpin depth (entangled-write path).
func (in *interp) pinAt(x *object, depth int) {
	if x.pinned {
		if depth < x.unpinDeep {
			x.unpinDeep = depth
		}
		return
	}
	x.pinned = true
	x.unpinDeep = depth
	in.stats.Pins++
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
