// Package workload generates the deterministic inputs of the benchmark
// suite. Every generator is a pure function of its seed, so the
// hierarchical-runtime, global-heap, and native implementations of each
// benchmark operate on identical data and their checksums must agree.
package workload

// RNG is a splitmix64 generator: tiny, fast, and stable across platforms.
type RNG struct{ state uint64 }

// NewRNG creates a generator from a seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Next() >> 1) }

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Ints returns n values in [0, max).
func Ints(seed uint64, n int, max int64) []int64 {
	r := NewRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.Next() % uint64(max))
	}
	return out
}

// Points returns n 2-D points with coordinates in [-max, max].
func Points(seed uint64, n int, max int64) [][2]int64 {
	r := NewRNG(seed)
	out := make([][2]int64, n)
	for i := range out {
		out[i][0] = int64(r.Next()%uint64(2*max+1)) - max
		out[i][1] = int64(r.Next()%uint64(2*max+1)) - max
	}
	return out
}

// Text returns a pseudo-natural text of roughly n bytes: words of 1–10
// lowercase letters separated by spaces, with newlines every ~12 words.
func Text(seed uint64, n int) string {
	r := NewRNG(seed)
	buf := make([]byte, 0, n+16)
	words := 0
	for len(buf) < n {
		wl := 1 + r.Intn(10)
		for i := 0; i < wl; i++ {
			buf = append(buf, byte('a'+r.Intn(26)))
		}
		words++
		if words%12 == 0 {
			buf = append(buf, '\n')
		} else {
			buf = append(buf, ' ')
		}
	}
	return string(buf)
}

// Strings returns n short strings drawn from a pool of `distinct` values,
// for the dedup benchmark.
func Strings(seed uint64, n, distinct int) []string {
	r := NewRNG(seed)
	pool := make([]string, distinct)
	for i := range pool {
		b := make([]byte, 8)
		for j := range b {
			b[j] = byte('a' + r.Intn(26))
		}
		pool[i] = string(b)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = pool[r.Intn(distinct)]
	}
	return out
}

// Graph returns a connected undirected graph as adjacency lists: n
// vertices, a spanning backbone, plus ~deg extra edges per vertex.
func Graph(seed uint64, n, deg int) [][]int32 {
	r := NewRNG(seed)
	adj := make([][]int32, n)
	add := func(a, b int) {
		adj[a] = append(adj[a], int32(b))
		adj[b] = append(adj[b], int32(a))
	}
	for v := 1; v < n; v++ {
		add(v, r.Intn(v)) // backbone keeps the graph connected
	}
	extra := n * deg / 2
	for i := 0; i < extra; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			add(a, b)
		}
	}
	return adj
}

// CSR returns a sparse matrix in compressed-sparse-row form: rows×rows,
// nnz entries per row, values in [1, 100].
func CSR(seed uint64, rows, nnzPerRow int) (rowPtr []int32, col []int32, val []int64) {
	r := NewRNG(seed)
	rowPtr = make([]int32, rows+1)
	col = make([]int32, 0, rows*nnzPerRow)
	val = make([]int64, 0, rows*nnzPerRow)
	for i := 0; i < rows; i++ {
		rowPtr[i] = int32(len(col))
		for k := 0; k < nnzPerRow; k++ {
			col = append(col, int32(r.Intn(rows)))
			val = append(val, int64(1+r.Intn(100)))
		}
	}
	rowPtr[rows] = int32(len(col))
	return rowPtr, col, val
}
