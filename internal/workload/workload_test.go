package workload

import "testing"

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Next() == NewRNG(2).Next() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestInts(t *testing.T) {
	xs := Ints(3, 1000, 50)
	if len(xs) != 1000 {
		t.Fatal("length")
	}
	for _, x := range xs {
		if x < 0 || x >= 50 {
			t.Fatalf("out of range: %d", x)
		}
	}
}

func TestPointsRange(t *testing.T) {
	ps := Points(5, 500, 100)
	for _, p := range ps {
		if p[0] < -100 || p[0] > 100 || p[1] < -100 || p[1] > 100 {
			t.Fatalf("point out of range: %v", p)
		}
	}
}

func TestTextShape(t *testing.T) {
	s := Text(11, 10000)
	if len(s) < 10000 {
		t.Fatal("text too short")
	}
	hasSpace, hasNewline := false, false
	for _, c := range s {
		switch {
		case c == ' ':
			hasSpace = true
		case c == '\n':
			hasNewline = true
		case c < 'a' || c > 'z':
			t.Fatalf("unexpected byte %q", c)
		}
	}
	if !hasSpace || !hasNewline {
		t.Fatal("text lacks separators")
	}
}

func TestStringsPool(t *testing.T) {
	ss := Strings(9, 10000, 100)
	distinct := map[string]bool{}
	for _, s := range ss {
		distinct[s] = true
	}
	if len(distinct) > 100 {
		t.Fatalf("more distinct strings than the pool: %d", len(distinct))
	}
	if len(distinct) < 50 {
		t.Fatalf("suspiciously few distinct strings: %d", len(distinct))
	}
}

func TestGraphConnectedShape(t *testing.T) {
	adj := Graph(13, 2000, 4)
	if len(adj) != 2000 {
		t.Fatal("vertex count")
	}
	// BFS reaches everything (backbone guarantees connectivity).
	seen := make([]bool, len(adj))
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	if count != len(adj) {
		t.Fatalf("graph not connected: reached %d of %d", count, len(adj))
	}
}

func TestCSRShape(t *testing.T) {
	rowPtr, col, val := CSR(17, 100, 8)
	if len(rowPtr) != 101 || len(col) != 800 || len(val) != 800 {
		t.Fatal("CSR geometry")
	}
	for i := 0; i < 100; i++ {
		if rowPtr[i+1]-rowPtr[i] != 8 {
			t.Fatal("row nnz")
		}
	}
	for i, c := range col {
		if c < 0 || c >= 100 {
			t.Fatalf("col out of range: %d", c)
		}
		if val[i] < 1 || val[i] > 100 {
			t.Fatalf("val out of range: %d", val[i])
		}
	}
}
