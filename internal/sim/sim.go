// Package sim provides the deterministic multiprocessor simulator used to
// reproduce the paper's scalability experiments on a machine without 72
// cores (see DESIGN.md, substitutions).
//
// Execution under the runtime records a series–parallel DAG: every task
// segment accumulates abstract work (allocation words, barrier costs,
// kernel operations, GC copying), and every Par creates a fork. Replay
// schedules the recorded DAG on P virtual processors with work stealing:
// a processor finishing a segment continues locally for free (its own
// deque), while transfers between processors pay a steal latency. The
// simulated makespan T_P obeys Brent's bound
//
//	W/P  ≤  T_P  ≤  W/P + c·S
//
// (W = total work, S = span), which the tests verify; speedup *shapes* —
// who scales, where curves flatten — carry over from the cost model even
// though absolute times are abstract.
package sim

import "container/heap"

// Node is one vertex of the recorded series–parallel DAG. A node represents
// a sequential segment of Work abstract cost, optionally followed by a fork
// of Left and Right, whose join continues at After.
type Node struct {
	Work               int64
	Left, Right, After *Node

	parent  *Node
	role    int8 // 0 left, 1 right, 2 after
	pending int8
}

// NewTrace returns the root node of a fresh trace.
func NewTrace() *Node { return &Node{} }

// Fork attaches a fork to n and returns the left branch, right branch, and
// continuation nodes. Subsequent work of the forking task is recorded into
// the continuation.
func (n *Node) Fork() (l, r, after *Node) {
	l = &Node{parent: n, role: 0}
	r = &Node{parent: n, role: 1}
	after = &Node{parent: n, role: 2}
	n.Left, n.Right, n.After = l, r, after
	n.pending = 2
	return l, r, after
}

// WorkSpan computes total work W and span (critical path) S of the DAG.
func (n *Node) WorkSpan() (w, s int64) {
	if n == nil {
		return 0, 0
	}
	w, s = n.Work, n.Work
	if n.Left != nil {
		lw, ls := n.Left.WorkSpan()
		rw, rs := n.Right.WorkSpan()
		aw, as := n.After.WorkSpan()
		w += lw + rw + aw
		s += max64(ls, rs) + as
	}
	return w, s
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// CountForks returns the number of forks in the DAG.
func (n *Node) CountForks() int64 {
	if n == nil || n.Left == nil {
		return 0
	}
	return 1 + n.Left.CountForks() + n.Right.CountForks() + n.After.CountForks()
}

// ReplayConfig parameterizes a replay.
type ReplayConfig struct {
	P         int
	StealCost int64 // virtual time to migrate a strand between processors
}

// ReplayResult reports the outcome of a replay.
type ReplayResult struct {
	Makespan int64
	Steals   int64
	// BusyPeak is the maximum number of simultaneously busy processors,
	// used by the space model (more busy processors → more live nurseries).
	BusyPeak int
	// Work and Span are the replayed DAG's total work W and critical path
	// S, exposed so consumers checking Brent's bound against a *measured*
	// T_P (the experiment-grid cross-validation) get them from the same
	// replay that produced the prediction.
	Work int64
	Span int64
}

// Brent returns the interval Brent's bound allows for greedily scheduling
// a DAG of work w and span s on p processors: w/p ≤ T_P ≤ w/p + c·s. The
// constant c absorbs per-span-node scheduling costs (for this simulator,
// steal latency on every critical-path migration; for real hardware, fork/
// join bookkeeping and queue delays) — callers choose it to match their
// executor and tolerance.
func Brent(w, s int64, p int, c float64) (lo, hi float64) {
	if p < 1 {
		p = 1
	}
	lo = float64(w) / float64(p)
	hi = lo + c*float64(s)
	return lo, hi
}

// event is a strand completion.
type event struct {
	t    int64
	proc int
	n    *Node
	seq  int64 // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type stamped struct {
	n   *Node
	t   int64 // push time
	seq int64
}

// Replay schedules the DAG on cfg.P virtual processors and returns the
// simulated makespan. Replay is deterministic: ties resolve by sequence
// number, idle processors are matched to pushed strands oldest-first.
func Replay(root *Node, cfg ReplayConfig) ReplayResult {
	if cfg.P < 1 {
		cfg.P = 1
	}
	resetPending(root)
	w, s := root.WorkSpan()

	var (
		events  eventHeap
		seq     int64
		deques  = make([][]stamped, cfg.P)
		parked  []int // processor ids idle with empty deques, FIFO
		parkedT = make([]int64, cfg.P)
		res     = ReplayResult{Work: w, Span: s}
		busy    = 0
	)
	sched := func(t int64, p int, n *Node) {
		seq++
		heap.Push(&events, event{t + n.Work, p, n, seq})
	}
	// A push makes a strand available: hand it to a parked processor
	// (paying the steal latency) or queue it on the pusher's deque.
	push := func(t int64, p int, n *Node) {
		if len(parked) > 0 {
			q := parked[0]
			parked = parked[1:]
			start := max64(t, parkedT[q]) + cfg.StealCost
			res.Steals++
			busy++
			if busy > res.BusyPeak {
				res.BusyPeak = busy
			}
			sched(start, q, n)
			return
		}
		seq++
		deques[p] = append(deques[p], stamped{n, t, seq})
	}
	// steal finds the globally oldest queued strand, or nil.
	steal := func() (stamped, bool) {
		best := -1
		for i := range deques {
			if len(deques[i]) == 0 {
				continue
			}
			if best == -1 || deques[i][0].seq < deques[best][0].seq {
				best = i
			}
		}
		if best == -1 {
			return stamped{}, false
		}
		s := deques[best][0]
		deques[best] = deques[best][1:]
		return s, true
	}

	// Processors 1..P-1 start parked at time 0, waiting to steal.
	for q := 1; q < cfg.P; q++ {
		parked = append(parked, q)
	}
	busy = 1
	res.BusyPeak = 1
	sched(0, 0, root)

	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		t, p, n := ev.t, ev.proc, ev.n
		if t > res.Makespan {
			res.Makespan = t
		}
		// Continuation of the finished strand.
		var next *Node
		if n.Left != nil {
			push(t, p, n.Right)
			next = n.Left
		} else {
			next = completeCascade(n)
		}
		if next == nil {
			// Pop own deque (free), else steal (latency), else park.
			if k := len(deques[p]); k > 0 {
				next = deques[p][k-1].n
				deques[p] = deques[p][:k-1]
				sched(t, p, next)
				continue
			}
			if s, ok := steal(); ok {
				res.Steals++
				sched(t+cfg.StealCost, p, s.n)
				continue
			}
			busy--
			parked = append(parked, p)
			parkedT[p] = t
			continue
		}
		sched(t, p, next)
	}
	return res
}

// completeCascade propagates a completed node upward: joins release their
// continuation, completed continuations complete their fork node.
func completeCascade(n *Node) *Node {
	for {
		par := n.parent
		if par == nil {
			return nil
		}
		if n.role == 2 {
			n = par
			continue
		}
		par.pending--
		if par.pending == 0 {
			return par.After
		}
		return nil
	}
}

func resetPending(n *Node) {
	if n == nil {
		return
	}
	if n.Left != nil {
		n.pending = 2
		resetPending(n.Left)
		resetPending(n.Right)
		resetPending(n.After)
	}
}

// SpeedupCurve replays the DAG for each processor count and returns
// T_1 / T_P for each entry of ps.
func SpeedupCurve(root *Node, ps []int, stealCost int64) []float64 {
	t1 := Replay(root, ReplayConfig{P: 1, StealCost: stealCost}).Makespan
	out := make([]float64, len(ps))
	for i, p := range ps {
		tp := Replay(root, ReplayConfig{P: p, StealCost: stealCost}).Makespan
		if tp == 0 {
			tp = 1
		}
		out[i] = float64(t1) / float64(tp)
	}
	return out
}
