package sim

import "testing"

// buildBalanced constructs a balanced fork tree of the given depth where
// every leaf does `leafWork` and interior segments cost `segWork`.
func buildBalanced(depth int, leafWork, segWork int64) *Node {
	root := NewTrace()
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		if d == 0 {
			n.Work = leafWork
			return
		}
		n.Work = segWork
		l, r, _ := n.Fork()
		rec(l, d-1)
		rec(r, d-1)
	}
	rec(root, depth)
	return root
}

func TestWorkSpanLeaf(t *testing.T) {
	n := NewTrace()
	n.Work = 42
	w, s := n.WorkSpan()
	if w != 42 || s != 42 {
		t.Fatalf("W,S = %d,%d", w, s)
	}
	if n.CountForks() != 0 {
		t.Fatal("leaf has forks")
	}
}

func TestWorkSpanBalanced(t *testing.T) {
	// depth 3: 8 leaves of 100, 7 interior segments of 10.
	root := buildBalanced(3, 100, 10)
	w, s := root.WorkSpan()
	if w != 8*100+7*10 {
		t.Fatalf("W = %d", w)
	}
	// span: 3 interior segments + 1 leaf on the critical path.
	if s != 3*10+100 {
		t.Fatalf("S = %d", s)
	}
	if root.CountForks() != 7 {
		t.Fatalf("forks = %d", root.CountForks())
	}
}

func TestReplaySingleProcessorIsWork(t *testing.T) {
	root := buildBalanced(6, 50, 5)
	w, _ := root.WorkSpan()
	res := Replay(root, ReplayConfig{P: 1, StealCost: 100})
	if res.Makespan != w {
		t.Fatalf("T_1 = %d, want W = %d (local pops must be free)", res.Makespan, w)
	}
	if res.Steals != 0 {
		t.Fatalf("steals at P=1 = %d", res.Steals)
	}
	if res.BusyPeak != 1 {
		t.Fatalf("BusyPeak = %d", res.BusyPeak)
	}
}

func TestReplayBrentBound(t *testing.T) {
	root := buildBalanced(10, 200, 3)
	w, s := root.WorkSpan()
	for _, p := range []int{1, 2, 4, 8, 16, 64} {
		res := Replay(root, ReplayConfig{P: p, StealCost: 7})
		lower := w / int64(p)
		// Upper bound: W/P + c·S with a generous constant covering steal
		// latency on every span vertex.
		upper := w/int64(p) + 20*s + 20*7*int64(p)
		if res.Makespan < lower {
			t.Fatalf("P=%d: T_P=%d below W/P=%d", p, res.Makespan, lower)
		}
		if res.Makespan > upper {
			t.Fatalf("P=%d: T_P=%d above Brent-style bound %d (W=%d S=%d)", p, res.Makespan, upper, w, s)
		}
	}
}

func TestReplaySpeedupGrows(t *testing.T) {
	root := buildBalanced(12, 500, 2)
	t1 := Replay(root, ReplayConfig{P: 1, StealCost: 5}).Makespan
	t4 := Replay(root, ReplayConfig{P: 4, StealCost: 5}).Makespan
	t16 := Replay(root, ReplayConfig{P: 16, StealCost: 5}).Makespan
	if !(t16 < t4 && t4 < t1) {
		t.Fatalf("no speedup: T1=%d T4=%d T16=%d", t1, t4, t16)
	}
	if s := float64(t1) / float64(t16); s < 8 {
		t.Fatalf("speedup at P=16 only %.2f for a wide DAG", s)
	}
}

func TestReplaySerialDAGNoSpeedup(t *testing.T) {
	// A pure chain (no forks) cannot speed up.
	root := NewTrace()
	root.Work = 10000
	t1 := Replay(root, ReplayConfig{P: 1, StealCost: 5}).Makespan
	t8 := Replay(root, ReplayConfig{P: 8, StealCost: 5}).Makespan
	if t1 != t8 {
		t.Fatalf("serial DAG changed under P: %d vs %d", t1, t8)
	}
}

func TestReplayDeterministic(t *testing.T) {
	root := buildBalanced(9, 77, 3)
	a := Replay(root, ReplayConfig{P: 5, StealCost: 11})
	b := Replay(root, ReplayConfig{P: 5, StealCost: 11})
	if a != b {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}
}

func TestReplayImbalanced(t *testing.T) {
	// One heavy branch, one light: the makespan is dominated by the heavy
	// branch; extra processors cannot beat it.
	root := NewTrace()
	l, r, _ := root.Fork()
	l.Work = 100000
	r.Work = 10
	res := Replay(root, ReplayConfig{P: 8, StealCost: 1})
	if res.Makespan < 100000 {
		t.Fatalf("makespan %d beat the critical path", res.Makespan)
	}
	if res.Makespan > 100000+1000 {
		t.Fatalf("makespan %d far above critical path", res.Makespan)
	}
}

func TestReplayAfterSegments(t *testing.T) {
	// Work recorded after a join must execute after both branches.
	root := NewTrace()
	root.Work = 10
	l, r, after := root.Fork()
	l.Work, r.Work = 20, 30
	after.Work = 40
	res := Replay(root, ReplayConfig{P: 2, StealCost: 0})
	// Critical path: 10 + max(20,30) + 40 = 80.
	if res.Makespan != 80 {
		t.Fatalf("makespan = %d, want 80", res.Makespan)
	}
	w, s := root.WorkSpan()
	if w != 100 || s != 80 {
		t.Fatalf("W,S = %d,%d", w, s)
	}
}

func TestReplayReusable(t *testing.T) {
	// Replay must reset join counters so the same trace replays repeatedly.
	root := buildBalanced(5, 10, 1)
	first := Replay(root, ReplayConfig{P: 3, StealCost: 2})
	second := Replay(root, ReplayConfig{P: 3, StealCost: 2})
	if first != second {
		t.Fatal("second replay of the same trace differs")
	}
}

func TestSpeedupCurve(t *testing.T) {
	root := buildBalanced(12, 300, 1)
	ps := []int{1, 2, 4, 8}
	curve := SpeedupCurve(root, ps, 3)
	if len(curve) != 4 {
		t.Fatal("curve length")
	}
	if curve[0] < 0.99 || curve[0] > 1.01 {
		t.Fatalf("speedup at P=1 should be 1, got %f", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]*0.9 {
			t.Fatalf("speedup curve collapsed: %v", curve)
		}
	}
}

func TestBusyPeak(t *testing.T) {
	root := buildBalanced(6, 1000, 1)
	res := Replay(root, ReplayConfig{P: 4, StealCost: 1})
	if res.BusyPeak < 2 || res.BusyPeak > 4 {
		t.Fatalf("BusyPeak = %d", res.BusyPeak)
	}
}
