package mlang

// Heap-region annotations for the disentanglement effect discipline.
//
// Every ref and array type carries a region (Reg): a union-find variable
// whose resolved value is either *concrete* — "every cell of this type is
// allocated at exactly one static scope" — or ⊤ ("aliased across
// conflicting scopes, or escaping where the checker cannot see"). Regions
// ride along ordinary Hindley–Milner unification: unifying two ref (or
// array) types unifies their regions, and unifying two *different*
// concrete regions is NOT a type error — the merged region collapses to ⊤
// and the affected access sites merely lose their elision proof and fall
// back to the managed barriers.
//
// Scopes model the heap path. Within one function body, inference threads
// a current scope through the expression in evaluation order; `par` in
// scope σ gives its branches fresh scopes σL, σR and continues afterwards
// in a join scope σ2 with ancestry edges σ ⊑ σL, σ ⊑ σR, σ ⊑ σ2,
// σL ⊑ σ2, σR ⊑ σ2. The reading of s ⊑ t is: within one activation of the
// body, an object allocated at scope s is on the task's heap path (its
// own leaf or an ancestor heap) whenever execution is at scope t — branch
// allocations merge into the parent heap at the join, which is exactly
// the σL ⊑ σ2 edge. Scopes of different bodies are incomparable: a
// function body may be activated from many tasks, so nothing relates its
// scopes to its callers' heaps. (Values reach a body from another
// activation only through parameters, captures, returns, or escaping
// cells; all of those either unify the regions involved — collapsing
// conflicting ones to ⊤ — or are rejected by the cross-body check.)
type Reg struct {
	parent *Reg
	state  regState
	body   int32 // allocation body, valid when state == regConcrete
	scope  int32 // allocation scope within body, valid when regConcrete
	id     int   // stable id for reports (creation order)
}

type regState uint8

const (
	regVar      regState = iota // unconstrained variable
	regConcrete                 // allocated at exactly one static scope
	regTop                      // ⊤: aliased across scopes or escaping
)

// find resolves the union-find representative with path halving.
func (r *Reg) find() *Reg {
	for r.parent != nil {
		if r.parent.parent != nil {
			r.parent = r.parent.parent
		}
		r = r.parent
	}
	return r
}

// unifyReg merges two regions. nil operands (types built before analysis
// existed, or synthesized in tests) are ignored.
func unifyReg(a, b *Reg) {
	if a == nil || b == nil {
		return
	}
	a, b = a.find(), b.find()
	if a == b {
		return
	}
	switch {
	case a.state == regTop:
		b.parent = a
	case b.state == regTop:
		a.parent = b
	case a.state == regVar:
		a.parent = b
	case b.state == regVar:
		b.parent = a
	default: // both concrete: equal scopes merge, different ones collapse
		if a.body == b.body && a.scope == b.scope {
			b.parent = a
		} else {
			a.state = regTop
			b.parent = a
		}
	}
}

// scopeRef names one scope of one body.
type scopeRef struct{ body, scope int32 }

// bodyInfo is the scope DAG of one function body. anc[s] holds the strict
// ancestors of scope s under ⊑ (reachability); bodies are small, so an
// explicit set per scope is fine.
type bodyInfo struct {
	anc []map[int32]struct{}
}

// site records one barriered access or allocation the verdict pass will
// rule on: the primitive expression, where it executes (body+scope), the
// holder/alloc region, and the element type (resolved at verdict time for
// the immediacy and stored-value-region tests).
type site struct {
	e    *Prim
	at   scopeRef
	reg  *Reg // holder region ("!", ":=", "sub", "update", "reduce") or the fresh region ("ref", "array", "tabulate")
	elem Type
}

// newBody starts a fresh body with root scope 0.
func (c *checker) newBody() scopeRef {
	c.bodies = append(c.bodies, &bodyInfo{anc: []map[int32]struct{}{{}}})
	return scopeRef{body: int32(len(c.bodies) - 1), scope: 0}
}

// newScope adds a scope to body whose ancestors are the union of each
// pred's ancestors plus the pred itself.
func (c *checker) newScope(body int32, preds ...int32) scopeRef {
	b := c.bodies[body]
	anc := map[int32]struct{}{}
	for _, p := range preds {
		for a := range b.anc[p] {
			anc[a] = struct{}{}
		}
		anc[p] = struct{}{}
	}
	b.anc = append(b.anc, anc)
	return scopeRef{body: body, scope: int32(len(b.anc) - 1)}
}

// onPath reports s ⊑ t within one body: objects allocated at s are on the
// heap path at t.
func (c *checker) onPath(body, s, t int32) bool {
	if s == t {
		return true
	}
	_, ok := c.bodies[body].anc[t][s]
	return ok
}

// concreteReg mints the region of an allocation site at the current scope.
func (c *checker) concreteReg() *Reg {
	c.nregs++
	return &Reg{state: regConcrete, body: c.at.body, scope: c.at.scope, id: c.nregs}
}

// varReg mints an unconstrained region variable (for ref/array types the
// checker invents at use sites).
func (c *checker) varReg() *Reg {
	c.nregs++
	return &Reg{state: regVar, id: c.nregs}
}

// record notes an access/allocation site for the verdict pass.
func (c *checker) record(e *Prim, reg *Reg, elem Type) {
	c.sites = append(c.sites, &site{e: e, at: c.at, reg: reg, elem: elem})
}
