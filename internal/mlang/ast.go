package mlang

// Expr is an AST node. Every node carries its source position for error
// reporting; the type checker fills Type in during inference.
type Expr interface {
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// IntLit is an integer literal.
type IntLit struct {
	pos
	Val int64
}

// BoolLit is true or false.
type BoolLit struct {
	pos
	Val bool
}

// UnitLit is ().
type UnitLit struct{ pos }

// StrLit is a string literal.
type StrLit struct {
	pos
	Val string
}

// Var is a variable reference.
type Var struct {
	pos
	Name string
}

// Fn is a lambda: fn x => body.
type Fn struct {
	pos
	Param string
	Body  Expr
}

// App is function application.
type App struct {
	pos
	Fun, Arg Expr
}

// Let binds a value: let val x = e1 in e2 end.
type Let struct {
	pos
	Name string
	Bind Expr
	Body Expr
}

// LetFun binds a recursive function: let fun f x = e1 in e2 end.
type LetFun struct {
	pos
	Name  string
	Param string
	FBody Expr
	Body  Expr
}

// If is a conditional.
type If struct {
	pos
	Cond, Then, Else Expr
}

// Tuple is (e1, ..., ek), k >= 2.
type Tuple struct {
	pos
	Elems []Expr
}

// Proj is #i e (1-based, as in SML).
type Proj struct {
	pos
	Index int
	Arg   Expr
}

// Par is par (e1, e2): evaluate in parallel, yield the pair.
type Par struct {
	pos
	Left, Right Expr
}

// Prim is a primitive application: arithmetic, comparisons, refs, arrays.
type Prim struct {
	pos
	Op   string // "+", "-", "*", "div", "mod", "<", "<=", ">", ">=", "=", "<>", "~", "not", "ref", "!", ":=", "array", "sub", "update", "length", "print", "andalso", "orelse", ";"
	Args []Expr
}
