package mlang

import (
	"fmt"
	"strconv"
)

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error is a positioned front-end error (lexing, parsing, or typing).
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
func isAlpha(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_' || b == '\''
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	// Skip whitespace and (* ... *) comments, which nest.
	for l.pos < len(l.src) {
		b := l.peekByte()
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			l.advance()
			continue
		}
		if b == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			depth := 0
			for l.pos < len(l.src) {
				if l.peekByte() == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
					l.advance()
					l.advance()
					depth++
				} else if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ')' {
					l.advance()
					l.advance()
					depth--
					if depth == 0 {
						break
					}
				} else {
					l.advance()
				}
			}
			if depth != 0 {
				return token{}, l.errf("unterminated comment")
			}
			continue
		}
		break
	}
	line, col := l.line, l.col
	mk := func(k kind) token { return token{kind: k, line: line, col: col} }
	if l.pos >= len(l.src) {
		return mk(EOF), nil
	}
	b := l.advance()
	switch {
	case isDigit(b):
		start := l.pos - 1
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token{}, l.errf("bad integer %q", text)
		}
		t := mk(INT)
		t.num = n
		return t, nil
	case isAlpha(b):
		start := l.pos - 1
		for l.pos < len(l.src) && (isAlpha(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if k, ok := keywords[text]; ok {
			return mk(k), nil
		}
		t := mk(IDENT)
		t.text = text
		return t, nil
	case b == '"':
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '"' {
			l.advance()
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		text := l.src[start:l.pos]
		l.advance() // closing quote
		t := mk(STRING)
		t.text = text
		return t, nil
	}
	two := func(nextB byte, yes, no kind) token {
		if l.peekByte() == nextB {
			l.advance()
			return mk(yes)
		}
		return mk(no)
	}
	switch b {
	case '(':
		return mk(LPAREN), nil
	case ')':
		return mk(RPAREN), nil
	case ',':
		return mk(COMMA), nil
	case ';':
		return mk(SEMI), nil
	case '+':
		return mk(PLUS), nil
	case '-':
		return mk(MINUS), nil
	case '*':
		return mk(STAR), nil
	case '~':
		return mk(TILDE), nil
	case '#':
		return mk(HASH), nil
	case '!':
		return mk(BANG), nil
	case '=':
		return two('>', DARROW, EQ), nil
	case ':':
		if l.peekByte() == '=' {
			l.advance()
			return mk(ASSIGN), nil
		}
		return token{}, l.errf("unexpected ':'")
	case '<':
		if l.peekByte() == '>' {
			l.advance()
			return mk(NEQ), nil
		}
		return two('=', LE, LT), nil
	case '>':
		return two('=', GE, GT), nil
	}
	return token{}, l.errf("unexpected character %q", b)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == EOF {
			return out, nil
		}
	}
}
