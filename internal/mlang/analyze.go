package mlang

import (
	"fmt"
	"sort"
	"strings"
)

// Verdict is the disentanglement ruling for one barriered access or
// allocation site: either the site is provably disentangled and compiles
// to the unchecked fast path, or it falls back to the managed barriers
// with a reason.
type Verdict struct {
	Line, Col int
	Op        string // "ref", "array", "!", ":=", "sub", "update", "tabulate", "reduce"
	Fast      bool
	Reason    string
}

// Analysis is the result of the disentanglement effect analysis: the
// program type plus a per-site verdict map the compiler consults when
// choosing between checked and unchecked opcodes.
type Analysis struct {
	Type     Type
	Verdicts []*Verdict // one per access/allocation site, source order
	Proven   int        // sites compiled to the fast path
	Fallback int        // sites kept on the managed barriers
	Regions  int        // distinct proven static allocation regions

	fast map[*Prim]bool
}

// FastSite reports whether the analysis proved the site disentangled.
// Used by CompileWith; nil-safe on the Analysis for the checked build.
func (a *Analysis) FastSite(e Expr) bool {
	if a == nil {
		return false
	}
	p, ok := e.(*Prim)
	return ok && a.fast[p]
}

// immediateType reports whether t resolves to an unboxed scalar. Reads of
// immediate elements can never yield a reference, so the read barrier's
// slow path is statically unreachable (mem.LoadChecked only diverts on
// reference values) and the stores can never publish a pointer — eliding
// the barrier is behavior-identical for ANY program, entangled or not.
func immediateType(t Type) bool {
	c, ok := resolve(t).(*TCon)
	return ok && (c.Name == "int" || c.Name == "bool" || c.Name == "unit")
}

// regionOf extracts the (representative) region of a ref or array type,
// nil for every other type.
func regionOf(t Type) *Reg {
	switch t := resolve(t).(type) {
	case *TRef:
		if t.R != nil {
			return t.R.find()
		}
	case *TArray:
		if t.R != nil {
			return t.R.find()
		}
	}
	return nil
}

// Analyze type-checks e and rules on every mutable-access site. It never
// fails on effect grounds — conflicting regions collapse to ⊤ and the
// affected sites fall back — so the error is exactly Check's.
func Analyze(e Expr) (*Analysis, error) {
	c := newChecker()
	typ, err := c.infer(nil, e)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Type: typ, fast: make(map[*Prim]bool, len(c.sites))}
	verdicts := make(map[*site]*Verdict, len(c.sites))
	rule := func(s *site, fast bool, reason string) {
		line, col := s.e.Pos()
		verdicts[s] = &Verdict{Line: line, Col: col, Op: s.e.Op, Fast: fast, Reason: reason}
	}

	// Pass 1 — writes. A ref-valued store elides only when it is provably
	// an up-or-same-heap pointer: value region ⊑ holder region ⊑ store
	// scope, all concrete in the store's own body. (Up-pointers need no
	// remembering, no candidate bit, no pin — OnWrite would classify them
	// free — and the relation is stable under joins, which only merge
	// heaps upward.) Any boxed store that cannot be proven makes the
	// holder region unclean: a down- or cross-pointer may now sit in its
	// cells, so region-based READ elision of that region is off too.
	unclean := make(map[*Reg]bool)
	for _, s := range c.sites {
		switch s.e.Op {
		case ":=", "update":
			if immediateType(s.elem) {
				rule(s, true, "immediate element")
				continue
			}
			ho := s.reg.find()
			fast, reason := writeRuling(c, s, ho)
			rule(s, fast, reason)
			if !fast && ho.state == regConcrete {
				unclean[ho] = true
			}
		case "tabulate":
			if immediateType(s.elem) {
				rule(s, true, "immediate element")
			} else {
				// Parallel leaves store boxed results into the caller's
				// array: real down-pointers the runtime must remember.
				rule(s, false, "boxed elements stored from parallel leaves")
				unclean[s.reg.find()] = true
			}
		}
	}

	// Pass 2 — reads. Immediate elements always elide; a ref-valued read
	// elides when the holder's region is concrete, on the heap path at
	// the read scope, and clean (every store into it proven up-or-same):
	// then the loaded reference is itself on the reader's path, where
	// objects cannot move or be reclaimed while the reader lives.
	for _, s := range c.sites {
		switch s.e.Op {
		case "!", "sub":
			if immediateType(s.elem) {
				rule(s, true, "immediate element")
				continue
			}
			ho := s.reg.find()
			if ok, reason := holderOnPath(c, s, ho); !ok {
				rule(s, false, reason)
			} else if unclean[ho] {
				rule(s, false, "region receives unproven stores")
			} else {
				rule(s, true, fmt.Sprintf("region-local read (r%d)", ho.id))
			}
		case "reduce":
			if immediateType(s.elem) {
				rule(s, true, "immediate element")
			} else {
				rule(s, false, "boxed elements")
			}
		}
	}

	// Pass 3 — allocations. A site whose region survived inference
	// concrete is a proven static region: its objects compile to straight
	// bump allocation (with the managed path as the budget/limit
	// fallback). A collapsed region means the cell aliases another scope
	// or escapes where the checker cannot see; keep the managed path.
	regions := make(map[*Reg]bool)
	for _, s := range c.sites {
		switch s.e.Op {
		case "ref", "array":
			ho := s.reg.find()
			if ho.state == regConcrete {
				regions[ho] = true
				rule(s, true, fmt.Sprintf("static region r%d", ho.id))
			} else {
				rule(s, false, "region aliased across scopes or escaping (⊤)")
			}
		case "tabulate":
			if ho := s.reg.find(); ho.state == regConcrete && verdicts[s].Fast {
				regions[ho] = true
			}
		}
	}
	a.Regions = len(regions)

	for _, s := range c.sites {
		v := verdicts[s]
		a.Verdicts = append(a.Verdicts, v)
		a.fast[s.e] = v.Fast
		if v.Fast {
			a.Proven++
		} else {
			a.Fallback++
		}
	}
	return a, nil
}

// writeRuling decides a ref-valued store and names the failing condition.
func writeRuling(c *checker, s *site, ho *Reg) (bool, string) {
	if ok, reason := holderOnPath(c, s, ho); !ok {
		return false, reason
	}
	vr := regionOf(s.elem)
	if vr == nil {
		return false, "boxed element without a region (tuple/function/string)"
	}
	switch vr.state {
	case regTop:
		return false, "stored value's region is ⊤"
	case regVar:
		return false, "stored value's region unknown"
	}
	if vr.body != s.at.body {
		return false, "stored value allocated in another function body"
	}
	if !c.onPath(s.at.body, vr.scope, ho.scope) {
		return false, "store would create a down-pointer (value deeper than holder)"
	}
	return true, fmt.Sprintf("up-or-same store (r%d into r%d)", vr.id, ho.id)
}

// holderOnPath checks the holder region is concrete and on the heap path
// at the access scope.
func holderOnPath(c *checker, s *site, ho *Reg) (bool, string) {
	switch ho.state {
	case regTop:
		return false, "region ⊤ (aliased across scopes or escaping)"
	case regVar:
		return false, "region unknown"
	}
	if ho.body != s.at.body {
		return false, "cross-function access (holder allocated in another body)"
	}
	if !c.onPath(s.at.body, ho.scope, s.at.scope) {
		return false, "holder allocated in a concurrent branch"
	}
	return true, ""
}

// Report renders the per-site verdicts, sorted by source position, for
// cmd/mplgo's -dis-report flag (and the golden tests).
func (a *Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "disentanglement: %d proven, %d fallback, %d static regions\n",
		a.Proven, a.Fallback, a.Regions)
	sorted := make([]*Verdict, len(a.Verdicts))
	copy(sorted, a.Verdicts)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Line != sorted[j].Line {
			return sorted[i].Line < sorted[j].Line
		}
		return sorted[i].Col < sorted[j].Col
	})
	for _, v := range sorted {
		state := "proven  "
		if !v.Fast {
			state = "fallback"
		}
		fmt.Fprintf(&b, "  %3d:%-3d %-8s %s %s\n", v.Line, v.Col, v.Op, state, v.Reason)
	}
	return b.String()
}
