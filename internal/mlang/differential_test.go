package mlang

import (
	"os"
	"path/filepath"
	"testing"

	"mplgo/internal/chaos"
	"mplgo/mpl"
)

// The differential suite: every program runs twice — checked (managed
// barriers everywhere) and elided (unchecked opcodes at proven sites) —
// and the two runs must agree on rendered value and printed output. For
// programs whose analysis proves every site, the elided run must also
// report a completely cold entanglement slow path: zero SlowReads means
// entangle.OnRead was never invoked, not merely that nothing was
// entangled.

// diffCorpus collects the self-contained programs of the unit tests plus
// elision-specific shapes (clean region reads, unclean regions, branch
// allocation, escaping cells). fullyElided marks programs the analysis
// must prove at every site — asserted via the verdict counts and the
// zero-slow-path check.
var diffCorpus = []struct {
	name        string
	src         string
	fullyElided bool
}{
	{"refseq", `let val r = ref 0 in (r := !r + 1; r := !r + 1; !r) end`, true},
	{"arrays", `
		let val a = array (10, 0) in
		let fun fill i = if i >= length a then () else (update (a, i, i * i); fill (i + 1)) in
		let fun sum i = if i >= length a then 0 else sub (a, i) + sum (i + 1) in
		(fill 0; sum 0)
		end end end`, true},
	{"parfib", parFibSrc, true},
	{"gcpressure", `
		let fun loop n =
		  if n = 0 then 0
		  else let val p = (n, n * 2, (n, n)) in #1 (#3 p) - n + loop (n - 1) end
		in loop 3000 end`, true},
	{"tabreduce", `reduce (tabulate (5000, fn i => i * i), 0, fn a => fn b => a + b)`, true},
	// A clean boxed region: refs allocated at the root scope, stored and
	// read in the same scope — the region-local read rule, not the
	// immediate rule, proves the derefs of the outer cell.
	{"cleanboxed", `
		let val inner = ref 3 in
		let val outer = ref inner in
		(outer := inner; ! (!outer))
		end end`, true},
	// Branch-allocated cells read at the join scope: the branch scopes are
	// ancestry-below the join (heaps merge upward), so the allocs stay
	// proven and the immediate derefs elide.
	{"branchref", `
		let val p = par (ref 1, ref 2) in
		! (#1 p) + ! (#2 p)
		end`, true},
	// Entangled handoff: per-expression fallback keeps the managed
	// entanglement protocol for the cell while the polling arithmetic
	// still elides.
	{"entangled", `
		let val shared = ref (ref 0) in
		let val p = par (
		    (shared := ref 42; 1),
		    let fun spin u =
		      let val v = ! (!shared) in
		      if v = 42 then v else spin ()
		      end
		    in spin () end)
		in #2 p end end`, false},
	// Print interleaving with par is nondeterministic, so keep print
	// programs sequential.
	{"print", `(print 1; print 2; print (3 * 4); ())`, true},
}

func runBoth(t *testing.T, name, src string, cfg mpl.Config) (*Result, *Result) {
	t.Helper()
	checked, err := RunChecked(src, cfg)
	if err != nil {
		t.Fatalf("%s: checked: %v", name, err)
	}
	elided, err := Run(src, cfg)
	if err != nil {
		t.Fatalf("%s: elided: %v", name, err)
	}
	if checked.Rendered != elided.Rendered {
		t.Errorf("%s: rendered diverges: checked %q, elided %q", name, checked.Rendered, elided.Rendered)
	}
	if checked.Output != elided.Output {
		t.Errorf("%s: output diverges: checked %q, elided %q", name, checked.Output, elided.Output)
	}
	return checked, elided
}

// assertCold asserts a fully-elided run never entered the entanglement
// slow path and actually exercised the unchecked accessors (when the
// program has any proven access at all).
func assertCold(t *testing.T, name string, res *Result) {
	t.Helper()
	if res.Analysis == nil {
		t.Fatalf("%s: elided run carries no analysis", name)
	}
	if res.Analysis.Fallback != 0 {
		t.Errorf("%s: expected full elision, got %d fallback sites:\n%s",
			name, res.Analysis.Fallback, res.Analysis.Report())
	}
	s := res.Runtime.EntStats()
	if s.SlowReads != 0 || s.EntangledReads != 0 {
		t.Errorf("%s: elided run hit the slow path: %d slow reads, %d entangled",
			name, s.SlowReads, s.EntangledReads)
	}
	es := res.Runtime.ElisionStats()
	if res.Analysis.Proven > 0 && es.ElidedLoads+es.ElidedStores+es.ElidedAllocs == 0 {
		t.Errorf("%s: %d proven sites but no unchecked access executed", name, res.Analysis.Proven)
	}
}

func TestDifferentialCorpus(t *testing.T) {
	for _, c := range diffCorpus {
		for _, procs := range []int{1, 2} {
			_, elided := runBoth(t, c.name, c.src, mpl.Config{Procs: procs})
			if c.fullyElided {
				assertCold(t, c.name, elided)
			}
		}
	}
}

func TestDifferentialExamplePrograms(t *testing.T) {
	dir := "../../examples/mlang/programs"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".mpl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		_, elided := runBoth(t, e.Name(), string(src), mpl.Config{Procs: 2})
		// Every shipped example except the deliberately entangled handoff
		// is fully disentangled and must run completely cold.
		if e.Name() != "handoff.mpl" {
			assertCold(t, e.Name(), elided)
		} else if elided.Analysis.Fallback == 0 {
			t.Error("handoff.mpl: entangled program reported no fallback sites")
		}
	}
}

// TestDifferentialUnderChaos repeats the comparison under chaos
// injection with a small heap budget: forced collections at most
// allocations, perturbed steals, and join-time heap audits. Elision must
// not change results even when the fast-alloc path is constantly forced
// into its managed fallback.
func TestDifferentialUnderChaos(t *testing.T) {
	opts := chaos.Soak()
	for _, c := range diffCorpus {
		for _, seed := range []int64{3, 11} {
			cfg := mpl.Config{Procs: 2, HeapBudgetWords: 1024, Seed: seed, Chaos: &opts}
			runBoth(t, c.name, c.src, cfg)
		}
	}
}

// TestElisionFallbackSemantics pins behaviors the fallback boundary must
// preserve: GC keeps running when every alloc is fast (budget fallback),
// and detect mode still aborts entangled programs under elision.
func TestElisionFallbackSemantics(t *testing.T) {
	res, err := Run(`
		let fun loop n =
		  if n = 0 then 0
		  else let val r = ref (n * 2) in !r - n + loop (n - 1) end
		in loop 3000 end`, mpl.Config{Procs: 1, HeapBudgetWords: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.AsInt() != 3000*3001/2 {
		t.Fatalf("ref loop = %d", res.Value.AsInt())
	}
	if c, _, _ := res.Runtime.GCStats(); c == 0 {
		t.Fatal("fast allocation starved the collector: no collections under a 512-word budget")
	}

	for _, c := range diffCorpus {
		if c.name != "entangled" {
			continue
		}
		if _, err := Run(c.src, mpl.Config{Procs: 1, Mode: mpl.Detect}); err == nil {
			t.Fatal("detect mode accepted an entangled program under elision")
		}
	}
}
