package mlang

import (
	"fmt"
	"strings"
)

// Type is an mlang type. Inference is unification-based in the
// Hindley–Milner style but with monomorphic let (no generalization),
// which keeps the checker small; polymorphic uses of a binding need
// separate bindings, as the examples do.
type Type interface {
	String() string
}

// TCon is a type constant: int, bool, unit, string.
type TCon struct{ Name string }

func (t *TCon) String() string { return t.Name }

// Predefined constants.
var (
	TInt    = &TCon{"int"}
	TBool   = &TCon{"bool"}
	TUnit   = &TCon{"unit"}
	TString = &TCon{"string"}
)

// TTuple is a product type.
type TTuple struct{ Elems []Type }

func (t *TTuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " * ") + ")"
}

// TArrow is a function type.
type TArrow struct{ Dom, Cod Type }

func (t *TArrow) String() string { return "(" + t.Dom.String() + " -> " + t.Cod.String() + ")" }

// TRef is a mutable cell type. R is its heap-region annotation (see
// region.go); String omits it so type rendering is unchanged.
type TRef struct {
	Elem Type
	R    *Reg
}

func (t *TRef) String() string { return t.Elem.String() + " ref" }

// TArray is a mutable array type. R is its heap-region annotation.
type TArray struct {
	Elem Type
	R    *Reg
}

func (t *TArray) String() string { return t.Elem.String() + " array" }

// TVar is an inference variable; Bound is non-nil once unified.
type TVar struct {
	ID    int
	Bound Type
}

func (t *TVar) String() string {
	if t.Bound != nil {
		return t.Bound.String()
	}
	return fmt.Sprintf("'t%d", t.ID)
}

// checker performs inference. Alongside Hindley–Milner unification it
// threads the disentanglement effect analysis: a current scope (c.at,
// advanced in evaluation order; par introduces branch and join scopes),
// per-body scope DAGs, region variables on ref/array types, and a record
// of every barriered access site for the verdict pass (see analyze.go).
type checker struct {
	nvars  int
	nregs  int
	bodies []*bodyInfo
	sites  []*site
	at     scopeRef
}

func newChecker() *checker {
	c := &checker{}
	c.at = c.newBody() // body 0 is the program's main body
	return c
}

func (c *checker) fresh() *TVar {
	c.nvars++
	return &TVar{ID: c.nvars}
}

// resolve chases variable bindings to the representative type.
func resolve(t Type) Type {
	for {
		v, ok := t.(*TVar)
		if !ok || v.Bound == nil {
			return t
		}
		t = v.Bound
	}
}

// occurs reports whether v appears in t (prevents infinite types).
func occurs(v *TVar, t Type) bool {
	switch t := resolve(t).(type) {
	case *TVar:
		return t == v
	case *TTuple:
		for _, e := range t.Elems {
			if occurs(v, e) {
				return true
			}
		}
	case *TArrow:
		return occurs(v, t.Dom) || occurs(v, t.Cod)
	case *TRef:
		return occurs(v, t.Elem)
	case *TArray:
		return occurs(v, t.Elem)
	}
	return false
}

func (c *checker) unify(a, b Type, e Expr) error {
	a, b = resolve(a), resolve(b)
	if a == b {
		return nil
	}
	if v, ok := a.(*TVar); ok {
		if occurs(v, b) {
			return typeErr(e, "infinite type: %s ~ %s", a, b)
		}
		v.Bound = b
		return nil
	}
	if _, ok := b.(*TVar); ok {
		return c.unify(b, a, e)
	}
	switch at := a.(type) {
	case *TCon:
		if bt, ok := b.(*TCon); ok && at.Name == bt.Name {
			return nil
		}
	case *TTuple:
		bt, ok := b.(*TTuple)
		if ok && len(at.Elems) == len(bt.Elems) {
			for i := range at.Elems {
				if err := c.unify(at.Elems[i], bt.Elems[i], e); err != nil {
					return err
				}
			}
			return nil
		}
	case *TArrow:
		if bt, ok := b.(*TArrow); ok {
			if err := c.unify(at.Dom, bt.Dom, e); err != nil {
				return err
			}
			return c.unify(at.Cod, bt.Cod, e)
		}
	case *TRef:
		if bt, ok := b.(*TRef); ok {
			unifyReg(at.R, bt.R)
			return c.unify(at.Elem, bt.Elem, e)
		}
	case *TArray:
		if bt, ok := b.(*TArray); ok {
			unifyReg(at.R, bt.R)
			return c.unify(at.Elem, bt.Elem, e)
		}
	}
	return typeErr(e, "type mismatch: %s vs %s", a, b)
}

func typeErr(e Expr, format string, args ...any) error {
	line, col := e.Pos()
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// tenv is a persistent type environment.
type tenv struct {
	name string
	typ  Type
	next *tenv
}

func (env *tenv) lookup(name string) (Type, bool) {
	for e := env; e != nil; e = e.next {
		if e.name == name {
			return e.typ, true
		}
	}
	return nil, false
}

func (env *tenv) bind(name string, t Type) *tenv {
	return &tenv{name: name, typ: t, next: env}
}

// Check infers the type of a program and returns it. (The region/effect
// machinery runs too but its site records are discarded; use Analyze to
// keep them.)
func Check(e Expr) (Type, error) {
	c := newChecker()
	return c.infer(nil, e)
}

func (c *checker) infer(env *tenv, e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return TInt, nil
	case *BoolLit:
		return TBool, nil
	case *UnitLit:
		return TUnit, nil
	case *StrLit:
		return TString, nil
	case *Var:
		t, ok := env.lookup(e.Name)
		if !ok {
			return nil, typeErr(e, "unbound variable %s", e.Name)
		}
		return t, nil
	case *Fn:
		dom := c.fresh()
		// A lambda body is its own scope world: it may be activated from
		// any task, so none of its scopes relate to the enclosing body's.
		saved := c.at
		c.at = c.newBody()
		cod, err := c.infer(env.bind(e.Param, dom), e.Body)
		c.at = saved
		if err != nil {
			return nil, err
		}
		return &TArrow{Dom: dom, Cod: cod}, nil
	case *App:
		ft, err := c.infer(env, e.Fun)
		if err != nil {
			return nil, err
		}
		at, err := c.infer(env, e.Arg)
		if err != nil {
			return nil, err
		}
		res := c.fresh()
		if err := c.unify(ft, &TArrow{Dom: at, Cod: res}, e); err != nil {
			return nil, err
		}
		return res, nil
	case *Let:
		bt, err := c.infer(env, e.Bind)
		if err != nil {
			return nil, err
		}
		return c.infer(env.bind(e.Name, bt), e.Body)
	case *LetFun:
		dom, cod := c.fresh(), c.fresh()
		ft := &TArrow{Dom: dom, Cod: cod}
		fenv := env.bind(e.Name, ft).bind(e.Param, dom)
		saved := c.at
		c.at = c.newBody()
		bt, err := c.infer(fenv, e.FBody)
		c.at = saved
		if err != nil {
			return nil, err
		}
		if err := c.unify(cod, bt, e); err != nil {
			return nil, err
		}
		return c.infer(env.bind(e.Name, ft), e.Body)
	case *If:
		ct, err := c.infer(env, e.Cond)
		if err != nil {
			return nil, err
		}
		if err := c.unify(ct, TBool, e.Cond); err != nil {
			return nil, err
		}
		// Branches run in the current scope (sequential alternatives); a
		// par inside a branch advances it, so the continuation resumes in
		// a scope reachable from either branch's end. Holding a value of a
		// branch-internal region proves that branch ran, so the union of
		// both ends' ancestries is sound.
		s0 := c.at
		tt, err := c.infer(env, e.Then)
		if err != nil {
			return nil, err
		}
		s1 := c.at
		c.at = s0
		et, err := c.infer(env, e.Else)
		if err != nil {
			return nil, err
		}
		s2 := c.at
		if s1 != s0 || s2 != s0 {
			c.at = c.newScope(s0.body, s1.scope, s2.scope)
		}
		if err := c.unify(tt, et, e); err != nil {
			return nil, err
		}
		return tt, nil
	case *Tuple:
		elems := make([]Type, len(e.Elems))
		for i, el := range e.Elems {
			t, err := c.infer(env, el)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		return &TTuple{Elems: elems}, nil
	case *Proj:
		at, err := c.infer(env, e.Arg)
		if err != nil {
			return nil, err
		}
		tt, ok := resolve(at).(*TTuple)
		if !ok {
			return nil, typeErr(e, "#%d applied to non-tuple type %s", e.Index, at)
		}
		if e.Index > len(tt.Elems) {
			return nil, typeErr(e, "#%d out of range for %s", e.Index, at)
		}
		return tt.Elems[e.Index-1], nil
	case *Par:
		// par in scope σ: branches get fresh child scopes σL, σR; the
		// continuation runs in a join scope σ2 on whose heap path both
		// branches' allocations sit (their heaps merged at the join).
		enter := c.at
		c.at = c.newScope(enter.body, enter.scope)
		lt, err := c.infer(env, e.Left)
		if err != nil {
			return nil, err
		}
		lEnd := c.at.scope
		c.at = c.newScope(enter.body, enter.scope)
		rt, err := c.infer(env, e.Right)
		if err != nil {
			return nil, err
		}
		rEnd := c.at.scope
		c.at = c.newScope(enter.body, enter.scope, lEnd, rEnd)
		return &TTuple{Elems: []Type{lt, rt}}, nil
	case *Prim:
		return c.inferPrim(env, e)
	}
	return nil, typeErr(e, "internal: unknown expression %T", e)
}

func (c *checker) inferPrim(env *tenv, e *Prim) (Type, error) {
	arg := func(i int) (Type, error) { return c.infer(env, e.Args[i]) }
	want := func(i int, t Type) error {
		at, err := arg(i)
		if err != nil {
			return err
		}
		return c.unify(at, t, e.Args[i])
	}
	switch e.Op {
	case "+", "-", "*", "div", "mod":
		if err := want(0, TInt); err != nil {
			return nil, err
		}
		if err := want(1, TInt); err != nil {
			return nil, err
		}
		return TInt, nil
	case "<", "<=", ">", ">=", "=", "<>":
		if err := want(0, TInt); err != nil {
			return nil, err
		}
		if err := want(1, TInt); err != nil {
			return nil, err
		}
		return TBool, nil
	case "andalso", "orelse":
		if err := want(0, TBool); err != nil {
			return nil, err
		}
		if err := want(1, TBool); err != nil {
			return nil, err
		}
		return TBool, nil
	case "~":
		if err := want(0, TInt); err != nil {
			return nil, err
		}
		return TInt, nil
	case "not":
		if err := want(0, TBool); err != nil {
			return nil, err
		}
		return TBool, nil
	case "ref":
		t, err := arg(0)
		if err != nil {
			return nil, err
		}
		r := c.concreteReg()
		c.record(e, r, t)
		return &TRef{Elem: t, R: r}, nil
	case "!":
		t, err := arg(0)
		if err != nil {
			return nil, err
		}
		el := c.fresh()
		r := c.varReg()
		if err := c.unify(t, &TRef{Elem: el, R: r}, e); err != nil {
			return nil, err
		}
		c.record(e, r, el)
		return el, nil
	case ":=":
		t, err := arg(0)
		if err != nil {
			return nil, err
		}
		el := c.fresh()
		r := c.varReg()
		if err := c.unify(t, &TRef{Elem: el, R: r}, e.Args[0]); err != nil {
			return nil, err
		}
		if err := want(1, el); err != nil {
			return nil, err
		}
		c.record(e, r, el)
		return TUnit, nil
	case "array":
		if err := want(0, TInt); err != nil {
			return nil, err
		}
		t, err := arg(1)
		if err != nil {
			return nil, err
		}
		r := c.concreteReg()
		c.record(e, r, t)
		return &TArray{Elem: t, R: r}, nil
	case "sub":
		t, err := arg(0)
		if err != nil {
			return nil, err
		}
		el := c.fresh()
		r := c.varReg()
		if err := c.unify(t, &TArray{Elem: el, R: r}, e.Args[0]); err != nil {
			return nil, err
		}
		if err := want(1, TInt); err != nil {
			return nil, err
		}
		c.record(e, r, el)
		return el, nil
	case "update":
		t, err := arg(0)
		if err != nil {
			return nil, err
		}
		el := c.fresh()
		r := c.varReg()
		if err := c.unify(t, &TArray{Elem: el, R: r}, e.Args[0]); err != nil {
			return nil, err
		}
		if err := want(1, TInt); err != nil {
			return nil, err
		}
		if err := want(2, el); err != nil {
			return nil, err
		}
		c.record(e, r, el)
		return TUnit, nil
	case "length":
		t, err := arg(0)
		if err != nil {
			return nil, err
		}
		el := c.fresh()
		if err := c.unify(t, &TArray{Elem: el, R: c.varReg()}, e.Args[0]); err != nil {
			return nil, err
		}
		return TInt, nil
	case "tabulate":
		// tabulate (n, f) builds the array [| f 0, ..., f (n-1) |] in
		// parallel.
		if err := want(0, TInt); err != nil {
			return nil, err
		}
		el := c.fresh()
		if err := want(1, &TArrow{Dom: TInt, Cod: el}); err != nil {
			return nil, err
		}
		r := c.concreteReg()
		c.record(e, r, el)
		return &TArray{Elem: el, R: r}, nil
	case "reduce":
		// reduce (a, z, f) folds a in parallel; z must be an identity of
		// the (associative) combiner f for a deterministic result.
		el := c.fresh()
		r := c.varReg()
		if err := want(0, &TArray{Elem: el, R: r}); err != nil {
			return nil, err
		}
		if err := want(1, el); err != nil {
			return nil, err
		}
		if err := want(2, &TArrow{Dom: el, Cod: &TArrow{Dom: el, Cod: el}}); err != nil {
			return nil, err
		}
		c.record(e, r, el)
		return el, nil
	case "print":
		if err := want(0, TInt); err != nil {
			return nil, err
		}
		return TUnit, nil
	case ";":
		if _, err := arg(0); err != nil {
			return nil, err
		}
		return arg(1)
	}
	return nil, typeErr(e, "internal: unknown primitive %q", e.Op)
}
