package mlang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mplgo/mpl"
)

func evalInt(t *testing.T, src string) int64 {
	t.Helper()
	res, err := Run(src, mpl.Config{Procs: 1})
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	if !res.Value.IsInt() {
		t.Fatalf("Run(%q): non-int result %v", src, res.Value)
	}
	return res.Value.AsInt()
}

func evalErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Run(src, mpl.Config{Procs: 1})
	if err == nil {
		t.Fatalf("Run(%q): expected error", src)
	}
	return err
}

func TestLexer(t *testing.T) {
	toks, err := lexAll(`let val x = 42 in x + 1 end (* comment (* nested *) *) <> <= => := "hi"`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []kind{LET, VAL, IDENT, EQ, INT, IN, IDENT, PLUS, INT, END, NEQ, LE, DARROW, ASSIGN, STRING, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d (%v)", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `(* open`, `@`, `:`} {
		if _, err := lexAll(src); err == nil {
			t.Fatalf("lexAll(%q): expected error", src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]int64{
		`1 + 2 * 3`:                           7,
		`(1 + 2) * 3`:                         9,
		`10 div 3`:                            3,
		`10 mod 3`:                            1,
		`~5 + 2`:                              -3,
		`100 - 42`:                            58,
		`if 1 < 2 then 7 else 8`:              7,
		`if 2 <= 1 then 7 else 8`:             8,
		`if 3 = 3 then 1 else 0`:              1,
		`if 3 <> 3 then 1 else 0`:             0,
		`if true andalso false then 1 else 0`: 0,
		`if true orelse false then 1 else 0`:  1,
		`if not false then 1 else 0`:          1,
	}
	for src, want := range cases {
		if got := evalInt(t, src); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand must not evaluate when the left decides: a
	// division by zero there would fault.
	if got := evalInt(t, `if false andalso (1 div 0 = 0) then 1 else 2`); got != 2 {
		t.Fatal("andalso not short-circuit")
	}
	if got := evalInt(t, `if true orelse (1 div 0 = 0) then 1 else 2`); got != 1 {
		t.Fatal("orelse not short-circuit")
	}
}

func TestLetAndFunctions(t *testing.T) {
	cases := map[string]int64{
		`let val x = 21 in x + x end`:                                                  42,
		`let val x = 1 in let val x = 2 in x end end`:                                  2,
		`(fn x => x + 1) 41`:                                                           42,
		`let val f = fn x => x * 2 in f (f 10) end`:                                    40,
		`let fun fact n = if n = 0 then 1 else n * fact (n - 1) in fact 6 end`:         720,
		`let fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in fib 15 end`: 610,
		// Closures capture their environment.
		`let val a = 10 in let val add = fn x => x + a in add 5 end end`: 15,
		// Nested capture through two lambda levels.
		`let val a = 1 in (fn x => (fn y => a + x + y) 10) 100 end`: 111,
		// Currying.
		`let val add = fn x => fn y => x + y in add 3 4 end`: 7,
		// Recursion referencing an outer binding.
		`let val step = 2 in let fun down n = if n <= 0 then 0 else down (n - step) + 1 in down 10 end end`: 5,
	}
	for src, want := range cases {
		if got := evalInt(t, src); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestTuples(t *testing.T) {
	cases := map[string]int64{
		`#1 (5, 6)`:    5,
		`#2 (5, 6)`:    6,
		`#3 (1, 2, 3)`: 3,
		`let val p = (1 + 1, 2 * 3) in #1 p * #2 p end`: 12,
	}
	for src, want := range cases {
		if got := evalInt(t, src); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestRefsAndSequencing(t *testing.T) {
	cases := map[string]int64{
		`let val r = ref 5 in !r end`:                             5,
		`let val r = ref 5 in (r := 7; !r) end`:                   7,
		`let val r = ref 0 in (r := !r + 1; r := !r + 1; !r) end`: 2,
	}
	for src, want := range cases {
		if got := evalInt(t, src); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestArrays(t *testing.T) {
	src := `
	let val a = array (10, 0) in
	let fun fill i = if i >= length a then () else (update (a, i, i * i); fill (i + 1)) in
	let fun sum i = if i >= length a then 0 else sub (a, i) + sum (i + 1) in
	(fill 0; sum 0)
	end end end`
	if got := evalInt(t, src); got != 285 {
		t.Fatalf("array program = %d, want 285", got)
	}
}

func TestPar(t *testing.T) {
	cases := map[string]int64{
		`#1 (par (1 + 1, 2 + 2)) + #2 (par (1 + 1, 2 + 2))`:     6,
		`let val p = par (10 * 10, 20 * 20) in #1 p + #2 p end`: 500,
	}
	for src, want := range cases {
		if got := evalInt(t, src); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

const parFibSrc = `
let fun fib n =
  if n < 2 then n
  else if n < 10 then fib (n - 1) + fib (n - 2)
  else let val p = par (fib (n - 1), fib (n - 2)) in #1 p + #2 p end
in fib 18 end`

func TestParFib(t *testing.T) {
	for _, procs := range []int{1, 4} {
		res, err := Run(parFibSrc, mpl.Config{Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value.AsInt() != 2584 {
			t.Fatalf("procs=%d: fib 18 = %d", procs, res.Value.AsInt())
		}
	}
}

func TestEntangledProgram(t *testing.T) {
	// The left branch publishes a ref of a ref into shared state; the
	// right branch reads through it: entanglement, managed transparently.
	src := `
	let val shared = ref (ref 0) in
	let val p = par (
	    (shared := ref 42; 1),
	    let fun spin u =
	      let val v = ! (!shared) in
	      if v = 42 then v else spin ()
	      end
	    in spin () end)
	in #2 p end end`
	res, err := Run(src, mpl.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.AsInt() != 42 {
		t.Fatalf("entangled program = %d", res.Value.AsInt())
	}
	if res.Runtime.EntStats().EntangledReads == 0 {
		t.Fatal("expected entangled reads")
	}
	// Under detect-and-abort the same program is rejected.
	if _, err := Run(src, mpl.Config{Procs: 1, Mode: mpl.Detect}); err == nil {
		t.Fatal("detect mode accepted an entangled program")
	}
}

func TestGCPressure(t *testing.T) {
	// Build and discard tuples in a loop under a small budget: the VM's
	// frames must keep everything precise across collections.
	src := `
	let fun loop n =
	  if n = 0 then 0
	  else let val p = (n, n * 2, (n, n)) in #1 (#3 p) - n + loop (n - 1) end
	in loop 3000 end`
	res, err := Run(src, mpl.Config{Procs: 1, HeapBudgetWords: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.AsInt() != 0 {
		t.Fatalf("GC pressure program = %d, want 0", res.Value.AsInt())
	}
	if c, _, _ := res.Runtime.GCStats(); c == 0 {
		t.Fatal("expected collections")
	}
}

func TestPrintOutput(t *testing.T) {
	res, err := Run(`(print 1; print 2; print (3 * 4); ())`, mpl.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "1\n2\n12\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestRendered(t *testing.T) {
	cases := map[string]string{
		`42`:              "42",
		`true`:            "true",
		`()`:              "()",
		`(1, (true, ()))`: "(1, (true, ()))",
		`ref 7`:           "ref 7",
		`array (3, 9)`:    "[|9, 9, 9|]",
		`fn x => x + 1`:   "fn",
		`"hello"`:         `"hello"`,
	}
	for src, want := range cases {
		res, err := Run(src, mpl.Config{Procs: 1})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if res.Rendered != want {
			t.Errorf("%q rendered %q, want %q", src, res.Rendered, want)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []string{
		`1 + true`,
		`if 1 then 2 else 3`,
		`if true then 1 else false`,
		`(fn x => x + 1) true`,
		`#1 5`,
		`#3 (1, 2)`,
		`!5`,
		`5 := 6`,
		`sub (5, 0)`,
		`update (array (1, 1), 0, true)`,
		`unboundvar`,
		`print true`,
		`let fun f x = f in f end`, // infinite type
	}
	for _, src := range cases {
		_, err := Parse(src)
		if err != nil {
			continue // parse errors also count as rejection
		}
		ast, _ := Parse(src)
		if _, err := Check(ast); err == nil {
			t.Errorf("Check(%q): expected type error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`let val x = 1 in x`, // missing end
		`if 1 then 2`,        // missing else
		`(1, 2`,              // unclosed paren
		`fn => 1`,            // missing param
		`let x = 1 in x end`, // missing val
		`#0 (1,2)`,           // bad index
		`1 2 3 +`,            // trailing operator
		``,                   // empty
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	for _, src := range []string{
		`1 div 0`,
		`1 mod 0`,
		`sub (array (3, 0), 5)`,
		`sub (array (3, 0), ~1)`,
		`update (array (3, 0), 3, 1)`,
		`array (~1, 0)`,
	} {
		err := evalErr(t, src)
		if _, ok := err.(*RuntimeError); !ok {
			t.Errorf("%q: error %v is not a RuntimeError", src, err)
		}
	}
}

func TestTypeString(t *testing.T) {
	res, err := Run(`(1, fn x => x + 1, ref true)`, mpl.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := "(int * (int -> int) * bool ref)"
	if got := res.Type.String(); got != want {
		t.Fatalf("type = %q, want %q", got, want)
	}
}

func TestDisassemble(t *testing.T) {
	ast, err := Parse(`let fun f x = x + 1 in f 1 end`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(ast)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	if !strings.Contains(dis, `fn 1 "f"`) {
		t.Fatalf("disassembly missing function: %s", dis)
	}
}

func TestDeepRecursionStack(t *testing.T) {
	// Many nested activations: frames must nest and pop LIFO.
	src := `let fun down n = if n = 0 then 0 else 1 + down (n - 1) in down 5000 end`
	if got := evalInt(t, src); got != 5000 {
		t.Fatalf("down 5000 = %d", got)
	}
}

func TestTabulate(t *testing.T) {
	cases := map[string]int64{
		`sub (tabulate (10, fn i => i * i), 7)`:                         49,
		`length (tabulate (100, fn i => 0))`:                            100,
		`sub (tabulate (5, fn i => (i, i * 2)), 3)` + ` ; 0`:            0, // tuple elements allocate
		`#2 (sub (tabulate (5, fn i => (i, i * 2)), 3))`:                6,
		`reduce (tabulate (1000, fn i => i), 0, fn a => fn b => a + b)`: 499500,
		`reduce (tabulate (20, fn i => i + 1), 1, fn a => fn b => a * b) mod 1000003`: func() int64 {
			m := int64(1)
			for i := int64(1); i <= 20; i++ {
				m = m * i // 20! fits in int64
			}
			return m % 1000003
		}(),
	}
	for src, want := range cases {
		if got := evalInt(t, src); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestTabulateParallelAndGC(t *testing.T) {
	// Boxed elements under a tiny budget and multiple workers: the VM's
	// frames and the array barriers must keep everything alive and exact.
	src := `
	let val a = tabulate (2000, fn i => (i, i + 1)) in
	reduce (tabulate (2000, fn i => #2 (sub (a, i)) - #1 (sub (a, i))), 0,
	        fn x => fn y => x + y)
	end`
	for _, cfg := range []mpl.Config{
		{Procs: 1, HeapBudgetWords: 2048},
		{Procs: 4, HeapBudgetWords: 4096},
	} {
		res, err := Run(src, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Value.AsInt() != 2000 {
			t.Fatalf("%+v: got %d", cfg, res.Value.AsInt())
		}
	}
}

func TestTabulateTypeErrors(t *testing.T) {
	for _, src := range []string{
		`tabulate (true, fn i => i)`,
		`tabulate (3, 5)`,
		`reduce (tabulate (3, fn i => i), true, fn a => fn b => a + b)`,
		`reduce (5, 0, fn a => fn b => a + b)`,
	} {
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Check(ast); err == nil {
			t.Errorf("Check(%q): expected type error", src)
		}
	}
}

func TestTabulateRuntimeError(t *testing.T) {
	if err := evalErr(t, `tabulate (~3, fn i => i)`); err == nil {
		t.Fatal("negative tabulate must fail")
	}
	// A fault inside a parallel leaf propagates out.
	if err := evalErr(t, `tabulate (100, fn i => 1 div (i - 50))`); err == nil {
		t.Fatal("leaf fault must propagate")
	}
}

func TestExamplePrograms(t *testing.T) {
	dir := "../../examples/mlang/programs"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"fib.mpl":       75025,
		"psum.mpl":      333283335000,
		"sieve.mpl":     669,
		"handoff.mpl":   42,
		"histogram.mpl": 50000,
	}
	ran := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".mpl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 2} {
			res, err := Run(string(src), mpl.Config{Procs: procs})
			if err != nil {
				t.Fatalf("%s (procs=%d): %v", e.Name(), procs, err)
			}
			w, ok := want[e.Name()]
			if !ok {
				t.Fatalf("no expected value for %s (got %s)", e.Name(), res.Rendered)
			}
			if res.Value.AsInt() != w {
				t.Fatalf("%s (procs=%d) = %d, want %d", e.Name(), procs, res.Value.AsInt(), w)
			}
		}
		ran++
	}
	if ran < 5 {
		t.Fatalf("only %d example programs found", ran)
	}
}
