package mlang

import "fmt"

// parser is a recursive-descent parser with precedence climbing.
//
// Precedence, loosest to tightest:
//
//	;  :=  orelse  andalso  (= <> < <= > >=)  (+ -)  (* div mod)  unary  application
type parser struct {
	toks []token
	pos  int
}

// Parse parses a whole program (one expression).
func Parse(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.seqExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != EOF {
		return nil, p.errf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) take() token    { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k kind) bool { return p.peek().kind == k }

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k kind) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, found %s", k, p.peek())
	}
	return p.take(), nil
}

func (p *parser) posOf(t token) pos { return pos{t.line, t.col} }

// seqExpr := assignExpr (';' assignExpr)*
func (p *parser) seqExpr() (Expr, error) {
	e, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	for p.at(SEMI) {
		t := p.take()
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		e = &Prim{pos: p.posOf(t), Op: ";", Args: []Expr{e, r}}
	}
	return e, nil
}

// assignExpr := orExpr [':=' assignExpr]
func (p *parser) assignExpr() (Expr, error) {
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.at(ASSIGN) {
		t := p.take()
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Prim{pos: p.posOf(t), Op: ":=", Args: []Expr{e, r}}, nil
	}
	return e, nil
}

func (p *parser) orExpr() (Expr, error) {
	e, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(ORELSE) {
		t := p.take()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		e = &Prim{pos: p.posOf(t), Op: "orelse", Args: []Expr{e, r}}
	}
	return e, nil
}

func (p *parser) andExpr() (Expr, error) {
	e, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(ANDALSO) {
		t := p.take()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		e = &Prim{pos: p.posOf(t), Op: "andalso", Args: []Expr{e, r}}
	}
	return e, nil
}

var cmpOps = map[kind]string{EQ: "=", NEQ: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}

func (p *parser) cmpExpr() (Expr, error) {
	e, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.peek().kind]; ok {
		t := p.take()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Prim{pos: p.posOf(t), Op: op, Args: []Expr{e, r}}, nil
	}
	return e, nil
}

func (p *parser) addExpr() (Expr, error) {
	e, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(PLUS) || p.at(MINUS) {
		t := p.take()
		op := "+"
		if t.kind == MINUS {
			op = "-"
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		e = &Prim{pos: p.posOf(t), Op: op, Args: []Expr{e, r}}
	}
	return e, nil
}

func (p *parser) mulExpr() (Expr, error) {
	e, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(STAR) || p.at(DIV) || p.at(MOD) {
		t := p.take()
		op := "*"
		switch t.kind {
		case DIV:
			op = "div"
		case MOD:
			op = "mod"
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		e = &Prim{pos: p.posOf(t), Op: op, Args: []Expr{e, r}}
	}
	return e, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	switch p.peek().kind {
	case TILDE, BANG, NOT:
		t := p.take()
		arg, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		op := map[kind]string{TILDE: "~", BANG: "!", NOT: "not"}[t.kind]
		return &Prim{pos: p.posOf(t), Op: op, Args: []Expr{arg}}, nil
	}
	return p.appExpr()
}

// atomStart reports whether a token can begin an application argument.
func atomStart(k kind) bool {
	switch k {
	case INT, TRUE, FALSE, IDENT, STRING, LPAREN, HASH, BANG:
		return true
	}
	return false
}

// appExpr := atom atom*   (left-associative application)
func (p *parser) appExpr() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for atomStart(p.peek().kind) {
		t := p.peek()
		arg, err := p.argAtom()
		if err != nil {
			return nil, err
		}
		e = &App{pos: p.posOf(t), Fun: e, Arg: arg}
	}
	return e, nil
}

// argAtom parses an application argument (unary ! allowed, e.g. f !r).
func (p *parser) argAtom() (Expr, error) {
	if p.at(BANG) {
		t := p.take()
		arg, err := p.argAtom()
		if err != nil {
			return nil, err
		}
		return &Prim{pos: p.posOf(t), Op: "!", Args: []Expr{arg}}, nil
	}
	return p.atom()
}

func (p *parser) atom() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case INT:
		p.take()
		return &IntLit{pos: p.posOf(t), Val: t.num}, nil
	case TRUE:
		p.take()
		return &BoolLit{pos: p.posOf(t), Val: true}, nil
	case FALSE:
		p.take()
		return &BoolLit{pos: p.posOf(t), Val: false}, nil
	case STRING:
		p.take()
		return &StrLit{pos: p.posOf(t), Val: t.text}, nil
	case IDENT:
		p.take()
		return &Var{pos: p.posOf(t), Name: t.text}, nil
	case LPAREN:
		p.take()
		if p.at(RPAREN) {
			p.take()
			return &UnitLit{pos: p.posOf(t)}, nil
		}
		first, err := p.seqExpr()
		if err != nil {
			return nil, err
		}
		if p.at(COMMA) {
			elems := []Expr{first}
			for p.at(COMMA) {
				p.take()
				e, err := p.seqExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return &Tuple{pos: p.posOf(t), Elems: elems}, nil
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return first, nil
	case HASH:
		p.take()
		idx, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		if idx.num < 1 {
			return nil, p.errf("tuple index must be positive")
		}
		arg, err := p.argAtom()
		if err != nil {
			return nil, err
		}
		return &Proj{pos: p.posOf(t), Index: int(idx.num), Arg: arg}, nil
	case FN:
		p.take()
		param, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(DARROW); err != nil {
			return nil, err
		}
		body, err := p.seqExpr()
		if err != nil {
			return nil, err
		}
		return &Fn{pos: p.posOf(t), Param: param.text, Body: body}, nil
	case IF:
		p.take()
		cond, err := p.seqExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(THEN); err != nil {
			return nil, err
		}
		then, err := p.seqExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ELSE); err != nil {
			return nil, err
		}
		els, err := p.seqExpr()
		if err != nil {
			return nil, err
		}
		return &If{pos: p.posOf(t), Cond: cond, Then: then, Else: els}, nil
	case LET:
		p.take()
		switch p.peek().kind {
		case VAL:
			p.take()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(EQ); err != nil {
				return nil, err
			}
			bind, err := p.seqExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(IN); err != nil {
				return nil, err
			}
			body, err := p.seqExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(END); err != nil {
				return nil, err
			}
			return &Let{pos: p.posOf(t), Name: name.text, Bind: bind, Body: body}, nil
		case FUN:
			p.take()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			param, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(EQ); err != nil {
				return nil, err
			}
			fbody, err := p.seqExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(IN); err != nil {
				return nil, err
			}
			body, err := p.seqExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(END); err != nil {
				return nil, err
			}
			return &LetFun{pos: p.posOf(t), Name: name.text, Param: param.text, FBody: fbody, Body: body}, nil
		default:
			return nil, p.errf("expected val or fun after let")
		}
	case PAR:
		p.take()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		l, err := p.seqExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
		r, err := p.seqExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &Par{pos: p.posOf(t), Left: l, Right: r}, nil
	case REF, LENGTH, PRINT:
		p.take()
		op := map[kind]string{REF: "ref", LENGTH: "length", PRINT: "print"}[t.kind]
		arg, err := p.argAtom()
		if err != nil {
			return nil, err
		}
		return &Prim{pos: p.posOf(t), Op: op, Args: []Expr{arg}}, nil
	case ARRAY, SUB, UPDATE, TABULATE, REDUCE:
		p.take()
		op := map[kind]string{
			ARRAY: "array", SUB: "sub", UPDATE: "update",
			TABULATE: "tabulate", REDUCE: "reduce",
		}[t.kind]
		arity := 2
		if t.kind == UPDATE || t.kind == REDUCE {
			arity = 3
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		var args []Expr
		for i := 0; i < arity; i++ {
			if i > 0 {
				if _, err := p.expect(COMMA); err != nil {
					return nil, err
				}
			}
			a, err := p.seqExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &Prim{pos: p.posOf(t), Op: op, Args: args}, nil
	}
	return nil, p.errf("unexpected %s", t)
}
