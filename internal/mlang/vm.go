package mlang

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"mplgo/internal/mem"
	"mplgo/mpl"
)

// RuntimeError is an mlang-level runtime fault (division by zero, array
// bounds).
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

// Machine executes compiled programs on the hierarchical runtime. Every
// value a program manipulates is a runtime Value; the operand stack and
// locals of each activation live in a Task frame, so they are precise GC
// roots, and all mutable-object access goes through the entanglement
// barriers.
type Machine struct {
	prog *Program
	out  io.Writer
}

// NewMachine creates a machine for a compiled program.
func NewMachine(prog *Program, out io.Writer) *Machine {
	if out == nil {
		out = io.Discard
	}
	return &Machine{prog: prog, out: out}
}

// Run executes the program's entry function on task t.
func (m *Machine) Run(t *mpl.Task) (mem.Value, error) {
	clos := t.AllocTuple(mem.Int(0))
	return m.call(t, clos.Value(), mem.Int(0))
}

// call runs one activation: closure applied to arg.
func (m *Machine) call(t *mpl.Task, closure, arg mem.Value) (mem.Value, error) {
	fnIdx := t.Read(closure.Ref(), 0).AsInt()
	fn := m.prog.Funcs[fnIdx]
	f := t.NewFrame(2 + fn.nLocals + fn.maxStack)
	defer f.Pop()
	f.Set(0, closure)
	f.Set(1, arg)
	base := 2 + fn.nLocals
	sp := 0
	push := func(v mem.Value) {
		f.Set(base+sp, v)
		sp++
	}
	pop := func() mem.Value {
		sp--
		return f.Get(base + sp)
	}

	code := fn.code
	for pc := 0; pc < len(code); pc++ {
		ins := code[pc]
		switch ins.op {
		case opConst:
			push(mem.Int(ins.k))
		case opUnit:
			push(mem.Int(0))
		case opString:
			push(t.AllocString(ins.s).Value())
		case opLocal:
			push(f.Get(2 + ins.a))
		case opSetLocal:
			f.Set(2+ins.a, pop())
		case opParam:
			push(f.Get(1))
		case opSelf:
			push(f.Get(0))
		case opCapture:
			push(t.Read(f.Get(0).Ref(), 1+ins.a))
		case opClosure:
			vs := make([]mem.Value, 1+ins.b)
			vs[0] = mem.Int(int64(ins.a))
			for i := ins.b - 1; i >= 0; i-- {
				vs[1+i] = pop()
			}
			push(t.AllocTuple(vs...).Value())
		case opCall:
			a := pop()
			c := pop()
			v, err := m.call(t, c, a)
			if err != nil {
				return mem.Nil, err
			}
			push(v)
		case opJump:
			pc = ins.a - 1
		case opJumpFalse:
			if pop().AsInt() == 0 {
				pc = ins.a - 1
			}
		case opBin:
			r := pop().AsInt()
			l := pop().AsInt()
			v, err := binop(ins.s, l, r)
			if err != nil {
				return mem.Nil, err
			}
			push(v)
		case opNeg:
			push(mem.Int(-pop().AsInt()))
		case opNot:
			push(mem.Bool(pop().AsInt() == 0))
		case opTuple:
			vs := make([]mem.Value, ins.a)
			for i := ins.a - 1; i >= 0; i-- {
				vs[i] = pop()
			}
			push(t.AllocTuple(vs...).Value())
		case opProj:
			tup := pop()
			push(t.Read(tup.Ref(), ins.a))
		case opRef:
			push(t.AllocRef(pop()).Value())
		case opRefFast:
			push(t.AllocRefFast(pop()).Value())
		case opDeref:
			push(t.Deref(pop().Ref()))
		case opDerefFast:
			push(t.DerefFast(pop().Ref()))
		case opAssign:
			v := pop()
			cell := pop()
			t.Assign(cell.Ref(), v)
			push(mem.Int(0))
		case opAssignFast:
			v := pop()
			cell := pop()
			t.AssignFast(cell.Ref(), v)
			push(mem.Int(0))
		case opArray:
			v := pop()
			n := pop().AsInt()
			if n < 0 {
				return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("array size %d", n)}
			}
			push(t.AllocArray(int(n), v).Value())
		case opArrayFast:
			v := pop()
			n := pop().AsInt()
			if n < 0 {
				return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("array size %d", n)}
			}
			push(t.AllocArrayFast(int(n), v).Value())
		case opSub:
			i := pop().AsInt()
			arr := pop().Ref()
			if i < 0 || int(i) >= t.Length(arr) {
				return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("index %d out of bounds [0,%d)", i, t.Length(arr))}
			}
			push(t.Read(arr, int(i)))
		case opSubFast:
			i := pop().AsInt()
			arr := pop().Ref()
			if i < 0 || int(i) >= t.Length(arr) {
				return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("index %d out of bounds [0,%d)", i, t.Length(arr))}
			}
			push(t.ReadFast(arr, int(i)))
		case opUpdate:
			v := pop()
			i := pop().AsInt()
			arr := pop().Ref()
			if i < 0 || int(i) >= t.Length(arr) {
				return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("index %d out of bounds [0,%d)", i, t.Length(arr))}
			}
			t.Write(arr, int(i), v)
			push(mem.Int(0))
		case opUpdateFast:
			v := pop()
			i := pop().AsInt()
			arr := pop().Ref()
			if i < 0 || int(i) >= t.Length(arr) {
				return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("index %d out of bounds [0,%d)", i, t.Length(arr))}
			}
			t.WriteFast(arr, int(i), v)
			push(mem.Int(0))
		case opLen:
			push(mem.Int(int64(t.Length(pop().Ref()))))
		case opPar:
			rc := pop()
			lc := pop()
			var lerr, rerr error
			lv, rv := t.Par(
				func(t *mpl.Task) mem.Value {
					v, err := m.call(t, lc, mem.Int(0))
					lerr = err
					return v
				},
				func(t *mpl.Task) mem.Value {
					v, err := m.call(t, rc, mem.Int(0))
					rerr = err
					return v
				},
			)
			if lerr != nil {
				return mem.Nil, lerr
			}
			if rerr != nil {
				return mem.Nil, rerr
			}
			push(t.AllocTuple(lv, rv).Value())
		case opTabulate:
			fcl := pop()
			n := pop().AsInt()
			if n < 0 {
				return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("tabulate size %d", n)}
			}
			v, err := m.tabulate(t, fcl, int(n), ins.b == 1)
			if err != nil {
				return mem.Nil, err
			}
			push(v)
		case opReduce:
			fcl := pop()
			z := pop()
			arr := pop()
			v, err := m.reduce(t, arr, z, fcl, 0, t.Length(arr.Ref()), ins.b == 1)
			if err != nil {
				return mem.Nil, err
			}
			push(v)
		case opPrint:
			v := pop()
			fmt.Fprintf(m.out, "%d\n", v.AsInt())
			push(mem.Int(0))
		case opPop:
			pop()
		default:
			return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("bad opcode %d", ins.op)}
		}
	}
	if sp != 1 {
		return mem.Nil, &RuntimeError{Msg: fmt.Sprintf("stack imbalance: %d", sp)}
	}
	return pop(), nil
}

// tabulate builds [| f 0, ..., f (n-1) |] with a parallel loop. The array
// and the function closure are rooted in a frame so leaves that run on
// this task itself survive its collections; leaves on child tasks write
// their results through the (barriered) array stores — or, when the
// element type is immediate (fast), through unchecked stores: a scalar
// store from a leaf publishes no pointer, so there is nothing for the
// write barrier to remember.
func (m *Machine) tabulate(t *mpl.Task, fcl mem.Value, n int, fast bool) (mem.Value, error) {
	ff := t.NewFrame(2)
	ff.Set(0, fcl)
	ff.Set(1, t.AllocArray(n, mem.Nil).Value())
	grain := n/64 + 1
	var mu sync.Mutex
	var firstErr error
	t.ParFor(0, n, grain, func(t *mpl.Task, lo, hi int) {
		for i := lo; i < hi; i++ {
			v, err := m.call(t, ff.Get(0), mem.Int(int64(i)))
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			if fast {
				t.WriteFast(ff.Ref(1), i, v)
			} else {
				t.Write(ff.Ref(1), i, v)
			}
		}
	})
	out := ff.Get(1)
	ff.Pop()
	if firstErr != nil {
		return mem.Nil, firstErr
	}
	return out, nil
}

// apply2 computes ((f a) b), keeping b rooted across the first call.
func (m *Machine) apply2(t *mpl.Task, fcl, a, b mem.Value) (mem.Value, error) {
	ff := t.NewFrame(1)
	ff.Set(0, b)
	c1, err := m.call(t, fcl, a)
	if err != nil {
		ff.Pop()
		return mem.Nil, err
	}
	b2 := ff.Get(0)
	ff.Pop()
	return m.call(t, c1, b2)
}

// reduce folds arr[lo:hi) with the combiner fcl and identity z by binary
// parallel splitting; leaves fold sequentially. fast elides the element
// read barrier when the element type is immediate.
func (m *Machine) reduce(t *mpl.Task, arr, z, fcl mem.Value, lo, hi int, fast bool) (mem.Value, error) {
	const grain = 256
	if hi-lo <= grain {
		ff := t.NewFrame(3)
		ff.Set(0, fcl)
		ff.Set(1, arr)
		ff.Set(2, z)
		for i := lo; i < hi; i++ {
			var v mem.Value
			if fast {
				v = t.ReadFast(ff.Ref(1), i)
			} else {
				v = t.Read(ff.Ref(1), i)
			}
			acc, err := m.apply2(t, ff.Get(0), ff.Get(2), v)
			if err != nil {
				ff.Pop()
				return mem.Nil, err
			}
			ff.Set(2, acc)
		}
		out := ff.Get(2)
		ff.Pop()
		return out, nil
	}
	mid := lo + (hi-lo)/2
	var lerr, rerr error
	lv, rv := t.Par(
		func(t *mpl.Task) mem.Value {
			v, err := m.reduce(t, arr, z, fcl, lo, mid, fast)
			lerr = err
			return v
		},
		func(t *mpl.Task) mem.Value {
			v, err := m.reduce(t, arr, z, fcl, mid, hi, fast)
			rerr = err
			return v
		},
	)
	if lerr != nil {
		return mem.Nil, lerr
	}
	if rerr != nil {
		return mem.Nil, rerr
	}
	return m.apply2(t, fcl, lv, rv)
}

func binop(op string, l, r int64) (mem.Value, error) {
	switch op {
	case "+":
		return mem.Int(l + r), nil
	case "-":
		return mem.Int(l - r), nil
	case "*":
		return mem.Int(l * r), nil
	case "div":
		if r == 0 {
			return mem.Nil, &RuntimeError{Msg: "division by zero"}
		}
		return mem.Int(l / r), nil
	case "mod":
		if r == 0 {
			return mem.Nil, &RuntimeError{Msg: "mod by zero"}
		}
		return mem.Int(l % r), nil
	case "<":
		return mem.Bool(l < r), nil
	case "<=":
		return mem.Bool(l <= r), nil
	case ">":
		return mem.Bool(l > r), nil
	case ">=":
		return mem.Bool(l >= r), nil
	case "=":
		return mem.Bool(l == r), nil
	case "<>":
		return mem.Bool(l != r), nil
	}
	return mem.Nil, &RuntimeError{Msg: "bad operator " + op}
}

// Result is the outcome of running a source program.
type Result struct {
	Value    mem.Value
	Type     Type
	Rendered string
	Runtime  *mpl.Runtime
	Output   string
	Analysis *Analysis // disentanglement verdicts; nil for RunChecked
	Elided   bool      // compiled with barrier elision
}

// Run parses, checks, compiles, and executes src on a fresh runtime with
// the given configuration, with barrier elision at every site the
// disentanglement analysis proves safe. Program output (print) is
// captured in Result.Output.
func Run(src string, cfg mpl.Config) (*Result, error) {
	return run(src, cfg, true)
}

// RunChecked runs src with every access on the managed barriers — the
// pre-elision build, kept for the differential suite and ablations.
func RunChecked(src string, cfg mpl.Config) (*Result, error) {
	return run(src, cfg, false)
}

func run(src string, cfg mpl.Config, elide bool) (*Result, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	var typ Type
	var an *Analysis
	if elide {
		an, err = Analyze(ast)
		if err != nil {
			return nil, err
		}
		typ = an.Type
	} else if typ, err = Check(ast); err != nil {
		return nil, err
	}
	prog, err := CompileWith(ast, an)
	if err != nil {
		return nil, err
	}
	var out strings.Builder
	m := NewMachine(prog, &out)
	rt := mpl.New(cfg)
	if an != nil {
		rt.SetStaticRegions(int64(an.Regions))
	}
	res := &Result{Type: typ, Runtime: rt, Analysis: an, Elided: elide}
	var rerr error
	_, err = rt.Run(func(t *mpl.Task) mem.Value {
		v, err := m.Run(t)
		if err != nil {
			rerr = err
			return mem.Nil
		}
		res.Value = v
		res.Rendered = render(t, v, typ, 0)
		return v
	})
	if rerr != nil {
		return nil, rerr
	}
	if err != nil {
		return nil, err
	}
	res.Output = out.String()
	return res, nil
}

// render pretty-prints a value using its inferred type.
func render(t *mpl.Task, v mem.Value, typ Type, depth int) string {
	if depth > 5 {
		return "..."
	}
	switch ty := resolve(typ).(type) {
	case *TCon:
		switch ty.Name {
		case "int":
			return fmt.Sprintf("%d", v.AsInt())
		case "bool":
			if v.AsInt() != 0 {
				return "true"
			}
			return "false"
		case "unit":
			return "()"
		case "string":
			return fmt.Sprintf("%q", t.StringOf(v.Ref()))
		}
	case *TTuple:
		parts := make([]string, len(ty.Elems))
		for i, et := range ty.Elems {
			parts[i] = render(t, t.Read(v.Ref(), i), et, depth+1)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *TRef:
		return "ref " + render(t, t.Deref(v.Ref()), ty.Elem, depth+1)
	case *TArray:
		n := t.Length(v.Ref())
		show := n
		if show > 8 {
			show = 8
		}
		parts := make([]string, 0, show+1)
		for i := 0; i < show; i++ {
			parts = append(parts, render(t, t.Read(v.Ref(), i), ty.Elem, depth+1))
		}
		if show < n {
			parts = append(parts, "...")
		}
		return "[|" + strings.Join(parts, ", ") + "|]"
	case *TArrow:
		return "fn"
	case *TVar:
		return v.String()
	}
	return v.String()
}
