// Package mlang implements a small Parallel-ML-family language on top of
// the hierarchical runtime: lexer, parser, type inference, a bytecode
// compiler, and a virtual machine whose values live entirely in the
// runtime's simulated heap (so the VM's operand stacks are precise GC
// roots, and every read and write of a mutable object goes through the
// entanglement barriers).
//
// It is the stand-in for MPL's full Parallel ML front end (DESIGN.md,
// substitutions): source programs with unrestricted effects — refs,
// arrays, and `par` — compile and run on the entanglement-managing
// runtime.
//
// The language:
//
//	e ::= n | true | false | () | x | "s"
//	    | fn x => e | e1 e2
//	    | let val x = e1 in e2 end
//	    | let fun f x = e1 in e2 end
//	    | if e1 then e2 else e3
//	    | (e1, ..., ek) | #i e
//	    | par (e1, e2)
//	    | ref e | !e | e1 := e2
//	    | array (e1, e2) | sub (e1, e2) | update (e1, e2, e3) | length e
//	    | e1 op e2 | ~e | not e | print e | (e1; e2)
package mlang

import "fmt"

// kind enumerates token kinds.
type kind int

const (
	EOF kind = iota
	INT
	IDENT
	STRING

	LET
	VAL
	FUN
	IN
	END
	FN
	IF
	THEN
	ELSE
	TRUE
	FALSE
	PAR
	REF
	ARRAY
	SUB
	UPDATE
	LENGTH
	TABULATE
	REDUCE
	PRINT
	NOT
	ANDALSO
	ORELSE
	DIV
	MOD

	LPAREN
	RPAREN
	COMMA
	SEMI
	DARROW // =>
	ASSIGN // :=
	BANG   // !
	HASH   // #
	PLUS
	MINUS
	STAR
	TILDE // unary minus
	EQ
	NEQ // <>
	LT
	LE
	GT
	GE
)

var kindNames = map[kind]string{
	EOF: "eof", INT: "int", IDENT: "ident", STRING: "string",
	LET: "let", VAL: "val", FUN: "fun", IN: "in", END: "end", FN: "fn",
	IF: "if", THEN: "then", ELSE: "else", TRUE: "true", FALSE: "false",
	PAR: "par", REF: "ref", ARRAY: "array", SUB: "sub", UPDATE: "update",
	LENGTH: "length", TABULATE: "tabulate", REDUCE: "reduce", PRINT: "print", NOT: "not", ANDALSO: "andalso",
	ORELSE: "orelse", DIV: "div", MOD: "mod",
	LPAREN: "(", RPAREN: ")", COMMA: ",", SEMI: ";", DARROW: "=>",
	ASSIGN: ":=", BANG: "!", HASH: "#", PLUS: "+", MINUS: "-", STAR: "*",
	TILDE: "~", EQ: "=", NEQ: "<>", LT: "<", LE: "<=", GT: ">", GE: ">=",
}

func (k kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]kind{
	"let": LET, "val": VAL, "fun": FUN, "in": IN, "end": END, "fn": FN,
	"if": IF, "then": THEN, "else": ELSE, "true": TRUE, "false": FALSE,
	"par": PAR, "ref": REF, "array": ARRAY, "sub": SUB, "update": UPDATE,
	"length": LENGTH, "tabulate": TABULATE, "reduce": REDUCE, "print": PRINT, "not": NOT, "andalso": ANDALSO,
	"orelse": ORELSE, "div": DIV, "mod": MOD,
}

// token is one lexeme.
type token struct {
	kind kind
	text string
	num  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case INT:
		return fmt.Sprintf("%d", t.num)
	case IDENT, STRING:
		return t.text
	default:
		return t.kind.String()
	}
}
