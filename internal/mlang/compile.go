package mlang

import "fmt"

// opcode enumerates VM instructions.
type opcode int

const (
	opConst     opcode = iota // push integer k
	opUnit                    // push unit
	opString                  // push a fresh string object of s
	opLocal                   // push local slot a
	opSetLocal                // pop into local slot a
	opParam                   // push the function parameter
	opSelf                    // push the executing closure (recursion)
	opCapture                 // push captured value a of the executing closure
	opClosure                 // pop b captures, push closure of function a
	opCall                    // pop arg, pop closure, push the call's result
	opJump                    // jump to a
	opJumpFalse               // pop condition; jump to a when false
	opBin                     // pop r, pop l, push l (s) r
	opNeg                     // pop, push arithmetic negation
	opNot                     // pop, push boolean negation
	opTuple                   // pop a values, push tuple
	opProj                    // pop tuple, push field a (0-based)
	opRef                     // pop v, push ref cell
	opDeref                   // pop cell, push contents (read barrier)
	opAssign                  // pop v, pop cell, store (write barrier), push unit
	opArray                   // pop v, pop n, push array of n × v
	opSub                     // pop i, pop array, push element (read barrier)
	opUpdate                  // pop v, pop i, pop array, store, push unit
	opLen                     // pop array, push length
	opPar                     // pop right closure, pop left closure, run in parallel, push pair
	opTabulate                // pop f, pop n, build [| f 0 .. f (n-1) |] in parallel
	opReduce                  // pop f, pop z, pop array, fold in parallel
	opPrint                   // pop integer, print it, push unit
	opPop                     // pop and discard

	// Unchecked variants emitted for sites the disentanglement analysis
	// proved safe: raw mem loads/stores, no entangle barriers, bump
	// allocation without heap-limit polling (budget pressure falls back
	// inside the accessor, not here).
	opRefFast    // opRef via Task.AllocRefFast
	opDerefFast  // opDeref via Task.DerefFast (no read barrier)
	opAssignFast // opAssign via Task.AssignFast (no write barrier)
	opArrayFast  // opArray via Task.AllocArrayFast
	opSubFast    // opSub via Task.ReadFast
	opUpdateFast // opUpdate via Task.WriteFast
)

// instr is one VM instruction.
type instr struct {
	op   opcode
	a, b int
	k    int64
	s    string
}

// fnCode is one compiled function.
type fnCode struct {
	name     string
	code     []instr
	nLocals  int
	maxStack int
	nCaps    int
}

// Program is a compiled mlang program; function 0 is the entry point.
type Program struct {
	Funcs []*fnCode
}

// capture records how an enclosing-function value reaches a closure.
type capture struct {
	fromKind int // 0 param, 1 self, 2 local, 3 capture (of the enclosing fn)
	fromIdx  int
}

// binding is an in-scope local variable.
type binding struct {
	name string
	slot int
}

// fnCtx is the per-function compilation context.
type fnCtx struct {
	fn      *fnCode
	param   string
	self    string // function's own name for recursion; "" if anonymous
	locals  []binding
	nslots  int
	caps    []capture
	capKeys map[string]int
	parent  *fnCtx

	depth int // current operand-stack depth
}

// compiler holds the program being built.
type compiler struct {
	prog *Program
	an   *Analysis // nil compiles every access through the managed barriers
}

// Compile lowers a type-checked expression to bytecode with every access
// on the managed barriers (the checked build).
func Compile(e Expr) (*Program, error) {
	return CompileWith(e, nil)
}

// CompileWith lowers e to bytecode, consulting an (when non-nil) to emit
// unchecked opcodes at sites the disentanglement analysis proved safe.
func CompileWith(e Expr, an *Analysis) (*Program, error) {
	c := &compiler{prog: &Program{}, an: an}
	main := &fnCode{name: "main"}
	c.prog.Funcs = append(c.prog.Funcs, main)
	ctx := &fnCtx{fn: main, param: "", capKeys: map[string]int{}}
	if err := c.expr(ctx, e); err != nil {
		return nil, err
	}
	finish(ctx)
	return c.prog, nil
}

func finish(ctx *fnCtx) {
	ctx.fn.nLocals = ctx.nslots
	ctx.fn.nCaps = len(ctx.caps)
}

// emit appends an instruction and tracks operand-stack depth.
func (ctx *fnCtx) emit(i instr, delta int) int {
	ctx.fn.code = append(ctx.fn.code, i)
	ctx.depth += delta
	if ctx.depth > ctx.fn.maxStack {
		ctx.fn.maxStack = ctx.depth
	}
	return len(ctx.fn.code) - 1
}

// resolve compiles a variable reference in ctx.
func (c *compiler) resolve(ctx *fnCtx, name string, e Expr) error {
	// Innermost locals shadow the parameter and the self name.
	for i := len(ctx.locals) - 1; i >= 0; i-- {
		if ctx.locals[i].name == name {
			ctx.emit(instr{op: opLocal, a: ctx.locals[i].slot}, +1)
			return nil
		}
	}
	if name == ctx.param && ctx.param != "" {
		ctx.emit(instr{op: opParam}, +1)
		return nil
	}
	if name == ctx.self && ctx.self != "" {
		ctx.emit(instr{op: opSelf}, +1)
		return nil
	}
	// Free variable: capture it from the enclosing function.
	idx, err := c.captureVar(ctx, name, e)
	if err != nil {
		return err
	}
	ctx.emit(instr{op: opCapture, a: idx}, +1)
	return nil
}

// captureVar arranges for name (free in ctx) to be a capture of ctx's
// function, resolving it in the enclosing context (transitively).
func (c *compiler) captureVar(ctx *fnCtx, name string, e Expr) (int, error) {
	if idx, ok := ctx.capKeys[name]; ok {
		return idx, nil
	}
	p := ctx.parent
	if p == nil {
		return 0, typeErr(e, "unbound variable %s", name)
	}
	var cap capture
	found := false
	for i := len(p.locals) - 1; i >= 0; i-- {
		if p.locals[i].name == name {
			cap = capture{fromKind: 2, fromIdx: p.locals[i].slot}
			found = true
			break
		}
	}
	if !found && name == p.param && p.param != "" {
		cap = capture{fromKind: 0}
		found = true
	}
	if !found && name == p.self && p.self != "" {
		cap = capture{fromKind: 1}
		found = true
	}
	if !found {
		// Not in the immediate parent either: capture it there first.
		pidx, err := c.captureVar(p, name, e)
		if err != nil {
			return 0, err
		}
		cap = capture{fromKind: 3, fromIdx: pidx}
	}
	idx := len(ctx.caps)
	ctx.caps = append(ctx.caps, cap)
	ctx.capKeys[name] = idx
	return idx, nil
}

// compileFn compiles a function body into a fresh fnCode and returns its
// index plus its capture list (to be materialized at the closure site).
func (c *compiler) compileFn(parent *fnCtx, name, param string, body Expr) (int, []capture, error) {
	fn := &fnCode{name: name}
	idx := len(c.prog.Funcs)
	c.prog.Funcs = append(c.prog.Funcs, fn)
	ctx := &fnCtx{fn: fn, param: param, self: name, capKeys: map[string]int{}, parent: parent}
	if err := c.expr(ctx, body); err != nil {
		return 0, nil, err
	}
	finish(ctx)
	return idx, ctx.caps, nil
}

// emitClosure pushes the captured values in order, then builds the closure.
func (c *compiler) emitClosure(ctx *fnCtx, fnIdx int, caps []capture) {
	for _, cap := range caps {
		switch cap.fromKind {
		case 0:
			ctx.emit(instr{op: opParam}, +1)
		case 1:
			ctx.emit(instr{op: opSelf}, +1)
		case 2:
			ctx.emit(instr{op: opLocal, a: cap.fromIdx}, +1)
		case 3:
			ctx.emit(instr{op: opCapture, a: cap.fromIdx}, +1)
		}
	}
	ctx.emit(instr{op: opClosure, a: fnIdx, b: len(caps)}, 1-len(caps))
}

func (c *compiler) expr(ctx *fnCtx, e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		ctx.emit(instr{op: opConst, k: e.Val}, +1)
	case *BoolLit:
		k := int64(0)
		if e.Val {
			k = 1
		}
		ctx.emit(instr{op: opConst, k: k}, +1)
	case *UnitLit:
		ctx.emit(instr{op: opUnit}, +1)
	case *StrLit:
		ctx.emit(instr{op: opString, s: e.Val}, +1)
	case *Var:
		return c.resolve(ctx, e.Name, e)
	case *Fn:
		idx, caps, err := c.compileFn(ctx, "", e.Param, e.Body)
		if err != nil {
			return err
		}
		c.emitClosure(ctx, idx, caps)
	case *App:
		if err := c.expr(ctx, e.Fun); err != nil {
			return err
		}
		if err := c.expr(ctx, e.Arg); err != nil {
			return err
		}
		ctx.emit(instr{op: opCall}, -1)
	case *Let:
		if err := c.expr(ctx, e.Bind); err != nil {
			return err
		}
		slot := ctx.nslots
		ctx.nslots++
		ctx.emit(instr{op: opSetLocal, a: slot}, -1)
		ctx.locals = append(ctx.locals, binding{e.Name, slot})
		if err := c.expr(ctx, e.Body); err != nil {
			return err
		}
		ctx.locals = ctx.locals[:len(ctx.locals)-1]
	case *LetFun:
		idx, caps, err := c.compileFn(ctx, e.Name, e.Param, e.FBody)
		if err != nil {
			return err
		}
		c.emitClosure(ctx, idx, caps)
		slot := ctx.nslots
		ctx.nslots++
		ctx.emit(instr{op: opSetLocal, a: slot}, -1)
		ctx.locals = append(ctx.locals, binding{e.Name, slot})
		if err := c.expr(ctx, e.Body); err != nil {
			return err
		}
		ctx.locals = ctx.locals[:len(ctx.locals)-1]
	case *If:
		if err := c.expr(ctx, e.Cond); err != nil {
			return err
		}
		jf := ctx.emit(instr{op: opJumpFalse}, -1)
		base := ctx.depth
		if err := c.expr(ctx, e.Then); err != nil {
			return err
		}
		j := ctx.emit(instr{op: opJump}, 0)
		after := ctx.depth
		ctx.fn.code[jf].a = len(ctx.fn.code)
		ctx.depth = base
		if err := c.expr(ctx, e.Else); err != nil {
			return err
		}
		if ctx.depth != after {
			return typeErr(e, "internal: branch stack depths diverge")
		}
		ctx.fn.code[j].a = len(ctx.fn.code)
	case *Tuple:
		for _, el := range e.Elems {
			if err := c.expr(ctx, el); err != nil {
				return err
			}
		}
		ctx.emit(instr{op: opTuple, a: len(e.Elems)}, 1-len(e.Elems))
	case *Proj:
		if err := c.expr(ctx, e.Arg); err != nil {
			return err
		}
		ctx.emit(instr{op: opProj, a: e.Index - 1}, 0)
	case *Par:
		li, lcaps, err := c.compileFn(ctx, "", "", e.Left)
		if err != nil {
			return err
		}
		c.emitClosure(ctx, li, lcaps)
		ri, rcaps, err := c.compileFn(ctx, "", "", e.Right)
		if err != nil {
			return err
		}
		c.emitClosure(ctx, ri, rcaps)
		ctx.emit(instr{op: opPar}, -1)
	case *Prim:
		return c.prim(ctx, e)
	default:
		return typeErr(e, "internal: unknown expression %T", e)
	}
	return nil
}

func (c *compiler) prim(ctx *fnCtx, e *Prim) error {
	args := func(n int) error {
		for i := 0; i < n; i++ {
			if err := c.expr(ctx, e.Args[i]); err != nil {
				return err
			}
		}
		return nil
	}
	switch e.Op {
	case "+", "-", "*", "div", "mod", "<", "<=", ">", ">=", "=", "<>":
		if err := args(2); err != nil {
			return err
		}
		ctx.emit(instr{op: opBin, s: e.Op}, -1)
	case "andalso":
		// Short-circuit: if !a then false else b.
		if err := args(1); err != nil {
			return err
		}
		jf := ctx.emit(instr{op: opJumpFalse}, -1)
		if err := c.expr(ctx, e.Args[1]); err != nil {
			return err
		}
		j := ctx.emit(instr{op: opJump}, 0)
		ctx.fn.code[jf].a = len(ctx.fn.code)
		ctx.depth--
		ctx.emit(instr{op: opConst, k: 0}, +1)
		ctx.fn.code[j].a = len(ctx.fn.code)
	case "orelse":
		// if a then true else b — compile via jump-false over the "true".
		if err := args(1); err != nil {
			return err
		}
		jf := ctx.emit(instr{op: opJumpFalse}, -1)
		ctx.emit(instr{op: opConst, k: 1}, +1)
		j := ctx.emit(instr{op: opJump}, 0)
		ctx.fn.code[jf].a = len(ctx.fn.code)
		ctx.depth--
		if err := c.expr(ctx, e.Args[1]); err != nil {
			return err
		}
		ctx.fn.code[j].a = len(ctx.fn.code)
	case "~":
		if err := args(1); err != nil {
			return err
		}
		ctx.emit(instr{op: opNeg}, 0)
	case "not":
		if err := args(1); err != nil {
			return err
		}
		ctx.emit(instr{op: opNot}, 0)
	case "ref":
		if err := args(1); err != nil {
			return err
		}
		ctx.emit(instr{op: pick(c.an, e, opRef, opRefFast)}, 0)
	case "!":
		if err := args(1); err != nil {
			return err
		}
		ctx.emit(instr{op: pick(c.an, e, opDeref, opDerefFast)}, 0)
	case ":=":
		if err := args(2); err != nil {
			return err
		}
		ctx.emit(instr{op: pick(c.an, e, opAssign, opAssignFast)}, -1)
	case "array":
		if err := args(2); err != nil {
			return err
		}
		ctx.emit(instr{op: pick(c.an, e, opArray, opArrayFast)}, -1)
	case "sub":
		if err := args(2); err != nil {
			return err
		}
		ctx.emit(instr{op: pick(c.an, e, opSub, opSubFast)}, -1)
	case "update":
		if err := args(3); err != nil {
			return err
		}
		ctx.emit(instr{op: pick(c.an, e, opUpdate, opUpdateFast)}, -2)
	case "length":
		if err := args(1); err != nil {
			return err
		}
		ctx.emit(instr{op: opLen}, 0)
	case "tabulate":
		if err := args(2); err != nil {
			return err
		}
		// b=1 marks immediate elements: the VM's internal fill loop uses
		// the unchecked element stores.
		ctx.emit(instr{op: opTabulate, b: fastFlag(c.an, e)}, -1)
	case "reduce":
		if err := args(3); err != nil {
			return err
		}
		ctx.emit(instr{op: opReduce, b: fastFlag(c.an, e)}, -2)
	case "print":
		if err := args(1); err != nil {
			return err
		}
		ctx.emit(instr{op: opPrint}, 0)
	case ";":
		if err := args(1); err != nil {
			return err
		}
		ctx.emit(instr{op: opPop}, -1)
		return c.expr(ctx, e.Args[1])
	default:
		return typeErr(e, "internal: unknown primitive %q", e.Op)
	}
	return nil
}

// pick selects the unchecked opcode when the analysis proved the site.
func pick(an *Analysis, e Expr, checked, fast opcode) opcode {
	if an.FastSite(e) {
		return fast
	}
	return checked
}

// fastFlag is pick for opcodes that carry the proof as a flag instead.
func fastFlag(an *Analysis, e Expr) int {
	if an.FastSite(e) {
		return 1
	}
	return 0
}

// Disassemble renders the program for debugging and tests.
func (p *Program) Disassemble() string {
	out := ""
	for i, fn := range p.Funcs {
		out += fmt.Sprintf("fn %d %q locals=%d stack=%d caps=%d\n", i, fn.name, fn.nLocals, fn.maxStack, fn.nCaps)
		for pc, ins := range fn.code {
			out += fmt.Sprintf("  %3d: %v a=%d b=%d k=%d %s\n", pc, ins.op, ins.a, ins.b, ins.k, ins.s)
		}
	}
	return out
}
