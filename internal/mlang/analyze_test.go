package mlang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	ast, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	an, err := Analyze(ast)
	if err != nil {
		t.Fatalf("Analyze(%q): %v", src, err)
	}
	return an
}

// reasonAt returns the verdict reason of the first site with the given op.
func reasonAt(an *Analysis, op string) (string, bool) {
	for _, v := range an.Verdicts {
		if v.Op == op {
			return v.Reason, v.Fast
		}
	}
	return "", false
}

func TestAnalysisVerdicts(t *testing.T) {
	cases := []struct {
		name             string
		src              string
		proven, fallback int
		regions          int
	}{
		// Immediate elements elide regardless of region facts.
		{"immediate-ref", `let val r = ref 1 in (r := !r + 1; !r) end`, 4, 0, 1},
		{"immediate-array", `let val a = array (4, 0) in (update (a, 0, 9); sub (a, 0)) end`, 3, 0, 1},
		// A cell captured by a function and accessed there is a
		// cross-function access for the boxed read, fallback.
		{"cross-body-boxed", `
			let val r = ref (ref 1) in
			let fun get u = !r in
			! (get ())
			end end`, 3, 1, 2},
		// Refs from both if-branches unify, but both allocate at the same
		// static scope (if-branches do not fork heaps), so the merged
		// region stays concrete — same-scope aliasing is harmless.
		{"branch-alias", `
			let val c = if true then ref 1 else ref 2 in !c end`, 3, 0, 1},
		// Aliasing a root-scope cell with a par-branch cell is a real
		// cross-scope conflict: both allocation sites collapse to ⊤ and
		// lose their fast allocation (the immediate derefs still elide).
		{"cross-scope-alias", `
			let val a = ref 1 in
			let val p = par (ref 2, 0) in
			! (if ! (ref true) then a else #1 p)
			end end`, 3, 2, 1},
		// Storing a deeper-allocated ref into a shallower cell is the
		// down-pointer shape: the store falls back and poisons the region
		// for boxed reads.
		{"down-pointer", `
			let val shared = ref (ref 0) in
			let val p = par ((shared := ref 7; 1), 2) in
			(#1 p + #2 p, ! (!shared))
			end end`, 0, 0, 0}, // counts asserted via reasons below
		// Same-scope boxed handoff stays proven: value and holder share a
		// static region path.
		{"up-store", `
			let val inner = ref 3 in
			let val outer = ref inner in
			(outer := inner; ! (!outer))
			end end`, 5, 0, 2},
	}
	for _, c := range cases {
		an := analyze(t, c.src)
		if c.name == "down-pointer" {
			if reason, fast := reasonAt(an, ":="); fast || !strings.Contains(reason, "⊤") {
				t.Errorf("%s: := verdict (fast=%v, %q), want ⊤ fallback", c.name, fast, reason)
			}
			continue
		}
		if an.Proven != c.proven || an.Fallback != c.fallback || an.Regions != c.regions {
			t.Errorf("%s: proven/fallback/regions = %d/%d/%d, want %d/%d/%d\n%s",
				c.name, an.Proven, an.Fallback, an.Regions,
				c.proven, c.fallback, c.regions, an.Report())
		}
	}
}

func TestAnalysisReasons(t *testing.T) {
	// Concurrent-branch access: a cell allocated in the left branch and
	// read by code in the right branch (through a shared outer binding)
	// cannot be proven — the branches' scopes are unordered.
	an := analyze(t, `
		let val shared = ref (ref 0) in
		let val p = par (
		    (shared := ref 42; 1),
		    ! (!shared))
		in #1 p end end`)
	found := false
	for _, v := range an.Verdicts {
		if v.Op == "!" && !v.Fast {
			found = true
			if !strings.Contains(v.Reason, "unproven stores") && !strings.Contains(v.Reason, "⊤") {
				t.Errorf("boxed deref reason = %q", v.Reason)
			}
		}
	}
	if !found {
		t.Fatalf("no fallback deref found:\n%s", an.Report())
	}

	// Boxed tabulate elements keep the managed stores and poison the
	// array region.
	an = analyze(t, `
		let val a = tabulate (8, fn i => (i, i)) in
		sub (a, 3)
		end`)
	if reason, fast := reasonAt(an, "tabulate"); fast || !strings.Contains(reason, "boxed") {
		t.Errorf("boxed tabulate verdict (fast=%v, %q)", fast, reason)
	}
	if reason, fast := reasonAt(an, "sub"); fast || !strings.Contains(reason, "unproven stores") {
		t.Errorf("sub of boxed tabulate verdict (fast=%v, %q)", fast, reason)
	}
}

// TestAnalysisNeverFailsOnEffects: region conflicts must degrade to
// fallback verdicts, not new type errors — Analyze accepts exactly what
// Check accepts.
func TestAnalysisNeverFailsOnEffects(t *testing.T) {
	srcs := []string{
		`let val c = if true then ref 1 else ref 2 in !c end`,
		`let fun pick b = if b then ref 1 else ref 2 in ! (pick true) end`,
		`let val shared = ref (ref 0) in (shared := ref 1; ! (!shared)) end`,
	}
	for _, src := range srcs {
		ast, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Check(ast); err != nil {
			t.Fatalf("Check rejected %q: %v", src, err)
		}
		if _, err := Analyze(ast); err != nil {
			t.Fatalf("Analyze rejected %q: %v", src, err)
		}
	}
}

// TestDisReportGolden pins the -dis-report output for every example
// program. Regenerate with: go test -run TestDisReportGolden -update
// (the flag is consumed via the UPDATE_GOLDEN env var to avoid a flag
// dependency): UPDATE_GOLDEN=1 go test -run TestDisReportGolden
func TestDisReportGolden(t *testing.T) {
	dir := "../../examples/mlang/programs"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".mpl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got := analyze(t, string(src)).Report()
		golden := filepath.Join("testdata", strings.TrimSuffix(e.Name(), ".mpl")+".disreport")
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s (run with UPDATE_GOLDEN=1 to regenerate): %v", golden, err)
		}
		if got != string(want) {
			t.Errorf("%s: report drifted from golden:\n--- got ---\n%s--- want ---\n%s", e.Name(), got, want)
		}
	}
}

// TestTypeErrorGolden pins exact checker diagnostics — unification
// failures, the occurs check, operand-shape errors — so checker refactors
// (like the region-annotation threading of this change) cannot silently
// degrade them. Region conflicts deliberately do NOT appear here: the
// effect discipline reports them as fallback verdicts (see
// TestAnalysisNeverFailsOnEffects), never as errors.
func TestTypeErrorGolden(t *testing.T) {
	cases := []struct{ src, want string }{
		{`1 + true`, "1:5: type mismatch: bool vs int"},
		{`if 1 then 2 else 3`, "1:4: type mismatch: int vs bool"},
		{`if true then 1 else false`, "1:1: type mismatch: int vs bool"},
		{`(fn x => x + 1) true`, "1:17: type mismatch: int vs bool"},
		{`!5`, "1:1: type mismatch: int vs 't1 ref"},
		{`5 := 6`, "1:1: type mismatch: int vs 't1 ref"},
		{`sub (5, 0)`, "1:6: type mismatch: int vs 't1 array"},
		{`update (array (1, 1), 0, true)`, "1:26: type mismatch: bool vs int"},
		{`let fun f x = f in f end`, "1:1: infinite type: 't2 ~ ('t1 -> 't2)"},
		{`ref 1 := ref true`, "1:10: type mismatch: bool ref vs int"},
		{`reduce (tabulate (3, fn i => (i, i)), 0, fn a => fn b => a)`,
			"1:39: type mismatch: int vs (int * int)"},
	}
	for _, c := range cases {
		ast, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		_, err = Check(ast)
		if err == nil {
			t.Errorf("Check(%q): expected error %q", c.src, c.want)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("Check(%q) = %q, want %q", c.src, err.Error(), c.want)
		}
	}
}
