// Package chaos is the runtime's deterministic fault-injection layer.
//
// An Injector is threaded (as an optional pointer) through the scheduler,
// the space, the heap gates and the collector trigger. At each injection
// point the host code asks Should(point); when the answer is true it forces
// the rare transition that point guards — a collection at an allocation, a
// widened steal window at a fork, spurious gate contention, a refused
// header CAS — so that schedule-dependent states which ordinary runs almost
// never reach are visited systematically. Order-maintenance (DePa) and
// on-the-fly race-detection work showed that exactly these perturbed
// schedules are what expose broken lock-free protocols; this package makes
// them reproducible.
//
// Decisions are deterministic in the aggregate: each point keeps an atomic
// hit counter, and the decision for hit n is a pure hash of (seed, point,
// n). Two runs with the same seed inject the same multiset of faults per
// point, independent of thread interleaving — which is as reproducible as a
// parallel run can be — and a failing seed can be replayed from CI.
//
// A nil *Injector is valid and injects nothing: every method is nil-safe,
// so release paths pay one pointer test per site and nothing else.
package chaos

import (
	"fmt"
	"sync/atomic"
)

// Point identifies one injection site in the runtime.
type Point uint8

const (
	// GCTrigger fires inside the allocation slow path: a hit forces a
	// local collection even though the heap budget is not exhausted,
	// approximating "collect at every allocation" as the hit rate → 1.
	GCTrigger Point = iota
	// StealDecision fires at forks: a hit widens the steal window (the
	// forking worker yields after publishing the right branch), forcing
	// steals — and therefore heap materialization and entangled joins —
	// that an unloaded run would almost never perform.
	StealDecision
	// GateAcquire fires in Gate.EnterReader: a hit makes the reader back
	// off once as if a collection were underway (spurious contention),
	// exercising the undo-and-reenter path.
	GateAcquire
	// HeaderCAS fires in Space.PinHeader: a hit refuses the pin once with
	// PinBusy, forcing the caller's back-off/re-resolve retry, exactly as
	// a racing copier in its BUSY window would.
	HeaderCAS
	// BusyWindow fires between BeginCopy and Forward in the collector:
	// a hit stretches the transient BUSY window so concurrent pinners
	// dwell in their retry loops.
	BusyWindow
	// JoinCheck fires after a join's merge: a hit runs the (relaxed)
	// invariant checker over the merged parent heap.
	JoinCheck
	// CGCMark fires per object greyed by the concurrent collector's mark
	// loop: a hit yields the CGC worker, stretching the marking phase so
	// mutator writes, joins, and steal-backs land mid-mark.
	CGCMark
	// CGCSweep fires per chunk in the concurrent sweep: a hit yields the
	// CGC worker inside its gated sweep window, dwelling merges and
	// resuming owners in their WaitBeginCollect/steal-back loops.
	CGCSweep
	// CGCShade fires in the SATB deletion barrier before an overwritten
	// reference is pushed to the shade queue: a hit yields the mutator
	// while it holds its heap's reader gate, widening the window the
	// marking-termination gate flush must close.
	CGCShade
	// PathSpill fires in Tree.Fork when the child's fork path is built: a
	// hit forces the inline→vector spill promotion of the DePa fork-path
	// representation even though the path would fit inline, so shallow
	// trees exercise the spilled comparison paths that otherwise need
	// depth > 64. (The legacy order list's rebalance/exhaustion fallback
	// needed no injection point of its own — exhaustion tests shrink the
	// label space directly — and is unreachable on the default fork-path
	// oracle, which has no label space at all.)
	PathSpill
	// Burst fires in the serve dispatcher's batch formation: a hit injects
	// a synthetic burst of no-op requests ahead of the real batch, driving
	// the admission window and the per-batch heap churn to their limits the
	// way a traffic spike would.
	Burst
	// DeadlinePin fires in the read-barrier slow path of a deadline-scoped
	// task, immediately before the entanglement pin protocol: a hit expires
	// the scope right there, racing scoped cancellation against an
	// in-flight pin — the window where a leaked pin would escape the
	// join-time unpin audit.
	DeadlinePin
	// ShedStorm fires in the admission controller's acquire path: a hit
	// refuses admission even though tokens are free, forcing shed/retry
	// traffic (and its token accounting) without needing real overload.
	ShedStorm
	numPoints int = iota
)

func (p Point) String() string {
	switch p {
	case GCTrigger:
		return "gc-trigger"
	case StealDecision:
		return "steal-decision"
	case GateAcquire:
		return "gate-acquire"
	case HeaderCAS:
		return "header-cas"
	case BusyWindow:
		return "busy-window"
	case JoinCheck:
		return "join-check"
	case CGCMark:
		return "cgc-mark"
	case CGCSweep:
		return "cgc-sweep"
	case CGCShade:
		return "cgc-shade"
	case PathSpill:
		return "path-spill"
	case Burst:
		return "burst"
	case DeadlinePin:
		return "deadline-pin"
	case ShedStorm:
		return "shed-storm"
	}
	return "invalid"
}

// Points lists every injection point, for catalogs and reports.
func Points() []Point {
	out := make([]Point, numPoints)
	for i := range out {
		out[i] = Point(i)
	}
	return out
}

// Options selects per-point injection rates. A rate is a numerator out of
// 1024: 0 disables the point, 1024 fires on every hit. HeaderCAS and
// GateAcquire are clamped below 1024 — a site that always refuses would
// turn a retry loop into a livelock rather than a schedule perturbation.
type Options struct {
	GCTrigger     uint32
	StealDecision uint32
	GateAcquire   uint32
	HeaderCAS     uint32
	BusyWindow    uint32
	JoinCheck     uint32
	CGCMark       uint32
	CGCSweep      uint32
	CGCShade      uint32
	PathSpill     uint32
	Burst         uint32
	DeadlinePin   uint32
	ShedStorm     uint32
}

// Soak is the default option set of the chaos soak suite: every point on,
// hot sites near their clamps, the GC trigger high enough that most
// allocations collect.
func Soak() Options {
	return Options{
		GCTrigger:     512,
		StealDecision: 768,
		GateAcquire:   512,
		HeaderCAS:     512,
		BusyWindow:    512,
		JoinCheck:     256,
		CGCMark:       256,
		CGCSweep:      512,
		CGCShade:      256,
		PathSpill:     256,
		Burst:         256,
		DeadlinePin:   256,
		ShedStorm:     256,
	}
}

// Injector makes seeded injection decisions. Safe for concurrent use; a
// nil Injector is valid and never injects.
type Injector struct {
	seed uint64
	rate [numPoints]uint32
	hits [numPoints]atomic.Uint64 // decisions taken at each point
	hot  [numPoints]atomic.Uint64 // decisions that injected
}

// retryClamp bounds the rates of points that sit inside retry loops.
const retryClamp = 1000

// New creates an injector with the given seed and rates.
func New(seed int64, o Options) *Injector {
	in := &Injector{seed: uint64(seed) * 0x9E3779B97F4A7C15}
	if in.seed == 0 {
		in.seed = 0x9E3779B97F4A7C15
	}
	clamp := func(r, max uint32) uint32 {
		if r > max {
			return max
		}
		return r
	}
	in.rate[GCTrigger] = clamp(o.GCTrigger, 1024)
	in.rate[StealDecision] = clamp(o.StealDecision, 1024)
	in.rate[GateAcquire] = clamp(o.GateAcquire, retryClamp)
	in.rate[HeaderCAS] = clamp(o.HeaderCAS, retryClamp)
	in.rate[BusyWindow] = clamp(o.BusyWindow, 1024)
	in.rate[JoinCheck] = clamp(o.JoinCheck, 1024)
	in.rate[CGCMark] = clamp(o.CGCMark, 1024)
	in.rate[CGCSweep] = clamp(o.CGCSweep, 1024)
	in.rate[CGCShade] = clamp(o.CGCShade, 1024)
	in.rate[PathSpill] = clamp(o.PathSpill, 1024)
	in.rate[Burst] = clamp(o.Burst, 1024)
	in.rate[DeadlinePin] = clamp(o.DeadlinePin, 1024)
	// ShedStorm sits inside the load generator's retry loop: a point that
	// always refuses would starve every request instead of perturbing the
	// admission schedule.
	in.rate[ShedStorm] = clamp(o.ShedStorm, retryClamp)
	return in
}

// splitmix64 is the finalizer of SplitMix64: a high-quality 64-bit mix used
// to turn (seed, point, counter) into an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Should reports whether to inject at point p for this hit. The decision
// for the n-th hit of a point is a pure function of (seed, p, n), so a run
// with a fixed seed injects a reproducible fault sequence per point.
func (in *Injector) Should(p Point) bool {
	if in == nil || in.rate[p] == 0 {
		return false
	}
	n := in.hits[p].Add(1)
	h := splitmix64(in.seed ^ uint64(p)<<56 ^ n)
	if uint32(h%1024) < in.rate[p] {
		in.hot[p].Add(1)
		return true
	}
	return false
}

// Spin returns a small deterministic iteration count (1..4) for stretching
// a window at point p, derived from the point's current hit count.
func (in *Injector) Spin(p Point) int {
	if in == nil {
		return 0
	}
	return int(splitmix64(in.seed^uint64(p)<<56^in.hits[p].Load())%4) + 1
}

// Injected returns how many times point p actually fired.
func (in *Injector) Injected(p Point) uint64 {
	if in == nil {
		return 0
	}
	return in.hot[p].Load()
}

// Hits returns how many times point p was consulted.
func (in *Injector) Hits(p Point) uint64 {
	if in == nil {
		return 0
	}
	return in.hits[p].Load()
}

// Report renders per-point injection totals, for failure dumps.
func (in *Injector) Report() string {
	if in == nil {
		return "chaos: off"
	}
	s := fmt.Sprintf("chaos: seed-mix=%#x", in.seed)
	for _, p := range Points() {
		s += fmt.Sprintf("\n  %-14s %8d / %8d hits (rate %d/1024)",
			p, in.hot[p].Load(), in.hits[p].Load(), in.rate[p])
	}
	return s
}
