package chaos

import (
	"sync"
	"testing"
)

// Two injectors with the same seed must make identical decision sequences
// per point when consulted serially.
func TestDeterministicSequence(t *testing.T) {
	a := New(42, Soak())
	b := New(42, Soak())
	for _, p := range Points() {
		for i := 0; i < 4096; i++ {
			if a.Should(p) != b.Should(p) {
				t.Fatalf("point %v diverged at hit %d", p, i)
			}
		}
	}
}

// Different seeds should produce different fault sequences (with
// overwhelming probability over 4096 draws at rate 1/2).
func TestSeedsDiffer(t *testing.T) {
	a := New(1, Soak())
	b := New(2, Soak())
	same := 0
	for i := 0; i < 4096; i++ {
		if a.Should(HeaderCAS) == b.Should(HeaderCAS) {
			same++
		}
	}
	if same == 4096 {
		t.Fatal("seeds 1 and 2 produced identical HeaderCAS sequences")
	}
}

// The injected multiset per point must be independent of interleaving:
// concurrent consultation with a fixed seed yields the same per-point
// injection total as serial consultation.
func TestConcurrentTotalsMatchSerial(t *testing.T) {
	const perG, gs = 1024, 8
	serial := New(7, Soak())
	for i := 0; i < perG*gs; i++ {
		serial.Should(GCTrigger)
	}
	conc := New(7, Soak())
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				conc.Should(GCTrigger)
			}
		}()
	}
	wg.Wait()
	if serial.Injected(GCTrigger) != conc.Injected(GCTrigger) {
		t.Fatalf("serial injected %d, concurrent injected %d",
			serial.Injected(GCTrigger), conc.Injected(GCTrigger))
	}
}

// A nil injector must be inert and safe at every site.
func TestNilInjector(t *testing.T) {
	var in *Injector
	for _, p := range Points() {
		if in.Should(p) {
			t.Fatalf("nil injector fired at %v", p)
		}
		if in.Spin(p) != 0 || in.Injected(p) != 0 || in.Hits(p) != 0 {
			t.Fatalf("nil injector reported state at %v", p)
		}
	}
	if in.Report() != "chaos: off" {
		t.Fatalf("nil report = %q", in.Report())
	}
}

// Rates of retry-loop points must be clamped below certainty.
func TestRetryClamp(t *testing.T) {
	in := New(3, Options{HeaderCAS: 1024, GateAcquire: 1024})
	missed := false
	for i := 0; i < 4096; i++ {
		if !in.Should(HeaderCAS) {
			missed = true
		}
	}
	if !missed {
		t.Fatal("HeaderCAS at max rate never declined; retry loops would livelock")
	}
}

func TestRates(t *testing.T) {
	in := New(9, Options{GCTrigger: 512})
	const n = 1 << 14
	for i := 0; i < n; i++ {
		in.Should(GCTrigger)
	}
	got := float64(in.Injected(GCTrigger)) / n
	if got < 0.45 || got > 0.55 {
		t.Fatalf("rate 512/1024 injected fraction %.3f, want ~0.5", got)
	}
	if in.Should(StealDecision) {
		t.Fatal("zero-rate point fired")
	}
}
