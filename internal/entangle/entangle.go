// Package entangle implements the paper's primary contribution: managing
// entanglement at the granularity of memory objects, so that programs with
// unrestricted effects run correctly on a hierarchical heap while
// disentangled objects are shielded from the cost.
//
// Terminology (paper §2–4):
//
//   - A *down-pointer* is a pointer stored into an object of a shallower
//     heap, pointing at an object of a deeper heap on the same path.
//   - An object is an *entanglement candidate* (header candidate bit) when
//     reading through it may yield a pointer to a concurrent heap: either a
//     down-pointer was written into it, or it was itself acquired through
//     an entangled read. Reads of non-candidate objects take the fast path
//     — a single header test — which is how disentangled data stays cheap.
//   - An *entangled read* occurs when a task dereferences a pointer whose
//     target lives in a heap that is not an ancestor of the task's leaf.
//     The target is *pinned*: the moving local collector may neither
//     relocate nor reclaim it until its *unpin depth* — the depth of the
//     least common ancestor of the reader and the target's heap — is
//     reached by joins.
//   - An *entangled write* stores a pointer into an object of a concurrent
//     heap, publishing the target to that side; the target is pinned
//     immediately, since concurrent readers may acquire it at any time.
package entangle

import (
	"errors"
	"fmt"
	"sync/atomic"

	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

// Mode selects how the runtime responds to entanglement.
type Mode int

const (
	// Manage pins entangled objects and lets the program proceed: the
	// paper's contribution.
	Manage Mode = iota
	// Detect reports entanglement as an error, reproducing the behavior of
	// MPL before this paper (detect-and-abort). For memory safety the
	// manager still pins on detection — execution unwinds cooperatively
	// rather than stopping the world — but the computation's result is
	// replaced by the error, which is the observable "abort".
	Detect
	// Unsafe disables the barriers entirely; only meaningful for
	// disentangled programs, used by the ablation experiments to price
	// the barrier fast paths.
	Unsafe
)

func (m Mode) String() string {
	switch m {
	case Manage:
		return "manage"
	case Detect:
		return "detect"
	case Unsafe:
		return "unsafe"
	}
	return "invalid"
}

// ErrEntangled is returned (wrapped) when Mode is Detect and the program
// entangles.
var ErrEntangled = errors.New("entanglement detected")

// counter is an atomic counter padded out to its own cache line. The
// stats are bumped from the barrier slow paths of every worker at once;
// without padding, eight counters share one 64-byte line and every
// increment invalidates the line for all other workers (false sharing).
type counter struct {
	atomic.Int64
	_ [56]byte
}

// Stats holds the paper's entanglement cost metrics.
type Stats struct {
	DownPointers    counter // down-pointer writes remembered
	Candidates      counter // objects newly marked candidate
	EntangledReads  counter // reads that found a concurrent object
	EntangledWrites counter // writes into concurrent objects
	SlowReads       counter // reads that took the slow path at all
	Pins            counter // objects newly pinned
	Unpins          counter // objects unpinned at joins
	PinnedNow       counter // currently pinned objects (gauge)
	PinnedPeak      counter // high-water mark of PinnedNow
}

func (s *Stats) pinned(delta int64) {
	now := s.PinnedNow.Add(delta)
	for {
		peak := s.PinnedPeak.Load()
		if now <= peak || s.PinnedPeak.CompareAndSwap(peak, now) {
			return
		}
	}
}

// Snapshot returns a plain-struct copy for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		DownPointers:    s.DownPointers.Load(),
		Candidates:      s.Candidates.Load(),
		EntangledReads:  s.EntangledReads.Load(),
		EntangledWrites: s.EntangledWrites.Load(),
		SlowReads:       s.SlowReads.Load(),
		Pins:            s.Pins.Load(),
		Unpins:          s.Unpins.Load(),
		PinnedPeak:      s.PinnedPeak.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	DownPointers    int64
	Candidates      int64
	EntangledReads  int64
	EntangledWrites int64
	SlowReads       int64
	Pins            int64
	Unpins          int64
	PinnedPeak      int64
}

// Manager coordinates entanglement bookkeeping for one runtime instance.
type Manager struct {
	Space *mem.Space
	Tree  *hierarchy.Tree
	Mode  Mode
	Stats Stats
}

// New creates a manager.
func New(space *mem.Space, tree *hierarchy.Tree, mode Mode) *Manager {
	return &Manager{Space: space, Tree: tree, Mode: mode}
}

// heapOf returns the live heap currently owning r.
func (m *Manager) heapOf(r mem.Ref) *hierarchy.Heap {
	return m.Tree.Get(m.Space.HeapOf(r))
}

// OnWrite performs the write-barrier bookkeeping for storing the reference
// x into payload word i of object o, by a task whose leaf heap is leaf.
// It must run BEFORE the raw store: the candidate bit must be visible to
// any reader that can observe the new pointer. The caller has already
// filtered the same-heap fast path and non-reference values.
func (m *Manager) OnWrite(leaf *hierarchy.Heap, o mem.Ref, i int, x mem.Ref) error {
	oh := m.heapOf(o)
	xh := m.heapOf(x)
	if oh == xh {
		return nil
	}
	switch {
	case m.Tree.IsAncestor(xh, oh):
		// Up-pointer: always disentangled, nothing to record.
		return nil
	case m.Tree.IsAncestor(oh, xh):
		// Down-pointer: remember it for collections of xh's suffix, and
		// mark the holder so reads through it take the slow path. The
		// candidate bit is set before the caller's store, so a reader
		// that sees the new pointer also sees the bit (both are
		// sequentially consistent atomics).
		if m.Space.SetCandidate(o) {
			m.Stats.Candidates.Add(1)
		}
		xh.AddRemembered(o, i)
		m.Stats.DownPointers.Add(1)
		return nil
	default:
		// Cross-pointer: either o lives in a heap concurrent with the
		// writer (it was itself acquired through entanglement), or o is
		// the writer's own object receiving a pointer to a concurrent
		// one. Storing x publishes it: pin x now, because the other side
		// can read it without further synchronization — and mark the
		// holder, so reads through it take the slow path (the holder now
		// contains an entangled pointer, making it a candidate by the
		// paper's definition).
		if m.Space.SetCandidate(o) {
			m.Stats.Candidates.Add(1)
		}
		m.Stats.EntangledWrites.Add(1)
		unpin := m.Tree.LCA(oh, xh).Depth()
		if u := m.Tree.LCA(leaf, xh).Depth(); u < unpin {
			unpin = u
		}
		m.pinLocked(x, unpin)
		if m.Mode == Detect {
			return fmt.Errorf("write into concurrent object %v: %w", o, ErrEntangled)
		}
		return nil
	}
}

// OnRead performs the read-barrier slow path: the holder o is a candidate
// and the loaded value v is a reference. It returns the (possibly updated)
// value to use: if a local collection moved the target between the caller's
// load and our pin, the re-read under the heap lock yields the object's
// current location.
func (m *Manager) OnRead(leaf *hierarchy.Heap, o mem.Ref, i int, v mem.Value) (mem.Value, error) {
	m.Stats.SlowReads.Add(1)
	for {
		x := v.Ref()
		xh := m.heapOf(x)
		if m.Tree.IsAncestor(xh, leaf) {
			// Disentangled: the target is on our root-to-leaf path.
			return v, nil
		}
		// Entangled read. Lock the target heap to serialize against its
		// owner's local collection, then validate that the field still
		// holds the value we loaded (the collection updates remembered
		// fields before releasing the lock).
		xh.Mu.Lock()
		cur := m.Space.Load(o, i)
		if cur != v || m.Space.HeapOf(x) != xh.ID {
			xh.Mu.Unlock()
			if !cur.IsRef() {
				return cur, nil
			}
			v = cur
			continue
		}
		m.Stats.EntangledReads.Add(1)
		unpin := m.Tree.LCA(leaf, xh).Depth()
		if m.Space.Pin(x, unpin) {
			m.Stats.Pins.Add(1)
			m.pinned(1)
			xh.AddPinned(x)
		}
		// Mark the acquired object so our reads *through* it also take
		// the slow path; anything it leads to is concurrent with us.
		if m.Space.SetCandidate(x) {
			m.Stats.Candidates.Add(1)
		}
		xh.Mu.Unlock()
		if m.Mode == Detect {
			return v, fmt.Errorf("read of concurrent object %v: %w", x, ErrEntangled)
		}
		return v, nil
	}
}

// pinLocked pins x under its heap's lock (entangled-write path).
func (m *Manager) pinLocked(x mem.Ref, unpin int) {
	for {
		xh := m.heapOf(x)
		xh.Mu.Lock()
		if m.Space.HeapOf(x) != xh.ID {
			xh.Mu.Unlock()
			continue // heap merged underneath us; retry against the new owner
		}
		if m.Space.Pin(x, unpin) {
			m.Stats.Pins.Add(1)
			m.pinned(1)
			xh.AddPinned(x)
		}
		if m.Space.SetCandidate(x) {
			m.Stats.Candidates.Add(1)
		}
		xh.Mu.Unlock()
		return
	}
}

func (m *Manager) pinned(d int64) { m.Stats.pinned(d) }

// OnJoin merges child into parent and records unpin statistics.
func (m *Manager) OnJoin(child, parent *hierarchy.Heap) {
	n := m.Tree.Merge(child, parent, m.Space)
	if n > 0 {
		m.Stats.Unpins.Add(int64(n))
		m.pinned(int64(-n))
	}
}
