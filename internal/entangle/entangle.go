// Package entangle implements the paper's primary contribution: managing
// entanglement at the granularity of memory objects, so that programs with
// unrestricted effects run correctly on a hierarchical heap while
// disentangled objects are shielded from the cost.
//
// Terminology (paper §2–4):
//
//   - A *down-pointer* is a pointer stored into an object of a shallower
//     heap, pointing at an object of a deeper heap on the same path.
//   - An object is an *entanglement candidate* (header candidate bit) when
//     reading through it may yield a pointer to a concurrent heap: either a
//     down-pointer was written into it, or it was itself acquired through
//     an entangled read. Reads of non-candidate objects take the fast path
//     — a single header test — which is how disentangled data stays cheap.
//   - An *entangled read* occurs when a task dereferences a pointer whose
//     target lives in a heap that is not an ancestor of the task's leaf.
//     The target is *pinned*: the moving local collector may neither
//     relocate nor reclaim it until its *unpin depth* — the depth of the
//     least common ancestor of the reader and the target's heap — is
//     reached by joins.
//   - An *entangled write* stores a pointer into an object of a concurrent
//     heap, publishing the target to that side; the target is pinned
//     immediately, since concurrent readers may acquire it at any time.
//
// The barriers below are lock-free: a pin is a single CAS on the object
// header (mem.PinHeader), ordered against concurrent copying by the header
// state machine, and ordered against the bulk phases of a collection or
// merge by the owning heap's reader gate (hierarchy.Gate) — one atomic add
// to enter, one to leave. No mutex is acquired anywhere on the OnRead or
// OnWrite path.
package entangle

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"mplgo/internal/attr"
	"mplgo/internal/gc"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/trace"
)

// Mode selects how the runtime responds to entanglement.
type Mode int

const (
	// Manage pins entangled objects and lets the program proceed: the
	// paper's contribution.
	Manage Mode = iota
	// Detect reports entanglement as an error, reproducing the behavior of
	// MPL before this paper (detect-and-abort). For memory safety the
	// manager still pins on detection — execution unwinds cooperatively
	// rather than stopping the world — but the computation's result is
	// replaced by the error, which is the observable "abort".
	Detect
	// Unsafe disables the barriers entirely; only meaningful for
	// disentangled programs, used by the ablation experiments to price
	// the barrier fast paths.
	Unsafe
)

func (m Mode) String() string {
	switch m {
	case Manage:
		return "manage"
	case Detect:
		return "detect"
	case Unsafe:
		return "unsafe"
	}
	return "invalid"
}

// ErrEntangled is returned (wrapped) when Mode is Detect and the program
// entangles.
var ErrEntangled = errors.New("entanglement detected")

// counter is an atomic counter padded out to its own cache line. The
// stats are bumped from the barrier slow paths of every worker at once;
// without padding, eight counters share one 64-byte line and every
// increment invalidates the line for all other workers (false sharing).
type counter struct {
	atomic.Int64
	_ [56]byte
}

// Stats holds the paper's entanglement cost metrics.
type Stats struct {
	DownPointers    counter // down-pointer writes remembered
	Candidates      counter // objects newly marked candidate
	EntangledReads  counter // reads that found a concurrent object
	EntangledWrites counter // writes into concurrent objects
	SlowReads       counter // reads that took the slow path at all
	Pins            counter // objects newly pinned
	Unpins          counter // objects unpinned at joins
	PinnedPeak      counter // high-water mark of PinnedNow()
	PinnedBytesNow  counter // bytes (header+payload) currently pinned (gauge)
	PinnedBytesPeak counter // high-water mark of PinnedBytesNow
}

// PinnedNow returns the number of currently pinned objects. It is not a
// counter of its own: every pin bumps Pins and every unpin bumps Unpins,
// so the gauge is their difference — one less atomic on the pin path.
func (s *Stats) PinnedNow() int64 { return s.Pins.Load() - s.Unpins.Load() }

// pinnedBytes adjusts the pinned-bytes gauge (negative deltas at joins).
func (s *Stats) pinnedBytes(delta int64) { s.PinnedBytesNow.Add(delta) }

// pinned records one new pin of an object occupying the given bytes, and
// folds both gauges into their high-water marks at the pin site itself.
//
// Peaks must be captured here, not deferred to the joins where the gauges
// fall: joins run concurrently with pins, so a deferred capture can read
// the gauge after a racing join's decrement and miss the true maximum
// entirely (in the worst case every capture lands post-decrement and the
// reported peak is zero while real pins were live). Capturing from the
// atomic Add's return value can never over-report either — the value
// pins - Unpins.Load() is at most the instantaneous gauge, because Unpins
// only grows. peakMax is a CAS loop, so concurrent pin sites fold their
// candidates in without losing updates.
func (s *Stats) pinned(bytes int64) {
	pins := s.Pins.Add(1)
	peakMax(&s.PinnedPeak, pins-s.Unpins.Load())
	peakMax(&s.PinnedBytesPeak, s.PinnedBytesNow.Add(bytes))
}

// capturePeaks folds the current gauge values into the high-water marks;
// a Snapshot-time backstop (the pin sites already capture every maximum).
func (s *Stats) capturePeaks() {
	peakMax(&s.PinnedPeak, s.PinnedNow())
	peakMax(&s.PinnedBytesPeak, s.PinnedBytesNow.Load())
}

func peakMax(peak *counter, n int64) {
	for {
		p := peak.Load()
		if n <= p || peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// Snapshot returns a plain-struct copy for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	s.capturePeaks()
	return StatsSnapshot{
		DownPointers:    s.DownPointers.Load(),
		Candidates:      s.Candidates.Load(),
		EntangledReads:  s.EntangledReads.Load(),
		EntangledWrites: s.EntangledWrites.Load(),
		SlowReads:       s.SlowReads.Load(),
		Pins:            s.Pins.Load(),
		Unpins:          s.Unpins.Load(),
		PinnedPeak:      s.PinnedPeak.Load(),
		PinnedPeakBytes: s.PinnedBytesPeak.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	DownPointers    int64
	Candidates      int64
	EntangledReads  int64
	EntangledWrites int64
	SlowReads       int64
	Pins            int64
	Unpins          int64
	PinnedPeak      int64
	PinnedPeakBytes int64
}

// Manager coordinates entanglement bookkeeping for one runtime instance.
type Manager struct {
	Space *mem.Space
	Tree  *hierarchy.Tree
	Mode  Mode
	Stats Stats

	// SATB, when non-nil, is the concurrent collector's deletion barrier
	// (gc.CGC): every mutator store runs ShadeOverwritten before the raw
	// store so references deleted while the collector is marking are kept
	// in its snapshot. Set once at runtime construction, before any task
	// runs; nil whenever the concurrent collector is off.
	SATB *gc.CGC
}

// New creates a manager.
func New(space *mem.Space, tree *hierarchy.Tree, mode Mode) *Manager {
	return &Manager{Space: space, Tree: tree, Mode: mode}
}

// heapOf returns the heap currently owning r. The result can be stale the
// moment it is returned (a merge can flip chunk ownership concurrently),
// or nil/dead for a ref whose chunk was released or whose heap merged
// away; callers re-validate ownership under the heap's reader gate before
// acting on it.
func (m *Manager) heapOf(r mem.Ref) *hierarchy.Heap {
	return m.Tree.Get(m.Space.HeapOf(r))
}

// ShadeOverwritten is the snapshot-at-the-beginning deletion barrier of
// the concurrent collector: called before a store to payload word i of o,
// it shades the reference the store is about to overwrite if that
// reference lies in a heap the collector is marking. The push happens
// under the writer's own reader gate, bracketing the phase re-check — the
// collector's marking-termination gate flush relies on exactly this to
// observe every in-flight shade. The companion bookkeeping for the stored
// value itself is OnWrite below; the two are independent barriers.
func (m *Manager) ShadeOverwritten(leaf *hierarchy.Heap, o mem.Ref, i int) {
	g := m.SATB
	if g == nil || !g.Marking() {
		return
	}
	at := leaf.AttrSink.Begin()
	old := m.Space.Load(o, i)
	if !old.IsRef() || !g.InScope(old.Ref()) {
		leaf.AttrSink.End(attr.ShadeQueue, at)
		return
	}
	leaf.Gate.EnterReader()
	if g.Marking() {
		g.Shade(old.Ref())
	}
	leaf.Gate.ExitReader()
	leaf.AttrSink.End(attr.ShadeQueue, at)
}

// OnWrite performs the write-barrier bookkeeping for storing the reference
// x into payload word i of object o, by a task whose leaf heap is leaf.
// (When the concurrent collector is on, the caller also runs the
// ShadeOverwritten deletion barrier; OnWrite itself only classifies the
// stored edge.)
// It must run BEFORE the raw store: the candidate bit must be visible to
// any reader that can observe the new pointer. The caller has already
// filtered the same-heap fast path and non-reference values.
func (m *Manager) OnWrite(leaf *hierarchy.Heap, o mem.Ref, i int, x mem.Ref) error {
	// Attribution tiling (internal/attr): the classification prefix —
	// two heap lookups and up to two ancestry tests — is one
	// AncestryQuery window; the down-pointer branch closes a
	// RemsetPublish window over the publication, and the cross-pointer
	// branch hands its window to pinEntangled, which tiles the gate and
	// CAS the same way OnRead does.
	at := leaf.AttrSink.Begin()
	oh := m.heapOf(o)
	xh := m.heapOf(x)
	if oh == xh {
		leaf.AttrSink.End(attr.AncestryQuery, at)
		return nil
	}
	switch {
	case m.Tree.IsAncestor(xh, oh):
		// Up-pointer: always disentangled, nothing to record.
		leaf.AttrSink.End(attr.AncestryQuery, at)
		return nil
	case m.Tree.IsAncestor(oh, xh):
		at = leaf.AttrSink.Lap(attr.AncestryQuery, at)
		// Down-pointer: remember it for collections of xh's suffix, and
		// mark the holder so reads through it take the slow path. The
		// candidate bit is set before the caller's store, so a reader
		// that sees the new pointer also sees the bit (both are
		// sequentially consistent atomics).
		if m.Space.SetCandidate(o) {
			m.Stats.Candidates.Add(1)
		}
		if xh == leaf {
			// The target lives in the writer's own heap — the common case
			// for publishing freshly allocated objects (producer/consumer
			// pipelines). Only this strand drains, collects or merges leaf,
			// so the entry goes straight into the owner-only view: no gate,
			// no atomics.
			leaf.AddRememberedLocal(o, i)
		} else {
			m.publishRemembered(oh, xh, o, i, x)
		}
		m.Stats.DownPointers.Add(1)
		leaf.AttrSink.End(attr.RemsetPublish, at)
		return nil
	default:
		// Cross-pointer: either o lives in a heap concurrent with the
		// writer (it was itself acquired through entanglement), or o is
		// the writer's own object receiving a pointer to a concurrent
		// one. Storing x publishes it: pin x now, because the other side
		// can read it without further synchronization — and mark the
		// holder, so reads through it take the slow path (the holder now
		// contains an entangled pointer, making it a candidate by the
		// paper's definition).
		if m.Space.SetCandidate(o) {
			m.Stats.Candidates.Add(1)
		}
		m.Stats.EntangledWrites.Add(1)
		unpin := m.Tree.LCADepth(oh, xh)
		if u := m.Tree.UnpinDepth(leaf, xh); u < unpin {
			unpin = u
		}
		at = leaf.AttrSink.Lap(attr.AncestryQuery, at)
		m.pinEntangled(leaf, x, unpin, at)
		if m.Mode == Detect {
			return fmt.Errorf("write into concurrent object %v: %w", o, ErrEntangled)
		}
		return nil
	}
}

// publishRemembered records the down-pointer (o, i) → x with x's owning
// heap, entering the owner's reader gate so the entry cannot be lost to a
// racing merge: a push made inside the gate is always seen by the next
// DrainBuffers. If the target's heap merges underneath us, the entry is
// republished against the live owner — or dropped once the target shares
// the holder's heap (an intra-heap pointer needs no remembering).
func (m *Manager) publishRemembered(oh, xh *hierarchy.Heap, o mem.Ref, i int, x mem.Ref) {
	for {
		if xh == nil || xh.Dead() || xh == oh {
			if xh == oh {
				return
			}
			runtime.Gosched()
			xh = m.heapOf(x)
			continue
		}
		xh.Gate.EnterReader()
		ok := m.Space.HeapOf(x) == xh.ID
		if ok {
			xh.AddRemembered(o, i)
		}
		xh.Gate.ExitReader()
		if ok {
			return
		}
		xh = m.heapOf(x)
	}
}

// OnRead performs the read-barrier slow path: the holder o is a candidate
// and the loaded value v is a reference. It returns the (possibly updated)
// value to use: if a local collection moved the target between the caller's
// load and our pin, re-reading the field yields the object's current
// location. The path is lock-free: one header load for the already-pinned
// fast path; otherwise a gate entry (atomic add), an ownership check, a
// field validation and a single pin CAS.
func (m *Manager) OnRead(leaf *hierarchy.Heap, o mem.Ref, i int, v mem.Value) (mem.Value, error) {
	m.Stats.SlowReads.Add(1)
	leaf.TraceRing.Emit(trace.EvSlowRead, int32(leaf.Depth()), uint64(o), 0)
	// Attribution tiling (internal/attr): when this occurrence is
	// sampled, consecutive Lap calls split the whole slow path into
	// disjoint component windows — resolve+ancestry (AncestryQuery),
	// gate acquire (GateEnter), pin CAS + pinned-set publication
	// (PinCAS, with busy/forwarded outcomes as PinRetry), and release +
	// tail bookkeeping (GateExit) — so the estimated components sum to
	// the slow path's whole cost, not a sample of its parts. Each
	// window includes the adjacent stats/trace bookkeeping it brackets;
	// that bias is documented in DESIGN.md §10.
	at := leaf.AttrSink.Begin()
	for {
		x := v.Ref()
		xh := m.heapOf(x)
		if xh == nil || xh.Dead() {
			// Stale ownership: the chunk was released, or its heap merged
			// away, between the caller's load and our lookup. The
			// collection that did it has already updated the field (and a
			// merge re-resolves on the next pass), so reload and retry.
			cur := m.Space.Load(o, i)
			if !cur.IsRef() {
				leaf.AttrSink.End(attr.AncestryQuery, at)
				return cur, nil
			}
			if cur == v {
				runtime.Gosched()
			}
			v = cur
			continue
		}
		if m.Tree.IsAncestor(xh, leaf) {
			// Disentangled: the target is on our root-to-leaf path.
			leaf.AttrSink.End(attr.AncestryQuery, at)
			return v, nil
		}
		// Entangled read. The unpin depth (the LCA with the owner) also
		// bounds the already-pinned fast path below; UnpinDepth serves it
		// from the leaf's one-entry cache — ancestry is immutable, so
		// repeated reads against the same concurrent heap skip the oracle.
		unpin := m.Tree.UnpinDepth(leaf, xh)
		at = leaf.AttrSink.Lap(attr.AncestryQuery, at)
		if h := m.Space.Header(x); h.Valid() && h.Kind() != mem.KForward &&
			!h.Busy() && h.Pinned() && h.Candidate() &&
			h.UnpinDepth() <= unpin {
			// Already-pinned fast path: a pin at (or above) our LCA depth
			// cannot be revoked while our strand runs — unpinning at depth
			// d requires a merge into a heap of depth ≤ d, and every such
			// merge point is an ancestor of ours whose join waits for us.
			// The object therefore cannot move or be reclaimed: no gate,
			// no CAS, no publication needed. (Attribution: the header
			// validation is the degenerate pin — it lands in PinCAS.)
			m.Stats.EntangledReads.Add(1)
			leaf.TraceRing.Emit(trace.EvEntangledRead, int32(leaf.Depth()), uint64(x), uint64(unpin))
			leaf.AttrSink.End(attr.PinCAS, at)
			if m.Mode == Detect {
				return v, fmt.Errorf("read of concurrent object %v: %w", x, ErrEntangled)
			}
			return v, nil
		}
		// Pin-then-validate under the owner's reader gate, which excludes
		// the bulk phases of its collections and of the merge that would
		// retire it (so xh stays live and its objects stay put while we
		// are inside).
		xh.Gate.EnterReader()
		at = leaf.AttrSink.Lap(attr.GateEnter, at)
		if m.Space.HeapOf(x) != xh.ID {
			xh.Gate.ExitReader()
			at = leaf.AttrSink.Lap(attr.GateExit, at)
			continue // ownership moved; re-resolve
		}
		cur := m.Space.Load(o, i)
		if cur != v {
			// A collection moved the target (and updated the field)
			// before we entered the gate; use the current location.
			xh.Gate.ExitReader()
			if !cur.IsRef() {
				leaf.AttrSink.End(attr.GateExit, at)
				return cur, nil
			}
			at = leaf.AttrSink.Lap(attr.GateExit, at)
			v = cur
			continue
		}
		st, h := m.Space.PinHeader(x, unpin)
		if st == mem.PinBusy || st == mem.PinForwarded {
			// A stale copy in a retained from-space chunk (or a copy still
			// in flight elsewhere): chase the forward pointer if it is
			// already installed, otherwise back off and re-resolve.
			xh.Gate.ExitReader()
			if nx, fwd := m.Space.Forwarded(x); fwd {
				v = nx.Value()
			} else {
				runtime.Gosched()
			}
			at = leaf.AttrSink.Lap(attr.PinRetry, at)
			continue
		}
		if st == mem.PinNew {
			m.Stats.pinned(int64(h.Len()+1) * 8)
			xh.AddPinned(x)
			leaf.TraceRing.Emit(trace.EvPin, int32(leaf.Depth()), uint64(x), uint64(unpin))
		}
		at = leaf.AttrSink.Lap(attr.PinCAS, at)
		m.Stats.EntangledReads.Add(1)
		leaf.TraceRing.Emit(trace.EvEntangledRead, int32(leaf.Depth()), uint64(x), uint64(unpin))
		// Mark the acquired object so our reads *through* it also take
		// the slow path; anything it leads to is concurrent with us.
		if m.Space.SetCandidate(x) {
			m.Stats.Candidates.Add(1)
		}
		xh.Gate.ExitReader()
		leaf.AttrSink.End(attr.GateExit, at)
		if m.Mode == Detect {
			return v, fmt.Errorf("read of concurrent object %v: %w", x, ErrEntangled)
		}
		return v, nil
	}
}

// pinEntangled pins x at the given unpin depth on the entangled-write
// path, retrying across heap merges. Lock-free: gate entry, ownership
// check, one CAS. leaf (the writer's own heap) is only for event
// attribution — its ring belongs to the strand running this barrier.
// at is OnWrite's open attribution window (0 when not sampling); the
// gate/CAS/exit segments are tiled the same way as OnRead's.
func (m *Manager) pinEntangled(leaf *hierarchy.Heap, x mem.Ref, unpin int, at int64) {
	for {
		xh := m.heapOf(x)
		if xh == nil || xh.Dead() {
			runtime.Gosched()
			continue // merge in flight; ownership re-resolves to the live heap
		}
		xh.Gate.EnterReader()
		at = leaf.AttrSink.Lap(attr.GateEnter, at)
		if m.Space.HeapOf(x) != xh.ID {
			xh.Gate.ExitReader()
			at = leaf.AttrSink.Lap(attr.GateExit, at)
			continue
		}
		st, h := m.Space.PinHeader(x, unpin)
		if st == mem.PinBusy || st == mem.PinForwarded {
			xh.Gate.ExitReader()
			if nx, fwd := m.Space.Forwarded(x); fwd {
				x = nx
			} else {
				runtime.Gosched()
			}
			at = leaf.AttrSink.Lap(attr.PinRetry, at)
			continue
		}
		if st == mem.PinNew {
			m.Stats.pinned(int64(h.Len()+1) * 8)
			xh.AddPinned(x)
			leaf.TraceRing.Emit(trace.EvPin, int32(leaf.Depth()), uint64(x), uint64(unpin))
		}
		at = leaf.AttrSink.Lap(attr.PinCAS, at)
		if m.Space.SetCandidate(x) {
			m.Stats.Candidates.Add(1)
		}
		xh.Gate.ExitReader()
		leaf.AttrSink.End(attr.GateExit, at)
		return
	}
}

// OnJoin merges child into parent and records unpin statistics. (Peak
// capture happens at the pin sites — see Stats.pinned — so nothing is
// captured here.)
func (m *Manager) OnJoin(child, parent *hierarchy.Heap) {
	n, words := m.Tree.Merge(child, parent, m.Space)
	if n > 0 {
		m.Stats.Unpins.Add(int64(n))
		m.Stats.pinnedBytes(-words * 8)
	}
	if r := parent.TraceRing; r != nil && trace.Enabled() {
		now := m.Stats.PinnedBytesNow.Load()
		if now < 0 {
			now = 0 // racing decrements can transiently undershoot
		}
		d := int32(parent.Depth())
		r.Emit(trace.EvCounter, d, uint64(trace.CtrPinnedBytes), uint64(now))
		r.Emit(trace.EvCounter, d, uint64(trace.CtrPinnedPeakBytes), uint64(m.Stats.PinnedBytesPeak.Load()))
		if s := m.Tree.Stats; s != nil {
			r.Emit(trace.EvCounter, d, uint64(trace.CtrAncestryQueries), uint64(s.AncestryQueries.Load()))
			r.Emit(trace.EvCounter, d, uint64(trace.CtrSeqlockRetries), uint64(s.SeqlockRetries.Load()))
		}
	}
}
