package entangle

import (
	"fmt"
	"sync"
	"testing"

	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

// contendWorld is the microbenchmark fixture: a root heap holding one
// candidate array, an owner heap holding the shared targets, and one leaf
// heap per worker so every read is entangled (the owner is a sibling of
// every reader, LCA = root).
type contendWorld struct {
	sp     *mem.Space
	tr     *hierarchy.Tree
	m      *Manager
	holder mem.Ref
	tgts   []mem.Ref
	leaves []*hierarchy.Heap
}

func newContendWorld(workers, targets int) *contendWorld {
	w := &contendWorld{sp: mem.NewSpace(), tr: hierarchy.New()}
	w.m = New(w.sp, w.tr, Manage)
	root := w.tr.Root()

	owner := w.tr.Fork(root)
	al := mem.NewAllocator(w.sp, owner.ID)
	for i := 0; i < targets; i++ {
		w.tgts = append(w.tgts, al.AllocRef(mem.Int(int64(i))))
	}
	owner.Chunks = append(owner.Chunks, al.Chunks...)

	rootAl := mem.NewAllocator(w.sp, root.ID)
	w.holder = rootAl.AllocArray(targets, mem.Nil)
	root.Chunks = append(root.Chunks, rootAl.Chunks...)
	for i, tgt := range w.tgts {
		w.sp.Store(w.holder, i, tgt.Value())
	}
	w.sp.SetCandidate(w.holder)

	for i := 0; i < workers; i++ {
		w.leaves = append(w.leaves, w.tr.Fork(root))
	}
	return w
}

// BenchmarkContendedEntangledRead measures the OnRead slow path with N
// workers all entangled-reading ONE shared ref cell — the regime the
// per-heap mutex (former deviation D3) serialized. After the first pin,
// reads take the already-pinned fast path: one header load, no gate, no
// CAS, so throughput should scale with workers instead of collapsing.
func BenchmarkContendedEntangledRead(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			w := newContendWorld(workers, 1)
			v := w.tgts[0].Value()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(leaf *hierarchy.Heap) {
					defer wg.Done()
					for n := 0; n < b.N/workers; n++ {
						if _, err := w.m.OnRead(leaf, w.holder, 0, v); err != nil {
							panic(err)
						}
					}
				}(w.leaves[i])
			}
			wg.Wait()
		})
	}
}

// BenchmarkContendedEntangledReadSharded is the same shape with one target
// per worker: no shared cache line, so it isolates the protocol's fixed
// overhead (gate or mutex) from memory contention on the target itself.
func BenchmarkContendedEntangledReadSharded(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			w := newContendWorld(workers, workers)
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(idx int) {
					defer wg.Done()
					leaf, v := w.leaves[idx], w.tgts[idx].Value()
					for n := 0; n < b.N/workers; n++ {
						if _, err := w.m.OnRead(leaf, w.holder, idx, v); err != nil {
							panic(err)
						}
					}
				}(i)
			}
			wg.Wait()
		})
	}
}
