package entangle

import (
	"sync"
	"testing"
)

// TestPinnedPeakConcurrent is the regression test for peak capture racing
// concurrent decrements. The old scheme deferred high-water-mark capture
// to the joins (where the gauges fall) and to Snapshot; pins that were
// live only between two captures were invisible, and in the worst
// schedule every capture ran after a racing unpin's decrement, reporting
// a peak of zero while real pins were live. Capture now happens at the
// pin site from the atomic Add's return value, so a fully pinned phase
// must be reflected in the peak exactly.
func TestPinnedPeakConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
		objBytes   = 8
	)
	var s Stats

	// Phase 1: concurrent pins only. The gauge rises monotonically to the
	// total, and some pin's Add return value IS that total, so the peak
	// must equal it exactly — any shortfall means a capture was lost.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.pinned(objBytes)
			}
		}()
	}
	wg.Wait()
	const total = goroutines * perG
	if got := s.PinnedPeak.Load(); got != total {
		t.Fatalf("PinnedPeak = %d, want %d", got, total)
	}
	if got := s.PinnedBytesPeak.Load(); got != total*objBytes {
		t.Fatalf("PinnedBytesPeak = %d, want %d", got, total*objBytes)
	}

	// Phase 2: pins racing unpins (the schedule that broke deferred
	// capture). Every pin is immediately undone, so under the old scheme
	// a capture could always land post-decrement; the pin-site capture
	// must still see every pin live, so the peaks can only grow.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.pinned(objBytes)
				s.Unpins.Add(1)
				s.pinnedBytes(-objBytes)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.PinnedPeak < total {
		t.Fatalf("peak shrank under racing unpins: %d < %d", snap.PinnedPeak, total)
	}
	if snap.PinnedPeakBytes < total*objBytes {
		t.Fatalf("byte peak shrank under racing unpins: %d < %d", snap.PinnedPeakBytes, total*objBytes)
	}
	if snap.Pins != 2*total || snap.Unpins != total {
		t.Fatalf("counters: pins=%d unpins=%d", snap.Pins, snap.Unpins)
	}
}
