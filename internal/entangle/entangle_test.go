package entangle

import (
	"errors"
	"testing"

	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

// rig builds a hierarchy with root → {left, right} and an allocator per heap.
type rig struct {
	sp                *mem.Space
	tr                *hierarchy.Tree
	m                 *Manager
	root, left, right *hierarchy.Heap
	rootAl, leftAl    *mem.Allocator
	rightAl           *mem.Allocator
}

func newRig(mode Mode) *rig {
	r := &rig{sp: mem.NewSpace(), tr: hierarchy.New()}
	r.m = New(r.sp, r.tr, mode)
	r.root = r.tr.Root()
	r.left = r.tr.Fork(r.root)
	r.right = r.tr.Fork(r.root)
	r.rootAl = r.alloc(r.root)
	r.leftAl = r.alloc(r.left)
	r.rightAl = r.alloc(r.right)
	return r
}

func (r *rig) alloc(h *hierarchy.Heap) *mem.Allocator {
	a := mem.NewAllocator(r.sp, h.ID)
	return a
}

func (r *rig) adopt(h *hierarchy.Heap, a *mem.Allocator) {
	h.Chunks = append(h.Chunks, a.Chunks...)
	a.Chunks = nil
}

func TestUpPointerIsFree(t *testing.T) {
	r := newRig(Manage)
	anc := r.rootAl.AllocRef(mem.Nil)      // ancestor object
	arr := r.leftAl.AllocArray(2, mem.Nil) // deeper holder
	if err := r.m.OnWrite(r.left, arr, 0, anc); err != nil {
		t.Fatal(err)
	}
	if r.sp.Header(arr).Candidate() || r.sp.Header(anc).Candidate() {
		t.Fatal("up-pointer must not create candidates")
	}
	s := r.m.Stats.Snapshot()
	if s.DownPointers != 0 || s.Pins != 0 {
		t.Fatalf("up-pointer produced bookkeeping: %+v", s)
	}
}

func TestDownPointerWrite(t *testing.T) {
	r := newRig(Manage)
	holder := r.rootAl.AllocArray(2, mem.Nil) // shallow mutable holder
	x := r.leftAl.AllocTuple(mem.Int(5))      // deeper target
	if err := r.m.OnWrite(r.left, holder, 1, x); err != nil {
		t.Fatal(err)
	}
	if !r.sp.Header(holder).Candidate() {
		t.Fatal("down-pointer must mark the holder candidate")
	}
	if r.sp.Header(x).Pinned() {
		t.Fatal("down-pointer alone must not pin (pinning is lazy, at reads)")
	}
	r.left.DrainBuffers() // published lock-free; fold into the owner view
	if len(r.left.Remset) != 1 || r.left.Remset[0].Holder != holder || r.left.Remset[0].Index != 1 {
		t.Fatalf("remset = %+v", r.left.Remset)
	}
	s := r.m.Stats.Snapshot()
	if s.DownPointers != 1 || s.Candidates != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Down-pointer write is idempotent on the candidate bit.
	if err := r.m.OnWrite(r.left, holder, 0, x); err != nil {
		t.Fatal(err)
	}
	if got := r.m.Stats.Snapshot().Candidates; got != 1 {
		t.Fatalf("Candidates after second write = %d", got)
	}
}

func TestDisentangledReadNoPin(t *testing.T) {
	r := newRig(Manage)
	holder := r.rootAl.AllocArray(1, mem.Nil)
	x := r.leftAl.AllocTuple(mem.Int(1))
	// left writes a down-pointer, then left itself reads it back:
	// the target is on left's own path → disentangled.
	if err := r.m.OnWrite(r.left, holder, 0, x); err != nil {
		t.Fatal(err)
	}
	r.sp.Store(holder, 0, x.Value())
	v, err := r.m.OnRead(r.left, holder, 0, x.Value())
	if err != nil || v.Ref() != x {
		t.Fatalf("OnRead = %v, %v", v, err)
	}
	if r.sp.Header(x).Pinned() {
		t.Fatal("read of own-path object must not pin")
	}
	if r.m.Stats.Snapshot().EntangledReads != 0 {
		t.Fatal("disentangled read counted as entangled")
	}
}

func TestEntangledReadPins(t *testing.T) {
	r := newRig(Manage)
	holder := r.rootAl.AllocArray(1, mem.Nil)
	x := r.leftAl.AllocTuple(mem.Int(7))
	if err := r.m.OnWrite(r.left, holder, 0, x); err != nil {
		t.Fatal(err)
	}
	r.sp.Store(holder, 0, x.Value())

	// right reads the down-pointer: x is in a concurrent heap → entangled.
	v, err := r.m.OnRead(r.right, holder, 0, x.Value())
	if err != nil || v.Ref() != x {
		t.Fatalf("OnRead = %v, %v", v, err)
	}
	h := r.sp.Header(x)
	if !h.Pinned() {
		t.Fatal("entangled read must pin the target")
	}
	// LCA(right, left) = root, depth 0.
	if h.UnpinDepth() != 0 {
		t.Fatalf("unpin depth = %d, want 0", h.UnpinDepth())
	}
	if !h.Candidate() {
		t.Fatal("acquired object must become candidate")
	}
	r.left.DrainBuffers() // published lock-free; fold into the owner view
	if len(r.left.Pinned) != 1 || r.left.Pinned[0] != x {
		t.Fatalf("pinned list = %v", r.left.Pinned)
	}
	s := r.m.Stats.Snapshot()
	if s.EntangledReads != 1 || s.Pins != 1 || s.PinnedPeak != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// A second entangled read of the same object re-counts the read but
	// does not re-pin.
	if _, err := r.m.OnRead(r.right, holder, 0, x.Value()); err != nil {
		t.Fatal(err)
	}
	s = r.m.Stats.Snapshot()
	if s.EntangledReads != 2 || s.Pins != 1 {
		t.Fatalf("stats after re-read = %+v", s)
	}
}

func TestEntangledReadDeeperLCA(t *testing.T) {
	// Entanglement between two grandchildren under the same child must
	// unpin at that child's depth, not at the root.
	r := newRig(Manage)
	ll := r.tr.Fork(r.left) // depth 2
	lr := r.tr.Fork(r.left) // depth 2
	llAl := r.alloc(ll)

	holder := r.leftAl.AllocArray(1, mem.Nil) // depth-1 holder
	x := llAl.AllocTuple(mem.Int(3))          // depth-2 target
	if err := r.m.OnWrite(ll, holder, 0, x); err != nil {
		t.Fatal(err)
	}
	r.sp.Store(holder, 0, x.Value())

	if _, err := r.m.OnRead(lr, holder, 0, x.Value()); err != nil {
		t.Fatal(err)
	}
	if got := r.sp.Header(x).UnpinDepth(); got != 1 {
		t.Fatalf("unpin depth = %d, want 1 (LCA is left, depth 1)", got)
	}
}

func TestDetectModeAborts(t *testing.T) {
	r := newRig(Detect)
	holder := r.rootAl.AllocArray(1, mem.Nil)
	x := r.leftAl.AllocTuple(mem.Int(7))
	// Down-pointer writes are legal under disentanglement.
	if err := r.m.OnWrite(r.left, holder, 0, x); err != nil {
		t.Fatalf("down-pointer write must not abort: %v", err)
	}
	r.sp.Store(holder, 0, x.Value())
	// The concurrent read is the entanglement: detect mode reports it.
	_, err := r.m.OnRead(r.right, holder, 0, x.Value())
	if !errors.Is(err, ErrEntangled) {
		t.Fatalf("err = %v, want ErrEntangled", err)
	}
	// Detect mode still pins for memory safety while the abort propagates
	// cooperatively.
	if !r.sp.Header(x).Pinned() {
		t.Fatal("detect mode must pin while unwinding")
	}
}

func TestEntangledWritePins(t *testing.T) {
	r := newRig(Manage)
	// right somehow holds an object of left's (entangled object o) and
	// writes its own y into it: y must be pinned immediately.
	o := r.leftAl.AllocArray(1, mem.Nil)
	y := r.rightAl.AllocTuple(mem.Int(9))
	if err := r.m.OnWrite(r.right, o, 0, y); err != nil {
		t.Fatal(err)
	}
	h := r.sp.Header(y)
	if !h.Pinned() || !h.Candidate() {
		t.Fatal("entangled write must pin and mark the stored object")
	}
	if h.UnpinDepth() != 0 {
		t.Fatalf("unpin depth = %d, want 0", h.UnpinDepth())
	}
	s := r.m.Stats.Snapshot()
	if s.EntangledWrites != 1 || s.Pins != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEntangledWriteDetectAborts(t *testing.T) {
	r := newRig(Detect)
	o := r.leftAl.AllocArray(1, mem.Nil)
	y := r.rightAl.AllocTuple(mem.Int(9))
	if err := r.m.OnWrite(r.right, o, 0, y); !errors.Is(err, ErrEntangled) {
		t.Fatalf("err = %v, want ErrEntangled", err)
	}
}

func TestOnJoinUnpins(t *testing.T) {
	r := newRig(Manage)
	holder := r.rootAl.AllocArray(1, mem.Nil)
	x := r.leftAl.AllocTuple(mem.Int(7))
	r.adopt(r.left, r.leftAl)
	if err := r.m.OnWrite(r.left, holder, 0, x); err != nil {
		t.Fatal(err)
	}
	r.sp.Store(holder, 0, x.Value())
	if _, err := r.m.OnRead(r.right, holder, 0, x.Value()); err != nil {
		t.Fatal(err)
	}
	if !r.sp.Header(x).Pinned() {
		t.Fatal("setup: not pinned")
	}

	// left joins root: unpin depth 0 is reached.
	r.m.OnJoin(r.left, r.root)
	if r.sp.Header(x).Pinned() {
		t.Fatal("join to the LCA must unpin")
	}
	s := r.m.Stats.Snapshot()
	if s.Unpins != 1 {
		t.Fatalf("Unpins = %d", s.Unpins)
	}
	if r.m.Stats.PinnedNow() != 0 {
		t.Fatal("pinned gauge not decremented")
	}
	if r.sp.HeapOf(x) != r.root.ID {
		t.Fatal("merge did not move x's chunk to root")
	}
}

func TestModeString(t *testing.T) {
	if Manage.String() != "manage" || Detect.String() != "detect" || Unsafe.String() != "unsafe" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "invalid" {
		t.Fatal("invalid mode name")
	}
}

func TestOnReadRetryAfterFieldUpdate(t *testing.T) {
	// If the field changed between the caller's load and the barrier's
	// validation (as a local collection would do), OnRead must use the
	// current value.
	r := newRig(Manage)
	holder := r.rootAl.AllocArray(1, mem.Nil)
	x1 := r.leftAl.AllocTuple(mem.Int(1))
	x2 := r.leftAl.AllocTuple(mem.Int(2))
	if err := r.m.OnWrite(r.left, holder, 0, x1); err != nil {
		t.Fatal(err)
	}
	// The field currently holds x2, but the reader loaded the stale x1.
	r.sp.Store(holder, 0, x2.Value())
	v, err := r.m.OnRead(r.right, holder, 0, x1.Value())
	if err != nil {
		t.Fatal(err)
	}
	if v.Ref() != x2 {
		t.Fatalf("OnRead returned stale value %v, want %v", v, x2)
	}
	if !r.sp.Header(x2).Pinned() || r.sp.Header(x1).Pinned() {
		t.Fatal("pinning applied to the wrong object")
	}
}
