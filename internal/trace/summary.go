// Trace summarizer: parses a Chrome trace_event file produced by
// WriteChrome (the raw ring record rides along in each event's args)
// and derives the operational numbers a perf investigation starts from:
// steal and entangled-read rates, the pin-lifetime histogram, and
// per-phase collection latency. cmd/mplgo-trace is a thin wrapper.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// PinLifetimeBuckets is the number of log2 histogram buckets: bucket i
// counts pins whose pin→unpin span was in [2^i, 2^(i+1)) nanoseconds,
// with the last bucket absorbing everything longer (~1s and up).
const PinLifetimeBuckets = 31

// Summary is what one trace reduces to.
type Summary struct {
	Events         int           // decoded ring events
	Span           time.Duration // last timestamp minus first
	ByKind         map[Kind]int  // event counts per kind
	Workers        int           // rings that carried at least one event
	Steals         int
	Forks          int
	SlowReads      int
	EntangledReads int
	Pins           int
	Unpins         int

	// Rates per second of traced span (0 when the span is empty).
	StealsPerSec         float64
	SlowReadsPerSec      float64
	EntangledReadsPerSec float64

	// SlowReadRate is the barrier slow-path rate: slow reads per
	// entangled read opportunity is not recoverable from the trace alone,
	// so this is slow reads per second of span; the per-read fraction
	// comes from the bench JSON's ent_reads columns.

	// PinLifetimes is the log2-bucketed pin→unpin latency histogram.
	// Pins whose unpin never appears (still pinned at snapshot, or the
	// unpin fell off the ring) are counted in UnmatchedPins.
	PinLifetimes  [PinLifetimeBuckets]int
	UnmatchedPins int

	// Collection latency, from matched begin/end pairs per ring.
	LGC      PhaseStats
	CGCCycle PhaseStats
	CGCMark  PhaseStats
	CGCSweep PhaseStats

	// Counter track maxima (pinned bytes, live words, ...).
	CounterMax map[Counter]uint64

	// Steal-to-first-event latency: for each EvSteal, the gap until the
	// stealing worker's next trace event — the first evidence the stolen
	// task is actually running. An upper bound on scheduler hand-off
	// latency at trace granularity (the next event may itself be late).
	StealLat         PhaseStats
	StealLatByWorker map[int]*WorkerStealLat

	// Grid-cell identity (PR 9's expgrid runner stamps every cell trace
	// with grid_cell/grid_seed counters). HasGrid reports whether the
	// trace carried them.
	GridCell uint64
	GridSeed uint64
	HasGrid  bool

	// Attr is the cost-attribution decomposition extracted from attr_*
	// counters, nil when the trace carried none.
	Attr *AttrSummary
}

// WorkerStealLat is one worker's steal-to-first-event latency profile.
type WorkerStealLat struct {
	PhaseStats
	Hist [PinLifetimeBuckets]int
}

// AttrSummary is the slow-path cost decomposition recovered from attr_*
// counters. Attr counters are cumulative per emitting ring, so the
// summarizer takes the per-ring maximum and sums across rings — correct
// both for per-worker periodic flushes and for a single end-of-run
// snapshot emitted onto one ring.
type AttrSummary struct {
	Period    uint64 // sampling period (attr_period)
	RunWallNS uint64 // attributed-run wall clock, 0 if not recorded
	SeqWallNS uint64 // sequential-baseline wall clock, 0 if not recorded
	Rows      []AttrRow
}

// AttrRow is one component of the decomposition.
type AttrRow struct {
	Name    string // component slug ("pin_cas", ...)
	Samples uint64
	EstNS   uint64 // sampled ns × period
}

// TotalEstNS sums the estimated cost over all components.
func (a *AttrSummary) TotalEstNS() uint64 {
	var t uint64
	for _, r := range a.Rows {
		t += r.EstNS
	}
	return t
}

// GapNS returns the T1−Tseq gap the decomposition is measured against:
// run wall minus sequential wall when both were recorded with the
// snapshot, otherwise fallbackNS (callers pass the trace span).
func (a *AttrSummary) GapNS(fallbackNS int64) int64 {
	if a.RunWallNS > 0 && a.SeqWallNS > 0 && a.RunWallNS > a.SeqWallNS {
		return int64(a.RunWallNS - a.SeqWallNS)
	}
	return fallbackNS
}

// PhaseStats aggregates matched begin/end spans of one phase kind.
type PhaseStats struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

func (p *PhaseStats) add(d time.Duration) {
	p.Count++
	p.Total += d
	if d > p.Max {
		p.Max = d
	}
}

// Mean returns the average span (0 when no spans matched).
func (p PhaseStats) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// rawArgs is the ring record WriteChrome embeds in every event.
type rawArgs struct {
	Kind  string `json:"kind"`
	Arg1  uint64 `json:"arg1"`
	Arg2  uint64 `json:"arg2"`
	TSNS  int64  `json:"ts_ns"`
	Depth int32  `json:"depth"`
	Value uint64 `json:"value"` // counter events carry the sample here
}

type fileEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args rawArgs `json:"args"`
}

type traceFile struct {
	TraceEvents []fileEvent `json:"traceEvents"`
}

// Summarize parses a Chrome trace_event stream written by WriteChrome
// and reduces it. Malformed JSON, a missing traceEvents array, or events
// without the embedded ring record are errors — the summarizer doubles
// as the CI validator for exported traces.
func Summarize(r io.Reader) (*Summary, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("trace: not a trace_event object: %w", err)
	}
	if tf.TraceEvents == nil {
		return nil, fmt.Errorf("trace: no traceEvents array")
	}

	s := &Summary{
		ByKind:           make(map[Kind]int),
		CounterMax:       make(map[Counter]uint64),
		StealLatByWorker: make(map[int]*WorkerStealLat),
	}
	// Attr counters are cumulative per emitting ring: reduce to a total
	// by max within a ring, sum across rings (see AttrSummary).
	attrPerTID := make(map[int]map[Counter]uint64)
	// Pending steal timestamps per worker, matched against the worker's
	// next event.
	stealAt := make(map[int]int64)
	var minTS, maxTS int64
	first := true
	workers := make(map[int]bool)
	// Pin lifetimes are matched globally by ref bits: the pin and its
	// unpin are usually emitted by different strands (the reader pins,
	// the joining parent unpins).
	pinAt := make(map[uint64]int64)
	// Phase begin stacks per (ring, phase name): phases never interleave
	// within one ring, but LGC spans of different workers do overlap.
	type phaseKey struct {
		tid  int
		name string
	}
	begins := make(map[phaseKey][]int64)

	// Events within one ring are time-ordered, but the file concatenates
	// rings; sort globally so pin→unpin matching sees causal order.
	evs := make([]fileEvent, 0, len(tf.TraceEvents))
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue // metadata carries no ring record
		}
		if e.Args.Kind == "" {
			return nil, fmt.Errorf("trace: event %q missing embedded ring record (args.kind)", e.Name)
		}
		evs = append(evs, e)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Args.TSNS < evs[j].Args.TSNS })

	phaseFor := func(s *Summary, name string) *PhaseStats {
		switch name {
		case "LGC":
			return &s.LGC
		case "CGC cycle":
			return &s.CGCCycle
		case "CGC mark":
			return &s.CGCMark
		case "CGC sweep":
			return &s.CGCSweep
		}
		return nil
	}

	for _, e := range evs {
		k, ok := KindFromName(e.Args.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q", e.Args.Kind)
		}
		s.Events++
		s.ByKind[k]++
		workers[e.TID] = true
		if first || e.Args.TSNS < minTS {
			minTS = e.Args.TSNS
		}
		if first || e.Args.TSNS > maxTS {
			maxTS = e.Args.TSNS
		}
		first = false

		// Close a pending steal→first-event window for this worker.
		if t0, ok := stealAt[e.TID]; ok {
			delete(stealAt, e.TID)
			d := time.Duration(e.Args.TSNS - t0)
			if d < 0 {
				d = 0
			}
			s.StealLat.add(d)
			wl := s.StealLatByWorker[e.TID]
			if wl == nil {
				wl = &WorkerStealLat{}
				s.StealLatByWorker[e.TID] = wl
			}
			wl.add(d)
			b := bits.Len64(uint64(d))
			if b >= PinLifetimeBuckets {
				b = PinLifetimeBuckets - 1
			}
			wl.Hist[b]++
		}

		switch k {
		case EvSteal:
			s.Steals++
			stealAt[e.TID] = e.Args.TSNS
		case EvFork:
			s.Forks++
		case EvSlowRead:
			s.SlowReads++
		case EvEntangledRead:
			s.EntangledReads++
		case EvPin:
			s.Pins++
			pinAt[e.Args.Arg1] = e.Args.TSNS
		case EvUnpin:
			s.Unpins++
			if t0, ok := pinAt[e.Args.Arg1]; ok {
				delete(pinAt, e.Args.Arg1)
				d := e.Args.TSNS - t0
				if d < 0 {
					d = 0
				}
				b := bits.Len64(uint64(d))
				if b >= PinLifetimeBuckets {
					b = PinLifetimeBuckets - 1
				}
				s.PinLifetimes[b]++
			}
		case EvCounter:
			ctr := Counter(e.Args.Arg1)
			v := e.Args.Arg2
			if e.Ph == "C" {
				// Counter events are exported as "C" rows whose args carry
				// only the value; arg1/arg2 are in the name/value fields.
				if c2, ok := CounterFromName(e.Name); ok {
					ctr, v = c2, e.Args.Value
				}
			}
			if v > s.CounterMax[ctr] {
				s.CounterMax[ctr] = v
			}
			if ctr >= CtrAttrFirst && ctr <= CtrAttrSeqWallNS {
				m := attrPerTID[e.TID]
				if m == nil {
					m = make(map[Counter]uint64)
					attrPerTID[e.TID] = m
				}
				if v > m[ctr] {
					m[ctr] = v
				}
			}
		}

		switch e.Ph {
		case "B":
			begins[phaseKey{e.TID, e.Name}] = append(begins[phaseKey{e.TID, e.Name}], e.Args.TSNS)
		case "E":
			key := phaseKey{e.TID, e.Name}
			if st := begins[key]; len(st) > 0 {
				t0 := st[len(st)-1]
				begins[key] = st[:len(st)-1]
				if ph := phaseFor(s, e.Name); ph != nil {
					ph.add(time.Duration(e.Args.TSNS - t0))
				}
			}
		}
	}

	s.UnmatchedPins = len(pinAt)
	s.Workers = len(workers)
	if !first {
		s.Span = time.Duration(maxTS - minTS)
	}
	if sec := s.Span.Seconds(); sec > 0 {
		s.StealsPerSec = float64(s.Steals) / sec
		s.SlowReadsPerSec = float64(s.SlowReads) / sec
		s.EntangledReadsPerSec = float64(s.EntangledReads) / sec
	}

	if v, ok := s.CounterMax[CtrGridCell]; ok {
		s.HasGrid = true
		s.GridCell = v
		s.GridSeed = s.CounterMax[CtrGridSeed]
	}
	s.Attr = reduceAttr(attrPerTID)
	return s, nil
}

// reduceAttr folds per-ring cumulative attr counters into one
// decomposition: max within a ring (the counters only grow), sum across
// rings. Returns nil when no attr counters appeared.
func reduceAttr(perTID map[int]map[Counter]uint64) *AttrSummary {
	if len(perTID) == 0 {
		return nil
	}
	totals := make(map[Counter]uint64)
	for _, m := range perTID {
		for c, v := range m {
			switch c {
			case CtrAttrPeriod, CtrAttrRunWallNS, CtrAttrSeqWallNS:
				if v > totals[c] {
					totals[c] = v
				}
			default:
				totals[c] += v
			}
		}
	}
	a := &AttrSummary{
		Period:    totals[CtrAttrPeriod],
		RunWallNS: totals[CtrAttrRunWallNS],
		SeqWallNS: totals[CtrAttrSeqWallNS],
	}
	for c := CtrAttrFirst; c < CtrAttrPeriod; c += 2 {
		ns, n := totals[c], totals[c+1]
		if ns == 0 && n == 0 {
			continue
		}
		slug := strings.TrimSuffix(strings.TrimPrefix(c.String(), "attr_"), "_ns")
		a.Rows = append(a.Rows, AttrRow{Name: slug, Samples: n, EstNS: ns})
	}
	sort.Slice(a.Rows, func(i, j int) bool { return a.Rows[i].EstNS > a.Rows[j].EstNS })
	return a
}

// Format renders the summary as the human-readable report mplgo-trace
// prints.
func (s *Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "events:           %d over %v (%d active rings)\n", s.Events, s.Span, s.Workers)
	if s.HasGrid {
		fmt.Fprintf(w, "grid cell:        id=%d seed=%d\n", s.GridCell, s.GridSeed)
	}
	fmt.Fprintf(w, "forks:            %d\n", s.Forks)
	fmt.Fprintf(w, "steals:           %d (%.1f/s)\n", s.Steals, s.StealsPerSec)
	fmt.Fprintf(w, "slow reads:       %d (%.1f/s)\n", s.SlowReads, s.SlowReadsPerSec)
	fmt.Fprintf(w, "entangled reads:  %d (%.1f/s)\n", s.EntangledReads, s.EntangledReadsPerSec)
	fmt.Fprintf(w, "pins:             %d (%d unpinned in trace, %d unmatched)\n",
		s.Pins, s.Unpins, s.UnmatchedPins)

	if s.Pins > 0 {
		fmt.Fprintf(w, "pin lifetime histogram (log2 ns):\n")
		for b, n := range s.PinLifetimes {
			if n == 0 {
				continue
			}
			lo := time.Duration(0)
			if b > 0 {
				lo = time.Duration(int64(1) << (b - 1))
			}
			hi := time.Duration(int64(1) << b)
			fmt.Fprintf(w, "  [%12v, %12v)  %d\n", lo, hi, n)
		}
	}

	phase := func(name string, p PhaseStats) {
		if p.Count == 0 {
			return
		}
		fmt.Fprintf(w, "%-17s %d spans, mean %v, max %v\n", name+":", p.Count, p.Mean(), p.Max)
	}
	phase("LGC", s.LGC)
	phase("CGC cycle", s.CGCCycle)
	phase("CGC mark", s.CGCMark)
	phase("CGC sweep", s.CGCSweep)

	if s.StealLat.Count > 0 {
		fmt.Fprintf(w, "steal latency (steal → next event): %d matched, mean %v, max %v\n",
			s.StealLat.Count, s.StealLat.Mean(), s.StealLat.Max)
		tids := make([]int, 0, len(s.StealLatByWorker))
		for t := range s.StealLatByWorker {
			tids = append(tids, t)
		}
		sort.Ints(tids)
		for _, t := range tids {
			wl := s.StealLatByWorker[t]
			fmt.Fprintf(w, "  worker %-3d %4d steals, mean %v, max %v | log2-ns hist:",
				t, wl.Count, wl.Mean(), wl.Max)
			for b, n := range wl.Hist {
				if n == 0 {
					continue
				}
				fmt.Fprintf(w, " [2^%d)=%d", b, n)
			}
			fmt.Fprintf(w, "\n")
		}
	}

	// Generic counter maxima: attr_* and grid_* counters get their own
	// labelled reporting above / via FormatAttr, so keep them out of the
	// raw list.
	ctrs := make([]Counter, 0, len(s.CounterMax))
	for c := range s.CounterMax {
		name := c.String()
		if strings.HasPrefix(name, "attr_") || strings.HasPrefix(name, "grid_") {
			continue
		}
		ctrs = append(ctrs, c)
	}
	if len(ctrs) > 0 {
		sort.Slice(ctrs, func(i, j int) bool { return ctrs[i] < ctrs[j] })
		fmt.Fprintf(w, "counter maxima:\n")
		for _, c := range ctrs {
			fmt.Fprintf(w, "  %-20s %d\n", c.String(), s.CounterMax[c])
		}
	}
	if s.Attr != nil {
		fmt.Fprintf(w, "attribution:      %d components sampled at 1/%d (use -attr for the breakdown)\n",
			len(s.Attr.Rows), s.Attr.Period)
	}
}

// FormatAttr renders the attribution report: component × {samples,
// estimated total ns, share of the T1−Tseq gap}, plus a coverage line.
// Returns false when the trace carried no attribution counters.
func (s *Summary) FormatAttr(w io.Writer) bool {
	a := s.Attr
	if a == nil {
		return false
	}
	gap := a.GapNS(int64(s.Span))
	fmt.Fprintf(w, "cost attribution (sampling period 1/%d):\n", a.Period)
	if a.RunWallNS > 0 && a.SeqWallNS > 0 {
		fmt.Fprintf(w, "  run wall %v, seq wall %v, gap %v\n",
			time.Duration(a.RunWallNS), time.Duration(a.SeqWallNS), time.Duration(gap))
	} else {
		fmt.Fprintf(w, "  no wall-clock snapshot in trace; gap falls back to span %v\n", s.Span)
	}
	fmt.Fprintf(w, "  %-16s %10s %14s %8s\n", "component", "samples", "est total", "% gap")
	for _, r := range a.Rows {
		pct := 0.0
		if gap > 0 {
			pct = 100 * float64(r.EstNS) / float64(gap)
		}
		fmt.Fprintf(w, "  %-16s %10d %14v %7.1f%%\n",
			r.Name, r.Samples, time.Duration(r.EstNS), pct)
	}
	cov := 0.0
	if gap > 0 {
		cov = 100 * float64(a.TotalEstNS()) / float64(gap)
	}
	fmt.Fprintf(w, "  %-16s %10s %14v %7.1f%%\n", "total", "", time.Duration(a.TotalEstNS()), cov)
	return true
}
