// Trace summarizer: parses a Chrome trace_event file produced by
// WriteChrome (the raw ring record rides along in each event's args)
// and derives the operational numbers a perf investigation starts from:
// steal and entangled-read rates, the pin-lifetime histogram, and
// per-phase collection latency. cmd/mplgo-trace is a thin wrapper.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"
)

// PinLifetimeBuckets is the number of log2 histogram buckets: bucket i
// counts pins whose pin→unpin span was in [2^i, 2^(i+1)) nanoseconds,
// with the last bucket absorbing everything longer (~1s and up).
const PinLifetimeBuckets = 31

// Summary is what one trace reduces to.
type Summary struct {
	Events         int           // decoded ring events
	Span           time.Duration // last timestamp minus first
	ByKind         map[Kind]int  // event counts per kind
	Workers        int           // rings that carried at least one event
	Steals         int
	Forks          int
	SlowReads      int
	EntangledReads int
	Pins           int
	Unpins         int

	// Rates per second of traced span (0 when the span is empty).
	StealsPerSec         float64
	SlowReadsPerSec      float64
	EntangledReadsPerSec float64

	// SlowReadRate is the barrier slow-path rate: slow reads per
	// entangled read opportunity is not recoverable from the trace alone,
	// so this is slow reads per second of span; the per-read fraction
	// comes from the bench JSON's ent_reads columns.

	// PinLifetimes is the log2-bucketed pin→unpin latency histogram.
	// Pins whose unpin never appears (still pinned at snapshot, or the
	// unpin fell off the ring) are counted in UnmatchedPins.
	PinLifetimes  [PinLifetimeBuckets]int
	UnmatchedPins int

	// Collection latency, from matched begin/end pairs per ring.
	LGC      PhaseStats
	CGCCycle PhaseStats
	CGCMark  PhaseStats
	CGCSweep PhaseStats

	// Counter track maxima (pinned bytes, live words, ...).
	CounterMax map[Counter]uint64
}

// PhaseStats aggregates matched begin/end spans of one phase kind.
type PhaseStats struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

func (p *PhaseStats) add(d time.Duration) {
	p.Count++
	p.Total += d
	if d > p.Max {
		p.Max = d
	}
}

// Mean returns the average span (0 when no spans matched).
func (p PhaseStats) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// rawArgs is the ring record WriteChrome embeds in every event.
type rawArgs struct {
	Kind  string `json:"kind"`
	Arg1  uint64 `json:"arg1"`
	Arg2  uint64 `json:"arg2"`
	TSNS  int64  `json:"ts_ns"`
	Depth int32  `json:"depth"`
	Value uint64 `json:"value"` // counter events carry the sample here
}

type fileEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args rawArgs `json:"args"`
}

type traceFile struct {
	TraceEvents []fileEvent `json:"traceEvents"`
}

// Summarize parses a Chrome trace_event stream written by WriteChrome
// and reduces it. Malformed JSON, a missing traceEvents array, or events
// without the embedded ring record are errors — the summarizer doubles
// as the CI validator for exported traces.
func Summarize(r io.Reader) (*Summary, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("trace: not a trace_event object: %w", err)
	}
	if tf.TraceEvents == nil {
		return nil, fmt.Errorf("trace: no traceEvents array")
	}

	s := &Summary{
		ByKind:     make(map[Kind]int),
		CounterMax: make(map[Counter]uint64),
	}
	var minTS, maxTS int64
	first := true
	workers := make(map[int]bool)
	// Pin lifetimes are matched globally by ref bits: the pin and its
	// unpin are usually emitted by different strands (the reader pins,
	// the joining parent unpins).
	pinAt := make(map[uint64]int64)
	// Phase begin stacks per (ring, phase name): phases never interleave
	// within one ring, but LGC spans of different workers do overlap.
	type phaseKey struct {
		tid  int
		name string
	}
	begins := make(map[phaseKey][]int64)

	// Events within one ring are time-ordered, but the file concatenates
	// rings; sort globally so pin→unpin matching sees causal order.
	evs := make([]fileEvent, 0, len(tf.TraceEvents))
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue // metadata carries no ring record
		}
		if e.Args.Kind == "" {
			return nil, fmt.Errorf("trace: event %q missing embedded ring record (args.kind)", e.Name)
		}
		evs = append(evs, e)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Args.TSNS < evs[j].Args.TSNS })

	phaseFor := func(s *Summary, name string) *PhaseStats {
		switch name {
		case "LGC":
			return &s.LGC
		case "CGC cycle":
			return &s.CGCCycle
		case "CGC mark":
			return &s.CGCMark
		case "CGC sweep":
			return &s.CGCSweep
		}
		return nil
	}

	for _, e := range evs {
		k, ok := KindFromName(e.Args.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q", e.Args.Kind)
		}
		s.Events++
		s.ByKind[k]++
		workers[e.TID] = true
		if first || e.Args.TSNS < minTS {
			minTS = e.Args.TSNS
		}
		if first || e.Args.TSNS > maxTS {
			maxTS = e.Args.TSNS
		}
		first = false

		switch k {
		case EvSteal:
			s.Steals++
		case EvFork:
			s.Forks++
		case EvSlowRead:
			s.SlowReads++
		case EvEntangledRead:
			s.EntangledReads++
		case EvPin:
			s.Pins++
			pinAt[e.Args.Arg1] = e.Args.TSNS
		case EvUnpin:
			s.Unpins++
			if t0, ok := pinAt[e.Args.Arg1]; ok {
				delete(pinAt, e.Args.Arg1)
				d := e.Args.TSNS - t0
				if d < 0 {
					d = 0
				}
				b := bits.Len64(uint64(d))
				if b >= PinLifetimeBuckets {
					b = PinLifetimeBuckets - 1
				}
				s.PinLifetimes[b]++
			}
		case EvCounter:
			ctr := Counter(e.Args.Arg1)
			v := e.Args.Arg2
			if e.Ph == "C" {
				// Counter events are exported as "C" rows whose args carry
				// only the value; arg1/arg2 are in the name/value fields.
				if c2, ok := CounterFromName(e.Name); ok {
					ctr, v = c2, e.Args.Value
				}
			}
			if v > s.CounterMax[ctr] {
				s.CounterMax[ctr] = v
			}
		}

		switch e.Ph {
		case "B":
			begins[phaseKey{e.TID, e.Name}] = append(begins[phaseKey{e.TID, e.Name}], e.Args.TSNS)
		case "E":
			key := phaseKey{e.TID, e.Name}
			if st := begins[key]; len(st) > 0 {
				t0 := st[len(st)-1]
				begins[key] = st[:len(st)-1]
				if ph := phaseFor(s, e.Name); ph != nil {
					ph.add(time.Duration(e.Args.TSNS - t0))
				}
			}
		}
	}

	s.UnmatchedPins = len(pinAt)
	s.Workers = len(workers)
	if !first {
		s.Span = time.Duration(maxTS - minTS)
	}
	if sec := s.Span.Seconds(); sec > 0 {
		s.StealsPerSec = float64(s.Steals) / sec
		s.SlowReadsPerSec = float64(s.SlowReads) / sec
		s.EntangledReadsPerSec = float64(s.EntangledReads) / sec
	}
	return s, nil
}

// Format renders the summary as the human-readable report mplgo-trace
// prints.
func (s *Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "events:           %d over %v (%d active rings)\n", s.Events, s.Span, s.Workers)
	fmt.Fprintf(w, "forks:            %d\n", s.Forks)
	fmt.Fprintf(w, "steals:           %d (%.1f/s)\n", s.Steals, s.StealsPerSec)
	fmt.Fprintf(w, "slow reads:       %d (%.1f/s)\n", s.SlowReads, s.SlowReadsPerSec)
	fmt.Fprintf(w, "entangled reads:  %d (%.1f/s)\n", s.EntangledReads, s.EntangledReadsPerSec)
	fmt.Fprintf(w, "pins:             %d (%d unpinned in trace, %d unmatched)\n",
		s.Pins, s.Unpins, s.UnmatchedPins)

	if s.Pins > 0 {
		fmt.Fprintf(w, "pin lifetime histogram (log2 ns):\n")
		for b, n := range s.PinLifetimes {
			if n == 0 {
				continue
			}
			lo := time.Duration(0)
			if b > 0 {
				lo = time.Duration(int64(1) << (b - 1))
			}
			hi := time.Duration(int64(1) << b)
			fmt.Fprintf(w, "  [%12v, %12v)  %d\n", lo, hi, n)
		}
	}

	phase := func(name string, p PhaseStats) {
		if p.Count == 0 {
			return
		}
		fmt.Fprintf(w, "%-17s %d spans, mean %v, max %v\n", name+":", p.Count, p.Mean(), p.Max)
	}
	phase("LGC", s.LGC)
	phase("CGC cycle", s.CGCCycle)
	phase("CGC mark", s.CGCMark)
	phase("CGC sweep", s.CGCSweep)

	if len(s.CounterMax) > 0 {
		ctrs := make([]Counter, 0, len(s.CounterMax))
		for c := range s.CounterMax {
			ctrs = append(ctrs, c)
		}
		sort.Slice(ctrs, func(i, j int) bool { return ctrs[i] < ctrs[j] })
		fmt.Fprintf(w, "counter maxima:\n")
		for _, c := range ctrs {
			fmt.Fprintf(w, "  %-20s %d\n", c.String(), s.CounterMax[c])
		}
	}
}
