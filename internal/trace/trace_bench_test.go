// Trace-overhead microbenchmarks (external test package: the fork/join
// and read benchmarks drive the runtime through mpl, which imports trace).
//
// The numbers that matter are the Disabled/Installed variants: tracing is
// compiled in but off, which is the state every timed experiment runs in.
// The contract is that this costs one nil test (instrumented call sites)
// or one nil test plus one atomic load (Emit on a live ring), i.e. within
// measurement noise of not having tracing at all. DESIGN.md §7 records
// representative numbers; TestDisabledTraceOverhead fails the build if
// the disabled path ever becomes pathologically expensive.
package trace_test

import (
	"testing"

	"mplgo/internal/trace"
	"mplgo/mpl"
)

var sink int64

// BenchmarkEmitNil is the cost at every instrumentation site of an
// untraced runtime: the ring pointer is nil.
func BenchmarkEmitNil(b *testing.B) {
	var r *trace.Ring
	for i := 0; i < b.N; i++ {
		r.Emit(trace.EvFork, 0, 1, 2)
	}
}

// BenchmarkEmitDisabled is the cost with a tracer installed but the
// global gate off: one nil test plus one atomic load.
func BenchmarkEmitDisabled(b *testing.B) {
	tr := trace.NewTracer(1, 1<<10)
	r := tr.Ring(0)
	for i := 0; i < b.N; i++ {
		r.Emit(trace.EvFork, 0, 1, 2)
	}
}

// BenchmarkEmitEnabled is the full event-record cost: four atomic stores
// and a sequence publish.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := trace.NewTracer(1, 1<<10)
	r := tr.Ring(0)
	trace.Enable()
	defer trace.Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(trace.EvFork, 0, 1, 2)
	}
}

// benchForkJoin measures a minimal Par on one worker, with or without a
// tracer installed (never enabled — this is the timed-experiment state).
func benchForkJoin(b *testing.B, tracer *mpl.Tracer) {
	rt := mpl.New(mpl.Config{Procs: 1, Tracer: tracer})
	if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, c := t.Par(
				func(*mpl.Task) mpl.Value { return mpl.Int(1) },
				func(*mpl.Task) mpl.Value { return mpl.Int(2) },
			)
			sink += a.AsInt() + c.AsInt()
		}
		b.StopTimer()
		return mpl.Nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkForkJoinUntraced(b *testing.B)        { benchForkJoin(b, nil) }
func BenchmarkForkJoinTracerInstalled(b *testing.B) { benchForkJoin(b, mpl.NewTracer(1, 0)) }

// benchRead measures the read-barrier fast path (LoadChecked), which
// deliberately carries no trace branch at all — the Installed variant
// must be indistinguishable from the Untraced one.
func benchRead(b *testing.B, tracer *mpl.Tracer) {
	rt := mpl.New(mpl.Config{Procs: 1, Tracer: tracer})
	if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
		r := t.AllocTuple(mpl.Int(7), mpl.Int(11))
		var acc int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc += t.Read(r, i&1).AsInt()
		}
		b.StopTimer()
		sink += acc
		return mpl.Nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkReadUntraced(b *testing.B)        { benchRead(b, nil) }
func BenchmarkReadTracerInstalled(b *testing.B) { benchRead(b, mpl.NewTracer(1, 0)) }

// TestDisabledTraceOverhead is the regression guard the CI bench job
// runs: the disabled Emit path must stay a nil test + atomic load. The
// bound is deliberately loose (50x a healthy result) so scheduler noise
// and the race detector never flake it — it exists to catch a category
// change (a lock, an allocation, an unconditional store), not a
// nanosecond drift; the drift is tracked by the benchmarks above.
func TestDisabledTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const maxNS = 150
	for name, fn := range map[string]func(*testing.B){
		"EmitNil":      BenchmarkEmitNil,
		"EmitDisabled": BenchmarkEmitDisabled,
	} {
		res := testing.Benchmark(fn)
		if ns := res.NsPerOp(); ns > maxNS {
			t.Errorf("%s: %d ns/op, want <= %d (disabled tracing must stay branch-cheap)",
				name, ns, maxNS)
		} else {
			t.Logf("%s: %d ns/op", name, ns)
		}
	}
}
