// Chrome trace_event exporter: renders a tracer's rings as the JSON
// object format Perfetto and chrome://tracing load directly. Worker
// rings become thread tracks (duration events for LGC/CGC phases,
// instants for everything else); counter samples become counter tracks.
// Every event keeps its raw kind/args/ns timestamp in "args", which is
// what lets cmd/mplgo-trace summarize the exported file without a
// second binary format.

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the trace_event "traceEvents" array. Only
// the fields the format requires: ph (phase), name, pid/tid (track),
// ts (microseconds, fractional). Counter events carry their value in
// args; all events carry the raw ring record in args for round-trips.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // raw event payload
}

// chromeTrace is the top-level object format (the array format is also
// legal trace_event, but the object form is self-terminating and leaves
// room for metadata).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// durationPairs maps each phase-begin kind to its end kind and track
// name; begin/end become "B"/"E" duration events so the phase shows as
// a span on the worker's track.
var durationPairs = map[Kind]struct {
	end  Kind
	name string
}{
	EvLGCBegin:      {EvLGCEnd, "LGC"},
	EvCGCCycleBegin: {EvCGCCycleEnd, "CGC cycle"},
	EvCGCMarkBegin:  {EvCGCMarkEnd, "CGC mark"},
	EvCGCSweepBegin: {EvCGCSweepEnd, "CGC sweep"},
}

// durationEnds is the reverse index of durationPairs.
var durationEnds = func() map[Kind]string {
	m := make(map[Kind]string, len(durationPairs))
	for _, p := range durationPairs {
		m[p.end] = p.name
	}
	return m
}()

// WriteChrome renders the tracer's rings to w as trace_event JSON. The
// snapshot is taken ring by ring; call it after the traced run (or
// accept a live, possibly ragged, snapshot).
func WriteChrome(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("trace: no tracer")
	}
	return writeChromeEvents(w, t.Snapshot(), t.Workers())
}

// writeChromeEvents is the ring-independent core, shared with tests that
// build event slices directly.
func writeChromeEvents(w io.Writer, rings [][]Event, workers int) error {
	bw := bufio.NewWriter(w)
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}

	// Thread-name metadata: one named track per ring. The collector ring
	// (index == workers) is labelled as such.
	for i := range rings {
		name := fmt.Sprintf("worker %d", i)
		if i == workers {
			name = "cgc collector"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i,
			Args: map[string]any{"name": name},
		})
	}

	for tid, evs := range rings {
		for _, e := range evs {
			ts := float64(e.TS) / 1e3 // trace_event ts is microseconds
			args := map[string]any{
				"kind":  e.Kind.String(),
				"arg1":  e.Arg1,
				"arg2":  e.Arg2,
				"ts_ns": e.TS,
				"depth": e.Depth,
			}
			switch {
			case e.Kind == EvCounter:
				ctr := Counter(e.Arg1)
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: ctr.String(), Ph: "C", TS: ts, PID: 1, TID: tid,
					Args: map[string]any{
						"value": e.Arg2,
						"kind":  e.Kind.String(),
						"ts_ns": e.TS,
					},
				})
			case durationPairs[e.Kind].name != "":
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: durationPairs[e.Kind].name, Ph: "B", TS: ts,
					PID: 1, TID: tid, Args: args,
				})
			case durationEnds[e.Kind] != "":
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: durationEnds[e.Kind], Ph: "E", TS: ts,
					PID: 1, TID: tid, Args: args,
				})
			default:
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: e.Kind.String(), Ph: "i", TS: ts, PID: 1, TID: tid,
					S:    "t",
					Args: args,
				})
			}
		}
	}

	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}
