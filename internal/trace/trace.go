// Package trace is the runtime's observability spine: per-worker
// lock-free event rings recording fixed-size binary events — forks,
// joins, steals, collection phases, entanglement slow paths, pins and
// unpins, heap merges, chunk release/reuse — each stamped with a worker
// id, a task depth, and a monotonic timestamp.
//
// The design constraints mirror internal/chaos: the disabled path must
// cost nothing measurable and must never require a nil check the caller
// cannot afford. Every instrumentation site is written
//
//	if r := t.ring; r != nil { r.Emit(...) }
//
// so an untraced runtime (nil rings everywhere) pays one pointer test,
// and a runtime with rings installed but tracing off pays one additional
// atomic load inside Emit (the global enabled gate). Timing experiments
// install no tracer at all, so their fast paths are byte-identical to the
// pre-trace runtime.
//
// Concurrency model. Each ring has exactly one writer: the worker
// goroutine it was handed to (tasks never migrate between workers, and a
// helping join runs stolen items on the helper's own goroutine, against
// the helper's own ring). The concurrent-collector worker gets a ring of
// its own (index P). Readers (Snapshot) may run at any time, including
// mid-write: every slot word is an atomic uint64 and the ring's sequence
// counter is published after the slot words, so a reader can detect and
// drop the (at most one lap of) slots a concurrent writer may be
// overwriting — see Ring.Snapshot.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind identifies one event type. The zero value is reserved so a torn
// or never-written slot can never alias a real event kind.
type Kind uint8

const (
	EvNone          Kind = iota
	EvFork               // arg1 = left child heap id, arg2 = right child heap id (0 when lazy)
	EvJoin               // arg1 = merged-into heap id
	EvSteal              // arg1 = victim worker id
	EvLGCBegin           // arg1 = heap id
	EvLGCEnd             // arg1 = copied words, arg2 = reclaimed words
	EvCGCCycleBegin      // arg1 = heaps in scope
	EvCGCCycleEnd        // arg1 = freed words, arg2 = 1 when the cycle was abandoned
	EvCGCMarkBegin       // (no args)
	EvCGCMarkEnd         // arg1 = objects marked
	EvCGCSweepBegin      // (no args)
	EvCGCSweepEnd        // arg1 = chunks released, arg2 = chunks retained
	EvSlowRead           // arg1 = holder ref bits
	EvEntangledRead      // arg1 = target ref bits, arg2 = unpin depth
	EvPin                // arg1 = target ref bits, arg2 = unpin depth
	EvUnpin              // arg1 = target ref bits
	EvHeapMerge          // arg1 = child heap id, arg2 = parent heap id
	EvChunkRelease       // arg1 = chunk id, arg2 = chunk words
	EvChunkReuse         // arg1 = chunk id, arg2 = free-list words handed back
	EvCounter            // arg1 = Counter id, arg2 = sampled value
	evKinds              // sentinel: number of kinds
)

var kindNames = [evKinds]string{
	EvNone:          "none",
	EvFork:          "fork",
	EvJoin:          "join",
	EvSteal:         "steal",
	EvLGCBegin:      "lgc_begin",
	EvLGCEnd:        "lgc_end",
	EvCGCCycleBegin: "cgc_cycle_begin",
	EvCGCCycleEnd:   "cgc_cycle_end",
	EvCGCMarkBegin:  "cgc_mark_begin",
	EvCGCMarkEnd:    "cgc_mark_end",
	EvCGCSweepBegin: "cgc_sweep_begin",
	EvCGCSweepEnd:   "cgc_sweep_end",
	EvSlowRead:      "slow_read",
	EvEntangledRead: "entangled_read",
	EvPin:           "pin",
	EvUnpin:         "unpin",
	EvHeapMerge:     "heap_merge",
	EvChunkRelease:  "chunk_release",
	EvChunkReuse:    "chunk_reuse",
	EvCounter:       "counter",
}

func (k Kind) String() string {
	if k < evKinds {
		return kindNames[k]
	}
	return "invalid"
}

// KindFromName resolves an event name back to its Kind (the summarizer
// round-trips events through the exporter's JSON). Returns EvNone, false
// for unknown names.
func KindFromName(name string) (Kind, bool) {
	for k := Kind(1); k < evKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return EvNone, false
}

// Counter identifies one sampled gauge carried by EvCounter events. The
// exporter renders each as its own Chrome counter track.
type Counter uint8

const (
	CtrPinnedBytes Counter = iota
	CtrPinnedPeakBytes
	CtrLiveWords
	CtrRetainedChunks
	// CtrAncestryQueries samples the tree's cumulative ancestry-oracle
	// query count (IsAncestor/LCA/LCADepth), for before/after attribution
	// of the entangled hot path's ancestry traffic.
	CtrAncestryQueries
	// CtrSeqlockRetries samples the legacy order-list oracle's cumulative
	// seqlock retry count; identically zero under the default fork-path
	// oracle, which has no retry path.
	CtrSeqlockRetries
	// Barrier-elision telemetry: the number of statically-proven
	// disentangled regions (constant over a run) and the cumulative
	// unchecked loads/stores executed through the Fast accessors.
	CtrStaticRegions
	CtrElidedLoads
	CtrElidedStores
	// Serving telemetry (internal/serve): cumulative admission outcomes
	// and the concurrency-token gauge, sampled per dispatch batch so a
	// trace of an overloaded run shows shed storms and deadline clusters
	// on the same timeline as the GC and entanglement events.
	CtrRequestsAdmitted
	CtrRequestsShed
	CtrDeadlineExceeded
	CtrTokensInUse
	// Experiment-grid identity (cmd/mplgo-paper): a traced grid-cell run
	// emits one event of each at the root task's start — the cell's id
	// hash and its per-experiment seed — so a Chrome export of a paper
	// run is attributable to the exact grid cell that produced it.
	CtrGridCell
	CtrGridSeed
	// Cost-attribution flush (internal/attr): per-component estimated
	// total ns and raw sample count, two counters per component laid out
	// in attr.Component order starting at CtrAttrFirst — attr computes
	// the ids by offset (CtrAttrFirst + 2·component [+1 for the sample
	// count]) and a test over there pins the alignment. CtrAttrPeriod
	// carries the sampling period; CtrAttrRunWallNS/CtrAttrSeqWallNS
	// carry the attributed run's wall time and the sequential baseline
	// so the summarizer can express components as a share of the
	// T1−Tseq gap without re-running anything.
	CtrAttrPinCASNS
	CtrAttrPinCASN
	CtrAttrPinRetryNS
	CtrAttrPinRetryN
	CtrAttrGateEnterNS
	CtrAttrGateEnterN
	CtrAttrGateExitNS
	CtrAttrGateExitN
	CtrAttrRemsetPublishNS
	CtrAttrRemsetPublishN
	CtrAttrAncestryQueryNS
	CtrAttrAncestryQueryN
	CtrAttrUnpinAtJoinNS
	CtrAttrUnpinAtJoinN
	CtrAttrShadeQueueNS
	CtrAttrShadeQueueN
	CtrAttrBudgetPollNS
	CtrAttrBudgetPollN
	CtrAttrStealLoopNS
	CtrAttrStealLoopN
	CtrAttrMergeWaitNS
	CtrAttrMergeWaitN
	CtrAttrPeriod
	CtrAttrRunWallNS
	CtrAttrSeqWallNS
	ctrCounters // sentinel
)

// CtrAttrFirst is the base of the attribution counter block (see the
// comment above CtrAttrPinCASNS).
const CtrAttrFirst = CtrAttrPinCASNS

var counterNames = [ctrCounters]string{
	CtrPinnedBytes:      "pinned_bytes",
	CtrPinnedPeakBytes:  "pinned_peak_bytes",
	CtrLiveWords:        "live_words",
	CtrRetainedChunks:   "retained_chunks",
	CtrAncestryQueries:  "ancestry_queries",
	CtrSeqlockRetries:   "seqlock_retries",
	CtrStaticRegions:    "static_regions",
	CtrElidedLoads:      "elided_loads",
	CtrElidedStores:     "elided_stores",
	CtrRequestsAdmitted: "requests_admitted",
	CtrRequestsShed:     "requests_shed",
	CtrDeadlineExceeded: "requests_deadline_exceeded",
	CtrTokensInUse:      "tokens_in_use",
	CtrGridCell:         "grid_cell",
	CtrGridSeed:         "grid_seed",

	CtrAttrPinCASNS:        "attr_pin_cas_ns",
	CtrAttrPinCASN:         "attr_pin_cas_n",
	CtrAttrPinRetryNS:      "attr_pin_retry_ns",
	CtrAttrPinRetryN:       "attr_pin_retry_n",
	CtrAttrGateEnterNS:     "attr_gate_enter_ns",
	CtrAttrGateEnterN:      "attr_gate_enter_n",
	CtrAttrGateExitNS:      "attr_gate_exit_ns",
	CtrAttrGateExitN:       "attr_gate_exit_n",
	CtrAttrRemsetPublishNS: "attr_remset_publish_ns",
	CtrAttrRemsetPublishN:  "attr_remset_publish_n",
	CtrAttrAncestryQueryNS: "attr_ancestry_query_ns",
	CtrAttrAncestryQueryN:  "attr_ancestry_query_n",
	CtrAttrUnpinAtJoinNS:   "attr_unpin_at_join_ns",
	CtrAttrUnpinAtJoinN:    "attr_unpin_at_join_n",
	CtrAttrShadeQueueNS:    "attr_shade_queue_ns",
	CtrAttrShadeQueueN:     "attr_shade_queue_n",
	CtrAttrBudgetPollNS:    "attr_budget_poll_ns",
	CtrAttrBudgetPollN:     "attr_budget_poll_n",
	CtrAttrStealLoopNS:     "attr_steal_loop_ns",
	CtrAttrStealLoopN:      "attr_steal_loop_n",
	CtrAttrMergeWaitNS:     "attr_merge_wait_ns",
	CtrAttrMergeWaitN:      "attr_merge_wait_n",
	CtrAttrPeriod:          "attr_period",
	CtrAttrRunWallNS:       "attr_run_wall_ns",
	CtrAttrSeqWallNS:       "attr_seq_wall_ns",
}

func (c Counter) String() string {
	if c < ctrCounters {
		return counterNames[c]
	}
	return "invalid"
}

// CounterFromName resolves a counter-track name back to its id.
func CounterFromName(name string) (Counter, bool) {
	for c := Counter(0); c < ctrCounters; c++ {
		if counterNames[c] == name {
			return c, true
		}
	}
	return 0, false
}

// Event is one decoded ring entry.
type Event struct {
	TS     int64 // nanoseconds since the tracer's start
	Arg1   uint64
	Arg2   uint64
	Kind   Kind
	Worker int32 // ring index: worker id, or P for the collector ring
	Depth  int32 // task heap depth at the emit site (0 when unknown)
}

// Ring slot geometry: each event is four atomic uint64 words —
// timestamp, arg1, arg2, and a packed kind|worker|depth word — so a
// snapshot racing a writer reads individually-consistent words and the
// sequence check below rejects the (rare) slot whose words span two
// events.
const slotWords = 4

// enabled is the global trace gate, checked with a single atomic load at
// the top of Emit. It is a refcount, not a flag: Enable/Disable nest, so
// a traced run inside a larger process (the bench harness's counter-
// series run) brackets itself without clobbering another tracer's state,
// and — more importantly — a *disabled* tracer left installed after a
// traced run costs exactly the same one load-and-branch as never tracing.
var enabled atomic.Int32

// Enabled reports whether tracing is globally on. Instrumentation sites
// reach this through Ring.Emit; it is exported for code that wants to
// skip building event arguments entirely when off.
func Enabled() bool { return enabled.Load() != 0 }

// Enable turns tracing on (refcounted; pair with Disable).
func Enable() { enabled.Add(1) }

// Disable undoes one Enable.
func Disable() {
	if enabled.Add(-1) < 0 {
		panic("trace: Disable without matching Enable")
	}
}

// Ring is one single-writer event ring. The pads keep the write-hot seq
// word and the slot array off any cache line shared with another ring in
// the tracer's slice (the same false-sharing discipline as
// entangle.Stats: every worker bumps its own seq on every traced event).
type Ring struct {
	_      [64]byte
	seq    atomic.Uint64 // events ever emitted; slot = (seq % slots) * slotWords
	_      [56]byte
	slots  []uint64 // len = slots*slotWords, every word accessed atomically
	mask   uint64   // slots - 1
	worker int32
	start  time.Time
}

// newRing creates a ring with the given power-of-two slot count.
func newRing(worker int32, slots int, start time.Time) *Ring {
	if slots&(slots-1) != 0 || slots == 0 {
		panic("trace: ring slots must be a power of two")
	}
	return &Ring{
		slots:  make([]uint64, slots*slotWords),
		mask:   uint64(slots - 1),
		worker: worker,
		start:  start,
	}
}

// packMeta packs kind, worker and depth into one word. Depth is clamped
// to 24 bits (a fork tree 16M deep would long since have overflowed the
// Go stack).
func packMeta(k Kind, worker int32, depth int32) uint64 {
	if depth < 0 {
		depth = 0
	}
	if depth >= 1<<24 {
		depth = 1<<24 - 1
	}
	return uint64(k) | uint64(uint32(worker))<<8 | uint64(depth)<<40
}

func unpackMeta(m uint64) (k Kind, worker int32, depth int32) {
	return Kind(m & 0xFF), int32(uint32(m>>8) & 0xFFFFFFFF), int32(m >> 40)
}

// Emit records one event. Nil-safe and gate-checked: a nil ring returns
// immediately (untraced runtime), and a non-nil ring with tracing off
// pays one atomic load. Must only be called from the ring's owning
// goroutine — the single-writer contract is what keeps the hot path at
// four plain-ordered atomic stores and one release store, with no CAS
// and no contention ever.
func (r *Ring) Emit(k Kind, depth int32, arg1, arg2 uint64) {
	if r == nil || enabled.Load() == 0 {
		return
	}
	ts := time.Since(r.start).Nanoseconds()
	s := r.seq.Load() // no other writer: a plain read of our own last store
	base := (s & r.mask) * slotWords
	atomic.StoreUint64(&r.slots[base+0], uint64(ts))
	atomic.StoreUint64(&r.slots[base+1], arg1)
	atomic.StoreUint64(&r.slots[base+2], arg2)
	atomic.StoreUint64(&r.slots[base+3], packMeta(k, r.worker, depth))
	r.seq.Store(s + 1) // publish: readers trust slots strictly below seq
}

// Len reports how many events have ever been emitted (not how many the
// ring still holds).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot decodes the ring's current contents, oldest first, without
// stopping the writer. At most slots-1 events are returned: slot j
// (event index j) is overwritten while the writer emits event j+slots,
// and the writer only publishes seq = j+slots *before* starting those
// stores — so a reader can trust a copied slot only while seq stays
// below j+slots. The oldest slot of a full ring can never satisfy that
// (seq == hi == j+slots leaves the writer possibly mid-overwrite), so
// the window starts one event later; slots lapped during the copy are
// likewise dropped rather than returned torn.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	n := uint64(len(r.slots)) / slotWords
	hi := r.seq.Load()
	lo := uint64(0)
	if hi >= n {
		lo = hi - n + 1
	}
	out := make([]Event, 0, hi-lo)
	for j := lo; j < hi; j++ {
		base := (j & r.mask) * slotWords
		ts := atomic.LoadUint64(&r.slots[base+0])
		a1 := atomic.LoadUint64(&r.slots[base+1])
		a2 := atomic.LoadUint64(&r.slots[base+2])
		meta := atomic.LoadUint64(&r.slots[base+3])
		if r.seq.Load() >= j+n {
			continue // the writer lapped this slot mid-copy; words may be torn
		}
		k, worker, depth := unpackMeta(meta)
		if k == EvNone || k >= evKinds {
			continue // slot never written (enable raced the run's first events)
		}
		out = append(out, Event{
			TS:     int64(ts),
			Arg1:   a1,
			Arg2:   a2,
			Kind:   k,
			Worker: worker,
			Depth:  depth,
		})
	}
	return out
}

// DefaultSlots is the per-ring capacity Tracers are built with unless
// the caller chooses otherwise: 64K events × 32 bytes = 2 MiB per worker,
// enough for several seconds of heavily entangled execution.
const DefaultSlots = 1 << 16

// Tracer owns the rings of one runtime instance: one per scheduler
// worker plus one (index P) for the concurrent-collector goroutine.
type Tracer struct {
	rings []*Ring
	start time.Time
}

// NewTracer creates a tracer for p workers (p+1 rings) with the given
// per-ring slot count (rounded down to a power of two; 0 means
// DefaultSlots). The tracer records relative timestamps from this call.
func NewTracer(p, slots int) *Tracer {
	if p < 1 {
		p = 1
	}
	if slots <= 0 {
		slots = DefaultSlots
	}
	for slots&(slots-1) != 0 {
		slots &= slots - 1 // clear lowest set bit until power of two...
	}
	if slots == 0 {
		slots = DefaultSlots
	}
	t := &Tracer{start: time.Now()}
	for i := 0; i <= p; i++ {
		t.rings = append(t.rings, newRing(int32(i), slots, t.start))
	}
	return t
}

// Workers returns the number of worker rings (excluding the collector
// ring).
func (t *Tracer) Workers() int {
	if t == nil {
		return 0
	}
	return len(t.rings) - 1
}

// Ring returns ring i: worker rings for i < Workers(), the collector
// ring at i == Workers(). Nil-safe and range-safe (nil result), so
// wiring code can hand rings out unconditionally.
func (t *Tracer) Ring(i int) *Ring {
	if t == nil || i < 0 || i >= len(t.rings) {
		return nil
	}
	return t.rings[i]
}

// CollectorRing returns the ring reserved for the concurrent collector.
func (t *Tracer) CollectorRing() *Ring { return t.Ring(t.Workers()) }

// Snapshot decodes every ring, indexed by ring number.
func (t *Tracer) Snapshot() [][]Event {
	if t == nil {
		return nil
	}
	out := make([][]Event, len(t.rings))
	for i, r := range t.rings {
		out[i] = r.Snapshot()
	}
	return out
}
