package trace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testRing(slots int) *Ring { return newRing(0, slots, time.Now()) }

func TestRingBasic(t *testing.T) {
	Enable()
	defer Disable()
	r := testRing(8)
	r.Emit(EvFork, 2, 10, 20)
	r.Emit(EvSteal, 0, 3, 0)
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvFork || evs[0].Arg1 != 10 || evs[0].Arg2 != 20 || evs[0].Depth != 2 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != EvSteal || evs[1].Arg1 != 3 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[1].TS < evs[0].TS {
		t.Fatalf("timestamps not monotone: %d then %d", evs[0].TS, evs[1].TS)
	}
}

func TestRingDisabledAndNil(t *testing.T) {
	r := testRing(8)
	r.Emit(EvFork, 0, 1, 2) // tracing off: must be dropped
	if n := r.Len(); n != 0 {
		t.Fatalf("disabled emit recorded %d events", n)
	}
	var nilRing *Ring
	nilRing.Emit(EvFork, 0, 1, 2) // must not panic
	if nilRing.Snapshot() != nil || nilRing.Len() != 0 {
		t.Fatal("nil ring not inert")
	}
}

func TestRingWraparound(t *testing.T) {
	Enable()
	defer Disable()
	const slots = 16
	r := testRing(slots)
	const total = slots*3 + 5
	for i := 0; i < total; i++ {
		r.Emit(EvCounter, 0, uint64(CtrLiveWords), uint64(i))
	}
	evs := r.Snapshot()
	// A full ring yields slots-1 events: the oldest slot is always
	// indistinguishable from one the writer may be mid-overwrite on.
	if len(evs) != slots-1 {
		t.Fatalf("snapshot after wrap returned %d events, want %d", len(evs), slots-1)
	}
	// The surviving window must be exactly the last slots-1 emissions, in
	// order.
	for i, e := range evs {
		want := uint64(total - (slots - 1) + i)
		if e.Arg2 != want {
			t.Fatalf("event %d: arg2 = %d, want %d", i, e.Arg2, want)
		}
	}
	if r.Len() != total {
		t.Fatalf("Len = %d, want %d", r.Len(), total)
	}
}

// TestRingSnapshotDuringWrite hammers 8 single-writer rings while a
// reader snapshots them continuously. Under -race this checks the
// atomic-word slot discipline; the value checks verify that no snapshot
// ever returns a torn event (an event whose arg2 does not match the
// value its arg1 sequence number implies).
func TestRingSnapshotDuringWrite(t *testing.T) {
	Enable()
	defer Disable()
	const writers = 8
	const perWriter = 20000
	rings := make([]*Ring, writers)
	for i := range rings {
		rings[i] = newRing(int32(i), 64, time.Now())
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(r *Ring) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				// arg1 carries the sequence, arg2 a value derived from it:
				// a torn slot shows up as a mismatched pair.
				r.Emit(EvPin, 1, uint64(j), uint64(j)*3+7)
			}
		}(rings[i])
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			for _, r := range rings {
				for _, e := range r.Snapshot() {
					if e.Kind != EvPin || e.Arg2 != e.Arg1*3+7 {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	<-done
	for i, r := range rings {
		if r.Len() != perWriter {
			t.Fatalf("ring %d recorded %d events, want %d", i, r.Len(), perWriter)
		}
	}
}

func TestEnableRefcount(t *testing.T) {
	if Enabled() {
		t.Fatal("tracing enabled at test start")
	}
	Enable()
	Enable()
	Disable()
	if !Enabled() {
		t.Fatal("nested Enable lost")
	}
	Disable()
	if Enabled() {
		t.Fatal("tracing still on after balanced Disable")
	}
}

func TestTracerRings(t *testing.T) {
	tr := NewTracer(4, 1<<8)
	if tr.Workers() != 4 {
		t.Fatalf("Workers = %d", tr.Workers())
	}
	if tr.Ring(3) == nil || tr.CollectorRing() == nil {
		t.Fatal("missing rings")
	}
	if tr.Ring(5) != nil || tr.Ring(-1) != nil {
		t.Fatal("out-of-range ring not nil")
	}
	var nilT *Tracer
	if nilT.Ring(0) != nil || nilT.Workers() != 0 || nilT.Snapshot() != nil {
		t.Fatal("nil tracer not inert")
	}
	Enable()
	tr.Ring(1).Emit(EvJoin, 1, 42, 0)
	tr.CollectorRing().Emit(EvCGCCycleBegin, 0, 1, 0)
	Disable()
	snap := tr.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d rings", len(snap))
	}
	if len(snap[1]) != 1 || snap[1][0].Worker != 1 {
		t.Fatalf("worker ring events: %+v", snap[1])
	}
	if len(snap[4]) != 1 || snap[4][0].Kind != EvCGCCycleBegin {
		t.Fatalf("collector ring events: %+v", snap[4])
	}
}

func TestMetaPacking(t *testing.T) {
	for _, tc := range []struct {
		k     Kind
		w, d  int32
		wantD int32
	}{
		{EvPin, 0, 0, 0},
		{EvCounter, 63, 12345, 12345},
		{EvSteal, 7, -1, 0},             // negative depth clamps to 0
		{EvFork, 1, 1 << 25, 1<<24 - 1}, // oversized depth clamps
	} {
		k, w, d := unpackMeta(packMeta(tc.k, tc.w, tc.d))
		if k != tc.k || w != tc.w || d != tc.wantD {
			t.Fatalf("pack/unpack(%v,%d,%d) = (%v,%d,%d)", tc.k, tc.w, tc.d, k, w, d)
		}
	}
}

func TestKindAndCounterNames(t *testing.T) {
	for k := Kind(1); k < evKinds; k++ {
		name := k.String()
		if name == "" || name == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindFromName(name)
		if !ok || got != k {
			t.Fatalf("KindFromName(%q) = %v, %v", name, got, ok)
		}
	}
	for c := Counter(0); c < ctrCounters; c++ {
		got, ok := CounterFromName(c.String())
		if !ok || got != c {
			t.Fatalf("CounterFromName(%q) = %v, %v", c.String(), got, ok)
		}
	}
}
