package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRings is a small fixed trace: two worker rings and a collector
// ring exercising every exporter shape — instants, B/E duration pairs
// (LGC on a worker, a full CGC cycle on the collector), and counter
// samples.
func goldenRings() [][]Event {
	w0 := []Event{
		{TS: 1000, Kind: EvFork, Worker: 0, Depth: 0, Arg1: 2, Arg2: 3},
		{TS: 2000, Kind: EvPin, Worker: 0, Depth: 1, Arg1: 0xbeef, Arg2: 1},
		{TS: 5000, Kind: EvLGCBegin, Worker: 0, Depth: 1, Arg1: 2},
		{TS: 9000, Kind: EvLGCEnd, Worker: 0, Depth: 1, Arg1: 128, Arg2: 64},
		{TS: 12000, Kind: EvUnpin, Worker: 0, Depth: 0, Arg1: 0xbeef},
		{TS: 13000, Kind: EvJoin, Worker: 0, Depth: 0, Arg1: 1},
	}
	w1 := []Event{
		{TS: 1500, Kind: EvSteal, Worker: 1, Depth: 0, Arg1: 0},
		{TS: 2500, Kind: EvSlowRead, Worker: 1, Depth: 1, Arg1: 0xbeef},
		{TS: 2600, Kind: EvEntangledRead, Worker: 1, Depth: 1, Arg1: 0xbeef, Arg2: 1},
		{TS: 3000, Kind: EvCounter, Worker: 1, Arg1: uint64(CtrPinnedBytes), Arg2: 4096},
		{TS: 11000, Kind: EvCounter, Worker: 1, Arg1: uint64(CtrPinnedBytes), Arg2: 1024},
	}
	col := []Event{
		{TS: 4000, Kind: EvCGCCycleBegin, Worker: 2, Arg1: 3},
		{TS: 4100, Kind: EvCGCMarkBegin, Worker: 2},
		{TS: 6100, Kind: EvCGCMarkEnd, Worker: 2, Arg1: 42},
		{TS: 6200, Kind: EvCGCSweepBegin, Worker: 2},
		{TS: 7200, Kind: EvCGCSweepEnd, Worker: 2, Arg1: 5, Arg2: 2},
		{TS: 7300, Kind: EvCGCCycleEnd, Worker: 2, Arg1: 512},
		{TS: 7400, Kind: EvCounter, Worker: 2, Arg1: uint64(CtrRetainedChunks), Arg2: 2},
	}
	return [][]Event{w0, w1, col}
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeChromeEvents(&buf, goldenRings(), 2); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter output drifted from golden file; rerun with -update and review the diff\n got: %s", buf.Bytes())
	}
}

// TestChromeStructure checks the output is well-formed trace_event JSON:
// the object form with a traceEvents array whose entries all carry a
// legal ph, and whose B/E events pair up per track.
func TestChromeStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := writeChromeEvents(&buf, goldenRings(), 2); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if tf.TraceEvents == nil {
		t.Fatal("no traceEvents array")
	}
	names := 0
	depth := make(map[int]int) // B/E nesting per tid
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			names++
			if e.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", e.Name)
			}
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("E without B on tid %d", e.TID)
			}
		case "i":
			if e.Args["kind"] == nil {
				t.Fatalf("instant %q missing raw ring record", e.Name)
			}
		case "C":
			if e.Args["value"] == nil {
				t.Fatalf("counter %q missing value", e.Name)
			}
		default:
			t.Fatalf("illegal ph %q", e.Ph)
		}
	}
	if names != 3 {
		t.Fatalf("got %d thread_name rows, want 3", names)
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d has %d unclosed B events", tid, d)
		}
	}
}

// TestExportSummarizeRoundTrip feeds the exported JSON back through the
// summarizer and checks the derived numbers against the fixture.
func TestExportSummarizeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeChromeEvents(&buf, goldenRings(), 2); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 18 {
		t.Fatalf("Events = %d, want 18", s.Events)
	}
	if s.Forks != 1 || s.Steals != 1 || s.SlowReads != 1 || s.EntangledReads != 1 {
		t.Fatalf("rates miscounted: %+v", s)
	}
	if s.Pins != 1 || s.Unpins != 1 || s.UnmatchedPins != 0 {
		t.Fatalf("pin matching: pins=%d unpins=%d unmatched=%d", s.Pins, s.Unpins, s.UnmatchedPins)
	}
	// The fixture's one pin lives 10µs: bucket bits.Len64(10000) = 14.
	if s.PinLifetimes[14] != 1 {
		t.Fatalf("pin lifetime histogram: %v", s.PinLifetimes)
	}
	if s.LGC.Count != 1 || s.LGC.Total != 4*time.Microsecond {
		t.Fatalf("LGC stats: %+v", s.LGC)
	}
	if s.CGCCycle.Count != 1 || s.CGCMark.Count != 1 || s.CGCSweep.Count != 1 {
		t.Fatalf("CGC stats: cycle=%+v mark=%+v sweep=%+v", s.CGCCycle, s.CGCMark, s.CGCSweep)
	}
	if s.CounterMax[CtrPinnedBytes] != 4096 || s.CounterMax[CtrRetainedChunks] != 2 {
		t.Fatalf("counter maxima: %v", s.CounterMax)
	}
	if s.Span != time.Duration(12000) {
		t.Fatalf("span = %v", s.Span)
	}
	var report bytes.Buffer
	s.Format(&report)
	for _, want := range []string{"steals:", "entangled reads:", "pin lifetime histogram", "LGC:", "counter maxima:"} {
		if !bytes.Contains(report.Bytes(), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, report.String())
		}
	}
}

// TestSummarizeRejectsGarbage: the summarizer doubles as the CI trace
// validator, so malformed inputs must error, not zero out.
func TestSummarizeRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		``,
		`not json`,
		`{}`,
		`{"traceEvents":[{"name":"x","ph":"i","ts":1}]}`,
		`{"traceEvents":[{"name":"x","ph":"i","ts":1,"args":{"kind":"no_such_kind"}}]}`,
	} {
		if _, err := Summarize(bytes.NewReader([]byte(in))); err == nil {
			t.Fatalf("Summarize accepted %q", in)
		}
	}
}
