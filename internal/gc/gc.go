// Package gc implements the hierarchical local collector (LGC) of the
// runtime: a Cheney-style copying collection of the exclusive suffix of a
// task's heap path, extended — per the paper — to tolerate entanglement:
//
//   - Pinned objects (entangled, per package entangle) are traced in place:
//     they are never moved nor reclaimed; chunks holding pinned objects are
//     retained whole. This is the space cost of entanglement, and it is
//     bounded: joins unpin (package hierarchy), after which the memory is
//     reclaimed by ordinary collections.
//   - Down-pointers into the collected suffix, recorded by the write
//     barrier in per-heap remembered sets, act as roots; the fields they
//     describe are updated to the targets' new locations *before* the heap
//     gates reopen (hierarchy.Gate.EndCollect), which is what makes the
//     read barrier's pin-then-validate protocol sound.
//   - Remembered sets are rebuilt during the scan so entries never go
//     stale: internal entries are re-derived from surviving objects,
//     external ones are revalidated against the holder's current field.
//
// Collections happen at allocation points of the owning task, so the
// mutator of the collected heaps is stopped; concurrent tasks can touch the
// suffix only through entangled (pinned) objects or slow paths parked at
// the collection gate. There is no mutex: each scope heap's Gate is closed
// for the duration (BeginCollect waits out in-flight entanglement slow
// paths), per-object claims go through the header state machine
// (mem.BeginCopy / mem.Forward), and the publication buffers are drained
// into the owner-only views at the start.
package gc

import (
	"runtime"
	"sync/atomic"

	"mplgo/internal/chaos"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

// Result reports what one collection did.
type Result struct {
	ScopeHeaps     int
	CopiedObjects  int64
	CopiedWords    int64
	ReclaimedWords int64
	RetainedChunks int   // chunks kept alive only because they hold pins
	PinnedTraced   int64 // pinned objects traced in place
}

// Collector performs local collections for one runtime instance.
type Collector struct {
	Space *mem.Space
	Tree  *hierarchy.Tree

	// Totals across all collections. Atomic: distinct tasks collect their
	// own heaps concurrently (with chaos-forced triggers, often).
	Collections    atomic.Int64
	CopiedWords    atomic.Int64
	ReclaimedWords atomic.Int64
	// RetainedChunks totals chunks kept alive across collections only
	// because they hold pinned (entangled) objects: the paper's transient
	// space cost of entanglement, surfaced through Runtime stats.
	RetainedChunks atomic.Int64
}

// New creates a collector.
func New(space *mem.Space, tree *hierarchy.Tree) *Collector {
	return &Collector{Space: space, Tree: tree}
}

// run is the per-collection state.
type run struct {
	c          *Collector
	scope      map[uint32]*hierarchy.Heap
	order      []*hierarchy.Heap // scope heaps, shallowest first (lock order)
	toAlloc    map[uint32]*mem.Allocator
	queue      []mem.Ref // gray objects: copied or pinned, payload unscanned
	marked     []mem.Ref // pinned objects marked this cycle (marks cleared at end)
	newRemsets map[uint32][]hierarchy.RememberedEntry
	res        Result
}

// Collect collects the given heaps, which must be an exclusive suffix as
// produced by Tree.ExclusiveSuffix (leaf first). It returns statistics.
func (c *Collector) Collect(scope []*hierarchy.Heap) Result {
	if len(scope) == 0 {
		return Result{}
	}
	r := &run{
		c:       c,
		scope:   make(map[uint32]*hierarchy.Heap, len(scope)),
		toAlloc: make(map[uint32]*mem.Allocator, len(scope)),
	}
	// Close the gates shallowest-first (entanglement slow paths never hold
	// one gate while entering another, so any order is deadlock-free; this
	// one matches the old lock order for easy comparison), then fold the
	// lock-free publication buffers into the owner-only views: with the
	// gate closed, no reader can be mid-publication, so the drained Pinned
	// and Remset slices are complete.
	// WaitBeginCollect rather than BeginCollect since CGC: the concurrent
	// collector's gate flushes briefly close every live heap's gate, and
	// an LGC racing one must wait the flush out, not panic.
	for i := len(scope) - 1; i >= 0; i-- {
		h := scope[i]
		h.Gate.WaitBeginCollect()
		h.DrainBuffers()
		// Chunks the concurrent sweep queued for allocation reuse are
		// about to be evacuated or released; they must not linger as
		// carving targets.
		h.DrainReusable(nil)
		r.order = append(r.order, h)
	}
	defer func() {
		for i := len(r.order) - 1; i >= 0; i-- {
			r.order[i].Gate.EndCollect()
		}
	}()

	var oldChunks []*mem.Chunk
	var oldWords int64
	for _, h := range scope {
		r.scope[h.ID] = h
		r.toAlloc[h.ID] = mem.NewAllocator(c.Space, h.ID)
		oldChunks = append(oldChunks, h.Chunks...)
		for _, ch := range h.Chunks {
			oldWords += int64(ch.Words())
		}
	}
	r.res.ScopeHeaps = len(scope)

	// Phase 1: roots.
	r.newRemsets = make(map[uint32][]hierarchy.RememberedEntry, len(scope))
	r.scanShadowStacks()
	r.processRemsets()
	r.tracePinned()

	// Phase 2: transitive copy/trace.
	r.drain()

	// Phase 3: install rebuilt remsets, swap chunk lists, release from-space.
	var retainedOldWords int64
	for _, h := range scope {
		h.Remset = r.newRemsets[h.ID]
		var kept []*mem.Chunk
		for _, ch := range h.Chunks {
			if ch.PinCount > 0 {
				kept = append(kept, ch)
				retainedOldWords += int64(ch.Words())
				r.res.RetainedChunks++
			} else {
				c.Space.Release(ch)
			}
		}
		kept = append(kept, r.toAlloc[h.ID].Chunks...)
		h.Chunks = kept
		h.Collections++
	}
	// Clear transient marks on pinned objects.
	for _, p := range r.marked {
		c.Space.ClearMark(p)
	}
	r.res.ReclaimedWords = oldWords - retainedOldWords
	scope[0].CopiedWords += r.res.CopiedWords
	c.Collections.Add(1)
	c.CopiedWords.Add(r.res.CopiedWords)
	c.ReclaimedWords.Add(r.res.ReclaimedWords)
	c.RetainedChunks.Add(int64(r.res.RetainedChunks))
	return r.res
}

// scanShadowStacks forwards every root of every task attached to the scope.
func (r *run) scanShadowStacks() {
	for _, h := range r.order {
		for _, rs := range h.RootSets {
			rs.Roots(func(p *mem.Value) {
				*p = r.forward(*p)
			})
		}
	}
}

// processRemsets uses down-pointer entries as roots and begins the rebuilt
// remembered sets with the still-valid external entries.
func (r *run) processRemsets() {
	out := r.newRemsets
	type key struct {
		h mem.Ref
		i int
	}
	seen := make(map[key]bool)
	for _, h := range r.order {
		for _, e := range h.Remset {
			k := key{e.Holder, e.Index}
			if seen[k] {
				continue
			}
			seen[k] = true
			holderHeap := r.c.Space.HeapOf(e.Holder)
			if _, internal := r.scope[holderHeap]; internal {
				// The holder is being collected too; if it survives, the
				// scan re-derives this entry with the holder's new address.
				continue
			}
			// The concurrent sweep reclaims internal-heap holders in place
			// (KFree) and may later re-carve the span; an entry whose holder
			// no longer parses, was freed, or no longer covers the recorded
			// index is stale and must not be dereferenced.
			hd := r.c.Space.Header(e.Holder)
			if !hd.Valid() || hd.Kind() == mem.KFree {
				continue
			}
			if hn := max(hd.Len(), 1); e.Index < 0 || e.Index >= hn {
				continue
			}
			v := r.c.Space.Load(e.Holder, e.Index)
			if !v.IsRef() {
				continue // field was overwritten; entry is dead
			}
			tgtHeap := r.c.Space.HeapOf(v.Ref())
			if _, in := r.scope[tgtHeap]; !in {
				continue // no longer points into the suffix
			}
			nv := r.forward(v)
			if nv != v {
				r.c.Space.Store(e.Holder, e.Index, nv)
			}
			// The entry survives, indexed by the target's (unchanged) heap.
			curTgt := r.c.Space.HeapOf(nv.Ref())
			out[curTgt] = append(out[curTgt], e)
		}
	}
}

// tracePinned greys every pinned object of the scope: pinned objects are
// unconditionally live (a concurrent task may hold them) and traced in
// place.
func (r *run) tracePinned() {
	for _, h := range r.order {
		for _, p := range h.Pinned {
			hd := r.c.Space.Header(p)
			if !hd.Pinned() || hd.Kind() == mem.KForward {
				continue
			}
			if r.c.Space.SetMark(p) {
				r.marked = append(r.marked, p)
				r.queue = append(r.queue, p)
				r.res.PinnedTraced++
			}
		}
	}
}

// forward returns the value to use in place of v after collection: copies
// unpinned scope objects to to-space (installing forwarding), leaves pinned
// and out-of-scope objects alone.
func (r *run) forward(v mem.Value) mem.Value {
	if !v.IsRef() {
		return v
	}
	ref := v.Ref()
	h, in := r.scope[r.c.Space.HeapOf(ref)]
	if !in {
		return v
	}
	// Claim the object through the header state machine. With the scope
	// gates closed no pin can race us here, but the discipline is what
	// makes the protocol auditable: a copy only ever starts from a
	// successful PLAIN→BUSY transition, and every refusal tells us why.
	hd, ok := r.c.Space.BeginCopy(ref)
	if !ok {
		switch {
		case hd.Kind() == mem.KForward:
			return r.c.Space.Load(ref, 0)
		case hd.Pinned():
			if r.c.Space.SetMark(ref) {
				r.marked = append(r.marked, ref)
				r.queue = append(r.queue, ref)
				r.res.PinnedTraced++
			}
			return v
		default:
			// BUSY is unreachable: this collector is the only copier of
			// its scope and completes each claim before the next.
			panic("gc: BeginCopy refused a plain header")
		}
	}
	if ch := r.c.Space.Chaos; ch != nil && ch.Should(chaos.BusyWindow) {
		// Stretch the transient BUSY window so concurrent pinners dwell in
		// their PinBusy back-off/retry loops.
		for i := ch.Spin(chaos.BusyWindow); i > 0; i-- {
			runtime.Gosched()
		}
	}
	// Copy to the object's own heap's to-space, preserving heap membership
	// and header flags (candidate survives the move).
	n := hd.Len()
	al := r.toAlloc[h.ID]
	nr := al.Alloc(hd.Kind(), n)
	// Copy header flags (kind and length were set by Alloc).
	if hd.Candidate() {
		r.c.Space.SetCandidate(nr)
	}
	if hd.Kind() == mem.KRaw {
		for i := 0; i < n; i++ {
			r.c.Space.StoreRaw(nr, i, r.c.Space.LoadRaw(ref, i))
		}
	} else {
		for i := 0; i < n; i++ {
			r.c.Space.Store(nr, i, r.c.Space.Load(ref, i))
		}
	}
	r.c.Space.Forward(ref, nr)
	r.res.CopiedObjects++
	r.res.CopiedWords += int64(n + 1)
	r.queue = append(r.queue, nr)
	return nr.Value()
}

// drain scans grey objects until none remain, forwarding their fields and
// re-deriving internal down-pointer remembered entries.
func (r *run) drain() {
	sp := r.c.Space
	for len(r.queue) > 0 {
		q := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		hd := sp.Header(q)
		if !hd.Kind().Scanned() {
			continue
		}
		qHeap := r.scope[sp.HeapOf(q)]
		for i := 0; i < hd.Len(); i++ {
			v := sp.Load(q, i)
			nv := r.forward(v)
			if nv != v {
				sp.Store(q, i, nv)
			}
			// Re-derive internal down-pointer entries: q (depth d1)
			// points at a strictly deeper scope heap (depth d2 > d1).
			if nv.IsRef() && qHeap != nil {
				tgt, in := r.scope[sp.HeapOf(nv.Ref())]
				if in && tgt != qHeap && tgt.Depth() > qHeap.Depth() {
					r.newRemsets[tgt.ID] = append(r.newRemsets[tgt.ID],
						hierarchy.RememberedEntry{Holder: q, Index: i})
				}
			}
		}
	}
}
