package gc

import (
	"fmt"
	"sync/atomic"

	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

// The chaos layer's invariant checker. Two strengths:
//
//   - CheckHeap(h, strict=false) is the relaxed, owner-callable audit run
//     at joins while the rest of the computation is still running: it
//     sweeps only structures the calling strand owns (the heap's chunk
//     list, its owner-only remembered set) using atomic header loads, so
//     it is race-free against concurrent entanglement pins. It verifies
//     every allocated header parses (valid bit, known kind, length within
//     chunk) and every remembered entry is well-formed.
//
//   - CheckInvariants(strict=true) is the quiescent audit run at the end
//     of a computation (and callable from tests): everything above, plus
//     gate quiescence (reader count zero, collecting bit clear), pin
//     accounting (each chunk's PinCount equals the pinned headers it
//     holds), no transient BUSY or mark bits outside a collection, and —
//     via Validate — that no live path reaches a stale forwarding header.
//
// Sweeps are possible because chunks are bump-allocated densely: objects
// occupy [off, off+1+max(1,len)) back to back from offset 0 to c.Alloc,
// and forwarding headers preserve the length, so a linear walk never loses
// framing.

// CheckHeap audits one heap. strict additionally enforces the quiescent
// invariants (gate drained, pin counts balanced, no transient bits).
func CheckHeap(sp *mem.Space, h *hierarchy.Heap, strict bool) error {
	if strict {
		if n := h.Gate.Readers(); n != 0 {
			return fmt.Errorf("gc: heap %d gate holds %d readers at a quiescent point", h.ID, n)
		}
		if h.Gate.Collecting() {
			return fmt.Errorf("gc: heap %d gate marked collecting at a quiescent point", h.ID)
		}
	}
	for _, c := range h.Chunks {
		pinned := int32(0)
		off := 0
		for off < c.Alloc {
			hd := mem.Header(atomic.LoadUint64(&c.Data[off]))
			if !hd.Valid() {
				return fmt.Errorf("gc: heap %d chunk %d: invalid header %#x at +%d", h.ID, c.ID, uint64(hd), off)
			}
			if hd.Kind() > mem.KFree {
				return fmt.Errorf("gc: heap %d chunk %d: unknown kind %d at +%d", h.ID, c.ID, hd.Kind(), off)
			}
			if hd.Kind() == mem.KFree && (hd.Pinned() || hd.Busy() || hd.Marked()) {
				return fmt.Errorf("gc: heap %d chunk %d: free span at +%d carries state bits %#x", h.ID, c.ID, off, uint64(hd))
			}
			n := hd.Len()
			if n < 1 {
				n = 1
			}
			if off+1+n > c.Alloc {
				return fmt.Errorf("gc: heap %d chunk %d: object at +%d (len %d) overruns bump offset %d", h.ID, c.ID, off, hd.Len(), c.Alloc)
			}
			if hd.Pinned() {
				pinned++
			}
			if strict {
				if hd.Busy() {
					return fmt.Errorf("gc: heap %d chunk %d: BUSY header at +%d outside a collection", h.ID, c.ID, off)
				}
				if hd.Marked() {
					return fmt.Errorf("gc: heap %d chunk %d: mark bit left set at +%d", h.ID, c.ID, off)
				}
			}
			off += 1 + n
		}
		if strict {
			if pc := atomic.LoadInt32(&c.PinCount); pc != pinned {
				return fmt.Errorf("gc: heap %d chunk %d: PinCount %d but %d pinned headers swept", h.ID, c.ID, pc, pinned)
			}
			if c.CGCScoped() {
				return fmt.Errorf("gc: heap %d chunk %d: mark bitmap left installed at a quiescent point", h.ID, c.ID)
			}
		}
	}
	for k, e := range h.Remset {
		if err := checkRemembered(sp, e); err != nil {
			return fmt.Errorf("gc: heap %d remset[%d]: %w", h.ID, k, err)
		}
	}
	return nil
}

// checkRemembered verifies one remembered entry is well-formed: the holder
// resolves to a live chunk, its header parses, and the recorded index is
// inside the holder's payload. Entries may be stale (the field was
// overwritten) — that is legal; a holder that no longer parses is not.
func checkRemembered(sp *mem.Space, e hierarchy.RememberedEntry) error {
	c := sp.ChunkByID(e.Holder.Chunk())
	if c == nil || c.HeapID() == 0 {
		return fmt.Errorf("holder %v points into a released chunk", e.Holder)
	}
	hd := sp.Header(e.Holder)
	if !hd.Valid() || hd.Kind() > mem.KFree {
		return fmt.Errorf("holder %v has unparseable header %#x", e.Holder, uint64(hd))
	}
	if hd.Kind() == mem.KFree {
		// The holder was reclaimed in place by the concurrent sweep; the
		// entry is stale but harmless (collections skip KFree holders).
		return nil
	}
	if hd.Kind() == mem.KForward {
		return fmt.Errorf("holder %v is a stale forwarding header", e.Holder)
	}
	n := hd.Len()
	if n < 1 {
		n = 1
	}
	if e.Index < 0 || e.Index >= n {
		return fmt.Errorf("index %d outside holder %v payload (len %d)", e.Index, e.Holder, hd.Len())
	}
	return nil
}

// CheckInvariants audits every live heap of the tree. strict (quiescent
// points only) adds gate, pin-accounting and transient-bit checks per heap
// plus the reachability audit of Validate, which rejects any live path to
// a forwarding header.
func CheckInvariants(sp *mem.Space, tree *hierarchy.Tree, strict bool) error {
	live := tree.Live()
	for _, h := range live {
		if err := CheckHeap(sp, h, strict); err != nil {
			return err
		}
	}
	if strict {
		return Validate(sp, live)
	}
	return nil
}
