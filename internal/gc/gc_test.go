package gc

import (
	"math/rand"
	"testing"

	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

type roots struct{ refs []mem.Ref }

func (f *roots) Roots(visit func(*mem.Value)) {
	for i := range f.refs {
		v := f.refs[i].Value()
		visit(&v)
		if v.IsRef() {
			f.refs[i] = v.Ref()
		}
	}
}

type world struct {
	sp *mem.Space
	tr *hierarchy.Tree
	c  *Collector
}

func newWorld() *world {
	w := &world{sp: mem.NewSpace(), tr: hierarchy.New()}
	w.c = New(w.sp, w.tr)
	return w
}

// heapAlloc pairs an allocator with its heap and keeps chunk adoption tidy.
type heapAlloc struct {
	h  *hierarchy.Heap
	al *mem.Allocator
	w  *world
}

func (w *world) onHeap(h *hierarchy.Heap) *heapAlloc {
	return &heapAlloc{h: h, al: mem.NewAllocator(w.sp, h.ID), w: w}
}

func (ha *heapAlloc) adopt() {
	ha.h.Chunks = append(ha.h.Chunks, ha.al.Chunks...)
	ha.al.Chunks = nil
}

func TestCollectReclaimsGarbage(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)

	live := ha.al.AllocTuple(mem.Int(1), mem.Int(2))
	for i := 0; i < 3*mem.ChunkWords/4; i++ {
		ha.al.AllocTuple(mem.Int(int64(i)), mem.Int(0)) // garbage
	}
	ha.adopt()
	rs := &roots{refs: []mem.Ref{live}}
	leaf.AddRootSet(rs)

	before := w.sp.LiveWords()
	res := w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if res.CopiedObjects != 1 {
		t.Fatalf("CopiedObjects = %d, want 1", res.CopiedObjects)
	}
	if w.sp.LiveWords() >= before {
		t.Fatal("collection did not reclaim space")
	}
	moved := rs.refs[0]
	if moved == live {
		t.Fatal("live object was not moved (root not updated?)")
	}
	if w.sp.Load(moved, 0).AsInt() != 1 || w.sp.Load(moved, 1).AsInt() != 2 {
		t.Fatal("live object corrupted by copy")
	}
	if w.sp.HeapOf(moved) != leaf.ID {
		t.Fatal("copy left its heap")
	}
	if res.ReclaimedWords <= 0 {
		t.Fatal("ReclaimedWords not positive")
	}
}

func TestCollectPreservesLinkedStructure(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)

	// Build list 9 → 8 → ... → 0 → nil, with garbage interleaved.
	head := mem.Nil
	for i := 0; i < 10; i++ {
		ha.al.AllocArray(50, mem.Int(0)) // garbage
		head = ha.al.AllocTuple(mem.Int(int64(i)), head).Value()
	}
	ha.adopt()
	rs := &roots{refs: []mem.Ref{head.Ref()}}
	leaf.AddRootSet(rs)

	res := w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if res.CopiedObjects != 10 {
		t.Fatalf("CopiedObjects = %d, want 10", res.CopiedObjects)
	}
	// Walk the copied list.
	cur := rs.refs[0].Value()
	for i := 9; i >= 0; i-- {
		if !cur.IsRef() {
			t.Fatalf("list truncated at %d", i)
		}
		if got := w.sp.Load(cur.Ref(), 0).AsInt(); got != int64(i) {
			t.Fatalf("list[%d] = %d", i, got)
		}
		cur = w.sp.Load(cur.Ref(), 1)
	}
	if !cur.IsNil() {
		t.Fatal("list tail not nil")
	}
}

func TestCollectHandlesCycles(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)
	a := ha.al.AllocArray(2, mem.Nil)
	b := ha.al.AllocArray(2, mem.Nil)
	w.sp.Store(a, 0, b.Value())
	w.sp.Store(b, 0, a.Value())
	w.sp.Store(a, 1, mem.Int(11))
	w.sp.Store(b, 1, mem.Int(22))
	ha.adopt()
	rs := &roots{refs: []mem.Ref{a}}
	leaf.AddRootSet(rs)

	res := w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if res.CopiedObjects != 2 {
		t.Fatalf("CopiedObjects = %d, want 2", res.CopiedObjects)
	}
	na := rs.refs[0]
	nb := w.sp.Load(na, 0).Ref()
	if w.sp.Load(nb, 0).Ref() != na {
		t.Fatal("cycle broken by collection")
	}
	if w.sp.Load(na, 1).AsInt() != 11 || w.sp.Load(nb, 1).AsInt() != 22 {
		t.Fatal("cycle payload corrupted")
	}
}

func TestSharedObjectCopiedOnce(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)
	shared := ha.al.AllocTuple(mem.Int(5))
	p := ha.al.AllocTuple(shared.Value(), shared.Value())
	ha.adopt()
	rs := &roots{refs: []mem.Ref{p}}
	leaf.AddRootSet(rs)

	res := w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if res.CopiedObjects != 2 {
		t.Fatalf("CopiedObjects = %d, want 2 (sharing must be preserved)", res.CopiedObjects)
	}
	np := rs.refs[0]
	if w.sp.Load(np, 0) != w.sp.Load(np, 1) {
		t.Fatal("sharing destroyed: the two fields diverged")
	}
}

func TestRemsetRoot(t *testing.T) {
	w := newWorld()
	root := w.tr.Root()
	leaf := w.tr.Fork(root)
	rootHA := w.onHeap(root)
	leafHA := w.onHeap(leaf)

	holder := rootHA.al.AllocArray(1, mem.Nil) // outside scope
	target := leafHA.al.AllocTuple(mem.Int(77))
	w.sp.SetCandidate(holder)
	w.sp.Store(holder, 0, target.Value())
	leaf.AddRemembered(holder, 0)
	rootHA.adopt()
	leafHA.adopt()

	// No shadow-stack roots at all: only the remset keeps target alive.
	res := w.c.Collect([]*hierarchy.Heap{leaf})
	if res.CopiedObjects != 1 {
		t.Fatalf("CopiedObjects = %d, want 1", res.CopiedObjects)
	}
	nv := w.sp.Load(holder, 0)
	if !nv.IsRef() || nv.Ref() == target {
		t.Fatal("holder field not updated to the new location")
	}
	if w.sp.Load(nv.Ref(), 0).AsInt() != 77 {
		t.Fatal("target corrupted")
	}
	// The external entry must survive the rebuild for future collections.
	if len(leaf.Remset) != 1 {
		t.Fatalf("rebuilt remset = %v", leaf.Remset)
	}
	// And a second collection must work off the rebuilt entry.
	res = w.c.Collect([]*hierarchy.Heap{leaf})
	if res.CopiedObjects != 1 {
		t.Fatalf("second collection CopiedObjects = %d", res.CopiedObjects)
	}
	if w.sp.Load(w.sp.Load(holder, 0).Ref(), 0).AsInt() != 77 {
		t.Fatal("target lost in second collection")
	}
}

func TestDeadRemsetEntryDropped(t *testing.T) {
	w := newWorld()
	root := w.tr.Root()
	leaf := w.tr.Fork(root)
	rootHA := w.onHeap(root)
	leafHA := w.onHeap(leaf)

	holder := rootHA.al.AllocArray(1, mem.Nil)
	target := leafHA.al.AllocTuple(mem.Int(1))
	w.sp.Store(holder, 0, target.Value())
	leaf.AddRemembered(holder, 0)
	// Overwrite the field: the down-pointer is gone.
	w.sp.Store(holder, 0, mem.Int(42))
	rootHA.adopt()
	leafHA.adopt()

	res := w.c.Collect([]*hierarchy.Heap{leaf})
	if res.CopiedObjects != 0 {
		t.Fatal("dead target kept alive by stale remset entry")
	}
	if len(leaf.Remset) != 0 {
		t.Fatal("stale entry not dropped")
	}
}

func TestPinnedNotMoved(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)

	pinned := ha.al.AllocArray(2, mem.Nil)
	child := ha.al.AllocTuple(mem.Int(33)) // reachable only from pinned
	w.sp.Store(pinned, 0, child.Value())
	ha.adopt()
	w.sp.Pin(pinned, 0)
	leaf.AddPinned(pinned)

	res := w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if res.PinnedTraced != 1 {
		t.Fatalf("PinnedTraced = %d", res.PinnedTraced)
	}
	// The pinned object stayed put (no forwarding header).
	if _, fwd := w.sp.Forwarded(pinned); fwd {
		t.Fatal("pinned object was moved")
	}
	if !w.sp.Header(pinned).Pinned() {
		t.Fatal("pin bit lost")
	}
	if w.sp.Header(pinned).Marked() {
		t.Fatal("transient mark not cleared")
	}
	// Its child was copied and the field updated.
	nv := w.sp.Load(pinned, 0)
	if !nv.IsRef() || nv.Ref() == child {
		t.Fatal("pinned object's field not forwarded")
	}
	if w.sp.Load(nv.Ref(), 0).AsInt() != 33 {
		t.Fatal("pinned-reachable object corrupted")
	}
	if res.RetainedChunks == 0 {
		t.Fatal("chunk holding the pin must be retained")
	}
}

func TestPinnedChunkRetainedThenReclaimedAfterUnpin(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)
	pinned := ha.al.AllocRef(mem.Int(1))
	ha.adopt()
	w.sp.Pin(pinned, 0)
	leaf.AddPinned(pinned)

	res := w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if res.RetainedChunks != 1 {
		t.Fatalf("RetainedChunks = %d, want 1", res.RetainedChunks)
	}

	// Unpin (as a join would) and collect again: now the chunk frees and
	// the unreferenced object dies.
	w.sp.Unpin(pinned)
	leaf.Pinned = nil
	before := w.sp.LiveWords()
	res = w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if res.RetainedChunks != 0 {
		t.Fatal("chunk still retained after unpin")
	}
	if w.sp.LiveWords() > before {
		t.Fatal("space grew after unpin collection")
	}
}

func TestMultiHeapSuffix(t *testing.T) {
	w := newWorld()
	root := w.tr.Root()
	mid := w.tr.Fork(root)
	leaf := w.tr.Fork(mid)
	midHA := w.onHeap(mid)
	leafHA := w.onHeap(leaf)

	up := midHA.al.AllocTuple(mem.Int(1)) // in mid
	holder := midHA.al.AllocArray(1, mem.Nil)
	down := leafHA.al.AllocTuple(mem.Int(2)) // in leaf
	w.sp.SetCandidate(holder)
	w.sp.Store(holder, 0, down.Value())
	leaf.AddRemembered(holder, 0)
	midHA.adopt()
	leafHA.adopt()

	rs := &roots{refs: []mem.Ref{up, holder}}
	leaf.AddRootSet(rs)

	suffix := w.tr.ExclusiveSuffix(leaf)
	if len(suffix) != 3 {
		t.Fatalf("suffix length = %d", len(suffix))
	}
	res := w.c.Collect(suffix)
	if res.CopiedObjects != 3 {
		t.Fatalf("CopiedObjects = %d, want 3", res.CopiedObjects)
	}
	// Heap membership is preserved across the copy.
	if w.sp.HeapOf(rs.refs[0]) != mid.ID {
		t.Fatal("mid object changed heap")
	}
	nDown := w.sp.Load(rs.refs[1], 0).Ref()
	if w.sp.HeapOf(nDown) != leaf.ID {
		t.Fatal("leaf object changed heap")
	}
	// The internal down-pointer was re-derived into leaf's remset with the
	// holder's NEW address.
	if len(leaf.Remset) != 1 || leaf.Remset[0].Holder != rs.refs[1] {
		t.Fatalf("re-derived remset = %v (holder now %v)", leaf.Remset, rs.refs[1])
	}
}

func TestRawObjectSurvives(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)
	s := ha.al.AllocString("the quick brown fox")
	ha.adopt()
	rs := &roots{refs: []mem.Ref{s}}
	leaf.AddRootSet(rs)
	w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if got := w.sp.LoadString(rs.refs[0]); got != "the quick brown fox" {
		t.Fatalf("string corrupted: %q", got)
	}
}

func TestCandidateBitSurvivesCopy(t *testing.T) {
	w := newWorld()
	leaf := w.tr.Fork(w.tr.Root())
	ha := w.onHeap(leaf)
	o := ha.al.AllocArray(1, mem.Int(1))
	w.sp.SetCandidate(o)
	ha.adopt()
	rs := &roots{refs: []mem.Ref{o}}
	leaf.AddRootSet(rs)
	w.c.Collect(w.tr.ExclusiveSuffix(leaf))
	if !w.sp.Header(rs.refs[0]).Candidate() {
		t.Fatal("candidate bit lost in copy")
	}
}

func TestEmptyScope(t *testing.T) {
	w := newWorld()
	if res := w.c.Collect(nil); res.ScopeHeaps != 0 {
		t.Fatal("empty scope must be a no-op")
	}
}

// TestRandomGraphsPreserved builds random object graphs, snapshots the
// reachable structure, collects, and verifies the structure is isomorphic.
func TestRandomGraphsPreserved(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld()
		leaf := w.tr.Fork(w.tr.Root())
		ha := w.onHeap(leaf)

		// Random objects with random int fields and random back-pointers.
		var objs []mem.Ref
		for i := 0; i < 200; i++ {
			n := 1 + rng.Intn(4)
			o := ha.al.AllocArray(n, mem.Nil)
			for j := 0; j < n; j++ {
				if len(objs) > 0 && rng.Intn(2) == 0 {
					w.sp.Store(o, j, objs[rng.Intn(len(objs))].Value())
				} else {
					w.sp.Store(o, j, mem.Int(int64(rng.Intn(1000))))
				}
			}
			objs = append(objs, o)
		}
		ha.adopt()
		// A few random roots.
		rs := &roots{}
		for i := 0; i < 5; i++ {
			rs.refs = append(rs.refs, objs[rng.Intn(len(objs))])
		}
		leaf.AddRootSet(rs)

		var snapshot func(r mem.Ref, seen map[mem.Ref]int, out *[]int64)
		snapshot = func(r mem.Ref, seen map[mem.Ref]int, out *[]int64) {
			if id, ok := seen[r]; ok {
				*out = append(*out, int64(-1000000-id))
				return
			}
			seen[r] = len(seen)
			h := w.sp.Header(r)
			*out = append(*out, int64(h.Len()))
			for i := 0; i < h.Len(); i++ {
				v := w.sp.Load(r, i)
				if v.IsRef() {
					snapshot(v.Ref(), seen, out)
				} else if v.IsNil() {
					*out = append(*out, -999)
				} else {
					*out = append(*out, v.AsInt())
				}
			}
		}
		var before []int64
		seen := map[mem.Ref]int{}
		for _, r := range rs.refs {
			snapshot(r, seen, &before)
		}

		w.c.Collect(w.tr.ExclusiveSuffix(leaf))

		var after []int64
		seen = map[mem.Ref]int{}
		for _, r := range rs.refs {
			snapshot(r, seen, &after)
		}
		if len(before) != len(after) {
			t.Fatalf("seed %d: snapshot lengths differ: %d vs %d", seed, len(before), len(after))
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("seed %d: snapshots differ at %d: %d vs %d", seed, i, before[i], after[i])
			}
		}
	}
}
