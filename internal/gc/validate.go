package gc

import (
	"fmt"

	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
)

// Validate traces the live object graph from the given heaps' root sets
// and pinned objects, checking heap integrity; it is a testing aid used by
// the stress tests at quiescent points (e.g. the end of a computation,
// while the caller's frames still root the data of interest).
//
// Checked invariants, for every *reachable* object:
//
//   - the header parses: valid bit set, known kind, length within chunk;
//   - the object's chunk is owned by a live heap;
//   - the object is not a forwarding header: collections must redirect
//     every surviving reference before releasing their locks, so no live
//     path may reach a from-space remnant.
//
// Dead objects may legitimately hold stale references (their fields are
// never updated once unreachable), so the walk is reachability-based
// rather than a sweep of chunk contents.
func Validate(sp *mem.Space, heaps []*hierarchy.Heap) error {
	seen := map[mem.Ref]bool{}
	var stack []mem.Ref

	check := func(r mem.Ref, what string) error {
		tc := sp.ChunkByID(r.Chunk())
		if tc == nil || tc.HeapID() == 0 {
			return fmt.Errorf("gc: %s %v points into a released chunk", what, r)
		}
		hd := sp.Header(r)
		if !hd.Valid() {
			return fmt.Errorf("gc: %s %v has invalid header %#x", what, r, uint64(hd))
		}
		if hd.Kind() == mem.KForward {
			return fmt.Errorf("gc: %s %v is a stale forwarding header", what, r)
		}
		if hd.Kind() > mem.KRaw {
			return fmt.Errorf("gc: %s %v has unknown kind %d", what, r, hd.Kind())
		}
		n := hd.Len()
		if n < 1 {
			n = 1
		}
		if r.Off()+1+n > tc.Words() {
			return fmt.Errorf("gc: %s %v overruns its chunk", what, r)
		}
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
		return nil
	}

	for _, h := range heaps {
		for _, rs := range h.RootSets {
			var rootErr error
			rs.Roots(func(p *mem.Value) {
				if rootErr == nil && p.IsRef() {
					rootErr = check(p.Ref(), "root")
				}
			})
			if rootErr != nil {
				return rootErr
			}
		}
		for _, p := range h.Pinned {
			if sp.Header(p).Pinned() {
				if err := check(p, "pinned object"); err != nil {
					return err
				}
			}
		}
	}

	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		hd := sp.Header(r)
		if !hd.Kind().Scanned() {
			continue
		}
		for i := 0; i < hd.Len(); i++ {
			v := sp.Load(r, i)
			if v.IsRef() {
				if err := check(v.Ref(), fmt.Sprintf("field %d of %v", i, r)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
