package gc

// The concurrent collector (CGC): snapshot-at-the-beginning, non-moving
// mark–sweep over *internal* heaps — heaps with live children, whose owner
// task is suspended in a join. The local collector (Collect) can only reach
// the current task's exclusive suffix, so memory that dies while a heap is
// internal used to wait for the owner to resume (deviation D2); CGC
// reclaims it while the subtree is still running.
//
// Why non-moving: internal heaps are exactly the ones concurrent tasks may
// reach through entangled objects and down-pointers, so relocation would
// race every reader. Instead, dead objects are overwritten in place with
// KFree spans, fully-dead chunks go back to the space's free list, and
// partially-dead chunks have a free list threaded through them which the
// owner's allocator reuses after it resumes (mem.Allocator.AddReusable).
//
// The cycle, and why each phase ordering matters:
//
//  1. Snapshot. Under each candidate heap's gate (TryBeginCollect — busy
//     heaps are skipped, cycles are opportunistic): claim the heap's status
//     word (hierarchy.CGCClaim — a CAS that succeeds only while the owner
//     is parked in its join, so the claim can never race the owner's bump
//     pointer or free-list carving) and install side mark bitmaps on its
//     current chunks. Bitmaps must exist before the barrier turns on, since
//     the barrier uses "has a bitmap" as its in-scope test.
//  2. Barrier on + ragged safepoint. Marking() flips true; every mutator
//     write now shades the overwritten value (entangle.ShadeOverwritten).
//     Then the cycle waits until every live task has handshaked once:
//     parked tasks (suspended in ForkJoin) are claim-scanned by the
//     collector; running tasks self-scan at their next safepoint. No
//     tracing happens before the handshake completes. This is what closes
//     the flip race: a write that loaded the phase before the flip
//     completes before its task's handshake (program order for running
//     tasks, parkedness for parked ones), and the handshake captures the
//     task's frames — so a reference deleted by such an unshaded write is
//     still harvested from the frame that held it.
//  3. Root harvest. Under each gate: pinned tables and root sets of every
//     live heap, plus remembered down-pointer entries of the scoped heaps.
//     Buffers are peeked, not drained — draining folds into owner-only
//     slices the collector must not touch.
//  4. Concurrent mark. Single worker; mutators keep running. Marking
//     traces the full reachable graph but *marks* only scoped objects:
//     out-of-scope objects (leaf heaps, chunks born mid-cycle) are passed
//     through via a per-cycle visited set, because up-pointers from
//     descendant heaps are unrecorded and an in-scope object may be
//     reachable only through them.
//  5. Termination. Greys and shades are drained to a fixpoint; then every
//     live gate is flushed once (shade pushes hold the writer's reader
//     gate across the phase check, so the flush makes in-flight pushes
//     visible) and the queue drained again. If that uncovers no new work
//     the fixpoint is genuine: any later shade is of an already-marked
//     object, so the barrier can turn off.
//  6. Sweep. Per scoped heap: the scoped→sweeping CAS, take the gate, and
//     rebuild the chunk list. The owner is parked (or blocked in
//     hierarchy.CGCResume) for the whole cycle, so the chunk list and bump
//     offsets are stable; the snapshot filter (only chunks recorded at
//     claim time, with unchanged bump offsets, are swept) is kept as a
//     defensive invariant, not a synchronization mechanism. Liveness is
//     mark-bit-or-pinned; forwarding headers are never marked, so stale
//     forwards are reclaimed too. Fully-dead chunks are released — the
//     owner revalidates its allocation targets on resume
//     (mem.Allocator.Revalidate), since one of them may be its bump chunk.
//
// Objects allocated during the cycle live in chunks without bitmaps and in
// heaps outside the scope, so they are implicitly black; nothing allocated
// after the snapshot can be freed by this cycle.

import (
	"runtime"
	"sync/atomic"
	"time"

	"mplgo/internal/attr"
	"mplgo/internal/chaos"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/trace"
)

// CGC phases, exposed to the write barrier through Marking().
const (
	cgcIdle uint32 = iota
	cgcMarking
	cgcSweeping
)

// reuseMinWords is the smallest threaded free list worth handing back to
// the owner's allocator; chunks with less stay retained until fully dead.
const reuseMinWords = 16

// Handshaker is implemented by the runtime layer: it owns the task
// registry and the park/claim protocol, which the gc package cannot see.
type Handshaker interface {
	// ScanTasks brings tasks up to the given cycle epoch: parked tasks are
	// claim-scanned (their frame roots passed to grey), running tasks are
	// left to self-scan at their next safepoint. It reports whether every
	// registered task has been scanned this epoch.
	ScanTasks(epoch uint64, grey func(mem.Value)) bool
}

// CGCResult reports what one concurrent cycle did.
type CGCResult struct {
	ScopeHeaps     int
	SkippedHeaps   int // claimed but stolen back before their sweep
	MarkedObjects  int64
	LiveWords      int64 // live payload+header words swept over
	FreedWords     int64 // words turned into free spans
	SweptChunks    int   // fully-dead chunks released to the space
	RetainedChunks int   // scoped chunks kept (live or pinned objects)
	Aborted        bool
}

// shadeNode / shadeStack: a Treiber stack carrying SATB shades from
// mutators to the collector. Push is a single CAS publish, so a concurrent
// drain never observes a half-written slot; drain detaches the whole list.
type shadeNode struct {
	v    mem.Ref
	next *shadeNode
}

type shadeStack struct {
	top atomic.Pointer[shadeNode]
}

func (s *shadeStack) push(r mem.Ref) {
	n := &shadeNode{v: r}
	for {
		t := s.top.Load()
		n.next = t
		if s.top.CompareAndSwap(t, n) {
			return
		}
	}
}

func (s *shadeStack) drain(visit func(mem.Ref)) {
	for n := s.top.Swap(nil); n != nil; n = n.next {
		if visit != nil {
			visit(n.v)
		}
	}
}

// CGC is the concurrent collector for one runtime instance. One cycle runs
// at a time (the runtime's single collector worker); the mutator-facing
// entry points — Marking, InScope, Shade, Epoch — are safe from any task.
type CGC struct {
	Space *mem.Space
	Tree  *hierarchy.Tree
	Chaos *chaos.Injector

	// Ring is the collector's event ring (the tracer's extra ring at index
	// P; nil in untraced runtimes). Only the collector goroutine — the one
	// running RunCycle — writes to it.
	Ring *trace.Ring

	// Attr is the collector's cost-attribution sink (nil when attribution
	// is off); single-writer, owned by the RunCycle goroutine. The
	// collector-side ShadeQueue windows — the SATB drains during mark —
	// land here, complementing the mutator-side push windows recorded in
	// entangle.ShadeOverwritten.
	Attr *attr.Sink

	phase atomic.Uint32
	epoch atomic.Uint64
	shade shadeStack

	// Worker-local cycle state.
	greys   []mem.Ref
	visited map[mem.Ref]struct{} // pass-through objects seen this cycle

	// Totals across cycles, for Runtime stats and the bench tables.
	Cycles         atomic.Int64
	MarkedObjects  atomic.Int64
	FreedWords     atomic.Int64
	SweptChunks    atomic.Int64
	RetainedTotal  atomic.Int64
	ShadedRefs     atomic.Int64
	LastLiveWords  atomic.Int64
	AbortedCycles  atomic.Int64
	SkippedHeapTot atomic.Int64
}

// NewCGC creates a concurrent collector.
func NewCGC(space *mem.Space, tree *hierarchy.Tree, in *chaos.Injector) *CGC {
	return &CGC{Space: space, Tree: tree, Chaos: in}
}

// Marking reports whether the SATB deletion barrier must be honored.
func (g *CGC) Marking() bool { return g.phase.Load() == cgcMarking }

// Epoch returns the current cycle epoch. Tasks compare their last-scanned
// epoch against it at safepoints; tasks created at the current epoch are
// born scanned (their initial roots came from an already-scanned parent).
func (g *CGC) Epoch() uint64 { return g.epoch.Load() }

// InScope reports whether r lies in a chunk the current cycle is marking.
func (g *CGC) InScope(r mem.Ref) bool {
	c := g.Space.ChunkByID(r.Chunk())
	return c != nil && c.CGCScoped()
}

// Shade pushes a reference onto the SATB queue. Callers must hold their
// own heap's reader gate across the Marking() check and this push — that
// is what lets the termination gate flush observe in-flight shades.
func (g *CGC) Shade(r mem.Ref) {
	if ch := g.Chaos; ch != nil && ch.Should(chaos.CGCShade) {
		runtime.Gosched()
	}
	g.shade.push(r)
	g.ShadedRefs.Add(1)
}

// mutatorWait blocks the collector while it waits on mutator progress (a
// safepoint handshake it cannot force). A timer sleep, not Gosched: a
// yield hands a single-P scheduler the rest of the mutator's preemption
// quantum — often milliseconds, longer than the fork–join window the cycle
// is racing — while a timer wakeup is injected back promptly on any P
// count. The 20µs grain costs a multi-P cycle nothing measurable.
func mutatorWait(spins int) {
	_ = spins
	time.Sleep(20 * time.Microsecond)
}

// snapChunk records one chunk of the snapshot with its bump offset at
// claim time; the sweep refuses chunks whose offset moved (a stolen-back
// owner carved into them).
type snapChunk struct {
	c     *mem.Chunk
	alloc int
}

// RunCycle executes one concurrent collection. The caller (the runtime's
// CGC worker) must hold whatever exclusion it grants local collections for
// the whole call; stop is polled at the long waits and aborts the cycle
// cleanly when true.
func (g *CGC) RunCycle(hs Handshaker, stop func() bool) CGCResult {
	var res CGCResult
	// Discard shades that trickled in after the previous cycle's barrier
	// turned off: their targets may since have been swept.
	g.shade.drain(nil)

	// Phase 1: snapshot. A heap is a candidate while its owner is parked in
	// a non-lazy join (hierarchy.CGCPark); the claim CAS succeeds only in
	// that state, so a claimed heap's chunks and allocator are untouched by
	// their owner for the whole cycle. The gate orders bitmap installation
	// against readers.
	var scope []*hierarchy.Heap
	snap := make(map[uint32][]snapChunk)
	for _, h := range g.Tree.Live() {
		if h.Dead() || !h.CGCClaimable() {
			continue
		}
		if !h.Gate.TryBeginCollect() {
			continue // busy (merge, LGC flush): skip this cycle
		}
		if !h.Dead() && h.CGCClaim() {
			cs := make([]snapChunk, 0, len(h.Chunks))
			for _, c := range h.Chunks {
				c.InstallMarks()
				cs = append(cs, snapChunk{c, c.Alloc})
			}
			snap[h.ID] = cs
			scope = append(scope, h)
		}
		h.Gate.EndCollect()
	}
	if len(scope) == 0 {
		return res
	}
	res.ScopeHeaps = len(scope)
	g.visited = make(map[mem.Ref]struct{}, 256)
	g.Ring.Emit(trace.EvCGCCycleBegin, 0, uint64(len(scope)), 0)

	inMark := false
	abandon := func() CGCResult {
		g.phase.Store(cgcIdle)
		for _, h := range scope {
			for _, sc := range snap[h.ID] {
				sc.c.DropMarks()
			}
			h.CGCRelease()
		}
		g.shade.drain(nil)
		g.greys = g.greys[:0]
		g.visited = nil
		res.Aborted = true
		g.AbortedCycles.Add(1)
		if inMark {
			g.Ring.Emit(trace.EvCGCMarkEnd, 0, 0, 0)
		}
		g.Ring.Emit(trace.EvCGCCycleEnd, 0, 0, 1)
		return res
	}

	// Phase 2: barrier on, then the ragged safepoint. The epoch bump comes
	// after the phase flip so a task born between the two still carries the
	// old epoch and is made to handshake.
	g.phase.Store(cgcMarking)
	epoch := g.epoch.Add(1)
	grey := func(v mem.Value) {
		if v.IsRef() {
			g.greys = append(g.greys, v.Ref())
		}
	}
	ackSpins := 0
	for !hs.ScanTasks(epoch, grey) {
		if stop() {
			return abandon()
		}
		mutatorWait(ackSpins)
		ackSpins++
	}

	// Phase 3: root harvest. Pinned objects of every live heap feed the
	// pass-through trace; remembered down-pointer fields only matter for
	// the scoped heaps themselves. Frame roots are deliberately NOT read
	// here: h.RootSets and the frames behind it are owner-mutated without
	// the gate, so touching them for a running task would race. They are
	// covered anyway — the ragged safepoint already published every task's
	// frames (claim-scan for parked tasks, cgcSafepoint self-scan for
	// running ones), and a snapshot-reachable ref that moves into a frame
	// afterwards was deleted from some field on the way, which the SATB
	// barrier shades.
	for _, h := range g.Tree.Live() {
		if h.Dead() {
			continue
		}
		h.Gate.WaitBeginCollect()
		h.ForEachPinned(func(r mem.Ref) { grey(r.Value()) })
		if _, in := snap[h.ID]; in {
			h.ForEachRemembered(func(e hierarchy.RememberedEntry) {
				hd := g.Space.Header(e.Holder)
				if !hd.Valid() || hd.Kind() == mem.KFree || hd.Kind() == mem.KForward {
					return
				}
				if n := max(hd.Len(), 1); e.Index < 0 || e.Index >= n {
					return
				}
				grey(g.Space.Load(e.Holder, e.Index))
			})
		}
		h.Gate.EndCollect()
	}

	// Phase 4+5: concurrent mark to a flushed fixpoint.
	g.Ring.Emit(trace.EvCGCMarkBegin, 0, 0, 0)
	inMark = true
	marked := int64(0)
	budget := 0
	fixSpins := 0
	drainGreys := func() {
		for len(g.greys) > 0 {
			r := g.greys[len(g.greys)-1]
			g.greys = g.greys[:len(g.greys)-1]
			if g.markRef(r) {
				marked++
			}
			if budget++; budget&1023 == 0 {
				runtime.Gosched()
			}
		}
	}
	for {
		drainGreys()
		at := g.Attr.Begin()
		g.shade.drain(func(r mem.Ref) { g.greys = append(g.greys, r) })
		g.Attr.End(attr.ShadeQueue, at)
		if len(g.greys) > 0 {
			continue
		}
		if stop() {
			return abandon()
		}
		// Candidate fixpoint: flush every live gate so any shade pushed by
		// a barrier that saw Marking()==true is now in the queue, and any
		// task mid-self-scan has finished it.
		for _, h := range g.Tree.Live() {
			if h.Dead() {
				continue
			}
			h.Gate.WaitBeginCollect()
			h.Gate.EndCollect()
		}
		at = g.Attr.Begin()
		g.shade.drain(func(r mem.Ref) { g.greys = append(g.greys, r) })
		g.Attr.End(attr.ShadeQueue, at)
		if !hs.ScanTasks(epoch, grey) {
			// A task appeared (or parked) since the last sweep of the
			// registry; fold its roots in and keep going.
			if stop() {
				return abandon()
			}
			mutatorWait(fixSpins)
			fixSpins++
			continue
		}
		if len(g.greys) == 0 {
			break
		}
	}
	res.MarkedObjects = marked
	g.Ring.Emit(trace.EvCGCMarkEnd, 0, uint64(marked), 0)
	inMark = false

	// Phase 6: barrier off, sweep. Mutators stop shading; stragglers that
	// raced the flip park harmlessly in the queue until the next cycle's
	// opening drain.
	g.phase.Store(cgcSweeping)
	g.Ring.Emit(trace.EvCGCSweepBegin, 0, 0, 0)
	for _, h := range scope {
		if !h.CGCBeginSweep() {
			// Cannot happen under the park protocol (nothing revokes a
			// claim); kept so a future revocation path degrades to
			// "conservatively live this cycle" instead of a torn sweep.
			res.SkippedHeaps++
			for _, sc := range snap[h.ID] {
				sc.c.DropMarks()
			}
			continue
		}
		h.Gate.WaitBeginCollect()
		h.DrainBuffers()
		inSnap := make(map[*mem.Chunk]int, len(snap[h.ID]))
		for _, sc := range snap[h.ID] {
			inSnap[sc.c] = sc.alloc
		}
		kept := make([]*mem.Chunk, 0, len(h.Chunks))
		for _, c := range h.Chunks {
			alloc, in := inSnap[c]
			delete(inSnap, c)
			if !in || c.Alloc != alloc {
				// Not in the snapshot, or its bump offset moved since the
				// claim. The park protocol should rule both out (no merges,
				// no owner allocation while scoped); treat any appearance as
				// allocate-black and keep the chunk wholesale.
				c.DropMarks()
				kept = append(kept, c)
				continue
			}
			if ch := g.Chaos; ch != nil && ch.Should(chaos.CGCSweep) {
				runtime.Gosched()
			}
			st, dead := g.Space.SweepMarked(c)
			res.LiveWords += int64(st.LiveWords)
			res.FreedWords += int64(st.FreedWords)
			c.DropMarks()
			if dead {
				g.Ring.Emit(trace.EvChunkRelease, 0, uint64(c.ID), uint64(len(c.Data)))
				g.Space.Release(c)
				res.SweptChunks++
				continue
			}
			res.RetainedChunks++
			kept = append(kept, c)
			if st.FreeWords >= reuseMinWords {
				h.PushReusable(c)
				g.Ring.Emit(trace.EvChunkReuse, 0, uint64(c.ID), uint64(st.FreeWords))
			}
		}
		// Snapshot chunks no longer on the list (merged away — cannot
		// happen while scoped, but stay defensive) still lose their maps.
		for c := range inSnap {
			c.DropMarks()
		}
		h.ReplaceChunks(kept)
		// Entries whose holders this cycle just freed must not survive as
		// roots; later-swept holders are caught by the KFree guards.
		h.PruneRemset(func(e hierarchy.RememberedEntry) bool {
			c := g.Space.ChunkByID(e.Holder.Chunk())
			if c == nil || c.HeapID() == 0 {
				return false
			}
			hd := g.Space.Header(e.Holder)
			return hd.Valid() && hd.Kind() != mem.KFree
		})
		h.Gate.EndCollect()
		h.CGCRelease()
	}

	g.phase.Store(cgcIdle)
	g.greys = g.greys[:0]
	g.visited = nil
	g.Cycles.Add(1)
	g.MarkedObjects.Add(res.MarkedObjects)
	g.FreedWords.Add(res.FreedWords)
	g.SweptChunks.Add(int64(res.SweptChunks))
	g.RetainedTotal.Add(int64(res.RetainedChunks))
	g.SkippedHeapTot.Add(int64(res.SkippedHeaps))
	g.LastLiveWords.Store(res.LiveWords)
	g.Ring.Emit(trace.EvCGCSweepEnd, 0, uint64(res.SweptChunks), uint64(res.RetainedChunks))
	g.Ring.Emit(trace.EvCGCCycleEnd, 0, uint64(res.FreedWords), 0)
	g.Ring.Emit(trace.EvCounter, 0, uint64(trace.CtrLiveWords), uint64(res.LiveWords))
	g.Ring.Emit(trace.EvCounter, 0, uint64(trace.CtrRetainedChunks), uint64(g.RetainedTotal.Load()))
	// Flush the collector's attribution totals onto its own ring: both
	// are owned by this goroutine, so the single-writer rule holds.
	g.Attr.EmitCounters(g.Ring, 0)
	return res
}

// markRef processes one grey reference: scoped objects get their mark bit,
// out-of-scope objects are passed through via the visited set, and either
// way scannable payloads push their reference fields. Reports whether a
// scoped object was newly marked. Every load is guarded — greys come from
// concurrently mutated fields, so a ref may be stale, forwarded, or point
// into a chunk that has since been released.
func (g *CGC) markRef(r mem.Ref) bool {
	c := g.Space.ChunkByID(r.Chunk())
	if c == nil || c.HeapID() == 0 {
		return false
	}
	off := r.Off()
	if off < 0 || off >= len(c.Data) {
		return false
	}
	hd := g.Space.Header(r)
	if !hd.Valid() {
		return false
	}
	switch hd.Kind() {
	case mem.KFree:
		return false
	case mem.KForward:
		// Chase without marking: a forwarding header is never live, and
		// sweeping it is what finally reclaims pin-retained from-space.
		if v := g.Space.Load(r, 0); v.IsRef() {
			g.greys = append(g.greys, v.Ref())
		}
		return false
	}
	newly := false
	if c.CGCScoped() {
		if !c.Mark(off) {
			return false
		}
		newly = true
	} else {
		if _, seen := g.visited[r]; seen {
			return false
		}
		g.visited[r] = struct{}{}
	}
	if ch := g.Chaos; ch != nil && ch.Should(chaos.CGCMark) {
		runtime.Gosched()
	}
	if !hd.Kind().Scanned() {
		return newly
	}
	n := hd.Len()
	if off+1+n > len(c.Data) {
		return newly
	}
	for i := 0; i < n; i++ {
		if v := g.Space.Load(r, i); v.IsRef() {
			g.greys = append(g.greys, v.Ref())
		}
	}
	return newly
}
