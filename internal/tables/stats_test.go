package tables

import (
	"math"
	"testing"
)

func TestSummarizeKnownValues(t *testing.T) {
	// 10, 20, 30, 40: mean 25, sample stddev sqrt(500/3), df=3 → t=3.182.
	s := Summarize([]float64{40, 10, 30, 20})
	if s.N != 4 || s.Min != 10 || s.Max != 40 || s.Mean != 25 {
		t.Fatalf("summary %+v: want N=4 min=10 mean=25 max=40", s)
	}
	wantSD := math.Sqrt(500.0 / 3.0)
	if math.Abs(s.Stddev-wantSD) > 1e-9 {
		t.Errorf("stddev %v, want %v", s.Stddev, wantSD)
	}
	wantCI := 3.182 * wantSD / 2
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Errorf("ci95 %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty input: %+v, want zero", s)
	}
	// One sample: min = mean = max, no dispersion estimate.
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Mean != 7 || s.Max != 7 || s.CI95 != 0 || s.Stddev != 0 {
		t.Errorf("single sample: %+v", s)
	}
	// Identical samples: zero-width interval.
	s = Summarize([]float64{3, 3, 3})
	if s.Stddev != 0 || s.CI95 != 0 {
		t.Errorf("constant samples: stddev %v ci %v, want 0", s.Stddev, s.CI95)
	}
}

func TestTCritTailsIntoNormal(t *testing.T) {
	if tCrit(0) != 0 {
		t.Errorf("tCrit(0) = %v", tCrit(0))
	}
	if tCrit(1) != 12.706 {
		t.Errorf("tCrit(1) = %v", tCrit(1))
	}
	if tCrit(30) != 2.042 {
		t.Errorf("tCrit(30) = %v", tCrit(30))
	}
	if tCrit(1000) != 1.96 {
		t.Errorf("tCrit(1000) = %v, want normal approximation", tCrit(1000))
	}
}

func TestSummarizeNSAndMinNS(t *testing.T) {
	s := SummarizeNS([]int64{300, 100, 200})
	if s.N != 3 || s.Min != 100 || s.Mean != 200 || s.Max != 300 {
		t.Errorf("SummarizeNS: %+v", s)
	}
	if m := MinNS([]int64{5, 2, 9}); m != 2 {
		t.Errorf("MinNS = %d, want 2", m)
	}
	if m := MinNS(nil); m != 0 {
		t.Errorf("MinNS(nil) = %d, want 0", m)
	}
}
