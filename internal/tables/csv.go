package tables

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Table is a validated rectangular table on its way to a CSV file. The
// experiment-grid outputs (samples.csv, summary_grouped.csv, the speedup
// and overhead tables) are all built as Tables so one validator covers
// them: every writer refuses to emit a malformed table, which is what the
// paper-runner's "no unvalidated tables" guarantee rests on.
type Table struct {
	Name   string // file stem, used in error messages
	Header []string
	Rows   [][]string
}

// Append adds one row.
func (t *Table) Append(cells ...string) { t.Rows = append(t.Rows, cells) }

// Validate checks the table is well-formed: a non-empty header of unique
// non-empty column names, every row exactly as wide as the header, and no
// empty, NaN, or infinite cells (a NaN in a ratio column means a divide
// upstream went wrong — better to fail the run than to typeset it).
func (t *Table) Validate() error {
	if len(t.Header) == 0 {
		return fmt.Errorf("table %s: empty header", t.Name)
	}
	seen := make(map[string]bool, len(t.Header))
	for _, h := range t.Header {
		if h == "" {
			return fmt.Errorf("table %s: empty column name", t.Name)
		}
		if seen[h] {
			return fmt.Errorf("table %s: duplicate column %q", t.Name, h)
		}
		seen[h] = true
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("table %s: row %d has %d cells, header has %d",
				t.Name, i, len(row), len(t.Header))
		}
		for j, cell := range row {
			if cell == "" {
				return fmt.Errorf("table %s: row %d: empty %s", t.Name, i, t.Header[j])
			}
			switch strings.ToLower(cell) {
			case "nan", "+inf", "-inf", "inf":
				return fmt.Errorf("table %s: row %d: %s = %s", t.Name, i, t.Header[j], cell)
			}
		}
	}
	return nil
}

// Col returns the index of the named column, -1 if absent.
func (t *Table) Col(name string) int {
	for i, h := range t.Header {
		if h == name {
			return i
		}
	}
	return -1
}

// Float parses the named column of row i.
func (t *Table) Float(i int, name string) (float64, error) {
	c := t.Col(name)
	if c < 0 {
		return 0, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	return strconv.ParseFloat(t.Rows[i][c], 64)
}

// WriteCSV validates the table and writes it as CSV (header first).
func WriteCSV(w io.Writer, t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile validates and writes the table to path.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSVFile loads a CSV written by WriteCSVFile back into a Table
// (named after the path) and validates it, so a consumer of a checked-in
// table starts from the same well-formedness guarantee the writer gave.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%s: empty file", path)
	}
	t := &Table{Name: path, Header: records[0], Rows: records[1:]}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
