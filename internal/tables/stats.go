package tables

import "math"

// Summary is the grouped statistic the experiment harness reports for a
// set of repeated wall-clock samples: the noise-robust minimum (the gated
// statistic — outside interference only ever adds time), the mean, and a
// 95% confidence interval on the mean so drift is visible per entry
// instead of only across baselines.
type Summary struct {
	N      int
	Min    float64
	Mean   float64
	Max    float64
	Stddev float64 // sample standard deviation (n-1)
	CI95   float64 // 95% CI half-width on the mean (Student's t)
}

// tCrit95 holds the two-sided 95% Student's t critical values for small
// degrees of freedom; beyond the table the normal approximation (1.96) is
// within a percent. Repeat counts in this harness are 3–15, squarely in
// the range where 1.96 would understate the interval.
var tCrit95 = []float64{
	0,                                                             // df=0 (unused)
	12.706,                                                        // df=1
	4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // df=2..10
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // df=11..20
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // df=21..30
}

func tCrit(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df < len(tCrit95) {
		return tCrit95[df]
	}
	return 1.96
}

// Summarize computes the grouped statistics of samples. An empty input
// yields the zero Summary; a single sample has Min = Mean = Max and a zero
// CI (no dispersion estimate exists).
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = tCrit(s.N-1) * s.Stddev / math.Sqrt(float64(s.N))
	return s
}

// SummarizeNS is Summarize over integer nanosecond samples, the shape the
// bench harness records.
func SummarizeNS(samples []int64) Summary {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return Summarize(fs)
}

// MinNS returns the smallest sample, 0 for an empty slice.
func MinNS(samples []int64) int64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
