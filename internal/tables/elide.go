package tables

import (
	"fmt"
	"io"
	"time"

	"mplgo/internal/mlang"
	"mplgo/mpl"
)

// The elision ablation: each mlang benchmark is run twice on one
// processor — checked (every access through the managed barriers) and
// elided (unchecked opcodes wherever the disentanglement analysis proved
// safety) — and the table reports the wall-clock delta plus how much
// access traffic the analysis moved off the managed path. The entangled
// control (handoff) demonstrates the fallback boundary: its delta is ~1x
// and its entangled reads are identical in both modes.

// ElideRow is one row of the elision ablation.
type ElideRow struct {
	Name          string
	TChecked      time.Duration // managed barriers everywhere, P=1
	TElided       time.Duration // proven sites unchecked, P=1
	Ratio         float64       // TElided / TChecked
	StaticRegions int64
	ElidedLoads   int64
	ElidedStores  int64
	EntReads      int64 // entangled reads of the elided run
}

// Benchmark sources are embedded (scaled-up versions of
// examples/mlang/programs) so the table does not depend on repo-relative
// paths at run time.
var elideBenchmarks = []struct {
	name string
	src  string
}{
	// refloop is the access-dominated case: nearly every instruction is a
	// barriered deref/assign, so it bounds the elision win from above. The
	// data-parallel benchmarks pay a closure call per element, which caps
	// their barrier share (and therefore their delta) much lower.
	{"refloop", `
let val c = ref 0 in
let fun outer k =
  if k = 0 then !c
  else
    let fun go i =
      if i = 0 then ()
      else (c := !c + 1; go (i - 1))
    in (go 20000; outer (k - 1)) end
in outer 60 end end`},
	{"psum", `reduce (tabulate (300000, fn i => i * i), 0, fn a => fn b => a + b)`},
	{"sieve", `
let val n = 20000 in
let val composite = array (n, false) in
let fun markFrom p =
  let fun go k =
    if p * k >= n then ()
    else (update (composite, p * k, true); go (k + 1))
  in go 2 end in
let fun count i =
  if i >= n then 0
  else if not (sub (composite, i)) then (markFrom i; 1 + count (i + 1))
  else count (i + 1)
in count 2 end end end end`},
	{"histogram", `
let val n = 60000 in
let val bins = 8 in
let val h = tabulate (bins, fn b =>
  reduce (tabulate (n, fn i => if (i * i) mod bins = b then 1 else 0), 0,
          fn x => fn y => x + y)) in
reduce (tabulate (bins, fn b => sub (h, b) * (b + 1)), 0, fn x => fn y => x + y)
end end end`},
	{"handoff", `
let val cell = ref (ref 0) in
let val p = par (
    (cell := ref 41; 1),
    let fun poll u =
      let val v = ! (!cell) in
      if v = 41 then v + 1 else poll ()
      end
    in poll () end)
in #2 p end end`},
}

// elideReps mirrors timeReps' best-of-N discipline at a size that keeps
// the ablation quick: the ratio column divides two timings of the same
// program, so the minimum over a few runs is stable enough.
const elideReps = 5

// ElideTable measures the elision-on/off ablation and writes the table.
func ElideTable(w io.Writer) []ElideRow {
	var rows []ElideRow
	fmt.Fprintf(w, "# E: barrier elision — checked vs elided, P=1\n")
	fmt.Fprintf(w, "%-10s %10s %10s %7s %8s %11s %11s %9s\n",
		"benchmark", "Tchecked", "Telided", "ratio", "regions", "el.loads", "el.stores", "ent.reads")
	for _, b := range elideBenchmarks {
		var checked, elided time.Duration
		var last *mlang.Result
		var want string
		for r := 0; r < elideReps; r++ {
			start := time.Now()
			res, err := mlang.RunChecked(b.src, mpl.Config{Procs: 1})
			d := time.Since(start)
			if err != nil {
				fmt.Fprintf(w, "%-10s checked run failed: %v\n", b.name, err)
				return rows
			}
			if r == 0 {
				want = res.Rendered
				checked = d
			} else if d < checked {
				checked = d
			}
		}
		for r := 0; r < elideReps; r++ {
			start := time.Now()
			res, err := mlang.Run(b.src, mpl.Config{Procs: 1})
			d := time.Since(start)
			if err != nil {
				fmt.Fprintf(w, "%-10s elided run failed: %v\n", b.name, err)
				return rows
			}
			if res.Rendered != want {
				fmt.Fprintf(w, "%-10s MODE DIVERGENCE: checked %q, elided %q\n", b.name, want, res.Rendered)
				return rows
			}
			if r == 0 || d < elided {
				elided = d
			}
			last = res
		}
		es := last.Runtime.ElisionStats()
		row := ElideRow{
			Name: b.name, TChecked: checked, TElided: elided,
			Ratio:         ratio(elided, checked),
			StaticRegions: es.StaticRegions,
			ElidedLoads:   es.ElidedLoads,
			ElidedStores:  es.ElidedStores,
			EntReads:      last.Runtime.EntStats().EntangledReads,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %10s %10s %6.2fx %8d %11d %11d %9d\n",
			row.Name, fmtD(row.TChecked), fmtD(row.TElided), row.Ratio,
			row.StaticRegions, row.ElidedLoads, row.ElidedStores, row.EntReads)
	}
	return rows
}
