package tables

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchEntry is one per-benchmark record of the machine-readable report:
// the measured sequential baseline, single-processor hierarchical time,
// the simulated 64-processor point, and the derived ratios the T1 table
// prints.
type BenchEntry struct {
	Name      string  `json:"name"`
	Entangled bool    `json:"entangled"`
	TseqNS    int64   `json:"tseq_ns"`
	T1NS      int64   `json:"t1_ns"`
	T64SimNS  int64   `json:"t64_sim_ns"`
	Overhead  float64 `json:"overhead"`  // T1 / Tseq
	Speedup64 float64 `json:"speedup64"` // Tseq / T64(sim)

	// Per-repeat samples and their 95% confidence intervals. TseqNS/T1NS
	// above are best-of-N (the gated, noise-robust statistic); the samples
	// make drift visible per entry instead of only across baselines — a
	// wide CI on a regressed entry says "noisy box", a tight one says
	// "real". Never gated on.
	TseqSamplesNS []int64 `json:"tseq_samples_ns,omitempty"`
	T1SamplesNS   []int64 `json:"t1_samples_ns,omitempty"`
	TseqCI95NS    int64   `json:"tseq_ci95_ns,omitempty"` // half-width on the mean
	T1CI95NS      int64   `json:"t1_ci95_ns,omitempty"`   // half-width on the mean

	// T4 entanglement cost metrics of the T1 run: how hard the slow path
	// was exercised and what it cost in pinned memory. Zero for the
	// disentangled suite.
	EntReads        int64 `json:"ent_reads"`
	Pins            int64 `json:"pins"`
	PinnedPeakBytes int64 `json:"pinned_peak_bytes"`

	// Space trajectory of the T1 run: pin-retained chunks, max residency in
	// words, and completed concurrent-collection cycles (zero unless the run
	// enabled the concurrent collector). Never gated on — CompareBenchReports
	// gates only the overhead ratio — but tracked so space regressions are
	// visible in the BENCH_*.json diffs.
	RetainedChunks int64 `json:"retained_chunks"`
	LiveWords      int64 `json:"live_words"`
	CGCCycles      int64 `json:"cgc_cycles"`

	// Barrier-elision coverage of the T1 run — also never gated, tracked so
	// the trajectory shows how much of each benchmark's access traffic the
	// static disentanglement analysis removed from the managed path. Zero
	// for the Go-native suite (no front-end analysis).
	StaticRegions int64 `json:"static_regions"`
	ElidedLoads   int64 `json:"elided_loads"`
	ElidedStores  int64 `json:"elided_stores"`

	// Sampled time-series of the retention counters from one extra traced
	// (untimed) run, so the JSON trail shows the *shape* of retention —
	// a pin leak that drains by the end of the run has the same final
	// retained_chunks as a healthy run, but a very different series.
	RetainedSeries   []CounterPoint `json:"retained_chunks_series,omitempty"`
	PinnedPeakSeries []CounterPoint `json:"pinned_peak_bytes_series,omitempty"`

	// Cost-attribution decomposition from `mplgo-bench -exp attr`: the
	// sampled estimate of where the T1−Tseq gap goes, per slow-path
	// component (attr.Component slugs). From a separate attributed run,
	// merged into the report by MergeAttrJSON — never gated, like every
	// column other than Overhead; it exists so the trajectory shows
	// *which* cost moved when the overhead ratio does.
	AttrPeriod   int64            `json:"attr_period,omitempty"`
	AttrGapNS    int64            `json:"attr_gap_ns,omitempty"`
	AttrCoverage float64          `json:"attr_coverage,omitempty"` // Σ est_ns / gap
	AttrNS       map[string]int64 `json:"attr_ns,omitempty"`       // slug → est total ns
	AttrSamples  map[string]int64 `json:"attr_samples,omitempty"`  // slug → sample count

	// Server-load latency columns, written by cmd/mplgo-load for the
	// examples/server workload. These entries have no Tseq/T1 pair — they
	// come from an open-loop wall-clock run, not the timed bench harness —
	// so CompareBenchReports never gates on them (Overhead is zero);
	// they ride in the JSON purely as a tracked latency/goodput
	// trajectory. Latencies are measured from each request's *scheduled*
	// arrival (open loop — queueing and retry backoff count), over
	// completed requests only.
	LatP50NS    int64   `json:"lat_p50_ns,omitempty"`
	LatP99NS    int64   `json:"lat_p99_ns,omitempty"`
	LatP999NS   int64   `json:"lat_p999_ns,omitempty"`
	OfferedRPS  float64 `json:"offered_rps,omitempty"`
	GoodputRPS  float64 `json:"goodput_rps,omitempty"`
	ReqAdmitted int64   `json:"requests_admitted,omitempty"`
	ReqShed     int64   `json:"requests_shed,omitempty"`
	ReqDeadline int64   `json:"requests_deadline_exceeded,omitempty"`
}

// BenchReport is the top-level JSON document written beside the tables so
// perf work has a tracked trajectory: each run of `mplgo-bench -exp time`
// drops a BENCH_<timestamp>.json that later runs (and reviewers) can diff.
type BenchReport struct {
	Timestamp  string `json:"timestamp"` // RFC 3339, UTC
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      int    `json:"scale"` // problem-size divisor the run used
	// Host fingerprints the machine the report was measured on. The CI
	// bench gate compares it against the current host and downgrades
	// regressions to warnings when they differ — a baseline from another
	// box bounds nothing (PR 8's 10–30% drift story, retired).
	Host       *Fingerprint `json:"host,omitempty"`
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// WriteBenchJSON serializes the T1 rows to path as an indented JSON
// report stamped with the given RFC 3339 timestamp.
func WriteBenchJSON(rows []TimeRow, timestamp string, scale int, path string) error {
	rep := BenchReport{
		Timestamp:  timestamp,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Host:       CurrentFingerprint(),
	}
	for _, r := range rows {
		rep.Benchmarks = append(rep.Benchmarks, BenchEntry{
			Name:             r.Name,
			Entangled:        r.Entangled,
			TseqNS:           r.Tseq.Nanoseconds(),
			T1NS:             r.T1.Nanoseconds(),
			TseqSamplesNS:    durationsNS(r.TseqSamples),
			T1SamplesNS:      durationsNS(r.T1Samples),
			TseqCI95NS:       int64(SummarizeNS(durationsNS(r.TseqSamples)).CI95),
			T1CI95NS:         int64(SummarizeNS(durationsNS(r.T1Samples)).CI95),
			T64SimNS:         r.T64.Nanoseconds(),
			Overhead:         r.Overhead,
			Speedup64:        r.Speedup64,
			EntReads:         r.EntReads,
			Pins:             r.Pins,
			PinnedPeakBytes:  r.PinnedPeakBytes,
			RetainedChunks:   r.RetainedChunks,
			LiveWords:        r.LiveWords,
			CGCCycles:        r.CGCCycles,
			StaticRegions:    r.StaticRegions,
			ElidedLoads:      r.ElidedLoads,
			ElidedStores:     r.ElidedStores,
			RetainedSeries:   r.RetainedSeries,
			PinnedPeakSeries: r.PinnedPeakSeries,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func durationsNS(ds []time.Duration) []int64 {
	if len(ds) == 0 {
		return nil
	}
	out := make([]int64, len(ds))
	for i, d := range ds {
		out[i] = d.Nanoseconds()
	}
	return out
}

// WriteReport serializes an already-assembled report to path — the
// update path for tools (cmd/mplgo-load) that merge entries into an
// existing BENCH_*.json rather than generating one from TimeRows.
func WriteReport(rep *BenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON loads a previously written bench report.
func ReadBenchJSON(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// gateFloorNS exempts very short benchmarks from the regression gate:
// below ~2ms of T1, the overhead ratio is dominated by timer granularity
// and process-level mode switches (observed as stable ±25% bimodality even
// under best-of-N sampling), so gating on it would only produce flakes.
// The entries are still recorded in the JSON for the perf trajectory.
const gateFloorNS = 2_000_000

// CompareBenchReports checks fresh against base and returns one line per
// benchmark whose T1 overhead (T1/Tseq) regressed by more than tolerance
// (e.g. 0.15 for 15%). Overhead is a ratio of two timings from the same
// run, so it is far more stable across machines and load than raw
// nanoseconds — that is what makes it usable as a CI gate. Benchmarks
// missing from either report, and ones faster than gateFloorNS, are
// skipped (the suite may grow).
func CompareBenchReports(base, fresh *BenchReport, tolerance float64) []string {
	baseline := make(map[string]BenchEntry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseline[e.Name] = e
	}
	var regressions []string
	for _, e := range fresh.Benchmarks {
		b, ok := baseline[e.Name]
		if !ok || b.Overhead <= 0 {
			continue
		}
		if e.T1NS < gateFloorNS && b.T1NS < gateFloorNS {
			continue
		}
		if e.Overhead > b.Overhead*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: overhead %.2fx vs baseline %.2fx (+%.0f%%, tolerance %.0f%%)",
					e.Name, e.Overhead, b.Overhead,
					(e.Overhead/b.Overhead-1)*100, tolerance*100))
		}
	}
	return regressions
}
