package tables

import (
	"encoding/json"
	"os"
	"runtime"
)

// BenchEntry is one per-benchmark record of the machine-readable report:
// the measured sequential baseline, single-processor hierarchical time,
// the simulated 64-processor point, and the derived ratios the T1 table
// prints.
type BenchEntry struct {
	Name      string  `json:"name"`
	Entangled bool    `json:"entangled"`
	TseqNS    int64   `json:"tseq_ns"`
	T1NS      int64   `json:"t1_ns"`
	T64SimNS  int64   `json:"t64_sim_ns"`
	Overhead  float64 `json:"overhead"`  // T1 / Tseq
	Speedup64 float64 `json:"speedup64"` // Tseq / T64(sim)
}

// BenchReport is the top-level JSON document written beside the tables so
// perf work has a tracked trajectory: each run of `mplgo-bench -exp time`
// drops a BENCH_<timestamp>.json that later runs (and reviewers) can diff.
type BenchReport struct {
	Timestamp  string       `json:"timestamp"` // RFC 3339, UTC
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Scale      int          `json:"scale"` // problem-size divisor the run used
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// WriteBenchJSON serializes the T1 rows to path as an indented JSON
// report stamped with the given RFC 3339 timestamp.
func WriteBenchJSON(rows []TimeRow, timestamp string, scale int, path string) error {
	rep := BenchReport{
		Timestamp:  timestamp,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	for _, r := range rows {
		rep.Benchmarks = append(rep.Benchmarks, BenchEntry{
			Name:      r.Name,
			Entangled: r.Entangled,
			TseqNS:    r.Tseq.Nanoseconds(),
			T1NS:      r.T1.Nanoseconds(),
			T64SimNS:  r.T64.Nanoseconds(),
			Overhead:  r.Overhead,
			Speedup64: r.Speedup64,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
