package tables

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Fingerprint identifies the host a measurement ran on. Every BENCH_*.json
// and every experiment-grid cell is stamped with one, so a reviewer — or
// the CI gate — can tell whether two reports are comparable at all before
// arguing about a 10–30% drift between them. Matches deliberately compares
// only the stable hardware/toolchain fields; load average and commit are
// context, not identity.
type Fingerprint struct {
	Cores      int    `json:"cores"`      // runtime.NumCPU at capture time
	GOMAXPROCS int    `json:"gomaxprocs"` // effective Go parallelism cap
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	Hostname   string `json:"hostname,omitempty"`
	Commit     string `json:"commit,omitempty"`      // git HEAD, best effort
	LoadAvg1M  string `json:"load_avg_1m,omitempty"` // 1-minute load average, best effort
}

// CurrentFingerprint captures the host running this process. The commit
// and load-average fields are best-effort (empty outside a git checkout or
// on systems without /proc/loadavg) and never affect Matches.
func CurrentFingerprint() *Fingerprint {
	f := &Fingerprint{
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if h, err := os.Hostname(); err == nil {
		f.Hostname = h
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		f.Commit = strings.TrimSpace(string(out))
	}
	if data, err := os.ReadFile("/proc/loadavg"); err == nil {
		if fields := strings.Fields(string(data)); len(fields) > 0 {
			f.LoadAvg1M = fields[0]
		}
	}
	return f
}

// Matches reports whether two fingerprints describe comparable
// measurement hosts: same core count, same GOMAXPROCS, same toolchain,
// same OS/architecture. Nil on either side never matches — a report
// without a fingerprint (pre-stamping baselines) cannot be trusted to
// come from this machine.
func (f *Fingerprint) Matches(other *Fingerprint) bool {
	if f == nil || other == nil {
		return false
	}
	return f.Cores == other.Cores &&
		f.GOMAXPROCS == other.GOMAXPROCS &&
		f.GoVersion == other.GoVersion &&
		f.OS == other.OS &&
		f.Arch == other.Arch
}

// EffectiveProcs caps a requested worker count at the hardware parallelism
// this fingerprint describes: scheduling P workers onto fewer cores is a
// legitimate oversubscription experiment, but Brent's bound — and any
// speedup prediction — must be stated at min(P, cores).
func (f *Fingerprint) EffectiveProcs(p int) int {
	if f == nil || f.Cores <= 0 || p <= f.Cores {
		if p < 1 {
			return 1
		}
		return p
	}
	return f.Cores
}

func (f *Fingerprint) String() string {
	if f == nil {
		return "<no fingerprint>"
	}
	s := fmt.Sprintf("%d cores, GOMAXPROCS=%d, %s %s/%s",
		f.Cores, f.GOMAXPROCS, f.GoVersion, f.OS, f.Arch)
	if f.LoadAvg1M != "" {
		s += ", load " + f.LoadAvg1M
	}
	if f.Commit != "" {
		s += ", @" + f.Commit
	}
	return s
}

// ParseLoadAvg returns the numeric 1-minute load average, 0 if unset or
// malformed (the field is informational either way).
func (f *Fingerprint) ParseLoadAvg() float64 {
	if f == nil || f.LoadAvg1M == "" {
		return 0
	}
	v, err := strconv.ParseFloat(f.LoadAvg1M, 64)
	if err != nil {
		return 0
	}
	return v
}
