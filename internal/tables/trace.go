package tables

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mplgo/internal/attr"
	"mplgo/internal/bench"
	"mplgo/internal/trace"
	"mplgo/mpl"
)

// CounterPoint is one sample of a traced runtime counter: the value the
// runtime reported at TNS nanoseconds into the traced run.
type CounterPoint struct {
	TNS int64 `json:"t_ns"`
	V   int64 `json:"v"`
}

// seriesPoints bounds the counter series recorded into the bench JSON;
// longer traces are downsampled evenly so the report stays diffable.
const seriesPoints = 32

// counterSeries extracts the time-series of one counter from a trace
// snapshot, merged across rings, time-ordered, and downsampled to at most
// seriesPoints samples (the last sample is always kept). A series that
// never leaves zero is dropped entirely — a disentangled benchmark emits
// the pinned-bytes counters at every join, and 32 zero points per
// benchmark would only pad the JSON diffs.
func counterSeries(snap [][]trace.Event, ctr trace.Counter) []CounterPoint {
	var pts []CounterPoint
	nonzero := false
	for _, ring := range snap {
		for _, e := range ring {
			if e.Kind == trace.EvCounter && trace.Counter(e.Arg1) == ctr {
				pts = append(pts, CounterPoint{TNS: e.TS, V: int64(e.Arg2)})
				nonzero = nonzero || e.Arg2 != 0
			}
		}
	}
	if !nonzero {
		return nil
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].TNS < pts[j].TNS })
	if len(pts) <= seriesPoints {
		return pts
	}
	out := make([]CounterPoint, 0, seriesPoints)
	stride := float64(len(pts)-1) / float64(seriesPoints-1)
	for i := 0; i < seriesPoints; i++ {
		out = append(out, pts[int(float64(i)*stride+0.5)])
	}
	out[seriesPoints-1] = pts[len(pts)-1]
	return out
}

// tracedSeries reruns one benchmark (untimed) with a tracer installed and
// returns the sampled retained-chunks and pinned-peak-bytes series. The
// timed measurements never see a tracer — this run exists only to attach
// a space trajectory to the bench JSON.
func tracedSeries(b bench.Benchmark, n int) (retained, pinnedPeak []CounterPoint) {
	tr := mpl.NewTracer(1, 0)
	mpl.TraceEnable()
	runMPL(b, n, mpl.Config{Procs: 1, Tracer: tr})
	mpl.TraceDisable()
	snap := tr.Snapshot()
	return counterSeries(snap, trace.CtrRetainedChunks),
		counterSeries(snap, trace.CtrPinnedPeakBytes)
}

// attrReps is how many times the attribution path measures each side,
// keeping the fastest (the gap denominator is a wall-clock difference,
// so the usual best-of-N noise discipline applies — a noise-inflated
// attributed wall directly deflates the reported coverage). The runs
// are untimed-experiment territory, so the only cost of a deep best-of
// is a few extra seconds; on this box the minimum stops moving around
// rep 12–15.
const attrReps = 15

// attrPeriod is the sampling period the attribution experiments use:
// denser than attr.DefaultPeriod because these runs are untimed, so the
// only cost of more samples is lower estimator variance (a short
// benchmark at 1/1024 yields under a hundred samples — too few for a
// stable decomposition).
const attrPeriod = 128

// attributeRun measures the sequential baseline and an attributed,
// untraced P=1 run (both best of attrReps) and returns the snapshot of
// the fastest attributed run — gap and samples must come from the same
// run or the coverage ratio compares different executions. The
// attributed run is taken at P=1 regardless of the trace's worker
// count: the decomposition's denominator is the paper's T1−Tseq
// overhead gap, which is defined at one processor.
func attributeRun(b bench.Benchmark, n int) (snap *attr.Snapshot, attrWall, tseq time.Duration) {
	_, tseq, _ = runGlobal(b, n)
	for r := 1; r < attrReps; r++ {
		if _, t, _ := runGlobal(b, n); t < tseq {
			tseq = t
		}
	}
	attr.Enable()
	for r := 0; r < attrReps; r++ {
		prof := attr.NewProfiler(1, attrPeriod)
		_, wall, _ := runMPL(b, n, mpl.Config{Procs: 1, Attr: prof})
		if r == 0 || wall < attrWall {
			attrWall, snap = wall, prof.Snapshot()
		}
	}
	attr.Disable()
	return snap, attrWall, tseq
}

// TraceRun executes one benchmark with tracing enabled and writes the
// Chrome trace_event export to tracePath (stdout if "-"). The run is not
// timed — its point is the trace, which cmd/mplgo-trace summarizes and
// Perfetto renders. A cost-attribution decomposition of the T1−Tseq gap
// (from a separate untraced, attributed run — the traced run itself is
// never attributed, so neither measurement perturbs the other) is
// stamped into the export as attr_* counters for mplgo-trace -attr.
// Returns the number of events captured.
func TraceRun(name string, sizes map[string]int, procs int, w io.Writer, tracePath string) (int, error) {
	b, ok := bench.ByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown benchmark %q", name)
	}
	n := size(b, sizes)
	snap, attrWall, tseq := attributeRun(b, n)

	tr := mpl.NewTracer(procs, 0)
	mpl.TraceEnable()
	_, wall, _ := runMPL(b, n, mpl.Config{Procs: procs, Tracer: tr})
	// The pool has drained, so stamping ring 0 from here cannot race its
	// former owner (the single-writer rule the rings live by).
	attr.EmitSnapshot(snap, tr.Ring(0), attrWall.Nanoseconds(), tseq.Nanoseconds())
	mpl.TraceDisable()

	events := 0
	for _, ring := range tr.Snapshot() {
		events += len(ring)
	}

	out := os.Stdout
	if tracePath != "-" {
		f, err := os.Create(tracePath)
		if err != nil {
			return events, err
		}
		defer f.Close()
		out = f
	}
	if err := mpl.WriteChrome(out, tr); err != nil {
		return events, err
	}
	gap := attrWall - tseq
	cov := 0.0
	if gap > 0 {
		cov = 100 * float64(snap.TotalEstNS()) / float64(gap)
	}
	fmt.Fprintf(w, "# trace: %s n=%d procs=%d wall=%s events=%d -> %s\n",
		b.Name, n, procs, fmtD(wall), events, tracePath)
	fmt.Fprintf(w, "# attr:  T1=%s Tseq=%s gap=%s, sampled est %s (%.0f%% coverage)\n",
		fmtD(attrWall), fmtD(tseq), fmtD(gap), fmtD(time.Duration(snap.TotalEstNS())), cov)
	return events, nil
}
