// Package tables regenerates the paper's tables and figures (experiment
// index in DESIGN.md §5). Each experiment runs benchmarks from package
// bench on the hierarchical runtime, the global-heap baseline, and native
// Go, and prints rows shaped like the paper's artifacts.
//
// Wall-clock measurements are taken at P=1 (real, on this machine); the
// multi-processor points come from the deterministic trace-and-replay
// simulator (package sim), per the substitution documented in DESIGN.md.
// The scaled estimate for processor count P is
//
//	T_P(est) = T_1(wall) × Replay(trace, P) / Replay(trace, 1)
//
// i.e. the simulator supplies the *shape* and the wall clock supplies the
// unit.
package tables

import (
	"fmt"
	"io"
	"time"

	"mplgo/internal/bench"
	"mplgo/internal/globalrt"
	"mplgo/internal/sim"
	"mplgo/mpl"
)

// StealCost is the simulator's strand-migration latency in abstract work
// units (roughly: words of allocation).
const StealCost = 200

// MaxP is the largest simulated machine, matching the paper's 72-core
// testbed order of magnitude.
const MaxP = 64

// Ps is the processor-count sweep used by the curves.
var Ps = []int{1, 2, 4, 8, 16, 32, 64}

// runMPL executes one benchmark on the hierarchical runtime and reports
// its checksum, wall time, and the runtime (for stats and the trace).
func runMPL(b bench.Benchmark, n int, cfg mpl.Config) (int64, time.Duration, *mpl.Runtime) {
	rt := mpl.New(cfg)
	var got int64
	start := time.Now()
	_, err := rt.Run(func(t *mpl.Task) mpl.Value {
		got = b.MPL(t, n)
		return mpl.Int(got)
	})
	wall := time.Since(start)
	if err != nil && cfg.Mode != mpl.Detect {
		panic(fmt.Sprintf("tables: %s failed: %v", b.Name, err))
	}
	return got, wall, rt
}

func runGlobal(b bench.Benchmark, n int) (int64, time.Duration, *globalrt.Runtime) {
	g := globalrt.New(0)
	start := time.Now()
	got := b.Global(g, n)
	return got, time.Since(start), g
}

func runNative(b bench.Benchmark, n int) (int64, time.Duration) {
	start := time.Now()
	got := b.Native(n)
	return got, time.Since(start)
}

// scale estimates T_P from a 1-processor wall time and a recorded trace.
func scale(wall time.Duration, trace *sim.Node, p int) time.Duration {
	if trace == nil {
		return wall
	}
	t1 := sim.Replay(trace, sim.ReplayConfig{P: 1, StealCost: StealCost}).Makespan
	tp := sim.Replay(trace, sim.ReplayConfig{P: p, StealCost: StealCost}).Makespan
	if t1 == 0 {
		return wall
	}
	return time.Duration(float64(wall) * float64(tp) / float64(t1))
}

// TimeRow is one row of experiment T1.
type TimeRow struct {
	Name      string
	Entangled bool
	Tseq      time.Duration // global-heap sequential baseline ("MLton")
	T1        time.Duration // hierarchical runtime, one processor (wall)
	T64       time.Duration // scaled estimate at 64 processors
	Overhead  float64       // T1 / Tseq
	Speedup64 float64       // Tseq / T64

	// T4-style entanglement cost metrics of the T1 run, carried into the
	// bench JSON so the perf trajectory tracks slow-path costs, not just
	// wall-clock.
	EntReads        int64 // entangled reads
	Pins            int64 // objects newly pinned
	PinnedPeakBytes int64 // high-water mark of pinned bytes

	// Memory-retention counters of the T1 run, so the perf trajectory
	// tracks space behavior alongside time: chunks the local collector kept
	// alive only for their pinned objects, the run's max residency, and
	// completed concurrent-collection cycles (zero unless the run enables
	// Config.CGC).
	RetainedChunks int64 // pin-retained chunks (LGC)
	LiveWords      int64 // max residency of the T1 run, in words
	CGCCycles      int64 // completed concurrent cycles

	// Barrier-elision coverage of the T1 run (zero for the Go-native
	// benchmarks, which have no static analysis; populated by mlang-driven
	// runs). Carried into the bench JSON as trajectory columns — never
	// gated.
	StaticRegions int64 // statically-proven disentangled regions
	ElidedLoads   int64 // unchecked loads executed
	ElidedStores  int64 // unchecked stores executed

	// Sampled time-series of the retention counters, harvested from one
	// extra traced (and untimed) run — the timed measurements above never
	// see a tracer. Each point is (ns into the run, counter value); the
	// series is downsampled to at most seriesPoints samples.
	RetainedSeries   []CounterPoint // retained_chunks over time
	PinnedPeakSeries []CounterPoint // pinned_peak_bytes over time

	// Every repeat's wall time, in measurement order. Tseq/T1 above are
	// the best-of-N minima; the samples let the JSON report carry a 95%
	// CI per entry, so per-entry drift is distinguishable from noise.
	TseqSamples []time.Duration
	T1Samples   []time.Duration
}

// timeReps is how many times TimeTable measures each configuration,
// keeping the fastest run. The overhead column is a ratio of two
// wall-clock timings; a single sample of each is at the mercy of scheduler
// and machine noise (the concurrency-heavy benchmarks swing ±30% run to
// run), which made the JSON report useless as a regression gate. The
// minimum is the standard noise-robust statistic for benchmarks: outside
// interference only ever adds time.
const timeReps = 15

// TimeTable reproduces the paper's time table (T1): sequential baseline,
// single-processor overhead, and 64-processor speedup for the full suite.
func TimeTable(sizes map[string]int, w io.Writer) []TimeRow {
	var rows []TimeRow
	fmt.Fprintf(w, "# T1: time — overhead (T1/Tseq) and speedup (Tseq/T64)\n")
	fmt.Fprintf(w, "%-10s %5s %10s %10s %10s %9s %9s\n",
		"benchmark", "ent", "Tseq", "T1", "T64(sim)", "ovrhd", "speedup")
	for _, b := range bench.All {
		n := size(b, sizes)
		_, tseq, _ := runGlobal(b, n)
		tseqSamples := []time.Duration{tseq}
		for r := 1; r < timeReps; r++ {
			_, t, _ := runGlobal(b, n)
			tseqSamples = append(tseqSamples, t)
			if t < tseq {
				tseq = t
			}
		}
		_, t1, rt := runMPL(b, n, mpl.Config{Procs: 1, Record: true})
		t1Samples := []time.Duration{t1}
		for r := 1; r < timeReps; r++ {
			_, t, rt2 := runMPL(b, n, mpl.Config{Procs: 1, Record: true})
			t1Samples = append(t1Samples, t)
			if t < t1 {
				t1, rt = t, rt2
			}
		}
		t64 := scale(t1, rt.Trace(), MaxP)
		es := rt.EntStats()
		cycles, _, _, _, _ := rt.CGCStats()
		row := TimeRow{
			Name: b.Name, Entangled: b.Entangled,
			Tseq: tseq, T1: t1, T64: t64,
			Overhead:        ratio(t1, tseq),
			Speedup64:       ratio(tseq, t64),
			EntReads:        es.EntangledReads,
			Pins:            es.Pins,
			PinnedPeakBytes: es.PinnedPeakBytes,
			RetainedChunks:  rt.RetainedChunks(),
			LiveWords:       rt.MaxLiveWords(),
			CGCCycles:       cycles,
			StaticRegions:   rt.ElisionStats().StaticRegions,
			ElidedLoads:     rt.ElisionStats().ElidedLoads,
			ElidedStores:    rt.ElisionStats().ElidedStores,
			TseqSamples:     tseqSamples,
			T1Samples:       t1Samples,
		}
		row.RetainedSeries, row.PinnedPeakSeries = tracedSeries(b, n)
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %5v %10s %10s %10s %8.2fx %8.2fx\n",
			row.Name, row.Entangled, fmtD(row.Tseq), fmtD(row.T1), fmtD(row.T64),
			row.Overhead, row.Speedup64)
	}
	return rows
}

// SpaceRow is one row of experiment T2.
type SpaceRow struct {
	Name      string
	Entangled bool
	Rseq      int64 // max residency (words), sequential baseline
	R1        int64 // max residency (words), hierarchical P=1
	R64       int64 // modeled residency at 64 processors
	Blowup1   float64
	Blowup64  float64
}

// nurseryWords is the per-processor uncollected allocation window assumed
// by the space model (the runtime's default collection budget).
const nurseryWords = 1 << 17

// SpaceTable reproduces the paper's space table (T2). R64 uses the model
// R_P = R_1 + (busy_P − 1)·nursery: each additional busy processor holds
// one uncollected allocation window. Residency is measured live, not
// sampled, via the space's high-water mark.
func SpaceTable(sizes map[string]int, w io.Writer) []SpaceRow {
	var rows []SpaceRow
	fmt.Fprintf(w, "# T2: space — max residency in words, blowups vs sequential\n")
	fmt.Fprintf(w, "%-10s %5s %12s %12s %12s %8s %8s\n",
		"benchmark", "ent", "Rseq", "R1", "R64(model)", "B1", "B64")
	for _, b := range bench.All {
		n := size(b, sizes)
		_, _, g := runGlobal(b, n)
		rseq := g.MaxLiveWords()
		_, _, rt := runMPL(b, n, mpl.Config{Procs: 1, Record: true})
		r1 := rt.MaxLiveWords()
		busy := sim.Replay(rt.Trace(), sim.ReplayConfig{P: MaxP, StealCost: StealCost}).BusyPeak
		r64 := r1 + int64(busy-1)*nurseryWords
		if r1 == 0 {
			r64 = 0 // allocation-free run: the nursery model does not apply
		}
		row := SpaceRow{
			Name: b.Name, Entangled: b.Entangled,
			Rseq: rseq, R1: r1, R64: r64,
			Blowup1:  float64(r1) / float64(max64(rseq, 1)),
			Blowup64: float64(r64) / float64(max64(rseq, 1)),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %5v %12d %12d %12d %7.2fx %7.2fx\n",
			row.Name, row.Entangled, row.Rseq, row.R1, row.R64, row.Blowup1, row.Blowup64)
	}
	return rows
}

// SpeedupSeries is one curve of figure F1.
type SpeedupSeries struct {
	Name    string
	Ps      []int
	Speedup []float64 // T1/TP from the replay
}

// SpeedupFigureBenchmarks are the curves shown in F1.
var SpeedupFigureBenchmarks = []string{"fib", "msort", "primes", "mcss", "dedup", "bfs"}

// SpeedupFigure reproduces F1: speedup curves over the processor sweep.
func SpeedupFigure(sizes map[string]int, w io.Writer) []SpeedupSeries {
	var out []SpeedupSeries
	fmt.Fprintf(w, "# F1: speedup vs processors (trace replay)\n")
	fmt.Fprintf(w, "%-10s", "benchmark")
	for _, p := range Ps {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)
	for _, name := range SpeedupFigureBenchmarks {
		b, ok := bench.ByName(name)
		if !ok {
			continue
		}
		n := size(b, sizes)
		_, _, rt := runMPL(b, n, mpl.Config{Procs: 1, Record: true})
		curve := sim.SpeedupCurve(rt.Trace(), Ps, StealCost)
		out = append(out, SpeedupSeries{Name: name, Ps: Ps, Speedup: curve})
		fmt.Fprintf(w, "%-10s", name)
		for _, s := range curve {
			fmt.Fprintf(w, " %6.2fx", s)
		}
		fmt.Fprintln(w)
	}
	return out
}

// LangRow is one row of experiment T3.
type LangRow struct {
	Name    string
	TNative time.Duration // plain Go
	TGlobal time.Duration // global-heap runtime (classic collected runtime)
	T1      time.Duration // hierarchical runtime, one processor
	T64     time.Duration // hierarchical runtime, 64-processor estimate
	Vs1     float64       // T1 / TNative
	Vs64    float64       // T64 / TNative
}

// LangBenchmarks are the comparison points of T3.
var LangBenchmarks = []string{"fib", "primes", "msort", "mcss", "dedup", "bfs"}

// LangTable reproduces the paper's language comparison (T3), with native
// Go standing in for the C++/Go/Java/OCaml codes (DESIGN.md substitution):
// the claim checked is that the managed hierarchical runtime is within a
// small factor of native sequentially and wins with processors.
func LangTable(sizes map[string]int, w io.Writer) []LangRow {
	var rows []LangRow
	fmt.Fprintf(w, "# T3: language comparison — hierarchical runtime vs native Go\n")
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %8s %8s\n",
		"benchmark", "native", "global", "T1", "T64(sim)", "vs1", "vs64")
	for _, name := range LangBenchmarks {
		b, ok := bench.ByName(name)
		if !ok {
			continue
		}
		n := size(b, sizes)
		_, tnat := runNative(b, n)
		_, tglob, _ := runGlobal(b, n)
		_, t1, rt := runMPL(b, n, mpl.Config{Procs: 1, Record: true})
		t64 := scale(t1, rt.Trace(), MaxP)
		row := LangRow{
			Name: name, TNative: tnat, TGlobal: tglob, T1: t1, T64: t64,
			Vs1: ratio(t1, tnat), Vs64: ratio(t64, tnat),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %7.2fx %7.2fx\n",
			row.Name, fmtD(row.TNative), fmtD(row.TGlobal), fmtD(row.T1), fmtD(row.T64),
			row.Vs1, row.Vs64)
	}
	return rows
}

// EntangleRow is one row of experiment T4.
type EntangleRow struct {
	Name           string
	Entangled      bool
	EntangledReads int64
	EntangledWrite int64
	Candidates     int64
	Pins           int64
	Unpins         int64
	PinnedPeak     int64
	SlowReads      int64
	DownPointers   int64
}

// EntangleTable reproduces T4: the paper's entanglement cost metrics.
// Disentangled benchmarks must show zeros in every entanglement column —
// that is the "shielding" claim; entangled ones show cost proportional to
// their communication, with every pin matched by an unpin at the joins.
func EntangleTable(sizes map[string]int, w io.Writer) []EntangleRow {
	var rows []EntangleRow
	fmt.Fprintf(w, "# T4: entanglement metrics (P=2, fork-time heaps)\n")
	fmt.Fprintf(w, "%-10s %5s %9s %9s %9s %9s %9s %9s %9s %9s\n",
		"benchmark", "ent", "eReads", "eWrites", "slowRds", "cand", "pins", "unpins", "pinPeak", "downPtrs")
	for _, b := range bench.All {
		n := size(b, sizes)
		_, _, rt := runMPL(b, n, mpl.Config{Procs: 2})
		s := rt.EntStats()
		row := EntangleRow{
			Name: b.Name, Entangled: b.Entangled,
			EntangledReads: s.EntangledReads, EntangledWrite: s.EntangledWrites,
			Candidates: s.Candidates, Pins: s.Pins, Unpins: s.Unpins,
			PinnedPeak: s.PinnedPeak, SlowReads: s.SlowReads, DownPointers: s.DownPointers,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %5v %9d %9d %9d %9d %9d %9d %9d %9d\n",
			row.Name, row.Entangled, row.EntangledReads, row.EntangledWrite, row.SlowReads,
			row.Candidates, row.Pins, row.Unpins, row.PinnedPeak, row.DownPointers)
	}
	return rows
}

// AblateRow is one row of figure F2.
type AblateRow struct {
	Name      string
	Entangled bool
	TManage   time.Duration
	TDetect   time.Duration // detect-and-abort barriers (old MPL); errors on entangled programs
	TUnsafe   time.Duration // barriers off (unsound in general; shown for disentangled only)
	Aborted   bool          // detect mode rejected the program
}

// AblateFigure reproduces F2: barrier-mode ablation. For disentangled
// programs the three modes should be close (near-zero barrier cost); for
// entangled programs detect mode aborts — the qualitative gap this paper
// closes — so only manage runs.
func AblateFigure(sizes map[string]int, w io.Writer) []AblateRow {
	var rows []AblateRow
	fmt.Fprintf(w, "# F2: barrier ablation — manage vs detect(abort) vs no barriers\n")
	fmt.Fprintf(w, "%-10s %5s %10s %10s %10s %8s\n",
		"benchmark", "ent", "manage", "detect", "unsafe", "aborted")
	for _, b := range bench.All {
		n := size(b, sizes)
		_, tm, _ := runMPL(b, n, mpl.Config{Procs: 1})
		row := AblateRow{Name: b.Name, Entangled: b.Entangled, TManage: tm}
		rtD := mpl.New(mpl.Config{Procs: 1, Mode: mpl.Detect})
		startD := time.Now()
		_, errD := rtD.Run(func(t *mpl.Task) mpl.Value { return mpl.Int(b.MPL(t, n)) })
		row.TDetect = time.Since(startD)
		row.Aborted = errD != nil
		if !b.Entangled {
			_, tu, _ := runMPL(b, n, mpl.Config{Procs: 1, Mode: mpl.Unsafe})
			row.TUnsafe = tu
		}
		rows = append(rows, row)
		unsafe := "-"
		if row.TUnsafe > 0 {
			unsafe = fmtD(row.TUnsafe)
		}
		fmt.Fprintf(w, "%-10s %5v %10s %10s %10s %8v\n",
			row.Name, row.Entangled, fmtD(row.TManage), fmtD(row.TDetect), unsafe, row.Aborted)
	}
	return rows
}

// SpaceCurve is one curve of figure F3.
type SpaceCurve struct {
	Name string
	Ps   []int
	R    []int64 // modeled residency per processor count
}

// SpaceCurveBenchmarks are the curves shown in F3.
var SpaceCurveBenchmarks = []string{"msort", "mcss", "dedup", "pipeline"}

// SpaceFigure reproduces F3: residency as a function of processor count,
// from the measured R1 plus the busy-processor nursery model.
func SpaceFigure(sizes map[string]int, w io.Writer) []SpaceCurve {
	var out []SpaceCurve
	fmt.Fprintf(w, "# F3: max residency (words) vs processors (model)\n")
	fmt.Fprintf(w, "%-10s", "benchmark")
	for _, p := range Ps {
		fmt.Fprintf(w, " %11s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)
	for _, name := range SpaceCurveBenchmarks {
		b, ok := bench.ByName(name)
		if !ok {
			continue
		}
		n := size(b, sizes)
		_, _, rt := runMPL(b, n, mpl.Config{Procs: 1, Record: true})
		r1 := rt.MaxLiveWords()
		curve := SpaceCurve{Name: name, Ps: Ps}
		for _, p := range Ps {
			busy := sim.Replay(rt.Trace(), sim.ReplayConfig{P: p, StealCost: StealCost}).BusyPeak
			curve.R = append(curve.R, r1+int64(busy-1)*nurseryWords)
		}
		out = append(out, curve)
		fmt.Fprintf(w, "%-10s", name)
		for _, r := range curve.R {
			fmt.Fprintf(w, " %11d", r)
		}
		fmt.Fprintln(w)
	}
	return out
}

func size(b bench.Benchmark, sizes map[string]int) int {
	if sizes != nil {
		if n, ok := sizes[b.Name]; ok {
			return n
		}
	}
	return b.DefaultN
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fmtD(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
