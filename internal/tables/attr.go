// The attribution experiment (mplgo-bench -exp attr): decompose each
// benchmark's T1−Tseq overhead gap into the sampled slow-path cost
// components of package attr, print the table, and merge the numbers
// into the bench JSON as never-gated trajectory columns.

package tables

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"mplgo/internal/attr"
	"mplgo/internal/bench"
)

// AttrResult is one benchmark's cost-attribution decomposition.
type AttrResult struct {
	Name     string
	TseqNS   int64 // best-of-N sequential baseline
	T1NS     int64 // the attributed run's wall clock (includes sampling)
	GapNS    int64 // T1NS − TseqNS
	Coverage float64
	Snapshot *attr.Snapshot
}

// AttrTable runs the attribution experiment on the named benchmarks and
// prints one decomposition table per benchmark: component × {samples,
// estimated total ns, share of the T1−Tseq gap}, plus the coverage line
// (how much of the gap the sampled components explain).
func AttrTable(names []string, sizes map[string]int, w io.Writer) ([]AttrResult, error) {
	var out []AttrResult
	fmt.Fprintf(w, "# A: cost attribution — sampled decomposition of the T1−Tseq gap (P=1)\n")
	for _, name := range names {
		b, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		n := size(b, sizes)
		snap, attrWall, tseq := attributeRun(b, n)
		r := AttrResult{
			Name:     name,
			TseqNS:   tseq.Nanoseconds(),
			T1NS:     attrWall.Nanoseconds(),
			GapNS:    attrWall.Nanoseconds() - tseq.Nanoseconds(),
			Snapshot: snap,
		}
		if r.GapNS > 0 {
			r.Coverage = float64(snap.TotalEstNS()) / float64(r.GapNS)
		}
		out = append(out, r)

		fmt.Fprintf(w, "%s: T1=%s Tseq=%s gap=%s (period 1/%d)\n",
			name, fmtD(attrWall), fmtD(tseq), fmtD(time.Duration(r.GapNS)), snap.Period)
		fmt.Fprintf(w, "  %-16s %10s %14s %8s\n", "component", "samples", "est total", "% gap")
		for _, c := range componentsByCost(snap) {
			cs := snap.Components[c.Slug()]
			pct := 0.0
			if r.GapNS > 0 {
				pct = 100 * float64(cs.EstNS) / float64(r.GapNS)
			}
			fmt.Fprintf(w, "  %-16s %10d %14s %7.1f%%\n",
				c.Slug(), cs.Samples, fmtD(time.Duration(cs.EstNS)), pct)
		}
		fmt.Fprintf(w, "  %-16s %10s %14s %7.1f%%\n",
			"total", "", fmtD(time.Duration(snap.TotalEstNS())), 100*r.Coverage)
	}
	return out, nil
}

// componentsByCost orders a snapshot's non-empty components by
// descending estimated cost.
func componentsByCost(snap *attr.Snapshot) []attr.Component {
	var cs []attr.Component
	for c := attr.Component(0); c < attr.NumComponents; c++ {
		if snap.Samples[c] > 0 {
			cs = append(cs, c)
		}
	}
	sort.Slice(cs, func(i, j int) bool { return snap.EstNS(cs[i]) > snap.EstNS(cs[j]) })
	return cs
}

// validateSlack is the estimator-noise allowance of the wall-clock
// bound below: component estimates are 1-in-period extrapolations, so
// a few hundred samples can overshoot the true cost by several percent
// even when the instrumentation is correct — and the tail is heavy,
// because a single OS preemption landing inside a sampled window
// inflates the estimate by period × stall. The bound exists to catch
// double-counting (windows overlapping ⇒ sums near 2× wall), so a
// generous slack loses nothing.
const validateSlack = 1.5

// ValidateAttrResults checks a report's internal consistency: every
// component must be a known member of the attr enum, and the component
// estimates must not exceed the attributed run's wall clock (times a
// sampling-noise slack). The windows are disjoint tiles of wall time on
// a P=1 run, so their true total is bounded by the wall clock — an
// estimate past that means the instrumentation double-counts or the
// counter naming drifted, not that performance regressed. Note the
// bound is the wall clock, NOT the T1−Tseq gap: slow-path cost can
// legitimately exceed the gap on benchmarks where the hierarchical
// runtime is cheaper than the global baseline elsewhere (the %-of-gap
// column then reads over 100%, which is honest and worth seeing).
// This is the CI attribution job's gate.
func ValidateAttrResults(rs []AttrResult) error {
	for _, r := range rs {
		for slug := range r.Snapshot.Components {
			if _, ok := attr.ComponentFromSlug(slug); !ok {
				return fmt.Errorf("%s: unknown attribution component %q", r.Name, slug)
			}
		}
		if bound := float64(r.T1NS) * validateSlack; float64(r.Snapshot.TotalEstNS()) > bound {
			return fmt.Errorf("%s: component estimates sum to %v, more than the %v attributed wall clock ×%.2f",
				r.Name, time.Duration(r.Snapshot.TotalEstNS()), time.Duration(r.T1NS), validateSlack)
		}
	}
	return nil
}

// MergeAttrJSON folds attribution results into the bench JSON at path:
// if the file exists its matching entries gain the attr_* columns
// (entries are matched by name; unmatched results are appended), and
// otherwise a fresh report is written. The attr columns are trajectory
// data — CompareBenchReports gates only on Overhead, which stays zero
// for appended attr-only entries.
func MergeAttrJSON(rs []AttrResult, timestamp string, scale int, path string) error {
	rep, err := ReadBenchJSON(path)
	if err != nil {
		rep = &BenchReport{
			Timestamp:  timestamp,
			Scale:      scale,
			Host:       CurrentFingerprint(),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
	}
	for _, r := range rs {
		idx := -1
		for i := range rep.Benchmarks {
			if rep.Benchmarks[i].Name == r.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			rep.Benchmarks = append(rep.Benchmarks, BenchEntry{Name: r.Name})
			idx = len(rep.Benchmarks) - 1
		}
		e := &rep.Benchmarks[idx]
		e.AttrPeriod = r.Snapshot.Period
		e.AttrGapNS = r.GapNS
		e.AttrCoverage = r.Coverage
		e.AttrNS = make(map[string]int64, len(r.Snapshot.Components))
		e.AttrSamples = make(map[string]int64, len(r.Snapshot.Components))
		for slug, cs := range r.Snapshot.Components {
			e.AttrNS[slug] = int64(cs.EstNS)
			e.AttrSamples[slug] = int64(cs.Samples)
		}
	}
	return WriteReport(rep, path)
}
