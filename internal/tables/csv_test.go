package tables

import (
	"path/filepath"
	"strings"
	"testing"
)

func validTable() *Table {
	t := &Table{Name: "t", Header: []string{"a", "b"}}
	t.Append("1", "x")
	t.Append("2", "y")
	return t
}

func TestTableValidate(t *testing.T) {
	if err := validTable().Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	cases := []struct {
		name string
		tab  *Table
		want string
	}{
		{"empty header", &Table{Name: "t"}, "empty header"},
		{"empty column name", &Table{Name: "t", Header: []string{"a", ""}}, "empty column name"},
		{"duplicate column", &Table{Name: "t", Header: []string{"a", "a"}}, "duplicate column"},
		{"ragged row", &Table{Name: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1"}}}, "has 1 cells"},
		{"empty cell", &Table{Name: "t", Header: []string{"a"}, Rows: [][]string{{""}}}, "empty a"},
		{"nan cell", &Table{Name: "t", Header: []string{"a"}, Rows: [][]string{{"NaN"}}}, "a = NaN"},
		{"inf cell", &Table{Name: "t", Header: []string{"a"}, Rows: [][]string{{"+Inf"}}}, "a = +Inf"},
	}
	for _, c := range cases {
		err := c.tab.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestWriteCSVRejectsInvalid(t *testing.T) {
	bad := &Table{Name: "bad", Header: []string{"a"}, Rows: [][]string{{"NaN"}}}
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := WriteCSVFile(path, bad); err == nil {
		t.Fatal("WriteCSVFile accepted a NaN cell")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	want := validTable()
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := WriteCSVFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Header) != 2 || got.Header[0] != "a" || len(got.Rows) != 2 || got.Rows[1][1] != "y" {
		t.Errorf("round trip: %+v", got)
	}
	if got.Col("b") != 1 || got.Col("zzz") != -1 {
		t.Errorf("Col: b=%d zzz=%d", got.Col("b"), got.Col("zzz"))
	}
	v, err := got.Float(0, "a")
	if err != nil || v != 1 {
		t.Errorf("Float(0, a) = %v, %v", v, err)
	}
	if _, err := got.Float(0, "zzz"); err == nil {
		t.Error("Float on missing column succeeded")
	}
}

func TestFingerprintMatches(t *testing.T) {
	a := &Fingerprint{Cores: 4, GOMAXPROCS: 4, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	b := *a
	// Context fields never affect identity.
	b.Hostname, b.Commit, b.LoadAvg1M = "elsewhere", "deadbee", "9.99"
	if !a.Matches(&b) {
		t.Error("fingerprints differing only in context fields should match")
	}
	c := *a
	c.Cores = 8
	if a.Matches(&c) {
		t.Error("different core counts should not match")
	}
	if a.Matches(nil) || (*Fingerprint)(nil).Matches(a) {
		t.Error("nil fingerprint must never match")
	}
}

func TestEffectiveProcs(t *testing.T) {
	f := &Fingerprint{Cores: 2}
	for _, c := range []struct{ p, want int }{{0, 1}, {1, 1}, {2, 2}, {8, 2}} {
		if got := f.EffectiveProcs(c.p); got != c.want {
			t.Errorf("EffectiveProcs(%d) = %d, want %d", c.p, got, c.want)
		}
	}
	// No fingerprint: nothing to cap against.
	if got := (*Fingerprint)(nil).EffectiveProcs(8); got != 8 {
		t.Errorf("nil fingerprint EffectiveProcs(8) = %d", got)
	}
}

func TestParseLoadAvg(t *testing.T) {
	if v := (&Fingerprint{LoadAvg1M: "1.25"}).ParseLoadAvg(); v != 1.25 {
		t.Errorf("ParseLoadAvg = %v", v)
	}
	if v := (&Fingerprint{LoadAvg1M: "junk"}).ParseLoadAvg(); v != 0 {
		t.Errorf("malformed load avg = %v, want 0", v)
	}
	if v := (*Fingerprint)(nil).ParseLoadAvg(); v != 0 {
		t.Errorf("nil load avg = %v, want 0", v)
	}
}
