package tables

import (
	"bytes"
	"strings"
	"testing"

	"mplgo/internal/bench"
)

// tiny sizes so the experiment drivers run fast under test.
var tiny = map[string]int{
	"fib": 18, "mcss": 10_000, "primes": 4_000, "integrate": 20_000,
	"nqueens": 6, "msort": 4_000, "quickhull": 3_000, "tokens": 20_000,
	"wc": 20_000, "spmv": 100, "dedup": 3_000, "bfs": 3_000,
	"counter": 2_000, "memoize": 5_000, "pipeline": 3_000,
	"grep": 20_000, "histogram": 8_000, "filter": 20_000,
	"treesum": 9, "matmul": 20,
}

func TestTimeTable(t *testing.T) {
	var buf bytes.Buffer
	rows := TimeTable(tiny, &buf)
	if len(rows) != len(bench.All) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tseq <= 0 || r.T1 <= 0 || r.T64 <= 0 {
			t.Fatalf("%s: non-positive times %+v", r.Name, r)
		}
		if r.Overhead <= 0 {
			t.Fatalf("%s: bad overhead", r.Name)
		}
		// The simulated T64 must never exceed T1 by more than noise:
		// parallelism cannot make the replayed DAG slower.
		if r.T64 > r.T1*3/2 {
			t.Fatalf("%s: T64 %v far above T1 %v", r.Name, r.T64, r.T1)
		}
	}
	if !strings.Contains(buf.String(), "benchmark") {
		t.Fatal("no header printed")
	}
}

func TestSpaceTable(t *testing.T) {
	var buf bytes.Buffer
	rows := SpaceTable(tiny, &buf)
	if len(rows) != len(bench.All) {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.Rseq == 0 && r.R1 == 0 {
			continue // allocation-free at this size (tiny fib)
		}
		if r.Rseq <= 0 || r.R1 <= 0 || r.R64 < r.R1 {
			t.Fatalf("%s: bad residency %+v", r.Name, r)
		}
	}
}

func TestSpeedupFigure(t *testing.T) {
	var buf bytes.Buffer
	series := SpeedupFigure(tiny, &buf)
	if len(series) != len(SpeedupFigureBenchmarks) {
		t.Fatal("series count")
	}
	for _, s := range series {
		if len(s.Speedup) != len(Ps) {
			t.Fatalf("%s: curve length", s.Name)
		}
		if s.Speedup[0] < 0.99 || s.Speedup[0] > 1.01 {
			t.Fatalf("%s: speedup at P=1 is %f", s.Name, s.Speedup[0])
		}
		// Some speedup must materialize by P=64 for these scalable
		// benchmarks, even at tiny sizes.
		last := s.Speedup[len(s.Speedup)-1]
		if last < 1.5 {
			t.Fatalf("%s: no speedup by P=64 (%.2f)", s.Name, last)
		}
	}
}

func TestLangTable(t *testing.T) {
	var buf bytes.Buffer
	rows := LangTable(tiny, &buf)
	if len(rows) != len(LangBenchmarks) {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.TNative <= 0 || r.T1 <= 0 {
			t.Fatalf("%s: bad times", r.Name)
		}
		if r.Vs1 <= 0 {
			t.Fatalf("%s: bad ratio", r.Name)
		}
	}
}

func TestEntangleTable(t *testing.T) {
	var buf bytes.Buffer
	rows := EntangleTable(tiny, &buf)
	for _, r := range rows {
		if r.Entangled {
			if r.EntangledReads == 0 || r.Pins == 0 {
				t.Fatalf("%s: entangled benchmark shows no entanglement: %+v", r.Name, r)
			}
			// Every pin is matched by an unpin once all joins complete:
			// entanglement cost is transient (the paper's bound).
			if r.Pins != r.Unpins {
				t.Fatalf("%s: pins %d != unpins %d", r.Name, r.Pins, r.Unpins)
			}
		} else {
			// Shielding: disentangled programs pay nothing.
			if r.EntangledReads != 0 || r.Pins != 0 || r.EntangledWrite != 0 {
				t.Fatalf("%s: disentangled benchmark entangled: %+v", r.Name, r)
			}
		}
	}
}

func TestAblateFigure(t *testing.T) {
	var buf bytes.Buffer
	rows := AblateFigure(tiny, &buf)
	for _, r := range rows {
		if r.Entangled && !r.Aborted {
			t.Fatalf("%s: detect mode accepted an entangled program", r.Name)
		}
		if !r.Entangled && r.Aborted {
			t.Fatalf("%s: detect mode rejected a disentangled program", r.Name)
		}
		if !r.Entangled && r.TUnsafe <= 0 {
			t.Fatalf("%s: missing unsafe-mode time", r.Name)
		}
	}
}

func TestSpaceFigure(t *testing.T) {
	var buf bytes.Buffer
	curves := SpaceFigure(tiny, &buf)
	if len(curves) != len(SpaceCurveBenchmarks) {
		t.Fatal("curve count")
	}
	for _, c := range curves {
		for i := 1; i < len(c.R); i++ {
			if c.R[i] < c.R[i-1] {
				t.Fatalf("%s: residency decreased with processors: %v", c.Name, c.R)
			}
		}
	}
}

func TestSTWTable(t *testing.T) {
	// Sizes large enough that both runtimes actually collect (the tiny
	// sizes fit in the collection budget and the runtimes tie).
	sizes := map[string]int{"msort": 12_000, "treesum": 13}
	var buf bytes.Buffer
	rows := STWTable(sizes, &buf)
	if len(rows) != len(STWBenchmarks) {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if len(r.MPL) != len(Ps) || len(r.STW) != len(Ps) {
			t.Fatalf("%s: curve lengths", r.Name)
		}
		// The architectural claim: with enough processors, the runtime
		// whose collections parallelize must win.
		if r.Crossover == 0 {
			t.Fatalf("%s: hierarchical never beat stop-the-world: mpl=%v stw=%v",
				r.Name, r.MPL, r.STW)
		}
		if r.Crossover > 16 {
			t.Fatalf("%s: crossover only at P=%d", r.Name, r.Crossover)
		}
	}
}
