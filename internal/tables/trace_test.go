package tables

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mplgo/internal/trace"
)

func ctrEvent(ts int64, ctr trace.Counter, v uint64) trace.Event {
	return trace.Event{TS: ts, Kind: trace.EvCounter, Arg1: uint64(ctr), Arg2: v}
}

func TestCounterSeries(t *testing.T) {
	snap := [][]trace.Event{
		{
			ctrEvent(300, trace.CtrRetainedChunks, 3),
			ctrEvent(100, trace.CtrRetainedChunks, 1),
			{TS: 150, Kind: trace.EvFork}, // non-counter noise
			ctrEvent(120, trace.CtrPinnedPeakBytes, 0),
		},
		{
			ctrEvent(200, trace.CtrRetainedChunks, 2),
		},
	}
	pts := counterSeries(snap, trace.CtrRetainedChunks)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, want := range []CounterPoint{{100, 1}, {200, 2}, {300, 3}} {
		if pts[i] != want {
			t.Fatalf("point %d = %+v, want %+v (series must be time-ordered)", i, pts[i], want)
		}
	}
	// All-zero series are dropped, missing counters return nil.
	if s := counterSeries(snap, trace.CtrPinnedPeakBytes); s != nil {
		t.Fatalf("all-zero series kept: %+v", s)
	}
	if s := counterSeries(snap, trace.CtrLiveWords); s != nil {
		t.Fatalf("absent counter returned %+v", s)
	}
}

func TestCounterSeriesDownsample(t *testing.T) {
	var ring []trace.Event
	for i := 0; i < 1000; i++ {
		ring = append(ring, ctrEvent(int64(i), trace.CtrLiveWords, uint64(i+1)))
	}
	pts := counterSeries([][]trace.Event{ring}, trace.CtrLiveWords)
	if len(pts) != seriesPoints {
		t.Fatalf("downsampled to %d points, want %d", len(pts), seriesPoints)
	}
	if pts[0].TNS != 0 || pts[len(pts)-1].TNS != 999 {
		t.Fatalf("endpoints not kept: first %+v last %+v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TNS <= pts[i-1].TNS {
			t.Fatalf("downsampled series not strictly increasing at %d", i)
		}
	}
}

func TestTraceRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var report bytes.Buffer
	events, err := TraceRun("pipeline", map[string]int{"pipeline": 800}, 2, &report, path)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("traced run captured no events")
	}
	if !strings.Contains(report.String(), "pipeline") {
		t.Fatalf("report line: %q", report.String())
	}

	// The export must round-trip through the summarizer (the CI validator)
	// and show the entangled pipeline's slow-path activity.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := trace.Summarize(f)
	if err != nil {
		t.Fatalf("exported trace rejected by summarizer: %v", err)
	}
	if s.Events == 0 || s.EntangledReads == 0 || s.Pins == 0 {
		t.Fatalf("summary missing pipeline activity: %+v", s)
	}

	if _, err := TraceRun("no-such-bench", nil, 1, &report, path); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
