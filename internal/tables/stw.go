package tables

import (
	"fmt"
	"io"

	"mplgo/internal/bench"
	"mplgo/internal/globalrt"
	"mplgo/internal/sim"
	"mplgo/mpl"
)

// STWRow is one row of the stop-the-world comparison (ablation A6): the
// modeled parallel time of a classic global-heap collected runtime versus
// the hierarchical runtime, at each processor count.
//
// The stop-the-world model runs the same program on the global-heap
// runtime with DAG recording; its mutator work parallelizes by replay, but
// its collection work (GCWork) is serialized — a global collector stops
// every mutator — so
//
//	T_P(stw) = Replay(mutatorDAG, P) + GCWork
//
// while the hierarchical runtime's collection work is embedded in the
// per-task segments of its own DAG and parallelizes with them. This is the
// architectural reason hierarchical heaps win as P grows, independent of
// constants.
type STWRow struct {
	Name      string
	MPL       []int64 // modeled hierarchical T_P per entry of Ps (abstract work units)
	STW       []int64 // modeled stop-the-world T_P
	Crossover int     // first P where the hierarchical runtime wins, 0 if never
}

// STWBenchmarks are allocation-heavy benchmarks with substantial live data
// — where collection work is a meaningful fraction of the total, so the
// serialization of a global collector shows.
var STWBenchmarks = []string{"msort", "treesum"}

// STWTable prints the stop-the-world ablation.
func STWTable(sizes map[string]int, w io.Writer) []STWRow {
	var rows []STWRow
	fmt.Fprintf(w, "# A6: hierarchical vs stop-the-world collection (modeled T_P, work units)\n")
	fmt.Fprintf(w, "%-10s %8s", "benchmark", "runtime")
	for _, p := range Ps {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)
	for _, name := range STWBenchmarks {
		b, ok := bench.ByName(name)
		if !ok {
			continue
		}
		n := size(b, sizes)

		// Hierarchical: small budget so both runtimes actually collect.
		rt := mpl.New(mpl.Config{Procs: 1, Record: true, HeapBudgetWords: 1 << 14})
		if _, err := rt.Run(func(t *mpl.Task) mpl.Value { return mpl.Int(b.MPL(t, n)) }); err != nil {
			panic(err)
		}
		// Stop-the-world: same budget, recorded mutator DAG + serial GC work.
		g := globalrt.NewRecording(1 << 14)
		b.Global(g, n)

		row := STWRow{Name: name}
		for _, p := range Ps {
			mplT := sim.Replay(rt.Trace(), sim.ReplayConfig{P: p, StealCost: StealCost}).Makespan
			stwT := sim.Replay(g.Trace(), sim.ReplayConfig{P: p, StealCost: StealCost}).Makespan + g.GCWork
			row.MPL = append(row.MPL, mplT)
			row.STW = append(row.STW, stwT)
			if row.Crossover == 0 && mplT < stwT {
				row.Crossover = p
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %8s", name, "mpl")
		for _, v := range row.MPL {
			fmt.Fprintf(w, " %12d", v)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %8s", "", "stw")
		for _, v := range row.STW {
			fmt.Fprintf(w, " %12d", v)
		}
		fmt.Fprintf(w, "   (crossover P=%d)\n", row.Crossover)
	}
	return rows
}
