package hierarchy

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mplgo/internal/mem"
)

func TestDumpTree(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	root := tr.Root()
	a := tr.Fork(root)
	b := tr.Fork(root)
	aa := tr.Fork(a)

	// One chunk per heap, an extra one for a, and a pinned object in aa.
	sp.NewChunk(root.ID, 0)
	ca := sp.NewChunk(a.ID, 0)
	sp.NewChunk(a.ID, 0)
	sp.NewChunk(b.ID, 0)
	caa := sp.NewChunk(aa.ID, 0)
	_ = ca
	atomic.AddInt32(&caa.PinCount, 1)
	a.CGCPark()

	d := tr.DumpTree(sp)
	if d.LiveHeaps != 4 || len(d.Heaps) != 4 {
		t.Fatalf("LiveHeaps = %d, len = %d", d.LiveHeaps, len(d.Heaps))
	}
	byID := map[uint32]HeapDump{}
	for _, h := range d.Heaps {
		byID[h.ID] = h
	}
	if h := byID[root.ID]; h.Chunks != 1 || h.Parent != 0 || h.Depth != 0 || h.LiveChildren != 2 {
		t.Fatalf("root dump %+v", h)
	}
	if h := byID[a.ID]; h.Chunks != 2 || h.Parent != root.ID || h.CGCState != "parked" {
		t.Fatalf("a dump %+v", h)
	}
	if h := byID[aa.ID]; h.Pinned != 1 || h.Words != mem.ChunkWords || h.Depth != 2 {
		t.Fatalf("aa dump %+v", h)
	}
	if d.Pinned != 1 || d.TotalWords != 5*mem.ChunkWords {
		t.Fatalf("totals: pinned %d words %d", d.Pinned, d.TotalWords)
	}

	var jb bytes.Buffer
	if err := d.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var round TreeDump
	if err := json.Unmarshal(jb.Bytes(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(round.Heaps) != 4 || round.TotalWords != d.TotalWords {
		t.Fatalf("round-trip mismatch: %+v", round)
	}

	var db bytes.Buffer
	if err := d.WriteDOT(&db); err != nil {
		t.Fatal(err)
	}
	dot := db.String()
	for _, want := range []string{
		"digraph heaps {",
		"parked",
		"pinned 1",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestCGCStateName(t *testing.T) {
	tr := New()
	h := tr.Fork(tr.Root())
	if s := h.CGCStateName(); s != "active" {
		t.Fatalf("fresh heap state %q", s)
	}
	h.CGCPark()
	if s := h.CGCStateName(); s != "parked" {
		t.Fatalf("parked state %q", s)
	}
	if !h.CGCClaim() {
		t.Fatal("claim failed")
	}
	if s := h.CGCStateName(); s != "scoped" {
		t.Fatalf("scoped state %q", s)
	}
	if !h.CGCBeginSweep() {
		t.Fatal("begin sweep failed")
	}
	if s := h.CGCStateName(); s != "sweeping" {
		t.Fatalf("sweeping state %q", s)
	}
	h.CGCRelease()
	if !h.CGCTryResume() {
		t.Fatal("resume failed")
	}
}

// TestDumpTreeConcurrent exercises DumpTree while heaps fork, merge, and
// chunks churn — under -race this proves the snapshot touches only
// synchronized state.
func TestDumpTreeConcurrent(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	root := tr.Root()
	sp.NewChunk(root.ID, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := tr.Fork(root)
			ch := sp.NewChunk(c.ID, 0)
			tr.Merge(c, root, sp)
			sp.Release(ch)
		}
	}()
	for i := 0; i < 200; i++ {
		d := tr.DumpTree(sp)
		if d.LiveHeaps < 1 {
			t.Errorf("no live heaps in snapshot")
			break
		}
		var jb bytes.Buffer
		if err := d.WriteJSON(&jb); err != nil {
			t.Errorf("WriteJSON: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
