package hierarchy

import (
	"math/rand"
	"testing"

	"mplgo/internal/mem"
)

func TestForkStructure(t *testing.T) {
	tr := New()
	root := tr.Root()
	if root.Depth() != 0 || root.Parent() != nil {
		t.Fatal("root malformed")
	}
	c1 := tr.Fork(root)
	c2 := tr.Fork(root)
	if c1.Depth() != 1 || c2.Depth() != 1 {
		t.Fatal("child depth wrong")
	}
	if c1.Parent() != root || c2.Parent() != root {
		t.Fatal("child parent wrong")
	}
	if root.LiveChildren() != 2 {
		t.Fatalf("LiveChildren = %d", root.LiveChildren())
	}
	if tr.Get(c1.ID) != c1 || tr.Get(root.ID) != root {
		t.Fatal("Get by id broken")
	}
	if tr.Count() != 3 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestIsAncestor(t *testing.T) {
	tr := New()
	root := tr.Root()
	a := tr.Fork(root)
	b := tr.Fork(root)
	aa := tr.Fork(a)
	ab := tr.Fork(a)
	aaa := tr.Fork(aa)

	cases := []struct {
		anc, desc *Heap
		want      bool
	}{
		{root, root, true}, {root, a, true}, {root, aaa, true},
		{a, aa, true}, {a, ab, true}, {a, aaa, true}, {aa, aaa, true},
		{a, b, false}, {b, a, false}, {aa, ab, false}, {ab, aaa, false},
		{aaa, a, false}, {a, root, false}, {b, aaa, false},
	}
	for _, mode := range []bool{false, true} {
		tr.UseWalkAncestor = mode
		for _, c := range cases {
			if got := tr.IsAncestor(c.anc, c.desc); got != c.want {
				t.Fatalf("walk=%v IsAncestor(%d,%d) = %v, want %v",
					mode, c.anc.ID, c.desc.ID, got, c.want)
			}
		}
	}
}

func TestAncestorModesAgreeRandom(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	heaps := []*Heap{tr.Root()}
	for i := 0; i < 300; i++ {
		heaps = append(heaps, tr.Fork(heaps[rng.Intn(len(heaps))]))
	}
	for trial := 0; trial < 10000; trial++ {
		a := heaps[rng.Intn(len(heaps))]
		d := heaps[rng.Intn(len(heaps))]
		tr.UseWalkAncestor = false
		euler := tr.IsAncestor(a, d)
		tr.UseWalkAncestor = true
		walk := tr.IsAncestor(a, d)
		if euler != walk {
			t.Fatalf("ancestor modes disagree for (%d,%d): euler=%v walk=%v", a.ID, d.ID, euler, walk)
		}
	}
}

func TestLCA(t *testing.T) {
	tr := New()
	root := tr.Root()
	a := tr.Fork(root)
	b := tr.Fork(root)
	aa := tr.Fork(a)
	ab := tr.Fork(a)
	if tr.LCA(aa, ab) != a {
		t.Fatal("LCA(aa,ab) != a")
	}
	if tr.LCA(aa, b) != root {
		t.Fatal("LCA(aa,b) != root")
	}
	if tr.LCA(aa, aa) != aa {
		t.Fatal("LCA(x,x) != x")
	}
	if tr.LCA(a, aa) != a || tr.LCA(aa, a) != a {
		t.Fatal("LCA with ancestor broken")
	}
}

func TestMergeMovesChunksAndRemset(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	root := tr.Root()
	child := tr.Fork(root)

	al := mem.NewAllocator(sp, child.ID)
	r := al.AllocTuple(mem.Int(1))
	child.Chunks = append(child.Chunks, al.Chunks...)
	child.AddRemembered(r, 0)

	if sp.HeapOf(r) != child.ID {
		t.Fatal("setup: wrong owner")
	}
	tr.Merge(child, root, sp)
	if sp.HeapOf(r) != root.ID {
		t.Fatal("merge did not reassign chunk ownership")
	}
	if len(root.Chunks) != 1 || len(root.Remset) != 1 {
		t.Fatalf("merge did not move lists: chunks=%d remset=%d", len(root.Chunks), len(root.Remset))
	}
	if !child.Dead() {
		t.Fatal("merged child not marked dead")
	}
	if root.LiveChildren() != 0 {
		t.Fatal("LiveChildren not decremented")
	}
}

func TestMergeUnpinsAtDepth(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	root := tr.Root()
	mid := tr.Fork(root) // depth 1
	leaf := tr.Fork(mid) // depth 2

	al := mem.NewAllocator(sp, leaf.ID)
	deepPin := al.AllocRef(mem.Int(1))    // unpins at depth 1
	shallowPin := al.AllocRef(mem.Int(2)) // unpins at depth 0
	leaf.Chunks = append(leaf.Chunks, al.Chunks...)

	sp.Pin(deepPin, 1)
	sp.Pin(shallowPin, 0)
	leaf.AddPinned(deepPin)
	leaf.AddPinned(shallowPin)

	// Merging leaf (2) into mid (1): deepPin's unpin depth (1) >= 1 → unpin;
	// shallowPin (0) stays pinned and moves to mid's list.
	n, words := tr.Merge(leaf, mid, sp)
	if n != 1 {
		t.Fatalf("unpinned = %d, want 1", n)
	}
	if words != 2 { // ref cell: header + one payload word
		t.Fatalf("unpinned words = %d, want 2", words)
	}
	if sp.Header(deepPin).Pinned() {
		t.Fatal("deepPin still pinned after reaching its unpin depth")
	}
	if !sp.Header(shallowPin).Pinned() {
		t.Fatal("shallowPin unpinned too early")
	}
	if len(mid.Pinned) != 1 || mid.Pinned[0] != shallowPin {
		t.Fatal("pinned list not transferred")
	}

	// Final merge to root unpins the rest.
	n, _ = tr.Merge(mid, root, sp)
	if n != 1 || sp.Header(shallowPin).Pinned() {
		t.Fatal("second merge failed to unpin")
	}
}

// TestMergeRepinAboveJoin covers the merge's re-pin path deterministically:
// an entangled reader lowered an object's unpin depth below the join point
// before the join ran, so the merge must keep the pin and move the entry to
// the parent's list rather than unpin at the depth the pin was born with.
func TestMergeRepinAboveJoin(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	root := tr.Root()
	mid := tr.Fork(root) // depth 1
	leaf := tr.Fork(mid) // depth 2

	al := mem.NewAllocator(sp, leaf.ID)
	r := al.AllocRef(mem.Int(7))
	leaf.Chunks = append(leaf.Chunks, al.Chunks...)

	sp.Pin(r, 1) // would unpin at the leaf→mid join...
	leaf.AddPinned(r)
	// ...but a reader re-pinned it for an entanglement that only resolves at
	// the root join, lowering the unpin depth to 0.
	if st, _ := sp.PinHeader(r, 0); st != mem.PinDepthLowered {
		t.Fatalf("PinHeader = %v, want PinDepthLowered", st)
	}

	n, _ := tr.Merge(leaf, mid, sp)
	if n != 0 {
		t.Fatalf("unpinned %d objects, want 0 (re-pinned above join)", n)
	}
	if !sp.Header(r).Pinned() {
		t.Fatal("merge revoked a pin re-pinned above the join point")
	}
	if len(mid.Pinned) != 1 || mid.Pinned[0] != r {
		t.Fatalf("re-pinned entry not moved to parent: %v", mid.Pinned)
	}

	// The root join reaches the lowered depth and finally unpins.
	if n, _ = tr.Merge(mid, root, sp); n != 1 || sp.Header(r).Pinned() {
		t.Fatal("root join failed to unpin the re-pinned object")
	}
}

// TestMergeRepinRace stresses the snapshot-CAS in the merge's unpin loop: a
// reader's re-pin landing between the merge's header examination and its
// TryUnpin must make the CAS fail, so the loop re-examines and keeps the
// pin — a join can never revoke a pin it has not seen. Whichever side of
// the race the re-pin lands on, the object must end the merge pinned and
// accounted for: in the parent's list if the merge saw it, or as a fresh
// pin (PinNew) the reader itself is responsible for publishing.
func TestMergeRepinRace(t *testing.T) {
	const iters = 300
	for iter := 0; iter < iters; iter++ {
		tr := New()
		sp := mem.NewSpace()
		root := tr.Root()
		mid := tr.Fork(root) // depth 1
		leaf := tr.Fork(mid) // depth 2

		// Filler pins around the contended object give the unpin loop a
		// window for the racing re-pin to land in.
		al := mem.NewAllocator(sp, leaf.ID)
		var r mem.Ref
		for i := 0; i < 33; i++ {
			p := al.AllocRef(mem.Int(int64(i)))
			sp.Pin(p, 1)
			leaf.AddPinned(p)
			if i == 16 {
				r = p
			}
		}
		leaf.Chunks = append(leaf.Chunks, al.Chunks...)

		var st mem.PinStatus
		done := make(chan struct{})
		go func() {
			defer close(done)
			st, _ = sp.PinHeader(r, 0) // entangled reader re-pins mid-join
		}()
		tr.Merge(leaf, mid, sp)
		<-done

		if !sp.Header(r).Pinned() {
			t.Fatalf("iter %d: pin revoked unseen (status %v)", iter, st)
		}
		inParent := false
		for _, p := range mid.Pinned {
			if p == r {
				inParent = true
			}
		}
		switch st {
		case mem.PinDepthLowered:
			// The merge observed the lowered depth (directly or after a
			// failed TryUnpin) and must have moved the entry up.
			if !inParent {
				t.Fatalf("iter %d: re-pinned object missing from parent's pinned list", iter)
			}
		case mem.PinNew:
			// The re-pin landed after a completed unpin; the reader knows it
			// created the pin and publishes it itself, so the merge owes
			// nothing.
		default:
			t.Fatalf("iter %d: unexpected pin status %v", iter, st)
		}
	}
}

func TestMergeNonChildPanics(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	a := tr.Fork(tr.Root())
	b := tr.Fork(tr.Root())
	defer func() {
		if recover() == nil {
			t.Fatal("merging non-child must panic")
		}
	}()
	tr.Merge(a, b, sp)
}

func TestExclusiveSuffix(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	root := tr.Root()
	a := tr.Fork(root)
	b := tr.Fork(root) // concurrent sibling keeps root shared
	aa := tr.Fork(a)

	// aa's suffix: {aa, a} — a has exactly one live child (aa); root has two.
	suf := tr.ExclusiveSuffix(aa)
	if len(suf) != 2 || suf[0] != aa || suf[1] != a {
		t.Fatalf("suffix = %v", ids(suf))
	}

	// b's suffix is just {b}.
	suf = tr.ExclusiveSuffix(b)
	if len(suf) != 1 || suf[0] != b {
		t.Fatalf("suffix(b) = %v", ids(suf))
	}

	// A heap with live children is not collectible at all.
	if got := tr.ExclusiveSuffix(a); got != nil {
		t.Fatalf("suffix of shared heap = %v", ids(got))
	}

	// After b joins, root becomes part of aa's suffix.
	tr.Merge(b, root, sp)
	suf = tr.ExclusiveSuffix(aa)
	if len(suf) != 3 || suf[2] != root {
		t.Fatalf("suffix after join = %v", ids(suf))
	}
}

func ids(hs []*Heap) []uint32 {
	var out []uint32
	for _, h := range hs {
		out = append(out, h.ID)
	}
	return out
}

type fakeRoots struct{ refs []mem.Value }

func (f *fakeRoots) Roots(visit func(*mem.Value)) {
	for i := range f.refs {
		visit(&f.refs[i])
	}
}

func TestRootSetAttachment(t *testing.T) {
	tr := New()
	sp := mem.NewSpace()
	root := tr.Root()
	child := tr.Fork(root)
	rs := &fakeRoots{}
	child.AddRootSet(rs)
	if len(child.RootSets) != 1 {
		t.Fatal("AddRootSet failed")
	}
	// Merge carries root sets upward.
	tr.Merge(child, root, sp)
	if len(root.RootSets) != 1 {
		t.Fatal("merge dropped root sets")
	}
	root.RemoveRootSet(rs)
	if len(root.RootSets) != 0 {
		t.Fatal("RemoveRootSet failed")
	}
}

func TestConcurrentForks(t *testing.T) {
	tr := New()
	root := tr.Root()
	done := make(chan []*Heap, 4)
	for g := 0; g < 4; g++ {
		go func() {
			var mine []*Heap
			h := tr.Fork(root)
			for i := 0; i < 100; i++ {
				h = tr.Fork(h)
				mine = append(mine, h)
			}
			done <- mine
		}()
	}
	var chains [][]*Heap
	for g := 0; g < 4; g++ {
		chains = append(chains, <-done)
	}
	// Each chain is internally ancestral; chains are mutually concurrent.
	for _, ch := range chains {
		for i := 1; i < len(ch); i++ {
			if !tr.IsAncestor(ch[i-1], ch[i]) {
				t.Fatal("chain ancestry broken under concurrent forks")
			}
		}
	}
	if tr.IsAncestor(chains[0][0], chains[1][0]) {
		t.Fatal("separate chains must not be ancestral")
	}
}
