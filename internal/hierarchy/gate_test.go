package hierarchy

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGateEpochAdvances(t *testing.T) {
	var g Gate
	if g.Epoch() != 0 || g.Collecting() {
		t.Fatal("fresh gate not idle")
	}
	g.BeginCollect()
	if !g.Collecting() {
		t.Fatal("collecting bit not visible")
	}
	g.EndCollect()
	if g.Epoch() != 1 || g.Collecting() {
		t.Fatalf("after one collection: epoch=%d collecting=%v", g.Epoch(), g.Collecting())
	}
	for i := 0; i < 5; i++ {
		g.BeginCollect()
		g.EndCollect()
	}
	if g.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6", g.Epoch())
	}
}

func TestGateReadersExcludeCollection(t *testing.T) {
	var g Gate
	g.EnterReader()
	g.EnterReader()

	started := make(chan struct{})
	finished := atomic.Bool{}
	go func() {
		close(started)
		g.BeginCollect() // must wait for both readers
		finished.Store(true)
		g.EndCollect()
	}()
	<-started
	// The collector cannot finish BeginCollect while readers are inside.
	// (No sleep-based assertion: just verify order via the collecting bit.)
	for !g.Collecting() {
	}
	if finished.Load() {
		t.Fatal("BeginCollect returned with readers inside")
	}
	g.ExitReader()
	if finished.Load() {
		t.Fatal("BeginCollect returned with a reader still inside")
	}
	g.ExitReader()
	for !finished.Load() {
	}
	// New readers are admitted once the epoch turned even.
	g.EnterReader()
	g.ExitReader()
	if g.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", g.Epoch())
	}
}

func TestGateEndCollectWithoutBeginPanics(t *testing.T) {
	var g Gate
	defer func() {
		if recover() == nil {
			t.Fatal("EndCollect without BeginCollect must panic")
		}
	}()
	g.EndCollect()
}

// TestGateStress interleaves many readers with repeated collections under
// the race detector and checks mutual exclusion with a plain (unguarded)
// counter: the gate itself must provide the ordering.
func TestGateStress(t *testing.T) {
	var g Gate
	var inside atomic.Int32
	violations := atomic.Int32{}
	stop := atomic.Bool{}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g.EnterReader()
				inside.Add(1)
				inside.Add(-1)
				g.ExitReader()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		g.BeginCollect()
		if inside.Load() != 0 {
			violations.Add(1)
		}
		g.EndCollect()
	}
	stop.Store(true)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d gate violations", v)
	}
	if g.Epoch() != 2000 {
		t.Fatalf("epoch = %d, want 2000", g.Epoch())
	}
}
