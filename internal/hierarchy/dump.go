package hierarchy

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mplgo/internal/mem"
)

// Heap-tree introspection: a race-safe snapshot of the live hierarchy for
// the /debug/heaptree endpoint and offline dumps. The snapshot reads only
// immutable fields (ID, parent, depth, chunk capacity) and atomics (dead,
// liveChildren, cgcStatus, chunk heap ids and pin counts), so it can run
// from any goroutine while the computation is in full flight — it never
// touches the owner-only views (Chunks, Pinned, Remset) that the running
// task mutates without synchronization. Per-heap sizes are therefore
// reconstructed from the chunk table (grouped by each chunk's atomic heap
// id) rather than read off the heaps.

// cgcStateNames maps the status word to its display name.
var cgcStateNames = [...]string{
	cgcActive:   "active",
	cgcParked:   "parked",
	cgcScoped:   "scoped",
	cgcSweeping: "sweeping",
}

// CGCStateName returns the heap's concurrent-collection status as a string:
// "active", "parked", "scoped", or "sweeping". Safe from any goroutine;
// the value is a snapshot and may be stale by the time it is observed.
func (h *Heap) CGCStateName() string {
	s := h.cgcStatus.Load()
	if int(s) < len(cgcStateNames) {
		return cgcStateNames[s]
	}
	return fmt.Sprintf("unknown(%d)", s)
}

// HeapDump is the introspection record for one live heap.
type HeapDump struct {
	ID           uint32 `json:"id"`
	Parent       uint32 `json:"parent,omitempty"` // 0 for the root
	Depth        int    `json:"depth"`
	LiveChildren int    `json:"live_children"`
	CGCState     string `json:"cgc_state"`
	Chunks       int    `json:"chunks"`
	Words        int64  `json:"words"`
	Pinned       int    `json:"pinned"`
}

// TreeDump is a point-in-time snapshot of the live heap hierarchy.
type TreeDump struct {
	Heaps      []HeapDump `json:"heaps"`
	LiveHeaps  int        `json:"live_heaps"`
	TotalWords int64      `json:"total_words"`
	Pinned     int        `json:"pinned"`
}

// DumpTree snapshots the live heap hierarchy. Chunk counts, sizes, and
// pinned-object counts come from one pass over the chunk table; a chunk
// whose owner died between the heap walk and the chunk walk is dropped
// (its words reappear under the parent on the next snapshot). The result
// is ordered by heap id, parents before children.
func (t *Tree) DumpTree(space *mem.Space) *TreeDump {
	type agg struct {
		chunks int
		words  int64
		pinned int
	}
	live := t.Live()
	byID := make(map[uint32]*agg, len(live))
	for _, h := range live {
		byID[h.ID] = &agg{}
	}
	space.ForEachChunk(func(c *mem.Chunk) {
		a := byID[c.HeapID()]
		if a == nil {
			return // released, or owned by a heap that just merged away
		}
		a.chunks++
		a.words += int64(c.Words())
		a.pinned += c.PinnedCount()
	})
	d := &TreeDump{LiveHeaps: len(live)}
	for _, h := range live {
		a := byID[h.ID]
		var parent uint32
		if h.parent != nil {
			parent = h.parent.ID
		}
		d.Heaps = append(d.Heaps, HeapDump{
			ID:           h.ID,
			Parent:       parent,
			Depth:        h.depth,
			LiveChildren: h.LiveChildren(),
			CGCState:     h.CGCStateName(),
			Chunks:       a.chunks,
			Words:        a.words,
			Pinned:       a.pinned,
		})
		d.TotalWords += a.words
		d.Pinned += a.pinned
	}
	sort.Slice(d.Heaps, func(i, j int) bool { return d.Heaps[i].ID < d.Heaps[j].ID })
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (d *TreeDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// dotColors shades nodes by CGC state so a claimed subtree is visible at a
// glance in the rendered graph.
var dotColors = map[string]string{
	"active":   "white",
	"parked":   "lightgrey",
	"scoped":   "lightblue",
	"sweeping": "lightsalmon",
}

// WriteDOT writes the snapshot as a Graphviz digraph: one node per live
// heap (labelled with depth, size, and pin count, coloured by CGC state),
// one edge per parent link.
func (d *TreeDump) WriteDOT(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("digraph heaps {\n")
	pr("  node [shape=box, style=filled, fontname=\"monospace\"];\n")
	for _, h := range d.Heaps {
		color := dotColors[h.CGCState]
		if color == "" {
			color = "white"
		}
		pr("  h%d [label=\"heap %d\\ndepth %d · %s\\n%d chunks / %d words\\npinned %d\", fillcolor=%q];\n",
			h.ID, h.ID, h.Depth, h.CGCState, h.Chunks, h.Words, h.Pinned, color)
	}
	for _, h := range d.Heaps {
		if h.Parent != 0 {
			pr("  h%d -> h%d;\n", h.Parent, h.ID)
		}
	}
	pr("}\n")
	return err
}
