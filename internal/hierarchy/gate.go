package hierarchy

import (
	"runtime"
	"sync/atomic"

	"mplgo/internal/chaos"
)

// Gate is the per-heap collection gate that replaced Heap.Mu: a seqlock-
// style collection epoch fused with a reader count in one atomic word.
//
//	bit   0       collecting — odd epoch: an LGC (or merge) is relocating
//	              or re-owning this heap's objects right now
//	bits  2..31   readers — entanglement slow paths currently pinning or
//	              validating objects of this heap (bit 1 spare)
//	bits 32..63   epoch — completed collections/merges of this heap
//
// Readers never block each other: entering is one atomic add (plus an undo
// add in the rare case a collection is underway). A collector publishes the
// odd epoch and waits for the reader count to drain; reader critical
// sections are a handful of instructions, so the wait is bounded and short.
// This reproduces MPL's lock-free pin/collect coordination: the per-object
// decisions are made by single-CAS header transitions (package mem), and
// the gate only orders the bulk phases — chunk release and ownership flips
// — against in-flight pins.
type Gate struct {
	state atomic.Uint64

	// Chaos, when set, injects spurious contention at EnterReader
	// (chaos.GateAcquire): the reader backs off once as if a collection
	// were underway, exercising the undo-and-reenter path that real runs
	// take only when a collection races the entanglement slow path.
	Chaos *chaos.Injector
}

const (
	gateCollecting = uint64(1) << 0
	gateReader     = uint64(1) << 2
	gateReaderMask = uint64(1)<<32 - 1 - 3 // bits 2..31
	gateEpoch      = uint64(1) << 32
)

// EnterReader announces an entanglement slow path against this heap and
// returns once no collection is relocating it. While the caller holds the
// gate (until ExitReader), the heap's chunks cannot change ownership and
// its objects cannot be relocated or reclaimed.
func (g *Gate) EnterReader() {
	spurious := g.Chaos != nil && g.Chaos.Should(chaos.GateAcquire)
	for {
		s := g.state.Add(gateReader)
		if s&gateCollecting == 0 {
			if spurious {
				// Injected contention: undo the announcement, yield, and
				// re-enter, exactly as if a collection had flashed by.
				spurious = false
				g.state.Add(^(gateReader - 1))
				runtime.Gosched()
				continue
			}
			return
		}
		// A collection is underway: undo the announcement and wait for the
		// epoch to turn even. Gosched rather than spinning hard: on small
		// GOMAXPROCS the collector may need this very thread to progress.
		g.state.Add(^(gateReader - 1))
		for g.state.Load()&gateCollecting != 0 {
			runtime.Gosched()
		}
	}
}

// ExitReader ends the announcement made by EnterReader.
func (g *Gate) ExitReader() {
	g.state.Add(^(gateReader - 1))
}

// BeginCollect publishes the odd epoch (collection in progress) and waits
// for announced readers to drain. Only the heap's owning task collects or
// merges it, so collector-side calls never contend; the nested-collect
// panic guards against misuse. After BeginCollect returns, no entanglement
// slow path can pin, publish, or validate against this heap until
// EndCollect.
func (g *Gate) BeginCollect() {
	for {
		s := g.state.Load()
		if s&gateCollecting != 0 {
			panic("hierarchy: nested BeginCollect on one heap")
		}
		if g.state.CompareAndSwap(s, s|gateCollecting) {
			break
		}
	}
	// Drain announced readers. New arrivals see the collecting bit and
	// back off, so the count is monotonically draining.
	for g.state.Load()&gateReaderMask != 0 {
		runtime.Gosched()
	}
}

// TryBeginCollect attempts the BeginCollect transition without panicking
// on contention: it returns false immediately if another collector holds
// the gate. Used by the concurrent collector (gc.CGC), whose cycles are
// opportunistic — a heap whose gate is busy (a merge retiring it, say) is
// simply skipped this cycle. On success it drains announced readers
// exactly like BeginCollect.
func (g *Gate) TryBeginCollect() bool {
	for {
		s := g.state.Load()
		if s&gateCollecting != 0 {
			return false
		}
		if g.state.CompareAndSwap(s, s|gateCollecting) {
			break
		}
	}
	for g.state.Load()&gateReaderMask != 0 {
		runtime.Gosched()
	}
	return true
}

// WaitBeginCollect acquires the gate like BeginCollect but waits out a
// concurrent holder instead of panicking. Since CGC, the owner-exclusivity
// assumption behind BeginCollect's nested-collect panic no longer holds
// for merges: a join can find the concurrent collector briefly holding the
// child's or parent's gate (root harvest, sweep), and must wait its
// bounded critical section out rather than abort.
func (g *Gate) WaitBeginCollect() {
	for !g.TryBeginCollect() {
		runtime.Gosched()
	}
}

// EndCollect publishes the next even epoch, re-admitting readers. The
// single add clears the collecting bit (set by BeginCollect, so the -1
// cannot borrow) and the carry increments the epoch field; transient
// reader announcements that are about to back off are preserved exactly.
func (g *Gate) EndCollect() {
	if g.state.Load()&gateCollecting == 0 {
		panic("hierarchy: EndCollect without BeginCollect")
	}
	g.state.Add(gateEpoch - 1)
}

// Epoch returns the number of completed collections/merges of this heap.
func (g *Gate) Epoch() uint64 { return g.state.Load() >> 32 }

// Readers returns the number of announced readers currently inside the
// gate. Used by the invariant checker: at quiescent points it must be zero.
func (g *Gate) Readers() int { return int((g.state.Load() & gateReaderMask) >> 2) }

// Collecting reports whether the heap is currently being relocated.
func (g *Gate) Collecting() bool { return g.state.Load()&gateCollecting != 0 }
