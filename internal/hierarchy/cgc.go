package hierarchy

import (
	"mplgo/internal/mem"
)

// Concurrent-collection coordination. A heap participating in a CGC cycle
// (gc/cgc.go) carries a status word whose idle side doubles as the owner's
// park flag: a heap is claimable exactly while its owner task is suspended
// in a non-lazy join, and the owner cannot resume past an in-flight cycle.
// The status word decides *who* may touch the heap; the existing collection
// Gate still orders the bulk phases themselves — the collector holds it
// across root harvest and sweep, merges wait it out via WaitBeginCollect,
// and no new lock is introduced.
//
//	         CGCPark (owner)           CGCClaim            CGCBeginSweep
//	         ────────────►           (CAS, under gate)        (CAS)
//	active                 parked ──────────► scoped ──────────► sweeping
//	         ◄────────────   ▲                  │                   │
//	         CGCTryResume    └──────────────────┴───────────────────┘
//	         (owner, CAS)       CGCRelease (collector: sweep done / abandon)
//
// The protocol's load-bearing property: a heap is scoped or sweeping ONLY
// while its owner is parked (or spinning in its resume loop), so the
// collector never races the owner's bump pointer, free-list carving, or
// merges. "LiveChildren > 0" alone would not give that — between a join
// completing and its merges running, the owner executes with live children
// still counted. Resume waits out the cycle rather than revoking the
// claim: the cycle always completes the sweep of a heap it claimed, which
// is what makes the collector productive on schedules where fork–join
// windows are shorter than its scheduling latency (a single-P runtime
// being the extreme case). The wait is safe: the owner keeps passing
// safepoints while it spins, so the mark phase never waits on it, and a
// waiting owner touches nothing the sweep restructures. Merges need no
// revocation hook at all: both sides of a merge have active owners (the
// child's task finished; the parent's is running the join), so neither can
// be scoped.
const (
	// cgcActive: the owner is (or may be) running in the heap. Never
	// claimable. The zero value, so heaps are born active.
	cgcActive uint32 = iota
	// cgcParked: the owner is suspended in a non-lazy ForkJoin and will not
	// touch the heap, its chunks, or its allocator until CGCResume. The
	// only claimable state.
	cgcParked
	// cgcScoped: the heap is in the current cycle's snapshot; the collector
	// is (or will be) marking it.
	cgcScoped
	// cgcSweeping: the collector is rebuilding the heap's chunk list and
	// free spans under the heap's gate.
	cgcSweeping
)

// CGCPark marks the heap's owner as suspended, opening the claim window.
// Owner-only, immediately before the ForkJoin of a non-lazy Par; the owner
// must not touch the heap again until CGCResume returns.
func (h *Heap) CGCPark() { h.cgcStatus.Store(cgcParked) }

// CGCTryResume attempts to close the claim window: the owner's first act
// after its join completes. A false return means a cycle holds the heap
// (scoped or sweeping); the owner must wait for the collector's CGCRelease
// and retry rather than revoke the claim. The retry loop lives in the
// runtime layer (core.Task.cgcResumeHeap) because the owner must keep
// passing collection safepoints while it waits: the cycle may have claimed
// the heap before its barrier flip, in which case its ragged handshake is
// waiting on this very task, and blocking here without re-scanning would
// deadlock owner and collector against each other.
func (h *Heap) CGCTryResume() bool {
	return h.cgcStatus.CompareAndSwap(cgcParked, cgcActive)
}

// CGCClaimable reports whether a claim could currently succeed — the
// collector's cheap pre-filter before it takes the heap's gate.
func (h *Heap) CGCClaimable() bool { return h.cgcStatus.Load() == cgcParked }

// CGCClaim attempts to place the heap in a concurrent cycle's snapshot;
// it succeeds only while the owner is parked. Collector-only; called while
// holding the heap's gate so bitmap installation is ordered against
// readers and late merges.
func (h *Heap) CGCClaim() bool {
	return h.cgcStatus.CompareAndSwap(cgcParked, cgcScoped)
}

// CGCBeginSweep performs the scoped→sweeping transition. Collector-only.
// Under the park protocol the CAS cannot fail for a heap the cycle still
// holds; the result is kept so a future revocation path would be caught.
func (h *Heap) CGCBeginSweep() bool {
	return h.cgcStatus.CompareAndSwap(cgcScoped, cgcSweeping)
}

// CGCRelease hands the heap back at the end of a cycle (after its sweep,
// or when the cycle is abandoned). Collector-only. The heap returns to
// parked, not active: its owner is still suspended (or blocked in
// CGCResume, whose CAS this store enables) and a long park window may span
// several cycles.
func (h *Heap) CGCRelease() { h.cgcStatus.Store(cgcParked) }

// PushReusable hands a chunk whose free list the sweep just threaded back
// to the owner. Collector-only, called under the heap's gate; the owner
// drains at its next allocation safepoint.
func (h *Heap) PushReusable(c *mem.Chunk) { h.reuseBuf.push(c) }

// DrainReusable detaches and visits the swept-chunk handoff buffer.
// Owner-only. The local collector also calls it (discarding) at collection
// start: chunks it is about to evacuate must not linger as allocation
// targets.
func (h *Heap) DrainReusable(visit func(*mem.Chunk)) {
	h.reuseBuf.drain(func(c *mem.Chunk) {
		if visit != nil {
			visit(c)
		}
	})
}

// peek visits the entries of a publication stack without detaching it.
// Caller must hold the gate closed (BeginCollect/TryBeginCollect): pushes
// happen under the reader gate, so a closed gate means no slot is
// mid-write and every claimed slot is visible.
func (s *stack[T]) peek(visit func(T)) {
	for sg := s.top.Load(); sg != nil; sg = sg.next {
		n := int(sg.n.Load())
		if n > segCap {
			n = segCap
		}
		for i := 0; i < n; i++ {
			visit(sg.vals[i])
		}
	}
}

// ForEachPinned visits every pinned object recorded against this heap —
// the owner-only view plus the lock-free publication buffer — without
// draining or mutating either. Collector root harvest; caller holds the
// heap's gate.
func (h *Heap) ForEachPinned(visit func(mem.Ref)) {
	for _, r := range h.Pinned {
		visit(r)
	}
	h.pinBuf.peek(visit)
}

// ForEachRemembered visits every remembered down-pointer entry targeting
// this heap — owner view plus publication buffer — without draining.
// Collector root harvest; caller holds the heap's gate.
func (h *Heap) ForEachRemembered(visit func(RememberedEntry)) {
	for _, e := range h.Remset {
		visit(e)
	}
	h.remBuf.peek(visit)
}

// PruneRemset drops remembered entries rejected by keep. Called by the
// sweep (owner parked, gate held) to drop entries whose holders it just
// freed, so later collections never interpret a KFree span as a holder.
func (h *Heap) PruneRemset(keep func(RememberedEntry) bool) {
	kept := h.Remset[:0]
	for _, e := range h.Remset {
		if keep(e) {
			kept = append(kept, e)
		}
	}
	h.Remset = kept
}

// ReplaceChunks installs the post-sweep chunk list. Collector-only, under
// the heap's gate with the owner parked.
func (h *Heap) ReplaceChunks(cs []*mem.Chunk) { h.Chunks = cs }
