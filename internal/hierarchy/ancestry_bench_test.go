package hierarchy

// Microbenchmarks comparing the ancestry oracles head to head. Each
// benchmark runs once per oracle (forkpath = DePa fork-path words,
// orderlist = retired seqlock'd Euler-tour list) over the same 3^6
// balanced tree, uncontended and then contended: a background goroutine
// performing a fork/merge churn loop, which on the legacy oracle bumps the
// tree seqlock (forcing query retries) and on the fork-path oracle touches
// nothing a query reads.

import (
	"math/rand"
	"testing"

	"mplgo/internal/mem"
)

func benchTree(mode AncestryMode) (*Tree, []*Heap) {
	tr := NewWithAncestry(mode)
	rng := rand.New(rand.NewSource(99))
	heaps := []*Heap{tr.Root()}
	frontier := []*Heap{tr.Root()}
	for depth := 0; depth < 6; depth++ {
		var next []*Heap
		for _, p := range frontier {
			for c := 0; c < 3; c++ {
				h := tr.Fork(p)
				heaps = append(heaps, h)
				next = append(next, h)
			}
		}
		frontier = next
	}
	rng.Shuffle(len(heaps), func(i, j int) { heaps[i], heaps[j] = heaps[j], heaps[i] })
	return tr, heaps
}

// churn forks a child of p and immediately merges it back, forever: the
// legacy oracle pays two label inserts and two deletes per round, each
// bumping the seqlock that in-flight queries must reread.
func churn(tr *Tree, p *Heap, stop <-chan struct{}) {
	sp := mem.NewSpace()
	for {
		select {
		case <-stop:
			return
		default:
		}
		tr.Merge(tr.Fork(p), p, sp)
	}
}

func ancestryModes() []struct {
	name string
	mode AncestryMode
} {
	return []struct {
		name string
		mode AncestryMode
	}{
		{"forkpath", AncestryForkPath},
		{"orderlist", AncestryOrderList},
	}
}

func BenchmarkIsAncestor(b *testing.B) {
	for _, m := range ancestryModes() {
		b.Run(m.name, func(b *testing.B) {
			tr, heaps := benchTree(m.mode)
			n := len(heaps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.IsAncestor(heaps[i%n], heaps[(i*7+3)%n])
			}
		})
	}
}

func BenchmarkIsAncestorContended(b *testing.B) {
	for _, m := range ancestryModes() {
		b.Run(m.name, func(b *testing.B) {
			tr, heaps := benchTree(m.mode)
			n := len(heaps)
			stop := make(chan struct{})
			go churn(tr, tr.Root(), stop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.IsAncestor(heaps[i%n], heaps[(i*7+3)%n])
			}
			b.StopTimer()
			close(stop)
		})
	}
}

func BenchmarkLCADepth(b *testing.B) {
	for _, m := range ancestryModes() {
		b.Run(m.name, func(b *testing.B) {
			tr, heaps := benchTree(m.mode)
			n := len(heaps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.LCADepth(heaps[i%n], heaps[(i*7+3)%n])
			}
		})
	}
}

func BenchmarkLCADepthContended(b *testing.B) {
	for _, m := range ancestryModes() {
		b.Run(m.name, func(b *testing.B) {
			tr, heaps := benchTree(m.mode)
			n := len(heaps)
			stop := make(chan struct{})
			go churn(tr, tr.Root(), stop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.LCADepth(heaps[i%n], heaps[(i*7+3)%n])
			}
			b.StopTimer()
			close(stop)
		})
	}
}
