// Package hierarchy maintains the tree of heaps that mirrors the fork–join
// task tree, the central structure of hierarchical heap memory management.
//
// Each task owns a leaf heap; forks create child heaps and joins merge a
// child back into its parent. Heap identity is carried by chunks (package
// mem), so a merge reassigns chunk ownership without visiting objects.
// Ancestor queries — the core primitive of the entanglement barriers — are
// answered in O(1) with an Euler-tour interval test over an
// order-maintenance list (package order).
package hierarchy

import (
	"sync"
	"sync/atomic"

	"mplgo/internal/mem"
	"mplgo/internal/order"
)

// RootSet enumerates mutable values that must be treated as GC roots.
// The callback receives the address of each root slot so collectors can
// update it when objects move; non-reference values are left untouched.
// Implemented by the runtime's shadow-stack frames.
type RootSet interface {
	Roots(visit func(*mem.Value))
}

// RememberedEntry records a down-pointer: Holder's payload word Index may
// point into the heap holding the entry. Collections of that heap read the
// field through Holder to find (and forward) the target.
type RememberedEntry struct {
	Holder mem.Ref
	Index  int
}

// Heap is one node of the heap hierarchy.
type Heap struct {
	ID     uint32
	parent *Heap
	depth  int

	pre, post *order.Elem // Euler-tour interval; guarded by Tree.mu

	// Mu serializes the entanglement slow path (pinning objects in this
	// heap, remembered-set appends from foreign writers) against this
	// heap's local collections.
	Mu sync.Mutex

	// Chunks are the chunks currently owned by this heap. Mutated only by
	// the owning task (allocation, collection, merging of its children).
	Chunks []*mem.Chunk

	// Remset holds down-pointer entries whose targets may live in this
	// heap. Guarded by Mu when appended by foreign tasks.
	Remset []RememberedEntry

	// Pinned lists pinned objects residing in this heap. Guarded by Mu.
	Pinned []mem.Ref

	// RootSets are the shadow stacks of tasks attached to this heap: the
	// owning task and any suspended ancestors of the current leaf.
	RootSets []RootSet

	// liveChildren counts forked child heaps that have not merged back.
	// A chain of heaps with liveChildren <= 1 ending at the current leaf
	// is exclusively owned and thus locally collectible.
	liveChildren atomic.Int32

	// PendingForks counts outstanding forks whose branches run in this
	// heap itself (lazy-heap mode, branch not stolen). Their captured
	// references are invisible to the collector, so the heap must not be
	// collected while any are outstanding.
	PendingForks atomic.Int32

	// Dead marks heaps that merged into their parent.
	Dead bool

	// Stats
	Collections int   // local collections rooted at this heap
	CopiedWords int64 // words copied by those collections
}

// Depth returns the heap's depth (root = 0).
func (h *Heap) Depth() int { return h.depth }

// Parent returns the heap's parent, or nil for the root.
func (h *Heap) Parent() *Heap { return h.parent }

// LiveChildren returns the number of unjoined child heaps.
func (h *Heap) LiveChildren() int { return int(h.liveChildren.Load()) }

// AddRootSet attaches a shadow stack to the heap.
func (h *Heap) AddRootSet(rs RootSet) { h.RootSets = append(h.RootSets, rs) }

// RemoveRootSet detaches a shadow stack from the heap.
func (h *Heap) RemoveRootSet(rs RootSet) {
	for i, x := range h.RootSets {
		if x == rs {
			h.RootSets = append(h.RootSets[:i], h.RootSets[i+1:]...)
			return
		}
	}
}

// AddRemembered records a down-pointer entry. Safe for concurrent use.
func (h *Heap) AddRemembered(holder mem.Ref, index int) {
	h.Mu.Lock()
	h.Remset = append(h.Remset, RememberedEntry{holder, index})
	h.Mu.Unlock()
}

// AddPinned records a pinned object residing in this heap.
// The caller must hold h.Mu (the entanglement slow path does).
func (h *Heap) AddPinned(r mem.Ref) { h.Pinned = append(h.Pinned, r) }

// Tree is the heap hierarchy.
type Tree struct {
	mu    sync.RWMutex // guards the order list and structural edits
	order *order.List
	heaps []*Heap // id -> heap; id 0 unused
	root  *Heap

	// UseWalkAncestor switches ancestor queries to naive parent walking,
	// for the AblateAncestor experiment.
	UseWalkAncestor bool
}

// New creates a hierarchy containing only the root heap.
func New() *Tree {
	t := &Tree{order: order.NewList()}
	t.heaps = make([]*Heap, 1, 64)
	root := &Heap{ID: 1, depth: 0}
	root.pre = t.order.Base().InsertAfter()
	root.post = root.pre.InsertAfter()
	t.heaps = append(t.heaps, root)
	t.root = root
	return t
}

// Root returns the root heap.
func (t *Tree) Root() *Heap { return t.root }

// Get returns the heap with the given id.
func (t *Tree) Get(id uint32) *Heap {
	t.mu.RLock()
	h := t.heaps[id]
	t.mu.RUnlock()
	return h
}

// Count returns the number of heaps ever created.
func (t *Tree) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.heaps) - 1
}

// Live returns all heaps that have not merged away.
func (t *Tree) Live() []*Heap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Heap
	for _, h := range t.heaps[1:] {
		if !h.Dead {
			out = append(out, h)
		}
	}
	return out
}

// Fork creates a new child heap of parent.
func (t *Tree) Fork(parent *Heap) *Heap {
	t.mu.Lock()
	h := &Heap{ID: uint32(len(t.heaps)), parent: parent, depth: parent.depth + 1}
	// Nest the child's Euler interval immediately inside the parent's pre
	// visit; sibling intervals stack leftward, which preserves nesting.
	h.pre = parent.pre.InsertAfter()
	h.post = h.pre.InsertAfter()
	t.heaps = append(t.heaps, h)
	t.mu.Unlock()
	parent.liveChildren.Add(1)
	return h
}

// IsAncestor reports whether a is an ancestor of (or equal to) d.
func (t *Tree) IsAncestor(a, d *Heap) bool {
	if a == d {
		return true
	}
	if t.UseWalkAncestor {
		for x := d; x != nil; x = x.parent {
			if x == a {
				return true
			}
		}
		return false
	}
	t.mu.RLock()
	ok := order.Leq(a.pre, d.pre) && order.Leq(d.post, a.post)
	t.mu.RUnlock()
	return ok
}

// LCA returns the least common ancestor of a and b.
func (t *Tree) LCA(a, b *Heap) *Heap {
	for x := a; x != nil; x = x.parent {
		if t.IsAncestor(x, b) {
			return x
		}
	}
	return t.root
}

// Merge folds child into parent at a join: chunk ownership, remembered
// sets, pinned objects, and root sets all move up; pinned objects whose
// unpin depth has been reached are unpinned. The caller is the task owning
// parent (joins are serialized per parent by fork–join structure).
//
// space is needed to flip chunk owners and unpin headers.
func (t *Tree) Merge(child, parent *Heap, space *mem.Space) (unpinned int) {
	if child.parent != parent {
		panic("hierarchy: merge of non-child")
	}
	// Take both locks so entangled readers never observe a half-merged
	// heap. Lock order: parent before child (consistent with depth).
	parent.Mu.Lock()
	child.Mu.Lock()

	for _, c := range child.Chunks {
		c.SetHeapID(parent.ID)
	}
	parent.Chunks = append(parent.Chunks, child.Chunks...)
	child.Chunks = nil

	parent.Remset = append(parent.Remset, child.Remset...)
	child.Remset = nil

	// Unpin objects whose unpin depth has been reached: the entangled
	// tasks have joined, so these are ordinary objects of the merged heap.
	for _, r := range child.Pinned {
		h := space.Header(r)
		if h.Kind() == mem.KForward {
			continue // stale entry; object was copied and list rebuilt elsewhere
		}
		if h.Pinned() && h.UnpinDepth() >= parent.depth {
			space.Unpin(r)
			unpinned++
		} else if h.Pinned() {
			parent.Pinned = append(parent.Pinned, r)
		}
	}
	child.Pinned = nil

	parent.RootSets = append(parent.RootSets, child.RootSets...)
	child.RootSets = nil

	child.Dead = true
	parent.Collections += child.Collections
	parent.CopiedWords += child.CopiedWords

	child.Mu.Unlock()
	parent.Mu.Unlock()

	t.mu.Lock()
	child.pre.Delete()
	child.post.Delete()
	t.mu.Unlock()

	parent.liveChildren.Add(-1)
	return unpinned
}

// ExclusiveSuffix returns the chain of heaps from leaf upward that are
// exclusively owned by the task holding leaf: the walk stops at the first
// heap that has other live children (a concurrent subtree) or at the root's
// parent. The returned slice is ordered leaf-first. Collections may safely
// move unpinned objects within this suffix.
func (t *Tree) ExclusiveSuffix(leaf *Heap) []*Heap {
	if leaf.liveChildren.Load() != 0 {
		return nil
	}
	out := []*Heap{leaf}
	h := leaf
	for {
		p := h.parent
		// The parent is exclusive only if our chain is its sole live child.
		if p == nil || p.liveChildren.Load() != 1 {
			break
		}
		out = append(out, p)
		h = p
	}
	return out
}
