// Package hierarchy maintains the tree of heaps that mirrors the fork–join
// task tree, the central structure of hierarchical heap memory management.
//
// Each task owns a leaf heap; forks create child heaps and joins merge a
// child back into its parent. Heap identity is carried by chunks (package
// mem), so a merge reassigns chunk ownership without visiting objects.
// Ancestor queries — the core primitive of the entanglement barriers — are
// answered in O(1) from DePa-style fork-path words (package forkpath):
// immutable per-heap values assigned at Fork, making IsAncestor a prefix
// test and LCA a longest-common-prefix computation over pure loads, with
// no shared mutable label space, no seqlock retries, and no rebalancing.
//
// The retired oracle — an Euler-tour interval test over a seqlock'd
// order-maintenance list (package order) — is kept behind AncestryOrderList
// for ablation, plus AncestryBoth, a differential-testing mode that runs
// every query through both oracles and panics on divergence.
package hierarchy

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mplgo/internal/attr"
	"mplgo/internal/chaos"
	"mplgo/internal/forkpath"
	"mplgo/internal/mem"
	"mplgo/internal/order"
	"mplgo/internal/trace"
)

// AncestryMode selects the ancestry oracle of a Tree.
type AncestryMode int

const (
	// AncestryForkPath answers ancestry from immutable DePa fork-path
	// words: the default.
	AncestryForkPath AncestryMode = iota
	// AncestryOrderList answers from the legacy seqlock'd Euler-tour
	// order-maintenance list, for ablation and regression comparison.
	AncestryOrderList
	// AncestryBoth maintains both structures, answers every query with
	// both, and panics on divergence: the differential-testing mode.
	AncestryBoth
)

// TreeStats counts ancestry-oracle traffic for trace attribution. The
// pointer is nil in timing runs, so the hot path pays one nil test; the
// runtime installs it alongside the tracer.
type TreeStats struct {
	// AncestryQueries counts IsAncestor/LCA/LCADepth calls that reached
	// an oracle (equal-heap shortcuts excluded).
	AncestryQueries atomic.Int64
	_               [56]byte // keep the two counters off one cache line
	// SeqlockRetries counts legacy order-list query attempts that
	// overlapped a structural edit and had to retry; always zero with the
	// fork-path oracle, which has no retry path at all.
	SeqlockRetries atomic.Int64
}

// RootSet enumerates mutable values that must be treated as GC roots.
// The callback receives the address of each root slot so collectors can
// update it when objects move; non-reference values are left untouched.
// Implemented by the runtime's shadow-stack frames.
type RootSet interface {
	Roots(visit func(*mem.Value))
}

// RememberedEntry records a down-pointer: Holder's payload word Index may
// point into the heap holding the entry. Collections of that heap read the
// field through Holder to find (and forward) the target.
type RememberedEntry struct {
	Holder mem.Ref
	Index  int
}

// seg/stack is a segmented Treiber stack: the lock-free publication buffer
// foreign tasks push into. Slots within the top segment are claimed with a
// fetch-add, so the common push is two atomic ops and no allocation; a new
// segment (one small allocation per segCap pushes) is installed by CAS
// when the top fills. Drain (owner-only) is a single swap.
//
// The slot stores themselves are plain: every push happens while holding
// the owning heap's reader gate, and drain runs only after BeginCollect
// has quiesced the gate, so the gate's atomics order claimed-and-written
// slots before any drain that reads them.
const segCap = 16

type seg[T any] struct {
	vals [segCap]T
	n    atomic.Int32 // claimed slots; may transiently exceed segCap
	next *seg[T]
}

type stack[T any] struct {
	top atomic.Pointer[seg[T]]
}

func (s *stack[T]) push(v T) {
	for {
		sg := s.top.Load()
		if sg != nil {
			if i := int(sg.n.Add(1)) - 1; i < segCap {
				sg.vals[i] = v
				return
			}
			// Segment full (the overshoot is harmless; drain clamps).
		}
		nsg := &seg[T]{next: sg}
		nsg.vals[0] = v
		nsg.n.Store(1)
		if s.top.CompareAndSwap(sg, nsg) {
			return
		}
		// Lost the install race; retry against the new top.
	}
}

// drain atomically detaches the stack and visits its entries in
// unspecified order.
func (s *stack[T]) drain(visit func(T)) {
	for sg := s.top.Swap(nil); sg != nil; sg = sg.next {
		n := int(sg.n.Load())
		if n > segCap {
			n = segCap
		}
		for i := 0; i < n; i++ {
			visit(sg.vals[i])
		}
	}
}

// Heap is one node of the heap hierarchy.
type Heap struct {
	ID     uint32
	parent *Heap
	depth  int

	// path is the heap's immutable fork path, assigned under Tree.mu at
	// Fork and read lock-free by every ancestry query thereafter.
	path forkpath.Path

	// forkSeq numbers this heap's children in fork order (never reused);
	// guarded by Tree.mu.
	forkSeq uint64

	// lcaKey/lcaVal are a one-entry unpin-depth cache for the entanglement
	// barriers: the depth of LCA(this leaf, lcaKey). Owner-only plain
	// fields (the barriers run on the strand owning the leaf, the same
	// single-writer discipline as TraceRing). No invalidation is needed:
	// ancestry between two heap objects is immutable, so a cached depth
	// stays correct even after the key heap merges away.
	lcaKey *Heap
	lcaVal int

	pre, post *order.Elem // legacy Euler-tour interval; nil in fork-path mode, guarded by Tree.mu

	// Gate orders this heap's bulk phases — local collection and the merge
	// that retires it — against in-flight entanglement slow paths. Readers
	// enter with one atomic add; there is no mutex anywhere on that path
	// (formerly deviation D3).
	Gate Gate

	// Chunks are the chunks currently owned by this heap. Mutated only by
	// the owning task (allocation, collection, merging of its children).
	Chunks []*mem.Chunk

	// Remset holds down-pointer entries whose targets may live in this
	// heap. Owner-only view; foreign writers publish into remBuf and the
	// owner folds the buffer in with DrainBuffers at collection start.
	Remset []RememberedEntry

	// Pinned lists pinned objects residing in this heap. Owner-only view;
	// entangled readers publish into pinBuf under the reader gate.
	Pinned []mem.Ref

	// pinBuf and remBuf are the lock-free publication buffers. Both are
	// pushed only while holding the reader gate (the entanglement barriers
	// enter the gate, re-validate ownership, push, exit), so after
	// BeginCollect + DrainBuffers the owner sees every published entry —
	// nothing can be lost to a racing merge or collection.
	pinBuf stack[mem.Ref]
	remBuf stack[RememberedEntry]

	// RootSets are the shadow stacks of tasks attached to this heap: the
	// owning task and any suspended ancestors of the current leaf.
	RootSets []RootSet

	// liveChildren counts forked child heaps that have not merged back.
	// A chain of heaps with liveChildren <= 1 ending at the current leaf
	// is exclusively owned and thus locally collectible.
	liveChildren atomic.Int32

	// PendingForks counts outstanding forks whose branches run in this
	// heap itself (lazy-heap mode, branch not stolen). Their captured
	// references are invisible to the collector, so the heap must not be
	// collected while any are outstanding.
	PendingForks atomic.Int32

	// Dead marks heaps that merged into their parent. Atomic: set by the
	// joining strand in Merge while entanglement slow paths of concurrent
	// strands snapshot it (they tolerate staleness with a retry loop).
	dead atomic.Bool

	// cgcStatus is the concurrent-collection status word (see cgc.go):
	// idle / scoped / sweeping. It coordinates CGC cycles, local
	// collections, and merges through the collection Gate above rather
	// than any new lock.
	cgcStatus atomic.Uint32

	// reuseBuf hands chunks whose free lists the concurrent sweep just
	// threaded back to the owning task (PushReusable/DrainReusable). Same
	// publication discipline as pinBuf: pushed under the gate, drained by
	// the owner.
	reuseBuf stack[*mem.Chunk]

	// TraceRing is the event ring of the worker currently running this
	// heap's strand, set by the runtime when the task is created (and nil
	// in untraced runtimes). Heap-side instrumentation (merge, unpin)
	// emits here; the single-writer contract holds because a heap is
	// executed by exactly one strand at a time, and the strand performing
	// a merge owns the parent heap it merges into.
	TraceRing *trace.Ring

	// AttrSink is the cost-attribution sink of the worker currently
	// running this heap's strand (nil when attribution is off), set by
	// the runtime next to TraceRing under the same single-writer
	// contract: the strand executing a heap owns its sink, and a merge
	// runs on the strand owning the parent.
	AttrSink *attr.Sink

	// Stats
	Collections int   // local collections rooted at this heap
	CopiedWords int64 // words copied by those collections
}

// Depth returns the heap's depth (root = 0).
func (h *Heap) Depth() int { return h.depth }

// Parent returns the heap's parent, or nil for the root.
func (h *Heap) Parent() *Heap { return h.parent }

// Path returns the heap's immutable fork path.
func (h *Heap) Path() *forkpath.Path { return &h.path }

// LiveChildren returns the number of unjoined child heaps.
func (h *Heap) LiveChildren() int { return int(h.liveChildren.Load()) }

// AddRootSet attaches a shadow stack to the heap.
func (h *Heap) AddRootSet(rs RootSet) { h.RootSets = append(h.RootSets, rs) }

// RemoveRootSet detaches a shadow stack from the heap.
func (h *Heap) RemoveRootSet(rs RootSet) {
	for i, x := range h.RootSets {
		if x == rs {
			h.RootSets = append(h.RootSets[:i], h.RootSets[i+1:]...)
			return
		}
	}
}

// AddRemembered records a down-pointer entry. Lock-free; the write barrier
// calls it while holding h.Gate as a reader (see AddPinned).
func (h *Heap) AddRemembered(holder mem.Ref, index int) {
	h.remBuf.push(RememberedEntry{holder, index})
}

// AddRememberedLocal records a down-pointer entry directly in the
// owner-only view, with no gate and no atomics. Only the task currently
// executing in h may call it: a heap is run by one strand at a time, and
// that same strand (or a join that happens-after it) performs every drain,
// collection and merge of h, so owner appends cannot race them.
func (h *Heap) AddRememberedLocal(holder mem.Ref, index int) {
	h.Remset = append(h.Remset, RememberedEntry{holder, index})
}

// AddPinned records a pinned object residing in this heap. Lock-free; the
// entanglement slow path calls it while holding h.Gate as a reader, which
// guarantees the entry is visible to the next collection's DrainBuffers.
func (h *Heap) AddPinned(r mem.Ref) { h.pinBuf.push(r) }

// Dead reports whether the heap has merged into its parent. Concurrent
// readers see a snapshot: a heap observed live can die immediately after,
// and callers revalidate (ownership checks, pin CAS) accordingly.
func (h *Heap) Dead() bool { return h.dead.Load() }

// DrainBuffers folds the lock-free publication buffers into the owner-only
// Pinned and Remset views. Called by the owning task, normally right after
// Gate.BeginCollect (collection or merge start), when no reader can be
// mid-publication.
func (h *Heap) DrainBuffers() {
	h.pinBuf.drain(func(r mem.Ref) { h.Pinned = append(h.Pinned, r) })
	h.remBuf.drain(func(e RememberedEntry) { h.Remset = append(h.Remset, e) })
}

// heapBlock is one leaf of the two-level id→heap table. Slots are atomic
// pointers so lock-free readers can race the (mutex-serialized) writer.
const heapBlockBits = 10
const heapBlockSize = 1 << heapBlockBits

type heapBlock [heapBlockSize]atomic.Pointer[Heap]

// Tree is the heap hierarchy.
type Tree struct {
	mu sync.Mutex // serializes structural edits (Fork, Merge)

	// ancestry selects the oracle; order is the legacy label list, nil in
	// the default fork-path mode (no shared label space exists at all).
	ancestry AncestryMode
	order    *order.List
	root     *Heap

	// Stats, when non-nil, counts oracle traffic for trace attribution.
	// Install before the computation starts; nil in timing runs.
	Stats *TreeStats

	// ver is a seqlock over the legacy Euler-tour labels: Fork bumps it to
	// odd before touching the order list and back to even after. Legacy
	// order queries run lock-free and retry when they overlap an edit — an
	// overlapping relabel can hand them a mix of old and new tags. Unused
	// (never bumped, never read) by the fork-path oracle.
	ver atomic.Uint64

	// spine is the growable two-level id→heap table. Readers resolve ids
	// with three atomic loads and no shared-line read-modify-write, which
	// matters because every barrier slow path resolves at least one id.
	// Writers (Fork) hold mu; growth installs a copied spine, so a stale
	// spine keeps answering for the ids it covers.
	spine  atomic.Pointer[[]atomic.Pointer[heapBlock]]
	nextID uint32 // next heap id; guarded by mu

	// UseWalkAncestor switches ancestor queries to naive parent walking,
	// for the AblateAncestor experiment.
	UseWalkAncestor bool

	// chaos, when set via SetChaos, is propagated into every heap's gate
	// so the GateAcquire injection point fires on the entanglement slow
	// paths of all heaps, including ones forked later.
	chaos *chaos.Injector
}

// New creates a hierarchy containing only the root heap, with the default
// fork-path ancestry oracle.
func New() *Tree { return NewWithAncestry(AncestryForkPath) }

// NewWithAncestry creates a hierarchy with the given ancestry oracle. The
// legacy order-maintenance list is built only when the mode asks for it.
func NewWithAncestry(mode AncestryMode) *Tree {
	t := &Tree{ancestry: mode}
	spine := make([]atomic.Pointer[heapBlock], 1)
	spine[0].Store(new(heapBlock))
	t.spine.Store(&spine)
	root := &Heap{ID: 1, depth: 0, path: forkpath.Root()}
	if mode != AncestryForkPath {
		t.order = order.NewList()
		root.pre = t.order.Base().InsertAfter()
		root.post = root.pre.InsertAfter()
	}
	t.put(root)
	t.nextID = 2
	t.root = root
	return t
}

// Ancestry returns the tree's ancestry oracle mode.
func (t *Tree) Ancestry() AncestryMode { return t.ancestry }

// put publishes h in the id table. Caller holds t.mu (or is New).
func (t *Tree) put(h *Heap) {
	sp := *t.spine.Load()
	bi := int(h.ID >> heapBlockBits)
	if bi >= len(sp) {
		nsp := make([]atomic.Pointer[heapBlock], 2*len(sp))
		for i := range sp {
			nsp[i].Store(sp[i].Load())
		}
		t.spine.Store(&nsp)
		sp = nsp
	}
	blk := sp[bi].Load()
	if blk == nil {
		blk = new(heapBlock)
		sp[bi].Store(blk)
	}
	blk[h.ID&(heapBlockSize-1)].Store(h)
}

// SetChaos installs a fault injector on the tree and on the gates of every
// existing heap. Call before the computation starts; heaps forked later
// inherit the injector.
func (t *Tree) SetChaos(in *chaos.Injector) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.chaos = in
	for id := uint32(1); id < t.nextID; id++ {
		if h := t.Get(id); h != nil {
			h.Gate.Chaos = in
		}
	}
}

// Root returns the root heap.
func (t *Tree) Root() *Heap { return t.root }

// Get returns the heap with the given id, or nil if no such heap has been
// published yet. Lock-free: three atomic loads.
func (t *Tree) Get(id uint32) *Heap {
	sp := *t.spine.Load()
	bi := int(id >> heapBlockBits)
	if bi >= len(sp) {
		return nil
	}
	blk := sp[bi].Load()
	if blk == nil {
		return nil
	}
	return blk[id&(heapBlockSize-1)].Load()
}

// Count returns the number of heaps ever created.
func (t *Tree) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.nextID) - 1
}

// Live returns all heaps that have not merged away.
func (t *Tree) Live() []*Heap {
	t.mu.Lock()
	n := t.nextID
	t.mu.Unlock()
	var out []*Heap
	for id := uint32(1); id < n; id++ {
		if h := t.Get(id); h != nil && !h.Dead() {
			out = append(out, h)
		}
	}
	return out
}

// Fork creates a new child heap of parent.
func (t *Tree) Fork(parent *Heap) *Heap {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := &Heap{ID: t.nextID, parent: parent, depth: parent.depth + 1}
	h.Gate.Chaos = t.chaos
	t.nextID++
	// The child's fork path extends the parent's by one edge code, keyed
	// on the parent's (never reused) fork sequence number. The value is
	// immutable from here on: ancestry queries read it with no
	// synchronization. The chaos point forces the inline→vector spill
	// promotion on shallow trees, where it would otherwise be unreachable.
	parent.forkSeq++
	if t.chaos != nil && t.chaos.Should(chaos.PathSpill) {
		h.path = parent.path.ChildSpilled(parent.forkSeq)
	} else {
		h.path = parent.path.Child(parent.forkSeq)
	}
	if t.order != nil {
		// Legacy oracle: nest the child's Euler interval immediately inside
		// the parent's pre visit; sibling intervals stack leftward, which
		// preserves nesting. The seqlock covers the inserts: they may
		// relabel tags that racing order queries are reading. Both the
		// seqlock close and the mutex release are deferred so that a
		// label-space-exhaustion panic from InsertAfter unwinds without
		// wedging concurrent order queries (which would otherwise spin on
		// the odd version forever) — the runtime's panic-safe fork converts
		// that panic into a Run error. None of this exists on the fork-path
		// oracle: no labels, no seqlock, no exhaustion.
		t.ver.Add(1)
		defer t.ver.Add(1)
		h.pre = parent.pre.InsertAfter()
		h.post = h.pre.InsertAfter()
	}
	t.put(h)
	parent.liveChildren.Add(1)
	return h
}

// IsAncestor reports whether a is an ancestor of (or equal to) d.
//
// With the fork-path oracle (the default) this is a prefix test over a's
// and d's immutable path words: pure loads, no retry path, safe from any
// strand at any time. The legacy oracle's interval test runs under the
// tree's seqlock and retries if a structural edit overlapped it.
func (t *Tree) IsAncestor(a, d *Heap) bool {
	if a == d {
		return true
	}
	if s := t.Stats; s != nil {
		s.AncestryQueries.Add(1)
	}
	if t.UseWalkAncestor {
		for x := d; x != nil; x = x.parent {
			if x == a {
				return true
			}
		}
		return false
	}
	if t.order == nil {
		return forkpath.IsPrefix(&a.path, &d.path)
	}
	legacy := t.legacyIsAncestor(a, d)
	if t.ancestry == AncestryBoth {
		if fp := forkpath.IsPrefix(&a.path, &d.path); fp != legacy {
			panic(fmt.Sprintf("hierarchy: ancestry oracles diverge: IsAncestor(%d,%d) forkpath=%v order=%v (paths %s, %s)",
				a.ID, d.ID, fp, legacy, a.path.String(), d.path.String()))
		}
	}
	return legacy
}

// legacyIsAncestor is the retired Euler-tour interval test: a seqlock read
// over the order list's atomic tags.
func (t *Tree) legacyIsAncestor(a, d *Heap) bool {
	for {
		v := t.ver.Load()
		if v&1 == 0 {
			ok := order.Leq(a.pre, d.pre) && order.Leq(d.post, a.post)
			if t.ver.Load() == v {
				return ok
			}
		}
		if s := t.Stats; s != nil {
			s.SeqlockRetries.Add(1)
		}
		runtime.Gosched()
	}
}

// LCADepth returns the depth of the least common ancestor of a and b —
// the quantity the entanglement barriers actually need (the unpin depth).
// With the fork-path oracle it is a longest-common-prefix computation over
// immutable words, with no heap walk at all.
func (t *Tree) LCADepth(a, b *Heap) int {
	if a == b {
		return a.depth
	}
	if t.order == nil && !t.UseWalkAncestor {
		if s := t.Stats; s != nil {
			s.AncestryQueries.Add(1)
		}
		return forkpath.LCADepth(&a.path, &b.path)
	}
	d := t.LCA(a, b).depth
	if t.ancestry == AncestryBoth {
		if fp := forkpath.LCADepth(&a.path, &b.path); fp != d {
			panic(fmt.Sprintf("hierarchy: ancestry oracles diverge: LCADepth(%d,%d) forkpath=%d order=%d (paths %s, %s)",
				a.ID, b.ID, fp, d, a.path.String(), b.path.String()))
		}
	}
	return d
}

// UnpinDepth returns LCADepth(leaf, x) through leaf's one-entry cache.
// Only the strand owning leaf may call it (the entanglement barriers'
// single-writer discipline); repeated entangled reads against the same
// concurrent heap — the common case in producer/consumer workloads — skip
// the oracle entirely. The cache never needs invalidation because the
// ancestry of two heap objects is immutable, even across merges.
func (t *Tree) UnpinDepth(leaf, x *Heap) int {
	if leaf.lcaKey == x {
		return leaf.lcaVal
	}
	d := t.LCADepth(leaf, x)
	leaf.lcaKey, leaf.lcaVal = x, d
	return d
}

// LCA returns the least common ancestor of a and b. The fork-path oracle
// computes the LCA's depth from the path words and walks a's (immutable)
// parent chain down to it; the legacy oracle runs the whole walk inside
// one seqlock attempt: parent pointers and depths are immutable after
// Fork, and a consistent tag snapshot (version unchanged across the walk)
// makes the interval tests coherent with each other.
func (t *Tree) LCA(a, b *Heap) *Heap {
	if a == b {
		return a
	}
	if s := t.Stats; s != nil {
		s.AncestryQueries.Add(1)
	}
	if t.order == nil && !t.UseWalkAncestor {
		d := forkpath.LCADepth(&a.path, &b.path)
		x := a
		for x.depth > d {
			x = x.parent
		}
		return x
	}
	if t.UseWalkAncestor {
		for x := a; x != nil; x = x.parent {
			if t.IsAncestor(x, b) {
				return x
			}
		}
		return t.root
	}
	for {
		v := t.ver.Load()
		if v&1 == 0 {
			for x := a; x != nil; x = x.parent {
				if x == b || (order.Leq(x.pre, b.pre) && order.Leq(b.post, x.post)) {
					if t.ver.Load() != v {
						break // edit overlapped the walk; retry
					}
					return x
				}
			}
			if t.ver.Load() == v {
				return t.root
			}
		}
		if s := t.Stats; s != nil {
			s.SeqlockRetries.Add(1)
		}
		runtime.Gosched()
	}
}

// Merge folds child into parent at a join: chunk ownership, remembered
// sets, pinned objects, and root sets all move up; pinned objects whose
// unpin depth has been reached are unpinned. The caller is the task owning
// parent (joins are serialized per parent by fork–join structure).
//
// Only the child's gate is taken: every parent-side structure touched here
// is either owner-only (Chunks, Remset, Pinned, RootSets) or lock-free
// (the publication buffers foreign readers push into). Entangled readers
// that raced past the gate and re-pinned a child object are honoured by
// the TryUnpin snapshot-CAS: a pin whose depth was lowered after we
// examined the header can never be revoked unseen.
//
// space is needed to flip chunk owners and unpin headers. Besides the
// count, Merge returns the total size (header + payload words) of the
// unpinned objects, for the pinned-bytes gauge.
func (t *Tree) Merge(child, parent *Heap, space *mem.Space) (unpinned int, unpinnedWords int64) {
	if child.parent != parent {
		panic("hierarchy: merge of non-child")
	}
	// No concurrent cycle can hold either heap here: CGC claims only
	// parked heaps (cgc.go), the child's owner has finished (active), and
	// the parent's owner is the caller, resumed past CGCResume. Merging
	// therefore never races a sweep's chunk-list rebuild.
	// Quiesce slow paths targeting the child: after the gate closes no
	// reader can be between validating the child's ownership and
	// publishing a pin. WaitBeginCollect rather than BeginCollect since
	// CGC: the concurrent collector may briefly hold either gate (root
	// harvest) and must be waited out, not panicked over. The parent's
	// gate is now taken too: the chunk-ownership flips and owner-side
	// appends below must not interleave with a concurrent harvest or
	// sweep of the parent. Gates are always acquired child-then-parent
	// while CGC takes one gate at a time, so no cycle is possible.
	// The reopens are deferred: if anything in the merge body panics
	// (e.g. a corrupted header surfacing in the unpin loop), readers
	// parked at the gates must still be released or the unwind would hang
	// them forever.
	// Attribution: the two gate-quiesce waits are one MergeWait window
	// (the joining strand owns parent, hence parent's sink).
	at := parent.AttrSink.Begin()
	child.Gate.WaitBeginCollect()
	defer child.Gate.EndCollect()
	parent.Gate.WaitBeginCollect()
	defer parent.Gate.EndCollect()
	parent.AttrSink.End(attr.MergeWait, at)
	child.DrainBuffers()

	// The joining strand owns parent, so its ring is safe to write here.
	ring := parent.TraceRing
	ring.Emit(trace.EvHeapMerge, int32(parent.depth), uint64(child.ID), uint64(parent.ID))

	for _, c := range child.Chunks {
		c.SetHeapID(parent.ID)
	}
	parent.Chunks = append(parent.Chunks, child.Chunks...)
	child.Chunks = nil

	parent.Remset = append(parent.Remset, child.Remset...)
	child.Remset = nil

	// Unpin objects whose unpin depth has been reached: the entangled
	// tasks have joined, so these are ordinary objects of the merged heap.
	// Readers may already be pinning through the parent (the chunks above
	// carry its ID now), so each unpin is a snapshot-CAS retry loop.
	// Attribution: the whole sweep is one UnpinAtJoin window — per-object
	// windows would undercount the loop's pointer chasing, which is most
	// of its cost.
	at = parent.AttrSink.Begin()
	for _, r := range child.Pinned {
		for {
			h := space.Header(r)
			if h.Kind() == mem.KForward || !h.Pinned() {
				break // stale entry; copied or already unpinned
			}
			if h.UnpinDepth() < parent.depth {
				// Still entangled above the join point (possibly re-pinned
				// shallower by a racing reader): keep it, move the entry up.
				parent.Pinned = append(parent.Pinned, r)
				break
			}
			if space.TryUnpin(r, h) {
				unpinned++
				unpinnedWords += int64(h.Len()) + 1
				ring.Emit(trace.EvUnpin, int32(parent.depth), uint64(r), 0)
				break
			}
			// Lost a race against a concurrent re-pin; re-examine.
		}
	}
	parent.AttrSink.End(attr.UnpinAtJoin, at)
	child.Pinned = nil

	parent.RootSets = append(parent.RootSets, child.RootSets...)
	child.RootSets = nil

	// Swept chunks with free spans follow their chunks to the parent: the
	// parent's allocator may carve from them once it drains its buffer.
	child.reuseBuf.drain(func(c *mem.Chunk) { parent.reuseBuf.push(c) })

	child.dead.Store(true)
	parent.Collections += child.Collections
	parent.CopiedWords += child.CopiedWords

	// Readers re-admitted by the deferred EndCollect will fail ownership
	// validation against the dead child and retry against the parent.

	if t.order != nil {
		// Legacy oracle only: retire the child's Euler interval under the
		// tree mutex. The fork-path oracle keeps joins off the tree lock
		// entirely — the child's path is immutable and still answers
		// (historically exact) for any strand racing this merge.
		t.mu.Lock()
		child.pre.Delete()
		child.post.Delete()
		t.mu.Unlock()
	}

	parent.liveChildren.Add(-1)
	return unpinned, unpinnedWords
}

// ExclusiveSuffix returns the chain of heaps from leaf upward that are
// exclusively owned by the task holding leaf: the walk stops at the first
// heap that has other live children (a concurrent subtree) or at the root's
// parent. The returned slice is ordered leaf-first. Collections may safely
// move unpinned objects within this suffix.
func (t *Tree) ExclusiveSuffix(leaf *Heap) []*Heap {
	if leaf.liveChildren.Load() != 0 {
		return nil
	}
	out := []*Heap{leaf}
	h := leaf
	for {
		p := h.parent
		// The parent is exclusive only if our chain is its sole live child.
		if p == nil || p.liveChildren.Load() != 1 {
			break
		}
		out = append(out, p)
		h = p
	}
	return out
}
