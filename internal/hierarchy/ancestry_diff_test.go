package hierarchy

// Differential and property tests for the ancestry oracles. Trees are built
// in AncestryBoth mode, so every IsAncestor/LCA call already runs the
// fork-path and legacy order-list oracles against each other and panics on
// divergence; the tests below add the third leg — a naive parent-walk
// oracle — and the schedules (deep spines, wide fanout, forced spills,
// concurrent forks) under which the retired seqlock protocol historically
// earned its retries.

import (
	"math/rand"
	"sync"
	"testing"

	"mplgo/internal/chaos"
)

// walkIsAncestor is the naive oracle: walk d's immutable parent chain.
func walkIsAncestor(a, d *Heap) bool {
	for x := d; x != nil; x = x.parent {
		if x == a {
			return true
		}
	}
	return false
}

// walkLCA is the naive oracle: lift both nodes to equal depth, then lift in
// lockstep. Parent pointers and depths are immutable after Fork, so this is
// safe from any goroutine at any time.
func walkLCA(a, b *Heap) *Heap {
	for a.depth > b.depth {
		a = a.parent
	}
	for b.depth > a.depth {
		b = b.parent
	}
	for a != b {
		a, b = a.parent, b.parent
	}
	return a
}

// growTree extends heaps in-place by n forks of the given shape and returns
// the grown slice. Shapes: "spine" chains from the last heap (deep trees,
// natural inline→vector spill past 128 path bits), "wide" fans out from the
// root region (shallow trees, long sibling runs), "uniform" picks parents
// uniformly.
func growTree(tr *Tree, rng *rand.Rand, heaps []*Heap, n int, shape string) []*Heap {
	for i := 0; i < n; i++ {
		var p *Heap
		switch shape {
		case "spine":
			p = heaps[len(heaps)-1]
		case "wide":
			p = heaps[rng.Intn(min(8, len(heaps)))]
		default:
			p = heaps[rng.Intn(len(heaps))]
		}
		heaps = append(heaps, tr.Fork(p))
	}
	return heaps
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestAncestryDifferentialRandomTrees cross-checks all three oracles over
// randomized trees of every shape. The spine shape grows past 128 path bits
// so the spilled fork-path representation is compared too, and a PathSpill
// injector additionally forces spilled paths at shallow depths.
func TestAncestryDifferentialRandomTrees(t *testing.T) {
	for _, shape := range []string{"uniform", "spine", "wide"} {
		for trial := 0; trial < 4; trial++ {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			tr := NewWithAncestry(AncestryBoth)
			tr.SetChaos(chaos.New(int64(trial+1), chaos.Options{PathSpill: 256}))
			n := 200
			if shape == "spine" {
				n = 400 // well past the 128-bit inline width
			}
			heaps := growTree(tr, rng, []*Heap{tr.Root()}, n, shape)
			for q := 0; q < 4000; q++ {
				a := heaps[rng.Intn(len(heaps))]
				b := heaps[rng.Intn(len(heaps))]
				// AncestryBoth cross-checks forkpath against the legacy list
				// inside each call; we assert against the walk oracle.
				if got, want := tr.IsAncestor(a, b), walkIsAncestor(a, b); got != want {
					t.Fatalf("%s/%d: IsAncestor(%d,%d) = %v, walk oracle says %v (paths %s, %s)",
						shape, trial, a.ID, b.ID, got, want, a.path.String(), b.path.String())
				}
				wl := walkLCA(a, b)
				if got := tr.LCA(a, b); got != wl {
					t.Fatalf("%s/%d: LCA(%d,%d) = %d, walk oracle says %d",
						shape, trial, a.ID, b.ID, got.ID, wl.ID)
				}
				if got := tr.LCADepth(a, b); got != wl.depth {
					t.Fatalf("%s/%d: LCADepth(%d,%d) = %d, walk oracle says %d",
						shape, trial, a.ID, b.ID, got, wl.depth)
				}
			}
		}
	}
}

// TestAncestryDifferentialConcurrent runs forkers and queriers together
// (meaningful under -race): forkers grow deep spines and wide fans while
// queriers fire all three oracles at heaps already published. This is the
// schedule that exercises the legacy seqlock's retry path — structural
// edits relabeling tags mid-query — with the fork-path answer checked
// against it on every call by AncestryBoth.
func TestAncestryDifferentialConcurrent(t *testing.T) {
	const forkers, queriers = 3, 4
	const forksEach = 300

	tr := NewWithAncestry(AncestryBoth)
	tr.SetChaos(chaos.New(7, chaos.Options{PathSpill: 256}))
	tr.Stats = &TreeStats{}

	var mu sync.Mutex
	published := []*Heap{tr.Root()}
	snapshot := func(rng *rand.Rand) (*Heap, *Heap) {
		mu.Lock()
		a := published[rng.Intn(len(published))]
		b := published[rng.Intn(len(published))]
		mu.Unlock()
		return a, b
	}

	var forkWG, queryWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < forkers; g++ {
		forkWG.Add(1)
		go func(g int) {
			defer forkWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			local := []*Heap{tr.Root()}
			shapes := []string{"spine", "wide", "uniform"}
			for i := 0; i < forksEach; i++ {
				local = growTree(tr, rng, local, 1, shapes[g%len(shapes)])
				mu.Lock()
				published = append(published, local[len(local)-1])
				mu.Unlock()
			}
		}(g)
	}
	for g := 0; g < queriers; g++ {
		queryWG.Add(1)
		go func(g int) {
			defer queryWG.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			// Query first, check stop after: on a single-core host a
			// querier may be scheduled for the first time only after the
			// forkers finish, and it must still contribute at least one
			// differential query before exiting.
			for done := false; !done; {
				select {
				case <-stop:
					done = true
				default:
				}
				a, b := snapshot(rng)
				if got, want := tr.IsAncestor(a, b), walkIsAncestor(a, b); got != want {
					panic("concurrent differential: IsAncestor diverged from walk oracle")
				}
				wl := walkLCA(a, b)
				if got := tr.LCA(a, b); got != wl {
					panic("concurrent differential: LCA diverged from walk oracle")
				}
				if got := tr.LCADepth(a, b); got != wl.depth {
					panic("concurrent differential: LCADepth diverged from walk oracle")
				}
			}
		}(g)
	}

	// Queriers run for the full span of the forking, then are released.
	forkWG.Wait()
	close(stop)
	queryWG.Wait()

	if q := tr.Stats.AncestryQueries.Load(); q == 0 {
		t.Fatal("stats counted no ancestry queries")
	}
}

// TestAncestryOrderListMode checks the retired oracle still stands alone:
// a tree in AncestryOrderList mode must answer identically to the walk
// oracle with the fork-path words never consulted.
func TestAncestryOrderListMode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewWithAncestry(AncestryOrderList)
	if tr.Ancestry() != AncestryOrderList {
		t.Fatal("mode not recorded")
	}
	heaps := growTree(tr, rng, []*Heap{tr.Root()}, 250, "uniform")
	for q := 0; q < 5000; q++ {
		a := heaps[rng.Intn(len(heaps))]
		b := heaps[rng.Intn(len(heaps))]
		if got, want := tr.IsAncestor(a, b), walkIsAncestor(a, b); got != want {
			t.Fatalf("order-list IsAncestor(%d,%d) = %v, want %v", a.ID, b.ID, got, want)
		}
		if got, want := tr.LCA(a, b), walkLCA(a, b); got != want {
			t.Fatalf("order-list LCA(%d,%d) = %d, want %d", a.ID, b.ID, got.ID, want.ID)
		}
	}
}

// TestUnpinDepthCache checks the one-entry cache returns oracle answers
// across key changes and that a hit really skips the oracle (via the stats
// counter, which only the oracle paths bump).
func TestUnpinDepthCache(t *testing.T) {
	tr := New()
	tr.Stats = &TreeStats{}
	root := tr.Root()
	a := tr.Fork(root)
	b := tr.Fork(root)
	aa := tr.Fork(a)

	if got := tr.UnpinDepth(aa, b); got != 0 {
		t.Fatalf("UnpinDepth(aa,b) = %d, want 0", got)
	}
	before := tr.Stats.AncestryQueries.Load()
	if got := tr.UnpinDepth(aa, b); got != 0 {
		t.Fatalf("cached UnpinDepth(aa,b) = %d, want 0", got)
	}
	if after := tr.Stats.AncestryQueries.Load(); after != before {
		t.Fatalf("cache hit still consulted the oracle (%d -> %d queries)", before, after)
	}
	// Key change: recompute, re-cache.
	if got := tr.UnpinDepth(aa, a); got != 1 {
		t.Fatalf("UnpinDepth(aa,a) = %d, want 1", got)
	}
	if got := tr.UnpinDepth(aa, b); got != 0 {
		t.Fatalf("UnpinDepth(aa,b) after evict = %d, want 0", got)
	}
}
