package expgrid

import (
	"fmt"
	"os"
	"time"

	"mplgo/internal/bench"
	"mplgo/internal/globalrt"
	"mplgo/internal/hierarchy"
	"mplgo/internal/sim"
	"mplgo/internal/tables"
	"mplgo/internal/trace"
	"mplgo/mpl"
)

// CellResult is everything one grid cell measured, the unit the runner
// aggregates into tables. It is the subprocess's entire stdout (as JSON),
// so a cell run is reproducible and auditable in isolation.
type CellResult struct {
	Cell Cell `json:"cell"`
	// WallNS are the timed repeats' wall clocks, in measurement order.
	WallNS []int64 `json:"wall_ns"`
	// TseqNS are the global-heap sequential baseline repeats (only on
	// cells with MeasureSeq, i.e. each group's P=1 cell).
	TseqNS []int64 `json:"tseq_ns,omitempty"`
	// Checksum is the benchmark result; ChecksumStable reports whether
	// every repeat agreed (an entangled benchmark whose answer depends on
	// interleaving is reported, not failed).
	Checksum       int64 `json:"checksum"`
	ChecksumStable bool  `json:"checksum_stable"`
	// Work and Span of the recorded DAG (abstract units), and the
	// simulator's replayed makespans: at P=1 (== Work), at the cell's
	// requested P, and at the effective parallelism min(P, host cores) —
	// the point real hardware can actually reach.
	Work     int64 `json:"work"`
	Span     int64 `json:"span"`
	SimT1    int64 `json:"sim_t1"`
	SimTP    int64 `json:"sim_tp"`
	SimTPEff int64 `json:"sim_tp_eff"`
	// Host fingerprints the subprocess that ran the cell.
	Host *tables.Fingerprint `json:"host"`
	// TraceEvents counts the events captured by the optional traced run.
	TraceEvents int `json:"trace_events,omitempty"`
	// Steal-to-first-event latency of the traced run (only with
	// TracePath): for each steal, the gap until the stealing worker's
	// next trace event. High values on a cell whose measurement diverges
	// from the simulator point at scheduler hand-off latency the
	// simulator does not model (the crossval report cross-references
	// them).
	StealLatCount  int   `json:"steal_lat_count,omitempty"`
	StealLatMeanNS int64 `json:"steal_lat_mean_ns,omitempty"`
	StealLatMaxNS  int64 `json:"steal_lat_max_ns,omitempty"`
	// Cost attribution of one extra untimed attributed run (only with
	// Cell.Attr): slug → estimated total ns / sample count, at the
	// recorded sampling period.
	AttrPeriod  int64            `json:"attr_period,omitempty"`
	AttrWallNS  int64            `json:"attr_wall_ns,omitempty"`
	AttrNS      map[string]int64 `json:"attr_ns,omitempty"`
	AttrSamples map[string]int64 `json:"attr_samples,omitempty"`
}

// cellConfig maps a cell's knobs onto a runtime config.
func cellConfig(c Cell) (mpl.Config, error) {
	cfg := mpl.Config{Procs: c.Procs, Seed: c.Seed}
	switch c.Heap {
	case HeapFork, "":
	case HeapLazy:
		cfg.LazyHeaps = true
	default:
		return cfg, fmt.Errorf("cell %s: bad heap mode %q", c.ID, c.Heap)
	}
	switch c.Ancestry {
	case AncestryForkPath, "":
		cfg.Ancestry = hierarchy.AncestryForkPath
	case AncestryOrderList:
		cfg.Ancestry = hierarchy.AncestryOrderList
	default:
		return cfg, fmt.Errorf("cell %s: bad ancestry mode %q", c.ID, c.Ancestry)
	}
	if c.Elide {
		cfg.Mode = mpl.Unsafe
	}
	return cfg, nil
}

// ExecuteCell runs one grid cell in this process: warmups, timed repeats,
// the sequential baseline when asked, one recorded run for the simulator
// prediction, and (when TracePath is set) one traced run stamped with the
// cell-identity counters. The caller is expected to be a fresh subprocess
// (cmd/mplgo-bench -exp grid-cell) so cells never share heap or scheduler
// state.
func ExecuteCell(c Cell) (*CellResult, error) {
	b, ok := bench.ByName(c.Bench)
	if !ok {
		return nil, fmt.Errorf("cell %s: unknown benchmark %q", c.ID, c.Bench)
	}
	if c.Elide && b.Entangled {
		return nil, fmt.Errorf("cell %s: elide is unsound for entangled %q", c.ID, c.Bench)
	}
	if c.N <= 0 {
		c.N = b.DefaultN
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	cfg, err := cellConfig(c)
	if err != nil {
		return nil, err
	}

	res := &CellResult{Cell: c, ChecksumStable: true, Host: tables.CurrentFingerprint()}

	runOnce := func() (int64, time.Duration, error) {
		rt := mpl.New(cfg)
		var got int64
		start := time.Now()
		_, err := rt.Run(func(t *mpl.Task) mpl.Value {
			got = b.MPL(t, c.N)
			return mpl.Int(got)
		})
		return got, time.Since(start), err
	}

	for i := 0; i < c.Warmups; i++ {
		if _, _, err := runOnce(); err != nil {
			return nil, fmt.Errorf("cell %s: warmup: %w", c.ID, err)
		}
	}
	for i := 0; i < c.Repeats; i++ {
		got, wall, err := runOnce()
		if err != nil {
			return nil, fmt.Errorf("cell %s: repeat %d: %w", c.ID, i, err)
		}
		if i == 0 {
			res.Checksum = got
		} else if got != res.Checksum {
			res.ChecksumStable = false
		}
		res.WallNS = append(res.WallNS, wall.Nanoseconds())
	}

	if c.MeasureSeq {
		for i := 0; i < c.Repeats; i++ {
			g := globalrt.New(0)
			start := time.Now()
			got := b.Global(g, c.N)
			res.TseqNS = append(res.TseqNS, time.Since(start).Nanoseconds())
			if got != res.Checksum {
				res.ChecksumStable = false
			}
		}
	}

	// Recorded run at P=1 for the DAG: the fork structure and abstract
	// costs are program-determined, so one deterministic recording serves
	// every replay.
	recCfg := cfg
	recCfg.Procs = 1
	recCfg.Record = true
	rt := mpl.New(recCfg)
	if _, err := rt.Run(func(t *mpl.Task) mpl.Value { return mpl.Int(b.MPL(t, c.N)) }); err != nil {
		return nil, fmt.Errorf("cell %s: recorded run: %w", c.ID, err)
	}
	dag := rt.Trace()
	if dag == nil {
		return nil, fmt.Errorf("cell %s: recorded run produced no trace", c.ID)
	}
	stealCost := int64(tables.StealCost)
	r1 := sim.Replay(dag, sim.ReplayConfig{P: 1, StealCost: stealCost})
	rp := sim.Replay(dag, sim.ReplayConfig{P: c.Procs, StealCost: stealCost})
	effP := res.Host.EffectiveProcs(c.Procs)
	re := rp
	if effP != c.Procs {
		re = sim.Replay(dag, sim.ReplayConfig{P: effP, StealCost: stealCost})
	}
	res.Work, res.Span = r1.Work, r1.Span
	res.SimT1, res.SimTP, res.SimTPEff = r1.Makespan, rp.Makespan, re.Makespan

	if c.TracePath != "" {
		n, lat, err := traceCell(c, b, cfg)
		if err != nil {
			return nil, err
		}
		res.TraceEvents = n
		res.StealLatCount = lat.count
		res.StealLatMeanNS = lat.meanNS()
		res.StealLatMaxNS = lat.maxNS
	}

	if c.Attr {
		prof := mpl.NewAttrProfiler(cfg.Procs, 0)
		attrCfg := cfg
		attrCfg.Attr = prof
		mpl.AttrEnable()
		start := time.Now()
		rt := mpl.New(attrCfg)
		_, err := rt.Run(func(t *mpl.Task) mpl.Value { return mpl.Int(b.MPL(t, c.N)) })
		wall := time.Since(start)
		mpl.AttrDisable()
		if err != nil {
			return nil, fmt.Errorf("cell %s: attributed run: %w", c.ID, err)
		}
		snap := prof.Snapshot()
		res.AttrPeriod = snap.Period
		res.AttrWallNS = wall.Nanoseconds()
		res.AttrNS = make(map[string]int64, len(snap.Components))
		res.AttrSamples = make(map[string]int64, len(snap.Components))
		for slug, cs := range snap.Components {
			res.AttrNS[slug] = int64(cs.EstNS)
			res.AttrSamples[slug] = int64(cs.Samples)
		}
	}
	return res, nil
}

// stealLat accumulates steal-to-first-event latencies.
type stealLat struct {
	count   int
	totalNS int64
	maxNS   int64
}

func (l *stealLat) add(d int64) {
	if d < 0 {
		d = 0
	}
	l.count++
	l.totalNS += d
	if d > l.maxNS {
		l.maxNS = d
	}
}

func (l *stealLat) meanNS() int64 {
	if l.count == 0 {
		return 0
	}
	return l.totalNS / int64(l.count)
}

// stealLatency scans a tracer snapshot for steal-to-first-event gaps.
// Each ring is one worker's time-ordered event stream, so the event
// following a steal on the same ring is the first evidence the stolen
// task ran.
func stealLatency(snap [][]trace.Event) stealLat {
	var l stealLat
	for _, ring := range snap {
		pending := int64(-1)
		for _, e := range ring {
			if pending >= 0 {
				l.add(e.TS - pending)
				pending = -1
			}
			if e.Kind == trace.EvSteal {
				pending = e.TS
			}
		}
	}
	return l
}

// traceCell reruns the cell once, untimed, with a tracer installed, and
// writes the Chrome export to c.TracePath. The root task emits the
// grid_cell and grid_seed counters first, so the export is attributable
// to its cell (satisfying the single-writer ring contract: the emits run
// on the root strand's own worker). The snapshot is also scanned for
// steal-to-first-event latency, the scheduler hand-off cost the crossval
// report cross-references against simulator divergence.
func traceCell(c Cell, b bench.Benchmark, cfg mpl.Config) (int, stealLat, error) {
	tr := mpl.NewTracer(cfg.Procs, 0)
	cfg.Tracer = tr
	mpl.TraceEnable()
	rt := mpl.New(cfg)
	_, err := rt.Run(func(t *mpl.Task) mpl.Value {
		t.EmitCounter(trace.CtrGridCell, c.IDHash())
		t.EmitCounter(trace.CtrGridSeed, uint64(c.Seed))
		return mpl.Int(b.MPL(t, c.N))
	})
	mpl.TraceDisable()
	if err != nil {
		return 0, stealLat{}, fmt.Errorf("cell %s: traced run: %w", c.ID, err)
	}
	snap := tr.Snapshot()
	events := 0
	for _, ring := range snap {
		events += len(ring)
	}
	lat := stealLatency(snap)
	f, err := os.Create(c.TracePath)
	if err != nil {
		return events, lat, err
	}
	if err := mpl.WriteChrome(f, tr); err != nil {
		f.Close()
		return events, lat, err
	}
	return events, lat, f.Close()
}
