package expgrid

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"mplgo/internal/sim"
	"mplgo/internal/tables"
)

// Runner executes a grid spec cell by cell and assembles the Report.
type Runner struct {
	Spec *Spec
	// BenchCmd is the argv prefix of the cell subprocess, e.g.
	// {"./mplgo-bench"} or {"go", "run", "./cmd/mplgo-bench"}; the runner
	// appends "-exp grid-cell -cell <file>". Empty runs cells in-process
	// (tests and -inprocess only — a fresh process per cell is the
	// reproducibility contract: no shared allocator, GC, or scheduler
	// state between cells).
	BenchCmd []string
	// Progress receives one line per cell (nil for silence).
	Progress io.Writer
	// TraceDir, when set, gives every cell a TracePath under it (one
	// Chrome export per cell, stamped with the cell-identity counters).
	TraceDir string
	// Attr, when set, gives every cell one extra attributed run whose
	// slow-path cost decomposition rides in the CellResult.
	Attr bool
	// Cores overrides the host core count for sweep expansion (0 = the
	// current fingerprint's).
	Cores int
}

// Report is the outcome of one full grid run.
type Report struct {
	Spec    *Spec               `json:"-"`
	Started string              `json:"started"` // RFC 3339, UTC
	Host    *tables.Fingerprint `json:"host"`
	Results []*CellResult       `json:"results"`
	// CrossVal is the per-cell simulator cross-validation (Brent's bound
	// plus calibrated-prediction divergence).
	CrossVal []CrossVal `json:"crossval"`
	// BrentViolations fail the paper run; SimFlags and ChecksumWarnings
	// are reported but do not.
	BrentViolations  []string `json:"brent_violations,omitempty"`
	SimFlags         []string `json:"sim_flags,omitempty"`
	ChecksumWarnings []string `json:"checksum_warnings,omitempty"`
}

// CrossVal is one cell's cross-validation row: measured best wall time
// against Brent's bound at the effective parallelism, and against the
// calibrated simulator prediction.
type CrossVal struct {
	CellID     string  `json:"cell"`
	Procs      int     `json:"procs"`
	EffProcs   int     `json:"eff_procs"`
	Work       int64   `json:"work"`
	Span       int64   `json:"span"`
	UnitNS     float64 `json:"unit_ns"` // ns per abstract work unit (group calibration)
	BrentLoNS  float64 `json:"brent_lo_ns"`
	BrentHiNS  float64 `json:"brent_hi_ns"`
	MinNS      int64   `json:"min_ns"`
	BrentOK    bool    `json:"brent_ok"`
	SimPredNS  float64 `json:"sim_pred_ns"`
	Divergence float64 `json:"divergence"` // minNS/simPred − 1
	SimFlagged bool    `json:"sim_flagged"`
	Calibrated bool    `json:"calibrated"`
}

func (r *Runner) progressf(format string, args ...any) {
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, format, args...)
	}
}

// Run expands the grid, executes every cell, and cross-validates. The
// returned error covers execution failures only; Brent violations are
// reported in the Report (and by Report.Err) so the caller can still
// write the outputs that show them.
func (r *Runner) Run() (*Report, error) {
	host := tables.CurrentFingerprint()
	cores := r.Cores
	if cores <= 0 {
		cores = host.Cores
	}
	cells := r.Spec.Expand(cores)
	rep := &Report{
		Spec:    r.Spec,
		Started: time.Now().UTC().Format(time.RFC3339),
		Host:    host,
	}
	r.progressf("# grid %q: %d cells on %s\n", r.Spec.Name, len(cells), host)
	for i, c := range cells {
		if r.TraceDir != "" {
			c.TracePath = filepath.Join(r.TraceDir, fmt.Sprintf("cell-%03d.trace.json", i))
		}
		c.Attr = c.Attr || r.Attr
		start := time.Now()
		res, err := r.runCell(c)
		if err != nil {
			return nil, fmt.Errorf("cell %d/%d %s: %w", i+1, len(cells), c.ID, err)
		}
		rep.Results = append(rep.Results, res)
		r.progressf("# [%d/%d] %-45s min=%-12s samples=%d (%.1fs)\n",
			i+1, len(cells), c.ID, time.Duration(tables.MinNS(res.WallNS)),
			len(res.WallNS), time.Since(start).Seconds())
		if !res.ChecksumStable {
			rep.ChecksumWarnings = append(rep.ChecksumWarnings,
				fmt.Sprintf("%s: checksum varied across repeats", c.ID))
		}
	}
	rep.crossValidate(r.Spec)
	return rep, nil
}

// runCell dispatches one cell to a fresh subprocess (or in-process when
// BenchCmd is empty).
func (r *Runner) runCell(c Cell) (*CellResult, error) {
	if len(r.BenchCmd) == 0 {
		return ExecuteCell(c)
	}
	dir, err := os.MkdirTemp("", "expgrid-cell-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cellPath := filepath.Join(dir, "cell.json")
	data, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(cellPath, data, 0o644); err != nil {
		return nil, err
	}
	args := append(append([]string{}, r.BenchCmd[1:]...), "-exp", "grid-cell", "-cell", cellPath)
	cmd := exec.Command(r.BenchCmd[0], args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("subprocess %v: %w", r.BenchCmd, err)
	}
	var res CellResult
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, fmt.Errorf("bad grid-cell output (%d bytes): %w", len(out), err)
	}
	return &res, nil
}

// crossValidate checks every cell against Brent's bound and the
// calibrated simulator prediction. Calibration is per sweep group, from
// its P=1 cell: unit = (best measured T_1) / (replayed T_1) converts the
// simulator's abstract makespans to nanoseconds on this host.
func (rep *Report) crossValidate(spec *Spec) {
	unit := map[string]float64{} // group key → ns per abstract unit
	for _, res := range rep.Results {
		if res.Cell.Procs == 1 && res.SimT1 > 0 {
			if m := tables.MinNS(res.WallNS); m > 0 {
				unit[res.Cell.GroupKey()] = float64(m) / float64(res.SimT1)
			}
		}
	}
	for _, res := range rep.Results {
		c := res.Cell
		effP := res.Host.EffectiveProcs(c.Procs)
		cv := CrossVal{
			CellID:   c.ID,
			Procs:    c.Procs,
			EffProcs: effP,
			Work:     res.Work,
			Span:     res.Span,
			MinNS:    tables.MinNS(res.WallNS),
		}
		u, ok := unit[c.GroupKey()]
		cv.Calibrated = ok && u > 0
		if cv.Calibrated {
			cv.UnitNS = u
			lo, hi := sim.Brent(res.Work, res.Span, effP, spec.BrentC)
			cv.BrentLoNS = lo * u
			cv.BrentHiNS = hi * u
			min := float64(cv.MinNS)
			cv.BrentOK = min >= cv.BrentLoNS*(1-spec.BrentTolerance) &&
				min <= cv.BrentHiNS*(1+spec.BrentTolerance)
			cv.SimPredNS = u * float64(res.SimTPEff)
			if cv.SimPredNS > 0 {
				cv.Divergence = min/cv.SimPredNS - 1
			}
			if cv.Divergence > spec.SimTolerance || cv.Divergence < -spec.SimTolerance {
				cv.SimFlagged = true
				flag := fmt.Sprintf(
					"%s: measured %s diverges %+.0f%% from simulator prediction %s",
					c.ID, time.Duration(cv.MinNS), cv.Divergence*100,
					time.Duration(int64(cv.SimPredNS)))
				// When the traced run measured scheduler hand-off latency
				// and it accounts for a visible slice of the wall clock,
				// say so: the simulator charges a flat StealCost per
				// migration, so high real steal latency is the first
				// suspect for a cell running slower than predicted.
				if lat := int64(res.StealLatCount) * res.StealLatMeanNS; res.StealLatCount > 0 &&
					cv.MinNS > 0 && lat*20 > cv.MinNS {
					flag += fmt.Sprintf(
						" — coincides with high steal latency (%d steals, mean %s, ~%.0f%% of wall)",
						res.StealLatCount, time.Duration(res.StealLatMeanNS),
						100*float64(lat)/float64(cv.MinNS))
				}
				rep.SimFlags = append(rep.SimFlags, flag)
			}
			if !cv.BrentOK {
				rep.BrentViolations = append(rep.BrentViolations, fmt.Sprintf(
					"%s: measured %s outside Brent bound [%s, %s] ×(1±%.0f%%) at effP=%d (W=%d S=%d c=%.1f)",
					c.ID, time.Duration(cv.MinNS),
					time.Duration(int64(cv.BrentLoNS)), time.Duration(int64(cv.BrentHiNS)),
					spec.BrentTolerance*100, effP, res.Work, res.Span, spec.BrentC))
			}
		} else {
			rep.BrentViolations = append(rep.BrentViolations, fmt.Sprintf(
				"%s: uncalibrated (no P=1 cell in group %s)", c.ID, c.GroupKey()))
		}
		rep.CrossVal = append(rep.CrossVal, cv)
	}
}

// Err returns the failure the run should exit with: any Brent violation
// (an uncalibrated cell counts — a bound nobody checked is not a pass).
func (rep *Report) Err() error {
	if len(rep.BrentViolations) > 0 {
		return fmt.Errorf("%d Brent-bound violations (see crossval report)", len(rep.BrentViolations))
	}
	return nil
}
