// Package expgrid is the paper-runner's experiment-grid subsystem: a
// checked-in JSON spec declares a grid of benchmark measurements
// (benchmark × worker-count sweep × heap mode × ancestry mode × barrier
// ablation, with per-experiment repeats and warmups), the runner executes
// each cell in a fresh subprocess, and the results become the validated
// CSV tables and the simulator cross-validation report under
// scripts/paper/out/.
//
// The point of the subsystem is to replace ad-hoc measurement with
// reproducible, statistically summarized curves on *real* cores: every
// cell records all repeat samples plus a host fingerprint, every derived
// table passes a validator before it is written, and every measured T_P
// is checked against Brent's bound
//
//	W/effP  ≤  T_P  ≤  W/effP + c·S
//
// with W and S taken from the deterministic trace replay (package sim)
// and effP = min(P, host cores) — sweeping more workers than the host has
// cores is a legitimate oversubscription experiment, but the bound must
// be stated at the hardware's actual parallelism.
package expgrid

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"mplgo/internal/bench"
)

// Heap modes of the grid's heap dimension.
const (
	HeapFork = "fork" // child heaps materialized at every fork (default)
	HeapLazy = "lazy" // child heaps materialized at steals (MPL-style)
)

// Ancestry modes of the grid's ancestry dimension.
const (
	AncestryForkPath  = "forkpath"  // DePa fork-path words (default)
	AncestryOrderList = "orderlist" // legacy order-maintenance list
)

// Spec is the experiment grid, loaded from scripts/paper/experiments.json.
type Spec struct {
	Name string `json:"name"`
	// StealCost is the simulator's strand-migration latency in abstract
	// work units, used for the replay predictions (default 200, matching
	// the table harness).
	StealCost int64 `json:"steal_cost,omitempty"`
	// BrentC is the constant c of the cross-validation bound
	// T_P ≤ W/effP + c·S. It absorbs per-span-node scheduling costs of
	// the real executor (fork/join bookkeeping, steal latency, queue
	// delay); the simulator alone needs c ≈ 1 + steal cost. Default 8.
	BrentC float64 `json:"brent_c,omitempty"`
	// BrentTolerance widens the bound multiplicatively before a cell is
	// flagged: the check is lo·(1−tol) ≤ min T_P ≤ hi·(1+tol). Default
	// 0.25. A Brent violation fails the paper run.
	BrentTolerance float64 `json:"brent_tolerance,omitempty"`
	// SimTolerance flags (warn-only) cells whose measured min T_P
	// diverges from the simulator's calibrated prediction by more than
	// this relative error. Default 0.5.
	SimTolerance float64 `json:"sim_tolerance,omitempty"`
	// Defaults fills unset per-experiment knobs.
	Defaults    Experiment   `json:"defaults"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one grid row before expansion: a benchmark swept over a
// list of worker counts with fixed runtime knobs.
type Experiment struct {
	Bench string `json:"bench,omitempty"`
	// Label distinguishes two experiments over the same benchmark (e.g. a
	// core sweep and an oversubscription sweep); it defaults to Bench.
	Label string `json:"label,omitempty"`
	// N overrides the benchmark's default problem size.
	N int `json:"n,omitempty"`
	// Procs is the worker-count sweep: a JSON array of integers and/or
	// the string "cores" (the host's core count), or the string "sweep"
	// for 1..cores. Every experiment's expansion must include P=1 — it is
	// the calibration point for the bound and the speedup curves.
	Procs ProcSpec `json:"procs,omitempty"`
	// Heap is the heap-materialization mode: "fork" (default) or "lazy".
	Heap string `json:"heap,omitempty"`
	// Ancestry is the ancestry oracle: "forkpath" (default) or
	// "orderlist" (the retired list, kept for ablation).
	Ancestry string `json:"ancestry,omitempty"`
	// Elide runs with the entanglement barriers off (mpl.Unsafe) — the
	// whole-program analogue of the static-elision ablation, valid only
	// for disentangled benchmarks (the spec loader rejects it elsewhere).
	Elide *bool `json:"elide,omitempty"`
	// Repeats is the number of timed samples per cell (default 5);
	// Warmups run first, untimed (default 1; -1 means none).
	Repeats int `json:"repeats,omitempty"`
	Warmups int `json:"warmups,omitempty"`
	// Seed makes the runtime's scheduling decisions reproducible and is
	// surfaced in traced runs (trace.CtrGridSeed). Default 1.
	Seed int64 `json:"seed,omitempty"`
}

// ProcSpec is the worker-count sweep of one experiment. It unmarshals
// from either the string "sweep" (expanded to 1..cores at Expand time) or
// an array whose elements are integers or the string "cores".
type ProcSpec struct {
	Sweep bool
	List  []int // -1 encodes "cores" until expansion
}

// coresMarker stands for the host core count inside ProcSpec.List until
// Expand resolves it.
const coresMarker = -1

func (p *ProcSpec) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		if s != "sweep" {
			return fmt.Errorf("procs: unknown keyword %q (want \"sweep\" or an array)", s)
		}
		p.Sweep = true
		return nil
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("procs: want \"sweep\" or an array of ints and \"cores\": %w", err)
	}
	for _, el := range raw {
		var n int
		if err := json.Unmarshal(el, &n); err == nil {
			p.List = append(p.List, n)
			continue
		}
		var kw string
		if err := json.Unmarshal(el, &kw); err != nil || kw != "cores" {
			return fmt.Errorf("procs: bad element %s (want an int or \"cores\")", el)
		}
		p.List = append(p.List, coresMarker)
	}
	return nil
}

func (p ProcSpec) MarshalJSON() ([]byte, error) {
	if p.Sweep {
		return json.Marshal("sweep")
	}
	out := make([]any, len(p.List))
	for i, n := range p.List {
		if n == coresMarker {
			out[i] = "cores"
		} else {
			out[i] = n
		}
	}
	return json.Marshal(out)
}

// expand resolves the sweep against the host core count, dedupes, and
// sorts ascending.
func (p ProcSpec) expand(cores int) []int {
	if cores < 1 {
		cores = 1
	}
	var ps []int
	if p.Sweep {
		for i := 1; i <= cores; i++ {
			ps = append(ps, i)
		}
	}
	for _, n := range p.List {
		if n == coresMarker {
			n = cores
		}
		ps = append(ps, n)
	}
	sort.Ints(ps)
	out := ps[:0]
	for i, n := range ps {
		if i == 0 || n != ps[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// Cell is one fully-resolved grid cell: an (experiment, P) pair with
// every knob concrete. A cell is the unit of subprocess execution — its
// JSON form is the wire format of mplgo-bench's grid-cell mode.
type Cell struct {
	ID       string `json:"id"` // e.g. "msort/p=2/heap=fork/anc=forkpath/elide=off"
	Label    string `json:"label"`
	Bench    string `json:"bench"`
	N        int    `json:"n"`
	Procs    int    `json:"procs"`
	Heap     string `json:"heap"`
	Ancestry string `json:"ancestry"`
	Elide    bool   `json:"elide"`
	Repeats  int    `json:"repeats"`
	Warmups  int    `json:"warmups"`
	Seed     int64  `json:"seed"`
	// MeasureSeq adds the global-heap sequential baseline to the cell's
	// measurements (set on each group's P=1 cell — overhead needs it).
	MeasureSeq bool `json:"measure_seq,omitempty"`
	// TracePath, when set, adds one extra untimed traced run and writes
	// its Chrome export there, stamped with the cell-identity counters.
	TracePath string `json:"trace_path,omitempty"`
	// Attr, when set, adds one extra untimed run with the cost-attribution
	// profiler installed; the per-component decomposition rides in the
	// CellResult. The timed repeats never see the profiler.
	Attr bool `json:"attr,omitempty"`
}

// GroupKey identifies the cell's sweep group: all cells differing only in
// P. Speedup curves and bound calibration are per group.
func (c *Cell) GroupKey() string {
	return fmt.Sprintf("%s/heap=%s/anc=%s/elide=%s", c.Label, c.Heap, c.Ancestry, onOff(c.Elide))
}

// IDHash is the cell identity surfaced through trace rings (the value of
// the grid_cell counter event): a stable 64-bit FNV-1a of the cell ID.
func (c *Cell) IDHash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.ID))
	return h.Sum64()
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// LoadSpec reads and validates a grid spec from path.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func (s *Spec) fill() {
	if s.StealCost <= 0 {
		s.StealCost = 200
	}
	if s.BrentC <= 0 {
		s.BrentC = 8
	}
	if s.BrentTolerance <= 0 {
		s.BrentTolerance = 0.25
	}
	if s.SimTolerance <= 0 {
		s.SimTolerance = 0.5
	}
	d := &s.Defaults
	if d.Repeats <= 0 {
		d.Repeats = 5
	}
	if d.Warmups == 0 {
		d.Warmups = 1 // explicit "no warmups" is spelled -1
	}
	if d.Heap == "" {
		d.Heap = HeapFork
	}
	if d.Ancestry == "" {
		d.Ancestry = AncestryForkPath
	}
	if d.Seed == 0 {
		d.Seed = 1
	}
}

// resolve overlays the spec defaults onto e and returns the concrete
// experiment.
func (s *Spec) resolve(e Experiment) Experiment {
	d := s.Defaults
	if e.Label == "" {
		e.Label = e.Bench
	}
	if e.Heap == "" {
		e.Heap = d.Heap
	}
	if e.Ancestry == "" {
		e.Ancestry = d.Ancestry
	}
	if e.Elide == nil {
		e.Elide = d.Elide
	}
	if e.Elide == nil {
		f := false
		e.Elide = &f
	}
	if e.Repeats <= 0 {
		e.Repeats = d.Repeats
	}
	if e.Warmups == 0 {
		e.Warmups = d.Warmups
	}
	if e.Warmups < 0 {
		e.Warmups = 0
	}
	if e.Seed == 0 {
		e.Seed = d.Seed
	}
	if !e.Procs.Sweep && len(e.Procs.List) == 0 {
		e.Procs = d.Procs
	}
	return e
}

// Validate checks the spec is executable: every experiment names a known
// benchmark, modes are in range, elision is only requested for
// disentangled benchmarks, and every sweep includes P=1 (the calibration
// point), with labels unique per (label, heap, ancestry, elide) group.
func (s *Spec) Validate() error {
	s.fill()
	if len(s.Experiments) == 0 {
		return fmt.Errorf("no experiments")
	}
	seen := map[string]bool{}
	for i, raw := range s.Experiments {
		e := s.resolve(raw)
		b, ok := bench.ByName(e.Bench)
		if !ok {
			return fmt.Errorf("experiment %d: unknown benchmark %q", i, e.Bench)
		}
		switch e.Heap {
		case HeapFork, HeapLazy:
		default:
			return fmt.Errorf("experiment %d (%s): bad heap mode %q", i, e.Label, e.Heap)
		}
		switch e.Ancestry {
		case AncestryForkPath, AncestryOrderList:
		default:
			return fmt.Errorf("experiment %d (%s): bad ancestry mode %q", i, e.Label, e.Ancestry)
		}
		if *e.Elide && b.Entangled {
			return fmt.Errorf("experiment %d (%s): elide=true is unsound for entangled benchmark %q",
				i, e.Label, e.Bench)
		}
		ps := e.Procs.expand(1) // cores=1: the weakest expansion still needs P=1
		if len(ps) == 0 {
			return fmt.Errorf("experiment %d (%s): empty procs sweep", i, e.Label)
		}
		if ps[0] != 1 {
			return fmt.Errorf("experiment %d (%s): procs sweep must include 1 (got %v)", i, e.Label, ps)
		}
		for _, p := range ps {
			if p < 1 {
				return fmt.Errorf("experiment %d (%s): bad procs %d", i, e.Label, p)
			}
		}
		key := fmt.Sprintf("%s/heap=%s/anc=%s/elide=%s", e.Label, e.Heap, e.Ancestry, onOff(*e.Elide))
		if seen[key] {
			return fmt.Errorf("experiment %d: duplicate group %s (use label to distinguish)", i, key)
		}
		seen[key] = true
	}
	return nil
}

// Expand resolves the grid against a host core count and returns the
// concrete cells in execution order (experiment order, then ascending P).
func (s *Spec) Expand(cores int) []Cell {
	s.fill()
	var cells []Cell
	for _, raw := range s.Experiments {
		e := s.resolve(raw)
		n := e.N
		if n == 0 {
			if b, ok := bench.ByName(e.Bench); ok {
				n = b.DefaultN
			}
		}
		for _, p := range e.Procs.expand(cores) {
			c := Cell{
				Label:      e.Label,
				Bench:      e.Bench,
				N:          n,
				Procs:      p,
				Heap:       e.Heap,
				Ancestry:   e.Ancestry,
				Elide:      *e.Elide,
				Repeats:    e.Repeats,
				Warmups:    e.Warmups,
				Seed:       e.Seed,
				MeasureSeq: p == 1,
			}
			c.ID = fmt.Sprintf("%s/p=%d/heap=%s/anc=%s/elide=%s",
				e.Label, p, e.Heap, e.Ancestry, onOff(c.Elide))
			cells = append(cells, c)
		}
	}
	return cells
}
