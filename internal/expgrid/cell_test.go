package expgrid

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smokeCell() Cell {
	c := Cell{
		ID: "msort/p=2/heap=fork/anc=forkpath/elide=off", Label: "msort",
		Bench: "msort", N: 2000, Procs: 2, Heap: HeapFork, Ancestry: AncestryForkPath,
		Repeats: 2, Warmups: 1, Seed: 1, MeasureSeq: true,
	}
	return c
}

func TestExecuteCellSmoke(t *testing.T) {
	res, err := ExecuteCell(smokeCell())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WallNS) != 2 || len(res.TseqNS) != 2 {
		t.Fatalf("samples: wall %v seq %v, want 2 each", res.WallNS, res.TseqNS)
	}
	for _, ns := range append(append([]int64{}, res.WallNS...), res.TseqNS...) {
		if ns <= 0 {
			t.Fatalf("non-positive sample: %+v", res)
		}
	}
	// msort is deterministic: the parallel and sequential checksums agree.
	if !res.ChecksumStable || res.Checksum == 0 {
		t.Errorf("checksum: %d stable=%v", res.Checksum, res.ChecksumStable)
	}
	if res.Work <= 0 || res.Span <= 0 || res.Work < res.Span {
		t.Errorf("recorded DAG: W=%d S=%d", res.Work, res.Span)
	}
	// The P=1 replay schedules every unit of work on one processor.
	if res.SimT1 != res.Work {
		t.Errorf("SimT1 %d != Work %d", res.SimT1, res.Work)
	}
	if res.SimTP <= 0 || res.SimTP > res.SimT1 {
		t.Errorf("SimTP %d vs SimT1 %d", res.SimTP, res.SimT1)
	}
	if res.Host == nil {
		t.Error("cell result missing host fingerprint")
	}
	eff := res.Host.EffectiveProcs(2)
	if eff == 2 && res.SimTPEff != res.SimTP {
		t.Errorf("effP == P but SimTPEff %d != SimTP %d", res.SimTPEff, res.SimTP)
	}
	if eff == 1 && res.SimTPEff != res.SimT1 {
		t.Errorf("effP == 1 but SimTPEff %d != SimT1 %d", res.SimTPEff, res.SimT1)
	}
}

func TestExecuteCellRejectsBadCells(t *testing.T) {
	c := smokeCell()
	c.Bench = "nosuch"
	if _, err := ExecuteCell(c); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("unknown benchmark: %v", err)
	}
	c = smokeCell()
	c.Bench, c.Elide = "dedup", true
	if _, err := ExecuteCell(c); err == nil || !strings.Contains(err.Error(), "unsound") {
		t.Errorf("elide on entangled: %v", err)
	}
	c = smokeCell()
	c.Heap = "eager"
	if _, err := ExecuteCell(c); err == nil || !strings.Contains(err.Error(), "bad heap mode") {
		t.Errorf("bad heap: %v", err)
	}
}

// The traced run must stamp the export with the cell-identity counters
// (grid_cell, grid_seed) so any trace file is attributable to its cell.
func TestTracedCellStampsIdentity(t *testing.T) {
	c := smokeCell()
	c.N, c.Repeats, c.Warmups = 500, 1, 0
	c.MeasureSeq = false
	c.TracePath = filepath.Join(t.TempDir(), "cell.trace.json")
	res, err := ExecuteCell(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceEvents == 0 {
		t.Error("traced run captured no events")
	}
	data, err := os.ReadFile(c.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"grid_cell", "grid_seed"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace export missing %q counter", want)
		}
	}
}

// An in-process runner over a tiny two-cell grid exercises the whole
// pipeline: expansion, execution, calibration, and the bound check.
func TestRunnerInProcess(t *testing.T) {
	spec, err := specOf(t, `{"experiments":[{"bench":"msort","n":2000,"procs":[1,2],"repeats":2,"warmups":0}]}`)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Spec: spec}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || len(rep.CrossVal) != 2 {
		t.Fatalf("results %d crossval %d, want 2 each", len(rep.Results), len(rep.CrossVal))
	}
	for _, cv := range rep.CrossVal {
		if !cv.Calibrated {
			t.Errorf("%s: uncalibrated", cv.CellID)
		}
	}
	dir := t.TempDir()
	if err := rep.WriteOutputs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{SamplesCSV, SummaryCSV, SpeedupCSV, OverheadCSV,
		CrossvalCSV, CrossvalTXT, ResultsJSON, HostJSON} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing output %s: %v", name, err)
		}
	}
}
