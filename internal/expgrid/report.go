package expgrid

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"mplgo/internal/bench"
	"mplgo/internal/tables"
)

// Output file names under the paper-run output directory.
const (
	SamplesCSV  = "samples.csv"
	SummaryCSV  = "summary_grouped.csv"
	SpeedupCSV  = "speedup_curves.csv"
	OverheadCSV = "overhead.csv"
	CrossvalCSV = "crossval.csv"
	CrossvalTXT = "crossval.txt"
	ResultsJSON = "results.json"
	HostJSON    = "host.json"
)

func entangledOf(name string) bool {
	b, ok := bench.ByName(name)
	return ok && b.Entangled
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
func ftoa(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// cellCols are the identity columns every per-cell table starts with.
func cellCols(c Cell) []string {
	return []string{
		c.ID, c.Bench, fmt.Sprintf("%v", entangledOf(c.Bench)),
		itoa(int64(c.Procs)), c.Heap, c.Ancestry, onOff(c.Elide), itoa(int64(c.N)),
	}
}

// SamplesTable is the raw per-repeat record: one row per timed sample,
// mpl rows for the hierarchical runtime at the cell's P and seq rows for
// the global-heap baseline (P=1 cells only).
func SamplesTable(rep *Report) *tables.Table {
	t := &tables.Table{
		Name: "samples",
		Header: []string{"cell", "bench", "entangled", "procs", "heap", "ancestry",
			"elide", "n", "kind", "repeat", "wall_ns"},
	}
	for _, res := range rep.Results {
		base := cellCols(res.Cell)
		for i, ns := range res.WallNS {
			t.Append(append(append([]string{}, base...), "mpl", itoa(int64(i)), itoa(ns))...)
		}
		for i, ns := range res.TseqNS {
			t.Append(append(append([]string{}, base...), "seq", itoa(int64(i)), itoa(ns))...)
		}
	}
	return t
}

// SummaryTable is summary_grouped.csv: per-cell grouped statistics (mean,
// min, max, stddev, 95% CI on the mean) for the mpl samples, plus seq
// rows for the baseline measurements.
func SummaryTable(rep *Report) *tables.Table {
	t := &tables.Table{
		Name: "summary_grouped",
		Header: []string{"cell", "bench", "entangled", "procs", "heap", "ancestry",
			"elide", "n", "kind", "samples", "min_ns", "mean_ns", "max_ns",
			"stddev_ns", "ci95_ns"},
	}
	row := func(c Cell, kind string, ns []int64) {
		if len(ns) == 0 {
			return
		}
		s := tables.SummarizeNS(ns)
		t.Append(append(append([]string{}, cellCols(c)...),
			kind, itoa(int64(s.N)), ftoa(s.Min, 0), ftoa(s.Mean, 0), ftoa(s.Max, 0),
			ftoa(s.Stddev, 0), ftoa(s.CI95, 0))...)
	}
	for _, res := range rep.Results {
		row(res.Cell, "mpl", res.WallNS)
		row(res.Cell, "seq", res.TseqNS)
	}
	return t
}

// SpeedupTable is the per-group speedup curve over the P sweep: measured
// speedup (best T_1 / best T_P, real cores) beside the simulator's
// replayed curve for the same DAG at the same P.
func SpeedupTable(rep *Report) *tables.Table {
	t := &tables.Table{
		Name: "speedup_curves",
		Header: []string{"curve", "bench", "entangled", "heap", "ancestry", "elide",
			"n", "procs", "eff_procs", "min_ns", "speedup", "sim_speedup"},
	}
	t1 := map[string]int64{} // group → best measured T_1
	for _, res := range rep.Results {
		if res.Cell.Procs == 1 {
			t1[res.Cell.GroupKey()] = tables.MinNS(res.WallNS)
		}
	}
	for _, res := range rep.Results {
		c := res.Cell
		base, ok := t1[c.GroupKey()]
		if !ok || base == 0 {
			continue
		}
		min := tables.MinNS(res.WallNS)
		if min == 0 || res.SimTP == 0 {
			continue
		}
		t.Append(c.GroupKey(), c.Bench, fmt.Sprintf("%v", entangledOf(c.Bench)),
			c.Heap, c.Ancestry, onOff(c.Elide), itoa(int64(c.N)),
			itoa(int64(c.Procs)), itoa(int64(res.Host.EffectiveProcs(c.Procs))),
			itoa(min),
			ftoa(float64(base)/float64(min), 3),
			ftoa(float64(res.SimT1)/float64(res.SimTP), 3))
	}
	return t
}

// OverheadTable reports each group's single-processor overhead (best T_1
// over best sequential baseline), the paper's headline per-benchmark
// statistic, with both CIs so drift is visible.
func OverheadTable(rep *Report) *tables.Table {
	t := &tables.Table{
		Name: "overhead",
		Header: []string{"group", "bench", "entangled", "heap", "ancestry", "elide",
			"n", "tseq_min_ns", "t1_min_ns", "overhead", "tseq_ci95_ns", "t1_ci95_ns"},
	}
	for _, res := range rep.Results {
		c := res.Cell
		if c.Procs != 1 || len(res.TseqNS) == 0 {
			continue
		}
		tseq, t1min := tables.MinNS(res.TseqNS), tables.MinNS(res.WallNS)
		if tseq == 0 || t1min == 0 {
			continue
		}
		t.Append(c.GroupKey(), c.Bench, fmt.Sprintf("%v", entangledOf(c.Bench)),
			c.Heap, c.Ancestry, onOff(c.Elide), itoa(int64(c.N)),
			itoa(tseq), itoa(t1min), ftoa(float64(t1min)/float64(tseq), 3),
			ftoa(tables.SummarizeNS(res.TseqNS).CI95, 0),
			ftoa(tables.SummarizeNS(res.WallNS).CI95, 0))
	}
	return t
}

// CrossvalTable is the machine-readable cross-validation report.
func CrossvalTable(rep *Report) *tables.Table {
	t := &tables.Table{
		Name: "crossval",
		Header: []string{"cell", "procs", "eff_procs", "work", "span", "unit_ns",
			"brent_lo_ns", "brent_hi_ns", "min_ns", "brent_ok", "sim_pred_ns",
			"divergence", "sim_flagged"},
	}
	for _, cv := range rep.CrossVal {
		t.Append(cv.CellID, itoa(int64(cv.Procs)), itoa(int64(cv.EffProcs)),
			itoa(cv.Work), itoa(cv.Span), ftoa(cv.UnitNS, 4),
			ftoa(cv.BrentLoNS, 0), ftoa(cv.BrentHiNS, 0), itoa(cv.MinNS),
			fmt.Sprintf("%v", cv.BrentOK), ftoa(cv.SimPredNS, 0),
			ftoa(cv.Divergence, 3), fmt.Sprintf("%v", cv.SimFlagged))
	}
	return t
}

// ValidateSummaryTable checks summary_grouped.csv semantically: at least
// one row, every row with samples ≥ 1 and min ≤ mean ≤ max, CI
// non-negative.
func ValidateSummaryTable(t *tables.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t.Rows) == 0 {
		return fmt.Errorf("table %s: no rows", t.Name)
	}
	for i := range t.Rows {
		n, err := t.Float(i, "samples")
		if err != nil {
			return err
		}
		min, _ := t.Float(i, "min_ns")
		mean, _ := t.Float(i, "mean_ns")
		max, _ := t.Float(i, "max_ns")
		ci, _ := t.Float(i, "ci95_ns")
		if n < 1 || min <= 0 || min > mean+0.5 || mean > max+0.5 || ci < 0 {
			return fmt.Errorf("table %s: row %d (%s): bad statistics n=%v min=%v mean=%v max=%v ci=%v",
				t.Name, i, t.Rows[i][0], n, min, mean, max, ci)
		}
	}
	return nil
}

// ValidateSpeedupTable checks speedup_curves.csv semantically: every
// curve has a P=1 row with measured and simulated speedup exactly 1,
// strictly increasing P, positive speedups, and eff_procs ≤ procs.
func ValidateSpeedupTable(t *tables.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t.Rows) == 0 {
		return fmt.Errorf("table %s: no rows", t.Name)
	}
	curves := map[string][]int{} // curve → row indices
	for i, row := range t.Rows {
		curves[row[t.Col("curve")]] = append(curves[row[t.Col("curve")]], i)
	}
	for curve, idx := range curves {
		lastP := 0
		sawP1 := false
		for _, i := range idx {
			p, _ := t.Float(i, "procs")
			eff, _ := t.Float(i, "eff_procs")
			sp, _ := t.Float(i, "speedup")
			sim, _ := t.Float(i, "sim_speedup")
			if int(p) <= lastP {
				return fmt.Errorf("table %s: curve %s: procs not strictly increasing at row %d",
					t.Name, curve, i)
			}
			lastP = int(p)
			if eff > p || eff < 1 {
				return fmt.Errorf("table %s: curve %s: eff_procs %v vs procs %v", t.Name, curve, eff, p)
			}
			if sp <= 0 || sim <= 0 {
				return fmt.Errorf("table %s: curve %s: non-positive speedup at row %d", t.Name, curve, i)
			}
			if int(p) == 1 {
				sawP1 = true
				if sp != 1 || sim != 1 {
					return fmt.Errorf("table %s: curve %s: P=1 speedup %v/%v (want exactly 1)",
						t.Name, curve, sp, sim)
				}
			}
		}
		if !sawP1 {
			return fmt.Errorf("table %s: curve %s: no P=1 calibration row", t.Name, curve)
		}
	}
	return nil
}

// ValidateOverheadTable checks overhead.csv semantically.
func ValidateOverheadTable(t *tables.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t.Rows) == 0 {
		return fmt.Errorf("table %s: no rows", t.Name)
	}
	for i := range t.Rows {
		ov, err := t.Float(i, "overhead")
		if err != nil {
			return err
		}
		if ov <= 0 {
			return fmt.Errorf("table %s: row %d: non-positive overhead", t.Name, i)
		}
	}
	return nil
}

// ValidateCrossvalTable checks crossval.csv is well-formed and that every
// calibrated cell carries a bound (positive hi ≥ lo ≥ 0).
func ValidateCrossvalTable(t *tables.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t.Rows) == 0 {
		return fmt.Errorf("table %s: no rows", t.Name)
	}
	for i := range t.Rows {
		lo, _ := t.Float(i, "brent_lo_ns")
		hi, _ := t.Float(i, "brent_hi_ns")
		if lo < 0 || hi < lo {
			return fmt.Errorf("table %s: row %d: bad bound [%v, %v]", t.Name, i, lo, hi)
		}
		switch t.Rows[i][t.Col("brent_ok")] {
		case "true", "false":
		default:
			return fmt.Errorf("table %s: row %d: bad brent_ok", t.Name, i)
		}
	}
	return nil
}

// WriteOutputs builds, validates, and writes every paper-run artifact
// into dir: the raw samples, the grouped summary, the speedup and
// overhead tables, the cross-validation report (CSV and human-readable),
// the raw results, and the host fingerprint. Any validation failure is an
// error — an unvalidated table is never written.
func (rep *Report) WriteOutputs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type out struct {
		name     string
		table    *tables.Table
		validate func(*tables.Table) error
	}
	outs := []out{
		{SamplesCSV, SamplesTable(rep), (*tables.Table).Validate},
		{SummaryCSV, SummaryTable(rep), ValidateSummaryTable},
		{SpeedupCSV, SpeedupTable(rep), ValidateSpeedupTable},
		{OverheadCSV, OverheadTable(rep), ValidateOverheadTable},
		{CrossvalCSV, CrossvalTable(rep), ValidateCrossvalTable},
	}
	for _, o := range outs {
		if err := o.validate(o.table); err != nil {
			return fmt.Errorf("unvalidated table: %w", err)
		}
		if err := tables.WriteCSVFile(filepath.Join(dir, o.name), o.table); err != nil {
			return err
		}
	}
	if err := writeJSON(filepath.Join(dir, ResultsJSON), rep); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, HostJSON), rep.Host); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, CrossvalTXT))
	if err != nil {
		return err
	}
	rep.WriteCrossvalText(f)
	return f.Close()
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteCrossvalText renders the human-readable cross-validation report.
func (rep *Report) WriteCrossvalText(w *os.File) {
	fmt.Fprintf(w, "# cross-validation: measured T_P vs Brent bound and simulator prediction\n")
	fmt.Fprintf(w, "# host: %s\n# started: %s\n", rep.Host, rep.Started)
	fmt.Fprintf(w, "%-50s %5s %5s %12s %24s %12s %6s %8s\n",
		"cell", "P", "effP", "min", "brent [lo, hi]", "sim pred", "ok", "diverg")
	for _, cv := range rep.CrossVal {
		ok := "OK"
		if !cv.BrentOK {
			ok = "FAIL"
		}
		if !cv.Calibrated {
			ok = "UNCAL"
		}
		fmt.Fprintf(w, "%-50s %5d %5d %12s [%10s, %10s] %12s %6s %+7.0f%%\n",
			cv.CellID, cv.Procs, cv.EffProcs, time.Duration(cv.MinNS),
			time.Duration(int64(cv.BrentLoNS)), time.Duration(int64(cv.BrentHiNS)),
			time.Duration(int64(cv.SimPredNS)), ok, cv.Divergence*100)
	}
	warn := func(header string, lines []string) {
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", header)
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Fprintf(w, "  %s\n", l)
		}
	}
	warn("BRENT VIOLATIONS (run fails)", rep.BrentViolations)
	warn("simulator divergence (warn)", rep.SimFlags)
	warn("checksum instability (warn)", rep.ChecksumWarnings)
	if len(rep.BrentViolations) == 0 {
		fmt.Fprintf(w, "\nall %d cells satisfy W/effP ≤ T_P ≤ W/effP + c·S\n", len(rep.CrossVal))
	}
}
