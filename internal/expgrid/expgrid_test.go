package expgrid

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestProcSpecUnmarshal(t *testing.T) {
	var p ProcSpec
	if err := json.Unmarshal([]byte(`"sweep"`), &p); err != nil || !p.Sweep {
		t.Fatalf("sweep: %+v, %v", p, err)
	}
	p = ProcSpec{}
	if err := json.Unmarshal([]byte(`[1, 4, "cores", 2]`), &p); err != nil {
		t.Fatal(err)
	}
	if p.Sweep || !reflect.DeepEqual(p.List, []int{1, 4, coresMarker, 2}) {
		t.Fatalf("list: %+v", p)
	}
	for _, bad := range []string{`"swoop"`, `[1, "corse"]`, `[1.5]`, `{"a":1}`} {
		if err := json.Unmarshal([]byte(bad), &(ProcSpec{})); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

func TestProcSpecRoundTrip(t *testing.T) {
	for _, src := range []string{`"sweep"`, `[1,2,"cores"]`} {
		var p ProcSpec
		if err := json.Unmarshal([]byte(src), &p); err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q ProcSpec
		if err := json.Unmarshal(out, &q); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Errorf("%s: %+v != %+v after round trip", src, p, q)
		}
	}
}

func TestProcSpecExpand(t *testing.T) {
	cases := []struct {
		spec  ProcSpec
		cores int
		want  []int
	}{
		{ProcSpec{Sweep: true}, 4, []int{1, 2, 3, 4}},
		{ProcSpec{Sweep: true}, 0, []int{1}},                          // degenerate host still yields P=1
		{ProcSpec{List: []int{1, 2, coresMarker}}, 2, []int{1, 2}},    // "cores" dedupes into 2
		{ProcSpec{List: []int{4, 1, coresMarker}}, 8, []int{1, 4, 8}}, // sorted ascending
		{ProcSpec{Sweep: true, List: []int{8}}, 2, []int{1, 2, 8}},    // sweep + explicit extras
		{ProcSpec{List: []int{2, 2, 2}}, 1, []int{2}},                 // dedup
	}
	for i, c := range cases {
		if got := c.spec.expand(c.cores); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: expand(%d) = %v, want %v", i, c.cores, got, c.want)
		}
	}
}

func specOf(t *testing.T, src string) (*Spec, error) {
	t.Helper()
	var s Spec
	if err := json.Unmarshal([]byte(src), &s); err != nil {
		t.Fatalf("bad test JSON: %v", err)
	}
	return &s, s.Validate()
}

func TestSpecValidate(t *testing.T) {
	if _, err := specOf(t, `{"experiments":[{"bench":"msort","procs":[1,2]}]}`); err != nil {
		t.Errorf("minimal valid spec rejected: %v", err)
	}
	cases := []struct{ src, want string }{
		{`{"experiments":[]}`, "no experiments"},
		{`{"experiments":[{"bench":"nosuch","procs":[1]}]}`, "unknown benchmark"},
		{`{"experiments":[{"bench":"msort","procs":[1],"heap":"eager"}]}`, "bad heap mode"},
		{`{"experiments":[{"bench":"msort","procs":[1],"ancestry":"magic"}]}`, "bad ancestry mode"},
		{`{"experiments":[{"bench":"dedup","procs":[1],"elide":true}]}`, "unsound for entangled"},
		{`{"experiments":[{"bench":"msort","procs":[2,4]}]}`, "must include 1"},
		{`{"experiments":[{"bench":"msort","procs":[1]},{"bench":"msort","procs":[1,2]}]}`, "duplicate group"},
	}
	for _, c := range cases {
		_, err := specOf(t, c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.src, err, c.want)
		}
	}
	// Same benchmark twice is fine when labels distinguish the groups.
	if _, err := specOf(t,
		`{"experiments":[{"bench":"msort","procs":[1]},{"bench":"msort","label":"ms2","procs":[1]}]}`); err != nil {
		t.Errorf("labeled duplicate rejected: %v", err)
	}
}

func TestSpecDefaultsFill(t *testing.T) {
	s, err := specOf(t, `{"defaults":{"repeats":7,"heap":"lazy"},"experiments":[{"bench":"msort","procs":[1]}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.StealCost != 200 || s.BrentC != 8 || s.BrentTolerance != 0.25 || s.SimTolerance != 0.5 {
		t.Errorf("spec-level defaults: %+v", s)
	}
	cells := s.Expand(1)
	if len(cells) != 1 {
		t.Fatalf("cells: %v", cells)
	}
	c := cells[0]
	if c.Repeats != 7 || c.Heap != HeapLazy || c.Ancestry != AncestryForkPath ||
		c.Warmups != 1 || c.Seed != 1 || c.Elide {
		t.Errorf("resolved cell: %+v", c)
	}
	if c.N == 0 {
		t.Error("default problem size not filled from benchmark registry")
	}
}

func TestSpecExpandCells(t *testing.T) {
	s, err := specOf(t, `{"experiments":[
		{"bench":"msort","n":512,"procs":[1,2,"cores"]},
		{"bench":"dedup","n":256,"procs":[1]}]}`)
	if err != nil {
		t.Fatal(err)
	}
	cells := s.Expand(4)
	if len(cells) != 4 { // msort {1,2,4} + dedup {1}
		t.Fatalf("got %d cells: %+v", len(cells), cells)
	}
	if cells[0].ID != "msort/p=1/heap=fork/anc=forkpath/elide=off" {
		t.Errorf("ID: %q", cells[0].ID)
	}
	if !cells[0].MeasureSeq || cells[1].MeasureSeq || cells[2].MeasureSeq || !cells[3].MeasureSeq {
		t.Error("MeasureSeq must be set exactly on each group's P=1 cell")
	}
	if cells[2].Procs != 4 {
		t.Errorf(`"cores" not resolved: %+v`, cells[2])
	}
	if cells[0].GroupKey() != cells[2].GroupKey() {
		t.Error("sweep cells must share a group key")
	}
	if cells[0].GroupKey() == cells[3].GroupKey() {
		t.Error("different benchmarks must not share a group key")
	}
	if cells[0].IDHash() == cells[1].IDHash() {
		t.Error("distinct cells hashed alike")
	}
}

// The checked-in grids must stay loadable: they are the reproducibility
// contract of scripts/paper/out and of the CI paper job.
func TestCheckedInSpecs(t *testing.T) {
	for _, name := range []string{"experiments.json", "experiments-ci.json"} {
		spec, err := LoadSpec(filepath.Join("../../scripts/paper", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		// The acceptance bar: at least one disentangled and one entangled
		// sweep with more than one P point, so both speedup curves exist.
		kinds := map[bool]bool{}
		for _, e := range spec.Experiments {
			e = spec.resolve(e)
			if ps := e.Procs.expand(1); len(ps) > 1 {
				kinds[entangledOf(e.Bench)] = true
			}
		}
		if !kinds[false] || !kinds[true] {
			t.Errorf("%s: want a multi-P sweep for a disentangled and an entangled benchmark, got %v",
				name, kinds)
		}
	}
}
