package expgrid

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mplgo/internal/tables"
)

var update = flag.Bool("update", false, "rewrite golden files from the canned report")

// cannedReport is a fixed two-group report (a disentangled msort sweep and
// an entangled dedup sweep) with hand-picked numbers, the fixture behind
// the golden tables and the cross-validation tests.
func cannedReport() *Report {
	host := &tables.Fingerprint{Cores: 4, GOMAXPROCS: 4, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	cell := func(benchName string, p int, measureSeq bool) Cell {
		c := Cell{
			Label: benchName, Bench: benchName, N: 1000, Procs: p,
			Heap: HeapFork, Ancestry: AncestryForkPath,
			Repeats: 3, Warmups: 1, Seed: 1, MeasureSeq: measureSeq,
		}
		c.ID = c.GroupKey() + "/p=" + itoa(int64(p))
		return c
	}
	return &Report{
		Started: "2026-08-07T00:00:00Z",
		Host:    host,
		Results: []*CellResult{
			{
				Cell:     cell("msort", 1, true),
				WallNS:   []int64{10_000_000, 10_400_000, 10_200_000},
				TseqNS:   []int64{8_000_000, 8_200_000, 8_100_000},
				Checksum: 42, ChecksumStable: true,
				Work: 10_000, Span: 500, SimT1: 10_000, SimTP: 10_000, SimTPEff: 10_000, Host: host,
			},
			{
				Cell:     cell("msort", 2, false),
				WallNS:   []int64{6_000_000, 6_300_000, 6_100_000},
				Checksum: 42, ChecksumStable: true,
				Work: 10_000, Span: 500, SimT1: 10_000, SimTP: 5_100, SimTPEff: 5_100, Host: host,
			},
			{
				Cell:     cell("msort", 4, false),
				WallNS:   []int64{4_000_000, 4_500_000, 4_200_000},
				Checksum: 42, ChecksumStable: true,
				Work: 10_000, Span: 500, SimT1: 10_000, SimTP: 2_700, SimTPEff: 2_700, Host: host,
			},
			{
				Cell:     cell("dedup", 1, true),
				WallNS:   []int64{1_000_000, 1_100_000, 1_050_000},
				TseqNS:   []int64{600_000, 620_000, 610_000},
				Checksum: 7, ChecksumStable: true,
				Work: 2_000, Span: 300, SimT1: 2_000, SimTP: 2_000, SimTPEff: 2_000, Host: host,
			},
			{
				Cell:     cell("dedup", 2, false),
				WallNS:   []int64{800_000, 850_000, 820_000},
				Checksum: 7, ChecksumStable: true,
				Work: 2_000, Span: 300, SimT1: 2_000, SimTP: 1_200, SimTPEff: 1_200, Host: host,
			},
		},
	}
}

func cannedSpec() *Spec {
	s := &Spec{}
	s.fill()
	return s
}

func checkGolden(t *testing.T, name string, tab *tables.Table) {
	t.Helper()
	var buf bytes.Buffer
	if err := tables.WriteCSV(&buf, tab); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v (run with -update to generate)", name, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s differs from golden:\ngot:\n%swant:\n%s", name, buf.Bytes(), want)
	}
}

func TestGoldenTables(t *testing.T) {
	rep := cannedReport()
	rep.crossValidate(cannedSpec())
	if err := rep.Err(); err != nil {
		t.Fatalf("canned report must be violation-free: %v (%v)", err, rep.BrentViolations)
	}
	if err := ValidateSummaryTable(SummaryTable(rep)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSpeedupTable(SpeedupTable(rep)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateOverheadTable(OverheadTable(rep)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCrossvalTable(CrossvalTable(rep)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary_grouped.golden.csv", SummaryTable(rep))
	checkGolden(t, "speedup_curves.golden.csv", SpeedupTable(rep))
	checkGolden(t, "overhead.golden.csv", OverheadTable(rep))
}

func TestCrossValidateNumbers(t *testing.T) {
	rep := cannedReport()
	rep.crossValidate(cannedSpec())
	if len(rep.CrossVal) != 5 {
		t.Fatalf("crossval rows: %d", len(rep.CrossVal))
	}
	// msort group: unit = minT1/SimT1 = 10_000_000/10_000 = 1000 ns/unit.
	cv := rep.CrossVal[1] // msort P=2
	if cv.UnitNS != 1000 {
		t.Errorf("unit %v, want 1000", cv.UnitNS)
	}
	// lo = W/effP · u = 5_000_000; hi = lo + c·S·u = 5e6 + 8·500·1000 = 9e6.
	if cv.BrentLoNS != 5_000_000 || cv.BrentHiNS != 9_000_000 {
		t.Errorf("bound [%v, %v], want [5e6, 9e6]", cv.BrentLoNS, cv.BrentHiNS)
	}
	if !cv.BrentOK || cv.SimFlagged {
		t.Errorf("msort P=2 should pass cleanly: %+v", cv)
	}
	if cv.SimPredNS != 5_100_000 {
		t.Errorf("sim pred %v, want 5.1e6", cv.SimPredNS)
	}
}

func TestCrossValidateFlagsViolations(t *testing.T) {
	// A measured time far above the bound's upper edge must fail the run.
	rep := cannedReport()
	rep.Results[1].WallNS = []int64{60_000_000} // hi·(1+tol) = 11.25e6 ≪ 60e6
	rep.crossValidate(cannedSpec())
	if len(rep.BrentViolations) != 1 || rep.Err() == nil {
		t.Errorf("violation not flagged: %v", rep.BrentViolations)
	}
	if !strings.Contains(rep.BrentViolations[0], "outside Brent bound") {
		t.Errorf("violation message: %q", rep.BrentViolations[0])
	}
	// The same overshoot also diverges from the simulator (warn-only).
	if len(rep.SimFlags) == 0 {
		t.Error("expected a simulator-divergence warning")
	}

	// A group with no P=1 cell has no calibration: that is a failure, not
	// a silent pass — a bound nobody checked is not a bound.
	rep = cannedReport()
	rep.Results = rep.Results[1:3] // drop msort P=1, keep P=2 and P=4; drop dedup
	rep.crossValidate(cannedSpec())
	if len(rep.BrentViolations) != 2 || !strings.Contains(rep.BrentViolations[0], "uncalibrated") {
		t.Errorf("uncalibrated cells not flagged: %v", rep.BrentViolations)
	}
}

func TestValidatorsRejectBadTables(t *testing.T) {
	rep := cannedReport()
	rep.crossValidate(cannedSpec())

	sum := SummaryTable(rep)
	sum.Rows[0][sum.Col("min_ns")] = "99999999999" // min > mean
	if err := ValidateSummaryTable(sum); err == nil {
		t.Error("summary validator accepted min > mean")
	}

	sp := SpeedupTable(rep)
	sp.Rows[0][sp.Col("speedup")] = "1.100" // P=1 row must be exactly 1
	if err := ValidateSpeedupTable(sp); err == nil {
		t.Error("speedup validator accepted P=1 speedup != 1")
	}
	sp = SpeedupTable(rep)
	var rows [][]string
	for _, row := range sp.Rows {
		if row[sp.Col("procs")] != "1" {
			rows = append(rows, row)
		}
	}
	sp.Rows = rows
	if err := ValidateSpeedupTable(sp); err == nil || !strings.Contains(err.Error(), "no P=1") {
		t.Errorf("speedup validator accepted curve without calibration row: %v", err)
	}

	ov := OverheadTable(rep)
	ov.Rows[0][ov.Col("overhead")] = "-1"
	if err := ValidateOverheadTable(ov); err == nil {
		t.Error("overhead validator accepted non-positive overhead")
	}

	cvt := CrossvalTable(rep)
	cvt.Rows[0][cvt.Col("brent_ok")] = "maybe"
	if err := ValidateCrossvalTable(cvt); err == nil {
		t.Error("crossval validator accepted bad brent_ok")
	}
}

// The checked-in paper artifacts must re-validate from disk: the repo's
// golden-validated speedup curves are the acceptance bar of the paper run.
func TestCheckedInPaperOutputs(t *testing.T) {
	dir := "../../scripts/paper/out"
	read := func(name string) *tables.Table {
		t.Helper()
		tab, err := tables.ReadCSVFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tab.Name = name
		return tab
	}
	if err := ValidateSummaryTable(read(SummaryCSV)); err != nil {
		t.Error(err)
	}
	if err := ValidateOverheadTable(read(OverheadCSV)); err != nil {
		t.Error(err)
	}
	sp := read(SpeedupCSV)
	if err := ValidateSpeedupTable(sp); err != nil {
		t.Fatal(err)
	}
	// At least one multi-point curve each for a disentangled and an
	// entangled benchmark.
	points := map[string]int{}
	entangled := map[string]bool{}
	for i, row := range sp.Rows {
		curve := row[sp.Col("curve")]
		points[curve]++
		entangled[curve] = row[sp.Col("entangled")] == "true"
		if _, err := sp.Float(i, "speedup"); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	kinds := map[bool]bool{}
	for curve, n := range points {
		if n > 1 {
			kinds[entangled[curve]] = true
		}
	}
	if !kinds[false] || !kinds[true] {
		t.Errorf("checked-in curves must include multi-P sweeps for both kinds, got %v", kinds)
	}
	// Every checked-in cross-validation row passed Brent's bound.
	cvt := read(CrossvalCSV)
	if err := ValidateCrossvalTable(cvt); err != nil {
		t.Fatal(err)
	}
	for i, row := range cvt.Rows {
		if row[cvt.Col("brent_ok")] != "true" {
			t.Errorf("checked-in crossval row %d (%s): brent_ok=false", i, row[0])
		}
	}
}
