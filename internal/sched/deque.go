package sched

import "sync/atomic"

// deque is a per-worker Chase–Lev work-stealing deque. The owner pushes
// and pops at the bottom with plain index arithmetic; thieves race on the
// top index with a CAS. The only CAS the owner ever executes is the
// last-element race against a thief, so the fork–join hot path (push one
// item, pop it back un-stolen) is a handful of uncontended atomic
// operations and no locks.
//
// Layout follows Chase & Lev, "Dynamic Circular Work-Stealing Deque"
// (SPAA 2005), adapted to Go's sequentially-consistent sync/atomic:
//
//   - top is the index of the oldest item (next to be stolen); it only
//     ever increases, which makes stale buffer snapshots safe: a thief
//     that read an old buffer can only win the CAS for an index whose
//     slot holds the same item in old and new buffers.
//   - bottom is the index one past the newest item; only the owner
//     writes it.
//   - the buffer is a power-of-two circular array, replaced (never
//     mutated in place) when full, so readers of a stale snapshot see
//     frozen, consistent contents.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[dequeBuf]
}

// dequeInitialSize is the starting buffer capacity. Fork–join programs
// rarely exceed stack depth 64 per worker, so growth is exceptional.
const dequeInitialSize = 64

type dequeBuf struct {
	mask  int64 // len(items)-1; len is a power of two
	items []atomic.Pointer[item]
}

func newDequeBuf(n int64) *dequeBuf {
	return &dequeBuf{mask: n - 1, items: make([]atomic.Pointer[item], n)}
}

func (b *dequeBuf) get(i int64) *item    { return b.items[i&b.mask].Load() }
func (b *dequeBuf) put(i int64, t *item) { b.items[i&b.mask].Store(t) }

// pushBottom appends t at the bottom. Owner-only.
func (d *deque) pushBottom(t *item) {
	b := d.bottom.Load()
	top := d.top.Load()
	buf := d.buf.Load()
	if buf == nil {
		buf = newDequeBuf(dequeInitialSize)
		d.buf.Store(buf)
	} else if b-top > buf.mask {
		buf = d.grow(buf, top, b)
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// grow doubles the buffer, copying the live window [top, bottom). The old
// buffer is left untouched for concurrent thieves holding a snapshot.
func (d *deque) grow(old *dequeBuf, top, bottom int64) *dequeBuf {
	buf := newDequeBuf((old.mask + 1) * 2)
	for i := top; i < bottom; i++ {
		buf.put(i, old.get(i))
	}
	d.buf.Store(buf)
	return buf
}

// popBottom removes and returns the newest item, or nil. Owner-only; the
// only contended case is the race with a thief for the final item, which
// is settled by a CAS on top.
func (d *deque) popBottom() *item {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	if buf == nil {
		return nil
	}
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom to the canonical empty shape.
		d.bottom.Store(t)
		return nil
	}
	it := buf.get(b)
	if t == b {
		// Single item left: race thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			it = nil // a thief got there first
		}
		d.bottom.Store(t + 1)
		return it
	}
	return it
}

// stealTop removes and returns the oldest item, or nil if the deque is
// empty or the CAS was lost to a concurrent steal/pop. Safe from any
// goroutine.
func (d *deque) stealTop() *item {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	buf := d.buf.Load()
	if buf == nil {
		return nil
	}
	it := buf.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return it
}
