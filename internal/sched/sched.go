// Package sched implements the nested fork–join work-stealing scheduler
// the runtime executes on: per-worker deques, random victim selection, and
// helping joins (a worker whose join partner was stolen steals other work
// while it waits).
//
// The scheduler reports to its caller whether the right branch of a fork
// was stolen: in MPL's design, heaps are materialized at steals, so this is
// the hook the runtime uses to decide where child heaps are created.
package sched

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// item is a stealable unit of work: the right branch of a fork.
type item struct {
	run  func(w *Worker, stolen bool)
	done atomic.Bool
}

// deque is a per-worker double-ended queue. The owner pushes and pops at
// the bottom; thieves steal from the top. A mutex keeps it simple and
// correct; contention is negligible at benchmark grain sizes.
type deque struct {
	mu    sync.Mutex
	items []*item
}

func (d *deque) pushBottom(t *item) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// popBottom removes and returns the newest item, or nil.
func (d *deque) popBottom() *item {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	t := d.items[n-1]
	d.items = d.items[:n-1]
	return t
}

// stealTop removes and returns the oldest item, or nil.
func (d *deque) stealTop() *item {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	t := d.items[0]
	d.items = d.items[1:]
	return t
}

// Worker is one of the pool's P workers. Fork–join operations must be
// invoked from the worker's own goroutine (i.e. from inside work it runs).
type Worker struct {
	ID   int
	pool *Pool
	dq   deque
	rng  *rand.Rand

	// Steals counts items this worker stole from others.
	Steals int64
}

// Pool is a work-stealing thread pool of P workers.
type Pool struct {
	workers []*Worker
	done    atomic.Bool
	wg      sync.WaitGroup
}

// NewPool creates a pool with p workers. The seed makes victim selection
// deterministic across runs with the same interleaving.
func NewPool(p int, seed int64) *Pool {
	if p < 1 {
		p = 1
	}
	pool := &Pool{}
	for i := 0; i < p; i++ {
		pool.workers = append(pool.workers, &Worker{
			ID:   i,
			pool: pool,
			rng:  rand.New(rand.NewSource(seed + int64(i)*7919)),
		})
	}
	return pool
}

// P returns the number of workers.
func (p *Pool) P() int { return len(p.workers) }

// Workers exposes the workers for statistics collection.
func (p *Pool) Workers() []*Worker { return p.workers }

// TotalSteals sums steal counts across workers.
func (p *Pool) TotalSteals() int64 {
	var n int64
	for _, w := range p.workers {
		n += atomic.LoadInt64(&w.Steals)
	}
	return n
}

// Run executes root on worker 0, with workers 1..P-1 stealing, and returns
// when root has returned (fork–join structure guarantees no work outlives
// it). A pool can run multiple times, but not concurrently.
func (p *Pool) Run(root func(*Worker)) {
	p.done.Store(false)
	for _, w := range p.workers[1:] {
		p.wg.Add(1)
		go func(w *Worker) {
			defer p.wg.Done()
			w.stealLoop()
		}(w)
	}
	root(p.workers[0])
	p.done.Store(true)
	p.wg.Wait()
}

// stealLoop runs stolen work until the pool shuts down.
func (w *Worker) stealLoop() {
	for !w.pool.done.Load() {
		if t := w.trySteal(); t != nil {
			t.run(w, true)
			t.done.Store(true)
		} else {
			runtime.Gosched()
		}
	}
}

// trySteal attempts to steal one item from a random victim, scanning all
// workers once starting from a random position.
func (w *Worker) trySteal() *item {
	ws := w.pool.workers
	start := w.rng.Intn(len(ws))
	for i := 0; i < len(ws); i++ {
		v := ws[(start+i)%len(ws)]
		if v == w {
			continue
		}
		if t := v.dq.stealTop(); t != nil {
			atomic.AddInt64(&w.Steals, 1)
			return t
		}
	}
	return nil
}

// ForkJoin evaluates f and g, potentially in parallel, returning when both
// have finished. g receives the worker executing it and whether it was
// stolen by a different worker than the one that forked it.
func (w *Worker) ForkJoin(f func(*Worker), g func(w *Worker, stolen bool)) {
	t := &item{run: g}
	w.dq.pushBottom(t)
	f(w)
	if got := w.dq.popBottom(); got != nil {
		if got != t {
			// Fork–join nesting guarantees the bottom of the deque is the
			// item we pushed: inner forks pop their own items before we
			// return here.
			panic("sched: deque discipline violated")
		}
		g(w, false)
		return
	}
	// Our item was stolen; help by stealing other work until it completes.
	for !t.done.Load() {
		if s := w.trySteal(); s != nil {
			s.run(w, true)
			s.done.Store(true)
		} else {
			runtime.Gosched()
		}
	}
}
