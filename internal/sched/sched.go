// Package sched implements the nested fork–join work-stealing scheduler
// the runtime executes on: per-worker lock-free Chase–Lev deques (deque.go),
// random victim selection, and helping joins (a worker whose join partner
// was stolen steals other work while it waits).
//
// The scheduler reports to its caller whether the right branch of a fork
// was stolen: in MPL's design, heaps are materialized at steals, so this is
// the hook the runtime uses to decide where child heaps are created.
package sched

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"mplgo/internal/attr"
	"mplgo/internal/chaos"
	"mplgo/internal/trace"
)

// item is a stealable unit of work: the right branch of a fork.
type item struct {
	run  func(w *Worker, stolen bool)
	done atomic.Bool
}

// xorshift64 is a tiny per-worker PRNG for victim selection: no locks, no
// interface indirection, no allocation — one word of state advanced by
// three shifts per draw (Marsaglia, "Xorshift RNGs").
type xorshift64 uint64

func (s *xorshift64) next() uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return uint64(x)
}

// Worker is one of the pool's P workers. Fork–join operations must be
// invoked from the worker's own goroutine (i.e. from inside work it runs).
type Worker struct {
	ID   int
	pool *Pool
	dq   deque
	rng  xorshift64

	// Steals counts items this worker stole from others.
	Steals int64

	// Ring is the worker's event ring (nil in untraced runtimes). Only
	// this worker's goroutine writes to it.
	Ring *trace.Ring

	// Attr is the worker's cost-attribution sink (nil when attribution
	// is off); same single-writer ownership as Ring.
	Attr *attr.Sink
}

// Pool is a work-stealing thread pool of P workers.
type Pool struct {
	workers []*Worker
	done    atomic.Bool
	wg      sync.WaitGroup

	// OnPanic, when set, receives panics recovered from work items instead
	// of letting them kill the worker goroutine. The pool guarantees that
	// a panicking item is still marked done, so the forker waiting at its
	// join always unblocks — a panic can no longer hang Run. The handler
	// runs on the panicking worker's goroutine and must not panic itself.
	// When nil, panics propagate as before (and Run still drains the pool
	// on its way out).
	OnPanic func(recovered any)

	// Chaos, when set, widens the steal window at forks
	// (chaos.StealDecision): the forking worker yields after publishing
	// the right branch, forcing steals — and hence heap materialization
	// and entangled joins — that an unloaded run would rarely perform.
	Chaos *chaos.Injector

	// Aux, when set, runs as a dedicated auxiliary goroutine alongside the
	// stealing workers for the duration of each Run — the concurrent
	// collector's worker. It is not a Worker: it never steals mutator
	// items, so collection latency cannot be hidden behind a borrowed
	// mutator slot. It must poll stop and return promptly once it reports
	// true; Run's shutdown waits for it like any worker.
	Aux func(stop func() bool)
}

// NewPool creates a pool with p workers. The seed makes victim selection
// deterministic across runs with the same interleaving.
func NewPool(p int, seed int64) *Pool {
	if p < 1 {
		p = 1
	}
	pool := &Pool{}
	for i := 0; i < p; i++ {
		rng := xorshift64(uint64(seed)*0x9E3779B97F4A7C15 + uint64(i+1)*7919)
		if rng == 0 {
			rng = 0x9E3779B97F4A7C15 // xorshift state must be nonzero
		}
		pool.workers = append(pool.workers, &Worker{
			ID:   i,
			pool: pool,
			rng:  rng,
		})
	}
	return pool
}

// P returns the number of workers.
func (p *Pool) P() int { return len(p.workers) }

// Workers exposes the workers for statistics collection.
func (p *Pool) Workers() []*Worker { return p.workers }

// TotalSteals sums steal counts across workers.
func (p *Pool) TotalSteals() int64 {
	var n int64
	for _, w := range p.workers {
		n += atomic.LoadInt64(&w.Steals)
	}
	return n
}

// Run executes root on worker 0, with workers 1..P-1 stealing, and returns
// when root has returned (fork–join structure guarantees no work outlives
// it). A pool can run multiple times, but not concurrently.
//
// The shutdown runs in a defer so that even a panic escaping root (no
// OnPanic handler installed) drains the stealing workers before
// propagating: the pool never leaks goroutines, whatever the outcome.
// Goroutines are labelled for runtime/pprof (mplgo_worker / mplgo_aux),
// so CPU profiles attribute samples to scheduler strands; labels are
// inherited by any goroutine a strand spawns.
func (p *Pool) Run(root func(*Worker)) {
	p.done.Store(false)
	for _, w := range p.workers[1:] {
		p.wg.Add(1)
		go func(w *Worker) {
			defer p.wg.Done()
			pprof.Do(context.Background(),
				pprof.Labels("mplgo_worker", strconv.Itoa(w.ID)),
				func(context.Context) { w.stealLoop() })
		}(w)
	}
	if p.Aux != nil {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			pprof.Do(context.Background(), pprof.Labels("mplgo_aux", "collector"),
				func(context.Context) { p.Aux(func() bool { return p.done.Load() }) })
		}()
	}
	defer func() {
		p.done.Store(true)
		p.wg.Wait()
	}()
	pprof.Do(context.Background(), pprof.Labels("mplgo_worker", "0"),
		func(context.Context) { root(p.workers[0]) })
}

// runItem executes one work item, guaranteeing the done flag is set even
// if the item panics — the forker spinning at the join in ForkJoin depends
// on it. A recovered panic goes to OnPanic when installed and otherwise
// resumes propagation (after done is set, so the join still unblocks).
func (p *Pool) runItem(w *Worker, t *item, stolen bool) {
	defer func() {
		v := recover()
		t.done.Store(true)
		if v == nil {
			return
		}
		if p.OnPanic != nil {
			p.OnPanic(v)
			return
		}
		panic(v)
	}()
	t.run(w, stolen)
}

// stealLoop runs stolen work until the pool shuts down.
func (w *Worker) stealLoop() {
	for !w.pool.done.Load() {
		if t := w.trySteal(); t != nil {
			w.pool.runItem(w, t, true)
		} else {
			runtime.Gosched()
		}
	}
}

// trySteal attempts to steal one item, scanning every other worker once
// starting from a random victim. The scan itself lives in stealScan;
// this wrapper attributes each full scan to attr.StealLoop (one
// decrement and branch per scan when not sampling).
func (w *Worker) trySteal() *item {
	at := w.Attr.Begin()
	t := w.stealScan()
	w.Attr.End(attr.StealLoop, at)
	return t
}

// stealScan scans every other worker once starting from a random
// victim. The self-skipping index mapping draws from [0, P-1) and bumps
// indices at or past the worker's own, so no retry loop is needed to
// avoid selecting ourselves.
func (w *Worker) stealScan() *item {
	ws := w.pool.workers
	n := len(ws)
	if n < 2 {
		return nil
	}
	start := int(w.rng.next() % uint64(n-1))
	for i := 0; i < n-1; i++ {
		idx := start + i
		if idx >= n-1 {
			idx -= n - 1
		}
		if idx >= w.ID {
			idx++
		}
		if t := ws[idx].dq.stealTop(); t != nil {
			atomic.AddInt64(&w.Steals, 1)
			w.Ring.Emit(trace.EvSteal, 0, uint64(idx), 0)
			return t
		}
	}
	return nil
}

// ForkJoin evaluates f and g, potentially in parallel, returning when both
// have finished. g receives the worker executing it and whether it was
// stolen by a different worker than the one that forked it.
//
// A panic in f still joins g before propagating: the deferred join either
// pops the unstolen item back off the deque (discarding it — its branch
// never started) or waits for the thief to finish it, so no work item ever
// outlives its fork's stack frame and the deque discipline survives the
// unwind.
func (w *Worker) ForkJoin(f func(*Worker), g func(w *Worker, stolen bool)) {
	t := &item{run: g}
	w.dq.pushBottom(t)
	if c := w.pool.Chaos; c != nil && c.Should(chaos.StealDecision) {
		// Widen the steal window: give thieves a chance to take g before
		// this worker returns for it.
		for i := c.Spin(chaos.StealDecision); i > 0; i-- {
			runtime.Gosched()
		}
	}
	fDone := false
	defer func() {
		got := w.dq.popBottom()
		if got != nil {
			if got != t {
				// Fork–join nesting guarantees the bottom of the deque is
				// the item we pushed: inner forks pop their own items
				// before we return here.
				panic("sched: deque discipline violated")
			}
			if fDone {
				g(w, false)
			}
			// f panicked with g unstolen: discard g's item (the branch
			// never ran; the caller's recovery decides what that means)
			// and let the panic continue.
			return
		}
		// Our item was stolen; help by stealing other work until it
		// completes. runItem marks stolen items done even when they
		// panic, so this join cannot hang.
		for !t.done.Load() {
			if s := w.trySteal(); s != nil {
				w.pool.runItem(w, s, true)
			} else {
				runtime.Gosched()
			}
		}
	}()
	f(w)
	fDone = true
}
