package sched

import (
	"sync"
	"testing"
)

// The deque microbenchmarks price the scheduler hot path in isolation:
// the owner-side push/pop pair every fork executes, deep LIFO bursts, the
// steal path, and the end-to-end fork–join overhead through a pool.
// Regressions here show up multiplied by fork count in the T1 table.

func BenchmarkDequePushPop(b *testing.B) {
	var d deque
	t := &item{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.pushBottom(t)
		if d.popBottom() != t {
			b.Fatal("lost item")
		}
	}
}

func BenchmarkDequePushPopDeep(b *testing.B) {
	const depth = 64
	var d deque
	its := make([]item, depth)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < depth; j++ {
			d.pushBottom(&its[j])
		}
		for j := 0; j < depth; j++ {
			if d.popBottom() == nil {
				b.Fatal("lost item")
			}
		}
	}
}

func BenchmarkDequeStealUncontended(b *testing.B) {
	var d deque
	t := &item{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.pushBottom(t)
		if d.stealTop() != t {
			b.Fatal("lost item")
		}
	}
}

// BenchmarkDequeStealContended measures steal throughput with several
// thieves hammering one owner's deque.
func BenchmarkDequeStealContended(b *testing.B) {
	for _, thieves := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "thieves=1", 2: "thieves=2", 4: "thieves=4"}[thieves], func(b *testing.B) {
			var d deque
			its := make([]item, b.N)
			for i := range its {
				d.pushBottom(&its[i])
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			for th := 0; th < thieves; th++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if d.stealTop() == nil && d.top.Load() >= d.bottom.Load() {
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkForkJoin measures the full scheduler round trip per fork: push,
// inline run, pop — the cost every Par pays even when nothing is stolen.
func BenchmarkForkJoin(b *testing.B) {
	pool := NewPool(1, 1)
	b.ReportAllocs()
	pool.Run(func(w *Worker) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.ForkJoin(func(*Worker) {}, func(*Worker, bool) {})
		}
	})
}

// BenchmarkForkJoinTree runs a complete fork tree on P workers, pricing
// scheduling with real stealing in the mix.
func BenchmarkForkJoinTree(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(map[int]string{1: "P=1", 4: "P=4"}[p], func(b *testing.B) {
			pool := NewPool(p, 42)
			for i := 0; i < b.N; i++ {
				var got int64
				pool.Run(func(w *Worker) { got = psum(w, 0, 1<<14, 32) })
				if want := int64(1<<14) * (1<<14 - 1) / 2; got != want {
					b.Fatalf("sum = %d, want %d", got, want)
				}
			}
		})
	}
}
