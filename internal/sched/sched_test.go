package sched

import (
	"sync/atomic"
	"testing"
)

// psum computes the sum of [lo, hi) by binary fork–join recursion.
func psum(w *Worker, lo, hi int64, grain int64) int64 {
	if hi-lo <= grain {
		var s int64
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	}
	mid := (lo + hi) / 2
	var l, r int64
	w.ForkJoin(
		func(w *Worker) { l = psum(w, lo, mid, grain) },
		func(w *Worker, _ bool) { r = psum(w, mid, hi, grain) },
	)
	return l + r
}

func TestForkJoinSum(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		pool := NewPool(p, 1)
		var got int64
		pool.Run(func(w *Worker) { got = psum(w, 0, 100000, 128) })
		want := int64(100000) * 99999 / 2
		if got != want {
			t.Fatalf("P=%d: sum = %d, want %d", p, got, want)
		}
	}
}

func TestSequentialDeterminism(t *testing.T) {
	// With P=1 nothing is ever stolen: g always runs inline on the forker.
	pool := NewPool(1, 1)
	var stolen int32
	var order []int
	pool.Run(func(w *Worker) {
		w.ForkJoin(
			func(w *Worker) { order = append(order, 1) },
			func(w *Worker, s bool) {
				if s {
					atomic.AddInt32(&stolen, 1)
				}
				order = append(order, 2)
			},
		)
		order = append(order, 3)
	})
	if stolen != 0 {
		t.Fatal("P=1 run reported a steal")
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("P=1 execution order = %v", order)
	}
	if pool.TotalSteals() != 0 {
		t.Fatal("TotalSteals nonzero for P=1")
	}
}

func TestStealsHappen(t *testing.T) {
	// With several workers and wide fan-out, at least some forks must be
	// stolen. Busy leaves give thieves time to act.
	pool := NewPool(4, 42)
	var sink atomic.Int64
	pool.Run(func(w *Worker) {
		var rec func(w *Worker, depth int)
		rec = func(w *Worker, depth int) {
			if depth == 0 {
				var s int64
				for i := 0; i < 20000; i++ {
					s += int64(i)
				}
				sink.Add(s)
				return
			}
			w.ForkJoin(
				func(w *Worker) { rec(w, depth-1) },
				func(w *Worker, _ bool) { rec(w, depth-1) },
			)
		}
		rec(w, 8)
	})
	if pool.TotalSteals() == 0 {
		t.Skip("no steals observed (single-core scheduling); inherently timing-dependent")
	}
}

func TestNestedForkJoinDepth(t *testing.T) {
	pool := NewPool(2, 3)
	var leaves atomic.Int64
	pool.Run(func(w *Worker) {
		var rec func(w *Worker, depth int)
		rec = func(w *Worker, depth int) {
			if depth == 0 {
				leaves.Add(1)
				return
			}
			w.ForkJoin(
				func(w *Worker) { rec(w, depth-1) },
				func(w *Worker, _ bool) { rec(w, depth-1) },
			)
		}
		rec(w, 12)
	})
	if got := leaves.Load(); got != 1<<12 {
		t.Fatalf("leaves = %d, want %d", got, 1<<12)
	}
}

func TestPoolReuse(t *testing.T) {
	pool := NewPool(3, 9)
	for round := 0; round < 5; round++ {
		var got int64
		pool.Run(func(w *Worker) { got = psum(w, 0, 10000, 64) })
		if want := int64(10000) * 9999 / 2; got != want {
			t.Fatalf("round %d: sum = %d", round, got)
		}
	}
}

func TestWorkerIdentity(t *testing.T) {
	pool := NewPool(4, 5)
	if pool.P() != 4 || len(pool.Workers()) != 4 {
		t.Fatal("pool geometry wrong")
	}
	for i, w := range pool.Workers() {
		if w.ID != i {
			t.Fatalf("worker %d has ID %d", i, w.ID)
		}
	}
	if NewPool(0, 1).P() != 1 {
		t.Fatal("NewPool must clamp P to at least 1")
	}
}

func TestDequeOrder(t *testing.T) {
	var d deque
	a, b, c := &item{}, &item{}, &item{}
	d.pushBottom(a)
	d.pushBottom(b)
	d.pushBottom(c)
	if d.stealTop() != a {
		t.Fatal("stealTop must take the oldest item")
	}
	if d.popBottom() != c {
		t.Fatal("popBottom must take the newest item")
	}
	if d.popBottom() != b || d.popBottom() != nil {
		t.Fatal("deque drain broken")
	}
	if d.stealTop() != nil {
		t.Fatal("empty deque stealTop must return nil")
	}
}
