package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// runDequeStress drives one owner goroutine (random bursts of pushes
// interleaved with pops, then a full drain) against `thieves` concurrent
// stealers, and checks the fundamental deque invariant: every pushed item
// is taken exactly once, by exactly one side. Run under -race this also
// exercises the memory-ordering assumptions of the Chase–Lev algorithm.
func runDequeStress(t *testing.T, thieves, total int, seed uint64) {
	t.Helper()
	var d deque
	its := make([]item, total)
	index := make(map[*item]int, total)
	for i := range its {
		index[&its[i]] = i
	}
	taken := make([]atomic.Int32, total)
	var stolen, popped atomic.Int64

	var done atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if it := d.stealTop(); it != nil {
					taken[index[it]].Add(1)
					stolen.Add(1)
				}
			}
		}()
	}

	rng := xorshift64(seed | 1)
	next := 0
	for next < total {
		burst := int(rng.next()%8) + 1
		for i := 0; i < burst && next < total; i++ {
			d.pushBottom(&its[next])
			next++
		}
		pops := int(rng.next() % 4)
		for i := 0; i < pops; i++ {
			if it := d.popBottom(); it != nil {
				taken[index[it]].Add(1)
				popped.Add(1)
			}
		}
	}
	// Owner drains what the thieves haven't taken. A nil pop means the
	// deque is empty or the last item was lost to a thief's CAS — either
	// way every item has an owner once the thieves stop.
	for {
		it := d.popBottom()
		if it == nil {
			if d.top.Load() >= d.bottom.Load() {
				break
			}
			continue
		}
		taken[index[it]].Add(1)
		popped.Add(1)
	}
	done.Store(true)
	wg.Wait()

	if got := popped.Load() + stolen.Load(); got != int64(total) {
		t.Fatalf("thieves=%d: %d items taken (popped %d + stolen %d), pushed %d",
			thieves, got, popped.Load(), stolen.Load(), total)
	}
	for i := range taken {
		if n := taken[i].Load(); n != 1 {
			t.Fatalf("thieves=%d: item %d taken %d times", thieves, i, n)
		}
	}
	if thieves > 0 && stolen.Load() == 0 {
		t.Logf("thieves=%d: no successful steals (timing-dependent)", thieves)
	}
}

func TestDequeStressOwnerVsThieves(t *testing.T) {
	total := 200_000
	if testing.Short() {
		total = 20_000
	}
	for _, thieves := range []int{1, 2, 4, 8} {
		thieves := thieves
		t.Run(map[int]string{1: "thieves=1", 2: "thieves=2", 4: "thieves=4", 8: "thieves=8"}[thieves],
			func(t *testing.T) {
				t.Parallel()
				runDequeStress(t, thieves, total, uint64(thieves)*0x9E3779B97F4A7C15+12345)
			})
	}
}

// TestDequeGrowthUnderSteals forces buffer growth (pushes far beyond the
// initial capacity without popping) while thieves hold stale snapshots.
func TestDequeGrowthUnderSteals(t *testing.T) {
	const total = dequeInitialSize * 64
	runDequeStress(t, 4, total, 777)
}

// TestDequeLastItemRace hammers the single-item case where the owner's
// popBottom and a thief's stealTop race by CAS for the same element.
func TestDequeLastItemRace(t *testing.T) {
	const rounds = 50_000
	var d deque
	var ownerGot, thiefGot atomic.Int64
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if d.stealTop() != nil {
				thiefGot.Add(1)
			}
		}
	}()
	it := &item{}
	for r := 0; r < rounds; r++ {
		d.pushBottom(it)
		if d.popBottom() != nil {
			ownerGot.Add(1)
		} else {
			// Lost to the thief: wait until it has really been consumed
			// before reusing the item, mirroring ForkJoin's done handshake.
			for d.top.Load() < d.bottom.Load() {
			}
		}
	}
	done.Store(true)
	wg.Wait()
	if got := ownerGot.Load() + thiefGot.Load(); got != rounds {
		t.Fatalf("%d wins (owner %d + thief %d), want %d rounds",
			got, ownerGot.Load(), thiefGot.Load(), rounds)
	}
}
