// Package forkpath implements DePa-style fork-path words: the immutable
// per-heap ancestry representation that replaces the shared
// order-maintenance list (package order) as the runtime's SP-order oracle.
//
// Following *DePa: Simple, Provably Efficient, and Practical Order
// Maintenance for Task Parallelism* (Westrick, Wang, Acar), each heap
// carries the path of fork choices that created it, packed into machine
// words and assigned exactly once at Fork. Ancestry then needs no shared
// mutable state at all:
//
//   - IsAncestor(a, d) is "a's path is a bit-prefix of d's path" — a
//     handful of word compares over immutable data;
//   - the depth of LCA(a, b) is a longest-common-prefix computation —
//     XOR + trailing-zero-count to find the divergence bit, then a
//     popcount of the edge-boundary plane below it.
//
// Because the words are immutable after construction, queries are pure
// loads: no seqlock, no retry loop, no relabeling, no label-space
// exhaustion, and unbounded task counts. This deletes the entire
// `Tree.ver` odd/even dance from the entanglement barriers' hot path.
//
// # Encoding
//
// A path is a pair of bit strings of equal length (LSB-first within each
// 64-bit word):
//
//   - the *bits plane* concatenates, for each edge root→heap, the minimal
//     binary encoding (MSB first) of that edge's per-parent fork sequence
//     number (1, 2, 3, ... — parents number their children in fork order
//     and never reuse a number);
//   - the *ends plane* has a 1 at the last bit position of each edge code,
//     marking where codes end.
//
// Comparing both planes together makes prefix-freeness unnecessary: if
// path P is a bit-prefix of path Q in *both* planes, the end markers
// align, so P's edge-code sequence is a prefix of Q's — and since
// sequence numbers are never reused, equal code sequences identify the
// same historical tree node. Ancestry answered from fork paths is
// therefore exact with respect to the true (append-only) fork tree, even
// for heaps that have since merged away — strictly more deterministic
// than the retired label list, whose deleted tags answered with a frozen
// snapshot that could alias later insertions.
//
// The per-parent sequence number (rather than DePa's single left/right
// bit) is what makes the encoding safe under lazy heap materialization,
// where one parent heap can hold several live children at once — one per
// suspended fork frame whose branch was stolen — and can fork again after
// a join without a path collision.
//
// # Representation
//
// Paths up to 128 bits per plane (the overwhelmingly common case: depth
// ~d costs ~2·log2(fanout)·d bits) live inline in the Path value; longer
// paths spill both planes into one heap-allocated word vector. A spilled
// Path is immutable like any other — the spill happens once, at
// construction. ChildSpilled forces the spilled representation below the
// threshold so tests and the chaos layer (chaos.PathSpill) can exercise
// the promotion path on shallow trees.
package forkpath

import (
	"fmt"
	"math/bits"
	"strings"
)

// inlineWords is the number of 64-bit words per plane held inline in a
// Path value; paths longer than inlineWords*64 bits spill to ext.
const inlineWords = 2

// inlineBits is the inline capacity of one plane, in bits.
const inlineBits = inlineWords * 64

// ext holds the spilled planes of a long path: both planes in one
// allocation, bits first, ends second, each words long.
type ext struct {
	words int
	w     []uint64 // len 2*words: bits plane then ends plane
}

// Path is an immutable fork path. The zero value is the root path (depth
// 0, no bits). Path is a small value type: copying it copies the inline
// words and shares the (immutable) spill vector.
type Path struct {
	bitLen uint32
	depth  uint32
	bits   [inlineWords]uint64
	ends   [inlineWords]uint64
	x      *ext
}

// Root returns the root path (also the zero value).
func Root() Path { return Path{} }

// Depth returns the number of edges on the path (root = 0).
func (p *Path) Depth() int { return int(p.depth) }

// BitLen returns the path's length in bits per plane.
func (p *Path) BitLen() int { return int(p.bitLen) }

// Spilled reports whether the path uses the spilled (heap-allocated word
// vector) representation.
func (p *Path) Spilled() bool { return p.x != nil }

// planes returns the two planes as word slices, valid while p is alive.
func (p *Path) planes() (b, e []uint64) {
	if x := p.x; x != nil {
		return x.w[:x.words], x.w[x.words:]
	}
	return p.bits[:], p.ends[:]
}

// Child returns the path of the seq-th child (seq ≥ 1; parents must
// never reuse a sequence number between live children).
func (p Path) Child(seq uint64) Path { return p.child(seq, false) }

// ChildSpilled is Child but forces the spilled representation even when
// the result would fit inline, for tests and fault injection of the
// inline→vector promotion path.
func (p Path) ChildSpilled(seq uint64) Path { return p.child(seq, true) }

func (p Path) child(seq uint64, forceSpill bool) Path {
	if seq == 0 {
		panic("forkpath: child sequence numbers start at 1")
	}
	codeLen := uint32(bits.Len64(seq))
	n := Path{bitLen: p.bitLen + codeLen, depth: p.depth + 1}
	var nb, ne []uint64
	if forceSpill || p.x != nil || n.bitLen > inlineBits {
		words := int(n.bitLen+63) / 64
		x := &ext{words: words, w: make([]uint64, 2*words)}
		pb, pe := p.planes()
		pw := int(p.bitLen+63) / 64
		copy(x.w[:words], pb[:pw])
		copy(x.w[words:], pe[:pw])
		n.x = x
		nb, ne = x.w[:words], x.w[words:]
	} else {
		n.bits, n.ends = p.bits, p.ends
		nb, ne = n.bits[:], n.ends[:]
	}
	// Append the edge code MSB-first; every bit lands above the parent's
	// bitLen, so the parent's invariant (bits above bitLen are zero)
	// guarantees plain ORs suffice.
	pos := p.bitLen
	for k := int(codeLen) - 1; k >= 0; k-- {
		if seq>>uint(k)&1 != 0 {
			nb[pos>>6] |= 1 << (pos & 63)
		}
		pos++
	}
	ne[(n.bitLen-1)>>6] |= 1 << ((n.bitLen - 1) & 63)
	return n
}

// IsPrefix reports whether a is an ancestor of (or equal to) the node
// with path b: a's planes are bit-prefixes of b's. Pure reads of
// immutable words — safe from any goroutine with no synchronization.
func IsPrefix(a, b *Path) bool {
	if a.bitLen > b.bitLen {
		return false
	}
	if a.bitLen == 0 {
		return true
	}
	ab, ae := a.planes()
	bb, be := b.planes()
	full := int(a.bitLen >> 6)
	for i := 0; i < full; i++ {
		if ab[i] != bb[i] || ae[i] != be[i] {
			return false
		}
	}
	if r := a.bitLen & 63; r != 0 {
		m := uint64(1)<<r - 1
		if (ab[full]^bb[full])&m != 0 || (ae[full]^be[full])&m != 0 {
			return false
		}
	}
	return true
}

// LCADepth returns the depth of the least common ancestor of the nodes
// with paths a and b: the number of whole edge codes inside the longest
// common prefix of both planes. Like IsPrefix, pure immutable reads.
func LCADepth(a, b *Path) int {
	minLen := a.bitLen
	if b.bitLen < minLen {
		minLen = b.bitLen
	}
	ab, ae := a.planes()
	bb, be := b.planes()
	// Find the first bit position where either plane diverges.
	l := minLen
	for i, nw := 0, int(minLen+63)>>6; i < nw; i++ {
		if diff := (ab[i] ^ bb[i]) | (ae[i] ^ be[i]); diff != 0 {
			if d := uint32(i<<6) + uint32(bits.TrailingZeros64(diff)); d < l {
				l = d
			}
			break
		}
	}
	// Depth of the LCA = end markers strictly below the divergence: each
	// marks one whole shared edge code.
	depth := 0
	for i := 0; i < int(l>>6); i++ {
		depth += bits.OnesCount64(ae[i])
	}
	if r := l & 63; r != 0 {
		depth += bits.OnesCount64(ae[l>>6] & (uint64(1)<<r - 1))
	}
	return depth
}

// Equal reports whether a and b are the same path.
func Equal(a, b *Path) bool {
	return a.bitLen == b.bitLen && IsPrefix(a, b)
}

// String renders the path as its edge sequence numbers, for debugging
// and test failure messages.
func (p *Path) String() string {
	if p.bitLen == 0 {
		return "/"
	}
	b, e := p.planes()
	var sb strings.Builder
	var seq uint64
	for i := uint32(0); i < p.bitLen; i++ {
		seq = seq<<1 | b[i>>6]>>(i&63)&1
		if e[i>>6]>>(i&63)&1 != 0 {
			fmt.Fprintf(&sb, "/%d", seq)
			seq = 0
		}
	}
	return sb.String()
}
