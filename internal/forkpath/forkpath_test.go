package forkpath

import (
	"math/rand"
	"testing"
)

// node is the naive reference model: an explicit tree with parent
// pointers, the oracle every Path operation is checked against.
type node struct {
	parent *node
	depth  int
	path   Path
	seq    uint64 // next child sequence number
}

func (n *node) fork(spill bool) *node {
	n.seq++
	var p Path
	if spill {
		p = n.path.ChildSpilled(n.seq)
	} else {
		p = n.path.Child(n.seq)
	}
	return &node{parent: n, depth: n.depth + 1, path: p}
}

func isAncestorNaive(a, d *node) bool {
	for x := d; x != nil; x = x.parent {
		if x == a {
			return true
		}
	}
	return false
}

func lcaDepthNaive(a, b *node) int {
	seen := map[*node]bool{}
	for x := a; x != nil; x = x.parent {
		seen[x] = true
	}
	for x := b; x != nil; x = x.parent {
		if seen[x] {
			return x.depth
		}
	}
	return 0
}

func TestRootAndChildBasics(t *testing.T) {
	r := Root()
	if r.Depth() != 0 || r.BitLen() != 0 || r.Spilled() {
		t.Fatalf("root malformed: %+v", r)
	}
	c1 := r.Child(1)
	c2 := r.Child(2)
	if c1.Depth() != 1 || c2.Depth() != 1 {
		t.Fatal("child depth wrong")
	}
	if Equal(&c1, &c2) {
		t.Fatal("sibling paths equal")
	}
	if !IsPrefix(&r, &c1) || !IsPrefix(&c1, &c1) || IsPrefix(&c1, &r) || IsPrefix(&c1, &c2) {
		t.Fatal("prefix relation wrong on root/children")
	}
	if LCADepth(&c1, &c2) != 0 {
		t.Fatalf("LCADepth(siblings) = %d, want 0", LCADepth(&c1, &c2))
	}
	if LCADepth(&c1, &c1) != 1 {
		t.Fatalf("LCADepth(x,x) = %d, want depth 1", LCADepth(&c1, &c1))
	}
	g := c1.Child(1)
	if LCADepth(&g, &c1) != 1 || !IsPrefix(&c1, &g) {
		t.Fatal("grandchild relation wrong")
	}
}

// Sequence numbers whose codes share bit patterns must not alias: 1 then
// 2 ("1","10") vs 3 ("11") etc. The ends plane is what disambiguates.
func TestNoAliasingAcrossCodeBoundaries(t *testing.T) {
	r := Root()
	// Path /3 (code "11") vs path /1/1 (codes "1","1" = bits "11" too):
	// identical bits planes, different ends planes.
	a := r.Child(3)
	via := r.Child(1)
	b := via.Child(1)
	if a.BitLen() != b.BitLen() {
		t.Fatalf("setup: bitlens differ (%d vs %d)", a.BitLen(), b.BitLen())
	}
	if IsPrefix(&a, &b) || IsPrefix(&b, &a) || Equal(&a, &b) {
		t.Fatalf("paths alias: %s vs %s", a.String(), b.String())
	}
	if LCADepth(&a, &b) != 0 {
		t.Fatalf("LCADepth = %d, want 0 (diverge at root)", LCADepth(&a, &b))
	}
	// /2 (code "10") is a bits-plane prefix of /2/... but also of /5
	// (code "101") — the ends plane must reject the latter.
	p2 := r.Child(2)
	p5 := r.Child(5)
	if IsPrefix(&p2, &p5) {
		t.Fatal("code-boundary violation: /2 accepted as prefix of /5")
	}
}

func TestSpillEquivalence(t *testing.T) {
	// A spilled path must compare equal to its inline twin everywhere.
	r := Root()
	inline := r.Child(7).Child(1).Child(42)
	spilled := r.Child(7).ChildSpilled(1).Child(42) // spill mid-path; children inherit it
	if !spilled.Spilled() {
		t.Fatal("ChildSpilled did not spill (or child dropped the spill)")
	}
	if inline.Spilled() {
		t.Fatal("inline path spilled unexpectedly")
	}
	if !Equal(&inline, &spilled) {
		t.Fatalf("spilled != inline: %s vs %s", spilled.String(), inline.String())
	}
	if LCADepth(&inline, &spilled) != 3 {
		t.Fatalf("LCADepth(inline, spilled twin) = %d, want 3", LCADepth(&inline, &spilled))
	}
	deepInline := inline.Child(9)
	deepSpilled := spilled.Child(9)
	if !IsPrefix(&spilled, &deepInline) || !IsPrefix(&inline, &deepSpilled) {
		t.Fatal("mixed-representation prefix test broken")
	}
}

func TestDeepSpineSpillsNaturally(t *testing.T) {
	p := Root()
	spilledAt := -1
	for d := 1; d <= 200; d++ {
		p = p.Child(1)
		if p.Spilled() && spilledAt < 0 {
			spilledAt = d
		}
		if p.Depth() != d {
			t.Fatalf("depth %d != %d", p.Depth(), d)
		}
	}
	// One bit per Child(1) edge: the spill must begin right past the
	// inline capacity.
	if spilledAt != inlineBits+1 {
		t.Fatalf("spilled at depth %d, want %d", spilledAt, inlineBits+1)
	}
	r := Root()
	if !IsPrefix(&r, &p) || LCADepth(&r, &p) != 0 {
		t.Fatal("root relation broken on deep spine")
	}
	if LCADepth(&p, &p) != 200 {
		t.Fatalf("LCADepth(deep,deep) = %d", LCADepth(&p, &p))
	}
}

// TestRandomTreesAgainstNaive grows random trees — mixing wide fanout
// (large sequence numbers), deep spines, and random spill forcing — and
// checks every pairwise IsPrefix/LCADepth answer against the naive
// parent-walk oracle.
func TestRandomTreesAgainstNaive(t *testing.T) {
	for _, shape := range []struct {
		name         string
		pickParent   func(rng *rand.Rand, nodes []*node) *node
		nodesPerTree int
	}{
		{"uniform", func(rng *rand.Rand, ns []*node) *node { return ns[rng.Intn(len(ns))] }, 220},
		{"spine", func(rng *rand.Rand, ns []*node) *node {
			if rng.Intn(4) != 0 {
				return ns[len(ns)-1] // mostly extend the deepest chain
			}
			return ns[rng.Intn(len(ns))]
		}, 200},
		{"wide", func(rng *rand.Rand, ns []*node) *node {
			if rng.Intn(3) != 0 {
				return ns[0] // mostly fan out of the root: big sequence numbers
			}
			return ns[rng.Intn(len(ns))]
		}, 220},
	} {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(shape.name)) * 7919))
			for trial := 0; trial < 8; trial++ {
				root := &node{path: Root()}
				nodes := []*node{root}
				for len(nodes) < shape.nodesPerTree {
					p := shape.pickParent(rng, nodes)
					nodes = append(nodes, p.fork(rng.Intn(8) == 0))
				}
				for i := 0; i < 4000; i++ {
					a := nodes[rng.Intn(len(nodes))]
					b := nodes[rng.Intn(len(nodes))]
					if got, want := IsPrefix(&a.path, &b.path), isAncestorNaive(a, b); got != want {
						t.Fatalf("IsPrefix(%s, %s) = %v, naive says %v",
							a.path.String(), b.path.String(), got, want)
					}
					if got, want := LCADepth(&a.path, &b.path), lcaDepthNaive(a, b); got != want {
						t.Fatalf("LCADepth(%s, %s) = %d, naive says %d",
							a.path.String(), b.path.String(), got, want)
					}
				}
			}
		})
	}
}

func TestStringRoundtrip(t *testing.T) {
	p := Root().Child(1).Child(12).Child(3)
	if got := p.String(); got != "/1/12/3" {
		t.Fatalf("String = %q, want /1/12/3", got)
	}
	r := Root()
	if r.String() != "/" {
		t.Fatalf("root String = %q", r.String())
	}
}
