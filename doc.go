// Package mplgo is a Go reproduction of the system from
//
//	Arora, Westrick, Acar. "Efficient Parallel Functional Programming
//	with Effects." PLDI 2023 (PACMPL 7, PLDI, 1558–1583).
//
// It implements MPL-style hierarchical heap memory management with
// entanglement management: a fork–join runtime whose heaps mirror the task
// tree, read/write barriers that detect entanglement at the granularity of
// memory objects, pinning with unpin depths, per-task local collections,
// and a small Parallel-ML-family language compiled onto the runtime.
//
// Start with package mpl (the public API), DESIGN.md (system inventory and
// experiment index), and EXPERIMENTS.md (paper-vs-measured results).
// The benchmark harness in bench_test.go regenerates every table and
// figure; `go run ./cmd/mplgo-bench -exp all` prints them.
package mplgo
