// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (experiment index in DESIGN.md §5), plus the ablation benchmarks
// for the design decisions DESIGN.md §6 calls out.
//
//	go test -bench=. -benchmem
//
// The per-table drivers that print the paper-shaped rows live in
// internal/tables and are exercised by `go run ./cmd/mplgo-bench`.
package mplgo

import (
	"testing"

	"mplgo/internal/bench"
	"mplgo/internal/globalrt"
	"mplgo/internal/hierarchy"
	"mplgo/internal/mem"
	"mplgo/internal/sim"
	"mplgo/mpl"
)

func newGlobal() *globalrt.Runtime { return globalrt.New(0) }

// benchSizes trims default problem sizes so the full harness completes in
// minutes on one core.
var benchSizes = map[string]int{
	"fib": 22, "mcss": 50_000, "primes": 20_000, "integrate": 100_000,
	"nqueens": 8, "msort": 10_000, "quickhull": 10_000, "tokens": 100_000,
	"wc": 100_000, "spmv": 1_000, "dedup": 10_000, "bfs": 10_000,
	"counter": 10_000, "memoize": 20_000, "pipeline": 10_000,
	"grep": 50_000, "histogram": 30_000, "filter": 50_000,
	"treesum": 12, "matmul": 32,
}

func sizeOf(b bench.Benchmark) int {
	if n, ok := benchSizes[b.Name]; ok {
		return n
	}
	return b.DefaultN
}

func runMPL(b *testing.B, bm bench.Benchmark, n int, cfg mpl.Config) *mpl.Runtime {
	var rt *mpl.Runtime
	for i := 0; i < b.N; i++ {
		rt = mpl.New(cfg)
		if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
			return mpl.Int(bm.MPL(t, n))
		}); err != nil && cfg.Mode != mpl.Detect {
			b.Fatal(err)
		}
	}
	return rt
}

// BenchmarkTableTime regenerates experiment T1: the sequential baseline
// (seq), the hierarchical runtime at one processor (mpl1), and the
// simulated 64-processor point (as the speedup64 metric).
func BenchmarkTableTime(b *testing.B) {
	for _, bm := range bench.All {
		bm := bm
		n := sizeOf(bm)
		b.Run(bm.Name+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := newGlobal()
				bm.Global(g, n)
			}
		})
		b.Run(bm.Name+"/mpl1", func(b *testing.B) {
			rt := runMPL(b, bm, n, mpl.Config{Procs: 1, Record: true})
			curve := mpl.Speedup(rt, []int{64}, 200)
			if len(curve) == 1 {
				b.ReportMetric(curve[0], "speedup64")
			}
		})
	}
}

// BenchmarkTableSpace regenerates experiment T2: max residency in words is
// reported as a metric for the baseline and the hierarchical runtime.
func BenchmarkTableSpace(b *testing.B) {
	for _, bm := range bench.All {
		bm := bm
		n := sizeOf(bm)
		b.Run(bm.Name, func(b *testing.B) {
			var r1, rseq int64
			for i := 0; i < b.N; i++ {
				g := newGlobal()
				bm.Global(g, n)
				rseq = g.MaxLiveWords()
				rt := mpl.New(mpl.Config{Procs: 1})
				if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
					return mpl.Int(bm.MPL(t, n))
				}); err != nil {
					b.Fatal(err)
				}
				r1 = rt.MaxLiveWords()
			}
			b.ReportMetric(float64(rseq), "Rseq-words")
			b.ReportMetric(float64(r1), "R1-words")
		})
	}
}

// BenchmarkFigureSpeedup regenerates figure F1: each sub-benchmark records
// a trace once and reports replayed speedups at 8 and 64 processors.
func BenchmarkFigureSpeedup(b *testing.B) {
	for _, name := range []string{"fib", "msort", "primes", "mcss", "dedup", "bfs"} {
		bm, ok := bench.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %s", name)
		}
		n := sizeOf(bm)
		b.Run(name, func(b *testing.B) {
			rt := runMPL(b, bm, n, mpl.Config{Procs: 1, Record: true})
			curve := mpl.Speedup(rt, []int{8, 64}, 200)
			b.ReportMetric(curve[0], "speedup8")
			b.ReportMetric(curve[1], "speedup64")
		})
	}
}

// BenchmarkTableLang regenerates experiment T3: native Go vs the
// hierarchical runtime on the comparison benchmarks.
func BenchmarkTableLang(b *testing.B) {
	for _, name := range []string{"fib", "primes", "msort", "mcss", "dedup", "bfs"} {
		bm, _ := bench.ByName(name)
		n := sizeOf(bm)
		b.Run(name+"/native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bm.Native(n)
			}
		})
		b.Run(name+"/mpl1", func(b *testing.B) {
			runMPL(b, bm, n, mpl.Config{Procs: 1})
		})
	}
}

// BenchmarkTableEntangle regenerates experiment T4: the entanglement cost
// metrics of the entangled suite under parallel execution, as metrics.
func BenchmarkTableEntangle(b *testing.B) {
	for _, bm := range bench.All {
		if !bm.Entangled {
			continue
		}
		bm := bm
		n := sizeOf(bm)
		b.Run(bm.Name, func(b *testing.B) {
			rt := runMPL(b, bm, n, mpl.Config{Procs: 2})
			s := rt.EntStats()
			b.ReportMetric(float64(s.EntangledReads), "eReads")
			b.ReportMetric(float64(s.Pins), "pins")
			b.ReportMetric(float64(s.PinnedPeak), "pinPeak")
		})
	}
}

// BenchmarkFigureAblate regenerates figure F2: the barrier-mode ablation
// (manage vs detect vs no barriers) on a disentangled and an entangled
// representative.
func BenchmarkFigureAblate(b *testing.B) {
	modes := []struct {
		name string
		mode mpl.Mode
	}{{"manage", mpl.Manage}, {"detect", mpl.Detect}, {"unsafe", mpl.Unsafe}}
	for _, name := range []string{"msort", "tokens", "mcss"} {
		bm, _ := bench.ByName(name)
		n := sizeOf(bm)
		for _, m := range modes {
			b.Run(name+"/"+m.name, func(b *testing.B) {
				runMPL(b, bm, n, mpl.Config{Procs: 1, Mode: m.mode})
			})
		}
	}
	// Entangled representative: only manage is sound and accepted.
	bm, _ := bench.ByName("dedup")
	b.Run("dedup/manage", func(b *testing.B) {
		runMPL(b, bm, sizeOf(bm), mpl.Config{Procs: 1})
	})
}

// BenchmarkFigureSpaceCurve regenerates figure F3's inputs: residency at
// P=1 plus the replayed busy-processor peaks that drive the space model.
func BenchmarkFigureSpaceCurve(b *testing.B) {
	for _, name := range []string{"msort", "mcss", "dedup", "pipeline"} {
		bm, _ := bench.ByName(name)
		n := sizeOf(bm)
		b.Run(name, func(b *testing.B) {
			rt := runMPL(b, bm, n, mpl.Config{Procs: 1, Record: true})
			b.ReportMetric(float64(rt.MaxLiveWords()), "R1-words")
			res := sim.Replay(rt.Trace(), sim.ReplayConfig{P: 64, StealCost: 200})
			b.ReportMetric(float64(res.BusyPeak), "busy64")
		})
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks for DESIGN.md §6's design decisions.

// BenchmarkAblateMergeCost shows join-time heap merging is O(chunks), not
// O(objects): merge cost scales with the chunk count, independent of how
// many objects the chunks hold (heap identity lives on chunks).
func BenchmarkAblateMergeCost(b *testing.B) {
	for _, nchunks := range []int{16, 256} {
		b.Run(map[int]string{16: "16-chunks", 256: "256-chunks"}[nchunks], func(b *testing.B) {
			sp := mem.NewSpace()
			tr := hierarchy.New()
			root := tr.Root()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				child := tr.Fork(root)
				for j := 0; j < nchunks; j++ {
					c := sp.NewChunk(child.ID, 0)
					c.Alloc = mem.ChunkWords // fully occupied
					child.Chunks = append(child.Chunks, c)
				}
				b.StartTimer()
				tr.Merge(child, root, sp)
				b.StopTimer()
				for _, c := range root.Chunks {
					sp.Release(c)
				}
				root.Chunks = root.Chunks[:0]
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblateReadBarrier prices the read barrier: reads of ordinary
// objects (fast path: one header test) vs candidate objects whose slow
// path classifies the edge — the cost disentangled data is shielded from.
func BenchmarkAblateReadBarrier(b *testing.B) {
	run := func(b *testing.B, candidate bool) {
		rt := mpl.New(mpl.Config{Procs: 1})
		if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
			tgt := t.AllocTuple(mpl.Int(5))
			holder := t.AllocArray(1, mpl.Nil)
			t.Write(holder, 0, tgt.Value())
			if candidate {
				rt.Space().SetCandidate(holder)
			}
			b.ResetTimer()
			var sink mpl.Value
			for i := 0; i < b.N; i++ {
				sink = t.Read(holder, 0)
			}
			return sink
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("fast-path", func(b *testing.B) { run(b, false) })
	b.Run("candidate-slow-path", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblateUnpin shows why join-time unpinning matters: merging a
// heap whose pinned list has reached its unpin depth releases the pins
// (and, transitively, their chunks) in one pass.
func BenchmarkAblateUnpin(b *testing.B) {
	const pins = 256
	sp := mem.NewSpace()
	tr := hierarchy.New()
	root := tr.Root()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		child := tr.Fork(root)
		al := mem.NewAllocator(sp, child.ID)
		for j := 0; j < pins; j++ {
			r := al.AllocRef(mem.Int(int64(j)))
			sp.Pin(r, 0)
			child.AddPinned(r)
		}
		child.Chunks = al.Chunks
		b.StartTimer()
		if n, _ := tr.Merge(child, root, sp); n != pins {
			b.Fatalf("unpinned %d, want %d", n, pins)
		}
		b.StopTimer()
		for _, c := range root.Chunks {
			sp.Release(c)
		}
		root.Chunks = root.Chunks[:0]
		root.Pinned = root.Pinned[:0]
		b.StartTimer()
	}
}

// BenchmarkAblateAncestor compares the O(1) ancestor test (the fork-path
// prefix test, on a depth-256 spine with spilled paths) against naive
// parent walking on a deep hierarchy.
func BenchmarkAblateAncestor(b *testing.B) {
	tr := hierarchy.New()
	h := tr.Root()
	for i := 0; i < 256; i++ {
		h = tr.Fork(h)
	}
	leaf := h
	root := tr.Root()
	for _, mode := range []struct {
		name string
		walk bool
	}{{"fork-path", false}, {"parent-walk", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tr.UseWalkAncestor = mode.walk
			for i := 0; i < b.N; i++ {
				if !tr.IsAncestor(root, leaf) {
					b.Fatal("ancestry broken")
				}
			}
		})
	}
	tr.UseWalkAncestor = false
}

// BenchmarkAblateLazyPin prices lazy pinning: the entangled read that pins
// an object (first touch) vs subsequent entangled reads of the already
// pinned object vs an eager-transitive alternative, approximated by the
// number of pins the lazy scheme avoids (reported as a metric).
func BenchmarkAblateLazyPin(b *testing.B) {
	// A chain of k objects published through one down-pointer: lazy
	// pinning pins only the objects the reader actually traverses.
	const k = 64
	for _, hops := range []int{1, k} {
		name := "touch-1"
		if hops == k {
			name = "touch-all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := mpl.New(mpl.Config{Procs: 1})
				if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
					shared := t.AllocArray(1, mpl.Nil)
					t.Par(
						func(l *mpl.Task) mpl.Value {
							f := l.NewFrame(1)
							for j := 0; j < k; j++ {
								f.Set(0, l.AllocTuple(mpl.Int(int64(j)), f.Get(0)).Value())
							}
							l.Write(shared, 0, f.Get(0))
							f.Pop()
							return mpl.Nil
						},
						func(r *mpl.Task) mpl.Value {
							v := r.Read(shared, 0)
							for h := 1; h < hops && v.IsRef(); h++ {
								v = r.Read(v.Ref(), 1)
							}
							return mpl.Nil
						},
					)
					return mpl.Nil
				}); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(rt.EntStats().Pins), "pins")
				}
			}
		})
	}
}

// BenchmarkAblateHeapStrategy compares heap creation at every fork
// (deterministic object-level semantics, the default) against MPL's
// steal-time heaps (Config.LazyHeaps) on a fork-heavy benchmark: the cost
// being amortized is hierarchy maintenance (heap structs, Euler-interval
// inserts, merges) per Par.
func BenchmarkAblateHeapStrategy(b *testing.B) {
	bm, _ := bench.ByName("fib")
	n := sizeOf(bm)
	b.Run("heaps-at-fork", func(b *testing.B) {
		runMPL(b, bm, n, mpl.Config{Procs: 1})
	})
	b.Run("heaps-at-steal", func(b *testing.B) {
		runMPL(b, bm, n, mpl.Config{Procs: 1, LazyHeaps: true})
	})
}
