// Parallel mergesort on the hierarchical runtime — the paper's flagship
// disentangled workload shape: each task allocates its result arrays in
// its own heap, children's heaps merge up at joins, and local collections
// reclaim the intermediate arrays without any cross-task synchronization.
//
// The example sorts one million integers, verifies the order, and prints
// GC statistics plus the simulated speedup curve for the recorded run.
//
//	go run ./examples/msort
package main

import (
	"fmt"
	"log"

	"mplgo/internal/workload"
	"mplgo/mpl"
)

const (
	n     = 1_000_000
	grain = 2048
)

// msort sorts arr[lo:hi) into a fresh array in the current task's heap.
func msort(t *mpl.Task, arr mpl.Ref, lo, hi int) mpl.Ref {
	size := hi - lo
	if size <= grain {
		f := t.NewFrame(1)
		f.Set(0, arr.Value())
		out := t.AllocArray(size, mpl.Int(0))
		arr = f.Ref(0)
		f.Pop()
		for i := 0; i < size; i++ {
			t.Write(out, i, t.Read(arr, lo+i))
		}
		// Insertion sort at the leaves.
		for i := 1; i < size; i++ {
			v := t.Read(out, i)
			j := i - 1
			for j >= 0 && t.Read(out, j).AsInt() > v.AsInt() {
				t.Write(out, j+1, t.Read(out, j))
				j--
			}
			t.Write(out, j+1, v)
		}
		return out
	}
	mid := lo + size/2
	lv, rv := t.Par(
		func(t *mpl.Task) mpl.Value { return msort(t, arr, lo, mid).Value() },
		func(t *mpl.Task) mpl.Value { return msort(t, arr, mid, hi).Value() },
	)
	// Root the children's arrays across the output allocation.
	f := t.NewFrame(2)
	f.Set(0, lv)
	f.Set(1, rv)
	out := t.AllocArray(size, mpl.Int(0))
	l, r := f.Ref(0), f.Ref(1)
	i, j, k := 0, 0, 0
	ln, rn := t.Length(l), t.Length(r)
	for i < ln && j < rn {
		a, b := t.Read(l, i), t.Read(r, j)
		if a.AsInt() <= b.AsInt() {
			t.Write(out, k, a)
			i++
		} else {
			t.Write(out, k, b)
			j++
		}
		k++
	}
	for ; i < ln; i++ {
		t.Write(out, k, t.Read(l, i))
		k++
	}
	for ; j < rn; j++ {
		t.Write(out, k, t.Read(r, j))
		k++
	}
	f.Pop()
	return out
}

func main() {
	input := workload.Ints(42, n, 1_000_000_000)

	rt := mpl.New(mpl.Config{Procs: 4, Record: true})
	_, err := rt.Run(func(t *mpl.Task) mpl.Value {
		f := t.NewFrame(1)
		f.Set(0, t.AllocArray(n, mpl.Int(0)).Value())
		t.ParFor(0, n, 8192, func(t *mpl.Task, lo, hi int) {
			a := f.Ref(0)
			for i := lo; i < hi; i++ {
				t.Write(a, i, mpl.Int(input[i]))
			}
		})
		sorted := msort(t, f.Ref(0), 0, n)
		// Verify.
		prev := t.Read(sorted, 0).AsInt()
		for i := 1; i < n; i++ {
			v := t.Read(sorted, i).AsInt()
			if v < prev {
				log.Fatalf("not sorted at %d", i)
			}
			prev = v
		}
		f.Pop()
		return mpl.Int(prev)
	})
	if err != nil {
		log.Fatal(err)
	}

	collections, copied, reclaimed := rt.GCStats()
	fmt.Printf("sorted %d integers\n", n)
	fmt.Printf("local collections: %d (copied %d words, reclaimed %d)\n", collections, copied, reclaimed)
	fmt.Printf("max residency: %d words\n", rt.MaxLiveWords())
	ps := []int{1, 2, 4, 8, 16, 32, 64}
	curve := mpl.Speedup(rt, ps, 200)
	fmt.Print("simulated speedup:")
	for i, p := range ps {
		fmt.Printf("  P=%d: %.1fx", p, curve[i])
	}
	fmt.Println()
}
