// Server: a long-running service-shaped workload for the concurrent
// collector (DESIGN.md CGC section).
//
// A long-lived table lives in the root heap, standing in for a server's
// session cache. Each "request" refreshes one entry (the displaced value
// becomes root-heap garbage) and then fans out a fork–join round over
// worker tasks, as a server would parallelize one request's work. While
// the workers run, the root task is suspended under live children, so the
// root heap is *internal* — out of reach of the leaf-scoped local
// collector — for almost the entire lifetime of the process. Without the
// concurrent collector the root heap's garbage accumulates for as long as
// the server runs; with it, background cycles reclaim the garbage in place
// while the rounds proceed, and the footprint stays flat.
//
// The example runs the same workload twice, CGC off then on, and prints
// both high-water marks plus the collector's totals. Expect the "on"
// footprint to be bounded (roughly the live table plus one round's slack)
// while the "off" footprint grows with the round count.
//
// With -listen the CGC-on run additionally serves live telemetry — the
// /metrics counters, the /debug/heaptree hierarchy snapshot, and Go's
// /debug/pprof profiles (task strands are labelled mplgo_worker /
// mplgo_aux) — so the collector can be watched from a browser or scraped
// while the rounds proceed.
//
//	go run ./examples/server [-rounds N] [-entries N] [-work N] [-listen :8080]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"

	"mplgo/internal/telemetry"
	"mplgo/mpl"
)

func main() {
	rounds := flag.Int("rounds", 300, "requests to serve (fork-join rounds)")
	entries := flag.Int("entries", 64, "live entries in the long-lived table")
	work := flag.Int("work", 4000, "allocations per worker per request")
	listen := flag.String("listen", "", "serve /metrics, /debug/heaptree and /debug/pprof here during the CGC-on run (e.g. :8080)")
	flag.Parse()

	run := func(cgc bool) *mpl.Runtime {
		cfg := mpl.Config{Procs: 4, DisableGC: true}
		if cgc {
			cfg.CGC = true
			cfg.CGCThresholdWords = 1 << 16
		}
		rt := mpl.New(cfg)
		if cgc && *listen != "" {
			mux := http.NewServeMux()
			telemetry.Register(mux, rt)
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			go func() {
				log.Printf("telemetry listening on %s (/metrics, /debug/heaptree, /debug/pprof)", *listen)
				if err := http.ListenAndServe(*listen, mux); err != nil {
					log.Printf("telemetry server: %v", err)
				}
			}()
		}
		if _, err := rt.Run(func(t *mpl.Task) mpl.Value {
			return serve(t, *rounds, *entries, *work)
		}); err != nil {
			log.Fatal(err)
		}
		return rt
	}

	off := run(false)
	on := run(true)

	fmt.Printf("footprint after %d requests (max live words):\n", *rounds)
	fmt.Printf("  CGC off: %12d\n", off.MaxLiveWords())
	fmt.Printf("  CGC on:  %12d\n", on.MaxLiveWords())
	cycles, freed, swept, retained, lastLive := on.CGCStats()
	fmt.Printf("concurrent collector: %d cycles, %d words freed, %d chunks swept, %d retained, last live %d words\n",
		cycles, freed, swept, retained, lastLive)
	if err := on.CheckInvariants(); err != nil {
		log.Fatalf("invariants: %v", err)
	}
}

// serve is the request loop: refresh one table entry, then handle the
// "request" with a two-way parallel fan-out whose results are summarized
// into the table. Every allocation the workers leak into their merged
// heaps, and every displaced table entry, is garbage only a concurrent
// cycle can reach while the loop is still running.
func serve(t *mpl.Task, rounds, entries, work int) mpl.Value {
	f := t.NewFrame(1)
	defer f.Pop()
	f.Set(0, t.AllocArray(entries, mpl.Nil).Value())

	for r := 0; r < rounds; r++ {
		slot := r % entries

		// Parallel request handling: each branch builds a transient result
		// structure in its own heap.
		a, b := t.Par(
			func(t *mpl.Task) mpl.Value { return worker(t, r, work) },
			func(t *mpl.Task) mpl.Value { return worker(t, r+1, work) },
		)

		// Summarize into the long-lived table; the displaced tuple dies in
		// the root heap (a SATB-barriered overwrite during marking cycles).
		sum := t.Read(a.Ref(), 0).AsInt() + t.Read(b.Ref(), 0).AsInt()
		t.Write(f.Ref(0), slot, t.AllocTuple(mpl.Int(sum), mpl.Int(int64(r))).Value())
	}

	// Checksum of the surviving table, proving concurrent sweeps never
	// reclaimed a live entry.
	var sum int64
	for i := 0; i < entries; i++ {
		if v := t.Read(f.Ref(0), i); v.IsRef() {
			sum += t.Read(v.Ref(), 0).AsInt()
		}
	}
	return mpl.Int(sum)
}

// worker allocates a transient linked structure and returns a one-word
// summary of it — the rest is garbage the moment the branch joins.
func worker(t *mpl.Task, seed, work int) mpl.Value {
	var acc int64
	for i := 0; i < work; i++ {
		tup := t.AllocTuple(mpl.Int(int64(seed+i)), mpl.Int(int64(i)))
		acc += t.Read(tup, 0).AsInt() & 0xFF
	}
	return t.AllocTuple(mpl.Int(acc), mpl.Int(int64(seed))).Value()
}
