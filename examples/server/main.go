// Server: the entanglement-native request-processing workload
// (ROADMAP "a real network-facing service").
//
// The process is one long-lived runtime whose root task is the
// internal/serve dispatcher. Shared service state — a memoize cache and a
// dedup table — lives in the dispatcher's root heap; every request runs as
// its own scoped task with its own leaf heap (one admission token each)
// and reaches that shared state through ordinary managed entangled reads,
// publishing results back with entangled writes. Displaced cache entries
// become root-heap garbage that only the concurrent collector can reach
// (the root heap is internal for the whole life of the process), so CGC
// is what keeps the footprint flat between bursts.
//
// Fault domains: each request runs under a core.Scope with a deadline
// measured from arrival and a heap-word budget. A request that exceeds
// either unwinds alone — typed ErrDeadlineExceeded / ErrHeapLimit from its
// Submit — while the rest of the batch completes. Admission control sheds
// with a typed *Overload (wrapping ErrShed) when the queue or a telemetry
// watermark is over; the runtime itself is never cancelled by load.
//
// Two modes:
//
//	go run ./examples/server                      # self-drive a fixed request count, print a report
//	go run ./examples/server -listen :8080        # serve HTTP until /quit
//
// In HTTP mode the mux exposes:
//
//	/req?key=N     run one request (200 result, 503 shed, 504 deadline, 507 budget)
//	/metrics       runtime + admission counters (Prometheus exposition)
//	/debug/heaptree, /debug/pprof/*
//	/quit          drain, audit invariants, report, exit (non-200 = audit failed)
//
// cmd/mplgo-load is the matching open-loop load generator.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mplgo/internal/serve"
	"mplgo/internal/telemetry"
	"mplgo/mpl"
)

// app is the service: the dispatcher's shared heap state plus the
// admission controller in front of it.
type app struct {
	srv     *serve.Server
	frame   mpl.Frame // root frame: slot 0 memoize cache, slot 1 dedup table
	entries int
	work    int

	hits   atomic.Int64 // memoize hits (ancestor-heap read was enough)
	misses atomic.Int64 // recomputations (and republications)
	dups   atomic.Int64 // dedup-table CAS losses (another request got there first)
}

const (
	slotMemo  = 0
	slotDedup = 1
)

// handle builds one request body: a memoized keyed computation against
// the shared ancestor-heap cache. The read of the cache slot, the CAS on
// the dedup table, and the publication of a fresh result are all
// cross-heap effects running under the request's own scope.
func (a *app) handle(key int) func(*mpl.Task) mpl.Value {
	return func(t *mpl.Task) mpl.Value {
		slot := key % a.entries
		// GC discipline: cache refs are re-read from the shared frame at
		// every use, never held across an allocation — a single-request
		// batch runs inline on the dispatcher task, where the churn below
		// can trigger a moving local collection of the serving heap itself.
		// The frame slots are roots, so they always hold current refs.
		if v := t.Read(a.frame.Ref(slotMemo), slot); v.IsRef() && t.Read(v.Ref(), 0).AsInt() == int64(key) {
			a.hits.Add(1)
			return t.Read(v.Ref(), 1)
		}
		a.misses.Add(1)
		// Dedup table: first request for this slot claims it; concurrent
		// duplicates observe the claim through the entangled CAS and are
		// counted (a real service would coalesce onto the winner here).
		if !t.CAS(a.frame.Ref(slotDedup), slot, mpl.Nil, mpl.Int(int64(key))) {
			a.dups.Add(1)
		}
		// The miss path: transient allocation churn in the request's own
		// leaf heap, all garbage the moment the request joins.
		var acc int64
		for i := 0; i < a.work; i++ {
			tup := t.AllocTuple(mpl.Int(int64(key+i)), mpl.Int(int64(i)))
			acc += t.Read(tup, 0).AsInt() & 0xFF
		}
		// Publish into the ancestor cache; the displaced tuple dies in the
		// root heap, where only a concurrent cycle can reclaim it.
		res := t.AllocTuple(mpl.Int(int64(key)), mpl.Int(acc))
		t.Write(a.frame.Ref(slotMemo), slot, res.Value())
		return mpl.Int(acc)
	}
}

// audit is the post-drain invariant check shared by both modes: the
// runtime exited cleanly, heap invariants hold, every pin was released,
// and the admission ledger balances.
func (a *app) audit(rt *mpl.Runtime, runErr error) error {
	if runErr != nil {
		return fmt.Errorf("runtime exit: %w", runErr)
	}
	if err := rt.CheckInvariants(); err != nil {
		return fmt.Errorf("heap invariants: %w", err)
	}
	if es := rt.EntStats(); es.Pins != es.Unpins {
		return fmt.Errorf("leaked pins: %d pins != %d unpins", es.Pins, es.Unpins)
	}
	if err := a.srv.Audit(); err != nil {
		return err
	}
	return nil
}

// report prints the service and collector counters after a drain.
func (a *app) report(rt *mpl.Runtime, elapsed time.Duration) {
	s := &a.srv.Stats
	fmt.Printf("served %d requests in %v (%d shed, %d deadline-exceeded, %d budget-exceeded, %d failed)\n",
		s.Completed.Load(), elapsed.Round(time.Millisecond),
		s.Shed.Load(), s.DeadlineExceeded.Load(), s.BudgetExceeded.Load(), s.Failed.Load())
	fmt.Printf("cache: %d hits, %d misses, %d dedup collisions\n",
		a.hits.Load(), a.misses.Load(), a.dups.Load())
	cycles, freed, swept, retained, lastLive := rt.CGCStats()
	fmt.Printf("cgc: %d cycles, %d words freed, %d chunks swept, %d retained, last live %d words (max live %d)\n",
		cycles, freed, swept, retained, lastLive, rt.MaxLiveWords())
}

func main() {
	procs := flag.Int("procs", 4, "scheduler workers")
	concurrency := flag.Int("concurrency", 4, "admission tokens: max requests per parallel batch")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 4x concurrency)")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "per-request deadline from arrival (0 = none)")
	budget := flag.Int64("budget", 1<<20, "per-request heap-word budget (0 = unlimited)")
	maxLive := flag.Int64("max-live-words", 0, "live-words shedding watermark (0 = off)")
	entries := flag.Int("entries", 256, "slots in the shared memoize cache")
	work := flag.Int("work", 4000, "allocations per cache miss")
	requests := flag.Int("requests", 2000, "requests to run in self-drive mode")
	clients := flag.Int("clients", 16, "concurrent submitters in self-drive mode")
	listen := flag.String("listen", "", "serve HTTP here (e.g. :8080) instead of self-driving")
	flag.Parse()

	rt := mpl.New(mpl.Config{
		Procs:             *procs,
		CGC:               true,
		CGCThresholdWords: 1 << 16,
	})
	srv := serve.New(rt, serve.Config{
		MaxConcurrent: *concurrency,
		QueueDepth:    *queueDepth,
		Deadline:      *deadline,
		BudgetWords:   *budget,
		MaxLiveWords:  *maxLive,
	})
	a := &app{srv: srv, entries: *entries, work: *work}

	// The root body allocates the shared state in the root heap, then
	// becomes the dispatcher; rt.Run returns when Close drains the queue.
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := rt.Run(func(t *mpl.Task) mpl.Value {
			f := t.NewFrame(2)
			defer f.Pop()
			f.Set(slotMemo, t.AllocArray(a.entries, mpl.Nil).Value())
			f.Set(slotDedup, t.AllocArray(a.entries, mpl.Nil).Value())
			a.frame = f
			close(ready)
			return srv.Run(t)
		})
		// The dispatcher dying (panic, heap limit) is a service incident:
		// serve answers every in-flight Submit and sheds the rest, and the
		// cause — with the original panic stack — goes to the log.
		if err != nil {
			log.Printf("runtime exited: %v", err)
			var pe *mpl.PanicError
			if errors.As(err, &pe) {
				os.Stderr.Write(pe.Stack)
			}
		}
		done <- err
	}()
	<-ready

	if *listen != "" {
		serveHTTP(a, rt, *listen, done)
		return
	}
	selfDrive(a, rt, *requests, *clients, done)
}

// selfDrive floods the admission controller from local goroutines —
// retrying sheds with capped exponential backoff, as a remote client
// would — then drains and audits.
func selfDrive(a *app, rt *mpl.Runtime, requests, clients int, done chan error) {
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				n := next.Add(1)
				if n > int64(requests) {
					return
				}
				// Random keys over 2× the slot count: roughly half the
				// lookups find their key still resident, so the report shows
				// both memoize hits and displacement churn.
				key := rng.Intn(2 * a.entries)
				backoff := time.Millisecond
				for {
					_, err := a.srv.Submit(a.handle(key))
					if errors.Is(err, mpl.ErrShed) {
						time.Sleep(backoff)
						if backoff *= 2; backoff > 50*time.Millisecond {
							backoff = 50 * time.Millisecond
						}
						continue
					}
					break // typed per-request outcomes are counted in srv.Stats
				}
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	a.srv.Close()
	err := <-done
	a.report(rt, time.Since(start))
	if aerr := a.audit(rt, err); aerr != nil {
		log.Fatalf("audit: %v", aerr)
	}
	fmt.Println("audit: ok")
}

// serveHTTP exposes the service over a mux until /quit: requests on
// /req, telemetry on /metrics and /debug/heaptree, profiles via
// telemetry.RegisterPprof.
func serveHTTP(a *app, rt *mpl.Runtime, addr string, done chan error) {
	start := time.Now()
	mux := http.NewServeMux()
	telemetry.RegisterSources(mux, rt, &a.srv.Stats)
	telemetry.RegisterPprof(mux)

	mux.HandleFunc("/req", func(w http.ResponseWriter, r *http.Request) {
		key, _ := strconv.Atoi(r.URL.Query().Get("key"))
		v, err := a.srv.Submit(a.handle(key))
		var ov *serve.Overload
		switch {
		case errors.As(err, &ov):
			w.Header().Set("X-Retry-After", ov.RetryAfter.String())
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, mpl.ErrDeadlineExceeded):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		case errors.Is(err, mpl.ErrHeapLimit):
			http.Error(w, err.Error(), http.StatusInsufficientStorage)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			fmt.Fprintf(w, "%d\n", v.AsInt())
		}
	})

	mux.HandleFunc("/quit", func(w http.ResponseWriter, _ *http.Request) {
		a.srv.Close()
		err := <-done
		a.report(rt, time.Since(start))
		code := 0
		if aerr := a.audit(rt, err); aerr != nil {
			log.Printf("audit: %v", aerr)
			http.Error(w, aerr.Error(), http.StatusInternalServerError)
			code = 1
		} else {
			fmt.Println("audit: ok")
			fmt.Fprintln(w, "ok")
		}
		// Let the response flush before the process exits.
		go func() { time.Sleep(200 * time.Millisecond); os.Exit(code) }()
	})

	log.Printf("serving on %s (/req, /metrics, /debug/heaptree, /debug/pprof, /quit)", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}
