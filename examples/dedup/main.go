// Concurrent deduplication — an *entangled* workload, the kind of program
// this paper makes possible on a hierarchical heap.
//
// Tasks insert strings into a shared hash set built from CAS-linked lists.
// A task walking a bucket reads nodes allocated by concurrent tasks: those
// are entangled reads, and the runtime pins the nodes (with unpin depths)
// so its moving local collectors leave them in place until the tasks join.
// Under the pre-paper discipline (detect-and-abort, -mode detect here)
// this program is rejected.
//
//	go run ./examples/dedup
package main

import (
	"errors"
	"fmt"
	"log"

	"mplgo/internal/workload"
	"mplgo/mpl"
)

const (
	n       = 100_000
	buckets = 1024
)

func fnv(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func strEq(t *mpl.Task, ref mpl.Ref, s string) bool {
	if t.StrLen(ref) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if t.ByteOf(ref, i) != s[i] {
			return false
		}
	}
	return true
}

func dedup(rt *mpl.Runtime, words []string) (int64, error) {
	var distinct int64
	_, err := rt.Run(func(t *mpl.Task) mpl.Value {
		fb := t.NewFrame(1)
		fb.Set(0, t.AllocArray(buckets, mpl.Nil).Value())

		var count func(t *mpl.Task, lo, hi int) int64
		count = func(t *mpl.Task, lo, hi int) int64 {
			if hi-lo > 512 {
				mid := (lo + hi) / 2
				a, b := t.Par(
					func(t *mpl.Task) mpl.Value { return mpl.Int(count(t, lo, mid)) },
					func(t *mpl.Task) mpl.Value { return mpl.Int(count(t, mid, hi)) },
				)
				return a.AsInt() + b.AsInt()
			}
			var added int64
		insert:
			for i := lo; i < hi; i++ {
				s := words[i]
				bkt := int(fnv(s) % buckets)
				for {
					head := t.Read(fb.Ref(0), bkt)
					for cur := head; cur.IsRef(); {
						node := cur.Ref()
						if strEq(t, t.Read(node, 0).Ref(), s) {
							continue insert
						}
						cur = t.Read(node, 1)
					}
					f := t.NewFrame(1)
					f.Set(0, head)
					sr := t.AllocString(s)
					node := t.AllocTuple(sr.Value(), f.Get(0))
					head = f.Get(0)
					f.Pop()
					if t.CAS(fb.Ref(0), bkt, head, node.Value()) {
						added++
						continue insert
					}
				}
			}
			return added
		}
		distinct = count(t, 0, len(words))
		fb.Pop()
		return mpl.Int(distinct)
	})
	return distinct, err
}

func main() {
	words := workload.Strings(7, n, n/20)

	rt := mpl.New(mpl.Config{Procs: 4})
	distinct, err := dedup(rt, words)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d strings, %d distinct\n", n, distinct)
	s := rt.EntStats()
	fmt.Printf("entangled reads: %d, pins: %d, unpins: %d, peak pinned: %d\n",
		s.EntangledReads, s.Pins, s.Unpins, s.PinnedPeak)
	if s.Pins == s.Unpins {
		fmt.Println("every pin was released by a join: entanglement cost is transient")
	}

	// The same program under the old detect-and-abort discipline.
	_, err = dedup(mpl.New(mpl.Config{Procs: 4, Mode: mpl.Detect}), words[:2000])
	if errors.Is(err, mpl.ErrEntangled) {
		fmt.Println("detect-and-abort MPL rejects this program; management runs it")
	}
}
