// Quickstart: nested fork–join with effects on the hierarchical runtime.
//
// Computes a parallel sum-of-squares with Par/ParFor, keeps a running
// maximum in a mutable ref cell, and prints the entanglement statistics —
// all zero here, because the effects stay within each task's own path:
// this is a disentangled program, and it pays only the barrier fast paths.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mplgo/mpl"
)

func main() {
	rt := mpl.New(mpl.Config{Procs: 4})
	result, err := rt.Run(func(t *mpl.Task) mpl.Value {
		// A mutable array filled in parallel (immediate values: no
		// entanglement bookkeeping at all).
		const n = 100_000
		arr := t.AllocArray(n, mpl.Int(0))
		f := t.NewFrame(1)
		f.Set(0, arr.Value())
		t.ParFor(0, n, 1024, func(t *mpl.Task, lo, hi int) {
			for i := lo; i < hi; i++ {
				t.Write(f.Ref(0), i, mpl.Int(int64(i)%97))
			}
		})

		// A parallel divide-and-conquer reduction over the array.
		var sumsq func(t *mpl.Task, lo, hi int) int64
		sumsq = func(t *mpl.Task, lo, hi int) int64 {
			if hi-lo <= 1024 {
				var s int64
				for i := lo; i < hi; i++ {
					v := t.Read(f.Ref(0), i).AsInt()
					s += v * v
				}
				return s
			}
			mid := (lo + hi) / 2
			a, b := t.Par(
				func(t *mpl.Task) mpl.Value { return mpl.Int(sumsq(t, lo, mid)) },
				func(t *mpl.Task) mpl.Value { return mpl.Int(sumsq(t, mid, hi)) },
			)
			return a.AsInt() + b.AsInt()
		}
		total := sumsq(t, 0, n)

		// Task-local mutation through a ref cell.
		best := t.AllocRef(mpl.Int(0))
		for i := 0; i < 10; i++ {
			v := t.Read(f.Ref(0), i*37).AsInt()
			if v > t.Deref(best).AsInt() {
				t.Assign(best, mpl.Int(v))
			}
		}
		f.Pop()
		return mpl.Int(total + t.Deref(best).AsInt())
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result: %d\n", result.AsInt())
	s := rt.EntStats()
	fmt.Printf("heaps created: %d, steals: %d\n", rt.Tree().Count(), rt.Steals())
	fmt.Printf("entangled reads: %d, pins: %d (disentangled program: all zero)\n",
		s.EntangledReads, s.Pins)
}
